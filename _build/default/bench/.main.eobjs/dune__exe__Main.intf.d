bench/main.mli:
