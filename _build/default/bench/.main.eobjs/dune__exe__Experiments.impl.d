bench/experiments.ml: Acc Accrt Bench_def Codegen Float Fmt Gpusim Jacobi List Minic Openarc_core Registry Str_util String Suite
