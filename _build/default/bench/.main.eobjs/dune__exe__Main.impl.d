bench/main.ml: Accrt Analyze Array Bechamel Benchmark Codegen Experiments Fmt Hashtbl List Measure Minic Openarc_core Staged Suite Sys Test Time Toolkit
