examples/memory_optimization.mli:
