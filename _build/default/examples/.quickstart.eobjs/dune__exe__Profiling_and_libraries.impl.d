examples/profiling_and_libraries.ml: Accrt Array Codegen Fmt Gpusim List Openarc_core String
