examples/benchmark_tour.ml: Accrt Codegen Fmt Gpusim List Minic Openarc_core String Suite
