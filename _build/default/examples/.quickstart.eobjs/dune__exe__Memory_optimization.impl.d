examples/memory_optimization.ml: Accrt Fmt List Minic Openarc_core Suite
