examples/quickstart.ml: Accrt Analysis Array Codegen Fmt Gpusim List Openarc_core String
