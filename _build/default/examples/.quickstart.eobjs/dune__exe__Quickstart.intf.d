examples/quickstart.mli:
