examples/profiling_and_libraries.mli:
