examples/kernel_debugging.mli:
