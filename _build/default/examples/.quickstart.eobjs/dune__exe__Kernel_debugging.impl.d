examples/kernel_debugging.ml: Codegen Fmt List Minic Openarc_core Suite
