(* Tour of the bundled benchmark suite: for every one of the paper's twelve
   OpenACC benchmarks, run the default-scheme port and the manually
   optimized port on the simulator and compare time and traffic — a
   miniature of Figure 1 — then let the interactive optimizer loose on the
   unoptimized port and report how close it gets to the manual tuning.

     dune exec examples/benchmark_tour.exe
*)

let run src =
  let prog = Minic.Parser.parse_string src in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  Accrt.Interp.metrics (Accrt.Interp.run ~coherence:false tp)

let () =
  Fmt.pr "%-10s %14s %14s %14s %9s@." "Benchmark" "naive bytes" "manual bytes"
    "tool bytes" "sessions";
  Fmt.pr "%s@." (String.make 68 '-');
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      let m_naive = run b.source in
      let m_manual = run b.optimized in
      let session =
        Openarc_core.Session.optimize ~outputs:b.outputs
          (Minic.Parser.parse_string b.source)
      in
      let m_tool =
        let env =
          Minic.Typecheck.check session.Openarc_core.Session.final
        in
        let tp =
          Codegen.Translate.translate env session.Openarc_core.Session.final
        in
        Accrt.Interp.metrics (Accrt.Interp.run ~coherence:false tp)
      in
      Fmt.pr "%-10s %14d %14d %14d %6d it@." b.name
        (Gpusim.Metrics.total_bytes m_naive)
        (Gpusim.Metrics.total_bytes m_manual)
        (Gpusim.Metrics.total_bytes m_tool)
        session.Openarc_core.Session.iterations)
    Suite.Registry.all;
  Fmt.pr "%s@." (String.make 68 '-');
  Fmt.pr
    "The tool column shows traffic after the interactive optimization \
     session; on most benchmarks it matches (or beats) the manual port.@."
