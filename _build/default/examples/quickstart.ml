(* Quickstart: compile an OpenACC program, run it on the simulated GPU,
   and look at what the compiler generated.

     dune exec examples/quickstart.exe
*)

let source =
  {|
int main() {
  int n = 1024;
  float x[n];
  float y[n];
  float alpha = 2.5;
  float dot = 0.0;
  for (int i = 0; i < n; i++) {
    x[i] = float(i) * 0.001;
    y[i] = 1.0;
  }
  /* saxpy on the GPU, data managed by an explicit region */
  #pragma acc data copyin(x) copy(y)
  {
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      y[i] = alpha * x[i] + y[i];
    }
  }
  /* dot product with a reduction */
  #pragma acc parallel loop reduction(+:dot)
  for (int i = 0; i < n; i++) {
    dot = dot + x[i] * y[i];
  }
  return 0;
}
|}

let () =
  (* 1. Compile: parse, validate OpenACC usage, type check, translate. *)
  let compiled = Openarc_core.Compiler.compile source in
  let tp = compiled.Openarc_core.Compiler.tprog in
  Fmt.pr "Compiled %d kernels:@." (Array.length tp.Codegen.Tprog.kernels);
  Array.iter
    (fun k ->
      Fmt.pr "  %s  reads=%s writes=%s@." k.Codegen.Tprog.k_name
        (Analysis.Varset.to_string k.Codegen.Tprog.k_arrays_read)
        (Analysis.Varset.to_string k.Codegen.Tprog.k_arrays_written))
    tp.Codegen.Tprog.kernels;

  (* 2. Execute on the simulated accelerator. *)
  let outcome = Openarc_core.Compiler.run compiled in
  Fmt.pr "@.Simulated execution:@.%a@." Gpusim.Metrics.pp
    (Accrt.Interp.metrics outcome);
  Fmt.pr "@.dot = %g@."
    (Accrt.Value.to_float (Accrt.Interp.host_scalar outcome "dot"));

  (* 3. Cross-check against the sequential reference execution. *)
  let reference = Openarc_core.Compiler.run_reference compiled in
  Fmt.pr "reference dot = %g@."
    (Accrt.Value.to_float
       (Accrt.Value.get_scalar reference.Accrt.Eval.env "dot"));

  (* 4. Inspect the CUDA-style translation (what OpenARC would emit). *)
  Fmt.pr "@.--- generated code (excerpt) ---@.";
  let cuda = Codegen.Cuda.to_string tp in
  String.split_on_char '\n' cuda
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline
