(* The rest of the OpenACC V1.0 surface: library routines, directive
   functions (inlined by the compiler), conditional offload, launch
   dimensions, and the execution timeline the profiler exports.

     dune exec examples/profiling_and_libraries.exe
*)

let source =
  {|
void scale(float v[], int n, float factor) {
  /* a directive inside a callee: the compiler inlines this function */
  #pragma acc kernels loop gang worker num_gangs(32) num_workers(8)
  for (int i = 0; i < n; i++) {
    v[i] = v[i] * factor;
  }
}

int main() {
  int n = 2048;
  int offload = 1;
  float a[n];
  float total = 0.0;
  acc_init(4);                       /* acc_device_nvidia */
  int devices = acc_get_num_devices(4);
  for (int i = 0; i < n; i++) { a[i] = 1.0 + float(i % 9) * 0.125; }
  #pragma acc data copy(a)
  {
    scale(a, n, 2.0);
    /* conditional offload: this one runs on the host when offload == 0 */
    #pragma acc kernels loop if(offload) async(1)
    for (int i = 0; i < n; i++) {
      a[i] = a[i] + 0.5;
    }
    int busy = acc_async_test(1);    /* 0 while stream 1 is in flight */
    acc_async_wait(1);               /* runtime-routine equivalent of wait */
    int idle = acc_async_test(1);
    total = float(busy) * 100.0 + float(idle);
  }
  float checksum = 0.0;
  #pragma acc parallel loop reduction(+:checksum)
  for (int i = 0; i < n; i++) { checksum = checksum + a[i]; }
  acc_shutdown(4);
  return 0;
}
|}

let () =
  let compiled = Openarc_core.Compiler.compile source in
  Fmt.pr "After inlining, main holds %d kernels:@."
    (Array.length compiled.Openarc_core.Compiler.tprog.Codegen.Tprog.kernels);
  Array.iter
    (fun k ->
      let g, w, _ = k.Codegen.Tprog.k_dims in
      Fmt.pr "  %-22s dims=%s@." k.Codegen.Tprog.k_name
        (match (g, w) with
        | Some _, Some _ -> "explicit num_gangs x num_workers"
        | _ -> "device default"))
    compiled.Openarc_core.Compiler.tprog.Codegen.Tprog.kernels;

  (* Run with the timeline recorder on. *)
  let tp = compiled.Openarc_core.Compiler.tprog in
  let outcome = Accrt.Interp.run ~coherence:false ~trace:true tp in
  Fmt.pr "@.checksum = %g   (async test before/after wait: %g)@."
    (Accrt.Value.to_float (Accrt.Interp.host_scalar outcome "checksum"))
    (Accrt.Value.to_float (Accrt.Interp.host_scalar outcome "total"));

  let timeline = outcome.Accrt.Interp.device.Gpusim.Device.timeline in
  Fmt.pr "@.Execution timeline (%d events):@."
    (Gpusim.Timeline.count timeline);
  Fmt.pr "%a" Gpusim.Timeline.pp timeline;
  Fmt.pr "@.Per-kind totals:@.";
  List.iter
    (fun (k, t) -> Fmt.pr "  %-14s %8.1f us@." k (t *. 1e6))
    (Gpusim.Timeline.summary timeline);

  (* Chrome-trace export, as `openarc run --trace` does. *)
  let json = Gpusim.Timeline.to_chrome_json timeline in
  Fmt.pr "@.Chrome-trace JSON: %d bytes (open in chrome://tracing)@."
    (String.length json)
