(* Kernel debugging walkthrough (§III-A of the paper).

   A programmer ports a stencil + reduction to OpenACC but forgets the
   private and reduction clauses, and the compiler's automatic recognition
   is off (the situation Table II injects).  Kernel verification compares
   every translated kernel against the sequential reference at kernel
   granularity and pinpoints the broken one; after the fix the program
   verifies cleanly.

     dune exec examples/kernel_debugging.exe
*)

let buggy =
  {|
int main() {
  int n = 256;
  float img[n];
  float smooth[n];
  float t;
  float total = 0.0;
  for (int i = 0; i < n; i++) {
    img[i] = float((i * 31) % 97) * 0.01;
  }
  /* BUG: t should be private; without privatization this is a race */
  #pragma acc kernels loop gang worker
  for (int i = 1; i < n - 1; i++) {
    t = (img[i - 1] + img[i] + img[i + 1]) / 3.0;
    smooth[i] = t;
  }
  /* BUG: total should be a reduction; without it this is a race */
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n; i++) {
    total = total + smooth[i];
  }
  return 0;
}
|}

let fixed =
  Suite.Str_util.replace
    ~needle:"#pragma acc kernels loop gang worker\n  for (int i = 1;"
    ~with_:"#pragma acc kernels loop gang worker private(t)\n  for (int i = 1;"
    (Suite.Str_util.replace
       ~needle:"#pragma acc kernels loop gang worker\n  for (int i = 0;"
       ~with_:
         "#pragma acc kernels loop gang worker reduction(+:total)\n  for \
          (int i = 0;"
       buggy)

let verify label src =
  Fmt.pr "=== %s ===@." label;
  let v =
    Openarc_core.Kernel_verify.verify ~opts:Codegen.Options.fault_injection
      (Minic.Parser.parse_string src)
  in
  List.iter
    (fun r -> Fmt.pr "%a@." Openarc_core.Kernel_verify.pp_report r)
    v.Openarc_core.Kernel_verify.reports;
  Fmt.pr "@."

let () =
  (* The tool is configured as in the paper: automatic privatization and
     reduction recognition disabled, so the missing clauses matter. *)
  verify "buggy port (clauses missing)" buggy;
  Fmt.pr
    "Note: the smoothing kernel's race is LATENT — the backend caches t \
     in a register, so outputs are correct and, as in the paper, the \
     verifier stays silent about it. The reduction race is ACTIVE and \
     caught.@.@.";

  verify "fixed port (private + reduction clauses)" fixed;

  (* Selective verification, as with OpenARC's verificationOptions. *)
  let config =
    Openarc_core.Vconfig.of_string "complement=0,kernels=main_kernel1"
  in
  let v =
    Openarc_core.Kernel_verify.verify ~opts:Codegen.Options.fault_injection
      ~config
      (Minic.Parser.parse_string buggy)
  in
  Fmt.pr "=== verificationOptions=complement=0,kernels=main_kernel1 ===@.";
  List.iter
    (fun r -> Fmt.pr "%a@." Openarc_core.Kernel_verify.pp_report r)
    v.Openarc_core.Kernel_verify.reports;

  (* The memory-transfer-demotion pass the verifier relies on (Listing 2). *)
  let c =
    Openarc_core.Compiler.compile ~opts:Codegen.Options.fault_injection buggy
  in
  Fmt.pr "@.=== demoted source for main_kernel0 (paper Listing 2) ===@.%s@."
    (Openarc_core.Demotion.to_string c.Openarc_core.Compiler.tprog
       "main_kernel0")
