(* Pretty-printer round-trip: pretty-printed output re-parses to a
   structurally equal AST.  Unit cases plus QCheck generators for random
   expressions and statements. *)

open Minic
open Minic.Ast

let roundtrip_program src =
  let p1 = Parser.parse_string src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try Parser.parse_string printed
    with Loc.Error (l, m) ->
      Alcotest.failf "re-parse failed (%s: %s) for:@.%s" (Loc.to_string l) m
        printed
  in
  if not (equal_program p1 p2) then
    Alcotest.failf "round-trip mismatch:@.%s@.vs@.%s" printed
      (Pretty.program_to_string p2)

let test_units () =
  List.iter roundtrip_program
    [ "int main() { return 0; }";
      "float g; int main() { g = 1.5; return 0; }";
      "int main() { int n = 8; float a[n]; for (int i = 0; i < n; i++) { \
       a[i] = float(i) * 2.0; } return 0; }";
      "int main() { float x = 0.0; if (x < 1.0 && x > 0.0 - 1.0) { x = x / \
       2.0; } else { x = 0.25; } return 0; }";
      "int main() { int i = 0; while (i < 3) { i++; if (i == 2) { break; } \
       } return 0; }";
      "float f(float x) { return x * x; }\nint main() { float y = f(2.0); \
       return 0; }";
      "int main() { float a[4]; float *p; p = a; p[0] = 1.0; return 0; }";
      "int main() { int x = 1 == 2 ? 3 : 4; return 0; }" ]

let test_directive_roundtrip () =
  List.iter roundtrip_program
    [ "int main() { float a[4]; float s; float t;\n#pragma acc data \
       copyin(a[0:4]) copyout(a)\n{\n#pragma acc kernels loop gang worker \
       private(t) reduction(+:s) async(1)\nfor (int i = 0; i < 4; i++) { s \
       = s + a[i]; }\n#pragma acc wait(1)\n}\nreturn 0; }";
      "int main() { float a[4];\n#pragma acc update host(a[0:2]) \
       async\n#pragma acc update device(a)\nreturn 0; }";
      "int main() { float a[4];\n#pragma acc parallel loop num_gangs(4) \
       num_workers(8) vector_length(32) if(1)\nfor (int i = 0; i < 4; i++) \
       { a[i] = 0.0; }\nreturn 0; }";
      "int main() { float a[4];\n#pragma acc kernels loop collapse(2) \
       independent\nfor (int i = 0; i < 4; i++) { a[i] = 1.0; }\nreturn 0; \
       }" ]

(* ---------------- QCheck generators ---------------- *)

let gen_var = QCheck.Gen.oneofl [ "x"; "y"; "z" ]
let gen_arr = QCheck.Gen.oneofl [ "a"; "b" ]

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Eint (abs i mod 100)) small_int;
              map (fun f -> Efloat (Float.of_int (abs f mod 50) /. 4.0))
                small_int;
              map (fun v -> Evar v) gen_var ]
        else
          frequency
            [ (2, map (fun v -> Evar v) gen_var);
              (3,
               map3
                 (fun op a b -> Ebinop (op, a, b))
                 (oneofl [ Add; Sub; Mul; Lt; Le; Eq; Land; Lor ])
                 (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Eunop (Neg, a)) (self (n - 1)));
              (1, map (fun a -> Eunop (Not, a)) (self (n - 1)));
              (1,
               map2 (fun arr i -> Eindex (Evar arr, i)) gen_arr (self (n / 2)));
              (1, map (fun a -> Ecall ("sqrt", [ a ])) (self (n - 1)));
              (1,
               map3 (fun c a b -> Econd (c, a, b)) (self (n / 3))
                 (self (n / 3)) (self (n / 3))) ]))

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ map (fun e -> mk_stmt (Sassign (Lvar "x", e))) gen_expr;
              map2
                (fun arr e -> mk_stmt (Sassign (Lindex (Lvar arr, Eint 0), e)))
                gen_arr gen_expr;
              return (mk_stmt Sskip) ]
        in
        if n <= 0 then leaf
        else
          frequency
            [ (3, leaf);
              (1,
               map3
                 (fun c s1 s2 -> mk_stmt (Sif (c, [ s1 ], [ s2 ])))
                 gen_expr (self (n / 2)) (self (n / 2)));
              (1,
               map2
                 (fun s1 s2 -> mk_stmt (Sblock [ s1; s2 ]))
                 (self (n / 2)) (self (n / 2))) ]))

let expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty/parse round-trip (expressions)"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let printed = Pretty.expr_to_string e in
      equal_expr e (Parser.expr_of_string printed))

let stmt_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pretty/parse round-trip (statements)"
    (QCheck.make gen_stmt ~print:Pretty.stmt_to_string)
    (fun s ->
      (* Wrap in a program so declarations exist. *)
      let prog =
        { globals =
            [ Gfunc
                { f_ret = Tint; f_name = "main"; f_params = [];
                  f_body =
                    [ mk_stmt (Sdecl (Tfloat, "x", Some (Efloat 0.)));
                      mk_stmt (Sdecl (Tfloat, "y", Some (Efloat 1.)));
                      mk_stmt (Sdecl (Tfloat, "z", Some (Efloat 2.)));
                      mk_stmt (Sdecl (Tarr (Tfloat, Some (Eint 4)), "a", None));
                      mk_stmt (Sdecl (Tarr (Tfloat, Some (Eint 4)), "b", None));
                      s;
                      mk_stmt (Sreturn (Some (Eint 0))) ];
                  f_loc = Loc.dummy } ]
        }
      in
      let printed = Pretty.program_to_string prog in
      equal_program prog (Parser.parse_string printed))

let tests =
  [ Alcotest.test_case "unit round-trips" `Quick test_units;
    Alcotest.test_case "directive round-trips" `Quick test_directive_roundtrip;
    QCheck_alcotest.to_alcotest expr_roundtrip;
    QCheck_alcotest.to_alcotest stmt_roundtrip ]
