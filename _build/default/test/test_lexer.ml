(* Lexer unit tests: token streams, pragma handling, comments, errors. *)

open Minic

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize ~file:"t" src)

let check_toks name src expected =
  Alcotest.(check (list string))
    name expected
    (List.map Token.to_string (toks src))

let test_numbers () =
  check_toks "ints" "0 42 123" [ "0"; "42"; "123"; "<eof>" ];
  check_toks "floats" "1.5 0.25" [ "1.5"; "0.25"; "<eof>" ];
  check_toks "exponent" "1e3" [ "1000."; "<eof>" ];
  check_toks "neg exponent" "2.5e-1" [ "0.25"; "<eof>" ]

let test_identifiers_keywords () =
  check_toks "ident" "foo _bar x1" [ "foo"; "_bar"; "x1"; "<eof>" ];
  check_toks "keywords" "int float void if else while for return"
    [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "return";
      "<eof>" ];
  check_toks "double keyword" "double" [ "double"; "<eof>" ];
  check_toks "break continue" "break continue" [ "break"; "continue"; "<eof>" ]

let test_operators () =
  check_toks "two-char" "<= >= == != && || += -= *= /= ++ --"
    [ "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/="; "++"; "--";
      "<eof>" ];
  check_toks "one-char" "+ - * / % < > = ! ( ) { } [ ] , ; ? :"
    [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "("; ")"; "{"; "}"; "[";
      "]"; ","; ";"; "?"; ":"; "<eof>" ]

let test_comments () =
  check_toks "line comment" "a // comment\nb" [ "a"; "b"; "<eof>" ];
  check_toks "block comment" "a /* x\ny */ b" [ "a"; "b"; "<eof>" ];
  Alcotest.check_raises "unterminated comment"
    (Loc.Error (Loc.make ~file:"t" ~line:1 ~col:3, "unterminated comment"))
    (fun () -> ignore (toks "a /* never closed"))

let test_pragma () =
  (match toks "#pragma acc kernels loop" with
  | [ Token.PRAGMA text; Token.EOF ] ->
      Alcotest.(check string) "pragma text" "acc kernels loop" text
  | _ -> Alcotest.fail "expected a single PRAGMA token");
  (* backslash continuation joins lines *)
  (match toks "#pragma acc data \\\n copyin(a)" with
  | [ Token.PRAGMA text; Token.EOF ] ->
      Alcotest.(check string) "continued" "acc data   copyin(a)" text
  | _ -> Alcotest.fail "expected continued PRAGMA");
  (* code resumes on the next line *)
  match toks "#pragma acc wait\nx" with
  | [ Token.PRAGMA _; Token.IDENT "x"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "statement after pragma lost"

let test_positions () =
  let lexed = Lexer.tokenize ~file:"f" "a\n  b" in
  match lexed with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "line a" 1 a.Lexer.loc.Loc.line;
      Alcotest.(check int) "line b" 2 b.Lexer.loc.Loc.line;
      Alcotest.(check int) "col b" 3 b.Lexer.loc.Loc.col
  | _ -> Alcotest.fail "expected two tokens"

let test_errors () =
  (try
     ignore (toks "a $ b");
     Alcotest.fail "expected lexing error"
   with Loc.Error (_, msg) ->
     Alcotest.(check bool) "mentions char" true
       (String.length msg > 0));
  try
    ignore (toks "#foo acc x");
    Alcotest.fail "expected pragma error"
  with Loc.Error (_, msg) ->
    Alcotest.(check bool) "pragma msg" true
      (String.length msg > 0)

let tests =
  [ Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "identifiers and keywords" `Quick
      test_identifiers_keywords;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "pragmas" `Quick test_pragma;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors ]
