(* Check insertion: kernel-boundary GPU checks, first-access CPU checks,
   hoisting out of loops (the Listing 3 optimization), reset placement,
   and the optimized-vs-naive check-count ablation. *)

open Codegen
open Codegen.Tprog

let instrument ?mode src =
  Checkgen.instrument ?mode (Translate.compile_string src)

(* Flattened (depth, tkind) list for structural assertions. *)
let flat tp =
  let acc = ref [] in
  let rec go depth s =
    acc := (depth, s.tkind) :: !acc;
    match s.tkind with
    | Tif (_, b1, b2) -> List.iter (go (depth + 1)) b1;
                         List.iter (go (depth + 1)) b2
    | Twhile (_, b) | Tblock b | Tfor (_, _, _, b) ->
        List.iter (go (depth + 1)) b
    | _ -> ()
  in
  List.iter (go 0) tp.body;
  List.rev !acc

let checks_at_depth tp d =
  List.filter_map
    (function
      | depth, Tcheck c when depth = d -> Some c
      | _ -> None)
    (flat tp)

let jacobi_listing3 =
  "int main() { int n = 16; float a[n]; float b[n];\nfor (int i = 0; i < n; \
   i++) { a[i] = 1.0; b[i] = 0.0; }\n#pragma acc data copy(a) \
   copyout(b)\n{\nfor (int k = 0; k < 3; k++) {\n#pragma acc kernels \
   loop\nfor (int i = 0; i < n; i++) { b[i] = a[i] + 1.0; }\n#pragma acc \
   kernels loop\nfor (int i = 0; i < n; i++) { a[i] = b[i]; }\n#pragma acc \
   update host(b)\n}\n}\nfor (int i = 0; i < n; i++) { a[0] = a[0] + b[i]; \
   }\nreturn 0; }"

(* GPU checks inside vs outside any loop subtree. *)
let gpu_checks_partition tp =
  let inside = ref [] and outside = ref [] in
  let rec go in_loop s =
    (match s.tkind with
    | Tcheck ((Check_read (_, Gpu) | Check_write (_, Gpu)) as c) ->
        if in_loop then inside := c :: !inside else outside := c :: !outside
    | _ -> ());
    match s.tkind with
    | Tif (_, b1, b2) -> List.iter (go in_loop) b1; List.iter (go in_loop) b2
    | Tblock b -> List.iter (go in_loop) b
    | Twhile (_, b) | Tfor (_, _, _, b) -> List.iter (go true) b
    | _ -> ()
  in
  List.iter (go false) tp.body;
  (!inside, !outside)

let test_gpu_checks_hoisted () =
  let tp = instrument jacobi_listing3 in
  (* No host access or upload of a/b inside the k-loop: all four GPU checks
     hoist out of it (paper Listing 3's improvement). *)
  let inside, outside = gpu_checks_partition tp in
  Alcotest.(check int) "hoisted gpu checks" 4 (List.length outside);
  Alcotest.(check int) "none left in loop" 0 (List.length inside)

let test_hoisting_enables_detection () =
  (* With hoisting, the deferred-copy redundancy is reported for every
     iteration after the first (Listing 4). *)
  let tp = instrument jacobi_listing3 in
  let o = Accrt.Interp.run ~coherence:true tp in
  let redundant_updates =
    List.filter
      (fun r ->
        r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant
        && (match r.Accrt.Coherence.r_site with
           | Some s -> s.site_label = "update0.host(b)"
           | None -> false))
      (Accrt.Interp.reports o)
  in
  Alcotest.(check int) "iterations 2..3 flagged" 2
    (List.length redundant_updates);
  (* Naive placement re-marks the state each iteration and misses them. *)
  let tpn = instrument ~mode:Checkgen.Naive jacobi_listing3 in
  let on = Accrt.Interp.run ~coherence:true tpn in
  let naive_flags =
    List.filter
      (fun r ->
        r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant
        && (match r.Accrt.Coherence.r_site with
           | Some s -> s.site_label = "update0.host(b)"
           | None -> false))
      (Accrt.Interp.reports on)
  in
  Alcotest.(check int) "naive placement detects none" 0
    (List.length naive_flags)

let test_host_upload_blocks_hoist () =
  (* An upload of the checked array inside the loop blocks hoisting. *)
  let src =
    "int main() { int n = 8; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\n#pragma acc data create(a)\n{\nfor (int k = 0; k < 3; \
     k++) {\n#pragma acc update device(a)\n#pragma acc kernels loop\nfor \
     (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n#pragma acc update \
     host(a)\nfor (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; \
     }\n}\n}\nreturn 0; }"
  in
  let tp = instrument src in
  let inside, _ = gpu_checks_partition tp in
  Alcotest.(check bool) "gpu checks stay in loop" true
    (List.length inside >= 1)

let test_cpu_first_access_placement () =
  let src =
    "int main() { int n = 8; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\nfor (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; \
     }\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { a[i] = \
     a[i] * 2.0; }\nfor (int i = 0; i < n; i++) { a[0] = a[0] + a[i]; \
     }\nreturn 0; }"
  in
  let tp = instrument src in
  let cpu_writes =
    List.filter
      (function Check_write ("a", Cpu) -> true | _ -> false)
      (checks_at_depth tp 0)
  in
  (* Each pre-kernel write loop can be the first write along the path
     where the preceding loop is zero-trip, so both carry a (hoisted)
     check; anything beyond that would be naive per-access placement. *)
  Alcotest.(check int) "cpu write checks before kernel" 2
    (List.length cpu_writes);
  let cpu_reads =
    List.filter
      (function Check_read ("a", Cpu) -> true | _ -> false)
      (checks_at_depth tp 0)
  in
  (* The read after the kernel needs its own check (kernel resets). *)
  Alcotest.(check bool) "cpu read check after kernel" true
    (List.length cpu_reads >= 1)

let test_naive_inserts_more () =
  let opt = instrument jacobi_listing3 in
  let naive = instrument ~mode:Checkgen.Naive jacobi_listing3 in
  Alcotest.(check bool) "naive inserts at least as many" true
    (Tprog.count_checks naive >= Tprog.count_checks opt)

let test_reset_after_kernel () =
  (* q is written on the GPU and never read by the host: a reset after the
     launch marks the CPU copy dead so its download is reported. *)
  let src =
    "int main() { int n = 8; float q[n]; float x[n];\nfor (int i = 0; i < \
     n; i++) { x[i] = 1.0; }\n#pragma acc kernels loop\nfor (int i = 0; i \
     < n; i++) { q[i] = x[i]; }\nfor (int i = 0; i < n; i++) { x[0] = x[0] \
     + x[i]; }\nreturn 0; }"
  in
  let tp = instrument src in
  let resets = ref [] in
  Tprog.iter tp (fun s ->
      match s.tkind with
      | Tcheck (Reset_status (v, Cpu, st)) -> resets := (v, st) :: !resets
      | _ -> ());
  Alcotest.(check bool) "reset for q's dead CPU copy" true
    (List.mem ("q", Not_stale) !resets || List.mem ("q", May_stale) !resets);
  let o = Accrt.Interp.run ~coherence:true tp in
  let q_redundant =
    List.exists
      (fun r ->
        r.Accrt.Coherence.r_var = "q"
        && (r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant
           || r.Accrt.Coherence.r_kind = Accrt.Coherence.May_redundant))
      (Accrt.Interp.reports o)
  in
  Alcotest.(check bool) "q download flagged" true q_redundant

let test_check_overhead_charged () =
  let tp = instrument jacobi_listing3 in
  let o = Accrt.Interp.run ~coherence:true tp in
  let m = Accrt.Interp.metrics o in
  Alcotest.(check bool) "overhead accounted" true
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Check_overhead > 0.0);
  Alcotest.(check bool) "checks executed" true
    (o.Accrt.Interp.coherence.Accrt.Coherence.checks_executed > 0)

let base_tests =
  [ Alcotest.test_case "GPU checks hoisted" `Quick test_gpu_checks_hoisted;
    Alcotest.test_case "hoisting enables Listing-4 detection" `Quick
      test_hoisting_enables_detection;
    Alcotest.test_case "upload blocks hoist" `Quick
      test_host_upload_blocks_hoist;
    Alcotest.test_case "CPU first-access placement" `Quick
      test_cpu_first_access_placement;
    Alcotest.test_case "naive inserts more checks" `Quick
      test_naive_inserts_more;
    Alcotest.test_case "reset after kernel (dead CPU copy)" `Quick
      test_reset_after_kernel;
    Alcotest.test_case "check overhead charged" `Quick
      test_check_overhead_charged ]

(* Property: instrumentation never changes program results, whatever the
   placement mode or tracking granularity. *)
let instrumentation_transparent =
  QCheck.Test.make ~count:40
    ~name:"instrumentation and granularity preserve semantics"
    (QCheck.make
       QCheck.Gen.(
         let term = oneofl [ "a[i]"; "b[i]"; "float(i)"; "0.5"; "c" ] in
         let op = oneofl [ "+"; "*"; "-" ] in
         pair (map3 (fun t1 o t2 -> Fmt.str "%s %s %s" t1 o t2) term op term)
           (int_bound 3))
       ~print:(fun (rhs, iters) -> Fmt.str "%s / %d iters" rhs iters))
    (fun (rhs, iters) ->
      let src =
        Fmt.str
          "int main() { int n = 16; float a[n]; float b[n]; float c = \
           2.0;\nfor (int i = 0; i < n; i++) { a[i] = float(i) * 0.5; b[i] \
           = 1.0; }\nfor (int k = 0; k < %d; k++) {\n#pragma acc kernels \
           loop\nfor (int i = 0; i < n; i++) { b[i] = %s; }\n#pragma acc \
           update host(b)\n}\nreturn 0; }"
          (iters + 1) rhs
      in
      let tp = Translate.compile_string src in
      let base = Accrt.Interp.run ~coherence:false tp in
      let buf_of o = Accrt.Interp.host_array o "b" in
      let same o =
        snd
          (Gpusim.Buf.compare ~margin:0.0 ~reference:(buf_of base)
             (buf_of o))
        = 0
      in
      let opt =
        Accrt.Interp.run ~coherence:true (Checkgen.instrument tp)
      in
      let naive =
        Accrt.Interp.run ~coherence:true
          (Checkgen.instrument ~mode:Checkgen.Naive tp)
      in
      let fine =
        Accrt.Interp.run ~coherence:true
          ~granularity:Accrt.Coherence.Fine (Checkgen.instrument tp)
      in
      same opt && same naive && same fine)

(* Property: optimized placement never reports more missing/incorrect
   errors than exist — on correct programs, none at all. *)
let no_false_errors =
  QCheck.Test.make ~count:40
    ~name:"no missing/incorrect reports on correct programs"
    (QCheck.make QCheck.Gen.(int_range 1 4) ~print:string_of_int)
    (fun iters ->
      let src =
        Fmt.str
          "int main() { int n = 8; float a[n];\nfor (int i = 0; i < n; \
           i++) { a[i] = 1.0; }\n#pragma acc data copy(a)\n{\nfor (int k = \
           0; k < %d; k++) {\n#pragma acc kernels loop\nfor (int i = 0; i \
           < n; i++) { a[i] = a[i] + 1.0; }\n#pragma acc update \
           host(a)\nfloat probe = a[0];\na[1] = probe;\n#pragma acc update \
           device(a)\n}\n}\nfloat cs = a[0];\nreturn 0; }"
          iters
      in
      let tp = Checkgen.instrument (Translate.compile_string src) in
      let o = Accrt.Interp.run ~coherence:true tp in
      not
        (List.exists
           (fun (r : Accrt.Coherence.report) ->
             r.r_kind = Accrt.Coherence.Missing
             || r.r_kind = Accrt.Coherence.Incorrect)
           (Accrt.Interp.reports o)))

let property_tests =
  [ QCheck_alcotest.to_alcotest instrumentation_transparent;
    QCheck_alcotest.to_alcotest no_false_errors ]

let tests = base_tests @ property_tests
