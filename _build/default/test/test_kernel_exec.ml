(* Kernel-executor internals: reduction identities and tree combination,
   plus direct execution checks through small translated programs. *)

open Minic.Ast
open Accrt.Value

let scalar = Alcotest.testable
    (fun ppf v -> Fmt.pf ppf "%g" (Accrt.Value.to_float v))
    (fun a b -> Accrt.Value.to_float a = Accrt.Value.to_float b)

let test_identities () =
  Alcotest.check scalar "sum int" (Int 0)
    (Accrt.Kernel_exec.identity Rsum (Int 5));
  Alcotest.check scalar "sum float" (Flt 0.0)
    (Accrt.Kernel_exec.identity Rsum (Flt 5.0));
  Alcotest.check scalar "prod" (Flt 1.0)
    (Accrt.Kernel_exec.identity Rprod (Flt 2.0));
  Alcotest.(check bool) "max identity is -inf" true
    (Accrt.Kernel_exec.identity Rmax (Flt 0.0) = Flt Float.neg_infinity);
  Alcotest.(check bool) "min identity is +inf" true
    (Accrt.Kernel_exec.identity Rmin (Flt 0.0) = Flt Float.infinity);
  Alcotest.check scalar "land" (Int 1)
    (Accrt.Kernel_exec.identity Rland (Int 0));
  Alcotest.check scalar "lor" (Int 0)
    (Accrt.Kernel_exec.identity Rlor (Int 1))

let test_combine () =
  Alcotest.check scalar "sum" (Flt 3.5)
    (Accrt.Kernel_exec.combine Rsum (Flt 1.5) (Flt 2.0));
  Alcotest.check scalar "prod int" (Int 6)
    (Accrt.Kernel_exec.combine Rprod (Int 2) (Int 3));
  Alcotest.check scalar "max" (Flt 2.0)
    (Accrt.Kernel_exec.combine Rmax (Flt 1.5) (Flt 2.0));
  Alcotest.check scalar "min int" (Int 1)
    (Accrt.Kernel_exec.combine Rmin (Int 4) (Int 1));
  Alcotest.check scalar "land" (Int 0)
    (Accrt.Kernel_exec.combine Rland (Int 1) (Int 0));
  Alcotest.check scalar "lor" (Int 1)
    (Accrt.Kernel_exec.combine Rlor (Int 0) (Int 1))

let test_tree_reduce () =
  (match Accrt.Kernel_exec.tree_reduce Rsum [] with
  | None -> ()
  | Some _ -> Alcotest.fail "empty -> None");
  (match Accrt.Kernel_exec.tree_reduce Rsum [ Int 7 ] with
  | Some (Int 7) -> ()
  | _ -> Alcotest.fail "singleton");
  (* tree combination computes the same total as a left fold for ints *)
  let parts = List.init 13 (fun i -> Int (i + 1)) in
  (match Accrt.Kernel_exec.tree_reduce Rsum parts with
  | Some (Int 91) -> ()
  | _ -> Alcotest.fail "sum 1..13");
  match Accrt.Kernel_exec.tree_reduce Rmax (List.map (fun i -> Int i) [ 3; 9; 1; 7 ]) with
  | Some (Int 9) -> ()
  | _ -> Alcotest.fail "max"

(* Tree order genuinely differs from sequential order for floats. *)
let tree_vs_sequential =
  QCheck.Test.make ~count:200 ~name:"float tree-sum within 1e-9 of fold"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 64)
              (float_range 0.0001 1000.))
    (fun xs ->
      let seq = List.fold_left ( +. ) 0.0 xs in
      match
        Accrt.Kernel_exec.tree_reduce Rsum (List.map (fun f -> Flt f) xs)
      with
      | Some v ->
          Float.abs (Accrt.Value.to_float v -. seq)
          <= 1e-9 *. Float.max 1.0 (Float.abs seq)
      | None -> false)

let test_zero_trip_kernel () =
  (* a loop that never runs leaves everything untouched *)
  let src =
    "int main() { int n = 8; float a[n]; float s = 5.0;\nfor (int i = 0; i \
     < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop \
     reduction(+:s)\nfor (int i = 3; i < 3; i++) { s = s + a[i]; }\nreturn \
     0; }"
  in
  let o = Accrt.Interp.run_string src in
  Alcotest.(check (float 0.)) "reduction unchanged" 5.0
    (Accrt.Value.to_float (Accrt.Interp.host_scalar o "s"))

let test_loop_var_exit_value () =
  (* the committed loop variable matches sequential semantics *)
  let src =
    "int main() { int n = 8; int i; float a[n];\nfor (int k = 0; k < n; \
     k++) { a[k] = 1.0; }\n#pragma acc kernels loop\nfor (i = 0; i < n; i \
     = i + 2) { a[i] = 2.0; }\nreturn 0; }"
  in
  let o = Accrt.Interp.run_string src in
  Alcotest.(check int) "i exits at 8" 8
    (Accrt.Value.to_int (Accrt.Interp.host_scalar o "i"))

let test_reduction_on_int () =
  let src =
    "int main() { int n = 100; int a[n]; int s = 0;\nfor (int i = 0; i < \
     n; i++) { a[i] = i; }\n#pragma acc kernels loop reduction(+:s)\nfor \
     (int i = 0; i < n; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  let o = Accrt.Interp.run_string src in
  Alcotest.(check int) "int reduction exact" 4950
    (Accrt.Value.to_int (Accrt.Interp.host_scalar o "s"))

let test_single_thread_kernel () =
  (* a non-loop statement inside a kernels region runs as one thread *)
  let src =
    "int main() { float a[4]; float norm = 0.0;\nfor (int i = 0; i < 4; \
     i++) { a[i] = 2.0; }\n#pragma acc kernels\n{\nnorm = a[0] + a[1] + \
     a[2] + a[3];\nfor (int i = 0; i < 4; i++) { a[i] = a[i] / norm; \
     }\n}\nreturn 0; }"
  in
  let o = Accrt.Interp.run_string src in
  Alcotest.(check (float 0.)) "scalar kernel computed" 8.0
    (Accrt.Value.to_float (Accrt.Interp.host_scalar o "norm"));
  Alcotest.(check (float 0.)) "second kernel used it" 0.25
    (Gpusim.Buf.get_float (Accrt.Interp.host_array o "a") 0)

let tests =
  [ Alcotest.test_case "reduction identities" `Quick test_identities;
    Alcotest.test_case "combine" `Quick test_combine;
    Alcotest.test_case "tree reduce" `Quick test_tree_reduce;
    QCheck_alcotest.to_alcotest tree_vs_sequential;
    Alcotest.test_case "zero-trip kernel" `Quick test_zero_trip_kernel;
    Alcotest.test_case "loop var exit value" `Quick test_loop_var_exit_value;
    Alcotest.test_case "int reduction" `Quick test_reduction_on_int;
    Alcotest.test_case "single-thread kernel" `Quick
      test_single_thread_kernel ]
