(* Kernel verification (§III-A): detection of injected races, error-margin
   and minValueToCheck configuration, kernel selection with complement,
   value bounds, debug assertions, the demotion pass, and Figure-3-style
   metrics. *)

open Minic

let prog src = Parser.parse_string src

let faulty_src =
  "int main() { int n = 32; float a[n]; float b[n]; float t; float s = \
   0.0;\nfor (int i = 0; i < n; i++) { a[i] = float(i) * 0.1; }\n#pragma \
   acc kernels loop\nfor (int i = 0; i < n; i++) { t = a[i] * 2.0; b[i] = \
   t; }\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { s = s + \
   b[i]; }\nreturn 0; }"

let verify ?opts ?config src =
  Openarc_core.Kernel_verify.verify ?opts ?config (prog src)

let names_of_failures v =
  List.map
    (fun r -> r.Openarc_core.Kernel_verify.kr_kernel.Codegen.Tprog.k_name)
    (Openarc_core.Kernel_verify.detected_errors v)

let test_correct_program_passes () =
  let v = verify faulty_src in
  Alcotest.(check (list string)) "no errors" [] (names_of_failures v);
  Alcotest.(check int) "two kernels verified" 2
    (List.length v.Openarc_core.Kernel_verify.reports)

let test_fault_injection_detection () =
  let v = verify ~opts:Codegen.Options.fault_injection faulty_src in
  (* the broken reduction (kernel1) is active and detected; the broken
     privatization (kernel0) is latent and invisible *)
  Alcotest.(check (list string)) "only the reduction kernel fails"
    [ "main_kernel1" ] (names_of_failures v)

let test_occurrences_counted () =
  let src =
    "int main() { int n = 8; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\nfor (int k = 0; k < 5; k++) {\n#pragma acc kernels \
     loop\nfor (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }\n}\nreturn \
     0; }"
  in
  let v = verify src in
  match v.Openarc_core.Kernel_verify.reports with
  | [ r ] ->
      Alcotest.(check int) "five occurrences" 5
        r.Openarc_core.Kernel_verify.kr_occurrences
  | _ -> Alcotest.fail "one kernel"

let test_kernel_selection () =
  let opts = Codegen.Options.fault_injection in
  let config =
    Openarc_core.Vconfig.of_string "complement=0,kernels=main_kernel0"
  in
  let v = verify ~opts ~config faulty_src in
  Alcotest.(check int) "only kernel0 verified" 1
    (List.length v.Openarc_core.Kernel_verify.reports);
  (* complement=1: everything except kernel0, so the bad kernel1 is hit *)
  let config' =
    Openarc_core.Vconfig.of_string "complement=1,kernels=main_kernel0"
  in
  let v' = verify ~opts ~config:config' faulty_src in
  Alcotest.(check (list string)) "kernel1 caught" [ "main_kernel1" ]
    (names_of_failures v')

let test_error_margin () =
  (* A tiny injected difference: strict margin reports it, loose accepts. *)
  let opts = Codegen.Options.fault_injection in
  let strict = { Openarc_core.Vconfig.default with error_margin = 1e-12 } in
  let loose = { Openarc_core.Vconfig.default with error_margin = 1e6 } in
  let v_strict = verify ~opts ~config:strict faulty_src in
  let v_loose = verify ~opts ~config:loose faulty_src in
  Alcotest.(check bool) "strict detects" true
    (names_of_failures v_strict <> []);
  Alcotest.(check (list string)) "loose forgives" []
    (names_of_failures v_loose)

let test_min_value_to_check () =
  (* Race on values all below the threshold: skipped by minValueToCheck. *)
  let src =
    "int main() { int n = 8; float a[n]; float s = 0.0;\nfor (int i = 0; i \
     < n; i++) { a[i] = 1e-40; }\n#pragma acc kernels loop\nfor (int i = \
     0; i < n; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  let opts = Codegen.Options.fault_injection in
  let skip =
    { Openarc_core.Vconfig.default with min_value = 1e-32;
      error_margin = 0.0 }
  in
  let v = verify ~opts ~config:skip src in
  Alcotest.(check (list string)) "below minValueToCheck" []
    (names_of_failures v)

let test_value_bounds () =
  (* §III-C: differences whose GPU value stays inside a user-declared
     per-variable bound are acceptable and suppressed. *)
  let src =
    "int main() { int n = 8; float a[n]; float s = 0.0;\nfor (int i = 0; \
     i < n; i++) { a[i] = 0.25; }\n#pragma acc kernels loop\nfor (int i \
     = 0; i < n; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  (* the raced accumulator ends at 0.25 instead of 2.0 *)
  let opts = Codegen.Options.fault_injection in
  let v = verify ~opts src in
  Alcotest.(check bool) "baseline: detected" true
    (names_of_failures v <> []);
  (* the user declares any s in [0, 10] acceptable: absorbed *)
  let bounded =
    { Openarc_core.Vconfig.default with
      bounds = [ { Openarc_core.Vconfig.b_var = "s"; b_min = 0.0;
                   b_max = 10.0 } ] }
  in
  let v' = verify ~opts ~config:bounded src in
  Alcotest.(check (list string)) "absorbed by the bound" []
    (names_of_failures v');
  (* a tighter bound that excludes the corrupted value still detects *)
  let tight =
    { Openarc_core.Vconfig.default with
      bounds = [ { Openarc_core.Vconfig.b_var = "s"; b_min = 1.0;
                   b_max = 10.0 } ] }
  in
  let v'' = verify ~opts ~config:tight src in
  Alcotest.(check bool) "tight bound still detects" true
    (names_of_failures v'' <> [])

let test_debug_assertion () =
  (* §III-C: a user checksum assertion fires on GPU output. *)
  let config =
    { Openarc_core.Vconfig.default with
      assertions =
        [ { Openarc_core.Vconfig.a_name = "b stays positive"; a_var = "b";
            a_check =
              (fun buf ->
                let ok = ref true in
                for i = 0 to Gpusim.Buf.length buf - 1 do
                  if Gpusim.Buf.get_float buf i < -1.0 then ok := false
                done;
                !ok) } ] }
  in
  let v = verify ~config faulty_src in
  Alcotest.(check (list string)) "assertion holds" []
    (names_of_failures v);
  let config_bad =
    { config with
      assertions =
        [ { Openarc_core.Vconfig.a_name = "impossible"; a_var = "b";
            a_check = (fun _ -> false) } ] }
  in
  let v' = verify ~config:config_bad faulty_src in
  Alcotest.(check bool) "failing assertion reported" true
    (List.exists
       (fun r -> r.Openarc_core.Kernel_verify.kr_assertion_failures <> [])
       v'.Openarc_core.Kernel_verify.reports)

let test_no_error_propagation () =
  (* Even with a corrupted first kernel, the second kernel is verified
     against clean reference inputs: only the *faulty* kernel is reported. *)
  let src =
    "int main() { int n = 16; float a[n]; float b[n]; float s = 0.0; float \
     c = 0.0;\nfor (int i = 0; i < n; i++) { a[i] = 1.0; }\n#pragma acc \
     kernels loop\nfor (int i = 0; i < n; i++) { s = s + a[i]; }\n#pragma \
     acc kernels loop\nfor (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; \
     }\nreturn 0; }"
  in
  let v = verify ~opts:Codegen.Options.fault_injection src in
  Alcotest.(check (list string)) "only the racy kernel" [ "main_kernel0" ]
    (names_of_failures v)

let test_metrics_breakdown () =
  let v = verify faulty_src in
  let m = v.Openarc_core.Kernel_verify.metrics in
  Alcotest.(check bool) "transfers happened" true
    (Gpusim.Metrics.total_bytes m > 0);
  Alcotest.(check bool) "comparison time charged" true
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Result_comp > 0.0);
  Alcotest.(check bool) "sequential baseline present" true
    (v.Openarc_core.Kernel_verify.sequential_ops > 0)

let test_vconfig_parsing () =
  let c =
    Openarc_core.Vconfig.of_string
      "verificationOptions=complement=1,kernels=k0,errorMargin=1e-6,\
       minValueToCheck=1e-32"
  in
  Alcotest.(check bool) "complement" true c.Openarc_core.Vconfig.complement;
  Alcotest.(check (list string)) "kernels" [ "k0" ]
    c.Openarc_core.Vconfig.kernels;
  Alcotest.(check (float 0.)) "margin" 1e-6
    c.Openarc_core.Vconfig.error_margin;
  Alcotest.(check (float 0.)) "min value" 1e-32
    c.Openarc_core.Vconfig.min_value;
  Alcotest.(check bool) "selects others" true
    (Openarc_core.Vconfig.selects c "k1");
  Alcotest.(check bool) "excludes listed" false
    (Openarc_core.Vconfig.selects c "k0")

let test_demotion_pass () =
  let src =
    "int main() { int n = 8; float a[n]; float b[n];\nfor (int i = 0; i < \
     n; i++) { a[i] = 1.0; }\n#pragma acc data copyin(a) \
     create(b)\n{\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { \
     b[i] = a[i]; }\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) \
     { a[i] = b[i] * 2.0; }\n}\nreturn 0; }"
  in
  let c = Openarc_core.Compiler.compile src in
  let out =
    Openarc_core.Demotion.to_string c.Openarc_core.Compiler.tprog
      "main_kernel0"
  in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  (* Listing 2 shape: demoted clauses + async on the target, wait after,
     the enclosing data directive and the other compute region stripped. *)
  Alcotest.(check bool) "copy(b) demoted" true (contains "copy(b)");
  Alcotest.(check bool) "copyin(a) demoted" true (contains "copyin(a)");
  Alcotest.(check bool) "async added" true (contains "async(1)");
  Alcotest.(check bool) "wait inserted" true (contains "#pragma acc wait(1)");
  Alcotest.(check bool) "data region stripped" false (contains "acc data");
  (* exactly one compute directive remains *)
  let count_sub needle =
    let n = String.length needle and m = String.length out in
    let rec go i acc =
      if i + n > m then acc
      else if String.sub out i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one kernels directive left" 1
    (count_sub "acc kernels")

let tests =
  [ Alcotest.test_case "correct program passes" `Quick
      test_correct_program_passes;
    Alcotest.test_case "fault injection detection" `Quick
      test_fault_injection_detection;
    Alcotest.test_case "occurrences counted" `Quick test_occurrences_counted;
    Alcotest.test_case "kernel selection + complement" `Quick
      test_kernel_selection;
    Alcotest.test_case "error margin" `Quick test_error_margin;
    Alcotest.test_case "minValueToCheck" `Quick test_min_value_to_check;
    Alcotest.test_case "value bounds" `Quick test_value_bounds;
    Alcotest.test_case "debug assertion API" `Quick test_debug_assertion;
    Alcotest.test_case "no error propagation" `Quick
      test_no_error_propagation;
    Alcotest.test_case "metrics breakdown" `Quick test_metrics_breakdown;
    Alcotest.test_case "vconfig parsing" `Quick test_vconfig_parsing;
    Alcotest.test_case "demotion pass (Listing 2)" `Quick test_demotion_pass ]
