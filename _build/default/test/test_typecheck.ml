(* Type checker: acceptance of well-typed programs, rejection with located
   errors, and the returned variable-type environment. *)

open Minic

let accepts src = ignore (Typecheck.check (Parser.parse_string src))

let rejects name src =
  try
    accepts src;
    Alcotest.failf "%s: expected a type error" name
  with Loc.Error _ -> ()

let test_accepts () =
  accepts "int main() { int x = 1; float y = 2.5; y = x; return 0; }";
  accepts
    "int main() { int n = 4; float a[n]; a[0] = 1.0; float v = a[1]; \
     return 0; }";
  accepts "int main() { float a[4]; float *p; p = a; p[0] = 0.5; return 0; }";
  accepts
    "float dot(float a[], float b[], int n) { float s = 0.0; for (int i = \
     0; i < n; i++) { s = s + a[i] * b[i]; } return s; }\n\
     int main() { float x[4]; float y[4]; float d = dot(x, y, 4); return 0; }";
  accepts "int main() { float x = sqrt(fabs(0.0 - 2.0)); return 0; }";
  accepts "int main() { int i = max(1, 2); float f = max(1.0, 2.5); return 0; }";
  (* int/float implicit mixing, as in C *)
  accepts "int main() { float x = 1; int y = 1 + 2 * 3; x = y; return 0; }"

let test_rejects () =
  rejects "undeclared" "int main() { x = 1; return 0; }";
  rejects "redeclared" "int main() { int x = 1; int x = 2; return 0; }";
  rejects "index scalar" "int main() { int x = 1; x[0] = 2; return 0; }";
  rejects "float index" "int main() { float a[4]; a[1.5] = 0.0; return 0; }";
  rejects "mod float" "int main() { float x = 1.5 % 2.0; return 0; }";
  rejects "arity" "int main() { float x = sqrt(1.0, 2.0); return 0; }";
  rejects "unknown fn" "int main() { frob(1); return 0; }";
  rejects "assign array to scalar"
    "int main() { float a[4]; float x = 0.0; x = a; return 0; }";
  rejects "no main" "int f() { return 0; }";
  rejects "scope leak"
    "int main() { { int x = 1; } x = 2; return 0; }";
  rejects "for scope leak"
    "int main() { for (int i = 0; i < 2; i++) { } i = 3; return 0; }";
  rejects "pointer base mismatch"
    "int main() { int a[4]; float *p; p = a; return 0; }"

let test_directive_vars () =
  accepts
    "int main() { float a[4]; float t;\n#pragma acc kernels loop \
     private(t)\nfor (int i = 0; i < 4; i++) { t = a[i]; a[i] = t; }\n\
     return 0; }";
  rejects "clause var undeclared"
    "int main() { float a[4];\n#pragma acc data copyin(zz)\n{ }\nreturn 0; }";
  rejects "private var undeclared"
    "int main() { float a[4];\n#pragma acc kernels loop private(qq)\nfor \
     (int i = 0; i < 4; i++) { a[i] = 0.0; }\nreturn 0; }"

let test_env () =
  let env =
    Typecheck.check
      (Parser.parse_string
         "float g[8];\nint main() { int n = 2; float x = 0.0; float a[n]; \
          float *p; return 0; }")
  in
  Alcotest.(check bool) "array var" true (Typecheck.is_array_var env "main" "a");
  Alcotest.(check bool) "pointer is arrayish" true
    (Typecheck.is_array_var env "main" "p");
  Alcotest.(check bool) "global array visible" true
    (Typecheck.is_array_var env "main" "g");
  Alcotest.(check bool) "scalar not array" false
    (Typecheck.is_array_var env "main" "x");
  match Typecheck.var_type env "main" "n" with
  | Some Minic.Ast.Tint -> ()
  | _ -> Alcotest.fail "n : int"

let tests =
  [ Alcotest.test_case "accepts well-typed" `Quick test_accepts;
    Alcotest.test_case "rejects ill-typed" `Quick test_rejects;
    Alcotest.test_case "directive variables" `Quick test_directive_vars;
    Alcotest.test_case "type environment" `Quick test_env ]
