(* Direct unit tests of the translated-program CFG and the paper's
   dataflow analyses (Algorithms 1 and 2, first-access), independent of the
   check-insertion pass that consumes them. *)

open Codegen
open Codegen.Tprog
open Analysis

(* q is written by the kernel and never read by the host; x is read by the
   host after the kernel; s feeds the kernel from host writes. *)
let src =
  "int main() { int n = 8; float q[n]; float x[n]; float s[n];\nfor (int i \
   = 0; i < n; i++) { s[i] = 1.0; x[i] = 0.0; }\n#pragma acc kernels \
   loop\nfor (int i = 0; i < n; i++) { q[i] = s[i]; x[i] = s[i] * 2.0; \
   }\nfloat cs = 0.0;\nfor (int i = 0; i < n; i++) { cs = cs + x[i]; \
   }\nreturn 0; }"

let setup () =
  let tp = Translate.compile_string src in
  let cfg = Tcfg.build tp in
  let sets = Tcfg.access_sets tp cfg ~through_aliases:true in
  (tp, cfg, sets)

let launch_node cfg sets =
  match Tcfg.kernel_nodes cfg sets with
  | [ n ] -> n
  | l -> Alcotest.failf "expected one kernel node, got %d" (List.length l)

let test_cfg_structure () =
  let _, cfg, sets = setup () in
  let g = cfg.Tcfg.graph in
  Alcotest.(check bool) "has nodes" true (Graph.size g > 8);
  (* entry reaches exit *)
  let rpo = Graph.reverse_postorder g ~entry:cfg.Tcfg.entry in
  Alcotest.(check bool) "exit reachable" true (List.mem cfg.Tcfg.exit_ rpo);
  (* exactly one kernel node with the right DEF/USE *)
  let k = launch_node cfg sets in
  Alcotest.(check bool) "kernel reads s" true
    (Varset.mem "s" sets.Tcfg.kern_read.(k));
  Alcotest.(check bool) "kernel writes q and x" true
    (Varset.mem "q" sets.Tcfg.kern_write.(k)
    && Varset.mem "x" sets.Tcfg.kern_write.(k));
  (* host-only loops collapse into single Thost leaves; a loop that
     contains a kernel gets real CFG structure with a join at its header *)
  let tp2 =
    Translate.compile_string
      "int main() { float a[4];\nfor (int i = 0; i < 4; i++) { a[i] = 0.0; \
       }\nfor (int k = 0; k < 2; k++) {\n#pragma acc kernels loop\nfor \
       (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; }\n}\nreturn 0; }"
  in
  let cfg2 = Tcfg.build tp2 in
  Alcotest.(check bool) "loop header is a join" true
    (Array.exists
       (fun n -> List.length (Graph.preds cfg2.Tcfg.graph n) > 1)
       (Graph.nodes cfg2.Tcfg.graph))

let test_deadness () =
  let tp, cfg, sets = setup () in
  let dead_cpu = Deadness.compute tp cfg sets Cpu in
  let k = launch_node cfg sets in
  (* after the kernel: the host never touches q again -> must-dead; x is
     read by the checksum loop -> live *)
  Alcotest.(check string) "q must-dead on CPU" "must-dead"
    (Deadness.status_name (Deadness.status_after dead_cpu k "q"));
  Alcotest.(check string) "x live on CPU" "live"
    (Deadness.status_name (Deadness.status_after dead_cpu k "x"));
  (* on the GPU side, after entry nothing reads q before the kernel writes
     it -> (may-)dead at the entry node *)
  let dead_gpu = Deadness.compute tp cfg sets Gpu in
  Alcotest.(check bool) "q not live on GPU at entry" true
    (Deadness.status_after dead_gpu cfg.Tcfg.entry "q" <> Deadness.Live);
  Alcotest.(check string) "s live on GPU at entry (kernel reads it)" "live"
    (Deadness.status_name
       (Deadness.status_after dead_gpu cfg.Tcfg.entry "s"))

let test_lastwrite () =
  let tp, cfg, sets = setup () in
  let last = Lastwrite.compute tp cfg sets Cpu in
  (* the init loop's writes of s are the last host writes before the kernel *)
  let writers_of v =
    List.filter
      (fun n -> Varset.mem v sets.Tcfg.host_write.(n))
      (Array.to_list (Graph.nodes cfg.Tcfg.graph))
  in
  Alcotest.(check bool) "s's init write is last" true
    (List.exists (fun n -> Lastwrite.is_last_write last n "s")
       (writers_of "s"))

let test_firstaccess () =
  let tp, cfg, sets = setup () in
  let first = Firstaccess.compute tp cfg sets in
  let g = cfg.Tcfg.graph in
  let first_reads_of v =
    List.filter
      (fun n -> Varset.mem v first.Firstaccess.first_read.(n))
      (Array.to_list (Graph.nodes g))
  in
  (* x's host read after the kernel is a first read (the kernel resets) *)
  Alcotest.(check bool) "x has a first-read point" true
    (first_reads_of "x" <> []);
  (* s is never read by the host: no first-read anywhere *)
  Alcotest.(check (list int)) "s has no host first-read" []
    (first_reads_of "s")

let test_blind_sets_drop_alias_reads () =
  let src =
    "int main() { float a[4]; float b[4]; float *p; float *q; float *t;\np \
     = a; q = b;\nfor (int k = 0; k < 2; k++) {\n#pragma acc kernels \
     loop\nfor (int i = 0; i < 4; i++) { a[i] = 1.0; b[i] = 1.0; }\nt = p; \
     p = q; q = t;\n}\nfloat cs = p[0];\nreturn 0; }"
  in
  let tp = Translate.compile_string src in
  let cfg = Tcfg.build tp in
  let full = Tcfg.access_sets tp cfg ~through_aliases:true in
  let blind = Tcfg.access_sets tp cfg ~through_aliases:false in
  let total sets =
    Array.fold_left (fun acc s -> acc + Varset.cardinal s) 0 sets
  in
  (* the final read via the ambiguous p is visible to the full view only *)
  Alcotest.(check bool) "blind view sees fewer host reads" true
    (total blind.Tcfg.host_read < total full.Tcfg.host_read)

let tests =
  [ Alcotest.test_case "CFG structure and access sets" `Quick
      test_cfg_structure;
    Alcotest.test_case "Algorithm 1 (deadness)" `Quick test_deadness;
    Alcotest.test_case "Algorithm 2 (last write)" `Quick test_lastwrite;
    Alcotest.test_case "first-access placement" `Quick test_firstaccess;
    Alcotest.test_case "alias-blind view drops pointer reads" `Quick
      test_blind_sets_drop_alias_reads ]
