(* OpenACC feature semantics beyond the core scheme: if clauses, launch
   dimensions, declare, timeline tracing, environment configuration. *)


let run ?instrument ?trace src =
  let tp = Codegen.Translate.compile_string src in
  let tp =
    if instrument = Some true then Codegen.Checkgen.instrument tp else tp
  in
  Accrt.Interp.run ~coherence:(instrument = Some true)
    ?trace tp

let out_f o name = Accrt.Value.to_float (Accrt.Interp.host_scalar o name)

(* --------------------------- if clause --------------------------- *)

let if_src cond =
  Fmt.str
    "int main() { int n = 16; int usegpu = %d; float a[n];\nfor (int i = \
     0; i < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop \
     if(usegpu)\nfor (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; \
     }\nfloat cs = 0.0;\nfor (int i = 0; i < n; i++) { cs = cs + a[i]; \
     }\nreturn 0; }"
    cond

let test_if_on_compute () =
  let on = run (if_src 1) in
  let off = run (if_src 0) in
  (* results identical either way... *)
  Alcotest.(check (float 0.)) "gpu result" 32.0 (out_f on "cs");
  Alcotest.(check (float 0.)) "host-fallback result" 32.0 (out_f off "cs");
  (* ...but the false condition launches nothing and moves nothing *)
  let m_on = Accrt.Interp.metrics on in
  let m_off = Accrt.Interp.metrics off in
  Alcotest.(check int) "launch when true" 1 m_on.Gpusim.Metrics.kernel_launches;
  Alcotest.(check int) "no launch when false" 0
    m_off.Gpusim.Metrics.kernel_launches;
  Alcotest.(check int) "no traffic when false" 0
    (Gpusim.Metrics.total_bytes m_off)

let test_if_on_update () =
  let src cond =
    Fmt.str
      "int main() { int n = 8; int c = %d; float a[n];\nfor (int i = 0; i \
       < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop\nfor (int i = \
       0; i < n; i++) { a[i] = 2.0; }\n#pragma acc update host(a) \
       if(c)\nreturn 0; }"
      cond
  in
  let count_d2h cond =
    (Accrt.Interp.metrics (run (src cond))).Gpusim.Metrics.transfers_d2h
  in
  (* implicit copies also move a back; the update adds one when enabled *)
  Alcotest.(check int) "guarded update runs" (count_d2h 0 + 1) (count_d2h 1)

let test_if_on_data () =
  let src cond =
    Fmt.str
      "int main() { int n = 8; int c = %d; float a[n];\nfor (int i = 0; i \
       < n; i++) { a[i] = 1.0; }\n#pragma acc data copyin(a) \
       if(c)\n{\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { \
       a[i] = a[i] * 3.0; }\n}\nfloat cs = 0.0;\nfor (int i = 0; i < n; \
       i++) { cs = cs + a[i]; }\nreturn 0; }"
      cond
  in
  (* correct results whichever way the condition goes *)
  Alcotest.(check (float 0.)) "cond true" 24.0 (out_f (run (src 1)) "cs");
  Alcotest.(check (float 0.)) "cond false" 24.0 (out_f (run (src 0)) "cs")

(* ------------------------ launch dimensions ------------------------ *)

let test_launch_dimensions () =
  let src dims =
    Fmt.str
      "int main() { int n = 4096; float a[n];\nfor (int i = 0; i < n; i++) \
       { a[i] = 1.0; }\n#pragma acc kernels loop %s\nfor (int i = 0; i < \
       n; i++) { a[i] = a[i] * 2.0; }\nreturn 0; }"
      dims
  in
  (* synchronous kernel time is charged to the Async-Wait category *)
  let ktime dims =
    Gpusim.Metrics.time_of
      (Accrt.Interp.metrics (run (src dims)))
      Gpusim.Metrics.Async_wait
  in
  let narrow = ktime "num_gangs(2) num_workers(2)" in
  let wide = ktime "num_gangs(64) num_workers(8)" in
  let default = ktime "gang worker" in
  Alcotest.(check bool) "narrow launch is slower" true (narrow > 2. *. wide);
  Alcotest.(check bool) "wide matches device default" true
    (Float.abs (wide -. default) /. default < 0.25)

(* ---------------------------- declare ----------------------------- *)

let test_declare () =
  let src =
    "float g[16];\nint main() {\nfor (int i = 0; i < 16; i++) { g[i] = \
     1.0; }\n#pragma acc declare copyin(g)\n#pragma acc kernels loop\nfor \
     (int i = 0; i < 16; i++) { g[i] = g[i] + 1.0; }\n#pragma acc update \
     host(g)\nfloat cs = 0.0;\nfor (int i = 0; i < 16; i++) { cs = cs + \
     g[i]; }\nreturn 0; }"
  in
  Alcotest.(check (float 0.)) "declare keeps g device-resident" 32.0
    (out_f (run src) "cs")

(* ---------------------------- timeline ---------------------------- *)

let test_timeline () =
  let src =
    "int main() { int n = 64; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\n#pragma acc kernels loop async(1)\nfor (int i = 0; i < \
     n; i++) { a[i] = a[i] * 2.0; }\n#pragma acc wait(1)\nreturn 0; }"
  in
  let o = run ~trace:true src in
  let tl = o.Accrt.Interp.device.Gpusim.Device.timeline in
  Alcotest.(check bool) "events recorded" true (Gpusim.Timeline.count tl > 3);
  let evs = Gpusim.Timeline.events tl in
  (* kernels carry their source-level name; async ops carry their stream *)
  Alcotest.(check bool) "kernel labelled" true
    (List.exists
       (fun e ->
         match e.Gpusim.Timeline.ev_kind with
         | Gpusim.Timeline.Ev_kernel { name = "main_kernel0"; _ } -> true
         | _ -> false)
       evs);
  Alcotest.(check bool) "stream attributed" true
    (List.exists (fun e -> e.Gpusim.Timeline.ev_stream = Some 1) evs);
  (* events are timestamped within the simulated run and ordered *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "nonnegative times" true
        (e.Gpusim.Timeline.ev_start >= 0.0
        && e.Gpusim.Timeline.ev_duration >= 0.0))
    evs;
  (* chrome-trace JSON is well-formed enough to be bracketed and quoted *)
  let json = Gpusim.Timeline.to_chrome_json tl in
  Alcotest.(check bool) "json brackets" true
    (String.length json > 2 && json.[0] = '[');
  Alcotest.(check bool) "summary has kernels" true
    (List.mem_assoc "kernel" (Gpusim.Timeline.summary tl));
  (* disabled timelines record nothing *)
  let o2 = run ~trace:false src in
  Alcotest.(check int) "disabled timeline empty" 0
    (Gpusim.Timeline.count o2.Accrt.Interp.device.Gpusim.Device.timeline)

(* ---------------------- environment config ------------------------ *)

let test_env_config () =
  Unix.putenv "OPENARC_VERIFICATION" "complement=1,kernels=k7";
  let c = Openarc_core.Vconfig.from_env () in
  Alcotest.(check bool) "complement from env" true
    c.Openarc_core.Vconfig.complement;
  Alcotest.(check (list string)) "kernels from env" [ "k7" ]
    c.Openarc_core.Vconfig.kernels;
  Unix.putenv "OPENARC_VERIFICATION" "";
  let d = Openarc_core.Vconfig.from_env () in
  Alcotest.(check bool) "unset -> default" true
    (d = Openarc_core.Vconfig.default)

let base_tests =
  [ Alcotest.test_case "if on compute constructs" `Quick test_if_on_compute;
    Alcotest.test_case "if on update" `Quick test_if_on_update;
    Alcotest.test_case "if on data regions" `Quick test_if_on_data;
    Alcotest.test_case "launch dimensions" `Quick test_launch_dimensions;
    Alcotest.test_case "declare directive" `Quick test_declare;
    Alcotest.test_case "timeline tracing" `Quick test_timeline;
    Alcotest.test_case "verification config from env" `Quick test_env_config ]

(* ------------------- OpenACC runtime library routines ------------------- *)

let test_acc_routines () =
  let src =
    "int main() { int n = 4096; float a[n]; int ndev = \
     acc_get_num_devices(4);\nacc_init(4);\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\nint done_before = 0;\nint done_after = 0;\n#pragma acc \
     data copy(a)\n{\n#pragma acc kernels loop async(1)\nfor (int i = 0; i \
     < n; i++) { a[i] = a[i] * 2.0; }\ndone_before = \
     acc_async_test(1);\nacc_async_wait(1);\ndone_after = \
     acc_async_test(1);\n}\nacc_shutdown(4);\nreturn 0; }"
  in
  let o = run src in
  let geti name = Accrt.Value.to_int (Accrt.Interp.host_scalar o name) in
  Alcotest.(check int) "one simulated device" 1 (geti "ndev");
  Alcotest.(check int) "stream busy before wait" 0 (geti "done_before");
  Alcotest.(check int) "stream drained after wait" 1 (geti "done_after");
  (* acc_async_wait really synchronizes: the wait time is accounted *)
  let m = Accrt.Interp.metrics o in
  Alcotest.(check bool) "wait accounted" true
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Async_wait > 0.0)

let test_acc_routines_reference () =
  (* The sequential reference executes the same program with host-only
     semantics: async work is already done. *)
  let src =
    "int main() { int t = acc_get_device_type();\nint done_now = \
     acc_async_test_all();\nint on_host = acc_on_device(2);\nreturn 0; }"
  in
  let ctx = Accrt.Eval.run_reference (Minic.Parser.parse_string src) in
  let geti name =
    Accrt.Value.to_int (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)
  in
  Alcotest.(check int) "host device type" 2 (geti "t");
  Alcotest.(check int) "everything done" 1 (geti "done_now");
  Alcotest.(check int) "on host" 1 (geti "on_host")

let test_acc_device_selection () =
  let src =
    "int main() { acc_set_device_type(4);\nacc_set_device_num(0, 4);\nint \
     t = acc_get_device_type();\nint num = acc_get_device_num(4);\nreturn \
     0; }"
  in
  let o = run src in
  let geti name = Accrt.Value.to_int (Accrt.Interp.host_scalar o name) in
  Alcotest.(check int) "device type set" 4 (geti "t");
  Alcotest.(check int) "device num" 0 (geti "num")

let more_tests =
  [ Alcotest.test_case "acc_* routines on the device" `Quick
      test_acc_routines;
    Alcotest.test_case "acc_* routines in reference runs" `Quick
      test_acc_routines_reference;
    Alcotest.test_case "acc_* device selection" `Quick
      test_acc_device_selection ]

let tests = base_tests @ more_tests
