(* Analysis-library tests: points-to, region access analysis, the CFG
   carrier graph, and the generic dataflow solver (with a QCheck fixpoint
   property). *)

open Minic
open Analysis

let setup src =
  let prog = Parser.parse_string src in
  let env = Typecheck.check prog in
  let alias = Alias.compute env prog "main" in
  (prog, env, alias)

(* ------------------------------ alias ------------------------------ *)

let test_alias_basic () =
  let _, _, alias =
    setup
      "int main() { float a[4]; float b[4]; float *p; float *q; p = a; q = \
       p; return 0; }"
  in
  Alcotest.(check bool) "p -> a" true
    (Varset.equal (Alias.resolve alias "p") (Varset.singleton "a"));
  Alcotest.(check bool) "q -> a (transitive)" true
    (Varset.equal (Alias.resolve alias "q") (Varset.singleton "a"));
  Alcotest.(check bool) "a -> a" true
    (Varset.equal (Alias.resolve alias "a") (Varset.singleton "a"));
  Alcotest.(check bool) "p unambiguous" false (Alias.is_ambiguous alias "p")

let test_alias_swap () =
  let _, _, alias =
    setup
      "int main() { float a[4]; float b[4]; float *p; float *q; float *t; \
       p = a; q = b; t = p; p = q; q = t; return 0; }"
  in
  Alcotest.(check bool) "p ambiguous after swap" true
    (Alias.is_ambiguous alias "p");
  Alcotest.(check bool) "p may be a or b" true
    (Varset.equal (Alias.resolve alias "p") (Varset.of_list [ "a"; "b" ]))

let test_alias_scalar () =
  let _, _, alias = setup "int main() { int x = 1; return 0; }" in
  Alcotest.(check bool) "scalar resolves to nothing" true
    (Varset.is_empty (Alias.resolve alias "x"))

(* ----------------------------- regions ----------------------------- *)

(* Analyze main's body with leading declarations stripped, so scalars
   declared at the top read as kernel-external (the compute-region shape). *)
let region_of src =
  let prog, _, alias = setup src in
  let body =
    let rec drop = function
      | { Ast.skind = Ast.Sdecl _; _ } :: rest -> drop rest
      | rest -> rest
    in
    drop (Ast.main_function prog).Ast.f_body
  in
  (Regions.analyze ~alias body, alias)

let test_regions_arrays () =
  let acc, _ =
    region_of
      "int main() { float a[4]; float b[4]; for (int i = 0; i < 4; i++) { \
       b[i] = a[i] * 2.0; } return 0; }"
  in
  Alcotest.(check bool) "a read" true
    (Varset.mem "a" acc.Regions.arrays_read);
  Alcotest.(check bool) "b written" true
    (Varset.mem "b" acc.Regions.arrays_written);
  Alcotest.(check bool) "b not read" false
    (Varset.mem "b" acc.Regions.arrays_read)

let test_regions_privatizable () =
  let acc, _ =
    region_of
      "int main() { float a[4]; float t; for (int i = 0; i < 4; i++) { t = \
       a[i]; a[i] = t * 2.0; } return 0; }"
  in
  Alcotest.(check bool) "t privatizable" true
    (Varset.mem "t" (Regions.privatizable acc))

let test_regions_accumulator () =
  let acc, _ =
    region_of
      "int main() { float a[4]; float s; s = 0.0; for (int i = 0; i < 4; \
       i++) { s = s + a[i]; } return 0; }"
  in
  (* s = 0.0 is a plain write, so s is NOT a pure accumulator of the whole
     body; restrict to the loop body for the kernel-shaped question. *)
  let acc2, _ =
    region_of
      "int main() { float a[4]; float s; int i; s = s + a[0]; s = s + \
       a[1]; return 0; }"
  in
  Alcotest.(check bool) "plain write disqualifies" true
    (List.assoc_opt "s" acc.Regions.accumulators = None);
  (match List.assoc_opt "s" acc2.Regions.accumulators with
  | Some Ast.Rsum -> ()
  | _ -> Alcotest.fail "s accumulator (+)");
  let accm, _ =
    region_of
      "int main() { float a[4]; float m; m = max(m, a[0]); m = max(m, \
       a[1]); return 0; }"
  in
  match List.assoc_opt "m" accm.Regions.accumulators with
  | Some Ast.Rmax -> ()
  | _ -> Alcotest.fail "m accumulator (max)"

let test_regions_pointer_rebinding () =
  let acc, _ =
    region_of
      "int main() { float a[4]; float *p; p = a; return 0; }"
  in
  Alcotest.(check bool) "rebinding writes no array" true
    (Varset.is_empty acc.Regions.arrays_written);
  let acc2, _ =
    region_of
      "int main() { float a[4]; float *p; p = a; p[0] = 1.0; return 0; }"
  in
  Alcotest.(check bool) "write through pointer hits root" true
    (Varset.mem "a" acc2.Regions.arrays_written)

(* ------------------------------ graph ------------------------------ *)

let test_graph () =
  let g = Graph.create () in
  let a = Graph.add_node g in
  let b = Graph.add_node g in
  let c = Graph.add_node g in
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Graph.add_edge g c b;
  (* duplicate edges are not added twice *)
  Graph.add_edge g a b;
  Alcotest.(check int) "size" 3 (Graph.size g);
  Alcotest.(check (list int)) "succs a" [ b ] (Graph.succs g a);
  Alcotest.(check (list int)) "preds b" [ a; c ]
    (List.sort compare (Graph.preds g b));
  let rpo = Graph.reverse_postorder g ~entry:a in
  Alcotest.(check int) "rpo covers all" 3 (List.length rpo);
  Alcotest.(check int) "rpo starts at entry" a (List.hd rpo)

(* ----------------------------- dataflow ---------------------------- *)

(* Diamond CFG: 0 -> 1 -> 3, 0 -> 2 -> 3. *)
let diamond () =
  let g = Graph.create () in
  let n0 = Graph.add_node g and n1 = Graph.add_node g in
  let n2 = Graph.add_node g and n3 = Graph.add_node g in
  Graph.add_edge g n0 n1;
  Graph.add_edge g n0 n2;
  Graph.add_edge g n1 n3;
  Graph.add_edge g n2 n3;
  g

let test_dataflow_union_vs_intersect () =
  let g = diamond () in
  let gen = [| Varset.empty; Varset.singleton "x"; Varset.empty;
               Varset.empty |] in
  let transfer n inp = Varset.union gen.(n) inp in
  let solve meet =
    Dataflow.solve g
      { direction = Dataflow.Forward; meet; boundary = Varset.empty;
        universe = Varset.of_list [ "x" ]; transfer }
  in
  let union = solve Dataflow.Union in
  let inter = solve Dataflow.Intersect in
  (* x is generated on one branch only: union sees it at the join, the
     all-paths meet does not. *)
  Alcotest.(check bool) "union join has x" true
    (Varset.mem "x" union.Dataflow.input.(3));
  Alcotest.(check bool) "intersect join lacks x" false
    (Varset.mem "x" inter.Dataflow.input.(3))

let test_dataflow_backward_loop () =
  (* 0 -> 1 -> 2, 1 -> 1 (self loop); liveness-style: node 2 uses "v". *)
  let g = Graph.create () in
  let n0 = Graph.add_node g and n1 = Graph.add_node g in
  let n2 = Graph.add_node g in
  Graph.add_edge g n0 n1;
  Graph.add_edge g n1 n1;
  Graph.add_edge g n1 n2;
  let use = [| Varset.empty; Varset.empty; Varset.singleton "v" |] in
  let r =
    Dataflow.solve g
      { direction = Dataflow.Backward; meet = Dataflow.Union;
        boundary = Varset.empty; universe = Varset.singleton "v";
        transfer = (fun n out -> Varset.union use.(n) out) }
  in
  ignore n0;
  Alcotest.(check bool) "live through loop" true
    (Varset.mem "v" r.Dataflow.output.(n1))

(* Property: the solver's solution is a fixpoint of the equations. *)
let dataflow_fixpoint =
  QCheck.Test.make ~count:100 ~name:"dataflow solution is a fixpoint"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_bound 12) (pair (int_bound 7) (int_bound 7)))
           (array_size (return 8)
              (list_size (int_bound 2) (oneofl [ "x"; "y"; "z" ])))))
    (fun (edges, gens) ->
      let g = Graph.create () in
      for _ = 0 to 7 do ignore (Graph.add_node g) done;
      List.iter (fun (a, b) -> Graph.add_edge g a b) edges;
      let gens = Array.map Varset.of_list gens in
      let transfer n inp = Varset.union gens.(n) inp in
      let spec =
        { Dataflow.direction = Dataflow.Forward; meet = Dataflow.Union;
          boundary = Varset.empty;
          universe = Varset.of_list [ "x"; "y"; "z" ]; transfer }
      in
      let r = Dataflow.solve g spec in
      (* check: for each node, input = meet of preds' outputs, and
         output = transfer input *)
      Array.for_all
        (fun n ->
          let expected_in =
            match Graph.preds g n with
            | [] -> Varset.empty
            | ps ->
                List.fold_left
                  (fun acc p -> Varset.union acc r.Dataflow.output.(p))
                  Varset.empty ps
          in
          Varset.equal r.Dataflow.input.(n) expected_in
          && Varset.equal r.Dataflow.output.(n) (transfer n expected_in))
        (Graph.nodes g))

let tests =
  [ Alcotest.test_case "alias: basic points-to" `Quick test_alias_basic;
    Alcotest.test_case "alias: pointer swap ambiguity" `Quick test_alias_swap;
    Alcotest.test_case "alias: scalars" `Quick test_alias_scalar;
    Alcotest.test_case "regions: array accesses" `Quick test_regions_arrays;
    Alcotest.test_case "regions: privatizable" `Quick
      test_regions_privatizable;
    Alcotest.test_case "regions: accumulators" `Quick
      test_regions_accumulator;
    Alcotest.test_case "regions: pointer rebinding" `Quick
      test_regions_pointer_rebinding;
    Alcotest.test_case "graph basics" `Quick test_graph;
    Alcotest.test_case "dataflow: union vs intersect" `Quick
      test_dataflow_union_vs_intersect;
    Alcotest.test_case "dataflow: backward with loop" `Quick
      test_dataflow_backward_loop;
    QCheck_alcotest.to_alcotest dataflow_fixpoint ]
