(* Interval sets (fine-grained coherence substrate) and the fine coherence
   mode itself, including the partial-update false negative that coarse
   tracking cannot catch. *)

open Codegen.Tprog

let iv = Alcotest.testable Accrt.Intervals.pp Accrt.Intervals.equal

let test_basic_ops () =
  let t = Accrt.Intervals.of_range 0 10 in
  Alcotest.(check int) "measure" 10 (Accrt.Intervals.measure t);
  let t = Accrt.Intervals.subtract t ~lo:3 ~hi:6 in
  Alcotest.check iv "hole" [ (0, 3); (6, 10) ] t;
  Alcotest.(check bool) "intersects left" true
    (Accrt.Intervals.intersects t ~lo:2 ~hi:4);
  Alcotest.(check bool) "hole is free" false
    (Accrt.Intervals.intersects t ~lo:3 ~hi:6);
  let t = Accrt.Intervals.add t ~lo:4 ~hi:5 in
  Alcotest.check iv "island" [ (0, 3); (4, 5); (6, 10) ] t;
  Alcotest.(check int) "pieces" 3 (Accrt.Intervals.pieces t);
  let t = Accrt.Intervals.add t ~lo:2 ~hi:7 in
  Alcotest.check iv "coalesced" [ (0, 10) ] t;
  Alcotest.(check bool) "covers" true (Accrt.Intervals.covers t ~lo:0 ~hi:10);
  Alcotest.(check bool) "mem" true (Accrt.Intervals.mem t 9);
  Alcotest.check iv "clip" [ (2, 5) ]
    (Accrt.Intervals.clip t ~lo:2 ~hi:5)

let test_degenerate () =
  Alcotest.check iv "empty range" [] (Accrt.Intervals.of_range 5 5);
  Alcotest.check iv "inverted range" [] (Accrt.Intervals.of_range 7 3);
  Alcotest.check iv "subtract from empty" []
    (Accrt.Intervals.subtract Accrt.Intervals.empty ~lo:0 ~hi:4);
  Alcotest.(check bool) "empty covers nothing... vacuously" true
    (Accrt.Intervals.covers Accrt.Intervals.empty ~lo:3 ~hi:3)

(* adjacency coalesces *)
let test_adjacent_merge () =
  let t = Accrt.Intervals.add (Accrt.Intervals.of_range 0 5) ~lo:5 ~hi:9 in
  Alcotest.check iv "adjacent merged" [ (0, 9) ] t

(* Properties over random edit sequences: membership model vs intervals. *)
let intervals_model =
  QCheck.Test.make ~count:300 ~name:"interval set matches boolean model"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 20)
           (triple (oneofl [ `Add; `Sub ]) (int_bound 31) (int_bound 31))))
    (fun ops ->
      let model = Array.make 32 false in
      let t = ref Accrt.Intervals.empty in
      List.iter
        (fun (op, a, b) ->
          let lo = min a b and hi = max a b in
          match op with
          | `Add ->
              t := Accrt.Intervals.add !t ~lo ~hi;
              for i = lo to hi - 1 do model.(i) <- true done
          | `Sub ->
              t := Accrt.Intervals.subtract !t ~lo ~hi;
              for i = lo to hi - 1 do model.(i) <- false done)
        ops;
      let ok = ref true in
      Array.iteri
        (fun i v -> if Accrt.Intervals.mem !t i <> v then ok := false)
        model;
      (* canonical form: sorted, disjoint, coalesced *)
      let rec canonical = function
        | (a1, b1) :: ((a2, _) :: _ as rest) ->
            b1 > a1 && a2 > b1 && canonical rest
        | [ (a, b) ] -> b > a
        | [] -> true
      in
      !ok && canonical !t)

(* ------------- fine-grained coherence ------------- *)

let site label = Codegen.Tprog.mk_site label

let test_fine_partial_update_detected () =
  (* Kernel writes all of v; only v[0:4) is downloaded; the host then reads
     past the downloaded prefix. Coarse tracking is fooled by the partial
     copy; fine tracking reports the missing transfer. *)
  let scenario granularity =
    let t = Accrt.Coherence.create ~granularity () in
    Accrt.Coherence.register_len t "v" 100;
    Accrt.Coherence.check_write t "v" Gpu;
    Accrt.Coherence.on_transfer ~range:(0, 4) t "v" D2H ~site:(site "part");
    Accrt.Coherence.check_read t "v" Cpu;
    List.filter
      (fun r -> r.Accrt.Coherence.r_kind = Accrt.Coherence.Missing)
      (Accrt.Coherence.reports t)
  in
  Alcotest.(check int) "coarse misses it" 0
    (List.length (scenario Accrt.Coherence.Coarse));
  Alcotest.(check int) "fine catches it" 1
    (List.length (scenario Accrt.Coherence.Fine))

let test_fine_partial_no_false_positive () =
  (* The host reads exactly the downloaded prefix: fine mode stays silent. *)
  let t = Accrt.Coherence.create ~granularity:Accrt.Coherence.Fine () in
  Accrt.Coherence.register_len t "v" 100;
  Accrt.Coherence.check_write t "v" Gpu;
  Accrt.Coherence.on_transfer ~range:(0, 4) t "v" D2H ~site:(site "part");
  Accrt.Coherence.check_read ~range:(0, 4) t "v" Cpu;
  Alcotest.(check int) "prefix read is fine" 0
    (List.length (Accrt.Coherence.reports t))

let test_fine_redundant_subrange () =
  (* Downloading the same range twice: the second copy is redundant even
     though other parts of the array are still stale. *)
  let t = Accrt.Coherence.create ~granularity:Accrt.Coherence.Fine () in
  Accrt.Coherence.register_len t "v" 100;
  Accrt.Coherence.check_write t "v" Gpu;
  Accrt.Coherence.on_transfer ~range:(0, 10) t "v" D2H ~site:(site "d1");
  Accrt.Coherence.on_transfer ~range:(0, 10) t "v" D2H ~site:(site "d2");
  (match Accrt.Coherence.reports t with
  | [ r ] ->
      Alcotest.(check bool) "redundant" true
        (r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant);
      (match r.Accrt.Coherence.r_site with
      | Some st -> Alcotest.(check string) "second copy" "d2" st.site_label
      | None -> Alcotest.fail "site")
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  (* a download of a different range is not redundant *)
  Accrt.Coherence.on_transfer ~range:(10, 10) t "v" D2H ~site:(site "d3");
  Alcotest.(check int) "disjoint range needed" 1
    (List.length (Accrt.Coherence.reports t))

let test_fine_tracking_cost () =
  let t = Accrt.Coherence.create ~granularity:Accrt.Coherence.Fine () in
  Accrt.Coherence.register_len t "v" 1000;
  Accrt.Coherence.check_write t "v" Gpu;
  for i = 0 to 9 do
    Accrt.Coherence.on_transfer ~range:(i * 20, 10) t "v" D2H
      ~site:(site "chunk")
  done;
  (* fragmented staleness costs interval work — the paper's argument for
     coarse default tracking *)
  Alcotest.(check bool) "interval ops counted" true (t.interval_ops > 10)

let test_fine_end_to_end () =
  (* Whole pipeline in fine mode: a partial update inside the loop leaves
     the host read of the full array flagged as missing. *)
  let src =
    "int main() { int n = 64; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\n#pragma acc data copy(a)\n{\n#pragma acc kernels \
     loop\nfor (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n#pragma acc \
     update host(a[0:8])\nfloat probe = a[0];\na[1] = probe;\n}\nreturn 0; \
     }"
  in
  let run granularity =
    let o = Accrt.Interp.run_string ~instrument:true ~granularity src in
    List.length
      (List.filter
         (fun r -> r.Accrt.Coherence.r_kind = Accrt.Coherence.May_missing
                   || r.Accrt.Coherence.r_kind = Accrt.Coherence.Missing)
         (Accrt.Interp.reports o))
  in
  Alcotest.(check bool) "fine reports what coarse hides" true
    (run Accrt.Coherence.Fine > run Accrt.Coherence.Coarse)

let tests =
  [ Alcotest.test_case "interval basics" `Quick test_basic_ops;
    Alcotest.test_case "degenerate intervals" `Quick test_degenerate;
    Alcotest.test_case "adjacent merge" `Quick test_adjacent_merge;
    QCheck_alcotest.to_alcotest intervals_model;
    Alcotest.test_case "fine catches partial-update staleness" `Quick
      test_fine_partial_update_detected;
    Alcotest.test_case "fine has no prefix false positive" `Quick
      test_fine_partial_no_false_positive;
    Alcotest.test_case "fine subrange redundancy" `Quick
      test_fine_redundant_subrange;
    Alcotest.test_case "fine tracking cost counted" `Quick
      test_fine_tracking_cost;
    Alcotest.test_case "fine end-to-end" `Quick test_fine_end_to_end ]
