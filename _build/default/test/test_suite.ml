(* The twelve-benchmark suite: every benchmark's unoptimized and manually
   optimized variants must (1) validate and type check, (2) produce
   reference-identical outputs on the simulated GPU, (3) match its declared
   kernel census; the suite totals must reproduce Table II's 46/16/4 and
   the fault-injection experiment its 4-active/16-latent split. *)

open Minic

let margin = 1e-6

let outputs_equal renv o outputs =
  List.for_all
    (fun name ->
      match
        (Accrt.Value.lookup renv name,
         Accrt.Value.lookup o.Accrt.Interp.ctx.Accrt.Eval.env name)
      with
      | Some (Accrt.Value.Array { buf = Some b1; _ }),
        Some (Accrt.Value.Array { buf = Some b2; _ }) ->
          snd (Gpusim.Buf.compare ~margin ~reference:b1 b2) = 0
      | Some (Accrt.Value.Scalar c1), Some (Accrt.Value.Scalar c2) ->
          let x = Accrt.Value.to_float c1.Accrt.Value.v in
          let y = Accrt.Value.to_float c2.Accrt.Value.v in
          Float.abs (x -. y) <= margin *. Float.max 1.0 (Float.abs x)
      | _ -> false)
    outputs

let check_variant (b : Suite.Bench_def.t) src =
  let prog = Parser.parse_string ~file:b.name src in
  Acc.Validate.check_program prog;
  let env = Typecheck.check prog in
  let renv = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let tp = Codegen.Translate.translate env prog in
  let o = Accrt.Interp.run ~coherence:false tp in
  Alcotest.(check bool)
    (b.name ^ ": translated run matches the sequential reference") true
    (outputs_equal renv o b.outputs);
  (* instrumented execution must not change results either *)
  let oi = Accrt.Interp.run ~coherence:true (Codegen.Checkgen.instrument tp) in
  Alcotest.(check bool) (b.name ^ ": instrumentation is transparent") true
    (outputs_equal renv oi b.outputs);
  tp

let bench_case (b : Suite.Bench_def.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      let tp = check_variant b b.source in
      ignore (check_variant b b.optimized);
      (* census on the unoptimized variant *)
      let ks = Array.to_list tp.Codegen.Tprog.kernels in
      Alcotest.(check int) (b.name ^ ": kernel count") b.expected_kernels
        (List.length ks);
      Alcotest.(check int) (b.name ^ ": private kernels") b.expected_private
        (List.length
           (List.filter (fun k -> k.Codegen.Tprog.k_has_private_data) ks));
      Alcotest.(check int) (b.name ^ ": reduction kernels")
        b.expected_reduction
        (List.length
           (List.filter (fun k -> k.Codegen.Tprog.k_has_reduction) ks));
      (* the manual variant must move far fewer bytes than the default *)
      let prog = Parser.parse_string b.source in
      let popt = Parser.parse_string b.optimized in
      let _, bytes_naive = Openarc_core.Session.transfer_stats prog in
      let _, bytes_opt = Openarc_core.Session.transfer_stats popt in
      Alcotest.(check bool) (b.name ^ ": optimized moves fewer bytes") true
        (bytes_opt < bytes_naive))

let test_totals () =
  Alcotest.(check int) "46 kernels" 46 Suite.Registry.total_kernels;
  Alcotest.(check int) "16 private" 16 Suite.Registry.total_private;
  Alcotest.(check int) "4 reduction" 4 Suite.Registry.total_reduction

let test_fault_census () =
  (* Table II end-to-end on two representative benchmarks (the full-suite
     census runs in the benchmark harness). *)
  let census name =
    let b = Option.get (Suite.Registry.find name) in
    Openarc_core.Faults.census_of_program (Parser.parse_string b.source)
  in
  let ep = census "EP" in
  Alcotest.(check int) "EP active" 1 ep.Openarc_core.Faults.active_errors;
  Alcotest.(check int) "EP active detected" 1
    ep.Openarc_core.Faults.active_detected;
  Alcotest.(check int) "EP latent" 1 ep.Openarc_core.Faults.latent_errors;
  Alcotest.(check int) "EP latent detected" 0
    ep.Openarc_core.Faults.latent_detected;
  let hotspot = census "HOTSPOT" in
  Alcotest.(check int) "HOTSPOT latent" 1
    hotspot.Openarc_core.Faults.latent_errors;
  Alcotest.(check int) "HOTSPOT nothing detected" 0
    (hotspot.Openarc_core.Faults.active_detected
    + hotspot.Openarc_core.Faults.latent_detected)

let test_sessions_shape () =
  (* Table III shape on the three interesting benchmarks: convergence in
     2-4 iterations, BACKPROP 1 and LUD 3 incorrect. *)
  let run name =
    let b = Option.get (Suite.Registry.find name) in
    Openarc_core.Session.optimize ~outputs:b.outputs
      (Parser.parse_string b.source)
  in
  let backprop = run "BACKPROP" in
  Alcotest.(check bool) "BACKPROP converged" true
    backprop.Openarc_core.Session.converged;
  Alcotest.(check int) "BACKPROP incorrect = 1" 1
    backprop.Openarc_core.Session.incorrect_iterations;
  let lud = run "LUD" in
  Alcotest.(check bool) "LUD converged" true
    lud.Openarc_core.Session.converged;
  Alcotest.(check int) "LUD incorrect = 3" 3
    lud.Openarc_core.Session.incorrect_iterations;
  let jac = run "JACOBI" in
  Alcotest.(check bool) "JACOBI clean" true
    (jac.Openarc_core.Session.converged
    && jac.Openarc_core.Session.incorrect_iterations = 0
    && jac.Openarc_core.Session.iterations <= 4)

(* Per-benchmark fault-injection census: active errors must equal the
   declared reduction kernels, latent the private ones, all active caught,
   no latent visible. *)
let fault_case (b : Suite.Bench_def.t) =
  Alcotest.test_case (b.name ^ " fault census") `Quick (fun () ->
      let c =
        Openarc_core.Faults.census_of_program (Parser.parse_string b.source)
      in
      Alcotest.(check int) (b.name ^ ": active = reduction kernels")
        b.expected_reduction c.Openarc_core.Faults.active_errors;
      Alcotest.(check int) (b.name ^ ": latent = private kernels")
        b.expected_private c.Openarc_core.Faults.latent_errors;
      Alcotest.(check int) (b.name ^ ": all active detected")
        c.Openarc_core.Faults.active_errors
        c.Openarc_core.Faults.active_detected;
      Alcotest.(check int) (b.name ^ ": no latent detected") 0
        c.Openarc_core.Faults.latent_detected)

(* The pretty-printer round-trips every benchmark source (both variants):
   a strong regression net over the whole language surface the suite
   exercises. *)
let roundtrip_case (b : Suite.Bench_def.t) =
  Alcotest.test_case (b.name ^ " pretty round-trip") `Quick (fun () ->
      List.iter
        (fun src ->
          let p1 = Parser.parse_string src in
          let p2 = Parser.parse_string (Minic.Pretty.program_to_string p1) in
          Alcotest.(check bool) (b.name ^ ": round trip") true
            (Ast.equal_program p1 p2))
        [ b.source; b.optimized ])

let tests =
  List.map bench_case Suite.Registry.all
  @ List.map fault_case Suite.Registry.all
  @ List.map roundtrip_case Suite.Registry.all
  @ [ Alcotest.test_case "Table II census totals" `Quick test_totals;
      Alcotest.test_case "fault-injection census" `Quick test_fault_census;
      Alcotest.test_case "Table III session shape" `Slow test_sessions_shape ]
