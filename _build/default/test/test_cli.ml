(* Integration tests of the openarc CLI binary: each subcommand runs on a
   bundled benchmark, exits cleanly, and prints its key artifacts. *)

let exe = "../bin/openarc.exe"

let available = Sys.file_exists exe

let run_cmd args =
  let out = Filename.temp_file "openarc_cli" ".out" in
  let cmd = Fmt.str "%s %s > %s 2>&1" exe args (Filename.quote out) in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let check_cmd name args ~expect =
  if not available then ()
  else begin
    let code, out = run_cmd args in
    Alcotest.(check int) (name ^ ": exit code") 0 code;
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Fmt.str "%s: output mentions %S" name needle)
          true (contains ~needle out))
      expect
  end

let test_benchmarks () =
  check_cmd "benchmarks" "benchmarks" ~expect:[ "JACOBI"; "CG"; "SRAD" ]

let test_compile () =
  check_cmd "compile" "compile bench:ep" ~expect:[ "main_kernel0"; "seeds" ];
  check_cmd "compile --emit-cuda" "compile bench:ep --emit-cuda"
    ~expect:[ "__global__ void main_kernel0"; "reduction(+)" ]

let test_run () =
  check_cmd "run" "run bench:jacobi"
    ~expect:[ "launches"; "Mem Transfer" ];
  check_cmd "run --instrument" "run bench:jacobi --instrument"
    ~expect:[ "report(s), grouped:"; "redundant"; "suggestions:" ];
  check_cmd "run --fine-grained" "run bench:jacobi --instrument --fine-grained"
    ~expect:[ "report(s), grouped:" ]

let test_verify () =
  check_cmd "verify ok" "verify bench:jacobi"
    ~expect:[ "[OK]   main_kernel0"; "0 kernel(s) with detected errors" ];
  check_cmd "verify fault" "verify bench:ep --fault-injection"
    ~expect:[ "[FAIL] main_kernel1"; "1 kernel(s) with detected errors" ];
  check_cmd "verify selection"
    "verify bench:ep --fault-injection --options \
     complement=0,kernels=main_kernel0"
    ~expect:[ "[OK]   main_kernel0" ];
  check_cmd "verify demotion" "verify bench:jacobi --show-transformed \
                               main_kernel0"
    ~expect:[ "async(1)"; "#pragma acc wait(1)" ]

let test_optimize () =
  check_cmd "optimize" "optimize bench:jacobi --outputs a,b,resid"
    ~expect:[ "converged"; "transfers:" ]

let test_trace () =
  if available then begin
    let tracefile = Filename.temp_file "openarc_trace" ".json" in
    let code, out =
      run_cmd (Fmt.str "run bench:ep --trace %s" (Filename.quote tracefile))
    in
    Alcotest.(check int) "trace: exit" 0 code;
    Alcotest.(check bool) "trace: reported" true
      (contains ~needle:"timeline" out);
    let ic = open_in_bin tracefile in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tracefile;
    Alcotest.(check bool) "trace: chrome json" true
      (contains ~needle:"\"ph\": \"X\"" json)
  end

let test_error_handling () =
  if available then begin
    let code, _ = run_cmd "run bench:nosuchbenchmark" in
    Alcotest.(check bool) "unknown benchmark fails" true (code <> 0);
    let code, _ = run_cmd "verify /nonexistent/file.mc" in
    Alcotest.(check bool) "missing file fails" true (code <> 0)
  end

let tests =
  [ Alcotest.test_case "benchmarks" `Quick test_benchmarks;
    Alcotest.test_case "compile" `Quick test_compile;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "verify" `Quick test_verify;
    Alcotest.test_case "optimize" `Slow test_optimize;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "error handling" `Quick test_error_handling ]
