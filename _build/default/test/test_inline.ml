(* Inlining of directive-containing functions: correctness of the
   transformation, reference semantics for array parameters, alpha
   renaming of clauses, verification and optimization through calls,
   and rejection of non-inlinable shapes. *)

open Minic

let run src = Accrt.Interp.run_string src
let reference src = Accrt.Eval.run_reference (Parser.parse_string src)

let out_f o name = Accrt.Value.to_float (Accrt.Interp.host_scalar o name)

let ref_f ctx name =
  Accrt.Value.to_float (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)

let saxpy_prog =
  "void saxpy(float y[], float x[], int n, float alpha) {\n\
   float t;\n#pragma acc kernels loop private(t)\nfor (int i = 0; i < n; \
   i++) { t = alpha * x[i]; y[i] = y[i] + t; }\n}\n\
   float dot(float x[], float y[], int n) {\nfloat s = 0.0;\n#pragma acc \
   kernels loop reduction(+:s)\nfor (int i = 0; i < n; i++) { s = s + x[i] \
   * y[i]; }\nreturn s;\n}\n\
   int main() { int n = 128; float x[n]; float y[n]; float d = 0.0;\nfor \
   (int i = 0; i < n; i++) { x[i] = float(i) * 0.01; y[i] = 1.0; \
   }\nsaxpy(y, x, n, 2.0);\nsaxpy(y, x, n, 0.5);\nd = dot(x, y, \
   n);\nreturn 0; }"

let test_inlined_execution () =
  let o = run saxpy_prog in
  let r = reference saxpy_prog in
  Alcotest.(check (float 1e-9)) "dot through inlined kernels"
    (ref_f r "d") (out_f o "d")

let test_kernels_outlined_per_site () =
  let tp = Codegen.Translate.compile_string saxpy_prog in
  (* two saxpy call sites + one dot call = 3 kernels *)
  Alcotest.(check int) "three kernels" 3
    (Array.length tp.Codegen.Tprog.kernels);
  (* the private clause survived renaming: each saxpy kernel has one
     private scalar *)
  let privates =
    Array.to_list tp.Codegen.Tprog.kernels
    |> List.filter (fun k -> Codegen.Tprog.(k.k_has_private_data))
  in
  Alcotest.(check int) "two private kernels" 2 (List.length privates)

let test_verification_through_calls () =
  let v =
    Openarc_core.Kernel_verify.verify ~opts:Codegen.Options.fault_injection
      (Parser.parse_string
         (Openarc_core.Faults.strip_parallelism_clauses
            (Parser.parse_string saxpy_prog)
         |> Pretty.program_to_string))
  in
  (* the two broken-privatization kernels are latent; the broken reduction
     is active and detected *)
  let bad = Openarc_core.Kernel_verify.detected_errors v in
  Alcotest.(check int) "one active error" 1 (List.length bad);
  Alcotest.(check int) "three kernels verified" 3
    (List.length v.Openarc_core.Kernel_verify.reports)

let test_session_through_calls () =
  let r =
    Openarc_core.Session.optimize ~outputs:[ "d" ]
      (Parser.parse_string saxpy_prog)
  in
  Alcotest.(check bool) "converged" true r.Openarc_core.Session.converged;
  (* the optimized program still computes the right value *)
  let env = Typecheck.check r.Openarc_core.Session.final in
  let tp = Codegen.Translate.translate env r.Openarc_core.Session.final in
  let o = Accrt.Interp.run ~coherence:false tp in
  let ref_ctx = reference saxpy_prog in
  Alcotest.(check (float 1e-6)) "value preserved" (ref_f ref_ctx "d")
    (out_f o "d")

let test_nested_inlining () =
  let src =
    "void inner(float a[], int n) {\n#pragma acc kernels loop\nfor (int i \
     = 0; i < n; i++) { a[i] = a[i] + 1.0; }\n}\n\
     void outer(float a[], int n) {\ninner(a, n);\ninner(a, n);\n}\n\
     int main() { int n = 32; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 0.0; }\nouter(a, n);\nfloat cs = a[0];\nreturn 0; }"
  in
  Alcotest.(check (float 0.)) "two levels deep" 2.0 (out_f (run src) "cs")

let test_scalar_arg_by_value () =
  (* scalar parameters are copied: callee writes don't leak out *)
  let src =
    "void bump(float a[], int n, float v) {\nv = v + 100.0;\n#pragma acc \
     kernels loop\nfor (int i = 0; i < n; i++) { a[i] = v; }\n}\n\
     int main() { int n = 8; float a[n]; float v = 1.0;\nfor (int i = 0; i \
     < n; i++) { a[i] = 0.0; }\nbump(a, n, v);\nfloat leak = v;\nfloat got \
     = a[0];\nreturn 0; }"
  in
  let o = run src in
  Alcotest.(check (float 0.)) "caller var untouched" 1.0 (out_f o "leak");
  Alcotest.(check (float 0.)) "callee saw its copy" 101.0 (out_f o "got")

let test_rejects_expression_calls () =
  let src =
    "float f(float a[], int n) {\n#pragma acc kernels loop\nfor (int i = \
     0; i < n; i++) { a[i] = 1.0; }\nreturn a[0];\n}\n\
     int main() { float a[4]; float x = f(a, 4) + 1.0; return 0; }"
  in
  (try
     ignore (Codegen.Translate.compile_string src);
     Alcotest.fail "expected Not_inlinable"
   with Codegen.Inline.Not_inlinable _ -> ());
  let src_early_return =
    "float g(float a[], int n) {\nif (n == 0) { return 0.0; }\n#pragma acc \
     kernels loop\nfor (int i = 0; i < n; i++) { a[i] = 1.0; }\nreturn \
     a[0];\n}\nint main() { float a[4]; float x = 0.0; x = g(a, 4); return \
     0; }"
  in
  try
    ignore (Codegen.Translate.compile_string src_early_return);
    Alcotest.fail "expected Not_inlinable (early return)"
  with Codegen.Inline.Not_inlinable _ -> ()

let test_plain_functions_untouched () =
  (* functions without directives keep normal call semantics *)
  let src =
    "float sq(float x) { return x * x; }\nint main() { float y = sq(3.0); \
     return 0; }"
  in
  let prog = Parser.parse_string src in
  Alcotest.(check bool) "no expansion needed" false
    (Codegen.Inline.needs_expansion prog);
  Alcotest.(check (float 0.)) "still works" 9.0 (out_f (run src) "y")

let tests =
  [ Alcotest.test_case "inlined execution matches reference" `Quick
      test_inlined_execution;
    Alcotest.test_case "kernels outlined per call site" `Quick
      test_kernels_outlined_per_site;
    Alcotest.test_case "verification through calls" `Quick
      test_verification_through_calls;
    Alcotest.test_case "optimization session through calls" `Quick
      test_session_through_calls;
    Alcotest.test_case "nested inlining" `Quick test_nested_inlining;
    Alcotest.test_case "scalar args by value" `Quick test_scalar_arg_by_value;
    Alcotest.test_case "rejects non-inlinable shapes" `Quick
      test_rejects_expression_calls;
    Alcotest.test_case "plain functions untouched" `Quick
      test_plain_functions_untouched ]
