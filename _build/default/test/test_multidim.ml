(* Multi-dimensional arrays: declaration, row-major layout, per-dimension
   bounds, kernels over 2-D data, pointers to 2-D arrays, pretty-printer
   round trips, and error cases. *)

open Minic

let run src = Accrt.Interp.run_string src
let reference src = Accrt.Eval.run_reference (Parser.parse_string src)

let out_f o name = Accrt.Value.to_float (Accrt.Interp.host_scalar o name)

let ref_f ctx name =
  Accrt.Value.to_float (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)

let test_basic_2d () =
  let src =
    "int main() { int n = 4; int m = 3; float a[n][m];\nfor (int i = 0; i \
     < n; i++) { for (int j = 0; j < m; j++) { a[i][j] = float(i) * 10.0 + \
     float(j); } }\nfloat x = a[2][1];\nfloat y = a[3][2];\nreturn 0; }"
  in
  let ctx = reference src in
  Alcotest.(check (float 0.)) "a[2][1]" 21.0 (ref_f ctx "x");
  Alcotest.(check (float 0.)) "a[3][2]" 32.0 (ref_f ctx "y");
  (* row-major layout in the flattened buffer *)
  let buf = Accrt.Value.array_buf ctx.Accrt.Eval.env "a" in
  Alcotest.(check int) "flattened size" 12 (Gpusim.Buf.length buf);
  Alcotest.(check (float 0.)) "element (2,1) at 2*3+1" 21.0
    (Gpusim.Buf.get_float buf 7)

let test_3d () =
  let src =
    "int main() { float t[2][3][4];\nt[1][2][3] = 42.0;\nfloat v = \
     t[1][2][3];\nfloat z = t[0][0][0];\nreturn 0; }"
  in
  let ctx = reference src in
  Alcotest.(check (float 0.)) "3-D write/read" 42.0 (ref_f ctx "v");
  Alcotest.(check (float 0.)) "untouched" 0.0 (ref_f ctx "z")

let test_bounds_per_dimension () =
  let expect_err src =
    try
      ignore (reference src);
      Alcotest.fail "expected runtime error"
    with Accrt.Value.Runtime_error _ -> ()
  in
  (* the row index is within the flat size but outside its dimension *)
  expect_err "int main() { float a[3][4]; a[3][0] = 1.0; return 0; }";
  expect_err "int main() { float a[3][4]; a[0][4] = 1.0; return 0; }";
  expect_err "int main() { float a[3][4]; float x = a[0][0 - 1]; return 0; }";
  (* wrong subscript counts *)
  expect_err "int main() { float a[3][4]; a[0][0][0] = 1.0; return 0; }"

let test_partial_indexing_rejected () =
  try
    ignore
      (reference "int main() { float a[3][4]; float x = a[1] + 1.0; return \
                  0; }");
    Alcotest.fail "expected error"
  with Accrt.Value.Runtime_error _ | Loc.Error _ -> ()

let test_kernel_over_2d () =
  let src =
    "int main() { int n = 8; int m = 8; float grid[n][m]; float out[n][m]; \
     float s = 0.0;\nfor (int i = 0; i < n; i++) { for (int j = 0; j < m; \
     j++) { grid[i][j] = float((i * m + j) % 5); out[i][j] = 0.0; } \
     }\n#pragma acc data copyin(grid) copyout(out)\n{\n#pragma acc kernels \
     loop gang worker\nfor (int i = 1; i < n - 1; i++) {\nfor (int j = 1; \
     j < m - 1; j++) {\nout[i][j] = 0.25 * (grid[i - 1][j] + grid[i + \
     1][j] + grid[i][j - 1] + grid[i][j + 1]);\n}\n}\n}\n#pragma acc \
     parallel loop reduction(+:s)\nfor (int i = 0; i < n; i++) {\nfor (int \
     j = 0; j < m; j++) { s = s + out[i][j]; }\n}\nreturn 0; }"
  in
  let o = run src in
  let r = reference src in
  Alcotest.(check (float 1e-9)) "2-D stencil on GPU matches reference"
    (ref_f r "s") (out_f o "s")

let test_pointer_to_2d () =
  let src =
    "int main() { float a[2][3]; float b[2][3]; float *p;\nfor (int i = 0; \
     i < 2; i++) { for (int j = 0; j < 3; j++) { a[i][j] = 1.0; b[i][j] = \
     2.0; } }\np = a;\np[1][2] = 9.0;\np = b;\np[0][0] = 7.0;\nfloat x = \
     a[1][2];\nfloat y = b[0][0];\nreturn 0; }"
  in
  let ctx = reference src in
  Alcotest.(check (float 0.)) "through p to a" 9.0 (ref_f ctx "x");
  Alcotest.(check (float 0.)) "through p to b" 7.0 (ref_f ctx "y")

let test_roundtrip_and_typing () =
  let src =
    "int main() { int n = 2; float a[n][4]; int c[2][2][2]; a[0][0] = 1.0; \
     c[1][1][1] = 3; return 0; }"
  in
  let p1 = Parser.parse_string src in
  ignore (Typecheck.check p1);
  let p2 = Parser.parse_string (Pretty.program_to_string p1) in
  Alcotest.(check bool) "pretty round-trip" true (Ast.equal_program p1 p2);
  (* typechecker rejects scalar use of a row *)
  try
    ignore
      (Typecheck.check
         (Parser.parse_string
            "int main() { float a[2][2]; float x = 0.0; x = a[0]; return 0; \
             }"));
    Alcotest.fail "expected type error"
  with Loc.Error _ -> ()

let test_coherence_on_2d () =
  (* coherence tracks the whole flattened buffer of a 2-D array *)
  let src =
    "int main() { int n = 6; float a[n][n];\nfor (int i = 0; i < n; i++) { \
     for (int j = 0; j < n; j++) { a[i][j] = 1.0; } }\nfor (int k = 0; k < \
     3; k++) {\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { \
     for (int j = 0; j < n; j++) { a[i][j] = a[i][j] + 1.0; } }\n}\nfloat \
     cs = a[0][0];\nreturn 0; }"
  in
  let o = Accrt.Interp.run_string ~instrument:true src in
  Alcotest.(check (float 0.)) "value" 4.0 (out_f o "cs");
  Alcotest.(check bool) "redundant copies of the 2-D buffer reported" true
    (List.exists
       (fun r -> r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant)
       (Accrt.Interp.reports o))

let tests =
  [ Alcotest.test_case "basic 2-D" `Quick test_basic_2d;
    Alcotest.test_case "3-D" `Quick test_3d;
    Alcotest.test_case "per-dimension bounds" `Quick
      test_bounds_per_dimension;
    Alcotest.test_case "partial indexing rejected" `Quick
      test_partial_indexing_rejected;
    Alcotest.test_case "kernel over 2-D data" `Quick test_kernel_over_2d;
    Alcotest.test_case "pointer to 2-D array" `Quick test_pointer_to_2d;
    Alcotest.test_case "round trip and typing" `Quick
      test_roundtrip_and_typing;
    Alcotest.test_case "coherence on 2-D buffers" `Quick
      test_coherence_on_2d ]
