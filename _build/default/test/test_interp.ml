(* Translated-program execution: GPU results must equal the sequential
   reference for correct programs; race semantics must match the design
   (active corrupts, latent does not); reductions combine in tree order;
   async/wait, presence errors, metrics. Includes a QCheck property
   comparing reference vs translated execution on generated kernels. *)

open Minic

let run ?opts ?instrument src =
  Accrt.Interp.run_string ?opts ?instrument src

let reference src = Accrt.Eval.run_reference (Parser.parse_string src)

let out_f o name = Accrt.Value.to_float (Accrt.Interp.host_scalar o name)

let ref_f ctx name =
  Accrt.Value.to_float (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)

let arr o name i =
  Gpusim.Buf.get_float (Accrt.Interp.host_array o name) i

let test_matches_reference () =
  let src =
    "int main() { int n = 64; float a[n]; float b[n]; float s = 0.0; float \
     t;\nfor (int i = 0; i < n; i++) { a[i] = float(i) * 0.5; }\n#pragma \
     acc data copyin(a) copyout(b)\n{\n#pragma acc kernels loop \
     private(t)\nfor (int i = 0; i < n; i++) { t = a[i] * 2.0; b[i] = t + \
     1.0; }\n}\n#pragma acc parallel loop reduction(+:s)\nfor (int i = 0; \
     i < n; i++) { s = s + b[i]; }\nreturn 0; }"
  in
  let o = run src in
  let r = reference src in
  Alcotest.(check (float 1e-9)) "reduction matches" (ref_f r "s")
    (out_f o "s");
  (* a[2] = 1.0 -> t = 2.0 -> b[2] = 3.0 *)
  Alcotest.(check (float 0.)) "array matches" 3.0 (arr o "b" 2)

let test_active_race_corrupts () =
  let src =
    "int main() { int n = 32; float a[n]; float s = 0.0;\nfor (int i = 0; i \
     < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop\nfor (int i = 0; i \
     < n; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  let o = run ~opts:Codegen.Options.fault_injection src in
  (* all threads read the initial 0.0; the last writer wins: s = 1.0 *)
  Alcotest.(check (float 0.)) "last writer wins" 1.0 (out_f o "s");
  let r = reference src in
  Alcotest.(check (float 0.)) "sequential truth" 32.0 (ref_f r "s")

let test_latent_race_invisible () =
  let src =
    "int main() { int n = 32; float a[n]; float b[n]; float t;\nfor (int i \
     = 0; i < n; i++) { a[i] = float(i); }\n#pragma acc kernels loop\nfor \
     (int i = 0; i < n; i++) { t = a[i] * 3.0; b[i] = t; }\nreturn 0; }"
  in
  let o = run ~opts:Codegen.Options.fault_injection src in
  (* register promotion keeps per-thread dataflow private: outputs correct *)
  Alcotest.(check (float 0.)) "b[5]" 15.0 (arr o "b" 5);
  Alcotest.(check (float 0.)) "b[31]" 93.0 (arr o "b" 31)

let test_reduction_tree_order () =
  (* Summing values of very different magnitude: tree order differs from
     sequential order in the low bits, but stays within a loose margin. *)
  let src =
    "int main() { int n = 1000; float a[n]; float s = 0.0;\nfor (int i = 0; \
     i < n; i++) { a[i] = 1.0 / (1.0 + float(i)); }\n#pragma acc kernels \
     loop reduction(+:s)\nfor (int i = 0; i < n; i++) { s = s + a[i]; \
     }\nreturn 0; }"
  in
  let o = run src in
  let r = reference src in
  let gpu = out_f o "s" and cpu = ref_f r "s" in
  Alcotest.(check bool) "close" true (Float.abs (gpu -. cpu) < 1e-9);
  (* max reduction is exact *)
  let src_max =
    "int main() { int n = 100; float a[n]; float m = 0.0;\nfor (int i = 0; \
     i < n; i++) { a[i] = float((i * 37) % 100); }\n#pragma acc kernels \
     loop reduction(max:m)\nfor (int i = 0; i < n; i++) { m = max(m, a[i]); \
     }\nreturn 0; }"
  in
  Alcotest.(check (float 0.)) "max exact" 99.0 (out_f (run src_max) "m")

let test_firstprivate_and_params () =
  let src =
    "int main() { int n = 8; float a[n]; float bias = 5.0; float t;\nfor \
     (int i = 0; i < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop \
     firstprivate(t)\nfor (int i = 0; i < n; i++) { t = bias; a[i] = a[i] \
     + t; }\nreturn 0; }"
  in
  Alcotest.(check (float 0.)) "firstprivate + scalar param" 6.0
    (arr (run src) "a" 3)

let test_seq_kernel_semantics () =
  (* seq: genuinely sequential, loop-carried dependence allowed *)
  let src =
    "int main() { int n = 8; float a[n]; float acc = 0.0;\nfor (int i = 0; \
     i < n; i++) { a[i] = 1.0; }\n#pragma acc kernels loop seq\nfor (int i \
     = 0; i < n; i++) { acc = acc * 2.0 + a[i]; a[i] = acc; }\nreturn 0; }"
  in
  let o = run src in
  let r = reference src in
  Alcotest.(check (float 1e-9)) "seq loop-carried" (ref_f r "acc")
    (out_f o "acc")

let test_present_error () =
  let src =
    "int main() { float a[4];\n#pragma acc data present(a)\n{\n#pragma acc \
     kernels loop\nfor (int i = 0; i < 4; i++) { a[i] = 1.0; }\n}\nreturn \
     0; }"
  in
  try
    ignore (run src);
    Alcotest.fail "expected presence failure"
  with Gpusim.Device.Device_error _ -> ()

let test_async_timing () =
  let src_async =
    "int main() { int n = 4096; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\n#pragma acc kernels loop async(1)\nfor (int i = 0; i < \
     n; i++) { a[i] = a[i] * 2.0; }\nfor (int i = 0; i < n; i++) { a[i] = \
     a[i] + 0.0; }\n#pragma acc wait(1)\nreturn 0; }"
  in
  let o = run src_async in
  let m = Accrt.Interp.metrics o in
  Alcotest.(check bool) "async-wait accounted" true
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Async_wait >= 0.0);
  Alcotest.(check int) "one launch" 1 m.Gpusim.Metrics.kernel_launches

let test_pointer_kernel () =
  (* kernel accesses through a pointer use the runtime root *)
  let src =
    "int main() { int n = 8; float a[n]; float b[n]; float *p;\nfor (int i \
     = 0; i < n; i++) { a[i] = 1.0; b[i] = 2.0; }\np = b;\n#pragma acc \
     kernels loop\nfor (int i = 0; i < n; i++) { p[i] = p[i] * 10.0; \
     }\nreturn 0; }"
  in
  let o = run src in
  Alcotest.(check (float 0.)) "b written via p" 20.0 (arr o "b" 0);
  Alcotest.(check (float 0.)) "a untouched" 1.0 (arr o "a" 0)

let test_host_loop_with_break () =
  let src =
    "int main() { int n = 8; float a[n]; int stop = 0; int iters = 0;\nfor \
     (int i = 0; i < n; i++) { a[i] = 0.0; }\nfor (int k = 0; k < 100; k++) \
     {\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { a[i] = a[i] \
     + 1.0; }\niters = iters + 1;\nif (iters == 3) { break; }\n}\nreturn 0; \
     }"
  in
  let o = run src in
  Alcotest.(check (float 0.)) "three sweeps" 3.0 (arr o "a" 0)

(* Property: for race-free generated kernels, translated execution equals
   the sequential reference. *)
let translated_equals_reference =
  QCheck.Test.make ~count:60 ~name:"translated run equals reference"
    (QCheck.make
       QCheck.Gen.(
         let term =
           oneofl [ "a[i]"; "b[i]"; "float(i)"; "0.5"; "2.0"; "c" ]
         in
         let op = oneofl [ "+"; "*"; "-" ] in
         map3
           (fun t1 o t2 -> Fmt.str "%s %s %s" t1 o t2)
           term op term)
       ~print:Fun.id)
    (fun rhs ->
      let src =
        Fmt.str
          "int main() { int n = 16; float a[n]; float b[n]; float c = \
           3.0;\nfor (int i = 0; i < n; i++) { a[i] = float(i) * 0.25; b[i] \
           = 1.0; }\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) \
           { b[i] = %s; }\nreturn 0; }"
          rhs
      in
      let o = run src in
      let r = reference src in
      let rb = Accrt.Value.array_buf r.Accrt.Eval.env "b" in
      let _, bad =
        Gpusim.Buf.compare ~margin:1e-12 ~reference:rb
          (Accrt.Interp.host_array o "b")
      in
      bad = 0)

let tests =
  [ Alcotest.test_case "matches reference" `Quick test_matches_reference;
    Alcotest.test_case "active race corrupts" `Quick test_active_race_corrupts;
    Alcotest.test_case "latent race invisible" `Quick
      test_latent_race_invisible;
    Alcotest.test_case "reduction tree order" `Quick test_reduction_tree_order;
    Alcotest.test_case "firstprivate and params" `Quick
      test_firstprivate_and_params;
    Alcotest.test_case "seq kernel semantics" `Quick test_seq_kernel_semantics;
    Alcotest.test_case "present error" `Quick test_present_error;
    Alcotest.test_case "async timing" `Quick test_async_timing;
    Alcotest.test_case "pointer kernel" `Quick test_pointer_kernel;
    Alcotest.test_case "host loop with break" `Quick test_host_loop_with_break;
    QCheck_alcotest.to_alcotest translated_equals_reference ]
