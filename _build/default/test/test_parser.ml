(* Parser unit tests: expressions, statements, declarations, directives. *)

open Minic
open Minic.Ast

let expr = Parser.expr_of_string

let check_expr name src expected =
  Alcotest.(check bool) name true (equal_expr (expr src) expected)

let test_precedence () =
  check_expr "mul over add" "1 + 2 * 3"
    (Ebinop (Add, Eint 1, Ebinop (Mul, Eint 2, Eint 3)));
  check_expr "parens" "(1 + 2) * 3"
    (Ebinop (Mul, Ebinop (Add, Eint 1, Eint 2), Eint 3));
  check_expr "relational over logical" "a < b && c > d"
    (Ebinop (Land, Ebinop (Lt, Evar "a", Evar "b"),
             Ebinop (Gt, Evar "c", Evar "d")));
  check_expr "or over ternary" "a || b ? 1 : 2"
    (Econd (Ebinop (Lor, Evar "a", Evar "b"), Eint 1, Eint 2));
  check_expr "left assoc sub" "a - b - c"
    (Ebinop (Sub, Ebinop (Sub, Evar "a", Evar "b"), Evar "c"));
  check_expr "unary binds tight" "-a * b"
    (Ebinop (Mul, Eunop (Neg, Evar "a"), Evar "b"))

let test_postfix_and_calls () =
  check_expr "index" "a[i + 1]"
    (Eindex (Evar "a", Ebinop (Add, Evar "i", Eint 1)));
  check_expr "call" "sqrt(x)" (Ecall ("sqrt", [ Evar "x" ]));
  check_expr "call two args" "max(a, b)" (Ecall ("max", [ Evar "a"; Evar "b" ]));
  check_expr "conversion" "float(i)" (Ecall ("float", [ Evar "i" ]));
  check_expr "cast style" "(float) i" (Ecall ("float", [ Evar "i" ]));
  check_expr "nested" "a[b[i]]" (Eindex (Evar "a", Eindex (Evar "b", Evar "i")))

let parse_main body =
  Parser.parse_string ("int main() {\n" ^ body ^ "\n return 0; }")

let main_body src =
  match Ast.main_function (parse_main src) with f -> f.f_body

let test_statements () =
  (match main_body "x += 2;" with
  | [ { skind = Sassign (Lvar "x", Ebinop (Add, Evar "x", Eint 2)); _ }; _ ] ->
      ()
  | _ -> Alcotest.fail "+= desugaring");
  (match main_body "i++;" with
  | [ { skind = Sassign (Lvar "i", Ebinop (Add, Evar "i", Eint 1)); _ }; _ ] ->
      ()
  | _ -> Alcotest.fail "++ desugaring");
  (match main_body "if (x > 0) { y = 1; } else y = 2;" with
  | [ { skind = Sif (_, [ _ ], [ _ ]); _ }; _ ] -> ()
  | _ -> Alcotest.fail "if/else");
  (match main_body "while (i < 10) i++;" with
  | [ { skind = Swhile (_, [ _ ]); _ }; _ ] -> ()
  | _ -> Alcotest.fail "while");
  match main_body "for (int i = 0; i < 4; i++) { }" with
  | [ { skind = Sfor (Some { skind = Sdecl (Tint, "i", Some (Eint 0)); _ },
                      Some _, Some _, []); _ }; _ ] -> ()
  | _ -> Alcotest.fail "for header"

let test_declarations () =
  (match main_body "float a[10];" with
  | [ { skind = Sdecl (Tarr (Tfloat, Some (Eint 10)), "a", None); _ }; _ ] ->
      ()
  | _ -> Alcotest.fail "array decl");
  (match main_body "float a[n];" with
  | [ { skind = Sdecl (Tarr (Tfloat, Some (Evar "n")), "a", None); _ }; _ ] ->
      ()
  | _ -> Alcotest.fail "vla decl");
  match main_body "float *p;" with
  | [ { skind = Sdecl (Tptr Tfloat, "p", None); _ }; _ ] -> ()
  | _ -> Alcotest.fail "pointer decl"

let test_functions () =
  let p =
    Parser.parse_string
      "float f(float x, int n, float a[]) { return x; }\n\
       int main() { return 0; }"
  in
  match Ast.find_function p "f" with
  | Some f ->
      Alcotest.(check int) "arity" 3 (List.length f.f_params);
      (match (List.nth f.f_params 2).p_typ with
      | Tarr (Tfloat, None) -> ()
      | _ -> Alcotest.fail "array param type")
  | None -> Alcotest.fail "function not found"

let dir_of src =
  Parser.parse_directive ~loc:Loc.dummy src

let test_directives () =
  let d = dir_of "acc kernels loop gang worker private(t) reduction(+:s)" in
  Alcotest.(check bool) "construct" true (d.dir = Acc_kernels_loop);
  Alcotest.(check (list string)) "private" [ "t" ] (Acc.Query.private_vars d);
  (match Acc.Query.reductions d with
  | [ (Rsum, "s") ] -> ()
  | _ -> Alcotest.fail "reduction clause");
  let d = dir_of "acc data copyin(a[0:n], b) copyout(c) create(d)" in
  Alcotest.(check int) "data clause count" 4
    (List.length (Acc.Query.data_clauses d));
  (match Acc.Query.data_clauses d with
  | (Dk_copyin, { sub_var = "a"; sub_lo = Some (Eint 0);
                  sub_len = Some (Evar "n") }) :: _ -> ()
  | _ -> Alcotest.fail "subarray bounds");
  let d = dir_of "acc update host(x) device(y) async(2)" in
  Alcotest.(check int) "update host" 1
    (List.length (Acc.Query.update_host_subs d));
  (match Acc.Query.async d with
  | Some (Some (Eint 2)) -> ()
  | _ -> Alcotest.fail "async id");
  (match (dir_of "acc wait(1)").dir with
  | Acc_wait (Some (Eint 1)) -> ()
  | _ -> Alcotest.fail "wait");
  match (dir_of "acc parallel loop seq collapse(2)").dir with
  | Acc_parallel_loop -> ()
  | _ -> Alcotest.fail "parallel loop"

let test_directive_attachment () =
  let p =
    parse_main
      "#pragma acc data copyin(a)\n{\n#pragma acc kernels loop\nfor (int i \
       = 0; i < 2; i++) { }\n}\n#pragma acc wait"
  in
  let dirs = Acc.Query.directives_of p in
  Alcotest.(check int) "three directives" 3 (List.length dirs);
  match dirs with
  | [ (_, _, d1); (_, _, d2); (_, _, d3) ] ->
      Alcotest.(check bool) "data" true (d1.dir = Acc_data);
      Alcotest.(check bool) "kernels loop" true (d2.dir = Acc_kernels_loop);
      Alcotest.(check bool) "wait" true (d3.dir = Acc_wait None)
  | _ -> Alcotest.fail "directive list"

let test_errors () =
  let expect_error src =
    try
      ignore (Parser.parse_string src);
      Alcotest.fail ("expected parse error for: " ^ src)
    with Loc.Error _ -> ()
  in
  expect_error "int main() { x = ; }";
  expect_error "int main() { if x { } }";
  expect_error "int main() { for (;;) }";
  expect_error "int main() { #pragma acc bogus\n }";
  expect_error "int main() { #pragma acc kernels loop frobnicate(x)\n ; }";
  expect_error "int main() { 1 + 2 }" (* missing semicolon *)

let base_tests =
  [ Alcotest.test_case "expression precedence" `Quick test_precedence;
    Alcotest.test_case "postfix and calls" `Quick test_postfix_and_calls;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "directives" `Quick test_directives;
    Alcotest.test_case "directive attachment" `Quick test_directive_attachment;
    Alcotest.test_case "parse errors" `Quick test_errors ]

(* Fuzz: arbitrary input must either parse or fail with a located error —
   never crash with an unexpected exception. *)
let fuzz_graceful_errors =
  QCheck.Test.make ~count:500 ~name:"parser fails gracefully on any input"
    (QCheck.make
       QCheck.Gen.(
         let token =
           oneofl
             [ "int"; "float"; "main"; "("; ")"; "{"; "}"; "["; "]"; ";";
               "="; "+"; "for"; "if"; "x"; "a"; "1"; "2.5"; "#pragma";
               "acc"; "kernels"; "loop"; "copyin"; ","; "<"; "++"; "return";
               "&&"; "?"; ":"; "*" ]
         in
         map (String.concat " ") (list_size (int_bound 40) token))
       ~print:Fun.id)
    (fun src ->
      match Parser.parse_string src with
      | _ -> true
      | exception Loc.Error _ -> true
      | exception _ -> false)

(* Pipeline fuzz: sources that parse must also typecheck/validate/translate
   cleanly or fail with one of the documented error exceptions. *)
let fuzz_pipeline =
  QCheck.Test.make ~count:200 ~name:"pipeline fails gracefully"
    (QCheck.make
       QCheck.Gen.(
         let stmts =
           oneofl
             [ "a[0] = 1.0;"; "x = x + 1;"; "float y = a[x];";
               "#pragma acc kernels loop\nfor (int i = 0; i < 4; i++) { \
                a[i] = 0.0; }";
               "#pragma acc update host(a)";
               "#pragma acc data copyin(a)\n{ }";
               "if (x > 0) { x = 0; }";
               "for (int k = 0; k < 2; k++) { a[k] = float(k); }" ]
         in
         map
           (fun body ->
             "int main() { float a[4]; int x = 0;\n"
             ^ String.concat "\n" body ^ "\nreturn 0; }")
           (list_size (int_bound 6) stmts))
       ~print:Fun.id)
    (fun src ->
      match
        let prog = Parser.parse_string src in
        Acc.Validate.check_program prog;
        let env = Typecheck.check prog in
        ignore (Codegen.Translate.translate env prog)
      with
      | () -> true
      | exception (Loc.Error _ | Acc.Validate.Invalid _
                  | Codegen.Outline.Unsupported _
                  | Codegen.Inline.Not_inlinable _) -> true
      | exception _ -> false)

let fuzz_tests =
  [ QCheck_alcotest.to_alcotest fuzz_graceful_errors;
    QCheck_alcotest.to_alcotest fuzz_pipeline ]

let tests = base_tests @ fuzz_tests
