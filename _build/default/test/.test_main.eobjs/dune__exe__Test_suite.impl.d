test/test_suite.ml: Acc Accrt Alcotest Array Ast Codegen Float Gpusim List Minic Openarc_core Option Parser Suite Typecheck
