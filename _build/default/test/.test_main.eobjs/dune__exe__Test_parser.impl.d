test/test_parser.ml: Acc Alcotest Ast Codegen Fun List Loc Minic Parser QCheck QCheck_alcotest String Typecheck
