test/test_multidim.ml: Accrt Alcotest Ast Gpusim List Loc Minic Parser Pretty Typecheck
