test/test_kernel_exec.ml: Accrt Alcotest Float Fmt Gpusim List Minic QCheck QCheck_alcotest
