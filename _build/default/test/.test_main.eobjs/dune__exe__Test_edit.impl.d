test/test_edit.ml: Acc Accrt Alcotest Codegen List Minic Option Parser Typecheck
