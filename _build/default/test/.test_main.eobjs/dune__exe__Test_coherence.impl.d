test/test_coherence.ml: Accrt Alcotest Codegen Fmt List QCheck QCheck_alcotest String
