test/test_lexer.ml: Alcotest Lexer List Loc Minic String Token
