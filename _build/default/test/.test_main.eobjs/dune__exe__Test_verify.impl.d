test/test_verify.ml: Alcotest Codegen Gpusim List Minic Openarc_core Parser String
