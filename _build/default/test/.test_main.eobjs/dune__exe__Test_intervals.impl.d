test/test_intervals.ml: Accrt Alcotest Array Codegen List QCheck QCheck_alcotest
