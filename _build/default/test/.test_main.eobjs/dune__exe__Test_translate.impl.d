test/test_translate.ml: Alcotest Analysis Array Codegen Cuda List Minic Options String Tprog Translate
