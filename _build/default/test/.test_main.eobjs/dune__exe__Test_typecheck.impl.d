test/test_typecheck.ml: Alcotest Loc Minic Parser Typecheck
