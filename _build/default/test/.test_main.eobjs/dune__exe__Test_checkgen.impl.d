test/test_checkgen.ml: Accrt Alcotest Checkgen Codegen Fmt Gpusim List QCheck QCheck_alcotest Tprog Translate
