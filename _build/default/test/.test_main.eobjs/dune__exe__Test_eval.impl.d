test/test_eval.ml: Accrt Alcotest Gpusim Minic Parser
