test/test_features.ml: Accrt Alcotest Codegen Float Fmt Gpusim List Minic Openarc_core String Unix
