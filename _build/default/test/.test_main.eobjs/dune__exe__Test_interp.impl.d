test/test_interp.ml: Accrt Alcotest Codegen Float Fmt Fun Gpusim Minic Parser QCheck QCheck_alcotest
