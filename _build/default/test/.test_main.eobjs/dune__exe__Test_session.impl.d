test/test_session.ml: Accrt Alcotest Codegen List Minic Openarc_core Parser Typecheck
