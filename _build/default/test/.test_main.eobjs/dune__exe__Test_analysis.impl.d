test/test_analysis.ml: Alcotest Alias Analysis Array Ast Dataflow Graph List Minic Parser QCheck QCheck_alcotest Regions Typecheck Varset
