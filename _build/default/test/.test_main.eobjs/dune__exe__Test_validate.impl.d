test/test_validate.ml: Acc Alcotest Minic Parser
