test/test_gpusim.ml: Alcotest Float Gpusim QCheck QCheck_alcotest
