test/test_pretty.ml: Alcotest Float List Loc Minic Parser Pretty QCheck QCheck_alcotest
