test/test_inline.ml: Accrt Alcotest Array Codegen List Minic Openarc_core Parser Pretty Typecheck
