test/test_tprog_analyses.ml: Alcotest Analysis Array Codegen Deadness Firstaccess Graph Lastwrite List Tcfg Translate Varset
