(* Translation tests: kernel outlining, scalar classification, data-region
   lowering, implicit default-scheme transfers, sites and provenance. *)

open Codegen
open Codegen.Tprog

let compile ?opts src = Translate.compile_string ?opts src

let kernels tp = Array.to_list tp.kernels

let kernel_named tp name =
  match Tprog.find_kernel tp name with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s not found" name

let count_kind tp pred =
  let n = ref 0 in
  Tprog.iter tp (fun s -> if pred s.tkind then incr n);
  !n

let is_xfer dir = function
  | Txfer x -> x.x_dir = dir
  | _ -> false

let test_outline_kernels_loop () =
  let tp =
    compile
      "int main() { float a[8]; float s; float t;\n#pragma acc kernels loop \
       gang worker private(t) reduction(+:s)\nfor (int i = 0; i < 8; i++) { \
       t = a[i]; s = s + t; }\nreturn 0; }"
  in
  Alcotest.(check int) "one kernel" 1 (List.length (kernels tp));
  let k = kernel_named tp "main_kernel0" in
  Alcotest.(check bool) "reads a" true
    (Analysis.Varset.mem "a" k.k_arrays_read);
  (match List.assoc_opt "t" k.k_scalars with
  | Some Sc_private -> ()
  | _ -> Alcotest.fail "t private");
  (match List.assoc_opt "s" k.k_scalars with
  | Some (Sc_reduction Minic.Ast.Rsum) -> ()
  | _ -> Alcotest.fail "s reduction");
  Alcotest.(check bool) "has private data" true k.k_has_private_data;
  Alcotest.(check bool) "has reduction" true k.k_has_reduction

let test_outline_kernels_region () =
  (* a kernels region with two loops and a scalar statement -> 3 kernels *)
  let tp =
    compile
      "int main() { float a[8]; float c = 0.0;\n#pragma acc \
       kernels\n{\nfor (int i = 0; i < 8; i++) { a[i] = 1.0; }\nc = \
       2.0;\nfor (int i = 0; i < 8; i++) { a[i] = a[i] * c; }\n}\nreturn \
       0; }"
  in
  Alcotest.(check int) "three kernels" 3 (List.length (kernels tp));
  let scalar_kernels =
    List.filter (fun k -> k.k_loop = None) (kernels tp)
  in
  Alcotest.(check int) "one single-thread kernel" 1
    (List.length scalar_kernels)

let test_auto_privatization_switch () =
  let src =
    "int main() { float a[8]; float t;\n#pragma acc kernels loop\nfor (int \
     i = 0; i < 8; i++) { t = a[i] * 2.0; a[i] = t; }\nreturn 0; }"
  in
  let k_on = List.hd (kernels (compile src)) in
  (match List.assoc_opt "t" k_on.k_scalars with
  | Some Sc_private -> ()
  | c ->
      Alcotest.failf "t should be auto-privatized, got %s"
        (match c with None -> "none" | Some _ -> "other"));
  let k_off =
    List.hd (kernels (compile ~opts:Options.fault_injection src))
  in
  match List.assoc_opt "t" k_off.k_scalars with
  | Some (Sc_raced Race_latent) -> ()
  | _ -> Alcotest.fail "t should be a latent race under fault injection"

let test_auto_reduction_switch () =
  let src =
    "int main() { float a[8]; float s = 0.0;\n#pragma acc kernels loop\nfor \
     (int i = 0; i < 8; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  let k_on = List.hd (kernels (compile src)) in
  (match List.assoc_opt "s" k_on.k_scalars with
  | Some (Sc_reduction Minic.Ast.Rsum) -> ()
  | _ -> Alcotest.fail "s should be auto-recognized");
  let k_off =
    List.hd (kernels (compile ~opts:Options.fault_injection src))
  in
  match List.assoc_opt "s" k_off.k_scalars with
  | Some (Sc_raced Race_active) -> ()
  | _ -> Alcotest.fail "s should be an active race under fault injection"

let test_induction_always_private () =
  (* Loop indices declared outside stay private even under fault injection. *)
  let tp =
    compile ~opts:Options.fault_injection
      "int main() { float a[8]; int i; int j;\n#pragma acc kernels \
       loop\nfor (i = 0; i < 8; i++) { for (j = 0; j < 2; j++) { a[i] = \
       a[i] + 1.0; } }\nreturn 0; }"
  in
  let k = List.hd (kernels tp) in
  Alcotest.(check bool) "i induction" true
    (Analysis.Varset.mem "i" k.k_induction);
  Alcotest.(check bool) "j induction" true
    (Analysis.Varset.mem "j" k.k_induction);
  Alcotest.(check int) "no raced scalars" 0
    (List.length (Tprog.raced_scalars k))

let test_default_scheme () =
  let tp =
    compile
      "int main() { float a[8]; float b[8];\n#pragma acc kernels loop\nfor \
       (int i = 0; i < 8; i++) { b[i] = a[i]; }\nreturn 0; }"
  in
  (* both arrays copied in and out around the kernel *)
  Alcotest.(check int) "h2d" 2 (count_kind tp (is_xfer H2D));
  Alcotest.(check int) "d2h" 2 (count_kind tp (is_xfer D2H));
  Alcotest.(check int) "allocs" 2
    (count_kind tp (function Talloc _ -> true | _ -> false))

let test_data_region_lowering () =
  let tp =
    compile
      "int main() { float a[8]; float b[8];\n#pragma acc data copyin(a) \
       create(b)\n{\n#pragma acc kernels loop\nfor (int i = 0; i < 8; i++) \
       { b[i] = a[i]; }\n}\nreturn 0; }"
  in
  (* data region: one upload (a), no implicit copies inside *)
  Alcotest.(check int) "h2d only a" 1 (count_kind tp (is_xfer H2D));
  Alcotest.(check int) "no downloads" 0 (count_kind tp (is_xfer D2H));
  Alcotest.(check int) "frees at exit" 2
    (count_kind tp (function Tfree _ -> true | _ -> false))

let test_update_and_wait () =
  let tp =
    compile
      "int main() { float a[8];\n#pragma acc data copy(a)\n{\n#pragma acc \
       update host(a[0:4]) async(2)\n#pragma acc wait(2)\n}\nreturn 0; }"
  in
  let found = ref false in
  Tprog.iter tp (fun s ->
      match s.tkind with
      | Txfer { x_dir = D2H; x_lo = Some (Minic.Ast.Eint 0);
                x_len = Some (Minic.Ast.Eint 4);
                x_async = Some (Minic.Ast.Eint 2); _ } -> found := true
      | _ -> ());
  Alcotest.(check bool) "subarray async update" true !found;
  Alcotest.(check int) "wait lowered" 1
    (count_kind tp (function Twait (Some _) -> true | _ -> false))

let test_sites_and_provenance () =
  let tp =
    compile
      "int main() { float a[8];\n#pragma acc update device(a)\nreturn 0; }"
  in
  let sites = Tprog.xfer_sites tp in
  Alcotest.(check int) "one site" 1 (List.length sites);
  let s = List.hd sites in
  Alcotest.(check string) "update label" "update0.device(a)" s.site_label;
  Alcotest.(check bool) "site has source sid" true (s.site_sid > 0)

let test_seq_clause () =
  let tp =
    compile
      "int main() { float a[8]; float s = 0.0;\n#pragma acc kernels loop \
       seq\nfor (int i = 0; i < 8; i++) { s = s + a[i]; }\nreturn 0; }"
  in
  Alcotest.(check bool) "seq kernel" true (List.hd (kernels tp)).k_seq

let test_cuda_rendering () =
  let tp =
    compile
      "int main() { float a[4]; float t;\n#pragma acc kernels loop \
       private(t)\nfor (int i = 0; i < 4; i++) { t = a[i]; a[i] = t + 1.0; \
       }\nreturn 0; }"
  in
  let out = Cuda.to_string tp in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "kernel signature" true
    (contains "__global__ void main_kernel0");
  Alcotest.(check bool) "private comment" true
    (contains "private (per-thread register)");
  Alcotest.(check bool) "memcpy call" true (contains "memcpyin")

let tests =
  [ Alcotest.test_case "outline kernels loop" `Quick test_outline_kernels_loop;
    Alcotest.test_case "outline kernels region" `Quick
      test_outline_kernels_region;
    Alcotest.test_case "auto privatization switch" `Quick
      test_auto_privatization_switch;
    Alcotest.test_case "auto reduction switch" `Quick
      test_auto_reduction_switch;
    Alcotest.test_case "induction vars always private" `Quick
      test_induction_always_private;
    Alcotest.test_case "default scheme copies" `Quick test_default_scheme;
    Alcotest.test_case "data region lowering" `Quick test_data_region_lowering;
    Alcotest.test_case "update and wait" `Quick test_update_and_wait;
    Alcotest.test_case "sites and provenance" `Quick test_sites_and_provenance;
    Alcotest.test_case "seq clause" `Quick test_seq_clause;
    Alcotest.test_case "CUDA rendering" `Quick test_cuda_rendering ]
