(** Read-only helpers over OpenACC directives and clause lists. *)

open Minic.Ast

(** All data clauses of a directive, flattened to (kind, subarray) pairs. *)
val data_clauses : directive -> (data_kind * subarray) list

(** Variables named in any data clause. *)
val data_vars : directive -> string list

val private_vars : directive -> string list
val firstprivate_vars : directive -> string list

(** Reduction specs [(op, var)] declared on the directive. *)
val reductions : directive -> (redop * string) list

(** [Some None] for bare [async], [Some (Some e)] for [async(e)], [None]
    when the clause is absent. *)
val async : directive -> expr option option

val if_clause : directive -> expr option
val has_seq : directive -> bool
val collapse : directive -> int option
val update_host_subs : directive -> subarray list
val update_device_subs : directive -> subarray list

(** Does the clause kind imply a host-to-device copy at region entry? *)
val kind_copies_in : data_kind -> bool

(** ... a device-to-host copy at region exit? *)
val kind_copies_out : data_kind -> bool

(** ... a device allocation at entry (vs requiring presence)? *)
val kind_allocates : data_kind -> bool

(** Is this a compute construct (introduces GPU kernels)? *)
val is_compute : construct -> bool

val is_data_region : construct -> bool

(** Directives of a whole program, pre-order, with the [sid] of the carrying
    statement and the enclosing function name. *)
val directives_of : program -> (int * string * directive) list

(** Compute regions in a program (an upper bound on kernels). *)
val count_compute_regions : program -> int
