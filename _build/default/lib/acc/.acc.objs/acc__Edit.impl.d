lib/acc/edit.ml: List Minic Option Query
