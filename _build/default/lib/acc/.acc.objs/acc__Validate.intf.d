lib/acc/validate.mli: Minic
