lib/acc/query.ml: List Minic
