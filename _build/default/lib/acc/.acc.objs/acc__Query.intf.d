lib/acc/query.mli: Minic
