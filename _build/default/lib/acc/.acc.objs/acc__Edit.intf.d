lib/acc/edit.mli: Minic
