lib/acc/validate.ml: Fmt Hashtbl List Loc Minic Option Pretty Printexc Query
