(** OpenACC V1.0 directive validation: clause legality per construct,
    structural nesting rules, and data-clause sanity. *)

exception Invalid of Minic.Loc.t * string

val clause_name : Minic.Ast.clause -> string

(** Is the clause allowed on the construct (OpenACC 1.0 §2)? *)
val allowed_on : Minic.Ast.construct -> Minic.Ast.clause -> bool

(** Check one directive's clauses.  @raise Invalid on a violation. *)
val check_directive : Minic.Ast.directive -> unit

(** Validate every directive in the program.
    @raise Invalid on the first violation. *)
val check_program : Minic.Ast.program -> unit
