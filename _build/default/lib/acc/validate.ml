(** OpenACC V1.0 directive validation: clause legality per construct,
    well-formedness of nesting, and data-clause sanity.

    OpenARC accepts the full OpenACC V1.0 feature set; this module rejects
    programs outside it before translation, with located error messages. *)

open Minic
open Minic.Ast

let clause_name = function
  | Cdata (k, _) -> Pretty.data_kind_str k
  | Cprivate _ -> "private"
  | Cfirstprivate _ -> "firstprivate"
  | Creduction _ -> "reduction"
  | Cgang _ -> "gang"
  | Cworker _ -> "worker"
  | Cvector _ -> "vector"
  | Cnum_gangs _ -> "num_gangs"
  | Cnum_workers _ -> "num_workers"
  | Cvector_length _ -> "vector_length"
  | Casync _ -> "async"
  | Cif _ -> "if"
  | Ccollapse _ -> "collapse"
  | Cseq -> "seq"
  | Cindependent -> "independent"
  | Chost _ -> "host"
  | Cdevice _ -> "device"
  | Cuse_device _ -> "use_device"

(* Clause legality table, following the OpenACC 1.0 spec (§2). *)
let allowed_on construct clause =
  let data_ok = match clause with Cdata _ -> true | _ -> false in
  match construct with
  | Acc_parallel | Acc_kernels -> (
      data_ok
      ||
      match clause with
      | Casync _ | Cif _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Cprivate _ | Cfirstprivate _ | Creduction _ -> true
      | _ -> false)
  | Acc_parallel_loop | Acc_kernels_loop -> (
      data_ok
      ||
      match clause with
      | Casync _ | Cif _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Cprivate _ | Cfirstprivate _ | Creduction _ | Cgang _ | Cworker _
      | Cvector _ | Ccollapse _ | Cseq | Cindependent -> true
      | _ -> false)
  | Acc_loop -> (
      match clause with
      | Cgang _ | Cworker _ | Cvector _ | Ccollapse _ | Cseq | Cindependent
      | Cprivate _ | Creduction _ -> true
      | _ -> false)
  | Acc_data -> data_ok || (match clause with Cif _ -> true | _ -> false)
  | Acc_host_data -> ( match clause with Cuse_device _ -> true | _ -> false)
  | Acc_update -> (
      match clause with
      | Chost _ | Cdevice _ | Casync _ | Cif _ -> true
      | _ -> false)
  | Acc_declare -> data_ok
  | Acc_wait _ | Acc_cache _ -> false

let construct_name d = Pretty.construct_str d

exception Invalid of Loc.t * string

let invalid loc fmt = Fmt.kstr (fun m -> raise (Invalid (loc, m))) fmt

let () =
  Printexc.register_printer (function
    | Invalid (loc, m) -> Some (Fmt.str "OpenACC error at %a: %s" Loc.pp loc m)
    | _ -> None)

let check_directive d =
  List.iter
    (fun cl ->
      if not (allowed_on d.dir cl) then
        invalid d.dloc "clause '%s' is not allowed on '%s'" (clause_name cl)
          (construct_name d.dir))
    d.clauses;
  (* A variable may appear in at most one data clause of a directive. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (_, sub) ->
      if Hashtbl.mem seen sub.sub_var then
        invalid d.dloc "variable '%s' appears in multiple data clauses"
          sub.sub_var;
      Hashtbl.add seen sub.sub_var ())
    (Query.data_clauses d);
  (* update requires at least one host/device clause. *)
  (match d.dir with
  | Acc_update ->
      if Query.update_host_subs d = [] && Query.update_device_subs d = [] then
        invalid d.dloc "update directive needs a host() or device() clause"
  | _ -> ());
  (* Subarray bounds must be both present or both absent (parser enforces),
     and private vars must not also be in a data clause. *)
  let data_vars = Query.data_vars d in
  List.iter
    (fun v ->
      if List.mem v data_vars then
        invalid d.dloc "variable '%s' is both private and in a data clause" v)
    (Query.private_vars d)

(* Structural rules on the statement tree. *)
let rec check_stmt ~in_compute s =
  match s.skind with
  | Sacc (d, body) -> (
      check_directive d;
      (match d.dir with
      | Acc_parallel | Acc_kernels | Acc_parallel_loop | Acc_kernels_loop ->
          if in_compute then
            invalid d.dloc "compute regions may not nest";
          (match body with
          | Some _ -> ()
          | None ->
              invalid d.dloc "'%s' requires a following statement"
                (construct_name d.dir))
      | Acc_data | Acc_host_data ->
          if in_compute then
            invalid d.dloc "'%s' may not appear inside a compute region"
              (construct_name d.dir)
      | Acc_loop ->
          if not in_compute then
            invalid d.dloc
              "orphaned 'loop' directive outside any compute region";
          (match body with
          | Some { skind = Sfor _; _ } -> ()
          | _ -> invalid d.dloc "'loop' must be followed by a for loop")
      | Acc_update | Acc_wait _ ->
          if in_compute then
            invalid d.dloc "'%s' may not appear inside a compute region"
              (construct_name d.dir)
      | Acc_declare | Acc_cache _ -> ());
      let in_compute = in_compute || Query.is_compute d.dir in
      (* loop directives must be attached to a for statement *)
      (match (d.dir, body) with
      | (Acc_parallel_loop | Acc_kernels_loop), Some { skind = Sfor _; _ } -> ()
      | (Acc_parallel_loop | Acc_kernels_loop), Some _ ->
          invalid d.dloc "'%s' must be followed by a for loop"
            (construct_name d.dir)
      | _ -> ());
      Option.iter (check_stmt ~in_compute) body)
  | Sif (_, b1, b2) ->
      List.iter (check_stmt ~in_compute) b1;
      List.iter (check_stmt ~in_compute) b2
  | Swhile (_, b) -> List.iter (check_stmt ~in_compute) b
  | Sfor (_, _, _, b) -> List.iter (check_stmt ~in_compute) b
  | Sblock b -> List.iter (check_stmt ~in_compute) b
  | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
      ()

(** Validate every directive in [prog]; raises {!Invalid} on the first
    violation. *)
let check_program prog =
  List.iter
    (fun f -> List.iter (check_stmt ~in_compute:false) f.f_body)
    (functions prog)
