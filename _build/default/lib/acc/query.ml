(** Read-only helpers over OpenACC directives and clause lists. *)

open Minic.Ast

(** All data clauses of a directive, flattened to (kind, subarray) pairs. *)
let data_clauses d =
  List.concat_map
    (function
      | Cdata (kind, subs) -> List.map (fun s -> (kind, s)) subs
      | Cprivate _ | Cfirstprivate _ | Creduction _ | Cgang _ | Cworker _
      | Cvector _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Casync _ | Cif _ | Ccollapse _ | Cseq | Cindependent | Chost _
      | Cdevice _ | Cuse_device _ -> [])
    d.clauses

(** Variables named in any data clause of [d]. *)
let data_vars d = List.map (fun (_, s) -> s.sub_var) (data_clauses d)

let private_vars d =
  List.concat_map
    (function Cprivate vs -> vs | _ -> [])
    d.clauses

let firstprivate_vars d =
  List.concat_map (function Cfirstprivate vs -> vs | _ -> []) d.clauses

(** Reduction specs [(op, var)] declared on [d]. *)
let reductions d =
  List.concat_map
    (function
      | Creduction (op, vs) -> List.map (fun v -> (op, v)) vs
      | _ -> [])
    d.clauses

(** [Some None] for bare [async], [Some (Some e)] for [async(e)], [None] if
    the clause is absent. *)
let async d =
  List.find_map (function Casync e -> Some e | _ -> None) d.clauses

let if_clause d =
  List.find_map (function Cif e -> Some e | _ -> None) d.clauses

let has_seq d = List.exists (function Cseq -> true | _ -> false) d.clauses

let collapse d =
  List.find_map (function Ccollapse n -> Some n | _ -> None) d.clauses

let update_host_subs d =
  List.concat_map (function Chost subs -> subs | _ -> []) d.clauses

let update_device_subs d =
  List.concat_map (function Cdevice subs -> subs | _ -> []) d.clauses

(** Does the clause imply host-to-device transfer at region entry? *)
let kind_copies_in = function
  | Dk_copy | Dk_copyin | Dk_pcopy | Dk_pcopyin -> true
  | Dk_copyout | Dk_create | Dk_present | Dk_pcopyout | Dk_pcreate
  | Dk_deviceptr -> false

(** Does the clause imply device-to-host transfer at region exit? *)
let kind_copies_out = function
  | Dk_copy | Dk_copyout | Dk_pcopy | Dk_pcopyout -> true
  | Dk_copyin | Dk_create | Dk_present | Dk_pcopyin | Dk_pcreate
  | Dk_deviceptr -> false

(** Does the clause allocate device memory on entry (vs requiring presence)? *)
let kind_allocates = function
  | Dk_copy | Dk_copyin | Dk_copyout | Dk_create | Dk_pcopy | Dk_pcopyin
  | Dk_pcopyout | Dk_pcreate -> true
  | Dk_present | Dk_deviceptr -> false

(** Is this a compute construct (introduces GPU kernels)? *)
let is_compute = function
  | Acc_parallel | Acc_kernels | Acc_parallel_loop | Acc_kernels_loop -> true
  | Acc_data | Acc_host_data | Acc_loop | Acc_update | Acc_declare
  | Acc_wait _ | Acc_cache _ -> false

let is_data_region = function Acc_data -> true | _ -> false

(** Directives of a whole program, in pre-order, with the [sid] of the
    carrying [Sacc] statement. *)
let directives_of prog =
  let acc = ref [] in
  List.iter
    (fun f ->
      iter_stmts
        (fun s ->
          match s.skind with
          | Sacc (d, _) -> acc := (s.sid, f.f_name, d) :: !acc
          | _ -> ())
        f.f_body)
    (functions prog);
  List.rev !acc

(** Count compute regions in a program (an upper bound on kernels; [kernels]
    regions may outline several). *)
let count_compute_regions prog =
  List.length
    (List.filter (fun (_, _, d) -> is_compute d.dir) (directives_of prog))
