(** Kernel-verification configuration (§III-A, §III-C): OpenARC's
    [verificationOptions] — kernel selection (with complement), error
    margin, [minValueToCheck] — plus the application-knowledge hooks of
    §III-C (per-variable value bounds and debug assertions). *)

type assertion = {
  a_name : string;
  a_check : Gpusim.Buf.t -> bool;  (** applied to a GPU-produced array *)
  a_var : string;
}

type bound = {
  b_var : string;
  b_min : float;
  b_max : float;  (** differences within the bound are acceptable *)
}

type t = {
  kernels : string list;  (** empty = all kernels *)
  complement : bool;  (** verify every kernel {e except} those listed *)
  error_margin : float;  (** relative error tolerance *)
  min_value : float;  (** paper's [minValueToCheck] *)
  bounds : bound list;
  assertions : assertion list;
}

val default : t

(** Does the configuration select kernel [name]? *)
val selects : t -> string -> bool

val bound_for : t -> string -> bound option

(** Parse "verificationOptions=complement=0,kernels=main_kernel0" style
    strings (also accepts the spec without the prefix). *)
val of_string : string -> t

(** Read the configuration from the [OPENARC_VERIFICATION] environment
    variable; {!default} when unset. *)
val from_env : ?var:string -> unit -> t
