(** Kernel-verification configuration (§III-A, §III-C).

    Mirrors OpenARC's [verificationOptions]: the user selects which kernels
    to verify (optionally complementing the selection), bounds the accepted
    floating-point error, skips comparisons of tiny values
    ([minValueToCheck]), and can register application-knowledge hooks —
    per-variable value bounds that suppress false positives, and debug
    assertions run after each kernel (checksums etc.). *)

type assertion = {
  a_name : string;
  a_check : Gpusim.Buf.t -> bool;  (** applied to a GPU-produced array *)
  a_var : string;
}

type bound = {
  b_var : string;
  b_min : float;
  b_max : float;  (** differences within [b_min, b_max] are acceptable *)
}

type t = {
  kernels : string list;  (** empty = all kernels *)
  complement : bool;
      (** when true, verify every kernel {e except} those listed — the
          paper's [complement=0/1] option *)
  error_margin : float;  (** relative error tolerance of result comparison *)
  min_value : float;  (** paper's [minValueToCheck] *)
  bounds : bound list;  (** §III-C application-knowledge value bounds *)
  assertions : assertion list;  (** §III-C debug-assertion API *)
}

let default =
  { kernels = []; complement = false; error_margin = 1e-9; min_value = 0.0;
    bounds = []; assertions = [] }

(** Does the configuration select kernel [name]? *)
let selects t name =
  match (t.kernels, t.complement) with
  | [], false -> true
  | [], true -> true
  | ks, false -> List.mem name ks
  | ks, true -> not (List.mem name ks)

let bound_for t var = List.find_opt (fun b -> b.b_var = var) t.bounds

(** Parse a "verificationOptions=complement=0,kernels=main_kernel0"
    style string, as the paper's examples show. *)
let of_string s =
  let t = ref default in
  let s =
    match String.index_opt s '=' with
    | Some i when String.sub s 0 i = "verificationOptions" ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  (* Split on commas, but "kernels=" consumes the rest (kernel names are
     themselves comma-separated). *)
  let rec consume parts =
    match parts with
    | [] -> ()
    | p :: rest -> (
        match String.index_opt p '=' with
        | None -> consume rest
        | Some i ->
            let key = String.sub p 0 i in
            let value = String.sub p (i + 1) (String.length p - i - 1) in
            (match key with
            | "complement" -> t := { !t with complement = value <> "0" }
            | "kernels" ->
                t := { !t with kernels = (!t).kernels @ [ value ] };
                (* remaining bare parts are more kernel names *)
                List.iter
                  (fun k ->
                    if not (String.contains k '=') then
                      t := { !t with kernels = (!t).kernels @ [ k ] })
                  rest
            | "errorMargin" ->
                t := { !t with error_margin = float_of_string value }
            | "minValueToCheck" ->
                t := { !t with min_value = float_of_string value }
            | _ -> ());
            consume rest)
  in
  consume (String.split_on_char ',' s);
  !t

(** Read the configuration from the [OPENARC_VERIFICATION] environment
    variable, the paper's "or using environment variables" interface.
    Returns {!default} when unset. *)
let from_env ?(var = "OPENARC_VERIFICATION") () =
  match Sys.getenv_opt var with
  | None | Some "" -> default
  | Some s -> of_string s
