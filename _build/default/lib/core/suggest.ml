(** Suggestion engine: turn the runtime coherence reports of one profiled
    execution into the actionable suggestions the paper's tool offers its
    user (§III-B, §IV-C):

    (i) information on redundant memory transfers, (ii) error messages on
    missing/incorrect transfers, and (iii) warnings about
    may-redundant/may-missed transfers that the programmer must verify. *)

open Minic.Ast
open Codegen.Tprog

type action =
  | Remove_update_var of { sid : int; var : string; host : bool }
      (** delete [var] from the [update] directive at [sid] *)
  | Defer_update of { sid : int; var : string; host : bool }
      (** move the [update] of [var] at [sid] after its enclosing loop *)
  | Weaken_clause of { sid : int; var : string; side : [ `In | `Out ] }
      (** drop the redundant [side] of [var]'s data clause on the directive
          at [sid] (e.g. a redundant entry copy turns [copy] into [copyout]
          and [copyin] into [create]) *)
  | Add_data_region of { vars : (string * data_kind * bool) list }
      (** wrap the computation in a [data] region with these clauses; the
          boolean marks clauses backed by certain (not may-dead) evidence *)
  | Add_update of { before_sid : int; var : string; host : bool }
      (** insert an [update] before the statement at [before_sid] *)
  | Report_incorrect of { site : site; var : string }
      (** an executed transfer shipped outdated data — no automatic edit *)

type suggestion = {
  s_action : action;
  s_var : string;
  s_certain : bool;  (** false: based on may-dead facts, user must verify *)
  s_text : string;
}

let pp ppf s =
  Fmt.pf ppf "%s%s" s.s_text
    (if s.s_certain then "" else " [verify: based on may-dead analysis]")

(* Per-site aggregation of one run's reports. *)
type site_stats = {
  st_site : site;
  st_var : string;
  st_dir : [ `In | `Out ];
  st_execs : int;
  mutable st_redundant : int;
  mutable st_may_redundant : int;
  mutable st_incorrect : int;
  mutable st_first_iter_flagged : bool;
}

let site_kind label =
  if String.length label >= 6 && String.sub label 0 6 = "update" then `Update
  else if String.length label >= 4 && String.sub label 0 4 = "data" then `Data
  else if String.length label >= 6 && String.sub label 0 6 = "region" then
    `Region
  else if String.length label >= 7 && String.sub label 0 7 = "declare" then
    `Data
  else `Implicit

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(** Derive suggestions from a finished instrumented run. *)
let analyze (o : Accrt.Interp.outcome) =
  let reports = Accrt.Interp.reports o in
  let stats : (int, site_stats) Hashtbl.t = Hashtbl.create 32 in
  let stat_of site var dir =
    match Hashtbl.find_opt stats site.site_id with
    | Some s -> s
    | None ->
        let execs =
          Option.value ~default:0
            (Hashtbl.find_opt o.Accrt.Interp.site_execs site.site_id)
        in
        let s =
          { st_site = site; st_var = var; st_dir = dir; st_execs = execs;
            st_redundant = 0; st_may_redundant = 0; st_incorrect = 0;
            st_first_iter_flagged = false }
        in
        Hashtbl.add stats site.site_id s;
        s
  in
  (* Seed the aggregation with every executed transfer site so that sites
     with no reports still contribute their execution counts. *)
  Hashtbl.iter
    (fun _ ((site : site), var, dir) ->
      let dir = match dir with H2D -> `In | D2H -> `Out in
      ignore (stat_of site var dir))
    o.Accrt.Interp.sites;
  let missing = ref [] in
  List.iter
    (fun (r : Accrt.Coherence.report) ->
      match (r.r_kind, r.r_site) with
      | (Accrt.Coherence.Redundant | Accrt.Coherence.May_redundant
        | Accrt.Coherence.Incorrect), Some site ->
          let dir =
            if contains_sub ~sub:"copyout" site.site_label
               || contains_sub ~sub:".host" site.site_label
               || contains_sub ~sub:"pcopyout" site.site_label
            then `Out
            else `In
          in
          let st = stat_of site r.r_var dir in
          let first_iter =
            List.for_all (fun (_, i) -> i <= 1) r.r_loops
          in
          (match r.r_kind with
          | Accrt.Coherence.Redundant ->
              st.st_redundant <- st.st_redundant + 1;
              if first_iter then st.st_first_iter_flagged <- true
          | Accrt.Coherence.May_redundant ->
              st.st_may_redundant <- st.st_may_redundant + 1;
              if first_iter then st.st_first_iter_flagged <- true
          | _ -> st.st_incorrect <- st.st_incorrect + 1)
      | (Accrt.Coherence.Missing | Accrt.Coherence.May_missing), _ ->
          missing := r :: !missing
      | _ -> ())
    reports;

  let suggestions = ref [] in
  let push s = suggestions := s :: !suggestions in

  (* Implicit (default-scheme) sites are aggregated per variable into a
     data-region plan. *)
  let implicit : (string, int * int * int * int * bool) Hashtbl.t =
    Hashtbl.create 8
  in
  (* var -> (in_execs, in_flagged, out_execs, out_flagged, certain) *)
  Hashtbl.iter
    (fun _ st ->
      let flagged = st.st_redundant + st.st_may_redundant in
      match site_kind st.st_site.site_label with
      | `Implicit ->
          let ie, if_, oe, of_, certain =
            Option.value ~default:(0, 0, 0, 0, true)
              (Hashtbl.find_opt implicit st.st_var)
          in
          let certain = certain && st.st_may_redundant = 0 in
          let v =
            match st.st_dir with
            | `In -> (ie + st.st_execs, if_ + flagged, oe, of_, certain)
            | `Out -> (ie, if_, oe + st.st_execs, of_ + flagged, certain)
          in
          Hashtbl.replace implicit st.st_var v
      | `Update when flagged > 0 ->
          let host = st.st_dir = `Out in
          if flagged >= st.st_execs then
            push
              { s_action =
                  Remove_update_var
                    { sid = st.st_site.site_sid; var = st.st_var; host };
                s_var = st.st_var;
                s_certain = st.st_may_redundant = 0;
                s_text =
                  Fmt.str
                    "all %d executions of %s are redundant: remove %s from \
                     the update directive"
                    st.st_execs st.st_site.site_label st.st_var }
          else if
            st.st_execs - flagged = 1 && not st.st_first_iter_flagged
            && st.st_dir = `In
          then
            (* Only the first upload mattered: hoist out of the loop. *)
            push
              { s_action =
                  Defer_update
                    { sid = st.st_site.site_sid; var = st.st_var; host };
                s_var = st.st_var;
                s_certain = st.st_may_redundant = 0;
                s_text =
                  Fmt.str
                    "%s of %s is redundant after the first iteration: move \
                     it out of the enclosing loop"
                    st.st_site.site_label st.st_var }
          else if st.st_execs - flagged = 1 && st.st_dir = `Out then
            (* All but the last download redundant: defer past the loop. *)
            push
              { s_action =
                  Defer_update
                    { sid = st.st_site.site_sid; var = st.st_var; host };
                s_var = st.st_var;
                s_certain = st.st_may_redundant = 0;
                s_text =
                  Fmt.str
                    "%s of %s is redundant in all but one iteration: defer \
                     it until after the enclosing loop"
                    st.st_site.site_label st.st_var }
      | (`Data | `Region) when flagged >= st.st_execs && st.st_execs > 0 ->
          (* Redundant region-entry/exit copy: weaken the data clause. *)
          push
            { s_action =
                Weaken_clause
                  { sid = st.st_site.site_sid; var = st.st_var;
                    side = st.st_dir };
              s_var = st.st_var;
              s_certain = st.st_may_redundant = 0;
              s_text =
                Fmt.str
                  "the %s copy of %s at region boundary is redundant: weaken \
                   its data clause"
                  (match st.st_dir with `In -> "entry" | `Out -> "exit")
                  st.st_var }
      | `Update | `Data | `Region -> ();
      if st.st_incorrect > 0 then
        push
          { s_action = Report_incorrect { site = st.st_site; var = st.st_var };
            s_var = st.st_var;
            s_certain = true;
            s_text =
              Fmt.str "%s copies an outdated value of %s — an earlier \
                       transfer is missing or was wrongly removed"
                st.st_site.site_label st.st_var })
    stats;

  (* Data-region plan from the implicit per-kernel copies. *)
  let plan =
    Hashtbl.fold
      (fun var (ie, if_, oe, of_, certain) acc ->
        if if_ = 0 && of_ = 0 then acc
        else
          let kind =
            match (if_ >= ie, of_ >= oe) with
            | true, true -> Dk_create
            | false, true -> Dk_copyin
            | true, false -> Dk_copyout
            | false, false -> Dk_copy
          in
          ((var, kind), certain) :: acc)
      implicit []
  in
  if plan <> [] then begin
    let vars = List.map (fun ((v, k), certain) -> (v, k, certain)) plan in
    let certain = List.for_all (fun (_, _, c) -> c) vars in
    push
      { s_action = Add_data_region { vars };
        s_var = String.concat "," (List.map (fun (v, _, _) -> v) vars);
        s_certain = certain;
        s_text =
          Fmt.str
            "the default per-kernel copies of {%s} are largely redundant: \
             manage them with an enclosing data region (%s)"
            (String.concat ", " (List.map (fun (v, _, _) -> v) vars))
            (String.concat ", "
               (List.map
                  (fun (v, k, c) ->
                    Fmt.str "%s(%s)%s" (Minic.Pretty.data_kind_str k) v
                      (if c then "" else "?"))
                  vars)) }
  end;

  (* Missing transfers: one Add_update per (statement, var, direction). *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Accrt.Coherence.report) ->
      match r.Accrt.Coherence.r_dev with
      | Some dev ->
          let host = dev = Cpu in
          let key = (r.Accrt.Coherence.r_sid, r.Accrt.Coherence.r_var, host) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            push
              { s_action =
                  Add_update
                    { before_sid = r.Accrt.Coherence.r_sid;
                      var = r.Accrt.Coherence.r_var; host };
                s_var = r.Accrt.Coherence.r_var;
                s_certain = r.Accrt.Coherence.r_kind = Accrt.Coherence.Missing;
                s_text =
                  Fmt.str
                    "%s copy of %s is %s before this access: insert 'update \
                     %s(%s)'"
                    (device_name dev) r.Accrt.Coherence.r_var
                    (if r.Accrt.Coherence.r_kind = Accrt.Coherence.Missing
                     then "stale" else "possibly stale")
                    (if host then "host" else "device")
                    r.Accrt.Coherence.r_var }
          end
      | None -> ())
    !missing;

  List.rev !suggestions

(** Suggestions that translate into edits (errors-only reports excluded). *)
let actionable suggestions =
  List.filter
    (fun s -> match s.s_action with Report_incorrect _ -> false | _ -> true)
    suggestions
