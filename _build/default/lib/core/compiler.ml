(** Facade over the whole OpenARC pipeline: parse → validate → type check →
    translate → (optionally instrument) → run.  This is the public
    entry point the examples and the CLI use. *)

type compiled = {
  program : Minic.Ast.program;
  env : Minic.Typecheck.env;
  tprog : Codegen.Tprog.t;  (** uninstrumented translation *)
}

(** Compile a source string end to end. *)
let compile ?(opts = Codegen.Options.default) ?file src =
  let program = Minic.Parser.parse_string ?file src in
  Acc.Validate.check_program program;
  let env = Minic.Typecheck.check program in
  let tprog = Codegen.Translate.translate ~opts env program in
  { program; env; tprog }

let compile_file ?opts path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile ?opts ~file:path src

let compile_program ?(opts = Codegen.Options.default) program =
  Acc.Validate.check_program program;
  let env = Minic.Typecheck.check program in
  let tprog = Codegen.Translate.translate ~opts env program in
  { program; env; tprog }

(** Execute the translated program on the simulated device. *)
let run ?seed ?cm c = Accrt.Interp.run ~coherence:false ?seed ?cm c.tprog

(** Execute with coherence instrumentation and collect transfer reports. *)
let run_instrumented ?mode ?seed ?cm c =
  let tp = Codegen.Checkgen.instrument ?mode c.tprog in
  Accrt.Interp.run ~coherence:true ?seed ?cm tp

(** Sequential reference execution of the unmodified source. *)
let run_reference c = Accrt.Eval.run_reference c.program

(** Kernel verification (§III-A) of the compiled program. *)
let verify ?opts ?config c =
  Kernel_verify.verify ?opts ?config ~env:(Some c.env) c.program

(** Interactive memory-transfer optimization (§III-B / Figure 2). *)
let optimize ?policy ?max_iterations ~outputs c =
  Session.optimize ?policy ?max_iterations ~outputs c.program
