(** The interactive memory-transfer optimization loop of Figure 2, driven
    by a scripted programmer: profile with coherence instrumentation, apply
    the tool's suggestions as directive edits, repeat until a profiled run
    is clean.  Wrong (may-dead-based) suggestions are detected one iteration
    later, repaired, and counted — Table III's "incorrect iterations". *)

type policy =
  | Follow_all  (** apply certain and may-based suggestions (paper's user) *)
  | Conservative  (** apply only certain suggestions *)

type result = {
  final : Minic.Ast.program;  (** program after optimization *)
  iterations : int;  (** total verification iterations (Table III) *)
  incorrect_iterations : int;
  converged : bool;
  log : string list;  (** per-iteration summaries *)
}

(** Do a candidate run's designated outputs match the sequential reference
    (within a small tolerance absorbing tree-order reductions)? *)
val outputs_match :
  outputs:string list -> reference:Accrt.Value.t -> Accrt.Interp.outcome ->
  bool

(** Apply one suggestion as a source edit. *)
val apply_action : Minic.Ast.program -> Suggest.action -> Minic.Ast.program

(** Run the loop on [prog]; [outputs] are the names checked against the
    sequential reference after each edit round (the §IV-C safety net). *)
val optimize :
  ?policy:policy -> ?max_iterations:int -> outputs:string list ->
  Minic.Ast.program -> result

(** Dynamic transfer statistics of a program: (transfer count, bytes). *)
val transfer_stats : Minic.Ast.program -> int * int
