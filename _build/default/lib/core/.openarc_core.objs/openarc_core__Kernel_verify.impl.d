lib/core/kernel_verify.ml: Acc Accrt Analysis Array Codegen Float Fmt Gpusim Hashtbl List Minic Option Vconfig
