lib/core/vconfig.ml: Gpusim List String Sys
