lib/core/compiler.mli: Accrt Codegen Gpusim Kernel_verify Minic Session Vconfig
