lib/core/demotion.ml: Acc Analysis Codegen List Minic
