lib/core/kernel_verify.mli: Codegen Format Gpusim Minic Vconfig
