lib/core/suggest.mli: Accrt Codegen Format Minic
