lib/core/demotion.mli: Codegen Minic
