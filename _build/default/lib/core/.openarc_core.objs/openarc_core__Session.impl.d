lib/core/session.ml: Acc Accrt Codegen Float Fmt Gpusim Hashtbl List Minic Printexc Suggest
