lib/core/vconfig.mli: Gpusim
