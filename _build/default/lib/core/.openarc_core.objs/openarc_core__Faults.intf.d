lib/core/faults.mli: Minic Vconfig
