lib/core/suggest.ml: Accrt Codegen Fmt Hashtbl List Minic Option String
