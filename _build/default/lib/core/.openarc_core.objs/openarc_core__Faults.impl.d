lib/core/faults.ml: Array Codegen Kernel_verify List Minic
