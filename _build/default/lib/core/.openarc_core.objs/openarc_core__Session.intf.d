lib/core/session.mli: Accrt Minic Suggest
