lib/core/compiler.ml: Acc Accrt Codegen Kernel_verify Minic Session
