(** Memory-transfer demotion (§III-A), as a source-to-source pass.

    Produces the Listing-2 form of the input program for a chosen target
    kernel: data clauses of enclosing [data] regions are demoted onto the
    target compute region (read-only data in [copyin], written data in
    [copy]), the region goes asynchronous with a [wait] inserted before the
    point where result comparison happens, and every directive unrelated to
    the target is stripped so all other regions execute sequentially on the
    CPU.

    The execution engine of {!Kernel_verify} implements the same semantics
    directly; this pass exists so that a user (and the CLI's
    [--show-transformed]) can inspect the transformed program, as OpenARC
    displays it. *)

open Minic.Ast
open Codegen.Tprog

let queue = 1

(** [apply tp kernel_name] returns the demoted source program for the kernel
    named [kernel_name] of translated program [tp]. *)
let apply (tp : Codegen.Tprog.t) kernel_name =
  let k =
    match Codegen.Tprog.find_kernel tp kernel_name with
    | Some k -> k
    | None -> invalid_arg ("Demotion.apply: unknown kernel " ^ kernel_name)
  in
  let read_only =
    Analysis.Varset.diff k.k_arrays_read k.k_arrays_written
  in
  let demoted_clauses =
    let copyin =
      List.map Acc.Edit.sub (Analysis.Varset.elements read_only)
    in
    let copy =
      List.map Acc.Edit.sub (Analysis.Varset.elements k.k_arrays_written)
    in
    (if copy = [] then [] else [ Cdata (Dk_copy, copy) ])
    @ (if copyin = [] then [] else [ Cdata (Dk_copyin, copyin) ])
    @ [ Casync (Some (Eint queue)) ]
  in
  let strip_data_clauses clauses =
    List.filter (function Cdata _ -> false | _ -> true) clauses
  in
  Acc.Edit.expand_program
    (fun s ->
      match s.skind with
      | Sacc (d, body) when s.sid = k.k_sid && Acc.Query.is_compute d.dir ->
          (* The target region: demote clauses, go async, wait + compare. *)
          let d' =
            { d with clauses = strip_data_clauses d.clauses @ demoted_clauses }
          in
          let wait =
            mk_stmt ~loc:d.dloc
              (Sacc ({ dir = Acc_wait (Some (Eint queue)); clauses = [];
                       dloc = d.dloc }, None))
          in
          [ { s with skind = Sacc (d', body) }; wait ]
      | Sacc (d, body) when Acc.Query.is_compute d.dir ->
          (* Unrelated compute region: strip, run sequentially on the CPU. *)
          (match body with Some b -> [ b ] | None -> [])
      | Sacc ({ dir = Acc_data | Acc_host_data; _ }, body) ->
          (* Enclosing data regions disappear (their clauses were demoted). *)
          (match body with Some b -> [ b ] | None -> [])
      | Sacc ({ dir = Acc_update | Acc_wait _ | Acc_declare | Acc_cache _;
                _ }, _) when s.sid <> k.k_sid ->
          []
      | _ -> [ s ])
    tp.source

(** Render the demoted program, as the CLI shows it to the user. *)
let to_string tp kernel_name =
  Minic.Pretty.program_to_string (apply tp kernel_name)
