(** Fault injection for the Table II experiment.

    The paper removes the [private]/[reduction] clauses from the directive
    programs and configures the compiler to disable automatic privatization
    and reduction recognition, then checks which of the resulting race
    conditions kernel verification catches. *)

open Minic.Ast

(** Strip every [private], [firstprivate] and [reduction] clause. *)
let strip_parallelism_clauses prog =
  map_program
    (fun s ->
      match s.skind with
      | Sacc (d, body) ->
          let clauses =
            List.filter
              (function
                | Cprivate _ | Cfirstprivate _ | Creduction _ -> false
                | _ -> true)
              d.clauses
          in
          { s with skind = Sacc ({ d with clauses }, body) }
      | _ -> s)
    prog

type census = {
  kernels : int;
  with_private : int;  (** Table II: kernels containing private data *)
  with_reduction : int;  (** Table II: kernels containing reduction *)
  active_errors : int;  (** kernels whose race corrupts outputs *)
  latent_errors : int;  (** raced kernels whose outputs stay correct *)
  active_detected : int;  (** active errors kernel verification caught *)
  latent_detected : int;  (** latent errors it caught (expected: 0) *)
}

let empty =
  { kernels = 0; with_private = 0; with_reduction = 0; active_errors = 0;
    latent_errors = 0; active_detected = 0; latent_detected = 0 }

let add a b =
  { kernels = a.kernels + b.kernels;
    with_private = a.with_private + b.with_private;
    with_reduction = a.with_reduction + b.with_reduction;
    active_errors = a.active_errors + b.active_errors;
    latent_errors = a.latent_errors + b.latent_errors;
    active_detected = a.active_detected + b.active_detected;
    latent_detected = a.latent_detected + b.latent_detected }

(** Run the Table II experiment on one program: strip clauses, disable
    recognition, verify all kernels, and classify the injected races. *)
let census_of_program ?config prog =
  let stripped = strip_parallelism_clauses prog in
  let opts = Codegen.Options.fault_injection in
  (* Census (private/reduction kernels) comes from the *normal* compile. *)
  let env = Minic.Typecheck.check prog in
  let tp_normal = Codegen.Translate.translate env prog in
  let env_s = Minic.Typecheck.check stripped in
  let tp_faulty = Codegen.Translate.translate ~opts env_s stripped in
  let v = Kernel_verify.verify ~opts ?config stripped in
  let detected =
    List.filter_map
      (fun r ->
        if Kernel_verify.kernel_ok r then None
        else Some r.Kernel_verify.kr_kernel.Codegen.Tprog.k_name)
      v.Kernel_verify.reports
  in
  let c = ref empty in
  Array.iteri
    (fun i k ->
      let faulty = tp_faulty.Codegen.Tprog.kernels.(i) in
      let raced = Codegen.Tprog.raced_scalars faulty in
      let has_active =
        List.exists (fun (_, kind) -> kind = Codegen.Tprog.Race_active) raced
      in
      let has_latent =
        List.exists (fun (_, kind) -> kind = Codegen.Tprog.Race_latent) raced
      in
      let was_detected = List.mem faulty.Codegen.Tprog.k_name detected in
      c :=
        add !c
          { kernels = 1;
            with_private =
              (if k.Codegen.Tprog.k_has_private_data then 1 else 0);
            with_reduction =
              (if k.Codegen.Tprog.k_has_reduction then 1 else 0);
            active_errors = (if has_active then 1 else 0);
            latent_errors = (if has_latent && not has_active then 1 else 0);
            active_detected = (if has_active && was_detected then 1 else 0);
            latent_detected =
              (if has_latent && (not has_active) && was_detected then 1
               else 0) })
    tp_normal.Codegen.Tprog.kernels;
  !c
