(** Memory-transfer demotion (§III-A) as a source-to-source pass: produces
    the paper's Listing-2 form of a program for a chosen target kernel —
    data clauses demoted onto the target region (read-only data in
    [copyin], written data in [copy]), the region made asynchronous with a
    [wait] before the comparison point, every unrelated directive stripped
    so other regions run sequentially. *)

(** @raise Invalid_argument on an unknown kernel name. *)
val apply : Codegen.Tprog.t -> string -> Minic.Ast.program

val to_string : Codegen.Tprog.t -> string -> string
