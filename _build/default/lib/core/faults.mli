(** Fault injection for the Table II experiment: strip private/reduction
    clauses, disable automatic recognition, verify, and classify the
    injected races. *)

val strip_parallelism_clauses : Minic.Ast.program -> Minic.Ast.program

type census = {
  kernels : int;
  with_private : int;  (** Table II: kernels containing private data *)
  with_reduction : int;
  active_errors : int;  (** kernels whose race corrupts outputs *)
  latent_errors : int;  (** raced kernels whose outputs stay correct *)
  active_detected : int;
  latent_detected : int;  (** expected: 0 *)
}

val empty : census
val add : census -> census -> census

(** Run the Table II experiment on one program. *)
val census_of_program : ?config:Vconfig.t -> Minic.Ast.program -> census
