(** The interactive memory-transfer optimization loop of Figure 2.

    A *scripted programmer* stands in for the human user: at each iteration
    the program is compiled with coherence instrumentation, profiled, the
    tool's suggestions are applied as directive edits, and the loop repeats
    until a profiled run is clean.  As in the paper (§IV-C), suggestions
    based on may-dead facts can be wrong when the compiler could not resolve
    pointer aliasing; the next iteration's verification detects the damage
    (missing/incorrect-transfer errors, or an output mismatch against the
    sequential reference), the edit is reverted and that site is left alone —
    an "incorrect iteration" in Table III's terms. *)

open Minic.Ast

type policy =
  | Follow_all  (** apply certain and may-based suggestions (paper's user) *)
  | Conservative  (** apply only certain suggestions *)

type result = {
  final : program;  (** program after optimization *)
  iterations : int;  (** total verification iterations (Table III) *)
  incorrect_iterations : int;  (** iterations spoiled by wrong suggestions *)
  converged : bool;
  log : string list;  (** per-iteration summaries *)
}

(* Compare designated outputs of a candidate run against the sequential
   reference; small relative tolerance absorbs the GPU's tree-order
   reductions. *)
let outputs_match ~outputs ~reference (o : Accrt.Interp.outcome) =
  let margin = 1e-6 in
  List.for_all
    (fun name ->
      match
        (Accrt.Value.lookup reference name,
         Accrt.Value.lookup o.Accrt.Interp.ctx.Accrt.Eval.env name)
      with
      | Some (Accrt.Value.Array { buf = Some b1; _ }),
        Some (Accrt.Value.Array { buf = Some b2; _ }) ->
          let _, bad = Gpusim.Buf.compare ~margin ~reference:b1 b2 in
          bad = 0
      | Some (Accrt.Value.Scalar c1), Some (Accrt.Value.Scalar c2) ->
          let x = Accrt.Value.to_float c1.Accrt.Value.v in
          let y = Accrt.Value.to_float c2.Accrt.Value.v in
          Float.abs (x -. y) <= margin *. Float.max 1.0 (Float.abs x)
      | _ -> false)
    outputs

(* Source span (first/last sid) covering all compute regions: the statements
   a new data region must enclose. *)
let compute_span prog =
  let sids =
    List.filter_map
      (fun (sid, _, d) -> if Acc.Query.is_compute d.dir then Some sid else None)
      (Acc.Query.directives_of prog)
  in
  match sids with
  | [] -> None
  | s :: rest -> Some (List.fold_left min s rest, List.fold_left max s rest)

let rec apply_action prog (a : Suggest.action) =
  match a with
  | Suggest.Remove_update_var { sid; var; host } ->
      let prog =
        Acc.Edit.map_directive prog ~sid ~f:(fun d ->
            { d with clauses = Acc.Edit.remove_update_var d.clauses ~host var })
      in
      (* Drop the directive entirely if it has no clauses left. *)
      let empty = ref false in
      List.iter
        (fun (s, _, d) ->
          if s = sid && d.dir = Acc_update && d.clauses = [] then empty := true)
        (Acc.Query.directives_of prog);
      if !empty then Acc.Edit.remove_stmt prog ~sid else prog
  | Suggest.Defer_update { sid; var; host } ->
      let loop = Acc.Edit.enclosing_loop prog ~sid in
      let prog' =
        apply_action prog (Suggest.Remove_update_var { sid; var; host })
      in
      (match loop with
      | Some l ->
          let upd = Acc.Edit.mk_update ~host [ var ] in
          if host then Acc.Edit.insert_after prog' ~sid:l.sid [ upd ]
          else Acc.Edit.insert_before prog' ~sid:l.sid [ upd ]
      | None -> prog')
  | Suggest.Weaken_clause { sid; var; side } ->
      Acc.Edit.weaken_clause prog ~sid ~var ~side
  | Suggest.Add_data_region { vars } ->
      if Acc.Edit.has_data_region prog then prog
      else (
        match compute_span prog with
        | None -> prog
        | Some (first_sid, last_sid) ->
            Acc.Edit.wrap_span prog ~first_sid ~last_sid
              ~directive:
                (Acc.Edit.mk_data_directive
                   (List.map (fun (v, k, _) -> (v, k)) vars)))
  | Suggest.Add_update { before_sid; var; host } -> (
      if before_sid < 0 then prog
      else
        (* If the stale access lies outside every data region that manages
           [var], an update there would reference freed device memory; the
           right edit is to strengthen the region's clause instead. *)
        match Acc.Edit.regions_with_var prog ~var with
        | [] ->
            Acc.Edit.insert_before prog ~sid:before_sid
              [ Acc.Edit.mk_update ~host [ var ] ]
        | regions ->
            if List.exists (fun (_, _, sids) -> List.mem before_sid sids)
                 regions
            then
              Acc.Edit.insert_before prog ~sid:before_sid
                [ Acc.Edit.mk_update ~host [ var ] ]
            else
              let sid, _, _ = List.hd regions in
              Acc.Edit.strengthen_clause prog ~sid ~var
                ~side:(if host then `Out else `In))
  | Suggest.Report_incorrect _ -> prog

(** Run the interactive optimization loop on [prog].

    [outputs] are the names checked against the sequential reference after
    each round of edits (the kernel-verification safety net of §IV-C).

    Wrong suggestions are detected one iteration late, exactly as in the
    paper: a may-dead-based removal of a transfer the program actually
    needed surfaces as a missing/incorrect-transfer error (and an output
    mismatch) in the next profiled run; the scripted programmer re-inserts
    the transfer, freezes further removal suggestions for that variable, and
    the detour is recorded as an incorrect iteration. *)
let optimize ?(policy = Follow_all) ?(max_iterations = 12) ~outputs prog =
  (* Work on the inlined program so report sites and directive edits refer
     to the same statements. *)
  let prog =
    if Codegen.Inline.needs_expansion prog then Codegen.Inline.expand prog
    else prog
  in
  Acc.Validate.check_program prog;
  ignore (Minic.Typecheck.check prog);
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  (* vars whose (uncertain) transfer removal was applied, per direction *)
  let removed : (string * bool, unit) Hashtbl.t = Hashtbl.create 8 in
  let frozen_vars : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let log = ref [] in
  let say fmt = Fmt.kstr (fun m -> log := m :: !log) fmt in

  let removal_of (s : Suggest.suggestion) =
    match s.Suggest.s_action with
    | Suggest.Remove_update_var { var; host; _ }
    | Suggest.Defer_update { var; host; _ } -> Some (var, host)
    | Suggest.Weaken_clause { var; side; _ } -> Some (var, side = `Out)
    | Suggest.Add_data_region _ | Suggest.Add_update _
    | Suggest.Report_incorrect _ -> None
  in
  (* Region clauses backed only by may-dead evidence suppress transfers
     too: record them so a later missing-transfer error is attributed. *)
  let region_removals (s : Suggest.suggestion) =
    match s.Suggest.s_action with
    | Suggest.Add_data_region { vars } ->
        List.concat_map
          (fun (v, kind, certain) ->
            if certain then []
            else
              (match kind with
              | Minic.Ast.Dk_create -> [ (v, true); (v, false) ]
              | Minic.Ast.Dk_copyin -> [ (v, true) ]
              | Minic.Ast.Dk_copyout -> [ (v, false) ]
              | _ -> []))
          vars
    | _ -> []
  in

  let rec loop prog history iterations incorrect =
    if iterations >= max_iterations then
      { final = prog; iterations; incorrect_iterations = incorrect;
        converged = false; log = List.rev !log }
    else begin
      let iterations = iterations + 1 in
      let outcome_or_err =
        try
          let env = Minic.Typecheck.check prog in
          let tp = Codegen.Translate.translate env prog in
          let tp = Codegen.Checkgen.instrument tp in
          Ok (Accrt.Interp.run ~coherence:true tp)
        with e -> Error (Printexc.to_string e)
      in
      match outcome_or_err with
      | Error msg -> (
          say "iteration %d: program failed to run (%s)" iterations msg;
          match history with
          | (prev, applied) :: rest ->
              say "iteration %d: reverting previous edits" iterations;
              List.iter
                (fun sg ->
                  match removal_of sg with
                  | Some (v, _) when not sg.Suggest.s_certain ->
                      Hashtbl.replace frozen_vars v ()
                  | _ -> ())
                applied;
              loop prev rest iterations (incorrect + 1)
          | [] ->
              { final = prog; iterations; incorrect_iterations = incorrect;
                converged = false; log = List.rev !log })
      | Ok outcome ->
          let correct = outputs_match ~outputs ~reference outcome in
          let suggestions =
            Suggest.actionable (Suggest.analyze outcome)
            |> List.filter (fun (sg : Suggest.suggestion) ->
                   (match policy with
                   | Follow_all -> true
                   | Conservative -> sg.Suggest.s_certain)
                   &&
                   match removal_of sg with
                   | Some (v, _) ->
                       sg.Suggest.s_certain
                       || not (Hashtbl.mem frozen_vars v)
                   | None -> true)
          in
          (* An Add_update for a variable whose transfer we removed earlier
             means that removal was a wrong suggestion. *)
          let readds =
            List.filter
              (fun (sg : Suggest.suggestion) ->
                match sg.Suggest.s_action with
                | Suggest.Add_update { var; host; _ } ->
                    Hashtbl.mem removed (var, host)
                    || Hashtbl.mem removed (var, not host)
                | _ -> false)
              suggestions
          in
          let incorrect =
            List.fold_left
              (fun acc (sg : Suggest.suggestion) ->
                let v = sg.Suggest.s_var in
                if Hashtbl.mem frozen_vars v then acc
                else begin
                  Hashtbl.replace frozen_vars v ();
                  say
                    "iteration %d: earlier removal of %s's transfer was a \
                     wrong suggestion (verification reported errors); \
                     restoring it"
                    iterations v;
                  acc + 1
                end)
              incorrect readds
          in
          if suggestions = [] then begin
            if not correct then begin
              (* Broken with nothing left to apply: fall back to revert. *)
              match history with
              | (prev, _) :: rest ->
                  say
                    "iteration %d: outputs diverge from the reference; \
                     reverting previous edits"
                    iterations;
                  loop prev rest iterations (incorrect + 1)
              | [] ->
                  { final = prog; iterations;
                    incorrect_iterations = incorrect; converged = false;
                    log = List.rev !log }
            end
            else begin
              say "iteration %d: no further suggestions — converged"
                iterations;
              { final = prog; iterations; incorrect_iterations = incorrect;
                converged = true; log = List.rev !log }
            end
          end
          else begin
            List.iter
              (fun sg -> say "iteration %d: %a" iterations Suggest.pp sg)
              suggestions;
            List.iter
              (fun sg ->
                (match removal_of sg with
                | Some key when not sg.Suggest.s_certain ->
                    Hashtbl.replace removed key ()
                | _ -> ());
                List.iter
                  (fun key -> Hashtbl.replace removed key ())
                  (region_removals sg))
              suggestions;
            let prog' =
              List.fold_left
                (fun p (sg : Suggest.suggestion) ->
                  apply_action p sg.Suggest.s_action)
                prog suggestions
            in
            loop prog' ((prog, suggestions) :: history) iterations incorrect
          end
    end
  in
  loop prog [] 0 0

(** Dynamic transfer statistics of a program: (transfer count, bytes moved).
    Used to quantify leftover (uncaught) redundancy against the manually
    optimized version. *)
let transfer_stats prog =
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let o = Accrt.Interp.run ~coherence:false tp in
  let m = Accrt.Interp.metrics o in
  (m.Gpusim.Metrics.transfers_h2d + m.Gpusim.Metrics.transfers_d2h,
   Gpusim.Metrics.total_bytes m)
