(** The paper's Algorithm 1: may-dead / must-dead / may-live analysis of a
    device's copies of the tracked arrays (see the implementation header
    for the KILL-set deviation and the aliasing-induced weakening). *)

open Analysis

type dstatus = Live | May_dead | Must_dead

type t = {
  live_out : Varset.t array;  (** paper's OUT_Live per CFG node *)
  dead_out : Varset.t array;  (** paper's OUT_Dead per CFG node *)
  weakened : Varset.t;  (** arrays whose must-dead facts are unreliable *)
}

val compute : Tprog.t -> Tcfg.t -> Tcfg.sets -> Tprog.device -> t

(** Status of device copy [v] at the point {e after} node [n]. *)
val status_after : t -> int -> string -> dstatus

val status_name : dstatus -> string
