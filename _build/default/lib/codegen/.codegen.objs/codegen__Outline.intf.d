lib/codegen/outline.mli: Analysis Minic Options Tprog
