lib/codegen/options.mli:
