lib/codegen/lastwrite.ml: Analysis Array Dataflow Graph Tcfg Tprog Varset
