lib/codegen/firstaccess.ml: Analysis Array Dataflow Graph Minic Tcfg Tprog Varset
