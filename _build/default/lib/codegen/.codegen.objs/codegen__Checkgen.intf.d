lib/codegen/checkgen.mli: Tprog
