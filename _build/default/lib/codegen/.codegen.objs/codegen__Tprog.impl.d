lib/codegen/tprog.ml: Alias Analysis Array Ast List Loc Minic Typecheck Varset
