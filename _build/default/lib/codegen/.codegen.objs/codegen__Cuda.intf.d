lib/codegen/cuda.mli: Format Tprog
