lib/codegen/inline.ml: Acc Fmt List Loc Minic Option
