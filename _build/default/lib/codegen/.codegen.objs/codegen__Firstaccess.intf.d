lib/codegen/firstaccess.mli: Analysis Tcfg Tprog Varset
