lib/codegen/options.ml:
