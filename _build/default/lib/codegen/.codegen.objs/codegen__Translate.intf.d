lib/codegen/translate.mli: Minic Options Tprog
