lib/codegen/inline.mli: Minic
