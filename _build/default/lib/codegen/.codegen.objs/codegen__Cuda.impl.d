lib/codegen/cuda.ml: Analysis Array Ast Fmt List Minic Pretty String Tprog Typecheck
