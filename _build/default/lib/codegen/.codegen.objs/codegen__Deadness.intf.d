lib/codegen/deadness.mli: Analysis Tcfg Tprog Varset
