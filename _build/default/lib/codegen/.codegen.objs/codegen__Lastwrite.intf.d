lib/codegen/lastwrite.mli: Analysis Tcfg Tprog Varset
