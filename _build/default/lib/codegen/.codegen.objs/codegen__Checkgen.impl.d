lib/codegen/checkgen.ml: Analysis Array Deadness Firstaccess Graph Hashtbl Lastwrite List Minic Option Tcfg Tprog Varset
