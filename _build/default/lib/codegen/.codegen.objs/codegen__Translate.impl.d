lib/codegen/translate.ml: Acc Alias Analysis Array Ast Fmt Inline List Minic Option Options Outline Parser Pretty Tprog Typecheck Varset
