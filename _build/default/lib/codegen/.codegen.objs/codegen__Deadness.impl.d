lib/codegen/deadness.ml: Alias Analysis Array Dataflow Graph Minic Tcfg Tprog Varset
