lib/codegen/tprog.mli: Alias Analysis Ast Loc Minic Typecheck Varset
