lib/codegen/tcfg.ml: Alias Analysis Array Ast Graph Hashtbl List Minic Option Regions Tprog Varset
