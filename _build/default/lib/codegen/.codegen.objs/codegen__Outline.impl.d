lib/codegen/outline.ml: Acc Analysis Fmt Hashtbl List Loc Minic Option Options Regions Tprog Varset
