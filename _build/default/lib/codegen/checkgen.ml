(** Coherence-check insertion (§III-B).

    Decorates a translated program with the runtime calls of the paper's
    memory-transfer verification scheme:

    - [check_read]/[check_write] for GPU data at kernel boundaries only;
    - [check_read]/[check_write] for CPU data at first-access points since
      program entry or the latest kernel call;
    - [reset_status] after last host writes whose GPU copy is (may-)dead, and
      after kernel launches whose written arrays are (may-)dead on the CPU;
    - loop hoisting: CPU checks move out of kernel-free loops; GPU checks
      move out of loops that neither touch the array on the host nor
      upload it — the optimization that lets the JACOBI deferred-copy
      redundancy be detected (Listing 3 of the paper).

    [Naive] mode instead instruments every tracked access — the baseline of
    the check-placement ablation. *)

open Analysis
open Tprog

type mode = Optimized | Naive

type loop_info = {
  li_launch : bool;
  li_host : Varset.t;  (** arrays accessed by host code inside the loop *)
  li_h2d : Varset.t;  (** arrays uploaded inside the loop *)
}

let empty_li = { li_launch = false; li_host = Varset.empty; li_h2d = Varset.empty }

let union_li a b =
  { li_launch = a.li_launch || b.li_launch;
    li_host = Varset.union a.li_host b.li_host;
    li_h2d = Varset.union a.li_h2d b.li_h2d }

(* Per-loop summaries, keyed by the loop tstmt's tid. *)
let loop_infos (tp : Tprog.t) =
  let tbl = Hashtbl.create 32 in
  let alias = tp.alias in
  let rec summarize stmts =
    List.fold_left (fun acc s -> union_li acc (of_stmt s)) empty_li stmts
  and of_stmt s =
    match s.tkind with
    | Thost st ->
        let r, w = Tcfg.stmt_arrays ~alias ~through_aliases:true st in
        { empty_li with li_host = Varset.union r w }
    | Tlaunch _ -> { empty_li with li_launch = true }
    | Txfer x when x.x_dir = H2D ->
        { empty_li with li_h2d = Varset.singleton x.x_var }
    | Txfer _ | Talloc _ | Tfree _ | Twait _ | Tcheck _ -> empty_li
    | Tif (c, b1, b2) ->
        let r, w =
          Tcfg.stmt_arrays ~alias ~through_aliases:true
            (Minic.Ast.mk_stmt (Minic.Ast.Sexpr c))
        in
        union_li
          { empty_li with li_host = Varset.union r w }
          (union_li (summarize b1) (summarize b2))
    | Tblock b -> summarize b
    | Twhile (c, b) ->
        let r, w =
          Tcfg.stmt_arrays ~alias ~through_aliases:true
            (Minic.Ast.mk_stmt (Minic.Ast.Sexpr c))
        in
        let li = union_li { empty_li with li_host = Varset.union r w }
                   (summarize b) in
        Hashtbl.replace tbl s.tid li;
        li
    | Tfor (init, cond, step, b) ->
        let frag st_opt =
          match st_opt with
          | None -> empty_li
          | Some st ->
              let r, w = Tcfg.stmt_arrays ~alias ~through_aliases:true st in
              { empty_li with li_host = Varset.union r w }
        in
        let cond_li =
          match cond with
          | None -> empty_li
          | Some c ->
              let r, w =
                Tcfg.stmt_arrays ~alias ~through_aliases:true
                  (Minic.Ast.mk_stmt (Minic.Ast.Sexpr c))
              in
              { empty_li with li_host = Varset.union r w }
        in
        let li =
          union_li (frag init)
            (union_li cond_li (union_li (frag step) (summarize b)))
        in
        Hashtbl.replace tbl s.tid li;
        li
  in
  ignore (summarize tp.body);
  tbl

let status_of_deadness = function
  | Deadness.Must_dead -> Some Not_stale
  | Deadness.May_dead -> Some May_stale
  | Deadness.Live -> None

(** Instrument [tp] with coherence checks. *)
let instrument ?(mode = Optimized) (tp : Tprog.t) =
  let cfg = Tcfg.build tp in
  (* Placement uses the full (alias-aware) access sets; deadness uses the
     compiler's imperfect view that cannot see through ambiguous pointers. *)
  let sets = Tcfg.access_sets tp cfg ~through_aliases:true in
  let sets_blind = Tcfg.access_sets tp cfg ~through_aliases:false in
  let dead_gpu = Deadness.compute tp cfg sets_blind Gpu in
  let dead_cpu = Deadness.compute tp cfg sets_blind Cpu in
  let last_cpu = Lastwrite.compute tp cfg sets Cpu in
  let first = Firstaccess.compute tp cfg sets in
  let infos = loop_infos tp in

  let pre : (int, check list) Hashtbl.t = Hashtbl.create 64 in
  let post : (int, check list) Hashtbl.t = Hashtbl.create 64 in
  let add tbl tid c =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl tid) in
    if not (List.mem c cur) then Hashtbl.replace tbl tid (cur @ [ c ])
  in

  (* Hoist a check anchored at [tid] outward through its enclosing loops
     while [ok loop_tid] holds; returns the final anchor. *)
  let hoist ~loops ~ok tid =
    let rec go anchor = function
      | [] -> anchor
      | l :: rest -> if ok l then go l rest else anchor
    in
    go tid loops
  in
  let cpu_loop_ok l =
    match Hashtbl.find_opt infos l with
    | Some li -> not li.li_launch
    | None -> false
  in
  let gpu_loop_ok v l =
    match Hashtbl.find_opt infos l with
    | Some li ->
        (not (Varset.mem v li.li_host)) && not (Varset.mem v li.li_h2d)
    | None -> false
  in

  let n = Graph.size cfg.Tcfg.graph in
  for i = 0 to n - 1 do
    let owner = cfg.Tcfg.owner.(i) in
    if owner >= 0 then begin
      let loops =
        Option.value ~default:[] (Hashtbl.find_opt cfg.Tcfg.loops_of i)
      in
      (match Tcfg.payload cfg i with
      | Tcfg.Nstmt { tkind = Tlaunch (k, _); tid; _ } ->
          let kern = tp.kernels.(k) in
          (* GPU checks at the kernel boundary, hoisted when legal. *)
          Varset.iter
            (fun v ->
              let anchor =
                match mode with
                | Optimized -> hoist ~loops ~ok:(gpu_loop_ok v) tid
                | Naive -> tid
              in
              add pre anchor (Check_read (v, Gpu)))
            (Varset.inter kern.k_arrays_read tp.tracked);
          Varset.iter
            (fun v ->
              let anchor =
                match mode with
                | Optimized -> hoist ~loops ~ok:(gpu_loop_ok v) tid
                | Naive -> tid
              in
              add pre anchor (Check_write (v, Gpu)))
            (Varset.inter kern.k_arrays_written tp.tracked);
          (* CPU copies of kernel-written arrays that are dead afterwards. *)
          Varset.iter
            (fun v ->
              match status_of_deadness (Deadness.status_after dead_cpu i v) with
              | Some st -> add post tid (Reset_status (v, Cpu, st))
              | None -> ())
            (Varset.inter kern.k_arrays_written tp.tracked)
      | _ ->
          (* Host accesses. *)
          let reads, writes =
            match mode with
            | Optimized -> (first.Firstaccess.first_read.(i),
                            first.Firstaccess.first_write.(i))
            | Naive -> (sets.Tcfg.name_read.(i), sets.Tcfg.name_write.(i))
          in
          Varset.iter
            (fun v ->
              let anchor =
                match mode with
                | Optimized -> hoist ~loops ~ok:cpu_loop_ok owner
                | Naive -> owner
              in
              add pre anchor (Check_read (v, Cpu)))
            reads;
          Varset.iter
            (fun v ->
              let anchor =
                match mode with
                | Optimized -> hoist ~loops ~ok:cpu_loop_ok owner
                | Naive -> owner
              in
              add pre anchor (Check_write (v, Cpu)))
            writes;
          (* reset_status after a last host write whose GPU copy is dead. *)
          Varset.iter
            (fun v ->
              if Lastwrite.is_last_write last_cpu i v then
                match
                  status_of_deadness (Deadness.status_after dead_gpu i v)
                with
                | Some st -> add post owner (Reset_status (v, Gpu, st))
                | None -> ())
            sets.Tcfg.host_write.(i))
    end
  done;

  let body =
    Tprog.expand_tstmts
      (fun s ->
        let mk_checks cs =
          List.map
            (fun c -> Tprog.mk ~loc:s.tloc ~sid:s.tsid (Tcheck c))
            cs
        in
        let pre_cs =
          Option.value ~default:[] (Hashtbl.find_opt pre s.tid) |> mk_checks
        in
        let post_cs =
          Option.value ~default:[] (Hashtbl.find_opt post s.tid) |> mk_checks
        in
        pre_cs @ [ s ] @ post_cs)
      tp.body
  in
  { tp with body }
