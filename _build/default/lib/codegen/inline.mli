(** Inlining of directive-containing functions at their (statement-position)
    call sites — the OpenARC-style procedure transformation that lets
    kernels live in library functions while translation stays
    intraprocedural.  Array/pointer parameters become pointer aliases
    (reference semantics); scalars are copied; bodies and their directive
    clauses are alpha-renamed. *)

exception Not_inlinable of Minic.Loc.t * string

(** Does the function body contain any OpenACC directive? *)
val has_directives : Minic.Ast.func -> bool

(** Fully inline directive-containing callees (fixpoint, recursion
    rejected), then drop their now-uncalled definitions.
    @raise Not_inlinable for expression-position calls, non-variable array
    arguments, or non-trailing returns. *)
val expand : Minic.Ast.program -> Minic.Ast.program

(** Would {!expand} change the program (callers then re-typecheck)? *)
val needs_expansion : Minic.Ast.program -> bool
