(** Algorithm 1 of the paper: may-dead / must-dead / may-live analysis of a
    device's copies of the tracked arrays.

    For device [D], a copy of array [v] is:
    - {e may-live} after node [n] if some following path reads it (on [D])
      before writing it;
    - {e may-dead} if every following path writes it first — only *may*,
      because at whole-array granularity the write can be partial;
    - {e must-dead} if it is never accessed again.

    Unlike the paper's Algorithm 1 we take [KILL] = (empty): the analysis
    asks only about device [D]'s own *future computation accesses*.  The
    runtime consumes deadness through [reset_status], whose not-stale mark
    declares future transfers into the copy redundant; if remote-writes
    could erase liveness (the paper's KILL), a needed transfer that
    re-delivers the value just before a host read would itself be flagged
    redundant.  With KILL empty the reset is sound at array granularity.

    Unresolved pointer aliasing degrades results two ways, mirroring the
    paper's discussion (§IV-C): accesses that the compiler only sees through
    an ambiguous pointer are invisible to the analysis (handled in
    {!Tcfg.access_sets}), and must-dead facts about arrays reachable from an
    ambiguous pointer are weakened to may-dead. *)

open Analysis
open Tprog

type dstatus = Live | May_dead | Must_dead

type t = {
  live_out : Varset.t array;  (** paper's OUT_Live per node *)
  dead_out : Varset.t array;  (** paper's OUT_Dead per node *)
  weakened : Varset.t;  (** arrays whose must-dead facts are unreliable *)
}

let compute (tp : Tprog.t) (cfg : Tcfg.t) (sets : Tcfg.sets) device =
  (* Transfers are excluded from DEF/USE: the copies they perform are the
     objects of the optimization, not evidence of the value being used. Only
     genuine computation accesses (host statements; kernels) count. *)
  let use, def =
    match device with
    | Cpu -> (sets.Tcfg.host_read, sets.Tcfg.host_write)
    | Gpu -> (sets.Tcfg.kern_read, sets.Tcfg.kern_write)
  in
  let kill = Array.make (Graph.size cfg.Tcfg.graph) Varset.empty in
  let g = cfg.Tcfg.graph in
  (* IN_Live(n) = OUT_Live(n) - KILL(n) - DEF(n) + USE(n) *)
  let live =
    Dataflow.solve g
      { direction = Dataflow.Backward; meet = Dataflow.Union;
        boundary = Varset.empty; universe = tp.tracked;
        transfer =
          (fun n out ->
            Varset.union use.(n)
              (Varset.diff (Varset.diff out kill.(n)) def.(n))) }
  in
  (* IN_Dead(n) = OUT_Dead(n) - KILL(n) + DEF(n) - USE(n) *)
  let dead =
    Dataflow.solve g
      { direction = Dataflow.Backward; meet = Dataflow.Intersect;
        boundary = Varset.empty; universe = tp.tracked;
        transfer =
          (fun n out ->
            Varset.diff (Varset.union def.(n) (Varset.diff out kill.(n)))
              use.(n)) }
  in
  let weakened =
    Varset.fold
      (fun ptr acc -> Varset.union acc (Alias.resolve tp.alias ptr))
      (Varset.filter (Alias.is_ambiguous tp.alias)
         (Varset.of_list
            (Minic.Typecheck.Smap.fold (fun v _ l -> v :: l)
               (Minic.Typecheck.function_vars tp.env "main") [])))
      Varset.empty
  in
  (* For a Backward solve, [input.(n)] is the meet over successors: the
     paper's OUT(n). *)
  { live_out = live.Dataflow.input; dead_out = dead.Dataflow.input; weakened }

(** Deadness status of device copy [v] at the program point {e after} node
    [n]. *)
let status_after t n v =
  if Varset.mem v t.live_out.(n) then Live
  else if Varset.mem v t.dead_out.(n) then May_dead
  else if Varset.mem v t.weakened then May_dead
  else Must_dead

let status_name = function
  | Live -> "live"
  | May_dead -> "may-dead"
  | Must_dead -> "must-dead"
