(** Inlining of directive-containing functions.

    OpenARC translates whole C programs; our translator is intraprocedural,
    so, like OpenARC's own procedure transformations, functions whose bodies
    contain OpenACC directives are inlined at their call sites first.  Array
    and pointer parameters become pointer aliases of the actual arguments
    (reference semantics); scalars are copied.  To keep the transformation
    structural, an inlinable function may use [return] only as its final
    statement. *)

open Minic
open Minic.Ast

exception Not_inlinable of Loc.t * string

let fail loc fmt = Fmt.kstr (fun m -> raise (Not_inlinable (loc, m))) fmt

let has_directives f =
  let found = ref false in
  iter_stmts (fun s -> match s.skind with Sacc _ -> found := true | _ -> ())
    f.f_body;
  !found

(* ---------------- alpha renaming ---------------- *)

let rec rename_expr sub = function
  | (Eint _ | Efloat _) as e -> e
  | Evar v -> Evar (Option.value ~default:v (List.assoc_opt v sub))
  | Eindex (a, i) -> Eindex (rename_expr sub a, rename_expr sub i)
  | Eunop (op, a) -> Eunop (op, rename_expr sub a)
  | Ebinop (op, a, b) -> Ebinop (op, rename_expr sub a, rename_expr sub b)
  | Ecall (f, args) -> Ecall (f, List.map (rename_expr sub) args)
  | Econd (c, a, b) ->
      Econd (rename_expr sub c, rename_expr sub a, rename_expr sub b)

let rec rename_lvalue sub = function
  | Lvar v -> Lvar (Option.value ~default:v (List.assoc_opt v sub))
  | Lindex (lv, e) -> Lindex (rename_lvalue sub lv, rename_expr sub e)

let rename_var sub v = Option.value ~default:v (List.assoc_opt v sub)

let rename_subarray sub sa =
  { sub_var = rename_var sub sa.sub_var;
    sub_lo = Option.map (rename_expr sub) sa.sub_lo;
    sub_len = Option.map (rename_expr sub) sa.sub_len }

let rename_clause sub = function
  | Cdata (k, subs) -> Cdata (k, List.map (rename_subarray sub) subs)
  | Cprivate vs -> Cprivate (List.map (rename_var sub) vs)
  | Cfirstprivate vs -> Cfirstprivate (List.map (rename_var sub) vs)
  | Creduction (op, vs) -> Creduction (op, List.map (rename_var sub) vs)
  | Cgang e -> Cgang (Option.map (rename_expr sub) e)
  | Cworker e -> Cworker (Option.map (rename_expr sub) e)
  | Cvector e -> Cvector (Option.map (rename_expr sub) e)
  | Cnum_gangs e -> Cnum_gangs (rename_expr sub e)
  | Cnum_workers e -> Cnum_workers (rename_expr sub e)
  | Cvector_length e -> Cvector_length (rename_expr sub e)
  | Casync e -> Casync (Option.map (rename_expr sub) e)
  | Cif e -> Cif (rename_expr sub e)
  | (Ccollapse _ | Cseq | Cindependent) as c -> c
  | Chost subs -> Chost (List.map (rename_subarray sub) subs)
  | Cdevice subs -> Cdevice (List.map (rename_subarray sub) subs)
  | Cuse_device vs -> Cuse_device (List.map (rename_var sub) vs)

let rename_directive sub d =
  let dir =
    match d.dir with
    | Acc_wait e -> Acc_wait (Option.map (rename_expr sub) e)
    | Acc_cache subs -> Acc_cache (List.map (rename_subarray sub) subs)
    | c -> c
  in
  { d with dir; clauses = List.map (rename_clause sub) d.clauses }

let rec rename_stmt sub s =
  let skind =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> s.skind
    | Sexpr e -> Sexpr (rename_expr sub e)
    | Sassign (lv, e) -> Sassign (rename_lvalue sub lv, rename_expr sub e)
    | Sdecl (t, v, init) ->
        Sdecl (rename_typ sub t, rename_var sub v,
               Option.map (rename_expr sub) init)
    | Sif (c, b1, b2) ->
        Sif (rename_expr sub c, List.map (rename_stmt sub) b1,
             List.map (rename_stmt sub) b2)
    | Swhile (c, b) -> Swhile (rename_expr sub c, List.map (rename_stmt sub) b)
    | Sfor (i, c, st, b) ->
        Sfor (Option.map (rename_stmt sub) i, Option.map (rename_expr sub) c,
              Option.map (rename_stmt sub) st, List.map (rename_stmt sub) b)
    | Sblock b -> Sblock (List.map (rename_stmt sub) b)
    | Sreturn e -> Sreturn (Option.map (rename_expr sub) e)
    | Sacc (d, body) ->
        Sacc (rename_directive sub d, Option.map (rename_stmt sub) body)
  in
  mk_stmt ~loc:s.sloc skind

and rename_typ sub = function
  | Tarr (t, ext) -> Tarr (rename_typ sub t, Option.map (rename_expr sub) ext)
  | (Tvoid | Tint | Tfloat) as t -> t
  | Tptr t -> Tptr (rename_typ sub t)

(* Names declared anywhere inside the function body. *)
let declared_names f =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.skind with
      | Sdecl (_, v, _) -> acc := v :: !acc
      | Sfor (Some { skind = Sdecl (_, v, _); _ }, _, _, _) ->
          acc := v :: !acc
      | _ -> ())
    f.f_body;
  !acc

let counter = ref 0

(* Build the inlined statement list for a call [f(args)], optionally
   assigning the return value to [result]. *)
let expand_call ~(callee : func) ~args ~result ~loc =
  incr counter;
  let fresh v = Fmt.str "%s__%d_%s" callee.f_name !counter v in
  (* Only the trailing statement may be a return. *)
  let body, ret_expr =
    match List.rev callee.f_body with
    | { skind = Sreturn e; _ } :: rest_rev -> (List.rev rest_rev, e)
    | _ -> (callee.f_body, None)
  in
  iter_stmts
    (fun s ->
      match s.skind with
      | Sreturn _ ->
          fail loc
            "cannot inline '%s': return statements are only supported as \
             the final statement of a directive-containing function"
            callee.f_name
      | _ -> ())
    body;
  let sub =
    List.map (fun p -> (p.p_name, fresh p.p_name)) callee.f_params
    @ List.map (fun v -> (v, fresh v)) (declared_names callee)
  in
  let bind_param p arg =
    let pname = rename_var sub p.p_name in
    match p.p_typ with
    | Tarr (base, _) | Tptr base -> (
        match arg with
        | Evar a ->
            (* reference semantics through a pointer alias *)
            mk_stmt ~loc (Sdecl (Tptr (rename_typ sub base), pname,
                                 Some (Evar a)))
        | _ ->
            fail loc
              "cannot inline '%s': array argument must be a variable"
              callee.f_name)
    | (Tvoid | Tint | Tfloat) as t ->
        mk_stmt ~loc (Sdecl (t, pname, Some arg))
  in
  let binds = List.map2 bind_param callee.f_params args in
  let body' = List.map (rename_stmt sub) body in
  let tail =
    match (result, ret_expr) with
    | None, _ -> []
    | Some lv, Some e -> [ mk_stmt ~loc (Sassign (lv, rename_expr sub e)) ]
    | Some _, None ->
        fail loc "cannot inline '%s': result used but function returns none"
          callee.f_name
  in
  [ mk_stmt ~loc (Sblock (binds @ body' @ tail)) ]

(* Calls to [targets] appearing in expression position (other than the two
   statement shapes we rewrite) cannot be inlined structurally. *)
let rec check_expr ~targets ~loc e =
  match e with
  | Eint _ | Efloat _ | Evar _ -> ()
  | Eindex (a, i) -> check_expr ~targets ~loc a; check_expr ~targets ~loc i
  | Eunop (_, a) -> check_expr ~targets ~loc a
  | Ebinop (_, a, b) ->
      check_expr ~targets ~loc a;
      check_expr ~targets ~loc b
  | Ecall (f, args) ->
      if List.mem_assoc f targets then
        fail loc
          "call to directive-containing function '%s' must be a statement \
           ('%s(...);' or 'x = %s(...);') to be inlined"
          f f f;
      List.iter (check_expr ~targets ~loc) args
  | Econd (c, a, b) ->
      check_expr ~targets ~loc c;
      check_expr ~targets ~loc a;
      check_expr ~targets ~loc b

(** Inline every statement-position call to a directive-containing function.
    Returns the rewritten program and whether anything changed. *)
let expand_once prog =
  let targets =
    List.filter_map
      (fun f ->
        if f.f_name <> "main" && has_directives f then Some (f.f_name, f)
        else None)
      (functions prog)
  in
  if targets = [] then (prog, false)
  else begin
    let changed = ref false in
    let rewrite s =
      match s.skind with
      | Sexpr (Ecall (f, args)) when List.mem_assoc f targets ->
          changed := true;
          expand_call ~callee:(List.assoc f targets) ~args ~result:None
            ~loc:s.sloc
      | Sassign (lv, Ecall (f, args)) when List.mem_assoc f targets ->
          changed := true;
          expand_call ~callee:(List.assoc f targets) ~args ~result:(Some lv)
            ~loc:s.sloc
      | Sexpr e | Sassign (_, e) ->
          check_expr ~targets ~loc:s.sloc e;
          [ s ]
      | Sif (c, _, _) | Swhile (c, _) ->
          check_expr ~targets ~loc:s.sloc c;
          [ s ]
      | Sfor (_, c, _, _) ->
          Option.iter (check_expr ~targets ~loc:s.sloc) c;
          [ s ]
      | Sdecl (_, _, Some e) | Sreturn (Some e) ->
          check_expr ~targets ~loc:s.sloc e;
          [ s ]
      | _ -> [ s ]
    in
    let globals =
      List.map
        (function
          | Gfunc fn when not (List.mem_assoc fn.f_name targets) ->
              (* Inline into every caller, not just main: directive-bearing
                 callees may be reached through plain helpers. *)
              Gfunc { fn with f_body = Acc.Edit.expand_block rewrite fn.f_body }
          | g -> g)
        prog.globals
    in
    ({ globals }, !changed)
  end

(** Fully inline directive-containing callees (fixpoint; depth capped to
    reject recursion among them), then drop their now-uncalled definitions
    so program-level directive queries see only the inlined copies. *)
let expand prog =
  let rec go prog depth =
    if depth > 16 then
      fail Loc.dummy
        "directive-containing functions recurse; cannot inline";
    let prog', changed = expand_once prog in
    if changed then go prog' (depth + 1) else prog'
  in
  let prog = go prog 0 in
  { globals =
      List.filter
        (function
          | Gfunc f -> f.f_name = "main" || not (has_directives f)
          | Gvar _ -> true)
        prog.globals }

(** Did inlining change the program (so callers know to re-typecheck)? *)
let needs_expansion prog =
  List.exists
    (fun f -> f.f_name <> "main" && has_directives f)
    (functions prog)
