(** CUDA-flavoured rendering of a translated program.

    OpenARC is a source-to-source translator whose output is a CUDA program;
    this module renders our {!Tprog} in that style so users can inspect what
    the compiler generated and trace runtime reports back to it (the
    traceability goal of the paper).  The output is documentation, not input
    to a further toolchain. *)

open Minic
open Tprog

let pp_typ ppf = function
  | Ast.Tvoid -> Fmt.string ppf "void"
  | Ast.Tint -> Fmt.string ppf "int"
  | Ast.Tfloat -> Fmt.string ppf "double"
  | Ast.Tarr (Ast.Tint, _) | Ast.Tptr Ast.Tint -> Fmt.string ppf "int *"
  | Ast.Tarr _ | Ast.Tptr _ -> Fmt.string ppf "double *"

let scalar_class_comment = function
  | Sc_private -> "private (per-thread register)"
  | Sc_firstprivate -> "firstprivate"
  | Sc_reduction op -> Fmt.str "reduction(%s)" (Pretty.redop_str op)
  | Sc_raced Race_active -> "UNSYNCHRONIZED SHARED (active race)"
  | Sc_raced Race_latent -> "unsynchronized shared (latent race)"

let pp_kernel env ppf (k : kernel) =
  let typ_of v =
    match Typecheck.var_type env "main" v with
    | Some t -> t
    | None -> Ast.Tfloat
  in
  let arrays = Analysis.Varset.elements (kernel_arrays k) in
  let params = Analysis.Varset.elements k.k_params in
  Fmt.pf ppf "__global__ void %s(" k.k_name;
  let args =
    List.map (fun v -> Fmt.str "%a%s" pp_typ (typ_of v) v) arrays
    @ List.map (fun v -> Fmt.str "%a %s" pp_typ (typ_of v) v) params
  in
  Fmt.pf ppf "%s)@." (String.concat ", " args);
  Fmt.pf ppf "{@.";
  List.iter
    (fun (v, c) ->
      Fmt.pf ppf "  %a %s; /* %s */@." pp_typ (typ_of v) v
        (scalar_class_comment c))
    k.k_scalars;
  (match k.k_loop with
  | Some l ->
      Fmt.pf ppf
        "  int %s = (blockIdx.x * blockDim.x + threadIdx.x) /* from %a */;@."
        l.kl_var Pretty.pp_expr l.kl_init;
      Fmt.pf ppf "  if (%a) {@." Pretty.pp_expr l.kl_cond;
      Fmt.pf ppf "%s" (Fmt.str "%a" (Pretty.pp_block 2) l.kl_body);
      Fmt.pf ppf "  }@."
  | None ->
      Fmt.pf ppf "  /* single-thread region */@.";
      Fmt.pf ppf "%s" (Fmt.str "%a" (Pretty.pp_block 1) k.k_body));
  Fmt.pf ppf "}@.@."

let rec pp_tstmt ind ppf s =
  let pad = String.make (ind * 2) ' ' in
  match s.tkind with
  | Thost st -> Fmt.pf ppf "%s" (Fmt.str "%a" (Pretty.pp_stmt ind) st)
  | Tif (c, b1, b2) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s}" pad Pretty.pp_expr c
        (pp_tblock (ind + 1)) b1 pad;
      if b2 = [] then Fmt.pf ppf "@."
      else Fmt.pf ppf " else {@.%a%s}@." (pp_tblock (ind + 1)) b2 pad
  | Twhile (c, b) ->
      Fmt.pf ppf "%swhile (%a) {@.%a%s}@." pad Pretty.pp_expr c
        (pp_tblock (ind + 1)) b pad
  | Tfor (init, cond, step, b) ->
      let frag ppf = function
        | Some { Ast.skind = Ast.Sdecl (t, v, Some e); _ } ->
            Fmt.pf ppf "%a%s = %a" pp_typ t v Pretty.pp_expr e
        | Some { Ast.skind = Ast.Sassign (lv, e); _ } ->
            Fmt.pf ppf "%a = %a" Pretty.pp_lvalue lv Pretty.pp_expr e
        | _ -> ()
      in
      Fmt.pf ppf "%sfor (%a; %a; %a) {@.%a%s}@." pad frag init
        (Fmt.option Pretty.pp_expr) cond frag step (pp_tblock (ind + 1)) b pad
  | Tblock b -> Fmt.pf ppf "%s{@.%a%s}@." pad (pp_tblock (ind + 1)) b pad
  | Talloc (v, site) ->
      Fmt.pf ppf "%scudaMalloc(&d_%s, sizeof(%s)); /* %s */@." pad v v
        site.site_label
  | Tfree (v, site) ->
      Fmt.pf ppf "%scudaFree(d_%s); /* %s */@." pad v site.site_label
  | Txfer x ->
      let dir, fn =
        match x.x_dir with
        | H2D -> ("cudaMemcpyHostToDevice", "memcpyin")
        | D2H -> ("cudaMemcpyDeviceToHost", "memcpyout")
      in
      let range ppf () =
        match (x.x_lo, x.x_len) with
        | Some lo, Some len ->
            Fmt.pf ppf "[%a:%a]" Pretty.pp_expr lo Pretty.pp_expr len
        | _ -> ()
      in
      let async ppf () =
        match x.x_async with
        | Some e -> Fmt.pf ppf ", stream[%a]" Pretty.pp_expr e
        | None -> ()
      in
      Fmt.pf ppf "%s%s(%s%a, %s%a); /* %s */@." pad fn x.x_var range () dir
        async () x.x_site.site_label
  | Tlaunch (kid, async) ->
      let stream ppf () =
        match async with
        | Some e -> Fmt.pf ppf ", 0, stream[%a]" Pretty.pp_expr e
        | None -> ()
      in
      Fmt.pf ppf "%skernel%d<<<gangs, workers%a>>>(...);@." pad kid stream ()
  | Twait None -> Fmt.pf ppf "%scudaDeviceSynchronize();@." pad
  | Twait (Some e) ->
      Fmt.pf ppf "%scudaStreamSynchronize(stream[%a]);@." pad Pretty.pp_expr e
  | Tcheck c -> (
      match c with
      | Check_read (v, dev) ->
          Fmt.pf ppf "%sHI_check_read(%s, %s);@." pad v (device_name dev)
      | Check_write (v, dev) ->
          Fmt.pf ppf "%sHI_check_write(%s, %s);@." pad v (device_name dev)
      | Reset_status (v, dev, st) ->
          Fmt.pf ppf "%sHI_reset_status(%s, %s, %s);@." pad v
            (device_name dev) (status_name st))

and pp_tblock ind ppf b = List.iter (pp_tstmt ind ppf) b

(** Render the whole translated program. *)
let pp ppf (tp : t) =
  Fmt.pf ppf "/* OpenARC output (CUDA rendering) */@.@.";
  Array.iter (pp_kernel tp.env ppf) tp.kernels;
  Fmt.pf ppf "int main()@.{@.";
  pp_tblock 1 ppf tp.body;
  Fmt.pf ppf "}@."

let to_string tp = Fmt.str "%a" pp tp
