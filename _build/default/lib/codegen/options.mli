(** Compiler configuration switches: automatic privatization and reduction
    recognition (disabled together for Table II's fault injection) and the
    backend register-promotion model that turns missing privatization into a
    latent rather than active error (§IV-B). *)

type t = {
  auto_privatize : bool;
  auto_reduction : bool;
  register_promote : bool;
}

val default : t

(** Table II configuration: no automatic recovery of stripped clauses. *)
val fault_injection : t
