(** Kernel outlining: turn OpenACC compute regions into {!Tprog.kernel}s.

    Each top-level loop of a compute region becomes one GPU kernel (named
    [<function>_kernel<N>], as OpenARC does); straight-line statements inside
    a [kernels] region become single-thread kernels.  Outlining also decides
    the fate of every scalar of the body — private, firstprivate, reduction,
    or (when clauses are missing and automatic recognition is off) *raced*,
    with the race kind that the simulator will manifest. *)

open Minic
open Minic.Ast
open Analysis
open Tprog

exception Unsupported of Loc.t * string

let unsupported loc fmt =
  Fmt.kstr (fun m -> raise (Unsupported (loc, m))) fmt

(* Loop induction variables: the outer loop variable plus every variable
   assigned by the init/step of any nested for. These are predetermined
   private, independent of privatization settings. *)
let induction_vars outer_var body =
  let acc = ref (Varset.singleton outer_var) in
  let of_stmt s =
    match s.skind with
    | Sassign (Lvar v, _) -> acc := Varset.add v !acc
    | Sdecl (_, v, _) -> acc := Varset.add v !acc
    | _ -> ()
  in
  let rec walk s =
    match s.skind with
    | Sfor (init, _, step, b) ->
        Option.iter of_stmt init;
        Option.iter of_stmt step;
        List.iter walk b
    | Sif (_, b1, b2) -> List.iter walk b1; List.iter walk b2
    | Swhile (_, b) | Sblock b -> List.iter walk b
    | Sacc (_, b) -> Option.iter walk b
    | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
        ()
  in
  List.iter walk body;
  !acc

(* Clauses of inner "#pragma acc loop" directives nested in the body. *)
let inner_loop_clauses body =
  let acc = ref [] in
  List.iter
    (iter_stmt (fun s ->
         match s.skind with
         | Sacc (({ dir = Acc_loop; _ } as d), _) -> acc := d :: !acc
         | _ -> ()))
    body;
  !acc

let loop_header ~loc init =
  match init with
  | Some { skind = Sdecl (_, v, Some e); _ } -> (v, e)
  | Some { skind = Sassign (Lvar v, e); _ } -> (v, e)
  | Some _ | None ->
      unsupported loc "parallel loop requires an initialized loop variable"

(* Classify the scalars of a kernel body. *)
let classify_scalars ~(opts : Options.t) ~induction ~declared ~clauses
    (acc : Regions.t) =
  let private_clause =
    Varset.of_list (List.concat_map Acc.Query.private_vars clauses)
  in
  let firstprivate_clause =
    Varset.of_list (List.concat_map Acc.Query.firstprivate_vars clauses)
  in
  let reduction_clause = List.concat_map Acc.Query.reductions clauses in
  let auto_private = if opts.auto_privatize then Regions.privatizable acc
                     else Varset.empty in
  let interesting =
    Varset.diff (Varset.diff acc.Regions.scalars_written declared) induction
  in
  let classify v =
    if Varset.mem v private_clause then Some (v, Sc_private)
    else if Varset.mem v firstprivate_clause then Some (v, Sc_firstprivate)
    else
      match List.find_opt (fun (_, rv) -> rv = v) reduction_clause with
      | Some (op, _) -> Some (v, Sc_reduction op)
      | None ->
          if Varset.mem v auto_private then Some (v, Sc_private)
          else
            let accum = List.assoc_opt v acc.Regions.accumulators in
            match accum with
            | Some op when opts.auto_reduction -> Some (v, Sc_reduction op)
            | Some _ ->
                (* Unrecognized accumulator: loop-carried read-modify-write,
                   an active race on real hardware. *)
                Some (v, Sc_raced Race_active)
            | None -> (
                match Hashtbl.find_opt acc.Regions.first_access v with
                | Some Regions.First_write ->
                    (* Privatizable but not privatized: register promotion
                       hides the race unless disabled. *)
                    if opts.register_promote then Some (v, Sc_raced Race_latent)
                    else Some (v, Sc_raced Race_active)
                | Some Regions.First_read | None ->
                    Some (v, Sc_raced Race_active))
  in
  List.filter_map classify (Varset.elements interesting)

(* Would this kernel contain private data if clauses/recognition were on?
   (Table II's "kernels containing private data".) *)
let has_private_data ~induction ~declared ~clauses (acc : Regions.t) =
  let private_clause =
    Varset.of_list (List.concat_map Acc.Query.private_vars clauses)
  in
  let candidates =
    Varset.union private_clause
      (Varset.diff (Varset.diff (Regions.privatizable acc) declared) induction)
  in
  not (Varset.is_empty candidates)

let has_reduction ~clauses (acc : Regions.t) =
  List.exists (fun c -> Acc.Query.reductions c <> []) clauses
  || acc.Regions.accumulators <> []

(* Requested launch dimensions from gang/worker/vector-style clauses. *)
let dims_of_clauses clauses =
  let find f = List.find_map (fun d -> List.find_map f d.clauses) clauses in
  let gangs =
    find (function
      | Cnum_gangs e | Cgang (Some e) -> Some e
      | _ -> None)
  in
  let workers =
    find (function
      | Cnum_workers e | Cworker (Some e) -> Some e
      | _ -> None)
  in
  let vlen =
    find (function
      | Cvector_length e | Cvector (Some e) -> Some e
      | _ -> None)
  in
  (gangs, workers, vlen)

let mk_kernel ~(opts : Options.t) ~alias ~fname ~id ~sid ~loc ~clauses
    ~async ~seq ~source loop body =
  let acc = Regions.analyze ~alias body in
  let induction =
    match loop with
    | Some (v, _, _, _) -> induction_vars v body
    | None -> induction_vars "" body
  in
  let declared = acc.Regions.declared in
  let scalars = classify_scalars ~opts ~induction ~declared ~clauses acc in
  let classified = Varset.of_list (List.map fst scalars) in
  let params =
    Varset.diff
      (Varset.diff (Varset.diff acc.Regions.scalars_read classified) declared)
      induction
  in
  let kloop =
    Option.map
      (fun (v, init, cond, step) ->
        { kl_var = v; kl_init = init; kl_cond = cond; kl_step = step;
          kl_body = body })
      loop
  in
  {
    k_id = id;
    k_name = Fmt.str "%s_kernel%d" fname id;
    k_sid = sid;
    k_loc = loc;
    k_loop = kloop;
    k_body = body;
    k_source = source;
    k_scalars = scalars;
    k_arrays_read = acc.Regions.arrays_read;
    k_arrays_written = acc.Regions.arrays_written;
    k_params = params;
    k_induction = induction;
    k_ops_per_iter = max 1 acc.Regions.ops;
    k_async = async;
    k_dims = dims_of_clauses clauses;
    k_has_private_data = has_private_data ~induction ~declared ~clauses acc;
    k_has_reduction = has_reduction ~clauses acc;
    k_seq = seq;
  }

(** Outline the kernels of one compute region.

    [fresh] allocates kernel ids.  Returns kernels in execution order. *)
let outline_region ~opts ~alias ~fname ~fresh ~region_sid (d : directive)
    body_stmt =
  let base_clauses = [ d ] in
  let async = Acc.Query.async d |> Option.map (Option.value ~default:(Eint 0)) in
  let mk_loop_kernel ~extra_dirs (s : stmt) =
    match s.skind with
    | Sfor (init, cond, step, body) ->
        let v, init_e = loop_header ~loc:s.sloc init in
        let cond =
          match cond with
          | Some c -> c
          | None -> unsupported s.sloc "parallel loop requires a condition"
        in
        let clauses =
          base_clauses @ extra_dirs @ inner_loop_clauses body
        in
        let seq =
          List.exists Acc.Query.has_seq (base_clauses @ extra_dirs)
        in
        mk_kernel ~opts ~alias ~fname ~id:(fresh ()) ~sid:region_sid
          ~loc:s.sloc ~clauses ~async ~seq ~source:s
          (Some (v, init_e, cond, step))
          body
    | _ -> unsupported s.sloc "loop directive must annotate a for loop"
  in
  let mk_scalar_kernel stmts loc =
    mk_kernel ~opts ~alias ~fname ~id:(fresh ()) ~sid:region_sid ~loc
      ~clauses:base_clauses ~async ~seq:false
      ~source:(Minic.Ast.mk_stmt ~loc (Sblock stmts))
      None stmts
  in
  match d.dir with
  | Acc_parallel_loop | Acc_kernels_loop ->
      [ mk_loop_kernel ~extra_dirs:[] body_stmt ]
  | Acc_parallel | Acc_kernels ->
      let items =
        match body_stmt.skind with
        | Sblock b -> b
        | _ -> [ body_stmt ]
      in
      (* Group: loops (possibly behind a loop directive) become kernels;
         runs of other statements become single-thread kernels. *)
      let rec group acc pending = function
        | [] -> flush_pending acc pending
        | ({ skind = Sfor _; _ } as s) :: rest ->
            let acc = flush_pending acc pending in
            group (mk_loop_kernel ~extra_dirs:[] s :: acc) [] rest
        | { skind = Sacc (({ dir = Acc_loop; _ } as ld), Some inner); _ }
          :: rest ->
            let acc = flush_pending acc pending in
            group (mk_loop_kernel ~extra_dirs:[ ld ] inner :: acc) [] rest
        | s :: rest -> group acc (s :: pending) rest
      and flush_pending acc pending =
        match pending with
        | [] -> acc
        | _ ->
            let stmts = List.rev pending in
            let first = List.hd stmts in
            mk_scalar_kernel stmts first.sloc :: acc
      in
      List.rev (group [] [] items)
  | Acc_data | Acc_host_data | Acc_loop | Acc_update | Acc_declare
  | Acc_wait _ | Acc_cache _ ->
      invalid_arg "Outline.outline_region: not a compute construct"
