(** First-read / first-write placement analysis (§III-B).

    A host access of array [v] at node [n] needs a coherence check only if it
    can be the first access of its kind since program entry or since the most
    recent GPU kernel call (kernels are the only events that change CPU-side
    staleness).  Forward, all-path "seen" analysis with kernel nodes
    resetting the fact; an access is "first" when not seen on {e all}
    incoming paths. *)

open Analysis
open Tprog

type t = {
  first_read : Varset.t array;
  first_write : Varset.t array;
}

let compute (tp : Tprog.t) (cfg : Tcfg.t) (sets : Tcfg.sets) =
  let g = cfg.Tcfg.graph in
  let solve_seen access =
    Dataflow.solve g
      { direction = Dataflow.Forward; meet = Dataflow.Intersect;
        boundary = Varset.empty;
        universe =
          Varset.union tp.tracked
            (Varset.of_list
               (Minic.Typecheck.Smap.fold
                  (fun v _ l -> v :: l)
                  (Minic.Typecheck.function_vars tp.env "main") []));
        transfer =
          (fun n inp ->
            if sets.Tcfg.is_kernel.(n) then Varset.empty
            else Varset.union inp access.(n)) }
  in
  (* Placement is computed over accessed *names* (pointers included): the
     runtime resolves a name to its dynamic root, so a check on a pointer is
     precise even where static alias analysis is not. *)
  let seen_read = solve_seen sets.Tcfg.name_read in
  let seen_write = solve_seen sets.Tcfg.name_write in
  let n = Graph.size g in
  let first_read = Array.make n Varset.empty in
  let first_write = Array.make n Varset.empty in
  for i = 0 to n - 1 do
    first_read.(i) <-
      Varset.diff sets.Tcfg.name_read.(i) seen_read.Dataflow.input.(i);
    first_write.(i) <-
      Varset.diff sets.Tcfg.name_write.(i) seen_write.Dataflow.input.(i)
  done;
  { first_read; first_write }
