(** CUDA-flavoured rendering of a translated program, in the style of
    OpenARC's source-to-source output: [__global__] kernels with their
    scalar classifications as comments, [cudaMalloc]/[memcpyin]/[memcpyout]
    host calls carrying their site labels, and the inserted [HI_check_*]
    coherence runtime calls.  Documentation output, not compiler input. *)

val pp : Format.formatter -> Tprog.t -> unit
val to_string : Tprog.t -> string
