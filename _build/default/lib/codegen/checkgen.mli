(** Coherence-check insertion (§III-B): [check_read]/[check_write] for GPU
    data at kernel boundaries, first-access placement for CPU data,
    [reset_status] at last host writes of dead remote copies and after
    kernel launches, and the loop-hoisting optimization that makes the
    JACOBI deferred-copy redundancy detectable (paper Listing 3). *)

type mode =
  | Optimized  (** the paper's placement *)
  | Naive  (** per-access insertion — the ablation baseline *)

val instrument : ?mode:mode -> Tprog.t -> Tprog.t
