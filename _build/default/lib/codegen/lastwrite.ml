(** Algorithm 2 of the paper: last-write analysis.

    A host write of array [v] at node [n] is a *last write* if no following
    path writes [v] again before the program exit or the next GPU kernel
    call.  These are the points where the compiler places [reset_status]
    calls for dead remote copies.  Backward all-path analysis; kernel nodes
    reset the fact (segments end at kernel boundaries). *)

open Analysis
open Tprog

type t = {
  last : Varset.t array;  (** per node: arrays whose write here is last *)
}

let compute (tp : Tprog.t) (cfg : Tcfg.t) (sets : Tcfg.sets) device =
  let def, kill =
    match device with
    | Cpu -> (sets.Tcfg.host_write, sets.Tcfg.kern_write)
    | Gpu -> (sets.Tcfg.kern_write, sets.Tcfg.host_write)
  in
  let g = cfg.Tcfg.graph in
  (* IN_Write(n) = OUT_Write(n) + DEF(n) - KILL(n); kernel nodes start a new
     segment. *)
  let res =
    Dataflow.solve g
      { direction = Dataflow.Backward; meet = Dataflow.Intersect;
        boundary = Varset.empty; universe = tp.tracked;
        transfer =
          (fun n out ->
            let out = if sets.Tcfg.is_kernel.(n) then Varset.empty else out in
            Varset.diff (Varset.union def.(n) out) kill.(n)) }
  in
  let n = Graph.size g in
  let last = Array.make n Varset.empty in
  for i = 0 to n - 1 do
    (* LAST_Write(n) = IN_Write(n) - OUT_Write(n), restricted to DEF(n).
       input.(i) is the meet over successors (paper's OUT). *)
    let out_fact =
      if sets.Tcfg.is_kernel.(i) then Varset.empty else res.Dataflow.input.(i)
    in
    last.(i) <- Varset.inter def.(i) (Varset.diff res.Dataflow.output.(i) out_fact)
  done;
  { last }

let is_last_write t n v = Varset.mem v t.last.(n)
