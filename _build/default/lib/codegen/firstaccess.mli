(** First-read / first-write placement analysis (§III-B): a host access
    needs a coherence check only when it can be the first of its kind since
    program entry or the most recent kernel call.  Computed over accessed
    *names* (pointers included); the runtime resolves names to dynamic
    roots. *)

open Analysis

type t = {
  first_read : Varset.t array;
  first_write : Varset.t array;
}

val compute : Tprog.t -> Tcfg.t -> Tcfg.sets -> t
