(** Compiler configuration switches.

    [auto_privatize] / [auto_reduction] model OpenARC's automatic
    privatization and reduction-variable recognition; the paper's Table II
    experiment disables both (and strips the explicit clauses) to inject the
    race conditions that kernel verification must catch.
    [register_promote] models the backend caching a thread's intermediate
    scalar values in registers — the mechanism that makes missing
    privatization a *latent* rather than active error (§IV-B). *)

type t = {
  auto_privatize : bool;
  auto_reduction : bool;
  register_promote : bool;
}

let default =
  { auto_privatize = true; auto_reduction = true; register_promote = true }

(** Table II fault-injection configuration: no automatic recovery of the
    stripped private/reduction clauses. *)
let fault_injection =
  { default with auto_privatize = false; auto_reduction = false }
