(** OpenARC translation: lower an OpenACC-annotated Mini-C program to a
    {!Tprog.t}.

    Data semantics follow OpenACC V1.0: [data] regions allocate and transfer
    at entry/exit according to their clauses; arrays accessed by a compute
    region that are not covered by any enclosing data clause fall back to the
    *default scheme* — copy in before the kernel launch and copy back after —
    which is exactly the naive baseline of the paper's Figure 1. *)

open Minic
open Minic.Ast
open Analysis
open Tprog

type state = {
  opts : Options.t;
  env : Typecheck.env;
  alias : Alias.t;
  fname : string;
  mutable kernels : kernel list;  (** reversed *)
  mutable next_kernel : int;
  mutable tracked : Varset.t;
  mutable denv : (string * data_kind) list list;  (** data-region stack *)
  mutable update_count : int;
}

let fresh_kernel st () =
  let id = st.next_kernel in
  st.next_kernel <- id + 1;
  id

let present st root =
  List.exists (List.exists (fun (v, _) -> v = root)) st.denv

let push_frame st = st.denv <- [] :: st.denv

let pop_frame st =
  match st.denv with
  | _ :: rest -> st.denv <- rest
  | [] -> invalid_arg "Translate.pop_frame"

let add_to_frame st root kind =
  match st.denv with
  | frame :: rest -> st.denv <- ((root, kind) :: frame) :: rest
  | [] -> invalid_arg "Translate.add_to_frame"

(* Add to the outermost (function-wide) frame: used for `declare`. *)
let add_to_bottom st root kind =
  match List.rev st.denv with
  | [] -> invalid_arg "Translate.add_to_bottom"
  | bottom :: rest_rev ->
      st.denv <- List.rev (((root, kind) :: bottom) :: rest_rev)

let track st root = st.tracked <- Varset.add root st.tracked

let is_array st v =
  match Typecheck.var_type st.env st.fname v with
  | Some (Tarr _ | Tptr _) -> true
  | Some _ | None -> false

(* Array roots denoted by a data-clause variable. *)
let clause_roots st v = Varset.elements (Alias.resolve st.alias v)

let mk_xfer ?lo ?len ?async ~site ~dir var =
  mk ~loc:site.site_loc ~sid:site.site_sid
    (Txfer { x_var = var; x_dir = dir; x_lo = lo; x_len = len;
             x_async = async; x_site = site })

(* Entry/exit operations of a data construct (explicit region or the data
   clauses attached to a compute construct). Returns (entry, exit) statement
   lists; [label] prefixes site names. *)
let data_region_ops st ~label ~sid ~loc clauses =
  let entry = ref [] and exit_ = ref [] in
  List.iter
    (fun (kind, sub) ->
      if is_array st sub.sub_var then
        List.iter
          (fun root ->
            track st root;
            let already = present st root in
            let allocates = Acc.Query.kind_allocates kind && not already in
            if allocates then begin
              let site = mk_site ~loc ~sid (Fmt.str "%s.alloc(%s)" label root) in
              entry := mk ~loc ~sid (Talloc (root, site)) :: !entry
            end;
            if Acc.Query.kind_copies_in kind && not already then begin
              let site =
                mk_site ~loc ~sid
                  (Fmt.str "%s.%s(%s)" label (Pretty.data_kind_str kind) root)
              in
              entry :=
                mk_xfer ?lo:sub.sub_lo ?len:sub.sub_len ~site ~dir:H2D root
                :: !entry
            end;
            if Acc.Query.kind_copies_out kind && not already then begin
              let site =
                mk_site ~loc ~sid (Fmt.str "%s.copyout(%s)" label root)
              in
              exit_ :=
                mk_xfer ?lo:sub.sub_lo ?len:sub.sub_len ~site ~dir:D2H root
                :: !exit_
            end;
            if allocates then begin
              let site = mk_site ~loc ~sid (Fmt.str "%s.free(%s)" label root) in
              exit_ := mk ~loc ~sid (Tfree (root, site)) :: !exit_
            end;
            if not already then add_to_frame st root kind)
          (clause_roots st sub.sub_var))
    (List.concat_map
       (function Cdata (k, subs) -> List.map (fun s -> (k, s)) subs | _ -> [])
       clauses);
  (List.rev !entry, List.rev !exit_)

let rec contains_acc s =
  match s.skind with
  | Sacc _ -> true
  | Sif (_, b1, b2) -> List.exists contains_acc b1 || List.exists contains_acc b2
  | Swhile (_, b) | Sblock b -> List.exists contains_acc b
  | Sfor (_, _, _, b) -> List.exists contains_acc b
  | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
      false

let rec tr_stmt st s : tstmt list =
  let loc = s.sloc in
  match s.skind with
  | Sacc (d, body) -> tr_directive st s d body
  | Sif (c, b1, b2) when List.exists contains_acc (b1 @ b2) ->
      [ mk ~loc ~sid:s.sid (Tif (c, tr_block st b1, tr_block st b2)) ]
  | Swhile (c, b) when List.exists contains_acc b ->
      [ mk ~loc ~sid:s.sid (Twhile (c, tr_block st b)) ]
  | Sfor (init, cond, step, b) when List.exists contains_acc b ->
      [ mk ~loc ~sid:s.sid (Tfor (init, cond, step, tr_block st b)) ]
  | Sblock b when List.exists contains_acc b ->
      [ mk ~loc ~sid:s.sid (Tblock (tr_block st b)) ]
  | _ -> [ mk ~loc ~sid:s.sid (Thost s) ]

and tr_block st b = List.concat_map (tr_stmt st) b

and tr_directive st s d body =
  let loc = d.dloc in
  match d.dir with
  | Acc_data -> (
      match Acc.Query.if_clause d with
      | None | Some (Eint 1) ->
          push_frame st;
          let entry, exit_ =
            data_region_ops st ~label:(Fmt.str "data%d" s.sid) ~sid:s.sid
              ~loc d.clauses
          in
          let inner = match body with Some b -> tr_stmt st b | None -> [] in
          pop_frame st;
          entry @ inner @ exit_
      | Some cond ->
          (* Conditional data region: its vars are not statically present,
             so enclosed kernels keep their (present-or-create) default
             copies and stay correct whichever way the condition goes; the
             region's own allocation and transfers run under the guard. *)
          push_frame st;
          let entry, exit_ =
            data_region_ops st ~label:(Fmt.str "data%d" s.sid) ~sid:s.sid
              ~loc d.clauses
          in
          pop_frame st;
          push_frame st;
          let inner = match body with Some b -> tr_stmt st b | None -> [] in
          pop_frame st;
          [ mk ~loc ~sid:s.sid (Tif (cond, entry, [])) ]
          @ inner
          @ [ mk ~loc ~sid:s.sid (Tif (cond, exit_, [])) ])
  | Acc_host_data -> (
      match body with Some b -> tr_stmt st b | None -> [])
  | Acc_update ->
      let n = st.update_count in
      st.update_count <- n + 1;
      let label = Fmt.str "update%d" n in
      let async =
        Acc.Query.async d |> Option.map (Option.value ~default:(Eint 0))
      in
      let guard ops =
        (* OpenACC if clause: the transfers run only when the condition
           holds at run time. *)
        match Acc.Query.if_clause d with
        | None | Some (Eint 1) -> ops
        | Some cond -> [ mk ~loc ~sid:s.sid (Tif (cond, ops, [])) ]
      in
      let xfers dir subs =
        List.concat_map
          (fun sub ->
            if not (is_array st sub.sub_var) then []
            else
              List.map
                (fun root ->
                  track st root;
                  let site =
                    mk_site ~loc ~sid:s.sid
                      (Fmt.str "%s.%s(%s)" label
                         (match dir with H2D -> "device" | D2H -> "host")
                         root)
                  in
                  mk_xfer ?lo:sub.sub_lo ?len:sub.sub_len ?async ~site ~dir
                    root)
                (clause_roots st sub.sub_var))
          subs
      in
      guard
        (xfers D2H (Acc.Query.update_host_subs d)
        @ xfers H2D (Acc.Query.update_device_subs d))
  | Acc_wait e -> [ mk ~loc ~sid:s.sid (Twait e) ]
  | Acc_declare ->
      (* Device-resident for the remainder of the function: allocate and
         copy in here; the runtime frees at program end. *)
      push_frame st;
      let entry, _exit =
        data_region_ops st ~label:(Fmt.str "declare%d" s.sid) ~sid:s.sid ~loc
          d.clauses
      in
      let frame = List.hd st.denv in
      pop_frame st;
      List.iter (fun (root, kind) -> add_to_bottom st root kind) frame;
      entry
  | Acc_cache _ -> []
  | Acc_loop ->
      (* Orphaned loop directives are rejected by validation; inside compute
         regions they are consumed by outlining. *)
      (match body with Some b -> tr_stmt st b | None -> [])
  | Acc_parallel | Acc_kernels | Acc_parallel_loop | Acc_kernels_loop -> (
      match body with
      | None -> []
      | Some body_stmt ->
          let kernels =
            Outline.outline_region ~opts:st.opts ~alias:st.alias
              ~fname:st.fname ~fresh:(fresh_kernel st) ~region_sid:s.sid d
              body_stmt
          in
          st.kernels <- List.rev_append kernels st.kernels;
          push_frame st;
          let entry, exit_ =
            data_region_ops st
              ~label:(Fmt.str "region%d" s.sid)
              ~sid:s.sid ~loc d.clauses
          in
          let launches =
            List.concat_map (fun k -> kernel_ops st ~sid:s.sid k) kernels
          in
          pop_frame st;
          let device_ops = entry @ launches @ exit_ in
          match Acc.Query.if_clause d with
          | None | Some (Eint 1) -> device_ops
          | Some cond ->
              (* if clause: fall back to sequential host execution when the
                 condition is false at run time. *)
              [ mk ~loc ~sid:s.sid
                  (Tif (cond, device_ops, [ mk ~loc ~sid:s.sid
                                              (Thost body_stmt) ])) ])

(* Default-scheme transfers around one kernel launch: every accessed array
   with no covering data clause is copied in before and back out after.
   Allocations are present-or-create: the runtime keeps the buffer resident
   (as CUDA's caching allocators do) and frees everything at program end, so
   coherence state survives across launches and the profiler can expose the
   full redundancy of the default scheme. *)
and kernel_ops st ~sid k =
  let loc = k.k_loc in
  Varset.iter (track st) (kernel_arrays k);
  let implicit =
    Varset.elements (Varset.filter (fun v -> not (present st v))
                       (kernel_arrays k))
  in
  let pre =
    List.concat_map
      (fun v ->
        [ mk ~loc ~sid
            (Talloc (v, mk_site ~loc ~sid (Fmt.str "%s.alloc(%s)" k.k_name v)));
          mk_xfer ~dir:H2D
            ~site:(mk_site ~loc ~sid (Fmt.str "%s.pcopyin(%s)" k.k_name v))
            v ])
      implicit
  in
  let post =
    List.map
      (fun v ->
        mk_xfer ~dir:D2H
          ~site:(mk_site ~loc ~sid (Fmt.str "%s.pcopyout(%s)" k.k_name v))
          v)
      implicit
  in
  pre @ [ mk ~loc ~sid (Tlaunch (k.k_id, k.k_async)) ] @ post

(** Translate [prog] (its [main]); validation and type checking must have
    succeeded first.  Directive-containing callees are inlined into [main]
    first (and the program re-typechecked when that happens). *)
let translate ?(opts = Options.default) env prog =
  let env, prog =
    if Inline.needs_expansion prog then begin
      let prog = Inline.expand prog in
      (Typecheck.check prog, prog)
    end
    else (env, prog)
  in
  let fname = "main" in
  let alias = Alias.compute env prog fname in
  let st =
    { opts; env; alias; fname; kernels = []; next_kernel = 0;
      tracked = Varset.empty; denv = [ [] ]; update_count = 0 }
  in
  let main = Ast.main_function prog in
  let body = tr_block st main.f_body in
  let kernels = Array.of_list (List.rev st.kernels) in
  { source = prog; env; alias; kernels; body; tracked = st.tracked }

(** Parse, validate, type check and translate a source string. *)
let compile_string ?opts ?file src =
  let prog = Parser.parse_string ?file src in
  Acc.Validate.check_program prog;
  let env = Typecheck.check prog in
  translate ?opts env prog

let compile_file ?opts path =
  let prog = Parser.parse_file path in
  Acc.Validate.check_program prog;
  let env = Typecheck.check prog in
  translate ?opts env prog
