(** The paper's Algorithm 2: last-write analysis.  A host write of [v] at
    node [n] is *last* if no following path writes [v] again before program
    exit or the next kernel call — the points where [reset_status] goes. *)

open Analysis

type t = { last : Varset.t array }

val compute : Tprog.t -> Tcfg.t -> Tcfg.sets -> Tprog.device -> t
val is_last_write : t -> int -> string -> bool
