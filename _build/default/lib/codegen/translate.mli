(** OpenARC translation: lower an OpenACC-annotated Mini-C program to a
    {!Tprog.t}.  Data semantics follow OpenACC V1.0; arrays accessed by a
    compute region with no covering data clause fall back to the *default
    scheme* — copy in before the launch, copy back after — the naive
    baseline of the paper's Figure 1.  Directive-containing callees are
    inlined first. *)

(** Translate a validated, type-checked program (its [main]). *)
val translate :
  ?opts:Options.t -> Minic.Typecheck.env -> Minic.Ast.program -> Tprog.t

(** Parse + validate + type check + translate a source string. *)
val compile_string : ?opts:Options.t -> ?file:string -> string -> Tprog.t

val compile_file : ?opts:Options.t -> string -> Tprog.t
