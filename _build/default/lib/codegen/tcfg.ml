(** Control-flow graph over translated programs, with per-node, per-device
    access sets — the substrate of the paper's dataflow analyses.

    Break/continue inside translated host loops are not given CFG edges (the
    analyses treat loops structurally); this matches the structured benchmark
    code OpenARC targets and errs conservatively elsewhere. *)

open Minic
open Analysis
open Tprog

type node_kind =
  | Nentry
  | Nexit
  | Nstmt of tstmt  (** leaf translated statement *)
  | Ncond of Ast.expr  (** if/while/for condition *)
  | Nhost_frag of Ast.stmt  (** loop init/step fragment *)

type t = {
  graph : Graph.t;
  mutable payload : node_kind array;
  mutable owner : int array;
      (** tid of the tstmt a node belongs to (the anchor for inserting
          checks); -1 for entry/exit *)
  entry : int;
  exit_ : int;
  of_tid : (int, int) Hashtbl.t;  (** tstmt tid -> node id *)
  (* enclosing loop tstmt-tid chains, innermost first, per node *)
  loops_of : (int, int list) Hashtbl.t;
}

let payload t n = t.payload.(n)

let node t kind ~owner ~loops =
  let id = Graph.add_node t.graph in
  if id >= Array.length t.payload then begin
    let p = Array.make (max 16 (2 * Array.length t.payload)) Nentry in
    Array.blit t.payload 0 p 0 (Array.length t.payload);
    t.payload <- p;
    let o = Array.make (Array.length p) (-1) in
    Array.blit t.owner 0 o 0 (Array.length t.owner);
    t.owner <- o
  end;
  t.payload.(id) <- kind;
  t.owner.(id) <- owner;
  Hashtbl.replace t.loops_of id loops;
  (match kind with
  | Nstmt s -> Hashtbl.replace t.of_tid s.tid id
  | Nentry | Nexit | Ncond _ | Nhost_frag _ -> ());
  id

let connect t preds n = List.iter (fun p -> Graph.add_edge t.graph p n) preds

(* Returns the set of exit predecessors after the statement. [loops] is the
   chain of enclosing loop header nodes. *)
let rec build_stmt t ~loops preds s =
  match s.tkind with
  | Thost _ | Talloc _ | Tfree _ | Txfer _ | Tlaunch _ | Twait _ | Tcheck _ ->
      let n = node t (Nstmt s) ~owner:s.tid ~loops in
      connect t preds n;
      [ n ]
  | Tblock b -> build_seq t ~loops preds b
  | Tif (c, b1, b2) ->
      let nc = node t (Ncond c) ~owner:s.tid ~loops in
      connect t preds nc;
      let p1 = build_seq t ~loops [ nc ] b1 in
      let p2 = build_seq t ~loops [ nc ] b2 in
      let p2 = if b2 = [] then [ nc ] else p2 in
      p1 @ p2
  | Twhile (c, b) ->
      let nc = node t (Ncond c) ~owner:s.tid ~loops in
      connect t preds nc;
      let body_exit = build_seq t ~loops:(s.tid :: loops) [ nc ] b in
      connect t body_exit nc;
      [ nc ]
  | Tfor (init, cond, step, b) ->
      let preds =
        match init with
        | None -> preds
        | Some i ->
            let ni = node t (Nhost_frag i) ~owner:s.tid ~loops in
            connect t preds ni;
            [ ni ]
      in
      let nc =
        node t (Ncond (Option.value cond ~default:(Ast.Eint 1))) ~owner:s.tid
          ~loops
      in
      connect t preds nc;
      let inner_loops = s.tid :: loops in
      let body_exit = build_seq t ~loops:inner_loops [ nc ] b in
      let back =
        match step with
        | None -> body_exit
        | Some st ->
            let ns = node t (Nhost_frag st) ~owner:s.tid ~loops:inner_loops in
            connect t body_exit ns;
            [ ns ]
      in
      connect t back nc;
      [ nc ]

and build_seq t ~loops preds stmts =
  List.fold_left (fun preds s -> build_stmt t ~loops preds s) preds stmts

let build (tp : Tprog.t) =
  let graph = Graph.create () in
  let t =
    { graph; payload = Array.make 16 Nentry; owner = Array.make 16 (-1);
      entry = 0; exit_ = 0; of_tid = Hashtbl.create 64;
      loops_of = Hashtbl.create 64 }
  in
  let entry = node t Nentry ~owner:(-1) ~loops:[] in
  assert (entry = 0);
  let body_exit = build_seq t ~loops:[] [ entry ] tp.body in
  let exit_ = node t Nexit ~owner:(-1) ~loops:[] in
  connect t body_exit exit_;
  { t with entry; exit_ }

(** {1 Per-node, per-device access sets} *)

type sets = {
  cpu_use : Varset.t array;
  cpu_def : Varset.t array;
  gpu_use : Varset.t array;
  gpu_def : Varset.t array;
  host_read : Varset.t array;
      (** cpu_use by genuine host statements (transfers excluded) *)
  host_write : Varset.t array;
      (** cpu_def by genuine host statements (transfers excluded): the
          events that make the GPU copy stale *)
  kern_read : Varset.t array;
      (** gpu_use by kernels (transfers excluded) *)
  kern_write : Varset.t array;
      (** gpu_def by kernels (transfers excluded): the events that make the
          CPU copy stale *)
  name_read : Varset.t array;
      (** host-accessed array/pointer *names* (unresolved); runtime checks
          placed on names resolve to the dynamic root, which is what lets the
          tool stay precise where static alias analysis cannot *)
  name_write : Varset.t array;
  is_kernel : bool array;  (** node is a kernel launch *)
}

(* Arrays touched by a host expression / statement, resolved through
   [alias]. With [through_aliases = false], accesses made via ambiguous
   pointers are dropped — modelling the compiler that cannot see through
   unresolved aliases (the source of Table III's incorrect suggestions). *)
let stmt_accesses ~alias ~through_aliases s =
  let acc = Regions.of_stmt ~alias s in
  let strip set =
    if through_aliases then set
    else
      (* Remove roots whose only access may come via an ambiguous pointer:
         conservatively drop roots reachable from ambiguous pointers. *)
      Varset.fold
        (fun amb set ->
          Varset.diff set (Alias.resolve alias amb))
        acc.Regions.ambiguous set
  in
  (strip acc.Regions.arrays_read, strip acc.Regions.arrays_written,
   acc.Regions.raw_read, acc.Regions.raw_written)

let stmt_arrays ~alias ~through_aliases s =
  let r, w, _, _ = stmt_accesses ~alias ~through_aliases s in
  (r, w)

let expr_arrays ~alias ~through_aliases e =
  stmt_arrays ~alias ~through_aliases (Ast.mk_stmt (Ast.Sexpr e))

(** Compute access sets for every CFG node.  [tracked] limits the domain. *)
let access_sets (tp : Tprog.t) (cfg : t) ~through_aliases =
  let n = Graph.size cfg.graph in
  let s =
    { cpu_use = Array.make n Varset.empty;
      cpu_def = Array.make n Varset.empty;
      gpu_use = Array.make n Varset.empty;
      gpu_def = Array.make n Varset.empty;
      host_read = Array.make n Varset.empty;
      host_write = Array.make n Varset.empty;
      kern_read = Array.make n Varset.empty;
      kern_write = Array.make n Varset.empty;
      name_read = Array.make n Varset.empty;
      name_write = Array.make n Varset.empty;
      is_kernel = Array.make n false }
  in
  let restrict set = Varset.inter set tp.tracked in
  let alias = tp.alias in
  (* A name is relevant when it may denote a tracked root. *)
  let restrict_names set =
    Varset.filter
      (fun v ->
        not (Varset.is_empty
               (Varset.inter (Alias.resolve alias v) tp.tracked)))
      set
  in
  let host i (r, w, rr, rw) =
    s.cpu_use.(i) <- restrict r;
    s.cpu_def.(i) <- restrict w;
    s.host_read.(i) <- restrict r;
    s.host_write.(i) <- restrict w;
    s.name_read.(i) <- restrict_names rr;
    s.name_write.(i) <- restrict_names rw
  in
  for i = 0 to n - 1 do
    match cfg.payload.(i) with
    | Nentry | Nexit -> ()
    | Ncond e ->
        host i
          (stmt_accesses ~alias ~through_aliases
             (Ast.mk_stmt (Ast.Sexpr e)))
    | Nhost_frag st -> host i (stmt_accesses ~alias ~through_aliases st)
    | Nstmt ts -> (
        match ts.tkind with
        | Thost st -> host i (stmt_accesses ~alias ~through_aliases st)
        | Tlaunch (k, _) ->
            let kern = tp.kernels.(k) in
            s.gpu_use.(i) <- restrict kern.k_arrays_read;
            s.gpu_def.(i) <- restrict kern.k_arrays_written;
            s.kern_read.(i) <- s.gpu_use.(i);
            s.kern_write.(i) <- s.gpu_def.(i);
            s.is_kernel.(i) <- true
        | Txfer x -> (
            match x.x_dir with
            | H2D ->
                s.cpu_use.(i) <- restrict (Varset.singleton x.x_var);
                s.gpu_def.(i) <- restrict (Varset.singleton x.x_var)
            | D2H ->
                s.gpu_use.(i) <- restrict (Varset.singleton x.x_var);
                s.cpu_def.(i) <- restrict (Varset.singleton x.x_var))
        | Talloc _ | Tfree _ | Twait _ | Tcheck _ | Tif _ | Twhile _
        | Tfor _ | Tblock _ -> ())
  done;
  s

(** Kernel-launch (Tlaunch) nodes. *)
let kernel_nodes cfg sets =
  List.filter (fun i -> sets.is_kernel.(i))
    (Array.to_list (Graph.nodes cfg.graph))
