(** Kernel outlining: turn OpenACC compute regions into {!Tprog.kernel}s.

    Each top-level loop of a compute region becomes one GPU kernel (named
    [<function>_kernel<N>], as OpenARC does); straight-line statements
    inside a [kernels] region become single-thread kernels.  Outlining also
    classifies every scalar of the body — private, firstprivate, reduction,
    or (when clauses are missing and automatic recognition is off) *raced*,
    with the race kind the simulator manifests (§IV-B). *)

exception Unsupported of Minic.Loc.t * string

(** Loop induction variables of a body (predetermined private). *)
val induction_vars : string -> Minic.Ast.block -> Analysis.Varset.t

(** Outline the kernels of one compute region, in execution order.
    [fresh] allocates kernel ids; [region_sid] is the [sid] of the carrying
    [Sacc] statement (the anchor for verification and directive edits). *)
val outline_region :
  opts:Options.t -> alias:Analysis.Alias.t -> fname:string ->
  fresh:(unit -> int) -> region_sid:int -> Minic.Ast.directive ->
  Minic.Ast.stmt -> Tprog.kernel list
