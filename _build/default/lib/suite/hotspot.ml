(** HOTSPOT: thermal simulation stencil (Rodinia).

    One kernel per time step over a genuine 2-D grid, double-buffered across
    the planes of a 3-D temperature array with a host-flipped plane index
    (no pointer aliasing, unlike BACKPROP/LUD).  The per-cell temperature
    delta is a write-first private temporary. *)

let kernels = 1
let private_ = 1
let reduction = 0

let body = {|
int main() {
  int dim = 24;
  int steps = 12;
  float temp[2][dim][dim];
  float power[dim][dim];
  float delta;
  int src = 0;
  int dst = 1;
  int tmpplane = 0;
  for (int i = 0; i < dim; i++) {
    for (int j = 0; j < dim; j++) {
      temp[0][i][j] = 320.0 + float((i * dim + j) % 17) * 0.5;
      temp[1][i][j] = 0.0;
      power[i][j] = 0.001 * float((i * dim + j) % 7);
    }
  }
  __REGION__
  float maxt = 0.0;
  for (int i = 0; i < dim; i++) {
    for (int j = 0; j < dim; j++) {
      maxt = max(maxt, temp[src][i][j]);
    }
  }
  return 0;
}
|}

let loop = {|for (int t = 0; t < steps; t++) {
    #pragma acc kernels loop gang worker private(delta)
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        delta = power[i][j];
        if (i > 0) { delta = delta + 0.1 * (temp[src][i - 1][j] - temp[src][i][j]); }
        if (i < dim - 1) { delta = delta + 0.1 * (temp[src][i + 1][j] - temp[src][i][j]); }
        if (j > 0) { delta = delta + 0.1 * (temp[src][i][j - 1] - temp[src][i][j]); }
        if (j < dim - 1) { delta = delta + 0.1 * (temp[src][i][j + 1] - temp[src][i][j]); }
        temp[dst][i][j] = temp[src][i][j] + delta;
      }
    }
    tmpplane = src;
    src = dst;
    dst = tmpplane;
  }|}

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let region_opt =
  "#pragma acc data copy(temp) copyin(power)\n  {\n  " ^ loop ^ "\n  }"

let bench : Bench_def.t =
  { name = "HOTSPOT";
    description =
      "Rodinia HOTSPOT: 2-D thermal stencil with double-buffered planes";
    source = subst loop;
    optimized = subst region_opt;
    outputs = [ "temp"; "maxt" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
