(** BACKPROP: Rodinia neural-network training.

    Four kernels (two forward passes with private accumulators, an output
    error sum reduction, a weight update).  The output-layer weights are
    double-buffered through the pointers [w2]/[w2prev], swapped each epoch —
    the unresolved aliasing that makes the compiler's may-dead facts about
    [w2a]/[w2b] unreliable and produces Table III's incorrect iteration:
    the tool suggests that keeping the weight planes device-only is safe,
    but the final host checksum reads one of them through the pointer. *)

let kernels = 4
let private_ = 2
let reduction = 1

let body = {|
int main() {
  int ni = 32;
  int nh = 16;
  int no = 8;
  int epochs = 6;
  float input[ni];
  float hidden[nh];
  float output[no];
  float target[no];
  float delta[no];
  float w1[ni * nh];
  float w2a[nh * no];
  float w2b[nh * no];
  float *w2;
  float *w2prev;
  float *tmpp;
  float sumv;
  float sumo;
  float err = 0.0;
  float lr = 0.05;
  for (int i = 0; i < ni; i++) { input[i] = 0.1 * float(i % 10); }
  for (int j = 0; j < no; j++) { target[j] = 0.5 + 0.05 * float(j); }
  for (int i = 0; i < ni * nh; i++) { w1[i] = 0.01 * float(i % 13); }
  for (int i = 0; i < nh * no; i++) {
    w2a[i] = 0.02 * float(i % 7);
    w2b[i] = 0.02 * float(i % 7);
  }
  w2 = w2a;
  w2prev = w2b;
  __REGION__
  float checksum = 0.0;
  for (int i = 0; i < nh * no; i++) { checksum = checksum + w2[i]; }
  return 0;
}
|}

let region = {|for (int e = 0; e < epochs; e++) {
    #pragma acc kernels loop gang worker private(sumv)
    for (int j = 0; j < nh; j++) {
      sumv = 0.0;
      for (int i = 0; i < ni; i++) {
        sumv = sumv + input[i] * w1[i * nh + j];
      }
      hidden[j] = 1.0 / (1.0 + exp(0.0 - sumv));
    }
    #pragma acc kernels loop gang worker private(sumo)
    for (int j = 0; j < no; j++) {
      sumo = 0.0;
      for (int i = 0; i < nh; i++) {
        sumo = sumo + hidden[i] * w2[i * no + j];
      }
      output[j] = 1.0 / (1.0 + exp(0.0 - sumo));
    }
    err = 0.0;
    #pragma acc kernels loop gang worker reduction(+:err)
    for (int j = 0; j < no; j++) {
      delta[j] = (target[j] - output[j]) * output[j] * (1.0 - output[j]);
      err = err + fabs(target[j] - output[j]);
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < nh; i++) {
      for (int j = 0; j < no; j++) {
        w2prev[i * no + j] = w2[i * no + j] + lr * delta[j] * hidden[i];
      }
    }
    tmpp = w2;
    w2 = w2prev;
    w2prev = tmpp;
  }|}

let region_opt =
  "#pragma acc data copyin(input, target, w1) copy(w2a, w2b) \
   create(hidden, output, delta)\n  {\n  " ^ region ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "BACKPROP";
    description =
      "Rodinia BACKPROP: NN training with pointer-swapped weight planes";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "checksum"; "err" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
