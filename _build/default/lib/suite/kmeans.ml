(** KMEANS: Rodinia k-means clustering over multi-feature points.

    Two kernels with private data (nearest-centroid search over the feature
    dimensions, per-point error); the centroids are recomputed on the host
    every iteration, so the optimized port needs a per-iteration
    [update device(centroids)] — the refinement the interactive tool
    discovers via missing-transfer errors after the data region appears. *)

let kernels = 2
let private_ = 2
let reduction = 0

let body = {|
int main() {
  int npts = 128;
  int nclu = 4;
  int nf = 3;
  int iters = 6;
  float pts[npts][nf];
  float centroids[nclu][nf];
  int membership[npts];
  float errs[npts];
  float bestd;
  int bestc;
  float dsum;
  float dmin;
  for (int i = 0; i < npts; i++) {
    for (int f = 0; f < nf; f++) {
      pts[i][f] = float(((i * 37 + f * 11) % 100)) * 0.01;
    }
  }
  for (int c = 0; c < nclu; c++) {
    for (int f = 0; f < nf; f++) {
      centroids[c][f] = 0.25 * float(c) + 0.05 * float(f);
    }
  }
  __REGION__
  float toterr = 0.0;
  for (int i = 0; i < npts; i++) { toterr = toterr + errs[i]; }
  return 0;
}
|}

let region = {|for (int it = 0; it < iters; it++) {
    #pragma acc kernels loop gang worker private(bestd, bestc, dsum)
    for (int i = 0; i < npts; i++) {
      bestd = 1000000.0;
      bestc = 0;
      for (int c = 0; c < nclu; c++) {
        dsum = 0.0;
        for (int f = 0; f < nf; f++) {
          dsum = dsum
                 + (pts[i][f] - centroids[c][f])
                   * (pts[i][f] - centroids[c][f]);
        }
        if (dsum < bestd) {
          bestd = dsum;
          bestc = c;
        }
      }
      membership[i] = bestc;
    }
    #pragma acc kernels loop gang worker private(dmin)
    for (int i = 0; i < npts; i++) {
      dmin = 0.0;
      for (int f = 0; f < nf; f++) {
        dmin = dmin
               + (pts[i][f] - centroids[membership[i]][f])
                 * (pts[i][f] - centroids[membership[i]][f]);
      }
      errs[i] = dmin;
    }
    #pragma acc update host(membership)
    for (int c = 0; c < nclu; c++) {
      float cnt = 0.0;
      for (int f = 0; f < nf; f++) {
        float s = 0.0;
        cnt = 0.0;
        for (int i = 0; i < npts; i++) {
          if (membership[i] == c) {
            s = s + pts[i][f];
            cnt = cnt + 1.0;
          }
        }
        if (cnt > 0.0) { centroids[c][f] = s / cnt; }
      }
    }
  }|}

let region_opt =
  "#pragma acc data copyin(pts, centroids) create(membership) \
   copyout(errs)\n  {\n    for (int it = 0; it < iters; it++) {\n      \
   #pragma acc update device(centroids)\n"
  ^ Str_util.replace ~needle:"for (int it = 0; it < iters; it++) {"
      ~with_:"" region
  ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "KMEANS";
    description =
      "Rodinia KMEANS: multi-feature clustering with host centroid update";
    outputs = [ "toterr"; "centroids" ];
    source = subst region;
    optimized = subst region_opt;
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
