(** SPMUL: sparse matrix-vector multiplication (CSR), iterated as in a
    power-method kernel benchmark.  The per-row accumulator [t] is
    write-first and therefore automatically privatized; with recognition
    disabled it becomes a latent race (Table II). *)

let kernels = 2
let private_ = 1
let reduction = 0

(* A banded sparse matrix is synthesized in Mini-C: row r has up to 5
   nonzeros at columns r-2..r+2 with deterministic values. *)
let body = {|
int main() {
  int nr = 512;
  int band = 2;
  int maxnnz = nr * 5;
  int rowptr[nr + 1];
  int col[maxnnz];
  float val[maxnnz];
  float x[nr];
  float y[nr];
  float t;
  int nnz = 0;
  for (int r = 0; r < nr; r++) {
    rowptr[r] = nnz;
    for (int c = r - band; c <= r + band; c++) {
      if (c >= 0 && c < nr) {
        col[nnz] = c;
        val[nnz] = 1.0 / (1.0 + float(abs(r - c)));
        nnz = nnz + 1;
      }
    }
  }
  rowptr[nr] = nnz;
  for (int i = 0; i < nr; i++) { x[i] = 1.0 + float(i % 5) * 0.1; }
  __REGION__
  float norm = 0.0;
  for (int i = 0; i < nr; i++) { norm = norm + x[i] * x[i]; }
  return 0;
}
|}

let region_unopt = {|for (int it = 0; it < 8; it++) {
    #pragma acc kernels loop gang worker private(t)
    for (int r = 0; r < nr; r++) {
      t = 0.0;
      for (int j = rowptr[r]; j < rowptr[r + 1]; j++) {
        t = t + val[j] * x[col[j]];
      }
      y[r] = t;
    }
    #pragma acc kernels loop gang worker
    for (int r = 0; r < nr; r++) {
      x[r] = y[r] * 0.2;
    }
  }|}

let region_opt = {|#pragma acc data copyin(rowptr, col, val) copy(x) create(y)
  {
    for (int it = 0; it < 8; it++) {
      #pragma acc kernels loop gang worker private(t)
      for (int r = 0; r < nr; r++) {
        t = 0.0;
        for (int j = rowptr[r]; j < rowptr[r + 1]; j++) {
          t = t + val[j] * x[col[j]];
        }
        y[r] = t;
      }
      #pragma acc kernels loop gang worker
      for (int r = 0; r < nr; r++) {
        x[r] = y[r] * 0.2;
      }
    }
  }|}

let subst region =
  Str_util.replace ~needle:"__REGION__" ~with_:region body

let bench : Bench_def.t =
  { name = "SPMUL";
    description = "CSR sparse matrix-vector product kernel benchmark";
    source = subst region_unopt;
    optimized = subst region_opt;
    outputs = [ "x"; "norm" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
