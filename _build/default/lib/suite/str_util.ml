(** Tiny string helper shared by the benchmark sources. *)

(** Replace every occurrence of [needle] in [s] by [with_]. *)
let replace ~needle ~with_ s =
  let nl = String.length needle and sl = String.length s in
  let buf = Buffer.create sl in
  let rec go i =
    if i > sl - nl then Buffer.add_substring buf s i (sl - i)
    else if String.sub s i nl = needle then begin
      Buffer.add_string buf with_;
      go (i + nl)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf
