(** Benchmark registry interface.

    Each of the twelve OpenACC benchmarks of the paper's evaluation (§IV-A:
    JACOBI, SPMUL, NAS EP and CG, Rodinia BACKPROP, BFS, CFD, SRAD, HOTSPOT,
    KMEANS, LUD, NW) provides two Mini-C/OpenACC variants:

    - [source]: the *unoptimized* port — compute regions annotated, but
      memory management left to the OpenACC default scheme (the naive
      copy-around-every-kernel baseline of Figure 1 and the §IV-C starting
      point);
    - [optimized]: the manually tuned port with data regions and targeted
      [update] directives (the normalization baseline of Figure 1 and the
      gold standard for Table III's uncaught-redundancy column).

    [outputs] are the host variables that define observable correctness;
    [expected_kernels] documents the kernel census used by Table II. *)

type t = {
  name : string;
  description : string;
  source : string;
  optimized : string;
  outputs : string list;
  expected_kernels : int;
  expected_private : int;  (** kernels containing private data *)
  expected_reduction : int;  (** kernels containing reduction *)
}

let scale_note =
  "Workload sizes are scaled to interpreter speed; structure (kernel count, \
   data-movement pattern, directive pitfalls) follows the original codes."
