(** NW: Rodinia Needleman-Wunsch sequence alignment.

    Wavefront traversal of the 2-D score matrix: one kernel for the
    expanding upper-left diagonals (private temporary for the three-way
    max) and one for the shrinking lower-right diagonals (max computed
    inline). *)

let kernels = 2
let private_ = 1
let reduction = 0

let body = {|
int main() {
  int n = 48;
  int w = n + 1;
  float sm[w][w];
  int seq1[n];
  int seq2[n];
  float t;
  for (int i = 0; i < n; i++) {
    seq1[i] = (i * 7 + 3) % 4;
    seq2[i] = (i * 11 + 1) % 4;
  }
  for (int i = 0; i < w; i++) {
    for (int j = 0; j < w; j++) { sm[i][j] = 0.0; }
  }
  for (int i = 0; i < w; i++) {
    sm[i][0] = 0.0 - float(i);
    sm[0][i] = 0.0 - float(i);
  }
  __REGION__
  float score = sm[n][n];
  return 0;
}
|}

let region = {|for (int d = 2; d <= n; d++) {
    #pragma acc kernels loop gang worker private(t)
    for (int i = 1; i < d; i++) {
      t = sm[i - 1][d - i - 1]
          + ((seq1[i - 1] == seq2[d - i - 1]) ? 2.0 : (0.0 - 1.0));
      t = max(t, sm[i - 1][d - i] - 1.0);
      t = max(t, sm[i][d - i - 1] - 1.0);
      sm[i][d - i] = t;
    }
  }
  for (int d = n + 1; d <= 2 * n; d++) {
    #pragma acc kernels loop gang worker
    for (int i = d - n; i <= n; i++) {
      sm[i][d - i] =
        max(max(sm[i - 1][d - i - 1]
                + ((seq1[i - 1] == seq2[d - i - 1]) ? 2.0 : (0.0 - 1.0)),
                sm[i - 1][d - i] - 1.0),
            sm[i][d - i - 1] - 1.0);
    }
  }|}

let region_opt =
  "#pragma acc data copy(sm) copyin(seq1, seq2)\n  {\n  " ^ region ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "NW";
    description = "Rodinia NW: Needleman-Wunsch wavefront alignment";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "sm"; "score" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
