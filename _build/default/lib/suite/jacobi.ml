(** JACOBI: 1-D Jacobi relaxation, the paper's running example
    (Listings 3 and 4).

    Two kernels per sweep; the unoptimized port downloads the intermediate
    array [b] every iteration (the [memcpyout(b)] of Listing 3) although the
    host only reads it after the loop — exactly the deferred-copy redundancy
    the hoisted GPU write-check exposes. *)

let kernels = 2
let private_ = 0
let reduction = 0

let source =
  {|
int main() {
  int n = 1024;
  int iters = 20;
  float a[n];
  float b[n];
  for (int i = 0; i < n; i++) {
    a[i] = float(i % 13) * 0.25 + 1.0;
    b[i] = 0.0;
  }
  for (int k = 0; k < iters; k++) {
    #pragma acc kernels loop gang worker
    for (int i = 1; i < n - 1; i++) {
      b[i] = 0.5 * (a[i - 1] + a[i + 1]);
    }
    #pragma acc kernels loop gang worker
    for (int i = 1; i < n - 1; i++) {
      a[i] = b[i];
    }
    #pragma acc update host(b)
  }
  float resid = 0.0;
  for (int i = 0; i < n; i++) {
    resid = resid + fabs(b[i] - a[i]);
  }
  return 0;
}
|}

let optimized =
  {|
int main() {
  int n = 1024;
  int iters = 20;
  float a[n];
  float b[n];
  for (int i = 0; i < n; i++) {
    a[i] = float(i % 13) * 0.25 + 1.0;
    b[i] = 0.0;
  }
  #pragma acc data copy(a) copyout(b)
  {
    for (int k = 0; k < iters; k++) {
      #pragma acc kernels loop gang worker
      for (int i = 1; i < n - 1; i++) {
        b[i] = 0.5 * (a[i - 1] + a[i + 1]);
      }
      #pragma acc kernels loop gang worker
      for (int i = 1; i < n - 1; i++) {
        a[i] = b[i];
      }
    }
  }
  float resid = 0.0;
  for (int i = 0; i < n; i++) {
    resid = resid + fabs(b[i] - a[i]);
  }
  return 0;
}
|}

let bench : Bench_def.t =
  { name = "JACOBI";
    description = "1-D Jacobi relaxation kernel benchmark (paper Listing 3)";
    source; optimized;
    outputs = [ "a"; "b"; "resid" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
