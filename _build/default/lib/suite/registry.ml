(** The twelve benchmarks of the paper's evaluation (§IV-A), in the order
    of its figures and tables. *)

let all : Bench_def.t list =
  [ Backprop.bench; Bfs.bench; Cfd.bench; Cg.bench; Ep.bench; Hotspot.bench;
    Jacobi.bench; Kmeans.bench; Lud.bench; Nw.bench; Spmul.bench; Srad.bench ]

let find name =
  List.find_opt
    (fun (b : Bench_def.t) ->
      String.lowercase_ascii b.Bench_def.name = String.lowercase_ascii name)
    all

let names = List.map (fun (b : Bench_def.t) -> b.Bench_def.name) all

(** Expected totals of Table II's census rows. *)
let total_kernels =
  List.fold_left (fun a b -> a + b.Bench_def.expected_kernels) 0 all

let total_private =
  List.fold_left (fun a b -> a + b.Bench_def.expected_private) 0 all

let total_reduction =
  List.fold_left (fun a b -> a + b.Bench_def.expected_reduction) 0 all
