(** CG: NAS conjugate-gradient benchmark (the paper's Listing 1).

    Nine kernels: sparse mat-vec products with private accumulators, two
    sum reductions, and the write-only, partially-written array [q] whose
    deadness the paper uses to motivate may-dead warnings.  The host
    recomputes [rho] from [r] every inner iteration, so one download of [r]
    per [cgit] step is genuinely required. *)

let kernels = 9
let private_ = 2
let reduction = 2

let body = {|
int main() {
  int n = 256;
  int band = 2;
  int maxnnz = n * 5;
  int rowptr[n + 1];
  int col[maxnnz];
  float aval[maxnnz];
  float x[n];
  float z[n];
  float p[n];
  float q[n];
  float r[n];
  float w[n];
  float t;
  float t2;
  float rho = 0.0;
  float d = 0.0;
  float alpha = 0.0;
  float beta = 0.0;
  float rho0 = 0.0;
  int nnz = 0;
  for (int row = 0; row < n; row++) {
    rowptr[row] = nnz;
    for (int c = row - band; c <= row + band; c++) {
      if (c >= 0 && c < n) {
        col[nnz] = c;
        aval[nnz] = (row == c) ? 4.0 : -1.0 / (1.0 + float(abs(row - c)));
        nnz = nnz + 1;
      }
    }
  }
  rowptr[n] = nnz;
  for (int i = 0; i < n; i++) {
    x[i] = 1.0 + float(i % 3) * 0.1;
    q[i] = 0.0;
  }
  __REGION__
  float xnorm = 0.0;
  for (int i = 0; i < n; i++) { xnorm = xnorm + x[i] * x[i]; }
  return 0;
}
|}

let region = {|for (int it = 0; it < 3; it++) {
    #pragma acc kernels loop gang worker
    for (int j = 0; j < n; j++) {
      q[j] = 0.0;
      z[j] = 0.0;
      r[j] = x[j];
      p[j] = x[j];
    }
    rho = 0.0;
    #pragma acc kernels loop gang worker reduction(+:rho)
    for (int j = 0; j < n; j++) {
      rho = rho + r[j] * r[j];
    }
    for (int cgit = 0; cgit < 4; cgit++) {
      #pragma acc kernels loop gang worker private(t)
      for (int row = 0; row < n; row++) {
        t = 0.0;
        for (int k = rowptr[row]; k < rowptr[row + 1]; k++) {
          t = t + aval[k] * p[col[k]];
        }
        q[row] = t;
      }
      d = 0.0;
      #pragma acc kernels loop gang worker reduction(+:d)
      for (int j = 0; j < n; j++) {
        d = d + p[j] * q[j];
      }
      alpha = rho / d;
      rho0 = rho;
      #pragma acc kernels loop gang worker
      for (int j = 0; j < n; j++) {
        z[j] = z[j] + alpha * p[j];
        r[j] = r[j] - alpha * q[j];
      }
      #pragma acc update host(r)
      rho = 0.0;
      for (int j = 0; j < n; j++) {
        rho = rho + r[j] * r[j];
      }
      beta = rho / rho0;
      #pragma acc kernels loop gang worker
      for (int j = 0; j < n; j++) {
        p[j] = r[j] + beta * p[j];
      }
    }
    #pragma acc kernels loop gang worker private(t2)
    for (int row = 0; row < n; row++) {
      t2 = 0.0;
      for (int k = rowptr[row]; k < rowptr[row + 1]; k++) {
        t2 = t2 + aval[k] * z[col[k]];
      }
      w[row] = t2;
    }
    #pragma acc kernels loop gang worker
    for (int j = 0; j < n; j++) {
      x[j] = 0.9 * x[j] + 0.1 * w[j];
    }
    #pragma acc kernels loop gang worker
    for (int j = 0; j < n; j++) {
      z[j] = z[j] * 0.5;
    }
  }|}

let region_opt =
  "#pragma acc data copyin(rowptr, col, aval) copy(x) create(q, z, p, w, r)\n  {\n  " ^ region ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "CG";
    description =
      "NAS CG: conjugate gradient with GPU-only arrays (paper Listing 1)";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "x"; "xnorm"; "rho" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
