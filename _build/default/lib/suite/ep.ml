(** EP: NAS "embarrassingly parallel" pseudo-random pair benchmark.

    Kernel 0 seeds a per-sample state array through a write-first temporary
    (private data); kernel 1 accumulates a Gaussian-tally statistic as a sum
    reduction with no temporaries, so that under Table II's fault injection
    kernel 0 incurs a latent race and kernel 1 an active one. *)

let kernels = 2
let private_ = 1
let reduction = 1

let body = {|
int main() {
  int n = 4096;
  int seeds[n];
  int s;
  float acc1 = 0.0;
  __REGION__
  float result = acc1 / float(n);
  return 0;
}
|}

let compute = {|#pragma acc kernels loop gang worker private(s)
  for (int i = 0; i < n; i++) {
    s = (i * 2531011 + 331) % 65536;
    s = (s * 1103 + 12345) % 65536;
    seeds[i] = s;
  }
  #pragma acc kernels loop gang worker reduction(+:acc1)
  for (int i = 0; i < n; i++) {
    acc1 = acc1 + float((seeds[i] * 214013 + 2531011) % 10007) * 0.0001;
  }|}

let compute_opt = {|#pragma acc data create(seeds)
  {
    #pragma acc kernels loop gang worker private(s)
    for (int i = 0; i < n; i++) {
      s = (i * 2531011 + 331) % 65536;
      s = (s * 1103 + 12345) % 65536;
      seeds[i] = s;
    }
    #pragma acc kernels loop gang worker reduction(+:acc1)
    for (int i = 0; i < n; i++) {
      acc1 = acc1 + float((seeds[i] * 214013 + 2531011) % 10007) * 0.0001;
    }
  }|}

let subst region = Str_util.replace ~needle:"__REGION__" ~with_:region body

let bench : Bench_def.t =
  { name = "EP";
    description = "NAS EP: embarrassingly parallel random-pair statistic";
    source = subst compute;
    optimized = subst compute_opt;
    outputs = [ "acc1"; "result" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
