(** LUD: Rodinia LU decomposition.

    Three kernels per elimination step (pivot-row scaling and elimination
    with private temporaries, plus a statistics kernel).  Three per-step
    statistics vectors are double-buffered through pointers that the host
    swaps every step — three unresolved alias groups, which is why the tool
    issues three wrong may-dead suggestions on this benchmark before kernel
    verification reins it in (Table III: 3 incorrect iterations). *)

let kernels = 3
let private_ = 2
let reduction = 0

let body = {|
int main() {
  int n = 28;
  int steps = 8;
  float m[n * n];
  float sa[n];
  float sb[n];
  float da[n];
  float db[n];
  float ca[n];
  float cb[n];
  float *ps;
  float *psold;
  float *pd;
  float *pdold;
  float *pc;
  float *pcold;
  float *tmpp;
  float pv;
  float f;
  for (int i = 0; i < n * n; i++) {
    m[i] = 1.0 + float((i * 13) % 17) * 0.125;
  }
  for (int i = 0; i < n; i++) {
    sa[i] = 0.0; sb[i] = 0.0;
    da[i] = 0.0; db[i] = 0.0;
    ca[i] = 0.0; cb[i] = 0.0;
  }
  ps = sa; psold = sb;
  pd = da; pdold = db;
  pc = ca; pcold = cb;
  __REGION__
  float lusum = 0.0;
  float ssum = 0.0;
  float dsum = 0.0;
  float csum = 0.0;
  for (int i = 0; i < n * n; i++) { lusum = lusum + fabs(m[i]); }
  for (int i = 0; i < n; i++) {
    ssum = ssum + psold[i];
    dsum = dsum + pdold[i];
    csum = csum + pcold[i];
  }
  return 0;
}
|}

let region = {|for (int k = 0; k < steps; k++) {
    #pragma acc kernels loop gang worker private(pv)
    for (int j = k + 1; j < n; j++) {
      pv = m[k * n + k];
      m[k * n + j] = m[k * n + j] / (pv + 1.0);
    }
    #pragma acc kernels loop gang worker private(f)
    for (int i = k + 1; i < n; i++) {
      f = m[i * n + k] / (m[k * n + k] + 1.0);
      for (int j = k + 1; j < n; j++) {
        m[i * n + j] = m[i * n + j] - f * m[k * n + j];
      }
      m[i * n + k] = f;
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      ps[i] = psold[i] + fabs(m[i * n + k]);
      pd[i] = pdold[i] + ((i == k) ? fabs(m[k * n + k]) : 0.0);
      pc[i] = pcold[i] + fabs(m[k * n + i]);
    }
    tmpp = ps; ps = psold; psold = tmpp;
    tmpp = pd; pd = pdold; pdold = tmpp;
    tmpp = pc; pc = pcold; pcold = tmpp;
  }|}

let region_opt =
  "#pragma acc data copy(m, sa, sb, da, db, ca, cb)\n  {\n  " ^ region
  ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "LUD";
    description =
      "Rodinia LUD: LU decomposition with pointer-swapped statistics";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "lusum"; "ssum"; "dsum"; "csum" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
