(** CFD: Rodinia Euler solver (structure following euler3d).

    Nine kernels per time step: save-old, step factor and two flux kernels
    with private temporaries, two more flux kernels, and three update
    kernels.  A per-iteration download of the energy field feeds a
    diagnostics branch that is compiled in but disabled ([verbose = 0]);
    because the host *statically* touches [ener] inside the loop, the GPU
    write-check for it cannot be hoisted, and this is the one redundant
    transfer the scheme cannot expose (Table III: CFD's uncaught
    redundancy, §IV-C's "locally optimized checking" limitation). *)

let kernels = 9
let private_ = 3
let reduction = 0

let body = {|
int main() {
  int n = 64;
  int steps = 5;
  int verbose = 0;
  float dens[n];
  float momx[n];
  float momy[n];
  float ener[n];
  float dens_old[n];
  float momx_old[n];
  float momy_old[n];
  float ener_old[n];
  float sf[n];
  float fluxd[n];
  float fluxmx[n];
  float fluxmy[n];
  float fluxe[n];
  float t1;
  float t2;
  float t3;
  float vcheck = 0.0;
  for (int i = 0; i < n; i++) {
    dens[i] = 1.0 + 0.01 * float(i % 11);
    momx[i] = 0.1 * float(i % 7);
    momy[i] = 0.05 * float(i % 5);
    ener[i] = 2.0 + 0.01 * float(i % 13);
  }
  __REGION__
  float dsum = 0.0;
  float esum = 0.0;
  for (int i = 0; i < n; i++) {
    dsum = dsum + dens[i];
    esum = esum + ener[i];
  }
  return 0;
}
|}

let loop_kernels = {|#pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      dens_old[i] = dens[i];
      momx_old[i] = momx[i];
      momy_old[i] = momy[i];
      ener_old[i] = ener[i];
    }
    #pragma acc kernels loop gang worker private(t1)
    for (int i = 0; i < n; i++) {
      t1 = dens[i] * dens[i] + momx[i] * momx[i] + momy[i] * momy[i] + 0.1;
      sf[i] = 0.5 / sqrt(t1);
    }
    #pragma acc kernels loop gang worker private(t2)
    for (int i = 0; i < n; i++) {
      t2 = momx[i] + momy[i];
      fluxd[i] = t2 - dens[i] * 0.1;
    }
    #pragma acc kernels loop gang worker private(t3)
    for (int i = 0; i < n; i++) {
      t3 = (ener[i] + dens[i] * 0.4) / (dens[i] + 0.5);
      fluxmx[i] = momx[i] * t3;
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      fluxmy[i] = momy[i] * (ener[i] + dens[i] * 0.4) / (dens[i] + 0.5);
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      fluxe[i] = (momx[i] + momy[i]) * (ener[i] + 0.4) / (dens[i] + 0.5);
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      dens[i] = dens_old[i] + sf[i] * fluxd[i] * 0.01;
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      momx[i] = momx_old[i] + sf[i] * fluxmx[i] * 0.01;
      momy[i] = momy_old[i] + sf[i] * fluxmy[i] * 0.01;
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) {
      ener[i] = ener_old[i] + sf[i] * fluxe[i] * 0.01;
    }|}

let diagnostics = {|#pragma acc update host(ener)
    if (verbose == 1) {
      for (int i = 0; i < n; i++) { vcheck = vcheck + ener[i]; }
    }|}

let region =
  "for (int t = 0; t < steps; t++) {\n    " ^ loop_kernels ^ "\n    "
  ^ diagnostics ^ "\n  }"

(* The manual port drops the diagnostics download altogether (the human
   knows the branch is dead); the tool cannot prove it. *)
let region_opt =
  "#pragma acc data copy(dens, momx, momy, ener) \
   create(dens_old, momx_old, momy_old, ener_old, sf, fluxd, fluxmx, \
   fluxmy, fluxe)\n  {\n  for (int t = 0; t < steps; t++) {\n    "
  ^ loop_kernels ^ "\n    if (verbose == 1) {\n      \
     #pragma acc update host(ener)\n      \
     for (int i = 0; i < n; i++) { vcheck = vcheck + ener[i]; }\n    }\n  }\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "CFD";
    description =
      "Rodinia CFD: Euler solver with a dead diagnostics download";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "dsum"; "esum"; "dens"; "ener" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
