lib/suite/bench_def.ml:
