lib/suite/cg.ml: Bench_def Str_util
