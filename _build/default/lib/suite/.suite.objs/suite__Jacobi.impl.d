lib/suite/jacobi.ml: Bench_def
