lib/suite/str_util.ml: Buffer String
