lib/suite/kmeans.ml: Bench_def Str_util
