lib/suite/hotspot.ml: Bench_def Str_util
