lib/suite/ep.ml: Bench_def Str_util
