lib/suite/srad.ml: Bench_def Str_util
