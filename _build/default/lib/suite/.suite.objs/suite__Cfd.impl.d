lib/suite/cfd.ml: Bench_def Str_util
