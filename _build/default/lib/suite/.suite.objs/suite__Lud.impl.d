lib/suite/lud.ml: Bench_def Str_util
