lib/suite/backprop.ml: Bench_def Str_util
