lib/suite/registry.ml: Backprop Bench_def Bfs Cfd Cg Ep Hotspot Jacobi Kmeans List Lud Nw Spmul Srad String
