lib/suite/spmul.ml: Bench_def Str_util
