lib/suite/nw.ml: Bench_def Str_util
