lib/suite/bfs.ml: Bench_def Str_util
