(** Lexical tokens of Mini-C. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_FLOAT | KW_DOUBLE | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE
  | AMPAMP | BARBAR | BANG
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | QUESTION | COLON
  | PRAGMA of string  (** raw text following [#pragma], continuations joined *)
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | BANG -> "!"
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | QUESTION -> "?"
  | COLON -> ":"
  | PRAGMA s -> "#pragma " ^ s
  | EOF -> "<eof>"
