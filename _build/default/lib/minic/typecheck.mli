(** Type checker and symbol resolution for Mini-C.

    Rejects ill-typed programs with located errors and returns a type
    environment mapping, per function, every name in scope to its type.
    Mini-C is deliberately lenient about [int]/[float] mixing (implicit
    conversions, as in C); the OpenACC V1.0 runtime-library routines
    ([acc_*]) are built in. *)

module Smap : Map.S with type key = string

type fenv = Ast.typ Smap.t

type env = {
  funcs : Ast.func Smap.t;
  globals : Ast.typ Smap.t;
  vars : fenv Smap.t;  (** per-function: every name in scope anywhere *)
}

(** Builtin functions: name -> (arity, argument type, result type);
    [Tvoid] argument type means "numeric, either int or float". *)
val builtins : (string * (int * Ast.typ * Ast.typ)) list

val is_builtin : string -> bool

(** Check a program.  @raise Loc.Error on the first problem. *)
val check : Ast.program -> env

(** Types of all names in scope in a function ([main] includes globals).
    @raise Invalid_argument on unknown functions. *)
val function_vars : env -> string -> fenv

val var_type : env -> string -> string -> Ast.typ option

(** Is the name an array or pointer (device-memory relevant)? *)
val is_array_var : env -> string -> string -> bool
