(** Hand-written lexer for Mini-C.

    Produces the full token list for a source string in one pass.  [#pragma]
    lines are turned into a single {!Token.PRAGMA} token carrying the raw
    directive text; backslash line continuations inside a pragma are joined. *)

type lexed = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let loc_of st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Skip spaces and comments; stops before '#' so pragmas are tokenized. *)
let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_trivia st
  | '/' when peek2 st = '/' ->
      while (not (eof st)) && peek st <> '\n' do advance st done;
      skip_trivia st
  | '/' when peek2 st = '*' ->
      let start = loc_of st in
      advance st; advance st;
      let rec close () =
        if eof st then Loc.error start "unterminated comment"
        else if peek st = '*' && peek2 st = '/' then begin advance st; advance st end
        else begin advance st; close () end
      in
      close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let loc = loc_of st in
  while is_digit (peek st) do advance st done;
  let is_float = ref false in
  if peek st = '.' && is_digit (peek2 st) then begin
    is_float := true;
    advance st;
    while is_digit (peek st) do advance st done
  end;
  if peek st = 'e' || peek st = 'E' then begin
    is_float := true;
    advance st;
    if peek st = '+' || peek st = '-' then advance st;
    if not (is_digit (peek st)) then Loc.error (loc_of st) "malformed exponent";
    while is_digit (peek st) do advance st done
  end;
  let text = String.sub st.src start (st.pos - start) in
  let tok =
    if !is_float then Token.FLOAT_LIT (float_of_string text)
    else Token.INT_LIT (int_of_string text)
  in
  { tok; loc }

let keyword_of = function
  | "int" -> Some Token.KW_INT
  | "float" -> Some Token.KW_FLOAT
  | "double" -> Some Token.KW_DOUBLE
  | "void" -> Some Token.KW_VOID
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | _ -> None

let lex_ident st =
  let start = st.pos in
  let loc = loc_of st in
  while is_alnum (peek st) do advance st done;
  let text = String.sub st.src start (st.pos - start) in
  let tok =
    match keyword_of text with Some kw -> kw | None -> Token.IDENT text
  in
  { tok; loc }

(* Read a '#...' line: expect "# pragma <text>", join '\' continuations. *)
let lex_pragma st =
  let loc = loc_of st in
  advance st (* '#' *);
  let buf = Buffer.create 64 in
  let rec read_line () =
    match peek st with
    | '\n' | '\000' -> ()
    | '\\' when peek2 st = '\n' ->
        advance st; advance st;
        Buffer.add_char buf ' ';
        read_line ()
    | '\\' when peek2 st = '\r' ->
        advance st; advance st;
        if peek st = '\n' then advance st;
        Buffer.add_char buf ' ';
        read_line ()
    | c ->
        advance st;
        Buffer.add_char buf c;
        read_line ()
  in
  read_line ();
  let text = String.trim (Buffer.contents buf) in
  let text =
    if String.length text >= 6 && String.sub text 0 6 = "pragma" then
      String.trim (String.sub text 6 (String.length text - 6))
    else Loc.error loc "expected 'pragma' after '#'"
  in
  { tok = Token.PRAGMA text; loc }

let lex_operator st =
  let loc = loc_of st in
  let two tok = advance st; advance st; { tok; loc } in
  let one tok = advance st; { tok; loc } in
  match (peek st, peek2 st) with
  | '+', '+' -> two Token.PLUSPLUS
  | '+', '=' -> two Token.PLUSEQ
  | '-', '-' -> two Token.MINUSMINUS
  | '-', '=' -> two Token.MINUSEQ
  | '*', '=' -> two Token.STAREQ
  | '/', '=' -> two Token.SLASHEQ
  | '<', '=' -> two Token.LE
  | '>', '=' -> two Token.GE
  | '=', '=' -> two Token.EQEQ
  | '!', '=' -> two Token.NE
  | '&', '&' -> two Token.AMPAMP
  | '|', '|' -> two Token.BARBAR
  | '+', _ -> one Token.PLUS
  | '-', _ -> one Token.MINUS
  | '*', _ -> one Token.STAR
  | '/', _ -> one Token.SLASH
  | '%', _ -> one Token.PERCENT
  | '<', _ -> one Token.LT
  | '>', _ -> one Token.GT
  | '=', _ -> one Token.ASSIGN
  | '!', _ -> one Token.BANG
  | '(', _ -> one Token.LPAREN
  | ')', _ -> one Token.RPAREN
  | '{', _ -> one Token.LBRACE
  | '}', _ -> one Token.RBRACE
  | '[', _ -> one Token.LBRACKET
  | ']', _ -> one Token.RBRACKET
  | ',', _ -> one Token.COMMA
  | ';', _ -> one Token.SEMI
  | '?', _ -> one Token.QUESTION
  | ':', _ -> one Token.COLON
  | c, _ -> Loc.error loc "unexpected character %C" c

let next st =
  skip_trivia st;
  if eof st then { tok = Token.EOF; loc = loc_of st }
  else
    let c = peek st in
    if c = '#' then lex_pragma st
    else if is_digit c then lex_number st
    else if is_alpha c then lex_ident st
    else lex_operator st

(** Tokenize an entire source string. The result always ends with [EOF]. *)
let tokenize ~file src =
  let st = make ~file src in
  let rec loop acc =
    let t = next st in
    match t.tok with Token.EOF -> List.rev (t :: acc) | _ -> loop (t :: acc)
  in
  loop []
