(** Pretty-printer for Mini-C: emits source text that re-parses to a
    structurally equal AST (the round-trip property tested in the suite). *)

val binop_str : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val data_kind_str : Ast.data_kind -> string
val redop_str : Ast.redop -> string
val pp_subarray : Format.formatter -> Ast.subarray -> unit
val pp_clause : Format.formatter -> Ast.clause -> unit
val construct_str : Ast.construct -> string
val pp_directive : Format.formatter -> Ast.directive -> unit

(** [pp_stmt indent] prints a statement at the given indentation depth. *)
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit

val pp_block : int -> Format.formatter -> Ast.block -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
val directive_to_string : Ast.directive -> string
val stmt_to_string : Ast.stmt -> string
