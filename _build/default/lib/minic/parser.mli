(** Recursive-descent parser for Mini-C and its OpenACC pragmas.
    All entry points raise {!Loc.Error} on malformed input. *)

(** Parse the text following [#pragma] (e.g. ["acc kernels loop gang"]). *)
val parse_directive : loc:Loc.t -> string -> Ast.directive

(** Does this directive introduce a structured statement body? *)
val directive_has_body : Ast.directive -> bool

(** Parse a full Mini-C translation unit. *)
val parse_string : ?file:string -> string -> Ast.program

val parse_file : string -> Ast.program

(** Parse a single expression (tests and the CLI). *)
val expr_of_string : string -> Ast.expr
