lib/minic/typecheck.ml: Ast List Loc Map Option String
