lib/minic/loc.ml: Fmt Printexc
