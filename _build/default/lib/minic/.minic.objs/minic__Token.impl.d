lib/minic/token.ml:
