lib/minic/lexer.ml: Buffer List Loc String Token
