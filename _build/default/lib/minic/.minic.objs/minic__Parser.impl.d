lib/minic/parser.ml: Array Ast Lexer List Loc Token
