lib/minic/ast.ml: Float List Loc Option
