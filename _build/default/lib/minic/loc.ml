(** Source locations and located errors for the Mini-C front end. *)

type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string l = Fmt.str "%a" pp l

(** Raised by the lexer, parser and type checker on malformed input. *)
exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let () =
  Printexc.register_printer (function
    | Error (loc, msg) -> Some (Fmt.str "Mini-C error at %a: %s" pp loc msg)
    | _ -> None)
