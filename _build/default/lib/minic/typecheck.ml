(** Type checker and symbol resolution for Mini-C.

    Besides rejecting ill-typed programs, the checker returns a type
    environment [env] giving every function a map from variable names (params,
    locals, visible globals) to types.  Later compiler phases use it to
    distinguish arrays/pointers from scalars.  Mini-C is deliberately lenient
    about [int]/[float] mixing (implicit conversions, as in C). *)

open Ast

module Smap = Map.Make (String)

type fenv = typ Smap.t

type env = {
  funcs : func Smap.t;
  globals : typ Smap.t;
  vars : fenv Smap.t;  (** per-function: every name in scope anywhere *)
}

(** Builtin functions: name -> (arg count, arg type, result type).
    [Tvoid] argument type means "numeric, either int or float". *)
let builtins =
  [ ("sqrt", (1, Tfloat, Tfloat)); ("fabs", (1, Tfloat, Tfloat));
    ("exp", (1, Tfloat, Tfloat)); ("log", (1, Tfloat, Tfloat));
    ("sin", (1, Tfloat, Tfloat)); ("cos", (1, Tfloat, Tfloat));
    ("pow", (2, Tfloat, Tfloat)); ("floor", (1, Tfloat, Tfloat));
    ("ceil", (1, Tfloat, Tfloat));
    ("min", (2, Tvoid, Tvoid)); ("max", (2, Tvoid, Tvoid));
    ("abs", (1, Tint, Tint));
    ("float", (1, Tvoid, Tfloat)); ("int", (1, Tvoid, Tint));
    (* OpenACC V1.0 runtime library routines (all int -> int) *)
    ("acc_get_num_devices", (1, Tint, Tint));
    ("acc_set_device_type", (1, Tint, Tint));
    ("acc_get_device_type", (0, Tint, Tint));
    ("acc_set_device_num", (2, Tint, Tint));
    ("acc_get_device_num", (1, Tint, Tint));
    ("acc_async_test", (1, Tint, Tint));
    ("acc_async_test_all", (0, Tint, Tint));
    ("acc_async_wait", (1, Tint, Tint));
    ("acc_async_wait_all", (0, Tint, Tint));
    ("acc_init", (1, Tint, Tint));
    ("acc_shutdown", (1, Tint, Tint));
    ("acc_on_device", (1, Tint, Tint)) ]

let is_builtin name = List.mem_assoc name builtins

let rec base_scalar = function
  | Tarr (t, _) -> base_scalar t
  | Tptr t -> base_scalar t
  | t -> t

let is_numeric = function Tint | Tfloat -> true | Tvoid | Tarr _ | Tptr _ -> false
let is_indexable = function Tarr _ | Tptr _ -> true | Tvoid | Tint | Tfloat -> false

let typ_str = function
  | Tvoid -> "void" | Tint -> "int" | Tfloat -> "float"
  | Tarr _ -> "array" | Tptr _ -> "pointer"

type scope = { mutable frames : typ Smap.t list }

let push_frame sc = sc.frames <- Smap.empty :: sc.frames
let pop_frame sc =
  match sc.frames with
  | _ :: rest -> sc.frames <- rest
  | [] -> invalid_arg "Typecheck.pop_frame"

let lookup sc name =
  let rec go = function
    | [] -> None
    | fr :: rest -> (
        match Smap.find_opt name fr with Some t -> Some t | None -> go rest)
  in
  go sc.frames

let declare ~loc sc name typ =
  match sc.frames with
  | [] -> invalid_arg "Typecheck.declare"
  | fr :: rest ->
      if Smap.mem name fr then
        Loc.error loc "variable '%s' redeclared in the same scope" name;
      sc.frames <- Smap.add name typ fr :: rest

(* Check a program; raise [Loc.Error] on the first problem. *)
let check (prog : Ast.program) =
  let funcs =
    List.fold_left
      (fun acc -> function
        | Gfunc f ->
            if Smap.mem f.f_name acc then
              Loc.error f.f_loc "function '%s' redefined" f.f_name;
            Smap.add f.f_name f acc
        | Gvar _ -> acc)
      Smap.empty prog.globals
  in
  let globals =
    List.fold_left
      (fun acc -> function
        | Gvar (t, name, _) -> Smap.add name t acc
        | Gfunc _ -> acc)
      Smap.empty prog.globals
  in
  let all_vars = ref Smap.empty in

  let check_function f =
    let seen = ref Smap.empty in
    let sc = { frames = [ globals ] } in
    push_frame sc;
    let record name typ = seen := Smap.add name typ !seen in
    Smap.iter (fun name typ -> record name typ) globals;
    List.iter
      (fun p ->
        declare ~loc:f.f_loc sc p.p_name p.p_typ;
        record p.p_name p.p_typ)
      f.f_params;

    let rec expr_type ~loc e =
      match e with
      | Eint _ -> Tint
      | Efloat _ -> Tfloat
      | Evar v -> (
          match lookup sc v with
          | Some t -> t
          | None -> Loc.error loc "undeclared variable '%s'" v)
      | Eindex (a, i) ->
          let ta = expr_type ~loc a in
          let ti = expr_type ~loc i in
          if not (is_indexable ta) then
            Loc.error loc "indexing a non-array value of type %s" (typ_str ta);
          if ti <> Tint then
            Loc.error loc "array index must be int, found %s" (typ_str ti);
          (match ta with
          | Tarr (t, _) | Tptr t -> t
          | Tvoid | Tint | Tfloat -> assert false)
      | Eunop (Neg, a) ->
          let t = expr_type ~loc a in
          if not (is_numeric t) then
            Loc.error loc "negation of non-numeric %s" (typ_str t);
          t
      | Eunop (Not, a) ->
          let t = expr_type ~loc a in
          if not (is_numeric t) then
            Loc.error loc "logical not of non-numeric %s" (typ_str t);
          Tint
      | Ebinop (op, a, b) -> (
          let ta = expr_type ~loc a and tb = expr_type ~loc b in
          match op with
          | Add | Sub | Mul | Div | Mod ->
              if not (is_numeric ta && is_numeric tb) then
                Loc.error loc "arithmetic on non-numeric operands (%s, %s)"
                  (typ_str ta) (typ_str tb);
              if op = Mod && (ta <> Tint || tb <> Tint) then
                Loc.error loc "'%%' requires int operands";
              if ta = Tfloat || tb = Tfloat then Tfloat else Tint
          | Lt | Le | Gt | Ge | Eq | Ne ->
              if not (is_numeric ta && is_numeric tb) then
                Loc.error loc "comparison of non-numeric operands";
              Tint
          | Land | Lor ->
              if not (is_numeric ta && is_numeric tb) then
                Loc.error loc "logical op on non-numeric operands";
              Tint)
      | Ecall (name, args) -> (
          match List.assoc_opt name builtins with
          | Some (arity, argt, ret) ->
              if List.length args <> arity then
                Loc.error loc "builtin '%s' expects %d argument(s)" name arity;
              let targs = List.map (expr_type ~loc) args in
              List.iter
                (fun t ->
                  if not (is_numeric t) then
                    Loc.error loc "builtin '%s' applied to %s" name (typ_str t))
                targs;
              ignore argt;
              if ret = Tvoid then
                if List.exists (fun t -> t = Tfloat) targs then Tfloat else Tint
              else ret
          | None -> (
              match Smap.find_opt name funcs with
              | None -> Loc.error loc "call to undefined function '%s'" name
              | Some callee ->
                  if List.length args <> List.length callee.f_params then
                    Loc.error loc "function '%s' expects %d argument(s)" name
                      (List.length callee.f_params);
                  List.iter2
                    (fun arg p ->
                      let t = expr_type ~loc arg in
                      match (t, p.p_typ) with
                      | (Tint | Tfloat), (Tint | Tfloat) -> ()
                      | (Tarr (a, _) | Tptr a), (Tarr (b, _) | Tptr b)
                        when base_scalar a = base_scalar b -> ()
                      | _ ->
                          Loc.error loc
                            "argument type mismatch in call to '%s' (%s vs %s)"
                            name (typ_str t) (typ_str p.p_typ))
                    args callee.f_params;
                  callee.f_ret))
      | Econd (c, a, b) ->
          let tc = expr_type ~loc c in
          if not (is_numeric tc) then
            Loc.error loc "condition must be numeric";
          let ta = expr_type ~loc a and tb = expr_type ~loc b in
          if not (is_numeric ta && is_numeric tb) then
            Loc.error loc "branches of ?: must be numeric";
          if ta = Tfloat || tb = Tfloat then Tfloat else Tint
    in

    let rec lvalue_type ~loc = function
      | Lvar v -> (
          match lookup sc v with
          | Some t -> t
          | None -> Loc.error loc "undeclared variable '%s'" v)
      | Lindex (lv, i) -> (
          let t = lvalue_type ~loc lv in
          let ti = expr_type ~loc i in
          if ti <> Tint then Loc.error loc "array index must be int";
          match t with
          | Tarr (b, _) | Tptr b -> b
          | Tvoid | Tint | Tfloat ->
              Loc.error loc "indexing a non-array lvalue")
    in

    let check_var_exists ~loc v =
      if lookup sc v = None then
        Loc.error loc "directive references undeclared variable '%s'" v
    in
    let check_subarrays ~loc subs =
      List.iter
        (fun sa ->
          check_var_exists ~loc sa.sub_var;
          Option.iter (fun e -> ignore (expr_type ~loc e)) sa.sub_lo;
          Option.iter (fun e -> ignore (expr_type ~loc e)) sa.sub_len)
        subs
    in
    let check_clause ~loc = function
      | Cdata (_, subs) | Chost subs | Cdevice subs ->
          check_subarrays ~loc subs
      | Cprivate vs | Cfirstprivate vs | Creduction (_, vs) | Cuse_device vs ->
          List.iter (check_var_exists ~loc) vs
      | Cgang e | Cworker e | Cvector e | Casync e ->
          Option.iter (fun e -> ignore (expr_type ~loc e)) e
      | Cnum_gangs e | Cnum_workers e | Cvector_length e | Cif e ->
          ignore (expr_type ~loc e)
      | Ccollapse _ | Cseq | Cindependent -> ()
    in

    let rec check_stmt s =
      let loc = s.sloc in
      match s.skind with
      | Sskip | Sbreak | Scontinue -> ()
      | Sexpr e -> ignore (expr_type ~loc e)
      | Sassign (lv, e) ->
          let tl = lvalue_type ~loc lv in
          let te = expr_type ~loc e in
          (match (tl, te) with
          | (Tint | Tfloat), (Tint | Tfloat) -> ()
          | (Tptr a | Tarr (a, _)), (Tptr b | Tarr (b, _))
            when base_scalar a = base_scalar b -> ()
          | _ ->
              Loc.error loc "cannot assign %s to %s" (typ_str te) (typ_str tl))
      | Sdecl (typ, name, init) ->
          let rec check_extents = function
            | Tarr (t, ext) ->
                Option.iter
                  (fun e ->
                    if expr_type ~loc e <> Tint then
                      Loc.error loc "array extent must be int")
                  ext;
                check_extents t
            | Tptr t -> check_extents t
            | Tvoid | Tint | Tfloat -> ()
          in
          check_extents typ;
          Option.iter
            (fun e ->
              let te = expr_type ~loc e in
              match (typ, te) with
              | (Tint | Tfloat), (Tint | Tfloat) -> ()
              | (Tptr a | Tarr (a, _)), (Tptr b | Tarr (b, _))
                when base_scalar a = base_scalar b -> ()
              | _ ->
                  Loc.error loc "initializer type mismatch for '%s'" name)
            init;
          declare ~loc sc name typ;
          record name typ
      | Sif (c, b1, b2) ->
          ignore (expr_type ~loc c);
          check_block b1;
          check_block b2
      | Swhile (c, b) ->
          ignore (expr_type ~loc c);
          check_block b
      | Sfor (init, cond, step, b) ->
          push_frame sc;
          Option.iter check_stmt init;
          Option.iter (fun e -> ignore (expr_type ~loc e)) cond;
          Option.iter check_stmt step;
          check_block ~new_frame:false b;
          pop_frame sc
      | Sblock b -> check_block b
      | Sreturn e -> Option.iter (fun e -> ignore (expr_type ~loc e)) e
      | Sacc (d, body) ->
          List.iter (check_clause ~loc:d.dloc) d.clauses;
          (match d.dir with
          | Acc_wait (Some e) -> ignore (expr_type ~loc:d.dloc e)
          | Acc_cache subs -> check_subarrays ~loc:d.dloc subs
          | _ -> ());
          Option.iter check_stmt body
    and check_block ?(new_frame = true) b =
      if new_frame then push_frame sc;
      List.iter check_stmt b;
      if new_frame then pop_frame sc
    in
    check_block ~new_frame:false f.f_body;
    all_vars := Smap.add f.f_name !seen !all_vars
  in

  List.iter check_function (functions prog);
  if not (Smap.mem "main" funcs) then
    Loc.error Loc.dummy "program has no 'main' function";
  { funcs; globals; vars = !all_vars }

(** Types of all names in scope in [fname] ([main] included globals). *)
let function_vars env fname =
  match Smap.find_opt fname env.vars with
  | Some m -> m
  | None -> invalid_arg ("Typecheck.function_vars: unknown function " ^ fname)

let var_type env fname v = Smap.find_opt v (function_vars env fname)

let is_array_var env fname v =
  match var_type env fname v with
  | Some (Tarr _ | Tptr _) -> true
  | Some _ | None -> false
