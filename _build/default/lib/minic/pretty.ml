(** Pretty-printer for Mini-C: emits source text that re-parses to a
    structurally equal AST (the round-trip property tested in the suite). *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

(* Precedence: higher binds tighter. *)
let binop_prec = function
  | Mul | Div | Mod -> 7
  | Add | Sub -> 6
  | Lt | Le | Gt | Ge -> 5
  | Eq | Ne -> 4
  | Land -> 3
  | Lor -> 2

let rec pp_expr_prec prec ppf e =
  match e with
  | Eint n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Efloat f ->
      (* Keep enough digits to round-trip through float_of_string; negative
         literals are parenthesized so "-x" never fuses with a preceding
         operator. *)
      let s = Fmt.str "%.17g" f in
      let s =
        if String.contains s '.' || String.contains s 'e'
           || String.contains s 'n' (* nan/inf *)
        then s
        else s ^ ".0"
      in
      if f < 0.0 then Fmt.pf ppf "(%s)" s else Fmt.string ppf s
  | Evar v -> Fmt.string ppf v
  | Eindex (a, i) -> Fmt.pf ppf "%a[%a]" (pp_expr_prec 10) a (pp_expr_prec 0) i
  | Eunop (op, a) ->
      let s = match op with Neg -> "-" | Not -> "!" in
      (* A literal operand of unary minus must be parenthesized, or the
         parser would fold "-5" back into a negative literal. *)
      let pp_operand ppf a =
        match (op, a) with
        | Neg, (Eint _ | Efloat _ | Eunop (Neg, _)) ->
            Fmt.pf ppf "(%a)" (pp_expr_prec 0) a
        | _ -> pp_expr_prec 8 ppf a
      in
      if prec > 8 then Fmt.pf ppf "(%s%a)" s pp_operand a
      else Fmt.pf ppf "%s%a" s pp_operand a
  | Ebinop (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_str op)
          (pp_expr_prec (p + 1)) b
      in
      if prec > p then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Ecall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0)) args
  | Econd (cnd, a, b) ->
      let body ppf () =
        Fmt.pf ppf "%a ? %a : %a" (pp_expr_prec 2) cnd (pp_expr_prec 0) a
          (pp_expr_prec 1) b
      in
      if prec > 1 then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp_expr = pp_expr_prec 0

let rec pp_lvalue ppf = function
  | Lvar v -> Fmt.string ppf v
  | Lindex (lv, e) -> Fmt.pf ppf "%a[%a]" pp_lvalue lv pp_expr e

(* Base type + declarator suffix for a declaration of [typ] named [name]. *)
let rec pp_decl ppf (typ, name) =
  match typ with
  | Tvoid -> Fmt.pf ppf "void %s" name
  | Tint -> Fmt.pf ppf "int %s" name
  | Tfloat -> Fmt.pf ppf "float %s" name
  | Tptr base -> (
      match base with
      | Tint -> Fmt.pf ppf "int *%s" name
      | Tfloat -> Fmt.pf ppf "float *%s" name
      | Tvoid -> Fmt.pf ppf "void *%s" name
      | Tptr _ | Tarr _ -> Fmt.pf ppf "/* unsupported */ void *%s" name)
  | Tarr _ -> (
      (* collect all dimensions down to the scalar base *)
      let rec unroll acc = function
        | Tarr (t, ext) -> unroll (ext :: acc) t
        | t -> (List.rev acc, t)
      in
      let dims, base = unroll [] typ in
      let dim ppf = function
        | None -> Fmt.pf ppf "[]"
        | Some e -> Fmt.pf ppf "[%a]" pp_expr e
      in
      let pp_dims ppf () = List.iter (dim ppf) dims in
      match base with
      | Tint -> Fmt.pf ppf "int %s%a" name pp_dims ()
      | Tfloat -> Fmt.pf ppf "float %s%a" name pp_dims ()
      | Tvoid | Tptr _ | Tarr _ ->
          ignore (pp_decl : _ -> _ -> _);
          Fmt.pf ppf "/* unsupported array base */ float %s%a" name pp_dims ())

(* ---------------- directives ---------------- *)

let data_kind_str = function
  | Dk_copy -> "copy" | Dk_copyin -> "copyin" | Dk_copyout -> "copyout"
  | Dk_create -> "create" | Dk_present -> "present"
  | Dk_pcopy -> "pcopy" | Dk_pcopyin -> "pcopyin" | Dk_pcopyout -> "pcopyout"
  | Dk_pcreate -> "pcreate" | Dk_deviceptr -> "deviceptr"

let redop_str = function
  | Rsum -> "+" | Rprod -> "*" | Rmax -> "max" | Rmin -> "min"
  | Rland -> "&&" | Rlor -> "||"

let pp_subarray ppf { sub_var; sub_lo; sub_len } =
  match (sub_lo, sub_len) with
  | Some lo, Some len -> Fmt.pf ppf "%s[%a:%a]" sub_var pp_expr lo pp_expr len
  | _ -> Fmt.string ppf sub_var

let pp_subarrays = Fmt.list ~sep:(Fmt.any ", ") pp_subarray
let pp_idents = Fmt.list ~sep:(Fmt.any ", ") Fmt.string

let pp_clause ppf = function
  | Cdata (k, subs) -> Fmt.pf ppf "%s(%a)" (data_kind_str k) pp_subarrays subs
  | Cprivate vs -> Fmt.pf ppf "private(%a)" pp_idents vs
  | Cfirstprivate vs -> Fmt.pf ppf "firstprivate(%a)" pp_idents vs
  | Creduction (op, vs) ->
      Fmt.pf ppf "reduction(%s:%a)" (redop_str op) pp_idents vs
  | Cgang None -> Fmt.string ppf "gang"
  | Cgang (Some e) -> Fmt.pf ppf "gang(%a)" pp_expr e
  | Cworker None -> Fmt.string ppf "worker"
  | Cworker (Some e) -> Fmt.pf ppf "worker(%a)" pp_expr e
  | Cvector None -> Fmt.string ppf "vector"
  | Cvector (Some e) -> Fmt.pf ppf "vector(%a)" pp_expr e
  | Cnum_gangs e -> Fmt.pf ppf "num_gangs(%a)" pp_expr e
  | Cnum_workers e -> Fmt.pf ppf "num_workers(%a)" pp_expr e
  | Cvector_length e -> Fmt.pf ppf "vector_length(%a)" pp_expr e
  | Casync None -> Fmt.string ppf "async"
  | Casync (Some e) -> Fmt.pf ppf "async(%a)" pp_expr e
  | Cif e -> Fmt.pf ppf "if(%a)" pp_expr e
  | Ccollapse n -> Fmt.pf ppf "collapse(%d)" n
  | Cseq -> Fmt.string ppf "seq"
  | Cindependent -> Fmt.string ppf "independent"
  | Chost subs -> Fmt.pf ppf "host(%a)" pp_subarrays subs
  | Cdevice subs -> Fmt.pf ppf "device(%a)" pp_subarrays subs
  | Cuse_device vs -> Fmt.pf ppf "use_device(%a)" pp_idents vs

let construct_str = function
  | Acc_parallel -> "parallel"
  | Acc_kernels -> "kernels"
  | Acc_data -> "data"
  | Acc_host_data -> "host_data"
  | Acc_loop -> "loop"
  | Acc_parallel_loop -> "parallel loop"
  | Acc_kernels_loop -> "kernels loop"
  | Acc_update -> "update"
  | Acc_declare -> "declare"
  | Acc_wait _ -> "wait"
  | Acc_cache _ -> "cache"

let pp_directive ppf d =
  Fmt.pf ppf "#pragma acc %s" (construct_str d.dir);
  (match d.dir with
  | Acc_wait (Some e) -> Fmt.pf ppf "(%a)" pp_expr e
  | Acc_cache subs -> Fmt.pf ppf "(%a)" pp_subarrays subs
  | Acc_wait None | Acc_parallel | Acc_kernels | Acc_data | Acc_host_data
  | Acc_loop | Acc_parallel_loop | Acc_kernels_loop | Acc_update
  | Acc_declare -> ());
  List.iter (fun cl -> Fmt.pf ppf " %a" pp_clause cl) d.clauses

(* ---------------- statements ---------------- *)

let rec pp_stmt ind ppf s =
  let pad = String.make (ind * 2) ' ' in
  match s.skind with
  | Sskip -> Fmt.pf ppf "%s;@." pad
  | Sexpr e -> Fmt.pf ppf "%s%a;@." pad pp_expr e
  | Sassign (lv, e) -> Fmt.pf ppf "%s%a = %a;@." pad pp_lvalue lv pp_expr e
  | Sdecl (typ, name, init) -> (
      match init with
      | None -> Fmt.pf ppf "%s%a;@." pad pp_decl (typ, name)
      | Some e -> Fmt.pf ppf "%s%a = %a;@." pad pp_decl (typ, name) pp_expr e)
  | Sif (c, b1, b2) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s}" pad pp_expr c (pp_block (ind + 1)) b1 pad;
      if b2 = [] then Fmt.pf ppf "@."
      else Fmt.pf ppf " else {@.%a%s}@." (pp_block (ind + 1)) b2 pad
  | Swhile (c, b) ->
      Fmt.pf ppf "%swhile (%a) {@.%a%s}@." pad pp_expr c (pp_block (ind + 1)) b
        pad
  | Sfor (init, cond, step, b) ->
      let pp_init ppf () =
        match init with
        | None -> ()
        | Some { skind = Sdecl (typ, name, Some e); _ } ->
            Fmt.pf ppf "%a = %a" pp_decl (typ, name) pp_expr e
        | Some { skind = Sdecl (typ, name, None); _ } ->
            Fmt.pf ppf "%a" pp_decl (typ, name)
        | Some { skind = Sassign (lv, e); _ } ->
            Fmt.pf ppf "%a = %a" pp_lvalue lv pp_expr e
        | Some { skind = Sexpr e; _ } -> pp_expr ppf e
        | Some _ -> Fmt.string ppf "/* complex init */"
      in
      let pp_step ppf () =
        match step with
        | None -> ()
        | Some { skind = Sassign (lv, e); _ } ->
            Fmt.pf ppf "%a = %a" pp_lvalue lv pp_expr e
        | Some { skind = Sexpr e; _ } -> pp_expr ppf e
        | Some _ -> Fmt.string ppf "/* complex step */"
      in
      Fmt.pf ppf "%sfor (%a; %a; %a) {@.%a%s}@." pad pp_init ()
        (Fmt.option pp_expr) cond pp_step () (pp_block (ind + 1)) b pad
  | Sblock b -> Fmt.pf ppf "%s{@.%a%s}@." pad (pp_block (ind + 1)) b pad
  | Sreturn None -> Fmt.pf ppf "%sreturn;@." pad
  | Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;@." pad pp_expr e
  | Sbreak -> Fmt.pf ppf "%sbreak;@." pad
  | Scontinue -> Fmt.pf ppf "%scontinue;@." pad
  | Sacc (d, body) -> (
      Fmt.pf ppf "%s%a@." pad pp_directive d;
      match body with
      | None -> ()
      | Some b -> pp_stmt ind ppf b)

and pp_block ind ppf b = List.iter (pp_stmt ind ppf) b

let pp_param ppf p =
  match p.p_typ with
  | Tarr (base, _) ->
      pp_decl ppf (Tarr (base, None), p.p_name)
  | t -> pp_decl ppf (t, p.p_name)

let pp_func ppf f =
  let ret =
    match f.f_ret with
    | Tvoid -> "void" | Tint -> "int" | Tfloat -> "float"
    | Tarr _ | Tptr _ -> "void"
  in
  Fmt.pf ppf "%s %s(%a) {@.%a}@." ret f.f_name
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    f.f_params (pp_block 1) f.f_body

let pp_global ppf = function
  | Gfunc f -> pp_func ppf f
  | Gvar (typ, name, init) -> (
      match init with
      | None -> Fmt.pf ppf "%a;@." pp_decl (typ, name)
      | Some e -> Fmt.pf ppf "%a = %a;@." pp_decl (typ, name) pp_expr e)

let pp_program ppf prog =
  List.iter (fun g -> Fmt.pf ppf "%a@." pp_global g) prog.globals

let program_to_string prog = Fmt.str "%a" pp_program prog
let expr_to_string e = Fmt.str "%a" pp_expr e
let directive_to_string d = Fmt.str "%a" pp_directive d
let stmt_to_string s = Fmt.str "%a" (pp_stmt 0) s
