(** Source locations and located errors for the Mini-C front end. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Raised by the lexer, parser and type checker on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
