(** Hand-written lexer for Mini-C.  [#pragma] lines become single
    {!Token.PRAGMA} tokens carrying the raw directive text (backslash
    continuations joined). *)

type lexed = { tok : Token.t; loc : Loc.t }

type state

val make : file:string -> string -> state

(** Next token (EOF repeats at end of input).
    @raise Loc.Error on lexical errors. *)
val next : state -> lexed

(** Tokenize an entire source string; always ends with [EOF]. *)
val tokenize : file:string -> string -> lexed list
