(** Recursive-descent parser for Mini-C and its OpenACC pragmas. *)

open Ast

type cursor = { toks : Lexer.lexed array; mutable idx : int }

let cursor_of_tokens toks = { toks = Array.of_list toks; idx = 0 }

let cur c = c.toks.(c.idx)
let cur_tok c = (cur c).tok
let cur_loc c = (cur c).loc

let bump c = if c.idx < Array.length c.toks - 1 then c.idx <- c.idx + 1

let next_tok c =
  if c.idx < Array.length c.toks - 1 then c.toks.(c.idx + 1).tok else Token.EOF

let fail c fmt = Loc.error (cur_loc c) fmt

let expect c tok =
  if cur_tok c = tok then bump c
  else
    fail c "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur_tok c))

let accept c tok = if cur_tok c = tok then (bump c; true) else false

let expect_ident c =
  match cur_tok c with
  | Token.IDENT s -> bump c; s
  | t -> fail c "expected identifier, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr c = parse_cond c

and parse_cond c =
  let e = parse_lor c in
  if accept c Token.QUESTION then begin
    let a = parse_expr c in
    expect c Token.COLON;
    let b = parse_cond c in
    Econd (e, a, b)
  end
  else e

and parse_lor c =
  let rec loop e =
    if accept c Token.BARBAR then loop (Ebinop (Lor, e, parse_land c)) else e
  in
  loop (parse_land c)

and parse_land c =
  let rec loop e =
    if accept c Token.AMPAMP then loop (Ebinop (Land, e, parse_equality c))
    else e
  in
  loop (parse_equality c)

and parse_equality c =
  let rec loop e =
    match cur_tok c with
    | Token.EQEQ -> bump c; loop (Ebinop (Eq, e, parse_relational c))
    | Token.NE -> bump c; loop (Ebinop (Ne, e, parse_relational c))
    | _ -> e
  in
  loop (parse_relational c)

and parse_relational c =
  let rec loop e =
    match cur_tok c with
    | Token.LT -> bump c; loop (Ebinop (Lt, e, parse_additive c))
    | Token.LE -> bump c; loop (Ebinop (Le, e, parse_additive c))
    | Token.GT -> bump c; loop (Ebinop (Gt, e, parse_additive c))
    | Token.GE -> bump c; loop (Ebinop (Ge, e, parse_additive c))
    | _ -> e
  in
  loop (parse_additive c)

and parse_additive c =
  let rec loop e =
    match cur_tok c with
    | Token.PLUS -> bump c; loop (Ebinop (Add, e, parse_multiplicative c))
    | Token.MINUS -> bump c; loop (Ebinop (Sub, e, parse_multiplicative c))
    | _ -> e
  in
  loop (parse_multiplicative c)

and parse_multiplicative c =
  let rec loop e =
    match cur_tok c with
    | Token.STAR -> bump c; loop (Ebinop (Mul, e, parse_unary c))
    | Token.SLASH -> bump c; loop (Ebinop (Div, e, parse_unary c))
    | Token.PERCENT -> bump c; loop (Ebinop (Mod, e, parse_unary c))
    | _ -> e
  in
  loop (parse_unary c)

and parse_unary c =
  match cur_tok c with
  | Token.MINUS -> (
      bump c;
      (* Fold a directly-negated literal so "-1.5" round-trips as a
         literal; parenthesized operands keep their Eunop structure. *)
      match cur_tok c with
      | Token.INT_LIT n -> bump c; parse_postfix_tail c (Eint (-n))
      | Token.FLOAT_LIT f -> bump c; parse_postfix_tail c (Efloat (-.f))
      | _ -> Eunop (Neg, parse_unary c))
  | Token.BANG -> bump c; Eunop (Not, parse_unary c)
  | Token.PLUS -> bump c; parse_unary c
  | _ -> parse_postfix c

and parse_postfix c = parse_postfix_tail c (parse_primary c)

and parse_postfix_tail c e =
  if accept c Token.LBRACKET then begin
    let i = parse_expr c in
    expect c Token.RBRACKET;
    parse_postfix_tail c (Eindex (e, i))
  end
  else e

and parse_primary c =
  match cur_tok c with
  | Token.INT_LIT n -> bump c; Eint n
  | Token.FLOAT_LIT f -> bump c; Efloat f
  | Token.IDENT name ->
      bump c;
      if accept c Token.LPAREN then begin
        let args =
          if cur_tok c = Token.RPAREN then []
          else
            let rec more acc =
              if accept c Token.COMMA then more (parse_expr c :: acc)
              else List.rev acc
            in
            more [ parse_expr c ]
        in
        expect c Token.RPAREN;
        Ecall (name, args)
      end
      else Evar name
  | Token.KW_FLOAT | Token.KW_DOUBLE ->
      (* Conversion call "float(e)". *)
      bump c;
      expect c Token.LPAREN;
      let e = parse_expr c in
      expect c Token.RPAREN;
      Ecall ("float", [ e ])
  | Token.KW_INT ->
      bump c;
      expect c Token.LPAREN;
      let e = parse_expr c in
      expect c Token.RPAREN;
      Ecall ("int", [ e ])
  | Token.LPAREN ->
      bump c;
      (* Allow C-style casts "(float) e" / "(int) e": Mini-C treats them as
         the intrinsic conversions float()/int(). *)
      (match cur_tok c with
      | Token.KW_FLOAT | Token.KW_DOUBLE ->
          bump c;
          expect c Token.RPAREN;
          Ecall ("float", [ parse_unary c ])
      | Token.KW_INT ->
          bump c;
          expect c Token.RPAREN;
          Ecall ("int", [ parse_unary c ])
      | _ ->
          let e = parse_expr c in
          expect c Token.RPAREN;
          e)
  | t -> fail c "expected expression, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* OpenACC pragma parsing                                              *)
(* ------------------------------------------------------------------ *)

let parse_subarray c =
  let sub_var = expect_ident c in
  if accept c Token.LBRACKET then begin
    let lo = parse_expr c in
    expect c Token.COLON;
    let len = parse_expr c in
    expect c Token.RBRACKET;
    { sub_var; sub_lo = Some lo; sub_len = Some len }
  end
  else { sub_var; sub_lo = None; sub_len = None }

let parse_subarray_list c =
  expect c Token.LPAREN;
  let rec more acc =
    if accept c Token.COMMA then more (parse_subarray c :: acc)
    else List.rev acc
  in
  let l = more [ parse_subarray c ] in
  expect c Token.RPAREN;
  l

let parse_ident_list c =
  expect c Token.LPAREN;
  let rec more acc =
    if accept c Token.COMMA then more (expect_ident c :: acc) else List.rev acc
  in
  let l = more [ expect_ident c ] in
  expect c Token.RPAREN;
  l

let parse_paren_expr c =
  expect c Token.LPAREN;
  let e = parse_expr c in
  expect c Token.RPAREN;
  e

let parse_opt_paren_expr c =
  if cur_tok c = Token.LPAREN then Some (parse_paren_expr c) else None

let redop_of_token c =
  match cur_tok c with
  | Token.PLUS -> bump c; Rsum
  | Token.STAR -> bump c; Rprod
  | Token.AMPAMP -> bump c; Rland
  | Token.BARBAR -> bump c; Rlor
  | Token.IDENT "max" -> bump c; Rmax
  | Token.IDENT "min" -> bump c; Rmin
  | t -> fail c "expected reduction operator, found '%s'" (Token.to_string t)

let data_kind_of_name = function
  | "copy" -> Some Dk_copy
  | "copyin" -> Some Dk_copyin
  | "copyout" -> Some Dk_copyout
  | "create" -> Some Dk_create
  | "present" -> Some Dk_present
  | "pcopy" | "present_or_copy" -> Some Dk_pcopy
  | "pcopyin" | "present_or_copyin" -> Some Dk_pcopyin
  | "pcopyout" | "present_or_copyout" -> Some Dk_pcopyout
  | "pcreate" | "present_or_create" -> Some Dk_pcreate
  | "deviceptr" -> Some Dk_deviceptr
  | _ -> None

let parse_clause c name =
  match data_kind_of_name name with
  | Some kind -> Cdata (kind, parse_subarray_list c)
  | None -> (
      match name with
      | "private" -> Cprivate (parse_ident_list c)
      | "firstprivate" -> Cfirstprivate (parse_ident_list c)
      | "reduction" ->
          expect c Token.LPAREN;
          let op = redop_of_token c in
          expect c Token.COLON;
          let rec more acc =
            if accept c Token.COMMA then more (expect_ident c :: acc)
            else List.rev acc
          in
          let vars = more [ expect_ident c ] in
          expect c Token.RPAREN;
          Creduction (op, vars)
      | "gang" -> Cgang (parse_opt_paren_expr c)
      | "worker" -> Cworker (parse_opt_paren_expr c)
      | "vector" -> Cvector (parse_opt_paren_expr c)
      | "num_gangs" -> Cnum_gangs (parse_paren_expr c)
      | "num_workers" -> Cnum_workers (parse_paren_expr c)
      | "vector_length" -> Cvector_length (parse_paren_expr c)
      | "async" -> Casync (parse_opt_paren_expr c)
      | "if" -> Cif (parse_paren_expr c)
      | "collapse" -> (
          match parse_paren_expr c with
          | Eint n -> Ccollapse n
          | _ -> fail c "collapse expects an integer literal")
      | "seq" -> Cseq
      | "independent" -> Cindependent
      | "host" -> Chost (parse_subarray_list c)
      | "device" -> Cdevice (parse_subarray_list c)
      | "use_device" -> Cuse_device (parse_ident_list c)
      | _ -> fail c "unknown OpenACC clause '%s'" name)

let parse_clauses c =
  let rec loop acc =
    match cur_tok c with
    | Token.IDENT name ->
        bump c;
        loop (parse_clause c name :: acc)
    | Token.KW_IF ->
        (* "if" is a keyword to the lexer but a clause name here *)
        bump c;
        loop (parse_clause c "if" :: acc)
    | Token.COMMA -> bump c; loop acc
    | Token.EOF -> List.rev acc
    | t -> fail c "unexpected token '%s' in directive" (Token.to_string t)
  in
  loop []

(** Parse the text of a [#pragma acc ...] directive. *)
let parse_directive ~loc text =
  let toks = Lexer.tokenize ~file:(Loc.to_string loc ^ "(pragma)") text in
  let c = cursor_of_tokens toks in
  (match cur_tok c with
  | Token.IDENT "acc" -> bump c
  | _ -> Loc.error loc "expected 'acc' after #pragma");
  let construct =
    match cur_tok c with
    | Token.IDENT "parallel" ->
        bump c;
        if cur_tok c = Token.IDENT "loop" then (bump c; Acc_parallel_loop)
        else Acc_parallel
    | Token.IDENT "kernels" ->
        bump c;
        if cur_tok c = Token.IDENT "loop" then (bump c; Acc_kernels_loop)
        else Acc_kernels
    | Token.IDENT "data" -> bump c; Acc_data
    | Token.IDENT "host_data" -> bump c; Acc_host_data
    | Token.IDENT "loop" -> bump c; Acc_loop
    | Token.IDENT "update" -> bump c; Acc_update
    | Token.IDENT "declare" -> bump c; Acc_declare
    | Token.IDENT "wait" ->
        bump c;
        Acc_wait (parse_opt_paren_expr c)
    | Token.IDENT "cache" ->
        bump c;
        Acc_cache (parse_subarray_list c)
    | t -> Loc.error loc "unknown OpenACC construct '%s'" (Token.to_string t)
  in
  let clauses = parse_clauses c in
  { dir = construct; clauses; dloc = loc }

(** Does this directive introduce a structured block/statement body? *)
let directive_has_body d =
  match d.dir with
  | Acc_parallel | Acc_kernels | Acc_data | Acc_host_data | Acc_loop
  | Acc_parallel_loop | Acc_kernels_loop -> true
  | Acc_update | Acc_declare | Acc_wait _ | Acc_cache _ -> false

(* ------------------------------------------------------------------ *)
(* Types and declarations                                              *)
(* ------------------------------------------------------------------ *)

let parse_base_type c =
  match cur_tok c with
  | Token.KW_INT -> bump c; Tint
  | Token.KW_FLOAT | Token.KW_DOUBLE -> bump c; Tfloat
  | Token.KW_VOID -> bump c; Tvoid
  | t -> fail c "expected a type, found '%s'" (Token.to_string t)

let is_type_start c =
  match cur_tok c with
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_VOID -> true
  | _ -> false

(* "[e1][e2]..." dimension suffixes, outermost first; a leading "[]" means
   an unsized (parameter-style) array. *)
let parse_dims c =
  let rec go acc =
    if accept c Token.LBRACKET then
      if accept c Token.RBRACKET then go (None :: acc)
      else begin
        let e = parse_expr c in
        expect c Token.RBRACKET;
        go (Some e :: acc)
      end
    else List.rev acc
  in
  go []

let apply_dims base dims =
  List.fold_right (fun ext t -> Tarr (t, ext)) dims base

(* "<base> *? name ([expr]...)?" -> type and name *)
let parse_declarator c =
  let base = parse_base_type c in
  let base = if accept c Token.STAR then Tptr base else base in
  let name = expect_ident c in
  let typ =
    match parse_dims c with [] -> base | dims -> apply_dims base dims
  in
  (typ, name)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let desugar_binop op lv e = Sassign (lv, Ebinop (op, lvalue_to_expr lv, e))

let rec parse_lvalue_from_expr c e =
  match expr_to_lvalue e with
  | Some lv -> lv
  | None -> fail c "expression is not assignable"

(* An expression statement body (no trailing ';'): assignment, op-assign,
   incr/decr or call. *)
and parse_simple_stmt c =
  let loc = cur_loc c in
  let e = parse_expr c in
  let k =
    match cur_tok c with
    | Token.ASSIGN ->
        bump c;
        Sassign (parse_lvalue_from_expr c e, parse_expr c)
    | Token.PLUSEQ ->
        bump c;
        desugar_binop Add (parse_lvalue_from_expr c e) (parse_expr c)
    | Token.MINUSEQ ->
        bump c;
        desugar_binop Sub (parse_lvalue_from_expr c e) (parse_expr c)
    | Token.STAREQ ->
        bump c;
        desugar_binop Mul (parse_lvalue_from_expr c e) (parse_expr c)
    | Token.SLASHEQ ->
        bump c;
        desugar_binop Div (parse_lvalue_from_expr c e) (parse_expr c)
    | Token.PLUSPLUS ->
        bump c;
        desugar_binop Add (parse_lvalue_from_expr c e) (Eint 1)
    | Token.MINUSMINUS ->
        bump c;
        desugar_binop Sub (parse_lvalue_from_expr c e) (Eint 1)
    | _ -> Sexpr e
  in
  mk_stmt ~loc k

and parse_decl_stmt c =
  let loc = cur_loc c in
  let typ, name = parse_declarator c in
  let init = if accept c Token.ASSIGN then Some (parse_expr c) else None in
  expect c Token.SEMI;
  mk_stmt ~loc (Sdecl (typ, name, init))

and parse_stmt c =
  let loc = cur_loc c in
  match cur_tok c with
  | Token.SEMI -> bump c; mk_stmt ~loc Sskip
  | Token.LBRACE ->
      bump c;
      let b = parse_block_items c in
      expect c Token.RBRACE;
      mk_stmt ~loc (Sblock b)
  | Token.KW_IF ->
      bump c;
      expect c Token.LPAREN;
      let cond = parse_expr c in
      expect c Token.RPAREN;
      let then_b = parse_stmt_as_block c in
      let else_b =
        if accept c Token.KW_ELSE then parse_stmt_as_block c else []
      in
      mk_stmt ~loc (Sif (cond, then_b, else_b))
  | Token.KW_WHILE ->
      bump c;
      expect c Token.LPAREN;
      let cond = parse_expr c in
      expect c Token.RPAREN;
      let body = parse_stmt_as_block c in
      mk_stmt ~loc (Swhile (cond, body))
  | Token.KW_FOR ->
      bump c;
      expect c Token.LPAREN;
      let init =
        if cur_tok c = Token.SEMI then (bump c; None)
        else if is_type_start c then Some (parse_decl_stmt c)
        else begin
          let s = parse_simple_stmt c in
          expect c Token.SEMI;
          Some s
        end
      in
      let cond =
        if cur_tok c = Token.SEMI then None else Some (parse_expr c)
      in
      expect c Token.SEMI;
      let step =
        if cur_tok c = Token.RPAREN then None else Some (parse_simple_stmt c)
      in
      expect c Token.RPAREN;
      let body = parse_stmt_as_block c in
      mk_stmt ~loc (Sfor (init, cond, step, body))
  | Token.KW_RETURN ->
      bump c;
      let e = if cur_tok c = Token.SEMI then None else Some (parse_expr c) in
      expect c Token.SEMI;
      mk_stmt ~loc (Sreturn e)
  | Token.KW_BREAK ->
      bump c;
      expect c Token.SEMI;
      mk_stmt ~loc Sbreak
  | Token.KW_CONTINUE ->
      bump c;
      expect c Token.SEMI;
      mk_stmt ~loc Scontinue
  | Token.PRAGMA text ->
      bump c;
      let dir = parse_directive ~loc text in
      if directive_has_body dir then
        let body = parse_stmt c in
        mk_stmt ~loc (Sacc (dir, Some body))
      else
        mk_stmt ~loc (Sacc (dir, None))
  | _ when is_type_start c -> parse_decl_stmt c
  | _ ->
      let s = parse_simple_stmt c in
      expect c Token.SEMI;
      s

and parse_stmt_as_block c =
  let s = parse_stmt c in
  match s.skind with Sblock b -> b | _ -> [ s ]

and parse_block_items c =
  let rec loop acc =
    match cur_tok c with
    | Token.RBRACE | Token.EOF -> List.rev acc
    | _ -> loop (parse_stmt c :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let parse_param c =
  let base = parse_base_type c in
  let base = if accept c Token.STAR then Tptr base else base in
  let name = expect_ident c in
  let typ =
    if accept c Token.LBRACKET then begin
      if cur_tok c <> Token.RBRACKET then ignore (parse_expr c);
      expect c Token.RBRACKET;
      Tarr (base, None)
    end
    else base
  in
  { p_typ = typ; p_name = name }

let parse_global c =
  let loc = cur_loc c in
  let base = parse_base_type c in
  let base = if accept c Token.STAR then Tptr base else base in
  let name = expect_ident c in
  if accept c Token.LPAREN then begin
    let params =
      if cur_tok c = Token.RPAREN then []
      else if cur_tok c = Token.KW_VOID && next_tok c = Token.RPAREN then begin
        bump c; []
      end
      else
        let rec more acc =
          if accept c Token.COMMA then more (parse_param c :: acc)
          else List.rev acc
        in
        more [ parse_param c ]
    in
    expect c Token.RPAREN;
    expect c Token.LBRACE;
    let body = parse_block_items c in
    expect c Token.RBRACE;
    Gfunc { f_ret = base; f_name = name; f_params = params; f_body = body;
            f_loc = loc }
  end
  else begin
    let typ =
      match parse_dims c with [] -> base | dims -> apply_dims base dims
    in
    let init = if accept c Token.ASSIGN then Some (parse_expr c) else None in
    expect c Token.SEMI;
    Gvar (typ, name, init)
  end

(** Parse a full Mini-C translation unit from a source string. *)
let parse_string ?(file = "<string>") src =
  let toks = Lexer.tokenize ~file src in
  let c = cursor_of_tokens toks in
  let rec loop acc =
    if cur_tok c = Token.EOF then List.rev acc
    else loop (parse_global c :: acc)
  in
  { globals = loop [] }

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ~file:path src

(** Parse a single expression (used by tests and the CLI). *)
let expr_of_string src =
  let toks = Lexer.tokenize ~file:"<expr>" src in
  let c = cursor_of_tokens toks in
  let e = parse_expr c in
  if cur_tok c <> Token.EOF then fail c "trailing tokens after expression";
  e
