(** Interpreter for translated programs: executes host code natively, drives
    the {!Gpusim} device for data movement and kernels, and (when enabled)
    the {!Coherence} runtime for the paper's memory-transfer verification. *)

open Minic.Ast
open Codegen.Tprog

type outcome = {
  ctx : Eval.ctx;  (** final host state *)
  device : Gpusim.Device.t;
  coherence : Coherence.t;
  tprog : Codegen.Tprog.t;
  site_execs : (int, int) Hashtbl.t;  (** transfer-site id -> executions *)
  sites :
    (int, Codegen.Tprog.site * string * Codegen.Tprog.xdir) Hashtbl.t;
      (** executed transfer sites with their variable and direction *)
}

let reports o = Coherence.reports o.coherence
let metrics o = o.device.Gpusim.Device.metrics

(** Final contents of host array [name] (by root). *)
let host_array o name = Value.array_buf o.ctx.Eval.env name

let host_scalar o name = Value.get_scalar o.ctx.Eval.env name

exception Stop

let run ?(coherence = true) ?granularity ?(seed = 42) ?(trace = false) ?cm
    (tp : Codegen.Tprog.t) =
  let device = Gpusim.Device.create ?cm ~seed ~trace () in
  let metrics = device.Gpusim.Device.metrics in
  let coh = Coherence.create ?granularity () in
  let site_execs = Hashtbl.create 32 in
  let sites = Hashtbl.create 32 in
  let env = Value.create () in
  let ctx = Eval.make tp.source env in
  (* Attach the OpenACC runtime-library routines to the device. *)
  let api = Acc_api.create device in
  ctx.Eval.call_hook <- Some (Acc_api.hook api);
  Eval.init_globals ctx;

  let cmodel = device.Gpusim.Device.cm in
  let last_ops = ref ctx.Eval.ops in
  (* Charge accumulated host interpretation work as CPU time. *)
  let charge_host () =
    let delta = ctx.Eval.ops - !last_ops in
    if delta > 0 then
      Gpusim.Metrics.charge metrics Gpusim.Metrics.Cpu_time
        (Gpusim.Costmodel.cpu_time cmodel ~ops:delta);
    last_ops := ctx.Eval.ops
  in
  let eval_int e = Value.to_int (Eval.eval ctx e) in
  let eval_async = Option.map eval_int in

  let loop_label init tid =
    match init with
    | Some { skind = Sdecl (_, v, _); _ } | Some { skind = Sassign (Lvar v, _); _ }
      -> v
    | Some _ | None -> Fmt.str "loop%d" tid
  in

  let rec exec_t (s : tstmt) =
    match s.tkind with
    | Thost st ->
        Eval.exec ctx st;
        charge_host ()
    | Tblock b -> Value.scoped env (fun () -> exec_ts b)
    | Tif (c, b1, b2) ->
        let cond = Value.truthy (Eval.eval ctx c) in
        charge_host ();
        if cond then Value.scoped env (fun () -> exec_ts b1)
        else Value.scoped env (fun () -> exec_ts b2)
    | Twhile (c, b) ->
        Coherence.enter_loop coh (Fmt.str "while%d" s.tid);
        (try
           while
             let v = Value.truthy (Eval.eval ctx c) in
             charge_host ();
             v
           do
             Coherence.next_iteration coh;
             try Value.scoped env (fun () -> exec_ts b)
             with Eval.Continue_exc -> ()
           done
         with Eval.Break_exc -> ());
        Coherence.exit_loop coh
    | Tfor (init, cond, step, b) ->
        Value.scoped env (fun () ->
            Option.iter (Eval.exec ctx) init;
            charge_host ();
            Coherence.enter_loop coh (loop_label init s.tid);
            let continue_ () =
              match cond with
              | Some c ->
                  let v = Value.truthy (Eval.eval ctx c) in
                  charge_host ();
                  v
              | None -> true
            in
            (try
               while continue_ () do
                 Coherence.next_iteration coh;
                 (try Value.scoped env (fun () -> exec_ts b)
                  with Eval.Continue_exc -> ());
                 Option.iter (Eval.exec ctx) step;
                 charge_host ()
               done
             with Eval.Break_exc -> ());
            Coherence.exit_loop coh)
    | Talloc (v, _site) ->
        (* present-or-create: keep an existing buffer resident *)
        if not (Gpusim.Device.is_allocated device v) then begin
          let host = Value.array_buf env v in
          Gpusim.Device.alloc device v ~like:host
        end
    | Tfree (v, _site) ->
        Gpusim.Device.free device v;
        if coherence then Coherence.on_free coh v
    | Txfer x ->
        let range =
          match (x.x_lo, x.x_len) with
          | Some lo, Some len -> Some (eval_int lo, eval_int len)
          | _ -> None
        in
        charge_host ();
        let async = eval_async x.x_async in
        Hashtbl.replace site_execs x.x_site.site_id
          (1 + Option.value ~default:0
                 (Hashtbl.find_opt site_execs x.x_site.site_id));
        Hashtbl.replace sites x.x_site.site_id (x.x_site, x.x_var, x.x_dir);
        let host = Value.array_buf env x.x_var in
        if coherence then begin
          Coherence.register_len coh x.x_var (Gpusim.Buf.length host);
          Coherence.on_transfer ?range coh x.x_var x.x_dir ~site:x.x_site
        end;
        let label = x.x_site.site_label in
        (match x.x_dir with
        | H2D ->
            Gpusim.Device.upload device x.x_var ~host ?range ?async ~label ()
        | D2H ->
            Gpusim.Device.download device x.x_var ~host ?range ?async ~label
              ())
    | Tlaunch (kid, async) ->
        let k = tp.kernels.(kid) in
        let async = eval_async async in
        let r = Kernel_exec.run ctx device k in
        let width =
          let g, w, v = k.k_dims in
          match List.filter_map (Option.map eval_int) [ g; w; v ] with
          | [] -> None
          | dims -> Some (List.fold_left ( * ) 1 dims)
        in
        Gpusim.Device.launch device ~iterations:r.Kernel_exec.iterations
          ~ops_per_iter:k.k_ops_per_iter ?width ?async ~label:k.k_name ()
    | Twait e ->
        let q = eval_async e in
        charge_host ();
        Gpusim.Device.wait device q
    | Tcheck c ->
        if coherence then begin
          (* Host checks are placed on accessed names; resolve a pointer to
             the root it currently designates. *)
          let resolve v =
            match Value.lookup env v with
            | Some (Value.Array slot) ->
                (match slot.Value.buf with
                | Some b ->
                    Coherence.register_len coh slot.Value.root
                      (Gpusim.Buf.length b)
                | None -> ());
                slot.Value.root
            | Some (Value.Scalar _) | None -> v
          in
          (match c with
          | Check_read (v, dev) ->
              Coherence.check_read ~sid:s.tsid coh (resolve v) dev
          | Check_write (v, dev) ->
              Coherence.check_write ~sid:s.tsid coh (resolve v) dev
          | Reset_status (v, dev, st) -> Coherence.reset_status coh v dev st);
          metrics.Gpusim.Metrics.checks <- metrics.Gpusim.Metrics.checks + 1;
          Gpusim.Metrics.charge metrics Gpusim.Metrics.Check_overhead
            cmodel.Gpusim.Costmodel.check_cost
        end
  and exec_ts b = List.iter exec_t b in

  (try exec_ts tp.body with
  | Eval.Return_exc _ | Stop -> ());
  charge_host ();
  (* Drain outstanding async work and release device memory. *)
  Gpusim.Device.wait device None;
  Gpusim.Device.free_all device;
  { ctx; device; coherence = coh; tprog = tp; site_execs; sites }

(** Convenience: compile and run a source string (uninstrumented unless
    [instrument] is set). *)
let run_string ?opts ?(instrument = false) ?mode ?granularity ?coherence
    ?seed ?cm src =
  let tp = Codegen.Translate.compile_string ?opts src in
  let tp = if instrument then Codegen.Checkgen.instrument ?mode tp else tp in
  let coherence = Option.value coherence ~default:instrument in
  run ~coherence ?granularity ?seed ?cm tp
