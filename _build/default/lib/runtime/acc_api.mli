(** The OpenACC V1.0 runtime library routines ([acc_init],
    [acc_get_num_devices], [acc_async_test], ...), callable from Mini-C and
    backed by the simulated device; honours the [ACC_DEVICE_TYPE] and
    [ACC_DEVICE_NUM] environment variables. *)

val acc_device_none : int
val acc_device_default : int
val acc_device_host : int
val acc_device_not_host : int
val acc_device_nvidia : int

type state = {
  device : Gpusim.Device.t;
  mutable device_type : int;
  mutable device_num : int;
  mutable initialized : bool;
}

val create : Gpusim.Device.t -> state

(** Is stream [q]'s queued work complete at the current simulated time? *)
val async_done : state -> int -> bool

val all_async_done : state -> bool

(** (name, arity) of every routine, for registration purposes. *)
val signatures : (string * int) list

(** Named device-type constants. *)
val constants : (string * int) list

(** The evaluator hook serving routine calls (see {!Eval.ctx}). *)
val hook : state -> string -> Value.scalar list -> Value.scalar option
