(** Interpreter for translated programs: executes host code natively,
    drives the {!Gpusim} device for data movement and kernels, and (when
    enabled) the {!Coherence} runtime for the paper's memory-transfer
    verification. *)

type outcome = {
  ctx : Eval.ctx;  (** final host state *)
  device : Gpusim.Device.t;
  coherence : Coherence.t;
  tprog : Codegen.Tprog.t;
  site_execs : (int, int) Hashtbl.t;  (** transfer-site id -> executions *)
  sites :
    (int, Codegen.Tprog.site * string * Codegen.Tprog.xdir) Hashtbl.t;
      (** executed transfer sites with their variable and direction *)
}

val reports : outcome -> Coherence.report list
val metrics : outcome -> Gpusim.Metrics.t

(** Final contents of host array [name] (by root).
    @raise Value.Runtime_error when absent. *)
val host_array : outcome -> string -> Gpusim.Buf.t

val host_scalar : outcome -> string -> Value.scalar

exception Stop

(** Execute a translated program.  [coherence] enables the §III-B runtime
    (meaningful on instrumented programs); [granularity] picks whole-array
    (default, as the paper) or interval tracking; [trace] records the
    execution timeline; [seed] drives the deterministic jitter streams. *)
val run :
  ?coherence:bool -> ?granularity:Coherence.granularity -> ?seed:int ->
  ?trace:bool -> ?cm:Gpusim.Costmodel.t -> Codegen.Tprog.t -> outcome

(** Compile and run a source string (instrumented when [instrument]). *)
val run_string :
  ?opts:Codegen.Options.t -> ?instrument:bool -> ?mode:Codegen.Checkgen.mode ->
  ?granularity:Coherence.granularity -> ?coherence:bool -> ?seed:int ->
  ?cm:Gpusim.Costmodel.t -> string -> outcome
