lib/runtime/acc_api.ml: Gpusim Hashtbl List Sys Value
