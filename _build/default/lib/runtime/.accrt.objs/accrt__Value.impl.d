lib/runtime/value.ml: Fmt Fun Gpusim Hashtbl List Printexc
