lib/runtime/kernel_exec.ml: Analysis Codegen Eval Float Gpusim Hashtbl List Minic Option Value
