lib/runtime/eval.ml: Array Float Fun Gpusim Hashtbl List Minic Option String Value
