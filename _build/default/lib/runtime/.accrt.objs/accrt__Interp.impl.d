lib/runtime/interp.ml: Acc_api Array Codegen Coherence Eval Fmt Gpusim Hashtbl Kernel_exec List Minic Option Value
