lib/runtime/value.mli: Format Gpusim Hashtbl
