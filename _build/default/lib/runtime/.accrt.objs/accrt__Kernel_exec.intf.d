lib/runtime/kernel_exec.mli: Codegen Eval Gpusim Minic Value
