lib/runtime/eval.mli: Minic Value
