lib/runtime/coherence.mli: Codegen Format Hashtbl Intervals
