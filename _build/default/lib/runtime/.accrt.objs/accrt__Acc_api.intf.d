lib/runtime/acc_api.mli: Gpusim Value
