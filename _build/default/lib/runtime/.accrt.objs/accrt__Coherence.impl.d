lib/runtime/coherence.ml: Codegen Fmt Hashtbl Intervals List
