lib/runtime/intervals.mli: Format
