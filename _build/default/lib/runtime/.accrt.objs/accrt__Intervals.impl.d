lib/runtime/intervals.ml: Fmt List
