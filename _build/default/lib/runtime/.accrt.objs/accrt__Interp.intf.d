lib/runtime/interp.mli: Codegen Coherence Eval Gpusim Hashtbl Value
