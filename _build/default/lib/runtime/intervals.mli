(** Sets of disjoint half-open integer intervals [lo, hi) — the substrate of
    the fine-grained coherence mode (the granularity alternative the paper
    weighs in §III-B).

    Canonical form invariant: sorted, non-empty, non-overlapping,
    maximally coalesced. *)

type t = (int * int) list

val empty : t
val is_empty : t -> bool
val of_range : int -> int -> t
val normalize : (int * int) list -> t
val add : t -> lo:int -> hi:int -> t
val subtract : t -> lo:int -> hi:int -> t
val union : t -> t -> t
val intersects : t -> lo:int -> hi:int -> bool

(** The portion of the set inside [lo, hi). *)
val clip : t -> lo:int -> hi:int -> t

val mem : t -> int -> bool

(** Total number of elements covered. *)
val measure : t -> int

(** Number of disjoint intervals (the tracking-cost driver). *)
val pieces : t -> int

val equal : t -> t -> bool
val covers : t -> lo:int -> hi:int -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
