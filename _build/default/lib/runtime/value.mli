(** Runtime values and environments for the Mini-C interpreters.

    Scalars are mutable cells; arrays are flattened {!Gpusim.Buf} buffers
    held in mutable slots (with a shape for multi-dimensional arrays) so
    that pointer assignment rebinds the slot — the pointer-swap idiom of
    BACKPROP/LUD.  A slot's [root] is the name of the buffer it currently
    designates: the key for device memory and coherence tracking. *)

type scalar = Int of int | Flt of float

val to_float : scalar -> float
val to_int : scalar -> int
val truthy : scalar -> bool

type cell = { mutable v : scalar }

type slot = {
  mutable buf : Gpusim.Buf.t option;
  mutable root : string;
  mutable shape : int array;
      (** dimensions, outermost first; [[||]] until materialized *)
}

type binding = Scalar of cell | Array of slot

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Environments}: a stack of frames over a global frame. *)

type frame = (string, binding) Hashtbl.t

type t = { globals : frame; mutable frames : frame list }

val create : unit -> t
val push : t -> unit
val pop : t -> unit

(** Run [f] in a fresh scope. *)
val scoped : t -> (unit -> 'a) -> 'a

val declare : t -> string -> binding -> unit
val declare_global : t -> string -> binding -> unit
val lookup : t -> string -> binding option

(** @raise Runtime_error when unbound. *)
val lookup_exn : t -> string -> binding

val scalar_cell : t -> string -> cell
val array_slot : t -> string -> slot

(** The (flattened) buffer behind an array/pointer name.
    @raise Runtime_error when not materialized. *)
val array_buf : t -> string -> Gpusim.Buf.t

(** Root name of the buffer currently designated by a name. *)
val root_of : t -> string -> string

val get_scalar : t -> string -> scalar
val set_scalar : t -> string -> scalar -> unit

(** Shape of an array binding ([[|len|]] when it was never given one). *)
val shape_of : slot -> int array

(** Deep snapshot of named array contents (kernel verification
    checkpoints). *)
val snapshot_arrays : t -> string list -> (string * Gpusim.Buf.t) list
