(** Sets of disjoint half-open integer intervals [lo, hi).

    The substrate of the fine-grained coherence mode: per-device staleness
    is tracked as the set of element ranges whose value is outdated, instead
    of one status for the whole buffer.  The paper (§III-B) discusses this
    granularity trade-off — finer tracking catches partial-transfer bugs the
    coarse scheme cannot, at higher tracking cost — and we implement both.

    Invariant: intervals are sorted, non-empty, non-overlapping and
    non-adjacent (maximally coalesced). *)

type t = (int * int) list

let empty : t = []

let is_empty (t : t) = t = []

let of_range lo hi : t = if hi > lo then [ (lo, hi) ] else []

(** Normalize an arbitrary interval list into the canonical form. *)
let normalize l : t =
  let l = List.filter (fun (lo, hi) -> hi > lo) l in
  let l = List.sort compare l in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
        merge ((a1, max b1 b2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge l

let add (t : t) ~lo ~hi : t = normalize ((lo, hi) :: t)

(** Remove [lo, hi) from the set. *)
let subtract (t : t) ~lo ~hi : t =
  if hi <= lo then t
  else
    List.concat_map
      (fun (a, b) ->
        if hi <= a || b <= lo then [ (a, b) ]
        else
          (if a < lo then [ (a, lo) ] else [])
          @ if hi < b then [ (hi, b) ] else [])
      t

let union (a : t) (b : t) : t = normalize (a @ b)

(** Does [lo, hi) intersect the set? *)
let intersects (t : t) ~lo ~hi =
  hi > lo && List.exists (fun (a, b) -> a < hi && b > lo) t

(** The portion of the set inside [lo, hi). *)
let clip (t : t) ~lo ~hi : t =
  List.filter_map
    (fun (a, b) ->
      let a = max a lo and b = min b hi in
      if b > a then Some (a, b) else None)
    t

let mem (t : t) i = intersects t ~lo:i ~hi:(i + 1)

(** Total number of elements covered. *)
let measure (t : t) = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t

(** Number of disjoint intervals (the tracking-cost driver). *)
let pieces (t : t) = List.length t

let equal (a : t) (b : t) = a = b

(** Is [lo, hi) entirely covered? *)
let covers (t : t) ~lo ~hi =
  hi <= lo || measure (clip t ~lo ~hi) = hi - lo

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) -> Fmt.pf ppf "[%d,%d)" a b))
    t

let to_string t = Fmt.str "%a" pp t
