(** Mini-C evaluator: expressions and sequential statement execution.

    Serves the reference CPU interpreter (directives transparent), the host
    side of the translated-program interpreter, and the kernel-body
    executor.  Every visited node bumps [ops] — the unit of simulated CPU
    and GPU cost accounting.  The OpenACC runtime routines ([acc_*]) are
    served by [call_hook] when a device is attached, with host-only
    semantics otherwise. *)

type ctx = {
  env : Value.t;
  prog : Minic.Ast.program;  (** for user-function calls *)
  mutable ops : int;
  mutable stmt_hook : (ctx -> Minic.Ast.stmt -> bool) option;
      (** returns [true] when it fully handled the statement (kernel
          verification intercepts compute regions this way) *)
  mutable call_hook :
    (string -> Value.scalar list -> Value.scalar option) option;
}

val make :
  ?hook:(ctx -> Minic.Ast.stmt -> bool) option -> Minic.Ast.program ->
  Value.t -> ctx

exception Break_exc
exception Continue_exc
exception Return_exc of Value.scalar option

(** C-like arithmetic on scalars (ints stay ints, mixing promotes). *)
val arith : Minic.Ast.binop -> Value.scalar -> Value.scalar -> Value.scalar

val eval : ctx -> Minic.Ast.expr -> Value.scalar
val exec : ctx -> Minic.Ast.stmt -> unit
val exec_block : ctx -> Minic.Ast.block -> unit

(** Initialize global variables into the environment's global frame. *)
val init_globals : ctx -> unit

(** Run the whole program sequentially (the reference execution of
    §III-A); [hook] may intercept statements. *)
val run_reference :
  ?hook:(ctx -> Minic.Ast.stmt -> bool) -> Minic.Ast.program -> ctx
