(** Sets of variable names — the fact domain of every dataflow analysis in
    this compiler (Algorithms 1 and 2 of the paper, first/last-access
    analyses, liveness). *)

include Set.Make (String)

let of_seq_list l = of_list l

let pp ppf s =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) (elements s)

let to_string s = Fmt.str "%a" pp s
