(** Access analysis of compute-region bodies.

    For a region (the statement under a [kernels]/[parallel] directive) this
    computes which arrays are read and written, how each scalar is first
    accessed (the input to automatic privatization), which scalars follow the
    accumulator pattern (the input to automatic reduction recognition), and a
    static operation-count estimate used by the simulator's kernel cost
    model.  Pointer accesses are resolved through {!Alias}; ambiguous
    pointers are reported so downstream deadness facts can be weakened. *)

open Minic.Ast

type first = First_read | First_write

type t = {
  arrays_read : Varset.t;
  arrays_written : Varset.t;
  raw_read : Varset.t;  (** accessed array/pointer names, unresolved *)
  raw_written : Varset.t;
  scalars_read : Varset.t;
  scalars_written : Varset.t;
  declared : Varset.t;  (** names declared inside the region *)
  first_access : (string, first) Hashtbl.t;  (** per scalar *)
  accumulators : (string * redop) list;
      (** scalars whose every write is [v = v op e] and which are read
          nowhere else inside the region *)
  ops : int;  (** static per-execution operation estimate *)
  ambiguous : Varset.t;  (** ambiguous pointers accessed in the region *)
}

type ctx = {
  alias : Alias.t;
  mutable ar : Varset.t;
  mutable aw : Varset.t;
  mutable rr : Varset.t;
  mutable rw : Varset.t;
  mutable sr : Varset.t;
  mutable sw : Varset.t;
  mutable dcl : Varset.t;
  firsts : (string, first) Hashtbl.t;
  red_writes : (string, redop list) Hashtbl.t;
  plain_writes : (string, int) Hashtbl.t;
  nonred_reads : (string, int) Hashtbl.t;
  mutable ops : int;
  mutable amb : Varset.t;
}

let is_storage ctx v = not (Varset.is_empty (Alias.resolve ctx.alias v))

let roots ctx v =
  let r = Alias.resolve ctx.alias v in
  if Varset.cardinal r > 1 then ctx.amb <- Varset.add v ctx.amb;
  r

let note_first ctx v k =
  if not (Hashtbl.mem ctx.firsts v) then Hashtbl.add ctx.firsts v k

let bump tbl v =
  Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))

let read_scalar ctx ?(reduction = false) v =
  ctx.sr <- Varset.add v ctx.sr;
  note_first ctx v First_read;
  if not reduction then bump ctx.nonred_reads v

let write_scalar ctx v =
  ctx.sw <- Varset.add v ctx.sw;
  note_first ctx v First_write

let read_array ctx v =
  ctx.rr <- Varset.add v ctx.rr;
  ctx.ar <- Varset.union (roots ctx v) ctx.ar

let write_array ctx v =
  ctx.rw <- Varset.add v ctx.rw;
  ctx.aw <- Varset.union (roots ctx v) ctx.aw

let rec read_expr ctx e =
  ctx.ops <- ctx.ops + 1;
  match e with
  | Eint _ | Efloat _ -> ()
  | Evar v -> if is_storage ctx v then read_array ctx v else read_scalar ctx v
  | Eindex (a, i) ->
      (match a with
      | Evar v -> read_array ctx v
      | _ -> read_expr ctx a);
      read_expr ctx i
  | Eunop (_, a) -> read_expr ctx a
  | Ebinop (_, a, b) -> read_expr ctx a; read_expr ctx b
  | Ecall (_, args) -> List.iter (read_expr ctx) args
  | Econd (c, a, b) -> read_expr ctx c; read_expr ctx a; read_expr ctx b

(* Recognize "v = v op e" / "v = e op v" (and min/max calls) for scalar v;
   returns the operator and the non-self operand. *)
let reduction_pattern v rhs =
  let op_of = function
    | Add -> Some Rsum
    | Mul -> Some Rprod
    | Land -> Some Rland
    | Lor -> Some Rlor
    | Sub | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne -> None
  in
  match rhs with
  | Ebinop (op, Evar v', e) when v' = v -> (
      match op_of op with Some r -> Some (r, e) | None -> None)
  | Ebinop (op, e, Evar v') when v' = v && (op = Add || op = Mul) -> (
      match op_of op with Some r -> Some (r, e) | None -> None)
  | Ecall ("max", [ Evar v'; e ]) when v' = v -> Some (Rmax, e)
  | Ecall ("max", [ e; Evar v' ]) when v' = v -> Some (Rmax, e)
  | Ecall ("min", [ Evar v'; e ]) when v' = v -> Some (Rmin, e)
  | Ecall ("min", [ e; Evar v' ]) when v' = v -> Some (Rmin, e)
  | _ -> None

let rec write_lvalue ctx lv =
  ctx.ops <- ctx.ops + 1;
  match lv with
  | Lvar v ->
      if is_storage ctx v then write_array ctx v else write_scalar ctx v
  | Lindex (base, i) ->
      read_expr ctx i;
      (match base with
      | Lvar v -> write_array ctx v
      | _ -> write_lvalue ctx base)

let rec scan_stmt ctx s =
  ctx.ops <- ctx.ops + 1;
  match s.skind with
  | Sskip | Sbreak | Scontinue -> ()
  | Sexpr e -> read_expr ctx e
  | Sassign (Lvar v, Evar _) when is_storage ctx v ->
      (* Pointer rebinding ("p = a"): changes which buffer [v] designates but
         reads/writes no array data. *)
      ()
  | Sassign (Lvar v, rhs) when not (is_storage ctx v) -> (
      (* Scalar assignment: detect the accumulator pattern first so the
         self-read does not disqualify reduction recognition. *)
      match reduction_pattern v rhs with
      | Some (op, operand) ->
          read_scalar ctx ~reduction:true v;
          read_expr ctx operand;
          write_scalar ctx v;
          Hashtbl.replace ctx.red_writes v
            (op :: Option.value ~default:[] (Hashtbl.find_opt ctx.red_writes v))
      | None ->
          read_expr ctx rhs;
          write_scalar ctx v;
          bump ctx.plain_writes v)
  | Sassign (lv, rhs) ->
      read_expr ctx rhs;
      write_lvalue ctx lv
  | Sdecl (Tptr _, v, _) ->
      (* Pointer declaration, possibly aliasing an array: no data access. *)
      ctx.dcl <- Varset.add v ctx.dcl
  | Sdecl (_, v, init) ->
      ctx.dcl <- Varset.add v ctx.dcl;
      Option.iter (read_expr ctx) init
  | Sif (c, b1, b2) ->
      read_expr ctx c;
      List.iter (scan_stmt ctx) b1;
      List.iter (scan_stmt ctx) b2
  | Swhile (c, b) ->
      read_expr ctx c;
      List.iter (scan_stmt ctx) b
  | Sfor (init, cond, step, b) ->
      Option.iter (scan_stmt ctx) init;
      Option.iter (read_expr ctx) cond;
      List.iter (scan_stmt ctx) b;
      Option.iter (scan_stmt ctx) step
  | Sblock b -> List.iter (scan_stmt ctx) b
  | Sreturn e -> Option.iter (read_expr ctx) e
  | Sacc (_, body) -> Option.iter (scan_stmt ctx) body

(** Analyze the statements of a region.  [alias] must come from the
    enclosing function. *)
let analyze ~alias stmts =
  let ctx =
    { alias; ar = Varset.empty; aw = Varset.empty; rr = Varset.empty;
      rw = Varset.empty; sr = Varset.empty;
      sw = Varset.empty; dcl = Varset.empty; firsts = Hashtbl.create 16;
      red_writes = Hashtbl.create 8; plain_writes = Hashtbl.create 8;
      nonred_reads = Hashtbl.create 8; ops = 0; amb = Varset.empty }
  in
  List.iter (scan_stmt ctx) stmts;
  let accumulators =
    Hashtbl.fold
      (fun v ops acc ->
        let pure_reduction =
          (not (Hashtbl.mem ctx.plain_writes v))
          && (not (Hashtbl.mem ctx.nonred_reads v))
          && (not (Varset.mem v ctx.dcl))
          &&
          match ops with
          | [] -> false
          | op :: rest -> List.for_all (fun o -> o = op) rest
        in
        if pure_reduction then (v, List.hd ops) :: acc else acc)
      ctx.red_writes []
  in
  { arrays_read = ctx.ar; arrays_written = ctx.aw; raw_read = ctx.rr;
    raw_written = ctx.rw; scalars_read = ctx.sr;
    scalars_written = ctx.sw; declared = ctx.dcl; first_access = ctx.firsts;
    accumulators; ops = ctx.ops; ambiguous = ctx.amb }

(** Scalars written in the region, not declared inside, whose first access is
    a write: candidates for automatic privatization. *)
let privatizable t =
  Varset.filter
    (fun v ->
      (not (Varset.mem v t.declared))
      && Hashtbl.find_opt t.first_access v = Some First_write)
    t.scalars_written

(** Host-side access analysis of an arbitrary statement (used when building
    DEF/USE sets of translated host statements). *)
let of_stmt ~alias s = analyze ~alias [ s ]
