(** Sets of variable names — the fact domain of every dataflow analysis in
    this compiler (the paper's Algorithms 1 and 2, first/last-access,
    liveness). *)

include Set.S with type elt = string

val of_seq_list : string list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
