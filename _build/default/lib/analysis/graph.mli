(** Small mutable digraph used as the CFG carrier for dataflow analyses.
    Nodes are dense integer ids [0 .. n-1]; payloads live with the client. *)

type t

val create : unit -> t

(** Allocate a fresh node and return its id. *)
val add_node : t -> int

(** Add an edge (idempotent).  @raise Invalid_argument on bad ids. *)
val add_edge : t -> int -> int -> unit

val size : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list
val nodes : t -> int array

(** Nodes in reverse postorder from [entry] (unreachable nodes appended). *)
val reverse_postorder : t -> entry:int -> int list
