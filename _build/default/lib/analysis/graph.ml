(** Small mutable digraph used as the CFG carrier for dataflow analyses.
    Nodes are dense integer ids [0 .. n-1]; payloads live with the client. *)

type t = {
  mutable n : int;
  mutable succs : int list array;
  mutable preds : int list array;
}

let create () = { n = 0; succs = Array.make 16 []; preds = Array.make 16 [] }

let grow g needed =
  if needed > Array.length g.succs then begin
    let cap = max needed (2 * Array.length g.succs) in
    let s = Array.make cap [] and p = Array.make cap [] in
    Array.blit g.succs 0 s 0 g.n;
    Array.blit g.preds 0 p 0 g.n;
    g.succs <- s;
    g.preds <- p
  end

(** Allocate a fresh node and return its id. *)
let add_node g =
  grow g (g.n + 1);
  let id = g.n in
  g.n <- g.n + 1;
  id

let add_edge g a b =
  if a < 0 || b < 0 || a >= g.n || b >= g.n then
    invalid_arg "Graph.add_edge: node out of range";
  if not (List.mem b g.succs.(a)) then begin
    g.succs.(a) <- b :: g.succs.(a);
    g.preds.(b) <- a :: g.preds.(b)
  end

let size g = g.n
let succs g i = g.succs.(i)
let preds g i = g.preds.(i)

let nodes g = Array.init g.n (fun i -> i)

(** Nodes in reverse postorder from [entry] (good worklist order for forward
    analyses; reverse it for backward ones). Unreachable nodes are appended
    at the end in id order. *)
let reverse_postorder g ~entry =
  let visited = Array.make g.n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs g.succs.(i);
      order := i :: !order
    end
  in
  if g.n > 0 then dfs entry;
  let reachable = !order in
  let unreachable =
    List.filter (fun i -> not visited.(i)) (Array.to_list (nodes g))
  in
  reachable @ unreachable
