(** Flow-insensitive points-to analysis for Mini-C pointers (the
    pointer-swap idiom of BACKPROP/LUD).  When a pointer may alias several
    arrays, downstream may-dead facts are weakened — which is how the
    paper's tool ends up issuing its occasional wrong suggestion
    (§IV-C, Table III). *)

type t = {
  points_to : Varset.t Map.Make(String).t;
  arrays : Varset.t;  (** true array variables (storage roots) *)
}

(** Points-to sets for function [fname] of a checked program. *)
val compute : Minic.Typecheck.env -> Minic.Ast.program -> string -> t

(** Array roots a variable occurrence may denote: itself if an array, its
    points-to set if a pointer, empty otherwise. *)
val resolve : t -> string -> Varset.t

(** May the name denote several distinct arrays? *)
val is_ambiguous : t -> string -> bool

(** All names that may denote the same storage as [v] (including [v]). *)
val may_alias_set : t -> string -> Varset.t
