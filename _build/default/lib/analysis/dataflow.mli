(** Generic iterative dataflow solver over {!Graph} CFGs with {!Varset}
    facts.  The paper's Algorithm 1 (may-dead/may-live), Algorithm 2
    (last-write) and the first-access placement analyses are instances with
    different directions, meets and transfer functions. *)

type direction = Forward | Backward
type meet = Union | Intersect

type spec = {
  direction : direction;
  meet : meet;
  boundary : Varset.t;  (** fact at entry (forward) / exit nodes (backward) *)
  universe : Varset.t;  (** top element, used to initialize Intersect meets *)
  transfer : int -> Varset.t -> Varset.t;  (** node -> IN fact -> OUT fact *)
}

type result = {
  input : Varset.t array;
      (** per node, the fact the transfer consumed: the meet over
          predecessors (forward) or successors (backward) — for a backward
          problem this is the paper's OUT set *)
  output : Varset.t array;  (** the fact the transfer produced *)
}

(** Worklist solve to fixpoint.
    @raise Invalid_argument if a non-monotone transfer prevents
    convergence. *)
val solve : Graph.t -> spec -> result

(** Standard gen/kill transfer: [out = (inp - kill) + gen]. *)
val gen_kill :
  gen:(int -> Varset.t) -> kill:(int -> Varset.t) -> int -> Varset.t ->
  Varset.t
