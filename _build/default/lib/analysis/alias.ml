(** Flow-insensitive points-to analysis for Mini-C pointers.

    Mini-C pointers exist to alias arrays (the pointer-swap idiom of
    BACKPROP and LUD).  The analysis computes, for every pointer variable,
    the set of array *roots* it may point to.  When a pointer may alias more
    than one array, the may-dead analysis degrades to may-dead — which is
    precisely how the paper's tool ends up issuing the occasional wrong
    suggestion that kernel verification later catches (§IV-C, Table III). *)

open Minic
open Minic.Ast

module Smap = Map.Make (String)

type t = {
  points_to : Varset.t Smap.t;  (** pointer -> may-point-to array roots *)
  arrays : Varset.t;  (** true array variables (storage roots) *)
}

let is_ptr env fname v =
  match Typecheck.var_type env fname v with
  | Some (Tptr _) -> true
  | Some _ | None -> false

let is_arr env fname v =
  match Typecheck.var_type env fname v with
  | Some (Tarr _) -> true
  | Some _ | None -> false

(** Compute points-to sets for function [fname] of [prog].  Pointer-typed
    parameters are assumed to alias nothing locally (benchmarks pass arrays
    to pure helpers only); pointer-to-pointer copies propagate sets. *)
let compute env prog fname =
  let f =
    match Ast.find_function prog fname with
    | Some f -> f
    | None -> invalid_arg ("Alias.compute: unknown function " ^ fname)
  in
  let arrays = ref Varset.empty in
  Typecheck.Smap.iter
    (fun v _ -> if is_arr env fname v then arrays := Varset.add v !arrays)
    (Typecheck.function_vars env fname);
  (* Collect direct copy edges p <- rhs_root. *)
  let edges = ref [] in
  let record p rhs =
    match rhs with
    | Evar r -> edges := (p, r) :: !edges
    | _ -> ()
  in
  iter_stmts
    (fun s ->
      match s.skind with
      | Sassign (Lvar p, rhs) when is_ptr env fname p -> record p rhs
      | Sdecl (Tptr _, p, Some rhs) -> record p rhs
      | _ -> ())
    f.f_body;
  (* Fixpoint over the copy edges. *)
  let pts = ref Smap.empty in
  let get m v =
    match Smap.find_opt v m with
    | Some s -> s
    | None -> if Varset.mem v !arrays then Varset.singleton v else Varset.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p, r) ->
        let cur = get !pts p in
        let extra = get !pts r in
        let next = Varset.union cur extra in
        if not (Varset.equal cur next) then begin
          pts := Smap.add p next !pts;
          changed := true
        end)
      !edges
  done;
  { points_to = !pts; arrays = !arrays }

(** Array roots a variable occurrence may denote: the variable itself if it
    is an array, its points-to set if a pointer, empty otherwise. *)
let resolve t v =
  if Varset.mem v t.arrays then Varset.singleton v
  else match Smap.find_opt v t.points_to with
    | Some s -> s
    | None -> Varset.empty

(** A pointer is ambiguous when it may denote several distinct arrays; the
    compiler then cannot prove deadness facts about accesses through it. *)
let is_ambiguous t v = Varset.cardinal (resolve t v) > 1

(** All variables that may denote the same storage as [v] (including [v]). *)
let may_alias_set t v =
  let roots = resolve t v in
  if Varset.is_empty roots then Varset.singleton v
  else
    Smap.fold
      (fun p s acc ->
        if Varset.is_empty (Varset.inter s roots) then acc else Varset.add p acc)
      t.points_to
      (Varset.union roots (Varset.singleton v))
