lib/analysis/varset.mli: Format Set
