lib/analysis/regions.ml: Alias Hashtbl List Minic Option Varset
