lib/analysis/dataflow.ml: Array Graph List Varset
