lib/analysis/alias.mli: Map Minic String Varset
