lib/analysis/alias.ml: Ast List Map Minic String Typecheck Varset
