lib/analysis/graph.ml: Array List
