lib/analysis/dataflow.mli: Graph Varset
