lib/analysis/varset.ml: Fmt Set String
