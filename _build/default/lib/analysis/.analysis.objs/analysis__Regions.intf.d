lib/analysis/regions.mli: Alias Hashtbl Minic Varset
