lib/analysis/graph.mli:
