(** Access analysis of compute-region bodies: which arrays are read and
    written (pointer accesses resolved through {!Alias}), how each scalar is
    first accessed (input to automatic privatization), which scalars follow
    the accumulator pattern (input to reduction recognition), and a static
    operation-count estimate for the simulator's kernel cost model. *)

type first = First_read | First_write

type t = {
  arrays_read : Varset.t;  (** resolved array roots *)
  arrays_written : Varset.t;
  raw_read : Varset.t;  (** accessed array/pointer names, unresolved *)
  raw_written : Varset.t;
  scalars_read : Varset.t;
  scalars_written : Varset.t;
  declared : Varset.t;  (** names declared inside the region *)
  first_access : (string, first) Hashtbl.t;  (** per scalar *)
  accumulators : (string * Minic.Ast.redop) list;
      (** scalars whose every write is [v = v op e] and which are read
          nowhere else inside the region *)
  ops : int;  (** static per-execution operation estimate *)
  ambiguous : Varset.t;  (** ambiguous pointers accessed in the region *)
}

(** Analyze a statement list; [alias] from the enclosing function. *)
val analyze : alias:Alias.t -> Minic.Ast.block -> t

(** Scalars written (not declared inside) whose first access is a write:
    candidates for automatic privatization. *)
val privatizable : t -> Varset.t

(** Access analysis of a single statement (DEF/USE of translated host
    statements). *)
val of_stmt : alias:Alias.t -> Minic.Ast.stmt -> t
