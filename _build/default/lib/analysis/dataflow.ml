(** Generic iterative dataflow solver over {!Graph} CFGs with {!Varset}
    facts.

    The paper's Algorithm 1 (may-dead / must-dead / may-live) and Algorithm 2
    (last-write), as well as the first-read/first-write placement analyses,
    are all instances of this solver with different directions, meets and
    transfer functions. *)

type direction = Forward | Backward

type meet = Union | Intersect

type spec = {
  direction : direction;
  meet : meet;
  boundary : Varset.t;  (** fact at entry (forward) / exit nodes (backward) *)
  universe : Varset.t;  (** top element, used to initialize Intersect meets *)
  transfer : int -> Varset.t -> Varset.t;  (** node -> IN fact -> OUT fact *)
}

type result = { input : Varset.t array; output : Varset.t array }

(* For a backward analysis we conceptually flip the graph: "IN" below is the
   fact flowing into the transfer function, i.e. the fact at the node's
   successors side for backward problems. Callers read [input.(n)] as the
   fact the transfer consumed and [output.(n)] as the fact it produced. *)
let solve g spec =
  let n = Graph.size g in
  let sources, sinks, order =
    match spec.direction with
    | Forward ->
        (Graph.preds g, Graph.succs g, Graph.reverse_postorder g ~entry:0)
    | Backward ->
        ( Graph.succs g,
          Graph.preds g,
          List.rev (Graph.reverse_postorder g ~entry:0) )
  in
  let init = match spec.meet with Union -> Varset.empty | Intersect -> spec.universe in
  let input = Array.make n init and output = Array.make n init in
  (* Boundary nodes: no sources (preds for forward, succs for backward). *)
  for i = 0 to n - 1 do
    if sources i = [] then input.(i) <- spec.boundary
  done;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n + 8 then
      (* n+8 sweeps suffice for these monotone bit-vector problems;
         guard against a non-monotone transfer looping forever. *)
      invalid_arg "Dataflow.solve: fixpoint not reached (non-monotone transfer?)";
    List.iter
      (fun node ->
        let in_fact =
          match sources node with
          | [] -> spec.boundary
          | srcs ->
              let facts = List.map (fun s -> output.(s)) srcs in
              let combine =
                match spec.meet with
                | Union -> Varset.union
                | Intersect -> Varset.inter
              in
              List.fold_left combine (List.hd facts) (List.tl facts)
        in
        let out_fact = spec.transfer node in_fact in
        if
          (not (Varset.equal in_fact input.(node)))
          || not (Varset.equal out_fact output.(node))
        then begin
          input.(node) <- in_fact;
          output.(node) <- out_fact;
          changed := true
        end)
      order;
    ignore sinks
  done;
  { input; output }

(** Standard gen/kill transfer: [out = (inp - kill) + gen]. *)
let gen_kill ~gen ~kill = fun node inp ->
  Varset.union (gen node) (Varset.diff inp (kill node))
