(** The simulated GPU device: memory space, async streams, transfer engine,
    and cost accounting.

    Data movement happens functionally at submission time; asynchrony is
    modeled in the timing domain (streams with completion times, the host
    blocking at {!wait}).  All timing flows into {!Metrics} and, when
    tracing is enabled, the {!Timeline}. *)

type stream = { mutable avail : float }

type t = {
  cm : Costmodel.t;
  metrics : Metrics.t;
  timeline : Timeline.t;
  mem : (string, Buf.t) Hashtbl.t;
  streams : (int, stream) Hashtbl.t;
  mutable rng : int;
  mutable allocated_bytes : int;
  mutable peak_bytes : int;
}

exception Device_error of string

val create : ?cm:Costmodel.t -> ?seed:int -> ?trace:bool -> unit -> t

val is_allocated : t -> string -> bool

(** @raise Device_error when the buffer is not allocated. *)
val buffer : t -> string -> Buf.t

(** Allocate a device buffer shaped like [like] (zeroed).
    @raise Device_error on double allocation. *)
val alloc : t -> string -> like:Buf.t -> unit

val free : t -> string -> unit
val free_all : t -> unit

(** Host-to-device copy into buffer [name]; [range = (lo, len)] restricts to
    a subarray; [async] enqueues on a stream (timing only); [label] is the
    timeline attribution. *)
val upload :
  t -> string -> host:Buf.t -> ?range:int * int -> ?async:int ->
  ?label:string -> unit -> unit

val download :
  t -> string -> host:Buf.t -> ?range:int * int -> ?async:int ->
  ?label:string -> unit -> unit

(** Account for a kernel execution (the functional work is done by the
    runtime's kernel executor).  [width] caps parallel lanes. *)
val launch :
  t -> iterations:int -> ops_per_iter:int -> ?width:int -> ?async:int ->
  ?label:string -> unit -> unit

(** Block the host until stream [q] (or all streams when [None]) drains. *)
val wait : t -> int option -> unit
