lib/gpusim/metrics.mli: Format
