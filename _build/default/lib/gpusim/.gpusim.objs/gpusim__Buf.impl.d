lib/gpusim/buf.ml: Array Float List
