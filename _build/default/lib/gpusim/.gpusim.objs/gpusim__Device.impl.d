lib/gpusim/device.ml: Array Buf Costmodel Float Fmt Hashtbl List Metrics Option Timeline
