lib/gpusim/costmodel.mli:
