lib/gpusim/timeline.mli: Format
