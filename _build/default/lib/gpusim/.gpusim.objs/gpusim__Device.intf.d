lib/gpusim/device.mli: Buf Costmodel Hashtbl Metrics Timeline
