lib/gpusim/timeline.ml: Buffer Fmt Hashtbl List Option String
