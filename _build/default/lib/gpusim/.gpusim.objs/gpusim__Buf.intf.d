lib/gpusim/buf.mli:
