lib/gpusim/costmodel.ml: Float
