(** The simulated GPU device: memory space, async streams, transfer engine.

    Data movement is performed functionally at submission time; asynchrony is
    modeled in the *timing* domain only (streams with completion times, the
    host blocking at [wait]).  This is sound for programs whose generated
    code synchronizes before dependent host accesses — which is exactly what
    the OpenARC code generator guarantees. *)

type stream = { mutable avail : float  (** completion time of queued work *) }

type t = {
  cm : Costmodel.t;
  metrics : Metrics.t;
  timeline : Timeline.t;
  mem : (string, Buf.t) Hashtbl.t;
  streams : (int, stream) Hashtbl.t;
  mutable rng : int;  (** LCG state for deterministic PCIe jitter *)
  mutable allocated_bytes : int;
  mutable peak_bytes : int;
}

let create ?(cm = Costmodel.default) ?(seed = 42) ?(trace = false) () =
  { cm; metrics = Metrics.create (); timeline = Timeline.create ~enabled:trace ();
    mem = Hashtbl.create 32;
    streams = Hashtbl.create 4; rng = seed; allocated_bytes = 0;
    peak_bytes = 0 }

(* Deterministic noise in [-1, 1]. *)
let noise dev =
  dev.rng <- ((dev.rng * 1103515245) + 12345) land 0x3FFFFFFF;
  (float_of_int (dev.rng mod 20001) /. 10000.) -. 1.0

let stream dev q =
  match Hashtbl.find_opt dev.streams q with
  | Some s -> s
  | None ->
      let s = { avail = 0.0 } in
      Hashtbl.add dev.streams q s;
      s

exception Device_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Device_error m)) fmt

let is_allocated dev name = Hashtbl.mem dev.mem name

let buffer dev name =
  match Hashtbl.find_opt dev.mem name with
  | Some b -> b
  | None -> fail "device buffer '%s' is not allocated" name

(** Allocate a device buffer shaped like [like] (contents zeroed). *)
let alloc dev name ~like =
  if is_allocated dev name then fail "device buffer '%s' already allocated" name;
  let b =
    match like with
    | Buf.Fbuf a -> Buf.create_float (Array.length a)
    | Buf.Ibuf a -> Buf.create_int (Array.length a)
  in
  let bytes = Buf.bytes b in
  Hashtbl.add dev.mem name b;
  dev.allocated_bytes <- dev.allocated_bytes + bytes;
  dev.peak_bytes <- max dev.peak_bytes dev.allocated_bytes;
  let duration = Costmodel.alloc_time dev.cm ~bytes in
  Timeline.record dev.timeline ~kind:(Timeline.Ev_alloc name)
    ~label:(Fmt.str "cudaMalloc(%s, %dB)" name bytes)
    ~start:dev.metrics.Metrics.host_clock ~duration ();
  Metrics.charge dev.metrics Metrics.Gpu_alloc duration

let free dev name =
  match Hashtbl.find_opt dev.mem name with
  | None -> fail "freeing unallocated device buffer '%s'" name
  | Some b ->
      let bytes = Buf.bytes b in
      Hashtbl.remove dev.mem name;
      dev.allocated_bytes <- dev.allocated_bytes - bytes;
      let duration = Costmodel.free_time dev.cm ~bytes in
      Timeline.record dev.timeline ~kind:(Timeline.Ev_free name)
        ~label:(Fmt.str "cudaFree(%s)" name)
        ~start:dev.metrics.Metrics.host_clock ~duration ();
      Metrics.charge dev.metrics Metrics.Gpu_free duration

let free_all dev =
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) dev.mem [] in
  List.iter (free dev) names

(* Charge the timing of a transfer/kernel: synchronous ops block the host;
   async ops enqueue on a stream and cost the host only a submit.
   Returns the event's start time for the timeline. *)
let charge_async dev ~async ~category ~duration =
  match async with
  | None ->
      let start = dev.metrics.Metrics.host_clock in
      Metrics.charge dev.metrics category duration;
      start
  | Some q ->
      let s = stream dev q in
      let start = Float.max dev.metrics.Metrics.host_clock s.avail in
      s.avail <- start +. duration;
      (* submission overhead on the host *)
      Metrics.charge dev.metrics category (dev.cm.Costmodel.kernel_launch /. 5.);
      start

let transfer_bytes ~range buf =
  match range with
  | None -> Buf.bytes buf
  | Some (_, len) -> len * (Buf.bytes buf / max 1 (Buf.length buf))

(** Host-to-device copy of [host] into the device buffer [name].
    [range = Some (lo, len)] restricts to a subarray. *)
let upload dev name ~host ?range ?async ?label () =
  let dbuf = buffer dev name in
  (match range with
  | None -> Buf.blit ~src:host ~dst:dbuf
  | Some (lo, len) -> Buf.blit_range ~src:host ~dst:dbuf ~lo ~len);
  let bytes = transfer_bytes ~range host in
  Metrics.record_h2d dev.metrics bytes;
  let duration = Costmodel.transfer_time dev.cm ~bytes ~noise:(noise dev) in
  let start = charge_async dev ~async ~category:Metrics.Mem_transfer ~duration in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_transfer { var = name; h2d = true; bytes })
    ~label:(Option.value label ~default:(Fmt.str "memcpyin(%s)" name))
    ~start ~duration ()

(** Device-to-host copy of the device buffer [name] into [host]. *)
let download dev name ~host ?range ?async ?label () =
  let dbuf = buffer dev name in
  (match range with
  | None -> Buf.blit ~src:dbuf ~dst:host
  | Some (lo, len) -> Buf.blit_range ~src:dbuf ~dst:host ~lo ~len);
  let bytes = transfer_bytes ~range dbuf in
  Metrics.record_d2h dev.metrics bytes;
  let duration = Costmodel.transfer_time dev.cm ~bytes ~noise:(noise dev) in
  let start = charge_async dev ~async ~category:Metrics.Mem_transfer ~duration in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_transfer { var = name; h2d = false; bytes })
    ~label:(Option.value label ~default:(Fmt.str "memcpyout(%s)" name))
    ~start ~duration ()

(** Account for a kernel execution of [iterations] x [ops_per_iter]. The
    functional execution is done by the runtime interpreter; this charges
    simulated time. *)
let launch dev ~iterations ~ops_per_iter ?width ?async ?(label = "kernel")
    () =
  dev.metrics.Metrics.kernel_launches <-
    dev.metrics.Metrics.kernel_launches + 1;
  let duration =
    Costmodel.kernel_time ?width dev.cm ~iterations ~ops_per_iter
  in
  (* Small run-to-run variance, as on real devices; this is what makes very
     light instrumentation occasionally measure as a negative overhead
     (paper Figure 4). *)
  let duration = duration *. (1.0 +. (0.06 *. noise dev)) in
  let start =
    match async with
    | None ->
        let start = dev.metrics.Metrics.host_clock in
        Metrics.charge dev.metrics Metrics.Async_wait duration;
        start
    | Some _ -> charge_async dev ~async ~category:Metrics.Cpu_time ~duration
  in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_kernel { name = label; iterations })
    ~label:(Fmt.str "%s<<<%d>>>" label iterations)
    ~start ~duration ()

(** Block the host until stream [q] (or all streams when [None]) drains. *)
let wait dev q =
  let streams =
    match q with
    | Some q -> [ stream dev q ]
    | None -> Hashtbl.fold (fun _ s acc -> s :: acc) dev.streams []
  in
  let target =
    List.fold_left (fun acc s -> Float.max acc s.avail)
      dev.metrics.Metrics.host_clock streams
  in
  let dt = target -. dev.metrics.Metrics.host_clock in
  if dt > 0.0 then begin
    Timeline.record dev.timeline ~kind:Timeline.Ev_wait ~label:"wait"
      ~start:dev.metrics.Metrics.host_clock ~duration:dt ();
    Metrics.charge dev.metrics Metrics.Async_wait dt
  end
