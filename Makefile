DUNE ?= dune

BENCHES = jacobi spmul ep cg backprop bfs cfd srad hotspot kmeans lud nw

.PHONY: all build test lint fault-matrix profile-smoke symeq-smoke regress-smoke wall-smoke scale-smoke imbalance-smoke memtrace-smoke saturate-smoke check bench clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# The hand-optimized suite is the end state of the paper's optimization
# sessions: it must lint warning-free.
lint: build
	@for b in $(BENCHES); do \
	  echo "lint bench:$$b:opt"; \
	  $(DUNE) exec --no-build bin/openarc.exe -- \
	    lint bench:$$b:opt --deny-warnings || exit 1; \
	done

# Resilience smoke: every fault kind x recovery policy on a small subset
# of the suite must recover verified-correct (the full sweep is
# `bench/main.exe faults`, which regenerates BENCH_faults.json).
# --devices 2,4 adds the device-loss-with-failover rows: a member killed
# at a kernel-launch gate whose shard must re-execute on the survivors.
fault-matrix: build
	$(DUNE) exec --no-build bin/openarc.exe -- \
	  fault-matrix --benches jacobi,ep,srad --seed 42 --devices 2,4

# Profiler byte-stability: regenerate a 3-benchmark subset of the
# per-directive profile and require it to match the committed
# BENCH_profile.json verbatim (the full sweep is `bench/main.exe profile`).
profile-smoke: build
	$(DUNE) exec --no-build bench/main.exe profile-smoke

# Symbolic-tier byte-stability: regenerate the full symbolic-equivalence
# sweep (default + fault builds of all 12 benchmarks) and require it to
# match the committed BENCH_symeq.json byte-for-byte.  A kernel silently
# dropping out of the affine fragment shows up here as a diff.
symeq-smoke: build
	$(DUNE) exec --no-build bench/main.exe symeq-smoke

# Regression sentinel smoke: diff a 3-benchmark sweep against the
# committed BENCH_profile.json baseline; exits nonzero with a
# per-directive culprit report (regress-report.json) on regression.
regress-smoke: build
	$(DUNE) exec --no-build bench/main.exe -- \
	  regress --benches jacobi,ep,srad --json regress-report.json

# Wall-clock smoke: time a 3-benchmark subset under both execution
# engines (median of 3) and require the compiled engine not to be slower
# than the tree walker; wall-report.json carries the measurements (the
# full sweep is `bench/main.exe wall`, which regenerates BENCH_wall.json).
wall-smoke: build
	$(DUNE) exec --no-build bench/main.exe -- \
	  wall --benches jacobi,ep,srad --repeats 3 --min-speedup 1.0 \
	  --json wall-report.json

# Device-set scaling byte-stability: regenerate the 1/2/4/8-device
# simulated-time sweep and require it to match the committed
# BENCH_scale.json byte-for-byte (including its monotonicity counts),
# then run one seeded 2-device device-loss cell whose lost shard must
# fail over to the survivor and verify against the sequential reference.
scale-smoke: build
	$(DUNE) exec --no-build bench/main.exe scale-smoke

# Imbalance-analyzer byte-stability: regenerate a fixed 3-benchmark
# subset (seed 42, 4 devices) of the shard-imbalance analysis — one of
# which must carry a schedule-switch verdict — and require each entry to
# match the committed BENCH_imbalance.json verbatim (the full sweep is
# `bench/main.exe imbalance`).
imbalance-smoke: build
	$(DUNE) exec --no-build bench/main.exe imbalance-smoke

# Data-movement-ledger byte-stability: regenerate a fixed 3-benchmark
# subset (seed 42, single device, instrumented) of the memtrace
# analysis, require each entry to match the committed
# BENCH_memtrace.json verbatim, and re-confirm the BACKPROP
# counterfactual prediction against a measured diff-profile delta (the
# full sweep is `bench/main.exe memtrace`).
memtrace-smoke: build
	$(DUNE) exec --no-build bench/main.exe memtrace-smoke

# Saturate-search byte-stability: re-run the automatic directive
# optimizer on a fixed 2-benchmark subset (full 1/2/4-device validation
# ladder), require each entry to match the committed BENCH_saturate.json
# verbatim, and require BACKPROP's search to accept its hoist — the
# canonical rewrite of the paper's motivating example (the full sweep is
# `bench/main.exe saturate`).
saturate-smoke: build
	$(DUNE) exec --no-build bench/main.exe saturate-smoke

check: build test lint fault-matrix profile-smoke symeq-smoke regress-smoke wall-smoke scale-smoke imbalance-smoke memtrace-smoke saturate-smoke

bench: build
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
