DUNE ?= dune

BENCHES = jacobi spmul ep cg backprop bfs cfd srad hotspot kmeans lud nw

.PHONY: all build test lint check bench clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# The hand-optimized suite is the end state of the paper's optimization
# sessions: it must lint warning-free.
lint: build
	@for b in $(BENCHES); do \
	  echo "lint bench:$$b:opt"; \
	  $(DUNE) exec --no-build bin/openarc.exe -- \
	    lint bench:$$b:opt --deny-warnings || exit 1; \
	done

check: build test lint

bench: build
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
