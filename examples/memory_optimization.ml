(* Interactive memory-transfer optimization walkthrough (§III-B, Figure 2).

   Starting from a JACOBI port that leaves all memory management to the
   OpenACC default scheme (plus a per-iteration download, as in the paper's
   Listing 3), the instrumented runtime reports redundant transfers, the
   scripted programmer applies the tool's suggestions, and the loop repeats
   until a profiled run is clean.

     dune exec examples/memory_optimization.exe
*)

let source = Suite.Jacobi.bench.Suite.Bench_def.source

let () =
  let prog = Minic.Parser.parse_string source in

  (* Step 1: profile the unoptimized program with coherence checking. *)
  let compiled = Openarc_core.Compiler.compile source in
  let outcome = Openarc_core.Compiler.run_instrumented compiled in
  let reports = Accrt.Interp.reports outcome in
  Fmt.pr "Profiled run produced %d transfer reports; first five:@."
    (List.length reports);
  List.iteri
    (fun i r -> if i < 5 then Fmt.pr "  %a@." Accrt.Coherence.pp_report r)
    reports;

  (* Step 2: the tool turns reports into suggestions. *)
  Fmt.pr "@.Suggestions:@.";
  List.iter
    (fun s -> Fmt.pr "  - %a@." Openarc_core.Suggest.pp s)
    (Openarc_core.Suggest.analyze outcome);

  (* Step 3: iterate suggestions-edit-rerun to a fixed point (Figure 2). *)
  Fmt.pr "@.Interactive optimization session:@.";
  let result =
    Openarc_core.Session.optimize ~outputs:[ "a"; "b"; "resid" ] prog
  in
  List.iter (fun l -> Fmt.pr "  %s@." l)
    (Openarc_core.Session.log_lines result);

  let n0, b0 = Openarc_core.Session.transfer_stats prog in
  let n1, b1 =
    Openarc_core.Session.transfer_stats result.Openarc_core.Session.final
  in
  Fmt.pr
    "@.Converged in %d iteration(s) (%d wrong suggestions along the \
     way).@.Transfers: %d (%d bytes)  ->  %d (%d bytes)@."
    result.Openarc_core.Session.iterations
    result.Openarc_core.Session.incorrect_iterations n0 b0 n1 b1;

  Fmt.pr "@.Final program:@.%s@."
    (Minic.Pretty.program_to_string result.Openarc_core.Session.final)
