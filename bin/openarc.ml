(** The [openarc] command-line driver.

    Subcommands mirror the workflows of the paper:
    - [compile]  : translate and show the generated CUDA-style program
    - [run]      : execute on the simulated GPU, with optional coherence
                   profiling (memory-transfer verification, §III-B)
    - [profile]  : span-based tracing with per-directive cost attribution
                   (Figure 3/4 breakdown), coherence audit log, flamegraph
    - [analyze]  : shard-level imbalance analysis over a device set, with
                   a block/cyclic schedule verdict from re-costing the
                   recorded iteration weights
    - [verify]   : kernel verification against the sequential reference
                   (§III-A), with OpenARC-style [verificationOptions]
    - [saturate] : search-based automatic directive optimization — apply
                   the ledger's hoist/present/merge verdicts (plus
                   structural kernel fusion) greedily with rollback,
                   validating every rewrite before it sticks
    - [optimize] : the interactive optimization loop of Figure 2, driven by
                   a scripted programmer
    - [session]  : the same loop with structured per-iteration telemetry
                   and inter-iteration profile diffs
    - [diff-profile]: compare two per-directive cost profiles (the
                   canonical [profile --json] documents)
    - [lint]     : static directive diagnostics — race/privatization
                   errors and compile-time transfer classification
    - [benchmarks]: list the bundled benchmark suite

    Exit codes: 0 success, 1 failed run / lint findings, 2 malformed
    input.

    A [FILE] argument of the form [bench:NAME[:opt]] loads a bundled
    benchmark instead of a file. *)

open Cmdliner

let load_source path =
  if String.length path > 6 && String.sub path 0 6 = "bench:" then begin
    let rest = String.sub path 6 (String.length path - 6) in
    let name, variant =
      match String.index_opt rest ':' with
      | Some i ->
          (String.sub rest 0 i,
           String.sub rest (i + 1) (String.length rest - i - 1))
      | None -> (rest, "source")
    in
    match Suite.Registry.find name with
    | None -> Fmt.failwith "unknown benchmark '%s'" name
    | Some b ->
        if variant = "opt" || variant = "optimized" then
          b.Suite.Bench_def.optimized
        else b.Suite.Bench_def.source
  end
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src
  end

let file_arg =
  Arg.(required
       & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Mini-C/OpenACC source file, or bench:NAME")

let fault_arg =
  Arg.(value & flag
       & info [ "fault-injection" ]
           ~doc:"Disable automatic privatization/reduction recognition and \
                 strip private/reduction clauses (Table II configuration)")

let opts_of_fault fault =
  if fault then Codegen.Options.fault_injection else Codegen.Options.default

let prepare ?obs ~fault src =
  let phase name f =
    match obs with
    | None -> f ()
    | Some tr -> Obs.Trace.with_span tr Obs.Trace.Phase name f
  in
  let prog =
    phase "parse" (fun () -> Minic.Parser.parse_string ~file:"<input>" src)
  in
  let prog =
    if fault then Openarc_core.Faults.strip_parallelism_clauses prog else prog
  in
  ( prog,
    Openarc_core.Compiler.compile_program ~opts:(opts_of_fault fault) ?obs
      prog )

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Exit codes: 0 success, 1 runtime/simulation failure (or lint findings),
   2 malformed input (lexical/syntax/type errors, invalid OpenACC). *)
let handle_code f =
  try f () with
  | (Minic.Loc.Error _ | Acc.Validate.Invalid _) as e ->
      Fmt.epr "%s@." (Printexc.to_string e);
      2
  | Sys_error msg | Failure msg ->
      (* unreadable FILE, unknown benchmark name, ... *)
      Fmt.epr "openarc: %s@." msg;
      2
  | (Accrt.Value.Runtime_error _ | Gpusim.Device.Device_error _) as e ->
      Fmt.epr "%s@." (Printexc.to_string e);
      1
  (* Device faults carry distinct diagnostic codes: ACC-FAULT-001 is a
     fault the active resilience policy could not mask; ACC-FAULT-002 is a
     raw fault with no recovery policy armed. *)
  | Accrt.Resilience.Unrecovered f ->
      Fmt.epr "openarc: [ACC-FAULT-001] unrecovered device fault: %s on \
               '%s' during %s@."
        (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)
        f.Gpusim.Device.f_target f.Gpusim.Device.f_op;
      1
  | Gpusim.Device.Device_fault f ->
      Fmt.epr "openarc: [ACC-FAULT-002] device fault: %s on '%s' during \
               %s (no resilience policy; rerun with --resilience)@."
        (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)
        f.Gpusim.Device.f_target f.Gpusim.Device.f_op;
      1

(* Malformed --device-faults / --resilience specs exit 2 (the [Failure]
   branch above) like any other malformed input. *)
let plan_of_spec ~seed = function
  | None -> None
  | Some spec -> (
      match Gpusim.Fault_plan.of_spec ~seed spec with
      | Ok p -> Some p
      | Error e -> Fmt.failwith "invalid --device-faults spec: %s" e)

let policy_of_name name =
  match Accrt.Resilience.of_string name with
  | Ok p -> p
  | Error e -> Fmt.failwith "invalid --resilience policy: %s" e

let seed_arg =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"N"
           ~doc:"Deterministic seed for device jitter and fault injection \
                 (the same seed reproduces a faulty run exactly)")

let devices_arg =
  Arg.(value & opt int 1
       & info [ "devices" ] ~docv:"N"
           ~doc:"Size of the simulated device set (default 1: the single \
                 standalone device). With N > 1 the runtime broadcasts \
                 uploads, shards parallel kernels across members, and \
                 fails a lost member's shards over to the survivors")

let schedule_arg =
  let sched_conv =
    Arg.enum
      [ ("block", Gpusim.Device_set.Block);
        ("cyclic", Gpusim.Device_set.Cyclic) ]
  in
  Arg.(value & opt sched_conv Gpusim.Device_set.Block
       & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"How parallel-loop iteration spaces split across the \
                 device set: 'block' (contiguous chunks, default) or \
                 'cyclic' (round-robin)")

(* A fault rule aimed at device ordinal d needs at least d+1 devices;
   out-of-range ids are malformed input (exit 2), not silent no-ops. *)
let check_devices ~devices plan =
  if devices < 1 then
    Fmt.failwith "invalid --devices: %d (must be >= 1)" devices;
  match plan with
  | None -> ()
  | Some p -> (
      match Gpusim.Fault_plan.max_dev p with
      | Some d when d >= devices ->
          Fmt.failwith
            "invalid --device-faults spec: rule targets device %d but only \
             %d device(s) are configured (need --devices >= %d)"
            d devices (d + 1)
      | _ -> ())

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("tree", Accrt.Engine.Tree); ("compiled", Accrt.Engine.Compiled) ]
  in
  Arg.(value & opt engine_conv Accrt.Engine.Tree
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: 'tree' walks the AST; 'compiled' runs \
                 closure-compiled code over slot-resolved register frames \
                 (observably identical, several times faster in \
                 wall-clock)")

let handle f = handle_code (fun () -> f (); 0)

(* ----------------------------- compile ----------------------------- *)

let compile_cmd =
  let emit_cuda =
    Arg.(value & flag
         & info [ "emit-cuda" ] ~doc:"Print the CUDA-style translation")
  in
  let instrument =
    Arg.(value & flag
         & info [ "instrument" ]
             ~doc:"Insert the coherence runtime checks before printing")
  in
  let run file fault emit_cuda instrument =
    handle (fun () ->
        let _, c = prepare ~fault (load_source file) in
        let tp = c.Openarc_core.Compiler.tprog in
        let tp =
          if instrument then Codegen.Checkgen.instrument tp else tp
        in
        if emit_cuda || instrument then
          Fmt.pr "%a@." Codegen.Cuda.pp tp
        else begin
          Fmt.pr "translated %d kernel(s):@."
            (Array.length tp.Codegen.Tprog.kernels);
          Array.iter
            (fun k ->
              Fmt.pr "  %-20s arrays(read=%s write=%s) %s%s@."
                k.Codegen.Tprog.k_name
                (Analysis.Varset.to_string k.Codegen.Tprog.k_arrays_read)
                (Analysis.Varset.to_string k.Codegen.Tprog.k_arrays_written)
                (if k.Codegen.Tprog.k_has_private_data then "[private] "
                 else "")
                (if k.Codegen.Tprog.k_has_reduction then "[reduction]" else ""))
            tp.Codegen.Tprog.kernels
        end)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Translate an OpenACC program")
    Term.(const run $ file_arg $ fault_arg $ emit_cuda $ instrument)

(* ------------------------------- run ------------------------------- *)

let run_cmd =
  let instrument =
    Arg.(value & flag
         & info [ "instrument" ]
             ~doc:"Profile with the coherence runtime and print the \
                   missing/incorrect/redundant-transfer reports (§III-B)")
  in
  let trace =
    Arg.(value
         & opt (some string) None
         & info [ "trace"; "trace-json" ] ~docv:"FILE"
             ~doc:"Write a Chrome-trace JSON timeline of the simulated \
                   execution (open in chrome://tracing or Perfetto); with \
                   --devices N the file has one lane per member plus a \
                   host lane")
  in
  let fine =
    Arg.(value & flag
         & info [ "fine-grained" ]
             ~doc:"Track coherence per element range instead of per whole \
                   array (the granularity alternative of the paper's \
                   SIII-B discussion)")
  in
  let device_faults =
    Arg.(value
         & opt (some string) None
         & info [ "device-faults" ] ~docv:"SPEC"
             ~doc:"Inject device faults: comma-separated \
                   KIND[:TARGET][@PROB][xCOUNT] rules with KIND in bitflip, \
                   xfer-fail, xfer-partial, xfer-corrupt, launch-fail, \
                   launch-timeout, oom, device-lost; an optional #DEV \
                   suffix pins a rule to one device-set member (e.g. \
                   'bitflip:a@0.5x3,device-lost#1')")
  in
  let resilience =
    Arg.(value & opt string "none"
         & info [ "resilience" ] ~docv:"POLICY"
             ~doc:"Recovery policy for injected faults: none (propagate), \
                   retry (bounded retry + checksum re-transfer + verified \
                   re-execution), or full (retry plus CPU fallback)")
  in
  let faults_json =
    Arg.(value
         & opt (some string) None
         & info [ "faults-json" ] ~docv:"FILE"
             ~doc:"Write the fault/recovery report as JSON to FILE")
  in
  let run file fault instrument trace fine device_faults resilience seed
      engine devices schedule faults_json =
    handle (fun () ->
        let plan = plan_of_spec ~seed device_faults in
        check_devices ~devices plan;
        let policy = policy_of_name resilience in
        let _, c = prepare ~fault (load_source file) in
        let tp = c.Openarc_core.Compiler.tprog in
        let tp =
          if instrument then Codegen.Checkgen.instrument tp else tp
        in
        let granularity =
          if fine then Accrt.Coherence.Fine else Accrt.Coherence.Coarse
        in
        (* A multi-device trace gets the per-device lane exporter, which
           needs an observability trace for the host lane; single-device
           runs keep the exact legacy output. *)
        let obs =
          if devices > 1 && trace <> None then Some (Obs.Trace.create ())
          else None
        in
        (* The ledger feeds the per-device allocated-bytes counter lanes
           of the multi-device Chrome export. *)
        let ledger =
          if devices > 1 && trace <> None then
            Some
              (Obs.Ledger.create ~devices
                 ~schedule:(Gpusim.Device_set.schedule_name schedule))
          else None
        in
        let o =
          Accrt.Interp.run ~coherence:instrument ~engine ~granularity ~seed
            ~trace:(trace <> None) ?plan ~resilience:policy ~devices
            ~schedule ?obs ?ledger tp
        in
        (match trace with
        | Some path ->
            let json, count =
              match obs with
              | Some tr ->
                  let tls =
                    Array.map
                      (fun d -> d.Gpusim.Device.timeline)
                      o.Accrt.Interp.devset.Gpusim.Device_set.devices
                  in
                  let host =
                    Obs.Chrome.host_lane_events tr
                    @ (match ledger with
                      | Some lg -> Obs.Ledger.chrome_counter_events lg
                      | None -> [])
                  in
                  ( Gpusim.Timeline.to_chrome_json_devices ~host tls,
                    List.length host
                    + Array.fold_left
                        (fun acc tl -> acc + Gpusim.Timeline.count tl)
                        0 tls )
              | None ->
                  let tl = o.Accrt.Interp.device.Gpusim.Device.timeline in
                  (Gpusim.Timeline.to_chrome_json tl,
                   Gpusim.Timeline.count tl)
            in
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Fmt.pr "timeline (%d events) written to %s@." count path
        | None -> ());
        Fmt.pr "%a@." Gpusim.Metrics.pp (Accrt.Interp.metrics o);
        (if plan <> None || policy.Accrt.Resilience.p_name <> "none" then
           let plan =
             Option.value plan ~default:(Gpusim.Fault_plan.none ())
           in
           Fmt.pr "@.%a@."
             (Accrt.Resilience.pp_report ~seed ~plan ~policy
                ~metrics:(Accrt.Interp.metrics o))
             o.Accrt.Interp.resilience;
           match faults_json with
           | Some path ->
               let oc = open_out path in
               output_string oc
                 (Accrt.Resilience.report_json ~seed ~plan ~policy
                    ~metrics:(Accrt.Interp.metrics o)
                    o.Accrt.Interp.resilience);
               output_char oc '\n';
               close_out oc;
               Fmt.pr "fault report written to %s@." path
           | None -> ());
        if instrument then begin
          let reports = Accrt.Interp.reports o in
          Fmt.pr "@.%d report(s), grouped:@." (List.length reports);
          List.iter (Fmt.pr "  %s@.") (Accrt.Coherence.summarize reports);
          Fmt.pr "@.suggestions:@.";
          List.iter
            (fun s -> Fmt.pr "  %a@." Openarc_core.Suggest.pp s)
            (Openarc_core.Suggest.analyze o)
        end)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program on the simulated accelerator")
    Term.(const run $ file_arg $ fault_arg $ instrument $ trace $ fine
          $ device_faults $ resilience $ seed_arg $ engine_arg
          $ devices_arg $ schedule_arg $ faults_json)

(* ------------------------------ profile ---------------------------- *)

let category_names =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

let audit_status_of = function
  | Codegen.Tprog.Not_stale -> Obs.Audit.Notstale
  | Codegen.Tprog.May_stale -> Obs.Audit.Maystale
  | Codegen.Tprog.Stale -> Obs.Audit.Stale

let tprog_device_of = function
  | Obs.Audit.Cpu -> Codegen.Tprog.Cpu
  | Obs.Audit.Gpu -> Codegen.Tprog.Gpu

(* The audit log must replay, from the all-fresh initial state, to exactly
   the final per-copy statuses the runtime reports. *)
let audit_replays audit (o : Accrt.Interp.outcome) =
  List.for_all
    (fun ((var, dev), st) ->
      audit_status_of
        (Accrt.Coherence.get o.Accrt.Interp.coherence var
           (tprog_device_of dev))
      = st)
    (Obs.Audit.final_states audit)

let profile_cmd =
  let instrument =
    Arg.(value & flag
         & info [ "instrument" ]
             ~doc:"Profile with the coherence runtime enabled (populates \
                   the audit log and the Check-Overhead category)")
  in
  let fine =
    Arg.(value & flag
         & info [ "fine-grained" ]
             ~doc:"Track coherence per element range instead of per whole \
                   array")
  in
  let device_faults =
    Arg.(value
         & opt (some string) None
         & info [ "device-faults" ] ~docv:"SPEC"
             ~doc:"Inject device faults while profiling (recovery work \
                   shows up as Recovery spans and Fault-Recovery time)")
  in
  let resilience =
    Arg.(value & opt string "none"
         & info [ "resilience" ] ~docv:"POLICY"
             ~doc:"Recovery policy: none, retry or full")
  in
  let json =
    Arg.(value
         & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the per-directive cost report as canonical JSON")
  in
  let flame =
    Arg.(value
         & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Write a folded-stack flamegraph (flamegraph.pl / \
                   speedscope input)")
  in
  let events =
    Arg.(value
         & opt (some string) None
         & info [ "events" ] ~docv:"FILE"
             ~doc:"Write the raw span/charge/audit event stream as JSONL \
                   (schema openarc.obs v1)")
  in
  let trace =
    Arg.(value
         & opt (some string) None
         & info [ "trace"; "trace-json" ] ~docv:"FILE"
             ~doc:"Write a Chrome-trace JSON timeline of the device \
                   events; with --devices N the file has one lane per \
                   member plus a host lane of directive spans")
  in
  let run file fault instrument fine device_faults resilience seed devices
      schedule json flame events trace =
    handle_code (fun () ->
        let plan = plan_of_spec ~seed device_faults in
        check_devices ~devices plan;
        let policy = policy_of_name resilience in
        let tr = Obs.Trace.create () in
        let audit = Obs.Audit.create () in
        let session =
          Obs.Trace.start_span tr Obs.Trace.Session ("profile " ^ file) ()
        in
        let _, c = prepare ~obs:tr ~fault (load_source file) in
        let tp = c.Openarc_core.Compiler.tprog in
        let tp =
          if instrument then Codegen.Checkgen.instrument tp else tp
        in
        let granularity =
          if fine then Accrt.Coherence.Fine else Accrt.Coherence.Coarse
        in
        let ledger =
          if devices > 1 && trace <> None then
            Some
              (Obs.Ledger.create ~devices
                 ~schedule:(Gpusim.Device_set.schedule_name schedule))
          else None
        in
        let o =
          Accrt.Interp.run ~coherence:instrument ~granularity ~seed
            ~trace:true ?plan ~resilience:policy ~devices ~schedule ~obs:tr
            ?ledger ~audit tp
        in
        Obs.Trace.end_span tr session;
        let metrics = Accrt.Interp.metrics o in
        let p = Obs.Profile.of_trace ~categories:category_names tr in
        Fmt.pr "per-directive cost breakdown for %s (seed %d):@.@." file seed;
        Fmt.pr "%a@." Obs.Profile.pp p;
        let total = Gpusim.Metrics.total_time metrics in
        let conserved = Obs.Profile.conserves p ~total in
        Fmt.pr "conservation: %s (profiled %.9f s, metrics %.9f s)@."
          (if conserved then "exact" else "FAILED")
          p.Obs.Profile.p_total total;
        let replayed = audit_replays audit o in
        Fmt.pr "audit: %d coherence transition(s), replay %s@."
          (Obs.Audit.length audit)
          (if replayed then "consistent" else "INCONSISTENT");
        (match json with
        | Some path ->
            write_file path (Obs.Profile.to_json ~name:file ~seed p);
            Fmt.pr "profile written to %s@." path
        | None -> ());
        (match flame with
        | Some path ->
            write_file path (Obs.Profile.folded tr);
            Fmt.pr "flamegraph stacks written to %s@." path
        | None -> ());
        (match events with
        | Some path ->
            write_file path (Obs.Trace.to_jsonl tr ^ Obs.Audit.to_jsonl audit);
            Fmt.pr "event stream written to %s@." path
        | None -> ());
        (match trace with
        | Some path ->
            write_file path
              (if devices > 1 then
                 Gpusim.Timeline.to_chrome_json_devices
                   ~host:
                     (Obs.Chrome.host_lane_events tr
                     @ (match ledger with
                       | Some lg -> Obs.Ledger.chrome_counter_events lg
                       | None -> []))
                   (Array.map
                      (fun d -> d.Gpusim.Device.timeline)
                      o.Accrt.Interp.devset.Gpusim.Device_set.devices)
               else
                 Gpusim.Timeline.to_chrome_json
                   o.Accrt.Interp.device.Gpusim.Device.timeline);
            Fmt.pr "timeline written to %s@." path
        | None -> ());
        if conserved && replayed then 0 else 1)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a program: span-based trace, per-directive cost \
             attribution (the paper's Figure 3/4 breakdown), coherence \
             audit log, and flamegraph export")
    Term.(const run $ file_arg $ fault_arg $ instrument $ fine
          $ device_faults $ resilience $ seed_arg $ devices_arg
          $ schedule_arg $ json $ flame $ events $ trace)

(* ------------------------------ analyze ---------------------------- *)

let analyze_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the analysis as canonical JSON (schema \
                   openarc.obs.imbalance, version 1) instead of the text \
                   report")
  in
  let out =
    Arg.(value
         & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON analysis to FILE (implies --json \
                   formatting for the file; the text report still prints)")
  in
  let run file fault seed engine devices schedule json out =
    handle_code (fun () ->
        (* The analyzer compares schedules across a device set; a single
           device has nothing to rebalance. *)
        if devices < 2 then
          Fmt.failwith
            "invalid --devices: %d (analyze needs a device set; use \
             --devices >= 2)"
            devices;
        check_devices ~devices None;
        let _, c = prepare ~fault (load_source file) in
        let tp = c.Openarc_core.Compiler.tprog in
        let o = Accrt.Interp.run ~engine ~seed ~devices ~schedule tp in
        match o.Accrt.Interp.imbalance with
        | None -> Fmt.failwith "no shard log recorded (internal error)"
        | Some il ->
            let a = Obs.Imbalance.analyze il in
            if json then print_string (Obs.Imbalance.to_json ~name:file ~seed a)
            else Fmt.pr "%a" Obs.Imbalance.pp a;
            (match out with
            | Some path ->
                write_file path (Obs.Imbalance.to_json ~name:file ~seed a);
                if not json then Fmt.pr "analysis written to %s@." path
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run a program across a simulated device set and report \
             shard-level cost imbalance per kernel — spread, \
             idle-at-barrier, merge overhead — plus a block/cyclic \
             schedule verdict from re-costing the recorded \
             iteration-space weights under the alternative split")
    Term.(const run $ file_arg $ fault_arg $ seed_arg $ engine_arg
          $ devices_arg $ schedule_arg $ json $ out)

(* ----------------------------- memtrace ---------------------------- *)

let memtrace_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the ledger analysis as canonical JSON (schema \
                   openarc.obs.memtrace, version 1) instead of the text \
                   report")
  in
  let out =
    Arg.(value
         & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON analysis to FILE (implies --json \
                   formatting for the file; the text report still prints)")
  in
  let run file fault seed engine devices schedule json out =
    handle_code (fun () ->
        check_devices ~devices None;
        let _, c = prepare ~fault (load_source file) in
        (* The redundancy attribution reads the §III-B coherence lattice,
           so the program runs instrumented with the runtime enabled. *)
        let tp = Codegen.Checkgen.instrument c.Openarc_core.Compiler.tprog in
        let lg =
          Obs.Ledger.create ~devices
            ~schedule:(Gpusim.Device_set.schedule_name schedule)
        in
        let o =
          Accrt.Interp.run ~coherence:true ~engine ~seed ~devices ~schedule
            ~ledger:lg tp
        in
        let cm = o.Accrt.Interp.device.Gpusim.Device.cm in
        let a =
          Obs.Ledger.analyze lg
            ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
            ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth
        in
        if json then print_string (Obs.Ledger.to_json ~name:file ~seed a)
        else Fmt.pr "%a" Obs.Ledger.pp a;
        (match out with
        | Some path ->
            write_file path (Obs.Ledger.to_json ~name:file ~seed a);
            if not json then Fmt.pr "ledger written to %s@." path
        | None -> ());
        0)
  in
  Cmd.v
    (Cmd.info "memtrace"
       ~doc:"Run a program with the data-movement ledger attached and \
             report per-array transfer attribution (typed causes, device \
             ordinals, source directives), live allocation watermarks, \
             and counterfactual hoist/present/merge savings re-costed \
             under the gpusim transfer model")
    Term.(const run $ file_arg $ fault_arg $ seed_arg $ engine_arg
          $ devices_arg $ schedule_arg $ json $ out)

(* ----------------------------- saturate ---------------------------- *)

let saturate_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the search report as canonical JSON (schema \
                   openarc.obs.saturate, version 1) instead of the text \
                   report")
  in
  let apply =
    Arg.(value & flag
         & info [ "apply" ]
             ~doc:"Emit the patched program (accepted rewrites applied): \
                   to --out FILE when given, else to stdout (the report \
                   then goes to stderr)")
  in
  let out =
    Arg.(value
         & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"With --apply, write the patched program to FILE \
                   instead of stdout")
  in
  let max_steps =
    Arg.(value & opt int 16
         & info [ "max-steps" ] ~docv:"N"
             ~doc:"Candidate-attempt budget of the greedy search \
                   (accepted or rejected; default 16)")
  in
  let run file fault seed devices json apply out max_steps =
    handle_code (fun () ->
        check_devices ~devices None;
        if max_steps < 1 then
          Fmt.failwith "invalid --max-steps: %d (must be >= 1)" max_steps;
        (* Both the JSON report and the patched source default to stdout;
           writing both there would interleave two documents. *)
        if json && apply && out = None then
          Fmt.failwith
            "--json and --apply both print to stdout; pass --out FILE for \
             the patched program";
        let src = load_source file in
        let prog = Minic.Parser.parse_string ~file:"<input>" src in
        let prog =
          if fault then Openarc_core.Faults.strip_parallelism_clauses prog
          else prog
        in
        (* Designated outputs: the benchmark's declared ones, else every
           array a kernel writes (the host-visible footprint). *)
        let outputs =
          let from_bench =
            if String.length file > 6 && String.sub file 0 6 = "bench:" then
              let rest = String.sub file 6 (String.length file - 6) in
              let name =
                match String.index_opt rest ':' with
                | Some i -> String.sub rest 0 i
                | None -> rest
              in
              Option.map
                (fun b -> b.Suite.Bench_def.outputs)
                (Suite.Registry.find name)
            else None
          in
          match from_bench with
          | Some outs -> outs
          | None ->
              let env = Minic.Typecheck.check prog in
              let tp = Codegen.Translate.translate env prog in
              Array.fold_left
                (fun acc k ->
                  Analysis.Varset.union acc
                    k.Codegen.Tprog.k_arrays_written)
                Analysis.Varset.empty tp.Codegen.Tprog.kernels
              |> Analysis.Varset.elements
        in
        (* [--devices N] caps the validated device-set sizes (always
           including N itself, so a 8-device user validates at 8). *)
        let check_devices_list =
          List.sort_uniq compare
            (devices :: List.filter (fun d -> d < devices) [ 1; 2; 4 ])
        in
        let config =
          { Saturate.default_config with
            Saturate.seed;
            max_steps;
            check_devices = check_devices_list }
        in
        let r = Saturate.run ~config ~name:file ~outputs prog in
        let report ppf =
          if json then Fmt.pf ppf "%s" (Saturate.to_json r)
          else Fmt.pf ppf "%a" Saturate.pp r
        in
        (match (apply, out) with
        | false, _ -> report Fmt.stdout
        | true, Some path ->
            report Fmt.stdout;
            write_file path (Minic.Pretty.program_to_string r.Saturate.r_program);
            if not json then Fmt.pr "patched program written to %s@." path
        | true, None ->
            (* Patched source is the stdout payload; report to stderr. *)
            report Fmt.stderr;
            print_string
              (Minic.Pretty.program_to_string r.Saturate.r_program));
        0)
  in
  Cmd.v
    (Cmd.info "saturate"
       ~doc:"Search-based automatic directive optimization: rank the \
             data-movement ledger's hoist/present/merge verdicts (plus \
             structural kernel fusion), greedily apply the top rewrite, \
             validate it via the symbolic tier, kernel verification, \
             bit-identical outputs under both engines and 1/2/4-device \
             sets, and a measured diff-profile confirmation, then repeat \
             until no material candidate remains")
    Term.(const run $ file_arg $ fault_arg $ seed_arg $ devices_arg $ json
          $ apply $ out $ max_steps)

(* ------------------------------ verify ----------------------------- *)

let verify_cmd =
  let options =
    Arg.(value
         & opt (some string) None
         & info [ "options" ]
             ~docv:"SPEC"
             ~doc:"OpenARC-style verification options, e.g. \
                   'complement=0,kernels=main_kernel0' or \
                   'errorMargin=1e-6,minValueToCheck=1e-32'")
  in
  let show_transformed =
    Arg.(value
         & opt (some string) None
         & info [ "show-transformed" ]
             ~docv:"KERNEL"
             ~doc:"Print the memory-transfer-demoted source for KERNEL \
                   (the paper's Listing 2) instead of verifying")
  in
  let trace =
    Arg.(value
         & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome-trace JSON timeline of the verification \
                   run's device events")
  in
  let events =
    Arg.(value
         & opt (some string) None
         & info [ "events" ] ~docv:"FILE"
             ~doc:"Write the verification span/charge stream as JSONL \
                   (schema openarc.obs v1)")
  in
  let symbolic =
    Arg.(value & flag
         & info [ "symbolic" ]
             ~doc:"Run the tier-0 symbolic equivalence check first: \
                   kernels proved equivalent over the affine fragment \
                   skip the numeric comparison run; the rest fall back \
                   to it")
  in
  let symeq_json =
    Arg.(value
         & opt (some string) None
         & info [ "symeq-json" ] ~docv:"FILE"
             ~doc:"Write the symbolic verdicts as canonical JSON \
                   (schema openarc.obs.symeq v1); implies $(b,--symbolic)")
  in
  let run file fault options show_transformed trace events symbolic
      symeq_json =
    handle (fun () ->
        let obs =
          if events <> None then Some (Obs.Trace.create ()) else None
        in
        let prog, c = prepare ?obs ~fault (load_source file) in
        match show_transformed with
        | Some kname ->
            Fmt.pr "%s@."
              (Openarc_core.Demotion.to_string c.Openarc_core.Compiler.tprog
                 kname)
        | None ->
            let config =
              match options with
              | Some s -> Openarc_core.Vconfig.of_string s
              | None ->
                  (* fall back to the OPENARC_VERIFICATION environment
                     variable, as OpenARC does *)
                  Openarc_core.Vconfig.from_env ()
            in
            let symbolic = symbolic || symeq_json <> None in
            let v =
              Openarc_core.Kernel_verify.verify ~opts:(opts_of_fault fault)
                ~config ?obs ~trace:(trace <> None) ~symbolic prog
            in
            (match v.Openarc_core.Kernel_verify.symeq with
            | Some result ->
                Fmt.pr "%a@.@." Symeq.Report.pp
                  { Symeq.Report.program = file; result };
                (match symeq_json with
                | Some path ->
                    write_file path
                      (Symeq.Report.to_json
                         { Symeq.Report.program = file; result }
                       ^ "\n");
                    Fmt.pr "symbolic verdicts written to %s@." path
                | None -> ())
            | None -> ());
            List.iter
              (fun r -> Fmt.pr "%a@." Openarc_core.Kernel_verify.pp_report r)
              v.Openarc_core.Kernel_verify.reports;
            let bad =
              List.length (Openarc_core.Kernel_verify.detected_errors v)
            in
            Fmt.pr "@.%d kernel(s) with detected errors@." bad;
            (match trace with
            | Some path ->
                write_file path
                  (Gpusim.Timeline.to_chrome_json
                     v.Openarc_core.Kernel_verify.timeline);
                Fmt.pr "timeline written to %s@." path
            | None -> ());
            (match (events, obs) with
            | Some path, Some tr ->
                write_file path (Obs.Trace.to_jsonl tr);
                Fmt.pr "event stream written to %s@." path
            | _ -> ()))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify translated kernels against the sequential reference")
    Term.(const run $ file_arg $ fault_arg $ options $ show_transformed
          $ trace $ events $ symbolic $ symeq_json)

(* ----------------------------- optimize ---------------------------- *)

let optimize_cmd =
  let outputs =
    Arg.(required
         & opt (some string) None
         & info [ "outputs" ] ~docv:"VARS"
             ~doc:"Comma-separated host variables that define observable \
                   correctness")
  in
  let max_iterations =
    Arg.(value & opt int 12 & info [ "max-iterations" ] ~docv:"N" ~doc:"Cap")
  in
  let conservative =
    Arg.(value & flag
         & info [ "conservative" ]
             ~doc:"Apply only suggestions backed by certain evidence \
                   (skip may-dead-based ones)")
  in
  let show_final =
    Arg.(value & flag
         & info [ "show-final" ] ~doc:"Print the optimized program")
  in
  let run file outputs max_iterations conservative show_final =
    handle (fun () ->
        let prog = Minic.Parser.parse_string ~file:"<input>"
            (load_source file) in
        let outputs = String.split_on_char ',' outputs in
        let policy =
          if conservative then Openarc_core.Session.Conservative
          else Openarc_core.Session.Follow_all
        in
        let r =
          Openarc_core.Session.optimize ~policy ~max_iterations ~outputs
            prog
        in
        List.iter (fun l -> Fmt.pr "%s@." l)
          (Openarc_core.Session.log_lines r);
        Fmt.pr "@.%d iteration(s), %d incorrect, converged: %b@."
          r.Openarc_core.Session.iterations
          r.Openarc_core.Session.incorrect_iterations
          r.Openarc_core.Session.converged;
        let n0, b0 = Openarc_core.Session.transfer_stats prog in
        let n1, b1 =
          Openarc_core.Session.transfer_stats r.Openarc_core.Session.final
        in
        Fmt.pr "transfers: %d (%d bytes) -> %d (%d bytes)@." n0 b0 n1 b1;
        if show_final then
          Fmt.pr "@.%s@."
            (Minic.Pretty.program_to_string r.Openarc_core.Session.final))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the interactive memory-transfer optimization loop")
    Term.(const run $ file_arg $ outputs $ max_iterations $ conservative
          $ show_final)

(* ------------------------------ session ---------------------------- *)

let session_cmd =
  let outputs =
    Arg.(required
         & opt (some string) None
         & info [ "outputs" ] ~docv:"VARS"
             ~doc:"Comma-separated host variables that define observable \
                   correctness")
  in
  let max_iterations =
    Arg.(value & opt int 12 & info [ "max-iterations" ] ~docv:"N" ~doc:"Cap")
  in
  let conservative =
    Arg.(value & flag
         & info [ "conservative" ]
             ~doc:"Apply only suggestions backed by certain evidence")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Print the full iteration-by-iteration narrative with \
                   inter-iteration profile diffs")
  in
  let json =
    Arg.(value
         & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the session telemetry (per-iteration records, \
                   embedded profiles, profile deltas) as canonical JSON")
  in
  let run file outputs max_iterations conservative devices schedule report
      json =
    handle (fun () ->
        check_devices ~devices None;
        let prog =
          Minic.Parser.parse_string ~file:"<input>" (load_source file)
        in
        let outputs = String.split_on_char ',' outputs in
        let policy =
          if conservative then Openarc_core.Session.Conservative
          else Openarc_core.Session.Follow_all
        in
        let r =
          Openarc_core.Session.optimize ~policy ~max_iterations ~devices
            ~schedule ~outputs prog
        in
        if report then
          Fmt.pr "%s" (Openarc_core.Session.report ~name:file r)
        else begin
          List.iter
            (fun (it : Openarc_core.Session.iteration) ->
              Fmt.pr "iteration %d: outputs %s, %d transfer(s), %d \
                      byte(s)%s@."
                it.Openarc_core.Session.it_index
                (if it.Openarc_core.Session.it_outputs_ok then "ok"
                 else "DIVERGED")
                it.Openarc_core.Session.it_transfers
                it.Openarc_core.Session.it_bytes
                (if it.Openarc_core.Session.it_note = "" then ""
                 else "; " ^ it.Openarc_core.Session.it_note))
            r.Openarc_core.Session.telemetry;
          Fmt.pr "%d iteration(s), %d incorrect, converged: %b@."
            r.Openarc_core.Session.iterations
            r.Openarc_core.Session.incorrect_iterations
            r.Openarc_core.Session.converged
        end;
        match json with
        | Some path ->
            write_file path (Openarc_core.Session.to_json ~name:file r);
            Fmt.pr "session telemetry written to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Run the interactive optimization loop with structured \
             per-iteration telemetry: profile snapshots, coherence report \
             counts, applied suggestions, verification outcomes, and \
             inter-iteration profile diffs")
    Term.(const run $ file_arg $ outputs $ max_iterations $ conservative
          $ devices_arg $ schedule_arg $ report $ json)

(* ---------------------------- diff-profile -------------------------- *)

let diff_profile_cmd =
  let before_arg =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"BEFORE"
             ~doc:"Baseline profile (canonical 'openarc profile --json' \
                   document)")
  in
  let after_arg =
    Arg.(required
         & pos 1 (some string) None
         & info [] ~docv:"AFTER" ~doc:"Profile to compare against BEFORE")
  in
  let json =
    Arg.(value
         & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the diff as canonical JSON (schema \
                   openarc.obs.profile-diff)")
  in
  let read_profile path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Diff.profile_of_json s with
    | Ok (p, name, _seed) -> (p, if name = "" then path else name)
    | Error e -> Fmt.failwith "%s: not a canonical profile (%s)" path e
  in
  let run before after json =
    handle (fun () ->
        let pb, nb = read_profile before in
        let pa, na = read_profile after in
        let d =
          Obs.Diff.diff ~before_name:nb ~after_name:na ~before:pb ~after:pa
            ()
        in
        Fmt.pr "%a" Obs.Diff.pp d;
        match json with
        | Some path ->
            write_file path (Obs.Diff.to_json d);
            Fmt.pr "diff written to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "diff-profile"
       ~doc:"Compare two per-directive cost profiles: per-directive, \
             per-category deltas with improved/regressed/appeared/vanished \
             attribution")
    Term.(const run $ before_arg $ after_arg $ json)

(* ------------------------------- lint ------------------------------ *)

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit diagnostics as a JSON array")
  in
  let severity =
    Arg.(value
         & opt
             (enum
                [ ("error", Lint.Diag.Error);
                  ("warning", Lint.Diag.Warning);
                  ("info", Lint.Diag.Info) ])
             Lint.Diag.Warning
         & info [ "severity" ] ~docv:"LEVEL"
             ~doc:"Lowest severity to display: error, warning (default) \
                   or info")
  in
  let deny_warnings =
    Arg.(value & flag
         & info [ "deny-warnings" ]
             ~doc:"Exit non-zero when warnings remain (CI gating)")
  in
  let run file fault json severity deny_warnings =
    handle_code (fun () ->
        let ds = Lint.run_string ~fault ~file (load_source file) in
        let shown = Lint.Diag.filter ~threshold:severity ds in
        if json then Fmt.pr "%s@." (Lint.Diag.to_json shown)
        else begin
          Fmt.pr "%s" (Lint.Diag.to_text shown);
          let count s =
            List.length
              (List.filter (fun d -> d.Lint.Diag.severity = s) ds)
          in
          Fmt.pr "%d error(s), %d warning(s), %d info(s)@."
            (count Lint.Diag.Error) (count Lint.Diag.Warning)
            (count Lint.Diag.Info)
        end;
        let fail_threshold =
          if deny_warnings then Lint.Diag.Warning else Lint.Diag.Error
        in
        if
          List.exists
            (fun d -> Lint.Diag.at_least fail_threshold d.Lint.Diag.severity)
            ds
        then 1
        else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check directives: data races requiring \
             private/reduction clauses, cross-iteration array conflicts, \
             and missing/redundant memory transfers — before any execution")
    Term.(const run $ file_arg $ fault_arg $ json $ severity $ deny_warnings)

(* --------------------------- fault-matrix -------------------------- *)

let fault_matrix_cmd =
  let benches =
    Arg.(value
         & opt (some string) None
         & info [ "benches" ] ~docv:"NAMES"
             ~doc:"Comma-separated benchmark names (default: the whole \
                   suite)")
  in
  let kinds =
    Arg.(value
         & opt (some string) None
         & info [ "kinds" ] ~docv:"KINDS"
             ~doc:"Comma-separated fault kinds to sweep (default: all)")
  in
  let json =
    Arg.(value
         & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the matrix as JSON to FILE")
  in
  let split s =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let trace =
    Arg.(value
         & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a merged Chrome trace of every cell's device \
                   timeline (one process per bench/fault/policy cell)")
  in
  let devices =
    Arg.(value
         & opt (some string) None
         & info [ "devices" ] ~docv:"COUNTS"
             ~doc:"Comma-separated device-set sizes (each > 1, e.g. '2,4') \
                   to additionally sweep device-loss-with-failover rows \
                   on: one member is killed at a kernel-launch gate and \
                   its shard must fail over to the survivors")
  in
  let run benches kinds seed devices json trace =
    handle_code (fun () ->
        let subjects =
          (match benches with
          | None -> Suite.Registry.all
          | Some s ->
              List.map
                (fun n ->
                  match Suite.Registry.find n with
                  | Some b -> b
                  | None -> Fmt.failwith "unknown benchmark '%s'" n)
                (split s))
          |> List.map (fun (b : Suite.Bench_def.t) ->
                 { Openarc_core.Fault_matrix.s_name = b.Suite.Bench_def.name;
                   s_source = b.Suite.Bench_def.source;
                   s_outputs = b.Suite.Bench_def.outputs })
        in
        let kinds =
          Option.map
            (fun s ->
              List.map
                (fun k ->
                  match Gpusim.Fault_plan.kind_of_name k with
                  | Some k -> k
                  | None -> Fmt.failwith "unknown fault kind '%s'" k)
                (split s))
            kinds
        in
        let device_counts =
          match devices with
          | None -> []
          | Some s ->
              List.map
                (fun n ->
                  match int_of_string_opt n with
                  | Some v when v > 1 -> v
                  | _ ->
                      Fmt.failwith
                        "invalid --devices count '%s' (each must be an \
                         integer > 1)"
                        n)
                (split s)
        in
        let m =
          Openarc_core.Fault_matrix.run ~seed ?kinds ~device_counts
            ~trace:(trace <> None) subjects
        in
        Fmt.pr "%a@." Openarc_core.Fault_matrix.pp m;
        (match json with
        | Some path ->
            write_file path (Openarc_core.Fault_matrix.to_json m ^ "\n");
            Fmt.pr "matrix written to %s@." path
        | None -> ());
        (match trace with
        | Some path ->
            write_file path (Openarc_core.Fault_matrix.trace_json m);
            Fmt.pr "merged timeline written to %s@." path
        | None -> ());
        if Openarc_core.Fault_matrix.all_ok m then 0 else 1)
  in
  Cmd.v
    (Cmd.info "fault-matrix"
       ~doc:"Sweep fault kinds x recovery policies over the benchmark \
             suite, asserting every combination recovers verified-correct \
             or degrades to CPU fallback")
    Term.(const run $ benches $ kinds $ seed_arg $ devices $ json $ trace)

(* ---------------------------- benchmarks --------------------------- *)

let benchmarks_cmd =
  let run () =
    List.iter
      (fun (b : Suite.Bench_def.t) ->
        Fmt.pr "%-10s %2d kernel(s)  %s@." b.Suite.Bench_def.name
          b.Suite.Bench_def.expected_kernels b.Suite.Bench_def.description)
      Suite.Registry.all;
    0
  in
  Cmd.v
    (Cmd.info "benchmarks" ~doc:"List the bundled OpenACC benchmark suite")
    Term.(const run $ const ())

let () =
  let doc = "OpenARC reproduction: OpenACC debugging and optimization" in
  let info = Cmd.info "openarc" ~version:"1.0.0" ~doc in
  exit
    (* [~term_err:2]: argument-parsing errors (unknown flags, bad
       operands) are malformed input, exit code 2 — not cmdliner's
       default 124. *)
    (Cmd.eval' ~term_err:2
       (Cmd.group info
          [ compile_cmd; run_cmd; profile_cmd; analyze_cmd; memtrace_cmd;
            saturate_cmd; verify_cmd; optimize_cmd; session_cmd;
            diff_profile_cmd; lint_cmd; fault_matrix_cmd; benchmarks_cmd ]))
