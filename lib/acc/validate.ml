(** OpenACC V1.0 directive validation: clause legality per construct,
    well-formedness of nesting, and data-clause sanity.

    OpenARC accepts the full OpenACC V1.0 feature set; this module rejects
    programs outside it before translation, with located error messages. *)

open Minic
open Minic.Ast

let clause_name = function
  | Cdata (k, _) -> Pretty.data_kind_str k
  | Cprivate _ -> "private"
  | Cfirstprivate _ -> "firstprivate"
  | Creduction _ -> "reduction"
  | Cgang _ -> "gang"
  | Cworker _ -> "worker"
  | Cvector _ -> "vector"
  | Cnum_gangs _ -> "num_gangs"
  | Cnum_workers _ -> "num_workers"
  | Cvector_length _ -> "vector_length"
  | Casync _ -> "async"
  | Cif _ -> "if"
  | Ccollapse _ -> "collapse"
  | Cseq -> "seq"
  | Cindependent -> "independent"
  | Chost _ -> "host"
  | Cdevice _ -> "device"
  | Cuse_device _ -> "use_device"

(* Clause legality table, following the OpenACC 1.0 spec (§2). *)
let allowed_on construct clause =
  let data_ok = match clause with Cdata _ -> true | _ -> false in
  match construct with
  | Acc_parallel | Acc_kernels -> (
      data_ok
      ||
      match clause with
      | Casync _ | Cif _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Cprivate _ | Cfirstprivate _ | Creduction _ -> true
      | _ -> false)
  | Acc_parallel_loop | Acc_kernels_loop -> (
      data_ok
      ||
      match clause with
      | Casync _ | Cif _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Cprivate _ | Cfirstprivate _ | Creduction _ | Cgang _ | Cworker _
      | Cvector _ | Ccollapse _ | Cseq | Cindependent -> true
      | _ -> false)
  | Acc_loop -> (
      match clause with
      | Cgang _ | Cworker _ | Cvector _ | Ccollapse _ | Cseq | Cindependent
      | Cprivate _ | Creduction _ -> true
      | _ -> false)
  | Acc_data -> data_ok || (match clause with Cif _ -> true | _ -> false)
  | Acc_host_data -> ( match clause with Cuse_device _ -> true | _ -> false)
  | Acc_update -> (
      match clause with
      | Chost _ | Cdevice _ | Casync _ | Cif _ -> true
      | _ -> false)
  | Acc_declare -> data_ok
  | Acc_wait _ | Acc_cache _ -> false

let construct_name d = Pretty.construct_str d

exception Invalid of Loc.t * string

let invalid loc fmt = Fmt.kstr (fun m -> raise (Invalid (loc, m))) fmt

let () =
  Printexc.register_printer (function
    | Invalid (loc, m) -> Some (Fmt.str "OpenACC error at %a: %s" Loc.pp loc m)
    | _ -> None)

let check_directive d =
  List.iter
    (fun cl ->
      if not (allowed_on d.dir cl) then
        invalid d.dloc "clause '%s' is not allowed on '%s'" (clause_name cl)
          (construct_name d.dir))
    d.clauses;
  (* A variable may appear in at most one data clause of a directive. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (_, sub) ->
      if Hashtbl.mem seen sub.sub_var then
        invalid d.dloc "variable '%s' appears in multiple data clauses"
          sub.sub_var;
      Hashtbl.add seen sub.sub_var ())
    (Query.data_clauses d);
  (* Clauses that configure the construct may appear at most once. *)
  let singles = Hashtbl.create 8 in
  List.iter
    (fun cl ->
      match cl with
      | Cif _ | Casync _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
      | Ccollapse _ | Cgang _ | Cworker _ | Cvector _ | Cseq
      | Cindependent ->
          let n = clause_name cl in
          if Hashtbl.mem singles n then
            invalid d.dloc "duplicate '%s' clause" n;
          Hashtbl.add singles n ()
      | _ -> ())
    d.clauses;
  if Hashtbl.mem singles "seq" && Hashtbl.mem singles "independent" then
    invalid d.dloc "'seq' and 'independent' are contradictory";
  List.iter
    (function
      | Ccollapse n when n < 1 ->
          invalid d.dloc "collapse(%d): argument must be at least 1" n
      | _ -> ())
    d.clauses;
  (* update requires at least one host/device clause. *)
  (match d.dir with
  | Acc_update ->
      if Query.update_host_subs d = [] && Query.update_device_subs d = [] then
        invalid d.dloc "update directive needs a host() or device() clause"
  | _ -> ());
  (* Subarray sanity: a constant lower bound must be non-negative, a
     constant length positive.  Bounds must be both present or both
     absent (the parser enforces that). *)
  let rec const_int = function
    | Eint n -> Some n
    | Eunop (Neg, e) -> Option.map (fun n -> -n) (const_int e)
    | Ebinop (Add, a, b) -> (
        match (const_int a, const_int b) with
        | Some x, Some y -> Some (x + y)
        | _ -> None)
    | Ebinop (Sub, a, b) -> (
        match (const_int a, const_int b) with
        | Some x, Some y -> Some (x - y)
        | _ -> None)
    | Ebinop (Mul, a, b) -> (
        match (const_int a, const_int b) with
        | Some x, Some y -> Some (x * y)
        | _ -> None)
    | _ -> None
  in
  let check_sub sub =
    (match Option.bind sub.sub_lo const_int with
    | Some lo when lo < 0 ->
        invalid d.dloc "subarray '%s[%d:...]': negative lower bound"
          sub.sub_var lo
    | _ -> ());
    match Option.bind sub.sub_len const_int with
    | Some n when n <= 0 ->
        invalid d.dloc "subarray '%s[...:%d]': length must be positive"
          sub.sub_var n
    | _ -> ()
  in
  List.iter (fun (_, sub) -> check_sub sub) (Query.data_clauses d);
  List.iter check_sub (Query.update_host_subs d);
  List.iter check_sub (Query.update_device_subs d);
  (* Private vars must not also be in a data clause or a reduction. *)
  let data_vars = Query.data_vars d in
  let red_vars = List.map snd (Query.reductions d) in
  List.iter
    (fun v ->
      if List.mem v data_vars then
        invalid d.dloc "variable '%s' is both private and in a data clause" v;
      if List.mem v red_vars then
        invalid d.dloc "variable '%s' is both private and a reduction" v)
    (Query.private_vars d)

(* Structural rules on the statement tree. *)
let rec check_stmt ~in_compute s =
  match s.skind with
  | Sacc (d, body) -> (
      check_directive d;
      (match d.dir with
      | Acc_parallel | Acc_kernels | Acc_parallel_loop | Acc_kernels_loop ->
          if in_compute then
            invalid d.dloc "compute regions may not nest";
          (match body with
          | Some _ -> ()
          | None ->
              invalid d.dloc "'%s' requires a following statement"
                (construct_name d.dir))
      | Acc_data | Acc_host_data ->
          if in_compute then
            invalid d.dloc "'%s' may not appear inside a compute region"
              (construct_name d.dir)
      | Acc_loop ->
          if not in_compute then
            invalid d.dloc
              "orphaned 'loop' directive outside any compute region";
          (match body with
          | Some { skind = Sfor _; _ } -> ()
          | _ -> invalid d.dloc "'loop' must be followed by a for loop")
      | Acc_update | Acc_wait _ ->
          if in_compute then
            invalid d.dloc "'%s' may not appear inside a compute region"
              (construct_name d.dir)
      | Acc_declare | Acc_cache _ -> ());
      let in_compute = in_compute || Query.is_compute d.dir in
      (* loop directives must be attached to a for statement *)
      (match (d.dir, body) with
      | (Acc_parallel_loop | Acc_kernels_loop), Some { skind = Sfor _; _ } -> ()
      | (Acc_parallel_loop | Acc_kernels_loop), Some _ ->
          invalid d.dloc "'%s' must be followed by a for loop"
            (construct_name d.dir)
      | _ -> ());
      Option.iter (check_stmt ~in_compute) body)
  | Sif (_, b1, b2) ->
      List.iter (check_stmt ~in_compute) b1;
      List.iter (check_stmt ~in_compute) b2
  | Swhile (_, b) -> List.iter (check_stmt ~in_compute) b
  | Sfor (_, _, _, b) -> List.iter (check_stmt ~in_compute) b
  | Sblock b -> List.iter (check_stmt ~in_compute) b
  | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
      ()

(** Validate every directive in [prog]; raises {!Invalid} on the first
    violation. *)
let check_program prog =
  List.iter
    (fun f -> List.iter (check_stmt ~in_compute:false) f.f_body)
    (functions prog)
