(** Directive and statement editing — the interactive optimizer's "user
    edits" (Figure 2): rewrite directives addressed by the [sid] of their
    carrying statement, move variables between data-clause kinds, insert or
    remove [update] directives, wrap computations in [data] regions. *)

open Minic.Ast

(** A bare subarray reference [v]. *)
val sub : string -> subarray

(** Remove [v] from every data clause; drops emptied clauses. *)
val remove_data_var : clause list -> string -> clause list

val remove_private_var : clause list -> string -> clause list
val remove_reduction_var : clause list -> string -> clause list

(** Add a subarray to the clause of [kind] (merging when one exists). *)
val add_data_sub : clause list -> data_kind -> subarray -> clause list

val add_data_var : clause list -> data_kind -> string -> clause list

(** Add [v] to the [private] clause (merging when one exists). *)
val add_private_var : clause list -> string -> clause list

(** Add [v] to the [reduction(op:...)] clause (merging clauses of the same
    operator). *)
val add_reduction_var : clause list -> redop -> string -> clause list

(** Move [v] to data-clause [kind] (removing it from any other). *)
val set_data_kind : clause list -> string -> data_kind -> clause list

val find_data_kind : clause list -> string -> data_kind option

(** Rewrite the directive carried by statement [sid]. *)
val map_directive :
  program -> sid:int -> f:(directive -> directive) -> program

(** Rebuild every block, [f] replacing each statement by a list (children
    already rewritten). *)
val expand_block : (stmt -> stmt list) -> block -> block

val expand_program : (stmt -> stmt list) -> program -> program

val insert_after : program -> sid:int -> stmt list -> program
val insert_before : program -> sid:int -> stmt list -> program
val remove_stmt : program -> sid:int -> program

(** Build an [update host(vs)] / [update device(vs)] statement. *)
val mk_update : ?loc:Minic.Loc.t -> host:bool -> string list -> stmt

(** Innermost enclosing loop statement of [sid], if any. *)
val enclosing_loop : program -> sid:int -> stmt option

(** Remove [v] from the host/device clauses of an update clause list. *)
val remove_update_var : clause list -> host:bool -> string -> clause list

(** Drop the redundant [side] of a data-clause kind (copy -In-> copyout,
    copyin -In-> create, ...). *)
val weaken_kind : data_kind -> [ `In | `Out ] -> data_kind

val weaken_clause :
  program -> sid:int -> var:string -> side:[ `In | `Out ] -> program

(** Grow the missing [side] of a data-clause kind (create -Out-> copyout,
    copyin -Out-> copy, ...). *)
val strengthen_kind : data_kind -> [ `In | `Out ] -> data_kind

val strengthen_clause :
  program -> sid:int -> var:string -> side:[ `In | `Out ] -> program

(** All sids contained in a statement, including its own. *)
val sids_of_stmt : stmt -> int list

(** Wrap the contiguous span of [main]'s top-level statements containing
    both sids in a directive (typically [data]). *)
val wrap_span :
  program -> first_sid:int -> last_sid:int -> directive:directive -> program

(** Wrap the single statement [sid] — at any nesting depth — in a
    directive (typically [data]); the new carrier gets a fresh sid. *)
val wrap_stmt : program -> sid:int -> directive:directive -> program

(** A [data] directive from (var, kind) clauses. *)
val mk_data_directive :
  ?loc:Minic.Loc.t -> (string * data_kind) list -> directive

val has_data_region : program -> bool

(** Data-region directives naming [var], with their subtree sids. *)
val regions_with_var :
  program -> var:string -> (int * directive * int list) list
