(** Directive and statement editing.

    The interactive optimization loop of the paper has the *programmer* edit
    the data clauses of the input OpenACC program after each round of tool
    suggestions.  These primitives are the edits: they rewrite directives in
    place (addressed by the [sid] of the carrying [Sacc] statement), move a
    variable between data-clause kinds, and insert/remove [update] directives
    relative to existing statements. *)

open Minic.Ast

let sub v = { sub_var = v; sub_lo = None; sub_len = None }

(** Remove [v] from every data clause in [clauses]; drops emptied clauses. *)
let remove_data_var clauses v =
  List.filter_map
    (function
      | Cdata (kind, subs) -> (
          match List.filter (fun s -> s.sub_var <> v) subs with
          | [] -> None
          | subs -> Some (Cdata (kind, subs)))
      | c -> Some c)
    clauses

let remove_private_var clauses v =
  List.filter_map
    (function
      | Cprivate vs -> (
          match List.filter (fun x -> x <> v) vs with
          | [] -> None
          | vs -> Some (Cprivate vs))
      | c -> Some c)
    clauses

let remove_reduction_var clauses v =
  List.filter_map
    (function
      | Creduction (op, vs) -> (
          match List.filter (fun x -> x <> v) vs with
          | [] -> None
          | vs -> Some (Creduction (op, vs)))
      | c -> Some c)
    clauses

(** Add [sa] to the data clause of [kind], merging with an existing clause of
    the same kind when present. *)
let add_data_sub clauses kind sa =
  let merged = ref false in
  let clauses =
    List.map
      (function
        | Cdata (k, subs) when k = kind && not !merged ->
            merged := true;
            Cdata (k, subs @ [ sa ])
        | c -> c)
      clauses
  in
  if !merged then clauses else clauses @ [ Cdata (kind, [ sa ]) ]

let add_data_var clauses kind v = add_data_sub clauses kind (sub v)

(** Add [v] to the [private] clause, merging with an existing one. *)
let add_private_var clauses v =
  let clauses = remove_private_var clauses v in
  let merged = ref false in
  let clauses =
    List.map
      (function
        | Cprivate vs when not !merged ->
            merged := true;
            Cprivate (vs @ [ v ])
        | c -> c)
      clauses
  in
  if !merged then clauses else clauses @ [ Cprivate [ v ] ]

(** Add [v] to the [reduction(op:...)] clause, merging with an existing
    clause of the same operator. *)
let add_reduction_var clauses op v =
  let clauses = remove_reduction_var clauses v in
  let merged = ref false in
  let clauses =
    List.map
      (function
        | Creduction (o, vs) when o = op && not !merged ->
            merged := true;
            Creduction (o, vs @ [ v ])
        | c -> c)
      clauses
  in
  if !merged then clauses else clauses @ [ Creduction (op, [ v ]) ]

(** Move [v] to data-clause kind [kind] (removing it from any other). *)
let set_data_kind clauses v kind =
  add_data_var (remove_data_var clauses v) kind v

let find_data_kind clauses v =
  List.find_map
    (function
      | Cdata (kind, subs) when List.exists (fun s -> s.sub_var = v) subs ->
          Some kind
      | _ -> None)
    clauses

(** Rewrite the directive carried by statement [sid].  Returns the rewritten
    program; [f] is applied exactly to the matching directive. *)
let map_directive prog ~sid ~f =
  map_program
    (fun s ->
      match s.skind with
      | Sacc (d, body) when s.sid = sid -> { s with skind = Sacc (f d, body) }
      | _ -> s)
    prog

(* Rebuild every block, letting [f] replace each statement by a list. *)
let rec expand_block f b = List.concat_map (expand_stmt f) b

and expand_stmt f s =
  let skind =
    match s.skind with
    | (Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue)
      as k -> k
    | Sif (c, b1, b2) -> Sif (c, expand_block f b1, expand_block f b2)
    | Swhile (c, b) -> Swhile (c, expand_block f b)
    | Sfor (i, c, st, b) -> Sfor (i, c, st, expand_block f b)
    | Sblock b -> Sblock (expand_block f b)
    | Sacc (d, body) ->
        Sacc (d, Option.map (fun b -> as_single (expand_stmt f b)) body)
  in
  f { s with skind }

and as_single = function
  | [ s ] -> s
  | stmts -> mk_stmt (Sblock stmts)

let expand_program f prog =
  { globals =
      List.map
        (function
          | Gfunc fn -> Gfunc { fn with f_body = expand_block f fn.f_body }
          | g -> g)
        prog.globals }

(** Insert [stmts] immediately after the statement with id [sid]. *)
let insert_after prog ~sid stmts =
  expand_program (fun s -> if s.sid = sid then s :: stmts else [ s ]) prog

(** Insert [stmts] immediately before the statement with id [sid]. *)
let insert_before prog ~sid stmts =
  expand_program (fun s -> if s.sid = sid then stmts @ [ s ] else [ s ]) prog

(** Delete the statement with id [sid] (directive statements included). *)
let remove_stmt prog ~sid =
  expand_program (fun s -> if s.sid = sid then [] else [ s ]) prog

(** Build an [update host(vs)] or [update device(vs)] statement. *)
let mk_update ?(loc = Minic.Loc.dummy) ~host vars =
  let subs = List.map sub vars in
  let clauses = if host then [ Chost subs ] else [ Cdevice subs ] in
  mk_stmt ~loc (Sacc ({ dir = Acc_update; clauses; dloc = loc }, None))

(** Find the innermost enclosing loop statement of [sid], if any. *)
let enclosing_loop prog ~sid =
  let result = ref None in
  let rec walk_stmt enclosing s =
    let enclosing' =
      match s.skind with Sfor _ | Swhile _ -> Some s | _ -> enclosing
    in
    if s.sid = sid then (if !result = None then result := Some enclosing);
    match s.skind with
    | Sif (_, b1, b2) -> List.iter (walk_stmt enclosing') b1;
                         List.iter (walk_stmt enclosing') b2
    | Swhile (_, b) -> List.iter (walk_stmt enclosing') b
    | Sfor (_, _, _, b) -> List.iter (walk_stmt enclosing') b
    | Sblock b -> List.iter (walk_stmt enclosing') b
    | Sacc (_, body) -> Option.iter (walk_stmt enclosing') body
    | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
        ()
  in
  List.iter
    (fun f -> List.iter (walk_stmt None) f.f_body)
    (functions prog);
  Option.join !result

(** Remove [v] from the [host]/[device] clauses of an update directive's
    clause list; drops emptied clauses. *)
let remove_update_var clauses ~host v =
  List.filter_map
    (function
      | Chost subs when host -> (
          match List.filter (fun s -> s.sub_var <> v) subs with
          | [] -> None
          | subs -> Some (Chost subs))
      | Cdevice subs when not host -> (
          match List.filter (fun s -> s.sub_var <> v) subs with
          | [] -> None
          | subs -> Some (Cdevice subs))
      | c -> Some c)
    clauses

(** Data-clause weakening used by the optimizer: drop the [side] of a
    clause kind that a profiled run showed to be redundant. *)
let weaken_kind kind side =
  match (kind, side) with
  | (Dk_copy | Dk_pcopy), `In -> Dk_copyout
  | (Dk_copy | Dk_pcopy), `Out -> Dk_copyin
  | (Dk_copyin | Dk_pcopyin), `In -> Dk_create
  | (Dk_copyout | Dk_pcopyout), `Out -> Dk_create
  | k, _ -> k

(** Weaken [v]'s data clause on the directive at [sid]. *)
let weaken_clause prog ~sid ~var ~side =
  map_directive prog ~sid ~f:(fun d ->
      match find_data_kind d.clauses var with
      | None -> d
      | Some kind ->
          let kind' = weaken_kind kind side in
          if kind' = kind then d
          else { d with clauses = set_data_kind d.clauses var kind' })

(* sids contained in a statement, including itself. *)
let sids_of_stmt s =
  let acc = ref [] in
  iter_stmt (fun st -> acc := st.sid :: !acc) s;
  !acc

(** Wrap the contiguous span of [main]'s top-level statements that contains
    both [first_sid] and [last_sid] in a directive (typically [data]). *)
let wrap_span prog ~first_sid ~last_sid ~directive =
  let globals =
    List.map
      (function
        | Gfunc fn when fn.f_name = "main" ->
            let body = fn.f_body in
            let contains sid s = List.mem sid (sids_of_stmt s) in
            let idx_of sid =
              let rec go i = function
                | [] -> None
                | s :: rest -> if contains sid s then Some i else go (i + 1) rest
              in
              go 0 body
            in
            (match (idx_of first_sid, idx_of last_sid) with
            | Some i, Some j ->
                let lo = min i j and hi = max i j in
                let before = List.filteri (fun k _ -> k < lo) body in
                let span =
                  List.filteri (fun k _ -> k >= lo && k <= hi) body
                in
                let after = List.filteri (fun k _ -> k > hi) body in
                let wrapped =
                  mk_stmt
                    (Sacc (directive, Some (mk_stmt (Sblock span))))
                in
                Gfunc { fn with f_body = before @ [ wrapped ] @ after }
            | _ -> Gfunc fn)
        | g -> g)
      prog.globals
  in
  { globals }

(** Wrap the single statement [sid] — at any nesting depth — in a directive
    (typically [data]).  The wrapped statement keeps its sid; the new
    carrying [Sacc] statement gets a fresh one. *)
let wrap_stmt prog ~sid ~directive =
  expand_program
    (fun s ->
      if s.sid = sid then [ mk_stmt ~loc:s.sloc (Sacc (directive, Some s)) ]
      else [ s ])
    prog

(** Build a [data] directive from (var, kind) clauses. *)
let mk_data_directive ?(loc = Minic.Loc.dummy) vars =
  let clauses =
    List.map (fun (v, kind) -> Cdata (kind, [ sub v ])) vars
  in
  { dir = Acc_data; clauses; dloc = loc }

(** Does the program already contain an explicit data region? *)
let has_data_region prog =
  List.exists
    (fun (_, _, d) -> d.dir = Acc_data)
    (Query.directives_of prog)

(** Clause strengthening: when a profiled run shows a transfer is *missing*
    on [side] of a region boundary, the clause grows the corresponding
    copy. *)
let strengthen_kind kind side =
  match (kind, side) with
  | (Dk_create | Dk_pcreate), `Out -> Dk_copyout
  | (Dk_copyin | Dk_pcopyin), `Out -> Dk_copy
  | (Dk_create | Dk_pcreate), `In -> Dk_copyin
  | (Dk_copyout | Dk_pcopyout), `In -> Dk_copy
  | k, _ -> k

let strengthen_clause prog ~sid ~var ~side =
  map_directive prog ~sid ~f:(fun d ->
      match find_data_kind d.clauses var with
      | None -> d
      | Some kind ->
          let kind' = strengthen_kind kind side in
          if kind' = kind then d
          else { d with clauses = set_data_kind d.clauses var kind' })

(** Data-region directives (sid, directive) that name [var] in a data
    clause, paired with whether their subtree contains statement [at]. *)
let regions_with_var prog ~var =
  let acc = ref [] in
  List.iter
    (fun f ->
      iter_stmts
        (fun s ->
          match s.skind with
          | Sacc (({ dir = Acc_data; _ } as d), _)
            when List.mem var (Query.data_vars d) ->
              acc := (s.sid, d, sids_of_stmt s) :: !acc
          | _ -> ())
        f.f_body)
    (functions prog);
  List.rev !acc
