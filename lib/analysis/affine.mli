(** Affine subscript analysis shared by the race linter and the symbolic
    equivalence tier.

    A parallel kernel loop is characterized by its induction variable and
    a set of [varying] names (anything whose value differs from iteration
    to iteration).  Each subscript dimension of an array access is then
    classified as iteration-invariant, induction-affine (base + constant
    offset, with the induction variable's linear coefficient when known),
    or opaque.  Two affine access summaries can be tested for a
    cross-iteration overlap by solving for a common nonzero iteration
    shift per dimension. *)

open Minic.Ast

(** {1 Expression utilities} *)

val expr_vars : Varset.t -> expr -> Varset.t
(** [expr_vars acc e] adds every variable mentioned in [e] to [acc]. *)

val vars_of : expr -> Varset.t

val split_offset : expr -> expr * int
(** Split [e] into an affine base and a constant offset: [e = base + k]. *)

val fingerprint : expr -> string
(** Canonical fingerprint of an expression (pretty-printed form), for
    comparing subscript bases syntactically. *)

val iv_coeff : string -> expr -> int option
(** [iv_coeff iv e] is the coefficient of [iv] in [e] when [e] is linear
    in it; [None] when the dependence is not analyzably linear
    ([i * n], [(i + 1) % n], ...). *)

(** {1 Per-dimension classification} *)

(** How one subscript dimension behaves across iterations of the
    parallel loop. *)
type dim =
  | Dinv of string  (** same element on every iteration (fingerprint) *)
  | Daff of { base : string; off : int; coeff : int option }
      (** induction-derived base + constant offset; [coeff] is the
          induction variable's linear coefficient when known *)
  | Dopaque  (** varies, but not analyzably (inner loops, computed) *)

val classify_dim : iv:string -> varying:Varset.t -> expr -> dim

(** {1 Whole-access summary} *)

(** Iteration-invariant only when every dimension is; opaque as soon as
    one dimension is (an inner-loop subscript makes cross-iteration
    overlap undecidable here, e.g. the column of a row-parallel
    stencil). *)
type affine = { base : string; offs : int list; coeffs : int option list }

type summary = Invariant | Affine of affine | Opaque

val classify_access : iv:string -> varying:Varset.t -> expr list -> summary

val conflicting : affine -> affine -> bool
(** Can access [a] at iteration [x] and access [b] at iteration [x + d],
    [d <> 0], touch the same element?  Requires identical per-dimension
    bases; then every dimension demands [coeff_k * d = off_b_k - off_a_k].
    A dimension with an unknown coefficient is conservatively satisfiable
    whenever it needs a shift at all.  [temp[dst][i][j]] never conflicts
    with [temp[src][i][j]] (different bases); [sm[i][d - i]] never
    conflicts with [sm[i - 1][d - i - 1]] (coefficients +1/-1 admit no
    common shift); [a[i]] conflicts with [a[i + 1]] (d = 1). *)

(** {1 Array access walk} *)

type access = { a_arr : string; a_subs : expr list; a_write : bool }

val expr_root_subs : expr list -> expr -> (string * expr list) option
(** Subscripts of an access whose base is a plain variable,
    outermost-first. *)

val lvalue_root_subs : expr list -> lvalue -> (string * expr list) option

val accesses_of_block : stmt list -> access list
(** Every array access in the block, reads and writes, in source order. *)
