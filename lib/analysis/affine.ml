(** Affine subscript analysis shared by the race linter (cross-iteration
    conflict diagnostics) and the symbolic equivalence tier (disjointness
    obligations for parallel array writes).  Extracted from
    [lib/lint/race.ml]. *)

open Minic.Ast

(* ----------------------- expression utilities ----------------------- *)

let rec expr_vars acc = function
  | Eint _ | Efloat _ -> acc
  | Evar v -> Varset.add v acc
  | Eindex (a, i) -> expr_vars (expr_vars acc a) i
  | Eunop (_, e) -> expr_vars acc e
  | Ebinop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ecall (_, args) -> List.fold_left expr_vars acc args
  | Econd (c, a, b) -> expr_vars (expr_vars (expr_vars acc c) a) b

let vars_of e = expr_vars Varset.empty e

(* Split [e] into an affine base and a constant offset: [e = base + k]. *)
let rec split_offset = function
  | Ebinop (Add, e, Eint k) | Ebinop (Add, Eint k, e) ->
      let b, k0 = split_offset e in
      (b, k0 + k)
  | Ebinop (Sub, e, Eint k) ->
      let b, k0 = split_offset e in
      (b, k0 - k)
  | e -> (e, 0)

(* Canonical fingerprint of a subscript base, for comparing accesses. *)
let fingerprint e = Fmt.str "%a" Minic.Pretty.pp_expr e

(* Coefficient of [iv] in [e] when [e] is linear in it; [None] when the
   dependence is not analyzably linear ([i * n], [(i + 1) % n], ...). *)
let rec iv_coeff iv = function
  | Eint _ | Efloat _ -> Some 0
  | Evar v -> Some (if v = iv then 1 else 0)
  | Ebinop (Add, a, b) -> (
      match (iv_coeff iv a, iv_coeff iv b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Ebinop (Sub, a, b) -> (
      match (iv_coeff iv a, iv_coeff iv b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | Ebinop (Mul, Eint k, e) | Ebinop (Mul, e, Eint k) ->
      Option.map (fun x -> k * x) (iv_coeff iv e)
  | Eunop (Neg, e) -> Option.map (fun x -> -x) (iv_coeff iv e)
  | e -> if Varset.mem iv (vars_of e) then None else Some 0

(* ------------------- per-dimension classification ------------------- *)

type dim =
  | Dinv of string
  | Daff of { base : string; off : int; coeff : int option }
  | Dopaque

let classify_dim ~iv ~varying e =
  let vs = vars_of e in
  if Varset.mem iv vs then
    let base, k = split_offset e in
    Daff { base = fingerprint base; off = k; coeff = iv_coeff iv base }
  else if Varset.is_empty (Varset.inter vs varying) then Dinv (fingerprint e)
  else Dopaque

(* ----------------------- whole-access summary ----------------------- *)

type affine = { base : string; offs : int list; coeffs : int option list }

type summary = Invariant | Affine of affine | Opaque

let classify_access ~iv ~varying subs =
  let dims = List.map (classify_dim ~iv ~varying) subs in
  if List.for_all (function Dinv _ -> true | _ -> false) dims then Invariant
  else if List.exists (function Dopaque -> true | _ -> false) dims then
    Opaque
  else
    Affine
      { base =
          String.concat "]["
            (List.map
               (function Dinv f -> f | Daff a -> a.base | Dopaque -> "?")
               dims);
        offs =
          List.map (function Daff a -> a.off | Dinv _ | Dopaque -> 0) dims;
        coeffs =
          List.map
            (function
              | Daff a -> a.coeff | Dinv _ -> Some 0 | Dopaque -> None)
            dims }

(* Can access [a] at iteration [x] and access [b] at iteration [x + d],
   [d <> 0], touch the same element?  Requires identical per-dimension
   bases; then every dimension demands [coeff_k * d = off_b_k - off_a_k].
   A dimension with an unknown coefficient is conservatively satisfiable
   whenever it needs a shift at all. *)
let conflicting a b =
  a.base = b.base
  && List.length a.offs = List.length b.offs
  &&
  let rec solve delta possible = function
    | [] -> ( match delta with Some d -> d <> 0 | None -> possible)
    | (c, oa, ob) :: rest -> (
        let dk = ob - oa in
        match c with
        | Some 0 -> dk = 0 && solve delta possible rest
        | Some c ->
            dk mod c = 0
            &&
            let d = dk / c in
            (match delta with
            | Some d' -> d' = d && solve delta possible rest
            | None -> solve (Some d) possible rest)
        | None -> solve delta (possible || dk <> 0) rest)
  in
  solve None false
    (List.map2
       (fun c (oa, ob) -> (c, oa, ob))
       a.coeffs
       (List.combine a.offs b.offs))

(* ------------------------ array access walk ------------------------- *)

type access = { a_arr : string; a_subs : expr list; a_write : bool }

(* Subscripts of an access whose base is a plain variable,
   outermost-first. *)
let rec expr_root_subs acc = function
  | Eindex (Evar a, i) -> Some (a, i :: acc)
  | Eindex (e, i) -> expr_root_subs (i :: acc) e
  | _ -> None

let rec lvalue_root_subs acc = function
  | Lindex (Lvar a, i) -> Some (a, i :: acc)
  | Lindex (lv, i) -> lvalue_root_subs (i :: acc) lv
  | Lvar _ -> None

let accesses_of_block block =
  let acc = ref [] in
  let push a = acc := a :: !acc in
  let rec expr e =
    match e with
    | Eint _ | Efloat _ | Evar _ -> ()
    | Eindex (a, i) -> (
        match expr_root_subs [] e with
        | Some (arr, subs) ->
            push { a_arr = arr; a_subs = subs; a_write = false };
            List.iter expr subs
        | None -> expr a; expr i)
    | Eunop (_, e) -> expr e
    | Ebinop (_, a, b) -> expr a; expr b
    | Ecall (_, args) -> List.iter expr args
    | Econd (c, a, b) -> expr c; expr a; expr b
  in
  let lvalue lv =
    match lvalue_root_subs [] lv with
    | Some (arr, subs) ->
        push { a_arr = arr; a_subs = subs; a_write = true };
        List.iter expr subs
    | None -> ()
  in
  let rec stmt s =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> ()
    | Sexpr e -> expr e
    | Sassign (lv, e) -> lvalue lv; expr e
    | Sdecl (_, _, e) -> Option.iter expr e
    | Sreturn e -> Option.iter expr e
    | Sif (c, b1, b2) -> expr c; List.iter stmt b1; List.iter stmt b2
    | Swhile (c, b) -> expr c; List.iter stmt b
    | Sfor (i, c, st, b) ->
        Option.iter stmt i; Option.iter expr c; Option.iter stmt st;
        List.iter stmt b
    | Sblock b -> List.iter stmt b
    | Sacc (_, body) -> Option.iter stmt body
  in
  List.iter stmt block;
  List.rev !acc
