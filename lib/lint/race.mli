(** Loop-carried race / privatization detector (the static counterpart of
    the Table II fault corpus).

    Works on the translated program: every outlined kernel already carries
    the scalar classification of {!Codegen.Outline} — a scalar classified
    [Sc_raced] is exactly a data race the simulator would manifest, so the
    detector can flag it *before* any execution, including the 16 latent
    races that runtime kernel verification never detects.  On top of the
    scalar facts, a per-iteration subscript analysis flags cross-iteration
    array conflicts (write-write and read-write) inside parallel kernel
    loops. *)

(** Diagnostics for one translated program:

    - [ACC-RACE-001] (error): scalar raced for lack of a [private] clause
    - [ACC-RACE-002] (error): accumulator raced for lack of a [reduction]
    - [ACC-RACE-005] (error): other loop-carried scalar dependence
    - [ACC-RACE-003] (warning): cross-iteration array write-write conflict
    - [ACC-RACE-004] (warning): cross-iteration array read-write dependence
    - [ACC-RACE-010]/[-011] (info): parallelism recovered only by automatic
      recognition; suggests making the clause explicit. *)
val analyze : Codegen.Tprog.t -> Diag.t list
