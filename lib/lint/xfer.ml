(** Static transfer diagnostics (compile-time shadow of the §III-B runtime
    coherence reports).

    The abstract state is a pair of stale-bit sets over tags ["C:v"] /
    ["G:v"] — "the CPU/GPU copy of [v] is stale".  The instrumented
    program's coherence events drive gen/kill transfer functions exactly
    mirroring {!Accrt.Coherence} (Coarse mode):

    - [check_read v dev]: after the (potential) report the local copy is
      marked fresh (the runtime's anti-cascade), so the tag is killed;
    - [check_write v dev]: local copy fresh, remote copy stale;
    - [reset_status v dev st]: set the tag per [st];
    - transfer: target copy fresh;
    - free: GPU copy stale.

    Soundness under pointer ambiguity: an event on a name that may denote
    several arrays *gens* into the may-solve only and *kills* from the
    must-solve only, so must-facts stay under-approximate and may-facts
    over-approximate. *)

open Codegen
open Codegen.Tprog
module Varset = Analysis.Varset
module Dataflow = Analysis.Dataflow

let tag dev v = (match dev with Cpu -> "C:" | Gpu -> "G:") ^ v
let other = function Cpu -> Gpu | Gpu -> Cpu

type event = {
  ev_node : int;
  ev_kind :
    [ `Read of string * device
    | `Write of string * device
    | `Xfer of xfer ];
  ev_roots : Varset.t;
  ev_loc : Minic.Loc.t;
  ev_sid : int;
}

let analyze ?(mode = Checkgen.Optimized) (tp : Tprog.t) =
  let tp = Checkgen.instrument ~mode tp in
  let cfg = Tcfg.build tp in
  let n = Analysis.Graph.size cfg.Tcfg.graph in
  let resolve v =
    let r = Varset.inter (Analysis.Alias.resolve tp.alias v) tp.tracked in
    if Varset.is_empty r && Varset.mem v tp.tracked then Varset.singleton v
    else r
  in
  let gen_may = Array.make n Varset.empty in
  let kill_may = Array.make n Varset.empty in
  let gen_must = Array.make n Varset.empty in
  let kill_must = Array.make n Varset.empty in
  let events = ref [] in
  (* An event on possibly-aliased roots is not definite: it must not gen
     must-facts nor kill may-facts. *)
  let gen i ~definite tags =
    gen_may.(i) <- Varset.union gen_may.(i) tags;
    if definite then gen_must.(i) <- Varset.union gen_must.(i) tags
  in
  let kill i ~definite tags =
    kill_must.(i) <- Varset.union kill_must.(i) tags;
    if definite then kill_may.(i) <- Varset.union kill_may.(i) tags
  in
  for i = 0 to n - 1 do
    match Tcfg.payload cfg i with
    | Tcfg.Nstmt ts -> (
        let event kind roots =
          events :=
            { ev_node = i; ev_kind = kind; ev_roots = roots;
              ev_loc = ts.tloc; ev_sid = ts.tsid }
            :: !events
        in
        match ts.tkind with
        | Tcheck (Check_read (v, dev)) ->
            let roots = resolve v in
            if not (Varset.is_empty roots) then begin
              let definite = Varset.cardinal roots = 1 in
              kill i ~definite (Varset.map (tag dev) roots);
              event (`Read (v, dev)) roots
            end
        | Tcheck (Check_write (v, dev)) ->
            let roots = resolve v in
            if not (Varset.is_empty roots) then begin
              let definite = Varset.cardinal roots = 1 in
              kill i ~definite (Varset.map (tag dev) roots);
              gen i ~definite (Varset.map (tag (other dev)) roots);
              event (`Write (v, dev)) roots
            end
        | Tcheck (Reset_status (v, dev, st)) ->
            let roots = resolve v in
            if not (Varset.is_empty roots) then begin
              let definite = Varset.cardinal roots = 1 in
              let tags = Varset.map (tag dev) roots in
              match st with
              | Not_stale -> kill i ~definite tags
              | May_stale ->
                  gen_may.(i) <- Varset.union gen_may.(i) tags;
                  kill_must.(i) <- Varset.union kill_must.(i) tags
              | Stale -> gen i ~definite tags
            end
        | Txfer x ->
            let roots = resolve x.x_var in
            if not (Varset.is_empty roots) then begin
              let definite = Varset.cardinal roots = 1 in
              let tgt = match x.x_dir with H2D -> Gpu | D2H -> Cpu in
              kill i ~definite (Varset.map (tag tgt) roots);
              event (`Xfer x) roots
            end
        | Tfree (v, _) ->
            let roots = resolve v in
            if not (Varset.is_empty roots) then
              gen i
                ~definite:(Varset.cardinal roots = 1)
                (Varset.map (tag Gpu) roots)
        | _ -> ())
    | _ -> ()
  done;
  let universe =
    Varset.fold
      (fun v acc -> Varset.add (tag Cpu v) (Varset.add (tag Gpu v) acc))
      tp.tracked Varset.empty
  in
  let solve meet gen kill =
    Dataflow.solve cfg.Tcfg.graph
      { Dataflow.direction = Dataflow.Forward; meet;
        boundary = Varset.empty; universe;
        transfer =
          Dataflow.gen_kill ~gen:(fun i -> gen.(i)) ~kill:(fun i -> kill.(i)) }
  in
  let may = solve Dataflow.Union gen_may kill_may in
  let must = solve Dataflow.Intersect gen_must kill_must in
  (* Classify every event against the facts flowing into its node. *)
  let diag_of ev =
    let may_in = may.Dataflow.input.(ev.ev_node) in
    let must_in = must.Dataflow.input.(ev.ev_node) in
    let all_stale dev set = (* definitely stale, whichever root it is *)
      Varset.for_all (fun r -> Varset.mem (tag dev r) set) ev.ev_roots
    in
    let any_stale dev set =
      Varset.exists (fun r -> Varset.mem (tag dev r) set) ev.ev_roots
    in
    let var = Varset.min_elt ev.ev_roots in
    match ev.ev_kind with
    | `Read (v, dev) ->
        if all_stale dev must_in then
          Some
            (Diag.mk ~var
               ~fixit:
                 (Diag.Fix_insert_update
                    { before_sid = ev.ev_sid; var; host = dev = Cpu })
               ~code:"ACC-XFER-001" ~severity:Diag.Error ~loc:ev.ev_loc
               (Fmt.str
                  "missing transfer: the %s copy of '%s' is stale at this \
                   read; a transfer from the %s is required first"
                  (device_name dev) v
                  (device_name (other dev))))
        else if any_stale dev may_in then
          Some
            (Diag.mk ~var ~code:"ACC-XFER-002" ~severity:Diag.Info
               ~loc:ev.ev_loc
               (Fmt.str
                  "the %s copy of '%s' may be stale at this read (stale on \
                   some execution path)"
                  (device_name dev) v))
        else None
    | `Write (v, dev) ->
        if any_stale dev may_in then
          Some
            (Diag.mk ~var ~code:"ACC-XFER-002" ~severity:Diag.Info
               ~loc:ev.ev_loc
               (Fmt.str
                  "%s writes '%s' while its local copy may be stale; a \
                   transfer is missing unless the write fully overwrites \
                   the data"
                  (device_name dev) v))
        else None
    | `Xfer x ->
        let src, tgt = match x.x_dir with H2D -> (Cpu, Gpu) | D2H -> (Gpu, Cpu) in
        let site = x.x_site.site_label in
        let dir_desc =
          match x.x_dir with
          | H2D -> "from host to device"
          | D2H -> "from device to host"
        in
        if all_stale src must_in then
          Some
            (Diag.mk ~var ~site ~code:"ACC-XFER-003" ~severity:Diag.Error
               ~loc:x.x_site.site_loc
               (Fmt.str
                  "incorrect transfer: copying '%s' %s in %s ships an \
                   outdated value (the %s copy is stale here)"
                  var dir_desc site (device_name src)))
        else if not (any_stale tgt may_in) then
          let fixit =
            match Openarc_core.Suggest.site_kind site with
            | `Update ->
                Some
                  (Diag.Fix_remove_update_var
                     { sid = x.x_site.site_sid; var; host = x.x_dir = D2H })
            | `Data | `Region ->
                Some
                  (Diag.Fix_weaken_clause
                     { sid = x.x_site.site_sid; var;
                       side = (match x.x_dir with H2D -> `In | D2H -> `Out) })
            | `Implicit -> None
          in
          Some
            (Diag.mk ~var ~site ?fixit ~code:"ACC-XFER-004"
               ~severity:Diag.Warning ~loc:x.x_site.site_loc
               (Fmt.str
                  "redundant transfer: the %s copy of '%s' is already \
                   up to date whenever %s copies it %s"
                  (device_name tgt) var site dir_desc))
        else if not (all_stale tgt must_in) then
          Some
            (Diag.mk ~var ~site ~code:"ACC-XFER-005" ~severity:Diag.Info
               ~loc:x.x_site.site_loc
               (Fmt.str
                  "copying '%s' %s in %s may be redundant (the %s copy is \
                   already up to date on some execution path)"
                  var dir_desc site (device_name tgt)))
        else None
  in
  List.filter_map diag_of (List.rev !events)
