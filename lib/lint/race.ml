(** Loop-carried race / privatization detector.

    Scalar races come straight from the outliner's classification
    ({!Codegen.Tprog.scalar_class}): a kernel scalar is [Sc_raced] exactly
    when clauses and automatic recognition both fail to cover it — the same
    condition under which the simulated GPU manifests the race (§IV-B).
    Array conflicts are found by classifying every subscript of a parallel
    kernel loop against the loop's induction variable. *)

open Minic.Ast
open Codegen.Tprog
module Varset = Analysis.Varset

(* ----------------------- expression utilities ----------------------- *)

let rec expr_vars acc = function
  | Eint _ | Efloat _ -> acc
  | Evar v -> Varset.add v acc
  | Eindex (a, i) -> expr_vars (expr_vars acc a) i
  | Eunop (_, e) -> expr_vars acc e
  | Ebinop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ecall (_, args) -> List.fold_left expr_vars acc args
  | Econd (c, a, b) -> expr_vars (expr_vars (expr_vars acc c) a) b

let vars_of e = expr_vars Varset.empty e

(* Split [e] into an affine base and a constant offset: [e = base + k]. *)
let rec split_offset = function
  | Ebinop (Add, e, Eint k) | Ebinop (Add, Eint k, e) ->
      let b, k0 = split_offset e in
      (b, k0 + k)
  | Ebinop (Sub, e, Eint k) ->
      let b, k0 = split_offset e in
      (b, k0 - k)
  | e -> (e, 0)

(* Canonical fingerprint of a subscript base, for comparing accesses. *)
let fingerprint e = Fmt.str "%a" Minic.Pretty.pp_expr e

(* Coefficient of [iv] in [e] when [e] is linear in it; [None] when the
   dependence is not analyzably linear ([i * n], [(i + 1) % n], ...). *)
let rec iv_coeff iv = function
  | Eint _ | Efloat _ -> Some 0
  | Evar v -> Some (if v = iv then 1 else 0)
  | Ebinop (Add, a, b) -> (
      match (iv_coeff iv a, iv_coeff iv b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Ebinop (Sub, a, b) -> (
      match (iv_coeff iv a, iv_coeff iv b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | Ebinop (Mul, Eint k, e) | Ebinop (Mul, e, Eint k) ->
      Option.map (fun x -> k * x) (iv_coeff iv e)
  | Eunop (Neg, e) -> Option.map (fun x -> -x) (iv_coeff iv e)
  | e -> if Varset.mem iv (vars_of e) then None else Some 0

(** How one subscript dimension behaves across iterations of the
    parallel loop. *)
type dim =
  | Dinv of string  (** same element on every iteration (fingerprint) *)
  | Daff of { base : string; off : int; coeff : int option }
      (** induction-derived base + constant offset; [coeff] is the
          induction variable's linear coefficient when known *)
  | Dopaque  (** varies, but not analyzably (inner loops, computed) *)

let classify_dim ~iv ~varying e =
  let vs = vars_of e in
  if Varset.mem iv vs then
    let base, k = split_offset e in
    Daff { base = fingerprint base; off = k; coeff = iv_coeff iv base }
  else if Varset.is_empty (Varset.inter vs varying) then Dinv (fingerprint e)
  else Dopaque

(** Whole-access summary.  Iteration-invariant only when every dimension
    is; opaque as soon as one dimension is (an inner-loop subscript makes
    cross-iteration overlap undecidable here, e.g. the column of a
    row-parallel stencil). *)
type affine = { base : string; offs : int list; coeffs : int option list }

type summary = Invariant | Affine of affine | Opaque

let classify_access ~iv ~varying subs =
  let dims = List.map (classify_dim ~iv ~varying) subs in
  if List.for_all (function Dinv _ -> true | _ -> false) dims then Invariant
  else if List.exists (function Dopaque -> true | _ -> false) dims then
    Opaque
  else
    Affine
      { base =
          String.concat "]["
            (List.map
               (function Dinv f -> f | Daff a -> a.base | Dopaque -> "?")
               dims);
        offs =
          List.map (function Daff a -> a.off | Dinv _ | Dopaque -> 0) dims;
        coeffs =
          List.map
            (function
              | Daff a -> a.coeff | Dinv _ -> Some 0 | Dopaque -> None)
            dims }

(* Can access [a] at iteration [x] and access [b] at iteration [x + d],
   [d <> 0], touch the same element?  Requires identical per-dimension
   bases; then every dimension demands [coeff_k * d = off_b_k - off_a_k].
   A dimension with an unknown coefficient is conservatively satisfiable
   whenever it needs a shift at all.  [temp[dst][i][j]] never conflicts
   with [temp[src][i][j]] (different bases); [sm[i][d - i]] never
   conflicts with [sm[i - 1][d - i - 1]] (coefficients +1/-1 admit no
   common shift); [a[i]] conflicts with [a[i + 1]] (d = 1). *)
let conflicting a b =
  a.base = b.base
  && List.length a.offs = List.length b.offs
  &&
  let rec solve delta possible = function
    | [] -> ( match delta with Some d -> d <> 0 | None -> possible)
    | (c, oa, ob) :: rest -> (
        let dk = ob - oa in
        match c with
        | Some 0 -> dk = 0 && solve delta possible rest
        | Some c ->
            dk mod c = 0
            &&
            let d = dk / c in
            (match delta with
            | Some d' -> d' = d && solve delta possible rest
            | None -> solve (Some d) possible rest)
        | None -> solve delta (possible || dk <> 0) rest)
  in
  solve None false
    (List.map2
       (fun c (oa, ob) -> (c, oa, ob))
       a.coeffs
       (List.combine a.offs b.offs))

(* ------------------------ array access walk ------------------------- *)

type access = { a_arr : string; a_subs : expr list; a_write : bool }

(* Subscripts of an access whose base is a plain variable,
   outermost-first. *)
let rec expr_root_subs acc = function
  | Eindex (Evar a, i) -> Some (a, i :: acc)
  | Eindex (e, i) -> expr_root_subs (i :: acc) e
  | _ -> None

let rec lvalue_root_subs acc = function
  | Lindex (Lvar a, i) -> Some (a, i :: acc)
  | Lindex (lv, i) -> lvalue_root_subs (i :: acc) lv
  | Lvar _ -> None

let accesses_of_block block =
  let acc = ref [] in
  let push a = acc := a :: !acc in
  let rec expr e =
    match e with
    | Eint _ | Efloat _ | Evar _ -> ()
    | Eindex (a, i) -> (
        match expr_root_subs [] e with
        | Some (arr, subs) ->
            push { a_arr = arr; a_subs = subs; a_write = false };
            List.iter expr subs
        | None -> expr a; expr i)
    | Eunop (_, e) -> expr e
    | Ebinop (_, a, b) -> expr a; expr b
    | Ecall (_, args) -> List.iter expr args
    | Econd (c, a, b) -> expr c; expr a; expr b
  in
  let lvalue lv =
    match lvalue_root_subs [] lv with
    | Some (arr, subs) ->
        push { a_arr = arr; a_subs = subs; a_write = true };
        List.iter expr subs
    | None -> ()
  in
  let rec stmt s =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> ()
    | Sexpr e -> expr e
    | Sassign (lv, e) -> lvalue lv; expr e
    | Sdecl (_, _, e) -> Option.iter expr e
    | Sreturn e -> Option.iter expr e
    | Sif (c, b1, b2) -> expr c; List.iter stmt b1; List.iter stmt b2
    | Swhile (c, b) -> expr c; List.iter stmt b
    | Sfor (i, c, st, b) ->
        Option.iter stmt i; Option.iter expr c; Option.iter stmt st;
        List.iter stmt b
    | Sblock b -> List.iter stmt b
    | Sacc (_, body) -> Option.iter stmt body
  in
  List.iter stmt block;
  List.rev !acc

(* ----------------------- explicit clause facts ---------------------- *)

(* Clauses visible to a kernel: the compute-region directive (found by the
   kernel's anchoring sid) plus every loop directive inside its source
   statement. *)
let kernel_directives tp (k : kernel) =
  let region =
    List.filter_map
      (fun (sid, _, d) -> if sid = k.k_sid then Some d else None)
      (Acc.Query.directives_of tp.source)
  in
  let inner = ref [] in
  iter_stmt
    (fun s ->
      match s.skind with Sacc (d, _) -> inner := d :: !inner | _ -> ())
    k.k_source;
  region @ List.rev !inner

let explicit_facts tp k =
  let dirs = kernel_directives tp k in
  ( Varset.of_list (List.concat_map Acc.Query.private_vars dirs),
    List.concat_map Acc.Query.reductions dirs )

(* ----------------------------- scalars ------------------------------ *)

let scalar_diags tp (k : kernel) =
  let region = Analysis.Regions.analyze ~alias:tp.alias k.k_body in
  let explicit_private, explicit_reduction = explicit_facts tp k in
  let diag_of_scalar (v, cls) =
    match cls with
    | Sc_raced kind -> (
        let manifest =
          match kind with
          | Race_active -> "an active race (corrupts kernel outputs)"
          | Race_latent ->
              "a latent race (hidden by backend register promotion)"
        in
        match List.assoc_opt v region.Analysis.Regions.accumulators with
        | Some op ->
            Some
              (Diag.mk ~var:v
                 ~fixit:(Diag.Fix_add_reduction { sid = k.k_sid; op; var = v })
                 ~code:"ACC-RACE-002" ~severity:Diag.Error ~loc:k.k_loc
                 (Fmt.str
                    "accumulator '%s' in kernel '%s' needs a \
                     'reduction(%s:%s)' clause: every iteration reads and \
                     updates the shared copy, %s"
                    v k.k_name (Minic.Pretty.redop_str op) v manifest))
        | None -> (
            match
              Hashtbl.find_opt region.Analysis.Regions.first_access v
            with
            | Some Analysis.Regions.First_write ->
                Some
                  (Diag.mk ~var:v
                     ~fixit:(Diag.Fix_add_private { sid = k.k_sid; var = v })
                     ~code:"ACC-RACE-001" ~severity:Diag.Error ~loc:k.k_loc
                     (Fmt.str
                        "scalar '%s' in kernel '%s' needs a 'private' \
                         clause: it is written before being read in every \
                         iteration, but all threads share one copy — %s"
                        v k.k_name manifest))
            | _ ->
                Some
                  (Diag.mk ~var:v ~code:"ACC-RACE-005" ~severity:Diag.Error
                     ~loc:k.k_loc
                     (Fmt.str
                        "scalar '%s' in kernel '%s' carries a loop-carried \
                         dependence (read of a value written by another \
                         iteration) — %s"
                        v k.k_name manifest))))
    | Sc_private when not (Varset.mem v explicit_private) ->
        Some
          (Diag.mk ~var:v
             ~fixit:(Diag.Fix_add_private { sid = k.k_sid; var = v })
             ~code:"ACC-RACE-010" ~severity:Diag.Info ~loc:k.k_loc
             (Fmt.str
                "scalar '%s' in kernel '%s' is privatized only by automatic \
                 recognition; an explicit 'private(%s)' clause makes the \
                 program portable to compilers without it"
                v k.k_name v))
    | Sc_reduction op
      when not (List.exists (fun (o, rv) -> o = op && rv = v)
                  explicit_reduction) ->
        Some
          (Diag.mk ~var:v
             ~fixit:(Diag.Fix_add_reduction { sid = k.k_sid; op; var = v })
             ~code:"ACC-RACE-011" ~severity:Diag.Info ~loc:k.k_loc
             (Fmt.str
                "reduction on '%s' in kernel '%s' is recognized only \
                 automatically; an explicit 'reduction(%s:%s)' clause makes \
                 the program portable to compilers without it"
                v k.k_name (Minic.Pretty.redop_str op) v))
    | Sc_private | Sc_firstprivate | Sc_reduction _ -> None
  in
  List.filter_map diag_of_scalar k.k_scalars

(* ------------------------------ arrays ------------------------------ *)

(* Names whose value changes from parallel iteration to parallel iteration:
   the induction variables and every scalar the body writes. *)
let varying_names (k : kernel) region =
  Varset.union k.k_induction
    (Varset.union region.Analysis.Regions.scalars_written
       region.Analysis.Regions.declared)

let array_diags tp (k : kernel) =
  match k.k_loop with
  | None -> []
  | Some _ when k.k_seq -> []
  | Some loop ->
      let region = Analysis.Regions.analyze ~alias:tp.alias k.k_body in
      let iv = loop.kl_var in
      let varying = varying_names k region in
      let explicit_private, _ = explicit_facts tp k in
      let accesses =
        List.filter
          (fun a -> not (Varset.mem a.a_arr explicit_private))
          (accesses_of_block k.k_body)
      in
      let classified =
        List.map (fun a -> (a, classify_access ~iv ~varying a.a_subs)) accesses
      in
      let by_array = Hashtbl.create 8 in
      List.iter
        (fun ((a, _) as e) ->
          let prev =
            Option.value (Hashtbl.find_opt by_array a.a_arr) ~default:[]
          in
          Hashtbl.replace by_array a.a_arr (e :: prev))
        classified;
      let diags = ref [] in
      let emit d = diags := d :: !diags in
      let arrays = List.sort_uniq compare (List.map (fun a -> a.a_arr) accesses) in
      List.iter
        (fun arr ->
          let entries = List.rev (Hashtbl.find by_array arr) in
          let writes = List.filter (fun (a, _) -> a.a_write) entries in
          let reads = List.filter (fun (a, _) -> not a.a_write) entries in
          let affines entries =
            List.sort_uniq compare
              (List.filter_map
                 (function _, Affine a -> Some a | _ -> None)
                 entries)
          in
          let write_affines = affines writes in
          (* Write-write: an iteration-invariant write hits the same element
             from every iteration; two induction-affine writes that admit a
             nonzero iteration shift overlap between iterations. *)
          (if List.exists (fun (_, c) -> c = Invariant) writes then
             emit
               (Diag.mk ~var:arr ~code:"ACC-RACE-003" ~severity:Diag.Warning
                  ~loc:k.k_loc
                  (Fmt.str
                     "array '%s' in kernel '%s': every iteration of the \
                      parallel loop writes the same element (no subscript \
                      depends on '%s') — cross-iteration write-write \
                      conflict"
                     arr k.k_name iv))
           else if
             List.exists
               (fun w ->
                 List.exists
                   (fun w' -> w <> w' && conflicting w w')
                   write_affines)
               write_affines
           then
             emit
               (Diag.mk ~var:arr ~code:"ACC-RACE-003" ~severity:Diag.Warning
                  ~loc:k.k_loc
                  (Fmt.str
                     "array '%s' in kernel '%s' is written at overlapping \
                      elements by different iterations of the parallel loop \
                      (write-write conflict)"
                     arr k.k_name)));
          (* Read-write: a read that a nonzero iteration shift aligns with a
             write ([a[i - 1]] vs [a[i]]).  Reads whose subscripts no shift
             can align with the written ones (a fixed pivot element, the
             other plane of a double buffer, the previous anti-diagonal of a
             wavefront) are left alone. *)
          let rw_conflict =
            List.exists
              (fun w ->
                List.exists
                  (fun (_, rc) ->
                    match rc with
                    | Affine r -> conflicting w r
                    | Invariant | Opaque -> false)
                  reads)
              write_affines
          in
          if rw_conflict then
            emit
              (Diag.mk ~var:arr ~code:"ACC-RACE-004" ~severity:Diag.Warning
                 ~loc:k.k_loc
                 (Fmt.str
                    "array '%s' in kernel '%s' is read at elements written \
                     by other iterations of the parallel loop — \
                     cross-iteration read-write dependence"
                    arr k.k_name)))
        arrays;
      List.rev !diags

let analyze (tp : Codegen.Tprog.t) =
  Array.to_list tp.kernels
  |> List.concat_map (fun k -> scalar_diags tp k @ array_diags tp k)
