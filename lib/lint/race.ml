(** Loop-carried race / privatization detector.

    Scalar races come straight from the outliner's classification
    ({!Codegen.Tprog.scalar_class}): a kernel scalar is [Sc_raced] exactly
    when clauses and automatic recognition both fail to cover it — the same
    condition under which the simulated GPU manifests the race (§IV-B).
    Array conflicts are found by classifying every subscript of a parallel
    kernel loop against the loop's induction variable. *)

open Minic.Ast
open Codegen.Tprog
module Varset = Analysis.Varset

(* The affine subscript machinery (per-dimension classification against
   the parallel induction variable, cross-iteration shift solving, access
   walk) lives in {!Analysis.Affine}, shared with the symbolic
   equivalence tier. *)
open Analysis.Affine

(* ----------------------- explicit clause facts ---------------------- *)

(* Clauses visible to a kernel: the compute-region directive (found by the
   kernel's anchoring sid) plus every loop directive inside its source
   statement. *)
let kernel_directives tp (k : kernel) =
  let region =
    List.filter_map
      (fun (sid, _, d) -> if sid = k.k_sid then Some d else None)
      (Acc.Query.directives_of tp.source)
  in
  let inner = ref [] in
  iter_stmt
    (fun s ->
      match s.skind with Sacc (d, _) -> inner := d :: !inner | _ -> ())
    k.k_source;
  region @ List.rev !inner

let explicit_facts tp k =
  let dirs = kernel_directives tp k in
  ( Varset.of_list (List.concat_map Acc.Query.private_vars dirs),
    List.concat_map Acc.Query.reductions dirs )

(* ----------------------------- scalars ------------------------------ *)

let scalar_diags tp (k : kernel) =
  let region = Analysis.Regions.analyze ~alias:tp.alias k.k_body in
  let explicit_private, explicit_reduction = explicit_facts tp k in
  let diag_of_scalar (v, cls) =
    match cls with
    | Sc_raced kind -> (
        let manifest =
          match kind with
          | Race_active -> "an active race (corrupts kernel outputs)"
          | Race_latent ->
              "a latent race (hidden by backend register promotion)"
        in
        match List.assoc_opt v region.Analysis.Regions.accumulators with
        | Some op ->
            Some
              (Diag.mk ~var:v
                 ~fixit:(Diag.Fix_add_reduction { sid = k.k_sid; op; var = v })
                 ~code:"ACC-RACE-002" ~severity:Diag.Error ~loc:k.k_loc
                 (Fmt.str
                    "accumulator '%s' in kernel '%s' needs a \
                     'reduction(%s:%s)' clause: every iteration reads and \
                     updates the shared copy, %s"
                    v k.k_name (Minic.Pretty.redop_str op) v manifest))
        | None -> (
            match
              Hashtbl.find_opt region.Analysis.Regions.first_access v
            with
            | Some Analysis.Regions.First_write ->
                Some
                  (Diag.mk ~var:v
                     ~fixit:(Diag.Fix_add_private { sid = k.k_sid; var = v })
                     ~code:"ACC-RACE-001" ~severity:Diag.Error ~loc:k.k_loc
                     (Fmt.str
                        "scalar '%s' in kernel '%s' needs a 'private' \
                         clause: it is written before being read in every \
                         iteration, but all threads share one copy — %s"
                        v k.k_name manifest))
            | _ ->
                Some
                  (Diag.mk ~var:v ~code:"ACC-RACE-005" ~severity:Diag.Error
                     ~loc:k.k_loc
                     (Fmt.str
                        "scalar '%s' in kernel '%s' carries a loop-carried \
                         dependence (read of a value written by another \
                         iteration) — %s"
                        v k.k_name manifest))))
    | Sc_private when not (Varset.mem v explicit_private) ->
        Some
          (Diag.mk ~var:v
             ~fixit:(Diag.Fix_add_private { sid = k.k_sid; var = v })
             ~code:"ACC-RACE-010" ~severity:Diag.Info ~loc:k.k_loc
             (Fmt.str
                "scalar '%s' in kernel '%s' is privatized only by automatic \
                 recognition; an explicit 'private(%s)' clause makes the \
                 program portable to compilers without it"
                v k.k_name v))
    | Sc_reduction op
      when not (List.exists (fun (o, rv) -> o = op && rv = v)
                  explicit_reduction) ->
        Some
          (Diag.mk ~var:v
             ~fixit:(Diag.Fix_add_reduction { sid = k.k_sid; op; var = v })
             ~code:"ACC-RACE-011" ~severity:Diag.Info ~loc:k.k_loc
             (Fmt.str
                "reduction on '%s' in kernel '%s' is recognized only \
                 automatically; an explicit 'reduction(%s:%s)' clause makes \
                 the program portable to compilers without it"
                v k.k_name (Minic.Pretty.redop_str op) v))
    | Sc_private | Sc_firstprivate | Sc_reduction _ -> None
  in
  List.filter_map diag_of_scalar k.k_scalars

(* ------------------------------ arrays ------------------------------ *)

(* Names whose value changes from parallel iteration to parallel iteration:
   the induction variables and every scalar the body writes. *)
let varying_names (k : kernel) region =
  Varset.union k.k_induction
    (Varset.union region.Analysis.Regions.scalars_written
       region.Analysis.Regions.declared)

let array_diags tp (k : kernel) =
  match k.k_loop with
  | None -> []
  | Some _ when k.k_seq -> []
  | Some loop ->
      let region = Analysis.Regions.analyze ~alias:tp.alias k.k_body in
      let iv = loop.kl_var in
      let varying = varying_names k region in
      let explicit_private, _ = explicit_facts tp k in
      let accesses =
        List.filter
          (fun a -> not (Varset.mem a.a_arr explicit_private))
          (accesses_of_block k.k_body)
      in
      let classified =
        List.map (fun a -> (a, classify_access ~iv ~varying a.a_subs)) accesses
      in
      let by_array = Hashtbl.create 8 in
      List.iter
        (fun ((a, _) as e) ->
          let prev =
            Option.value (Hashtbl.find_opt by_array a.a_arr) ~default:[]
          in
          Hashtbl.replace by_array a.a_arr (e :: prev))
        classified;
      let diags = ref [] in
      let emit d = diags := d :: !diags in
      let arrays = List.sort_uniq compare (List.map (fun a -> a.a_arr) accesses) in
      List.iter
        (fun arr ->
          let entries = List.rev (Hashtbl.find by_array arr) in
          let writes = List.filter (fun (a, _) -> a.a_write) entries in
          let reads = List.filter (fun (a, _) -> not a.a_write) entries in
          let affines entries =
            List.sort_uniq compare
              (List.filter_map
                 (function _, Affine a -> Some a | _ -> None)
                 entries)
          in
          let write_affines = affines writes in
          (* Write-write: an iteration-invariant write hits the same element
             from every iteration; two induction-affine writes that admit a
             nonzero iteration shift overlap between iterations. *)
          (if List.exists (fun (_, c) -> c = Invariant) writes then
             emit
               (Diag.mk ~var:arr ~code:"ACC-RACE-003" ~severity:Diag.Warning
                  ~loc:k.k_loc
                  (Fmt.str
                     "array '%s' in kernel '%s': every iteration of the \
                      parallel loop writes the same element (no subscript \
                      depends on '%s') — cross-iteration write-write \
                      conflict"
                     arr k.k_name iv))
           else if
             List.exists
               (fun w ->
                 List.exists
                   (fun w' -> w <> w' && conflicting w w')
                   write_affines)
               write_affines
           then
             emit
               (Diag.mk ~var:arr ~code:"ACC-RACE-003" ~severity:Diag.Warning
                  ~loc:k.k_loc
                  (Fmt.str
                     "array '%s' in kernel '%s' is written at overlapping \
                      elements by different iterations of the parallel loop \
                      (write-write conflict)"
                     arr k.k_name)));
          (* Read-write: a read that a nonzero iteration shift aligns with a
             write ([a[i - 1]] vs [a[i]]).  Reads whose subscripts no shift
             can align with the written ones (a fixed pivot element, the
             other plane of a double buffer, the previous anti-diagonal of a
             wavefront) are left alone. *)
          let rw_conflict =
            List.exists
              (fun w ->
                List.exists
                  (fun (_, rc) ->
                    match rc with
                    | Affine r -> conflicting w r
                    | Invariant | Opaque -> false)
                  reads)
              write_affines
          in
          if rw_conflict then
            emit
              (Diag.mk ~var:arr ~code:"ACC-RACE-004" ~severity:Diag.Warning
                 ~loc:k.k_loc
                 (Fmt.str
                    "array '%s' in kernel '%s' is read at elements written \
                     by other iterations of the parallel loop — \
                     cross-iteration read-write dependence"
                    arr k.k_name)))
        arrays;
      List.rev !diags

let analyze (tp : Codegen.Tprog.t) =
  Array.to_list tp.kernels
  |> List.concat_map (fun k -> scalar_diags tp k @ array_diags tp k)
