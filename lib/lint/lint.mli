(** The [openarc lint] entry point: whole-program static diagnostics.

    Combines the loop-carried race / privatization detector ({!Race}) with
    the static transfer diagnostics ({!Xfer}) over one translated program
    and returns deduplicated, deterministically ordered diagnostics. *)

module Diag = Diag
module Race = Race
module Xfer = Xfer

(** Lint an already compiled program. *)
val run_tprog : ?mode:Codegen.Checkgen.mode -> Codegen.Tprog.t -> Diag.t list

(** Validate, type check, translate and lint a parsed program.
    @raise Minic.Loc.Error on type errors
    @raise Acc.Validate.Invalid on OpenACC misuse *)
val run_program :
  ?opts:Codegen.Options.t -> Minic.Ast.program -> Diag.t list

(** Parse and lint a source string.  [fault] applies the Table II fault
    injection first (strip [private]/[reduction] clauses, disable automatic
    recognition) — under it the detector must flag all 20 injected races.
    @raise Minic.Loc.Error on lexical/syntax/type errors
    @raise Acc.Validate.Invalid on OpenACC misuse *)
val run_string :
  ?opts:Codegen.Options.t -> ?fault:bool -> ?file:string -> string ->
  Diag.t list
