(** Static transfer diagnostics: a compile-time abstract interpretation of
    the {notstale, maystale, stale} coherence lattice of §III-B.

    The pass analyzes the *instrumented* translated program — the same
    [check_read]/[check_write]/[reset_status] sites the runtime executes
    (placed by {!Codegen.Checkgen}, which already folds in the deadness and
    last-write analyses) — so every static verdict anchors at a site the
    runtime would report on.  Two {!Analysis.Dataflow} passes track the
    stale bits of each tracked array's CPU and GPU copies: a *may*-solve
    (union meet, over-approximate) and a *must*-solve (intersect meet,
    under-approximate; events through ambiguous pointers weaken both
    soundly).  A transfer whose target is must-fresh on every path is
    *definitely redundant*; a read whose local copy is must-stale is a
    *definitely missing* transfer — claims that hold for every execution,
    which is what the cross-check against the runtime reports asserts.

    Codes: [ACC-XFER-001] missing (error), [-002] possibly missing (info),
    [-003] incorrect (error), [-004] redundant (warning), [-005]
    may-redundant (info). *)

(** Diagnostics for one (uninstrumented) translated program; [mode]
    selects the check placement, default {!Codegen.Checkgen.Optimized}. *)
val analyze : ?mode:Codegen.Checkgen.mode -> Codegen.Tprog.t -> Diag.t list
