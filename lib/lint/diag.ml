(** Diagnostics engine shared by the lint analyses (see the interface for
    the code catalogue). *)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let rank = function Error -> 2 | Warning -> 1 | Info -> 0

let at_least threshold s = rank s >= rank threshold

type fixit =
  | Fix_add_private of { sid : int; var : string }
  | Fix_add_reduction of { sid : int; op : Minic.Ast.redop; var : string }
  | Fix_weaken_clause of { sid : int; var : string; side : [ `In | `Out ] }
  | Fix_remove_update_var of { sid : int; var : string; host : bool }
  | Fix_insert_update of { before_sid : int; var : string; host : bool }

let apply_fixit prog = function
  | Fix_add_private { sid; var } ->
      Acc.Edit.map_directive prog ~sid ~f:(fun d ->
          { d with
            clauses = Acc.Edit.add_private_var d.Minic.Ast.clauses var })
  | Fix_add_reduction { sid; op; var } ->
      Acc.Edit.map_directive prog ~sid ~f:(fun d ->
          { d with
            clauses = Acc.Edit.add_reduction_var d.Minic.Ast.clauses op var })
  | Fix_weaken_clause { sid; var; side } ->
      Acc.Edit.weaken_clause prog ~sid ~var ~side
  | Fix_remove_update_var { sid; var; host } ->
      Acc.Edit.map_directive prog ~sid ~f:(fun d ->
          { d with
            clauses =
              Acc.Edit.remove_update_var d.Minic.Ast.clauses ~host var })
  | Fix_insert_update { before_sid; var; host } ->
      Acc.Edit.insert_before prog ~sid:before_sid
        [ Acc.Edit.mk_update ~host [ var ] ]

let fixit_text = function
  | Fix_add_private { var; _ } -> Fmt.str "add 'private(%s)' to the directive" var
  | Fix_add_reduction { op; var; _ } ->
      Fmt.str "add 'reduction(%s:%s)' to the directive"
        (Minic.Pretty.redop_str op) var
  | Fix_weaken_clause { var; side; _ } ->
      Fmt.str "weaken the data clause of '%s' (drop its %s copy)" var
        (match side with `In -> "entry" | `Out -> "exit")
  | Fix_remove_update_var { var; host; _ } ->
      Fmt.str "remove '%s' from the 'update %s' clause" var
        (if host then "host" else "device")
  | Fix_insert_update { var; host; _ } ->
      Fmt.str "insert '#pragma acc update %s(%s)' before this statement"
        (if host then "host" else "device")
        var

type t = {
  code : string;
  severity : severity;
  loc : Minic.Loc.t;
  var : string option;
  site : string option;
  message : string;
  fixit : fixit option;
}

let mk ?var ?site ?fixit ~code ~severity ~loc message =
  { code; severity; loc; var; site; message; fixit }

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare a.loc.Minic.Loc.line b.loc.Minic.Loc.line in
      if c <> 0 then c
      else
        let c = compare a.loc.Minic.Loc.col b.loc.Minic.Loc.col in
        if c <> 0 then c
        else
          let c = compare a.code b.code in
          if c <> 0 then c
          else compare (a.var, a.site) (b.var, b.site))
    ds

let filter ~threshold ds = List.filter (fun d -> at_least threshold d.severity) ds

let worst ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some w when rank w >= rank d.severity -> acc
      | _ -> Some d.severity)
    None ds

let pp ppf d =
  Fmt.pf ppf "%a: %s: [%s] %s" Minic.Loc.pp d.loc (severity_name d.severity)
    d.code d.message;
  match d.fixit with
  | Some f -> Fmt.pf ppf " (fix: %s)" (fixit_text f)
  | None -> ()

let to_text ds = String.concat "" (List.map (Fmt.str "%a@." pp) ds)

(* ------------------------------- JSON ------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Fmt.str "\"%s\"" (json_escape s)

let json_opt = function None -> "null" | Some s -> json_str s

let to_json ds =
  let obj d =
    Fmt.str
      "{\"code\": %s, \"severity\": %s, \"file\": %s, \"line\": %d, \
       \"col\": %d, \"var\": %s, \"site\": %s, \"message\": %s, \"fixit\": \
       %s}"
      (json_str d.code)
      (json_str (severity_name d.severity))
      (json_str d.loc.Minic.Loc.file)
      d.loc.Minic.Loc.line d.loc.Minic.Loc.col (json_opt d.var)
      (json_opt d.site) (json_str d.message)
      (json_opt (Option.map fixit_text d.fixit))
  in
  Fmt.str "[%s]" (String.concat ",\n " (List.map obj ds))
