(** The [openarc lint] entry point. *)

module Diag = Diag
module Race = Race
module Xfer = Xfer

let run_tprog ?mode tp =
  let ds = Race.analyze tp @ Xfer.analyze ?mode tp in
  Diag.sort (List.sort_uniq compare ds)

let run_program ?opts prog =
  Acc.Validate.check_program prog;
  let env = Minic.Typecheck.check prog in
  run_tprog (Codegen.Translate.translate ?opts env prog)

let run_string ?opts ?(fault = false) ?(file = "<input>") src =
  let prog = Minic.Parser.parse_string ~file src in
  let prog =
    if fault then Openarc_core.Faults.strip_parallelism_clauses prog else prog
  in
  let opts =
    match opts with
    | Some o -> o
    | None ->
        if fault then Codegen.Options.fault_injection
        else Codegen.Options.default
  in
  run_program ~opts prog
