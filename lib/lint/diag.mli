(** The lint diagnostics engine: severities, stable diagnostic codes, source
    locations, fix-it suggestions expressed as {!Acc.Edit} clause edits, and
    text/JSON renderers.

    Codes are stable across releases and documented in the README:

    - [ACC-RACE-001] scalar requires a [private] clause (missing
      privatization; latent under register promotion)
    - [ACC-RACE-002] accumulator requires a [reduction] clause
    - [ACC-RACE-003] cross-iteration array write-write conflict
    - [ACC-RACE-004] cross-iteration array read-write dependence
    - [ACC-RACE-005] loop-carried scalar dependence (not privatizable)
    - [ACC-RACE-010] scalar privatized only by automatic recognition
    - [ACC-RACE-011] reduction recognized only automatically
    - [ACC-XFER-001] missing transfer: a stale copy is read
    - [ACC-XFER-002] possibly missing transfer (stale copy written, or a
      copy that may be stale is read)
    - [ACC-XFER-003] incorrect transfer: an outdated value is shipped
    - [ACC-XFER-004] redundant transfer (on every execution)
    - [ACC-XFER-005] may-redundant transfer *)

type severity = Error | Warning | Info

val severity_name : severity -> string

(** [at_least threshold s]: does [s] reach [threshold]?  ([Error] is the
    highest severity.) *)
val at_least : severity -> severity -> bool

(** A machine-applicable repair, in terms of the {!Acc.Edit} primitives. *)
type fixit =
  | Fix_add_private of { sid : int; var : string }
  | Fix_add_reduction of { sid : int; op : Minic.Ast.redop; var : string }
  | Fix_weaken_clause of { sid : int; var : string; side : [ `In | `Out ] }
  | Fix_remove_update_var of { sid : int; var : string; host : bool }
  | Fix_insert_update of { before_sid : int; var : string; host : bool }

(** Apply a fix-it to the source program. *)
val apply_fixit : Minic.Ast.program -> fixit -> Minic.Ast.program

val fixit_text : fixit -> string

type t = {
  code : string;  (** stable diagnostic code, e.g. ["ACC-RACE-001"] *)
  severity : severity;
  loc : Minic.Loc.t;
  var : string option;  (** variable the diagnostic is about *)
  site : string option;  (** transfer-site label, for transfer diagnostics *)
  message : string;
  fixit : fixit option;
}

val mk :
  ?var:string -> ?site:string -> ?fixit:fixit -> code:string ->
  severity:severity -> loc:Minic.Loc.t -> string -> t

(** Deterministic presentation order: location, then code, then subject. *)
val sort : t list -> t list

val filter : threshold:severity -> t list -> t list

(** Most severe level present, if any. *)
val worst : t list -> severity option

val pp : Format.formatter -> t -> unit
val to_text : t list -> string

(** JSON array of diagnostic objects with [code], [severity], [file],
    [line], [col], [var], [site], [message], [fixit] fields. *)
val to_json : t list -> string
