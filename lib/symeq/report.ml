(** Canonical JSON for symbolic-equivalence verdicts.  See report.mli. *)

module P = Obs.Pjson

type t = { program : string; result : Engine.t }

let schema = "openarc.obs.symeq"
let version = 1
let jstr = Obs.Trace.json_str

(* ----------------------------- emission ------------------------------ *)

let kernel_json (k : Engine.kernel_verdict) =
  let common = Fmt.str "\"kernel\": %s, \"verdict\": %s" (jstr k.kv_name)
      (jstr (Engine.verdict_name k.kv_verdict))
  in
  match k.kv_verdict with
  | Engine.Proved c ->
      Fmt.str "{%s, \"objects\": [%s], \"hypotheses\": [%s], \"notes\": [%s]}"
        common
        (String.concat ", "
           (List.map
              (fun (name, form) ->
                Fmt.str "{\"name\": %s, \"form\": %s}" (jstr name) (jstr form))
              c.Engine.c_objects))
        (String.concat ", " (List.map jstr c.Engine.c_hypotheses))
        (String.concat ", " (List.map jstr c.Engine.c_notes))
  | Engine.Disproved r ->
      Fmt.str
        "{%s, \"object\": %s, \"device\": %s, \"sequential\": %s, \
         \"index\": %s, \"witness\": %s}"
        common (jstr r.Engine.r_object) (jstr r.Engine.r_device)
        (jstr r.Engine.r_sequential)
        (match r.Engine.r_index with
        | Some i -> string_of_int i
        | None -> "null")
        (jstr r.Engine.r_witness)
  | Engine.Unknown why -> Fmt.str "{%s, \"reason\": %s}" common (jstr why)

let to_json t =
  Fmt.str
    "{\"schema\": %s, \"version\": %d, \"program\": %s, \"kernels\": [%s], \
     \"coverage\": {\"kernels\": %d, \"proved\": %d, \"disproved\": %d, \
     \"unknown\": %d}}"
    (jstr schema) version (jstr t.program)
    (String.concat ", " (List.map kernel_json t.result.Engine.kernels))
    (List.length t.result.Engine.kernels)
    t.result.Engine.proved t.result.Engine.disproved t.result.Engine.unknown

(* ----------------------------- validation ---------------------------- *)

exception Invalid of string

let need what = function
  | Some v -> v
  | None -> raise (Invalid ("missing or ill-typed " ^ what))

let get_str name j = need name (Option.bind (P.member name j) P.str)
let get_num name j = need name (Option.bind (P.member name j) P.num)
let get_arr name j = need name (Option.bind (P.member name j) P.arr)
let get_int name j = int_of_float (get_num name j)

let str_list name j = List.map (fun v -> need name (P.str v)) (get_arr name j)

let kernel_of_json j =
  let name = get_str "kernel" j in
  let verdict =
    match get_str "verdict" j with
    | "proved" ->
        Engine.Proved
          { Engine.c_objects =
              List.map
                (fun o -> (get_str "name" o, get_str "form" o))
                (get_arr "objects" j);
            c_hypotheses = str_list "hypotheses" j;
            c_notes = str_list "notes" j }
    | "disproved" ->
        Engine.Disproved
          { Engine.r_object = get_str "object" j;
            r_device = get_str "device" j;
            r_sequential = get_str "sequential" j;
            r_index =
              (match P.member "index" j with
              | Some P.Null -> None
              | Some v -> Some (int_of_float (need "index" (P.num v)))
              | None -> raise (Invalid "missing index"));
            r_witness = get_str "witness" j }
    | "unknown" -> Engine.Unknown (get_str "reason" j)
    | v -> raise (Invalid ("unknown verdict tag '" ^ v ^ "'"))
  in
  { Engine.kv_name = name; kv_verdict = verdict }

let of_json s =
  match P.parse_result s with
  | Error e -> Error e
  | Ok j -> (
      try
        (match P.member "schema" j with
        | Some (P.Str tag) when tag = schema -> ()
        | Some (P.Str tag) ->
            raise (Invalid (Fmt.str "wrong schema tag %S (want %S)" tag schema))
        | _ -> raise (Invalid "missing schema tag"));
        if get_int "version" j <> version then
          raise (Invalid "unsupported schema version");
        let kernels = List.map kernel_of_json (get_arr "kernels" j) in
        let cov = need "coverage" (P.member "coverage" j) in
        let count p =
          List.length
            (List.filter (fun k -> p k.Engine.kv_verdict) kernels)
        in
        let result =
          { Engine.kernels;
            proved = count (function Engine.Proved _ -> true | _ -> false);
            disproved =
              count (function Engine.Disproved _ -> true | _ -> false);
            unknown = count (function Engine.Unknown _ -> true | _ -> false) }
        in
        (* The recorded coverage must agree with the verdict list. *)
        if
          get_int "kernels" cov <> List.length kernels
          || get_int "proved" cov <> result.Engine.proved
          || get_int "disproved" cov <> result.Engine.disproved
          || get_int "unknown" cov <> result.Engine.unknown
        then raise (Invalid "coverage counters disagree with verdict list");
        Ok { program = get_str "program" j; result }
      with Invalid why -> Error why)

let pp ppf t =
  Fmt.pf ppf "@[<v>symbolic equivalence — %s@,%a@]" t.program Engine.pp
    t.result
