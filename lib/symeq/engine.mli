(** The symbolic kernel-equivalence engine.

    For each outlined kernel the engine decides whether the simulated
    device execution is equivalent to executing the retained sequential
    region, by symbolic means alone:

    - {b Proved}: every committed object (written array, committed
      scalar) has the same normal form under both executions.  The
      certificate lists the matched normal forms, any subscript
      distinctness hypotheses the proof rests on, and notes (e.g. that
      tree and sequential reductions are compared over ℝ).
    - {b Disproved}: some object provably differs; the refutation names
      it and gives the two symbolic values plus a concrete
      distinguishing iteration when the loop bounds are literal.
    - {b Unknown}: the kernel leaves the affine fragment (while loops,
      unstructured control flow, non-affine subscripts, pointer
      aliasing, loop-carried scalar state, ...).  Callers must fall
      back to the numeric comparator.

    Soundness convention: a [Proved] verdict also asserts
    {e engine-independence} — no cross-iteration write-write or
    write-read overlap — so it holds for any execution order of the
    parallel iterations, not just the in-order reference simulator.
    Overlapping-but-in-order-benign kernels come out [Unknown], never
    [Proved]. *)

type certificate = {
  c_objects : (string * string) list;
      (** object name → matched normal form (printable) *)
  c_hypotheses : string list;
      (** subscript distinctness assumptions the proof relies on *)
  c_notes : string list;
}

type refutation = {
  r_object : string;
  r_device : string;  (** symbolic committed value on the device *)
  r_sequential : string;  (** symbolic value after the sequential region *)
  r_index : int option;
      (** a concrete distinguishing iteration, when bounds are literal *)
  r_witness : string;  (** human-readable account of the divergence *)
}

type verdict =
  | Proved of certificate
  | Disproved of refutation
  | Unknown of string  (** why the kernel is outside the fragment *)

type kernel_verdict = { kv_name : string; kv_verdict : verdict }

type t = {
  kernels : kernel_verdict list;
  proved : int;
  disproved : int;
  unknown : int;
}

val verdict_name : verdict -> string
(** ["proved"], ["disproved"] or ["unknown"]. *)

val check_kernel : Codegen.Tprog.t -> Codegen.Tprog.kernel -> verdict

val check_tprog : Codegen.Tprog.t -> t
(** Verdicts for every kernel of a translated program, in kernel order. *)

val check_program : ?opts:Codegen.Options.t -> Minic.Ast.program -> t
(** Convenience: inline, typecheck and translate [prog], then run
    {!check_tprog}.  Raises the usual front-end exceptions on invalid
    programs. *)

val pp_kernel : Format.formatter -> kernel_verdict -> unit
val pp : Format.formatter -> t -> unit
