(** Canonical serialization of symbolic-equivalence verdicts.

    The JSON document is schema-tagged [openarc.obs.symeq] and fully
    deterministic (kernel order, member order, no timing data), so a
    committed baseline can be compared byte-for-byte.  {!of_json}
    validates and reconstructs a document — the strict inverse of
    {!to_json} — and rejects anything outside the schema. *)

type t = { program : string; result : Engine.t }

val schema : string
(** ["openarc.obs.symeq"] *)

val version : int

val to_json : t -> string
(** One-line canonical JSON document. *)

val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}: rejects malformed JSON, wrong or
    missing schema tags, and structurally invalid verdicts. *)

val pp : Format.formatter -> t -> unit
(** Human-readable verdict listing. *)
