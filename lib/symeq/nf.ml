(** Polynomial normal forms over symbolic atoms.  See nf.mli. *)

type atom =
  | Ainit of string
  | Acarry of string
  | Aiter of string
  | Aread of string * t list
  | Acall of string * t list
  | Aop of Minic.Ast.binop * t * t
  | Aif of t * t
  | Abig of Minic.Ast.redop * string * t * t * t
  | Afold of {
      fp : string;
      out : string;
      iter : string;
      lo : t;
      hi : t;
      args : (string * t) list;
    }

and term = { coeff : float; atoms : atom list }
and t = { const : float; terms : term list }

(* Structural comparison is canonical: atoms contain only floats, strings,
   lists and variants. *)
let compare_atom (a : atom) (b : atom) = Stdlib.compare a b
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let const k = { const = k; terms = [] }
let zero = const 0.0
let one = const 1.0
let is_zero f = f.const = 0.0 && f.terms = []

let atom a = { const = 0.0; terms = [ { coeff = 1.0; atoms = [ a ] } ] }
let init v = atom (Ainit v)
let carry v = atom (Acarry v)
let iter v = atom (Aiter v)

(* Merge terms with equal atom multisets, dropping zero coefficients. *)
let norm_terms terms =
  let sorted =
    List.sort (fun t1 t2 -> Stdlib.compare t1.atoms t2.atoms) terms
  in
  let rec merge = function
    | t1 :: t2 :: rest when t1.atoms = t2.atoms ->
        merge ({ t1 with coeff = t1.coeff +. t2.coeff } :: rest)
    | t1 :: rest ->
        if t1.coeff = 0.0 then merge rest else t1 :: merge rest
    | [] -> []
  in
  merge sorted

let add a b =
  { const = a.const +. b.const; terms = norm_terms (a.terms @ b.terms) }

let scale k f =
  if k = 0.0 then zero
  else
    { const = k *. f.const;
      terms =
        norm_terms
          (List.map (fun t -> { t with coeff = k *. t.coeff }) f.terms) }

let neg f = scale (-1.0) f
let sub a b = add a (neg b)

let mul a b =
  let term_mul t1 t2 =
    { coeff = t1.coeff *. t2.coeff;
      atoms = List.sort compare_atom (t1.atoms @ t2.atoms) }
  in
  let cross =
    List.concat_map (fun t1 -> List.map (term_mul t1) b.terms) a.terms
  in
  let a_const_b = (scale a.const b).terms in
  let b_const_a = (scale b.const a).terms in
  { const = a.const *. b.const;
    terms = norm_terms (cross @ a_const_b @ b_const_a) }

let cond c a b =
  if equal a b then a
  else
    let delta = sub a b in
    add b (atom (Aif (c, delta)))

(* ----------------------------- traversal ---------------------------- *)

let rec mentions p f = List.exists (term_mentions p) f.terms

and term_mentions p t = List.exists (atom_mentions p) t.atoms

and atom_mentions p a =
  p a
  ||
  match a with
  | Ainit _ | Acarry _ | Aiter _ -> false
  | Aread (_, subs) | Acall (_, subs) -> List.exists (mentions p) subs
  | Aop (_, x, y) -> mentions p x || mentions p y
  | Aif (c, d) -> mentions p c || mentions p d
  | Abig (_, _, lo, hi, body) ->
      mentions p lo || mentions p hi || mentions p body
  | Afold { lo; hi; args; _ } ->
      mentions p lo || mentions p hi
      || List.exists (fun (_, f) -> mentions p f) args

let mentions_init v f =
  mentions (function Ainit v' -> v' = v | _ -> false) f

let mentions_carry f = mentions (function Acarry _ -> true | _ -> false) f

(* [f = self + g] with [g] free of [self], the shape of a sum-accumulator
   transfer. *)
let split_on self_atom deep_check f =
  let is_self t = t.atoms = [ self_atom ] in
  let selfs, rest = List.partition is_self f.terms in
  match selfs with
  | [ t ] when t.coeff = 1.0 ->
      let g = { const = f.const; terms = rest } in
      if deep_check g then None else Some g
  | _ -> None

let split_init v f = split_on (Ainit v) (mentions_init v) f

let split_carry v f =
  split_on (Acarry v)
    (mentions (function Acarry v' -> v' = v | _ -> false))
    f

let rec map_poly fa f =
  List.fold_left
    (fun acc t ->
      add acc
        (List.fold_left
           (fun p a -> mul p (map_atom fa a))
           (const t.coeff) t.atoms))
    (const f.const) f.terms

and map_atom fa a =
  match fa a with
  | Some repl -> repl
  | None -> (
      let r = map_poly fa in
      atom
        (match a with
        | Ainit _ | Acarry _ | Aiter _ -> a
        | Aread (n, subs) -> Aread (n, List.map r subs)
        | Acall (n, args) -> Acall (n, List.map r args)
        | Aop (op, x, y) -> Aop (op, r x, r y)
        | Aif (c, d) -> Aif (r c, r d)
        | Abig (op, it, lo, hi, body) -> Abig (op, it, r lo, r hi, r body)
        | Afold fo ->
            Afold
              { fo with
                lo = r fo.lo;
                hi = r fo.hi;
                args = List.map (fun (n, f) -> (n, r f)) fo.args }))

let subst_iter it repl f =
  map_poly
    (function Aiter v when v = it -> Some repl | _ -> None)
    f

(* ----------------------------- printing ----------------------------- *)

let big_sym = function
  | Minic.Ast.Rsum -> "\xce\xa3" (* Σ *)
  | Minic.Ast.Rprod -> "\xce\xa0" (* Π *)
  | Minic.Ast.Rmax -> "max"
  | Minic.Ast.Rmin -> "min"
  | Minic.Ast.Rland -> "\xe2\x88\x80" (* ∀ *)
  | Minic.Ast.Rlor -> "\xe2\x88\x83" (* ∃ *)

let rec pp ppf f =
  if f.terms = [] then Fmt.pf ppf "%g" f.const
  else begin
    let first = ref true in
    let sep () = if !first then first := false else Fmt.pf ppf " + " in
    if f.const <> 0.0 then begin
      sep ();
      Fmt.pf ppf "%g" f.const
    end;
    List.iter
      (fun t ->
        sep ();
        pp_term ppf t)
      f.terms
  end

and pp_term ppf t =
  if t.atoms = [] then Fmt.pf ppf "%g" t.coeff
  else begin
    if t.coeff <> 1.0 then Fmt.pf ppf "%g*" t.coeff;
    Fmt.list ~sep:(Fmt.any "*") pp_atom ppf t.atoms
  end

and pp_atom ppf = function
  | Ainit v -> Fmt.pf ppf "%s@0" v
  | Acarry v -> Fmt.pf ppf "%s@carry" v
  | Aiter v -> Fmt.string ppf v
  | Aread (a, subs) ->
      Fmt.pf ppf "%s%a" a
        (Fmt.list ~sep:Fmt.nop (fun ppf s -> Fmt.pf ppf "[%a]" pp s))
        subs
  | Acall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp) args
  | Aop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp a (Minic.Pretty.binop_str op) pp b
  | Aif (c, d) -> Fmt.pf ppf "(%a ? %a : 0)" pp c pp d
  | Abig (op, it, lo, hi, body) ->
      Fmt.pf ppf "%s{%s in [%a,%a)}(%a)" (big_sym op) it pp lo pp hi pp
        body
  | Afold { fp; out; iter; lo; hi; args } ->
      Fmt.pf ppf "fold.%s[%s]{%s in [%a,%a)}(%a)"
        (String.sub (Digest.to_hex (Digest.string fp)) 0 8)
        out iter pp lo pp hi
        (Fmt.list ~sep:(Fmt.any ", ")
           (fun ppf (n, f) -> Fmt.pf ppf "%s@0=%a" n pp f))
        args

let to_string f = Fmt.str "%a" pp f
