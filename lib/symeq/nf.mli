(** Polynomial normal forms for the symbolic equivalence tier.

    A value is a polynomial over {e atoms}: a constant plus a sorted list
    of terms, each a float coefficient times a sorted multiset of atoms.
    Atoms are the symbolic leaves — kernel-entry scalar values, loop
    iterators, array reads, uninterpreted pure calls, non-polynomial
    operators, guarded deltas, big-operator summations, and opaque (but
    deterministic) inner-loop folds.  Two normal forms are equal exactly
    when they denote the same real-valued function of the leaves; integer
    wrap-around and float rounding are idealized away, which is the same
    idealization the paper's error margin exists to absorb. *)

type atom =
  | Ainit of string  (** kernel-entry value of a scalar *)
  | Acarry of string
      (** inner-loop summarization marker: the scalar's value at entry of
          the current inner iteration.  Internal to the engine's trial
          execution — never escapes into a reported normal form. *)
  | Aiter of string  (** a bound loop iterator (parallel or inner) *)
  | Aread of string * t list  (** array element read *)
  | Acall of string * t list  (** uninterpreted pure call *)
  | Aop of Minic.Ast.binop * t * t
      (** non-polynomial operator: division, modulo, comparisons,
          logical connectives *)
  | Aif of t * t  (** guarded delta: [cond ? delta : 0] *)
  | Abig of Minic.Ast.redop * string * t * t * t
      (** [⊕_{it = lo}^{hi - 1} body]: a recognized inner accumulation *)
  | Afold of {
      fp : string;  (** canonical text of the folded loop statement *)
      out : string;  (** which scalar's final value this atom denotes *)
      iter : string;
      lo : t;
      hi : t;
      args : (string * t) list;
          (** loop-entry values of the scalars the fold reads, by name *)
    }  (** opaque but deterministic inner loop *)

and term = { coeff : float; atoms : atom list }
and t = { const : float; terms : term list }

(** {1 Construction} *)

val const : float -> t
val zero : t
val one : t
val atom : atom -> t
val init : string -> t
val carry : string -> t
val iter : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val cond : t -> t -> t -> t
(** [cond c a b] is [c ? a : b], canonicalized to [b + (c ? a - b : 0)]
    so that guarded accumulations keep their polynomial spine. *)

(** {1 Inspection} *)

val equal : t -> t -> bool
val is_zero : t -> bool
val compare : t -> t -> int

val mentions : (atom -> bool) -> t -> bool
(** Does any atom anywhere in the normal form (including inside nested
    atom payloads) satisfy the predicate? *)

val mentions_init : string -> t -> bool
(** Does the normal form read the kernel-entry value of [v]? *)

val split_init : string -> t -> t option
(** [split_init v f] is [Some g] when [f = v₀ + g] with [g] free of
    [v₀] — the shape of a sum-accumulator transfer — and [None]
    otherwise. *)

val mentions_carry : t -> bool
(** Does the normal form contain any trial-execution carry marker? *)

val split_carry : string -> t -> t option
(** [split_carry v f] is [Some g] when [f = carry(v) + g] with [g] free
    of [carry(v)]: the transfer of one inner-loop iteration is a pure
    accumulation into [v]. *)

val subst_iter : string -> t -> t -> t
(** [subst_iter it repl f] replaces every [Aiter it] atom by [repl]. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
