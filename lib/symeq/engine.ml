(** Symbolic kernel-equivalence engine.  See engine.mli for the verdict
    contract.

    The engine executes one parallel iteration of the kernel body
    symbolically, producing a normal form for every committed scalar and
    a guarded, quantified write effect for every array store.  Inner
    sequential loops are summarized by a trial execution against carry
    markers: a pure accumulation becomes a big-operator sum, a
    carry-free recomputation is collapsed to its last iteration, and
    anything else is folded into an opaque-but-deterministic atom.  The
    per-iteration forms are then compared against what the retained
    sequential region computes; the only differences between the two
    executions are (a) scalar state carried across iterations, which the
    device resets, and (b) the iteration order of array stores, which
    only matters when subscripts overlap across iterations.  Both are
    decided on the normal forms. *)

open Minic.Ast
module T = Codegen.Tprog
module A = Analysis.Affine
module V = Analysis.Varset
module SM = Map.Make (String)

type certificate = {
  c_objects : (string * string) list;
  c_hypotheses : string list;
  c_notes : string list;
}

type refutation = {
  r_object : string;
  r_device : string;
  r_sequential : string;
  r_index : int option;
  r_witness : string;
}

type verdict =
  | Proved of certificate
  | Disproved of refutation
  | Unknown of string

type kernel_verdict = { kv_name : string; kv_verdict : verdict }

type t = {
  kernels : kernel_verdict list;
  proved : int;
  disproved : int;
  unknown : int;
}

let verdict_name = function
  | Proved _ -> "proved"
  | Disproved _ -> "disproved"
  | Unknown _ -> "unknown"

(* Raised anywhere the kernel leaves the provable fragment; the payload
   becomes the [Unknown] reason. *)
exception Outside of string

(* --------------------------- syntactic scans ------------------------- *)

let rec assigned_stmt acc s =
  match s.skind with
  | Sassign (Lvar v, _) -> V.add v acc
  | Sassign (Lindex _, _) | Sskip | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak
  | Scontinue ->
      acc
  | Sif (_, b1, b2) -> assigned_block (assigned_block acc b1) b2
  | Swhile (_, b) -> assigned_block acc b
  | Sfor (init, _, step, b) ->
      let acc =
        List.fold_left assigned_stmt acc (List.filter_map Fun.id [ init; step ])
      in
      assigned_block acc b
  | Sblock b -> assigned_block acc b
  | Sacc (_, body) -> Option.fold ~none:acc ~some:(assigned_stmt acc) body

and assigned_block acc b = List.fold_left assigned_stmt acc b

let rec declared_stmt acc s =
  match s.skind with
  | Sdecl (_, v, _) -> V.add v acc
  | Sassign _ | Sskip | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> acc
  | Sif (_, b1, b2) -> declared_block (declared_block acc b1) b2
  | Swhile (_, b) -> declared_block acc b
  | Sfor (init, _, step, b) ->
      let acc =
        List.fold_left declared_stmt acc (List.filter_map Fun.id [ init; step ])
      in
      declared_block acc b
  | Sblock b -> declared_block acc b
  | Sacc (_, body) -> Option.fold ~none:acc ~some:(declared_stmt acc) body

and declared_block acc b = List.fold_left declared_stmt acc b

(* Scalar names an expression reads: array base names are skipped, their
   subscripts are included. *)
let rec expr_reads acc e =
  match e with
  | Eint _ | Efloat _ -> acc
  | Evar v -> V.add v acc
  | Eindex (a, i) -> (
      match A.expr_root_subs [] e with
      | Some (_, subs) -> List.fold_left expr_reads acc subs
      | None -> expr_reads (expr_reads acc a) i)
  | Eunop (_, a) -> expr_reads acc a
  | Ebinop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ecall (_, args) -> List.fold_left expr_reads acc args
  | Econd (c, a, b) -> expr_reads (expr_reads (expr_reads acc c) a) b

let rec lvalue_reads acc = function
  | Lvar _ -> acc
  | Lindex (lv, e) -> lvalue_reads (expr_reads acc e) lv

let rec stmt_reads acc s =
  match s.skind with
  | Sskip | Sbreak | Scontinue -> acc
  | Sexpr e -> expr_reads acc e
  | Sassign (lv, e) -> lvalue_reads (expr_reads acc e) lv
  | Sdecl (_, _, init) -> Option.fold ~none:acc ~some:(expr_reads acc) init
  | Sreturn e -> Option.fold ~none:acc ~some:(expr_reads acc) e
  | Sif (c, b1, b2) -> block_reads (block_reads (expr_reads acc c) b1) b2
  | Swhile (c, b) -> block_reads (expr_reads acc c) b
  | Sfor (init, cond, step, b) ->
      let acc =
        List.fold_left stmt_reads acc (List.filter_map Fun.id [ init; step ])
      in
      let acc = Option.fold ~none:acc ~some:(expr_reads acc) cond in
      block_reads acc b
  | Sblock b -> block_reads acc b
  | Sacc (_, body) -> Option.fold ~none:acc ~some:(stmt_reads acc) body

and block_reads acc b = List.fold_left stmt_reads acc b

(* ------------------------- symbolic execution ------------------------ *)

type effect_ = {
  e_arr : string;
  e_subs : Nf.t list;
  e_guards : (Nf.t * bool) list;  (** enclosing branch conditions *)
  e_binds : (string * Nf.t * Nf.t) list;
      (** enclosing inner-loop binders, outermost first *)
  e_val : Nf.t;
}

type senv = {
  st : Nf.t SM.t;  (** scalar name → current normal form *)
  iters : string list;  (** bound iterators, innermost first *)
  binds : (string * Nf.t * Nf.t) list;
  guards : (Nf.t * bool) list;
  written : V.t;  (** arrays written so far in this iteration *)
}

type ctx = { effects : effect_ list ref; inner_used : bool ref }

let lookup env v =
  if List.mem v env.iters then Nf.iter v
  else match SM.find_opt v env.st with Some f -> f | None -> Nf.init v

let nf_lt lo hi = Nf.atom (Nf.Aop (Lt, lo, hi))

let rec conv env e =
  match e with
  | Eint n -> Nf.const (float_of_int n)
  | Efloat x -> Nf.const x
  | Evar v -> lookup env v
  | Eindex _ -> (
      match A.expr_root_subs [] e with
      | Some (arr, subs) ->
          if V.mem arr env.written then
            raise
              (Outside
                 (Fmt.str "read of '%s' after a write to it in the same \
                           iteration" arr));
          Nf.atom (Nf.Aread (arr, List.map (conv env) subs))
      | None -> raise (Outside "array access without a plain base"))
  | Eunop (Neg, a) -> Nf.neg (conv env a)
  | Eunop (Not, a) -> Nf.atom (Nf.Acall ("!", [ conv env a ]))
  | Ebinop (Add, a, b) -> Nf.add (conv env a) (conv env b)
  | Ebinop (Sub, a, b) -> Nf.sub (conv env a) (conv env b)
  | Ebinop (Mul, a, b) -> Nf.mul (conv env a) (conv env b)
  | Ebinop (op, a, b) -> Nf.atom (Nf.Aop (op, conv env a, conv env b))
  | Ecall (f, args) -> Nf.atom (Nf.Acall (f, List.map (conv env) args))
  | Econd (c, a, b) -> Nf.cond (conv env c) (conv env a) (conv env b)

let rec exec env ctx s =
  match s.skind with
  | Sskip -> env
  | Sexpr e ->
      ignore (conv env e);
      env
  | Sdecl (_, v, init) ->
      let f =
        match init with
        | Some e -> conv env e
        | None -> Nf.atom (Nf.Acall ("__undef_" ^ v, []))
      in
      { env with st = SM.add v f env.st }
  | Sassign (Lvar v, e) ->
      if List.mem v env.iters then
        raise (Outside (Fmt.str "loop iterator '%s' mutated in the body" v));
      { env with st = SM.add v (conv env e) env.st }
  | Sassign ((Lindex _ as lv), e) -> (
      match A.lvalue_root_subs [] lv with
      | None -> raise (Outside "array write without a plain base")
      | Some (arr, subs) ->
          let subs = List.map (conv env) subs in
          let value = conv env e in
          ctx.effects :=
            { e_arr = arr;
              e_subs = subs;
              e_guards = env.guards;
              e_binds = env.binds;
              e_val = value }
            :: !(ctx.effects);
          { env with written = V.add arr env.written })
  | Sif (c, b1, b2) ->
      let cn = conv env c in
      let env1 =
        exec_block { env with guards = env.guards @ [ (cn, true) ] } ctx b1
      in
      let env2 =
        exec_block
          { env with
            guards = env.guards @ [ (cn, false) ];
            written = env1.written }
          ctx b2
      in
      let st =
        SM.merge
          (fun v a b ->
            match (a, b) with
            | Some a, Some b ->
                if Nf.equal a b then Some a else Some (Nf.cond cn a b)
            | Some a, None -> Some (Nf.cond cn a (Nf.init v))
            | None, Some b -> Some (Nf.cond cn (Nf.init v) b)
            | None, None -> None)
          env1.st env2.st
      in
      { env with st; written = env2.written }
  | Sblock b -> exec_block env ctx b
  | Sfor (init, cond, step, body) -> (
      match T.for_bounds init cond step with
      | Some (j, lo, hi) -> exec_for env ctx s (j, lo, hi) body
      | None -> raise (Outside "inner loop with an unrecognized header"))
  | Swhile _ -> raise (Outside "while loop in kernel body")
  | Sreturn _ | Sbreak | Scontinue ->
      raise (Outside "unstructured control flow in kernel body")
  | Sacc _ -> raise (Outside "nested directive in kernel body")

and exec_block env ctx b = List.fold_left (fun env s -> exec env ctx s) env b

(* Summarize an inner sequential loop [for (j = lo; j < hi; j++) body].
   The body is executed once against carry markers for every scalar it
   assigns; each such scalar's transfer then either accumulates
   (becomes a big-operator sum), recomputes (collapses to the last
   iteration), or defeats summarization (the whole loop becomes opaque
   fold atoms). *)
and exec_for env ctx s (j, lo_e, hi_e) body =
  if List.mem j env.iters then
    raise (Outside "inner loop shadows an enclosing iterator");
  ctx.inner_used := true;
  let lo = conv env lo_e and hi = conv env hi_e in
  if Nf.mentions_carry lo || Nf.mentions_carry hi then
    raise (Outside "inner-loop bounds depend on loop-carried scalar state");
  let ws = V.diff (assigned_block V.empty body) (declared_block V.empty body) in
  let wl = V.elements ws in
  let trial_ctx = { ctx with effects = ref [] } in
  let trial_env =
    { env with
      st = List.fold_left (fun m w -> SM.add w (Nf.carry w) m) env.st wl;
      iters = j :: env.iters;
      binds = env.binds @ [ (j, lo, hi) ] }
  in
  let out = exec_block trial_env trial_ctx body in
  let entry w = lookup env w in
  let final w =
    match SM.find_opt w out.st with Some f -> f | None -> Nf.carry w
  in
  let classify w =
    let f = final w in
    if Nf.equal f (Nf.carry w) then `Unchanged
    else
      match Nf.split_carry w f with
      | Some g when not (Nf.mentions_carry g) -> `Accum g
      | _ -> if Nf.mentions_carry f then `Fold else `Recompute f
  in
  let cls = List.map (fun w -> (w, classify w)) wl in
  let foldy = List.exists (fun (_, c) -> c = `Fold) cls in
  let st =
    if not foldy then begin
      List.iter
        (fun eff ->
          if
            Nf.mentions_carry eff.e_val
            || List.exists Nf.mentions_carry eff.e_subs
            || List.exists (fun (c, _) -> Nf.mentions_carry c) eff.e_guards
          then
            raise
              (Outside
                 "inner-loop array write depends on loop-carried scalar \
                  state"))
        !(trial_ctx.effects);
      ctx.effects := !(trial_ctx.effects) @ !(ctx.effects);
      List.fold_left
        (fun st (w, c) ->
          match c with
          | `Unchanged -> st
          | `Accum g ->
              SM.add w
                (Nf.add (entry w) (Nf.atom (Nf.Abig (Rsum, j, lo, hi, g))))
                st
          | `Recompute f -> SM.add w (Nf.subst_iter j (Nf.sub hi Nf.one) f) st
          | `Fold -> assert false)
        env.st cls
    end
    else begin
      if !(trial_ctx.effects) <> [] then
        raise (Outside "array writes inside a non-summarizable inner loop");
      (* The fold's inputs: carried scalars the finals actually depend
         on, plus every other scalar the loop reads, all at their
         loop-entry values. *)
      let live_carry w =
        List.exists
          (fun w' ->
            Nf.mentions
              (function Nf.Acarry n -> n = w | _ -> false)
              (final w'))
          wl
      in
      let other_reads =
        V.diff (stmt_reads V.empty s) (V.add j (V.union ws (declared_stmt V.empty s)))
      in
      let args =
        List.filter (fun w -> live_carry w) wl
        @ V.elements other_reads
        |> List.sort_uniq String.compare
        |> List.map (fun n -> (n, lookup env n))
      in
      List.iter
        (fun (_, f) ->
          if Nf.mentions_carry f then
            raise (Outside "nested non-summarizable inner loops"))
        args;
      let fp = Minic.Pretty.stmt_to_string s in
      List.fold_left
        (fun st (w, _) ->
          SM.add w (Nf.atom (Nf.Afold { fp; out = w; iter = j; lo; hi; args })) st)
        env.st cls
    end
  in
  (* The iterator's exit value: [hi] when the loop ran, [lo] otherwise. *)
  let st = SM.add j (Nf.cond (nf_lt lo hi) hi lo) st in
  { env with st; written = out.written }

(* ---------------------- contextual access walk ----------------------- *)

type caccess = {
  ca_subs : expr list;
  ca_write : bool;
  ca_inners : (string * expr * expr) list;
      (** enclosing recognized inner loops, outermost first *)
}

let collect_accesses body =
  let acc = ref [] in
  let push arr a = acc := (arr, a) :: !acc in
  let rec expr inners e =
    match e with
    | Eint _ | Efloat _ | Evar _ -> ()
    | Eindex (a, i) -> (
        match A.expr_root_subs [] e with
        | Some (arr, subs) ->
            push arr { ca_subs = subs; ca_write = false; ca_inners = inners };
            List.iter (expr inners) subs
        | None -> expr inners a; expr inners i)
    | Eunop (_, a) -> expr inners a
    | Ebinop (_, a, b) -> expr inners a; expr inners b
    | Ecall (_, args) -> List.iter (expr inners) args
    | Econd (c, a, b) -> expr inners c; expr inners a; expr inners b
  in
  let lvalue inners lv =
    match A.lvalue_root_subs [] lv with
    | Some (arr, subs) ->
        push arr { ca_subs = subs; ca_write = true; ca_inners = inners };
        List.iter (expr inners) subs
    | None -> ()
  in
  let rec stmt inners s =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> ()
    | Sexpr e -> expr inners e
    | Sassign (lv, e) -> lvalue inners lv; expr inners e
    | Sdecl (_, _, init) -> Option.iter (expr inners) init
    | Sreturn e -> Option.iter (expr inners) e
    | Sif (c, b1, b2) ->
        expr inners c;
        List.iter (stmt inners) b1;
        List.iter (stmt inners) b2
    | Swhile (c, b) -> expr inners c; List.iter (stmt inners) b
    | Sfor (init, cond, step, b) -> (
        Option.iter (stmt inners) init;
        Option.iter (expr inners) cond;
        Option.iter (stmt inners) step;
        match T.for_bounds init cond step with
        | Some bind -> List.iter (stmt (inners @ [ bind ])) b
        | None -> List.iter (stmt inners) b)
    | Sblock b -> List.iter (stmt inners) b
    | Sacc (_, body) -> Option.iter (stmt inners) body
  in
  List.iter (stmt []) body;
  List.rev !acc

(* ------------------- cross-iteration conflict solver ----------------- *)

(* How one subscript dimension of an access behaves across iterations of
   the parallel loop.  Stricter than the race linter's classification:
   an affine base may only involve iteration-invariant names, because a
   [Proved] verdict asserts disjointness rather than reporting a
   possible overlap. *)
type sdim =
  | Sinv of string  (** invariant (fingerprint) *)
  | Saff of { bfp : string; off : int; coeff : int }
      (** [coeff * iv + base + off], base invariant *)
  | Sblock of { bfp : string }
      (** [iv * B + j] with [j ∈ \[0, B)]: iteration-disjoint blocks *)
  | Svar  (** anything else: can coincide with anything *)

let classify_sdim ~iv ~varying ~wnames ~inners e =
  let vs = A.vars_of e in
  if not (V.is_empty (V.inter vs wnames)) then
    (* The subscript reads an array this kernel writes: its value is not
       stable across the execution. *)
    Svar
  else
    let inner_here = List.filter (fun (j, _, _) -> V.mem j vs) inners in
    let base_vs =
      List.fold_left
        (fun s (j, _, _) -> V.remove j s)
        (V.remove iv vs) inner_here
    in
    let base_inv = V.is_empty (V.inter base_vs varying) in
    let has_iv = V.mem iv vs in
    match (has_iv, inner_here) with
    | false, [] -> if base_inv then Sinv (A.fingerprint e) else Svar
    | true, [] ->
        if not base_inv then Svar
        else
          let base, off = A.split_offset e in
          (match A.iv_coeff iv base with
          | Some c when c <> 0 -> Saff { bfp = A.fingerprint base; off; coeff = c }
          | _ -> Svar)
    | true, [ (j, jlo, jhi) ] ->
        if not base_inv then Svar
        else begin
          let base, off = A.split_offset e in
          if off <> 0 then Svar
          else
            let block x y =
              let mul_iv = function
                | Ebinop (Mul, Evar v, b) when v = iv -> Some b
                | Ebinop (Mul, b, Evar v) when v = iv -> Some b
                | _ -> None
              in
              match (x, mul_iv y) with
              | Evar j', Some b
                when j' = j
                     && jlo = Eint 0
                     && A.fingerprint jhi = A.fingerprint b
                     && V.is_empty (V.inter (A.vars_of b) varying) ->
                  Some (Sblock { bfp = A.fingerprint b })
              | _ -> None
            in
            match base with
            | Ebinop (Add, x, y) -> (
                match block x y with
                | Some d -> d
                | None -> ( match block y x with Some d -> d | None -> Svar))
            | _ -> Svar
        end
    | _ -> Svar

(* Can accesses [da] (at iteration x) and [db] (at iteration x + d,
   d ≠ 0) touch the same element?  [`Disjoint] when no shift works,
   [`Hyp hs] when disjointness needs the recorded invariant-subscript
   distinctness assumptions, [`Conflict] otherwise. *)
let solve_pair da db =
  if List.length da <> List.length db then `Conflict
  else begin
    let delta = ref None in
    let hyps = ref [] in
    let constrain d =
      match !delta with
      | None -> delta := Some d
      | Some d' -> if d' <> d then raise Exit
    in
    try
      List.iter2
        (fun a b ->
          match (a, b) with
          | Sinv f1, Sinv f2 -> if f1 <> f2 then hyps := (f1, f2) :: !hyps
          | Saff a1, Saff a2 when a1.bfp = a2.bfp && a1.coeff = a2.coeff ->
              let dk = a2.off - a1.off in
              if dk mod a1.coeff <> 0 then raise Exit
              else constrain (dk / a1.coeff)
          | Sblock b1, Sblock b2 when b1.bfp = b2.bfp ->
              (* distinct iterations own distinct blocks *)
              constrain 0
          | _ -> ())
        da db;
      match !delta with
      | Some 0 -> `Disjoint  (* can only coincide within one iteration *)
      | _ -> if !hyps <> [] then `Hyp !hyps else `Conflict
    with Exit -> `Disjoint
  end

(* ------------------------- commit-rank analysis ---------------------- *)

(* Whether the final sequential iteration is guaranteed to write [v]
   (so the device's commit-from-last-iteration matches): [Ralways]
   unconditionally, [Rinv] under an iteration-invariant condition
   (uniform across iterations, so device and sequential agree either
   way), [Rvarying] under an iteration-dependent one. *)
type rank = Rnever | Ralways | Rinv | Rvarying

let rank_seq a b =
  match (a, b) with
  | _, Ralways | Ralways, _ -> Ralways
  | Rvarying, _ | _, Rvarying -> Rvarying
  | Rinv, _ | _, Rinv -> Rinv
  | Rnever, Rnever -> Rnever

let invariant_expr varying e = V.is_empty (V.inter (A.vars_of e) varying)

let rec rank_stmt v varying s =
  match s.skind with
  | Sassign (Lvar v', _) when v' = v -> Ralways
  | Sassign _ | Sskip | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
      Rnever
  | Sif (c, b1, b2) ->
      let r1 = rank_block v varying b1 and r2 = rank_block v varying b2 in
      if r1 = Rnever && r2 = Rnever then Rnever
      else if r1 = Ralways && r2 = Ralways then Ralways
      else if invariant_expr varying c && r1 <> Rvarying && r2 <> Rvarying then
        Rinv
      else Rvarying
  | Sblock b -> rank_block v varying b
  | Sfor (init, cond, step, body) ->
      let rinit =
        List.fold_left
          (fun acc st -> rank_seq acc (rank_stmt v varying st))
          Rnever
          (List.filter_map Fun.id [ init ])
      in
      let rbody =
        rank_seq
          (rank_block v varying body)
          (match step with Some st -> rank_stmt v varying st | None -> Rnever)
      in
      let rloop =
        if rbody = Rnever then Rnever
        else
          let bounds_inv =
            match T.for_bounds init cond step with
            | Some (_, lo, hi) ->
                invariant_expr varying lo && invariant_expr varying hi
            | None -> false
          in
          if rbody = Rvarying || not bounds_inv then Rvarying else Rinv
      in
      rank_seq rinit rloop
  | Swhile (_, b) ->
      if rank_block v varying b = Rnever then Rnever else Rvarying
  | Sacc (_, body) -> (
      match body with Some s -> rank_stmt v varying s | None -> Rnever)

and rank_block v varying b =
  List.fold_left (fun acc s -> rank_seq acc (rank_stmt v varying s)) Rnever b

(* ----------------------------- verdicts ------------------------------ *)

type ostat =
  | Ok_obj of (string * string) * string list  (* object, notes *)
  | Bad of refutation
  | Dunno of string

let single_atom (f : Nf.t) =
  match f with
  | { Nf.const = 0.0; terms = [ { coeff = 1.0; atoms = [ a ] } ] } -> Some a
  | _ -> None

(* Recognize [v = op(...op(op(v₀, g₁), g₂)..., gₙ)] for a min/max
   reduction written through calls to [fn]. *)
let rec match_minmax fn v f =
  if Nf.equal f (Nf.init v) then Some []
  else
    match single_atom f with
    | Some (Nf.Acall (fn', [ a; b ])) when fn' = fn ->
        let try_order x y =
          match match_minmax fn v x with
          | Some gs when not (Nf.mentions_init v y) -> Some (y :: gs)
          | _ -> None
        in
        (match try_order a b with Some r -> Some r | None -> try_order b a)
    | _ -> None

let lit_int = function Eint n -> Some n | _ -> None

let check_kernel tp (k : T.kernel) =
  let trivial note =
    Proved { c_objects = []; c_hypotheses = []; c_notes = [ note ] }
  in
  match k.T.k_loop with
  | None ->
      trivial
        "single-threaded region: device execution is sequential by \
         construction"
  | Some _ when k.T.k_seq ->
      trivial "seq clause: the device runs the loop on one thread, in order"
  | Some l -> (
      try
        let iv = l.T.kl_var in
        let lo_e, hi_e =
          match T.loop_bounds l with
          | Some b -> b
          | None -> raise (Outside "unrecognized kernel-loop header")
        in
        let assigned = assigned_block V.empty k.T.k_body in
        let declared = declared_block V.empty k.T.k_body in
        let w_all = V.diff assigned declared in
        let varying =
          V.add iv (V.union w_all (V.union declared k.T.k_induction))
        in
        (* Symbolic execution of one parallel iteration. *)
        let ctx = { effects = ref []; inner_used = ref false } in
        let env0 =
          { st = SM.empty;
            iters = [ iv ];
            binds = [];
            guards = [];
            written = V.empty }
        in
        let envf = exec_block env0 ctx k.T.k_body in
        let effects = List.rev !(ctx.effects) in
        let lo_nf = conv env0 lo_e and hi_nf = conv env0 hi_e in
        if
          V.exists
            (fun w -> Nf.mentions_init w lo_nf || Nf.mentions_init w hi_nf)
            w_all
        then raise (Outside "loop bounds read scalars the body writes");
        (* Contextual array accesses + aliasing guard. *)
        let accs = collect_accesses k.T.k_body in
        let wnames =
          List.fold_left
            (fun s (arr, a) -> if a.ca_write then V.add arr s else s)
            V.empty accs
        in
        let anames =
          List.fold_left (fun s (arr, _) -> V.add arr s) V.empty accs
        in
        V.iter
          (fun n ->
            if Analysis.Alias.is_ambiguous tp.T.alias n then
              raise
                (Outside (Fmt.str "'%s' has ambiguous pointer targets" n)))
          anames;
        V.iter
          (fun w ->
            V.iter
              (fun n ->
                if
                  w <> n
                  && not
                       (V.is_empty
                          (V.inter
                             (Analysis.Alias.resolve tp.T.alias w)
                             (Analysis.Alias.resolve tp.T.alias n)))
                then
                  raise
                    (Outside
                       (Fmt.str "written array '%s' may alias '%s'" w n)))
              anames)
          wnames;
        (* --- scalar verdicts --- *)
        let red_note =
          "tree and sequential reduction orders compared over \xe2\x84\x9d; \
           the verification margin absorbs the rounding difference"
        in
        let s_lo = Nf.to_string lo_nf and s_hi = Nf.to_string hi_nf in
        let scalar_status v f =
          let carried = V.filter (fun w -> Nf.mentions_init w f) w_all in
          let cls = List.assoc_opt v k.T.k_scalars in
          match cls with
          | Some (T.Sc_reduction op) -> (
              if not (V.is_empty (V.remove v carried)) then
                Dunno
                  (Fmt.str "%s: reduction transfer reads other written \
                            scalars" v)
              else
                match op with
                | Rsum -> (
                    match Nf.split_init v f with
                    | Some g ->
                        Ok_obj
                          ( ( v,
                              Fmt.str "%s@0 + \xce\xa3{%s \xe2\x88\x88 \
                                       [%s,%s)}(%s)" v iv s_lo s_hi
                                (Nf.to_string g) ),
                            [ red_note ] )
                    | None ->
                        Dunno
                          (Fmt.str "%s: reduction transfer is not a sum \
                                    accumulation" v))
                | (Rmax | Rmin) as op -> (
                    let fn = if op = Rmax then "max" else "min" in
                    match match_minmax fn v f with
                    | Some gs ->
                        Ok_obj
                          ( ( v,
                              Fmt.str "%s{%s@0, %s : %s \xe2\x88\x88 [%s,%s)}"
                                fn v
                                (String.concat ", "
                                   (List.rev_map Nf.to_string gs))
                                iv s_lo s_hi ),
                            [ red_note ] )
                    | None ->
                        Dunno
                          (Fmt.str "%s: reduction transfer is not a %s chain"
                             v fn))
                | _ ->
                    Dunno
                      (Fmt.str
                         "%s: unsupported reduction operator for symbolic \
                          proof" v))
          | _ ->
              if V.is_empty carried then begin
                match rank_block v varying k.T.k_body with
                | Ralways | Rinv ->
                    let notes =
                      match cls with
                      | Some (T.Sc_raced T.Race_latent) ->
                          [ Fmt.str
                              "%s: latent race — write-first shared scalar; \
                               register promotion keeps device and \
                               sequential values equal" v ]
                      | _ -> []
                    in
                    Ok_obj
                      ((v, Nf.to_string f ^ " (value of the last iteration)"),
                       notes)
                | Rvarying ->
                    Dunno
                      (Fmt.str
                         "%s: committed under an iteration-varying condition"
                         v)
                | Rnever ->
                    Dunno (Fmt.str "%s: no reachable write found" v)
              end
              else if V.equal carried (V.singleton v) then
                match Nf.split_init v f with
                | Some g when not (Nf.is_zero g) ->
                    Bad
                      { r_object = v;
                        r_device =
                          Fmt.str "%s@0 + (%s)[%s := %s - 1]" v
                            (Nf.to_string g) iv s_hi;
                        r_sequential =
                          Fmt.str "%s@0 + \xce\xa3{%s \xe2\x88\x88 \
                                   [%s,%s)}(%s)" v iv s_lo s_hi
                            (Nf.to_string g);
                        r_index = lit_int lo_e;
                        r_witness =
                          Fmt.str
                            "unsynchronized accumulation: every device \
                             thread reads %s's kernel-entry value, so only \
                             the last iteration's contribution survives; \
                             the sequential region sums all of them \
                             (distinguishable whenever the loop runs \
                             \xe2\x89\xa5 2 iterations with a nonzero \
                             contribution)" v }
                | _ ->
                    Dunno
                      (Fmt.str "%s: loop-carried scalar dependence" v)
              else
                Dunno
                  (Fmt.str "%s: loop-carried dependence on written scalar%s %s"
                     v
                     (if V.cardinal (V.remove v carried) > 1 then "s" else "")
                     (String.concat ", " (V.elements (V.remove v carried))))
        in
        let scalar_stats =
          List.filter_map
            (fun v ->
              match SM.find_opt v envf.st with
              | Some f -> Some (v, scalar_status v f)
              | None -> None)
            (V.elements w_all)
        in
        let disproved_scalars =
          List.filter_map
            (fun (v, st) -> match st with Bad r -> Some (v, r) | _ -> None)
            scalar_stats
        in
        (* --- array verdicts --- *)
        let eff_mentions pred eff =
          Nf.mentions pred eff.e_val
          || List.exists (Nf.mentions pred) eff.e_subs
          || List.exists (fun (c, _) -> Nf.mentions pred c) eff.e_guards
          || List.exists
               (fun (_, l, h) -> Nf.mentions pred l || Nf.mentions pred h)
               eff.e_binds
        in
        let classify a =
          List.map
            (classify_sdim ~iv ~varying ~wnames ~inners:a.ca_inners)
            a.ca_subs
        in
        let pp_guard (c, pos) =
          if pos then Fmt.str " when %s" (Nf.to_string c)
          else Fmt.str " when \xc2\xac(%s)" (Nf.to_string c)
        in
        let pp_effect eff =
          Fmt.str "\xe2\x88\x80 %s \xe2\x88\x88 [%s,%s)%s%s: %s%s := %s" iv
            s_lo s_hi
            (String.concat ""
               (List.map
                  (fun (j, l, h) ->
                    Fmt.str ", \xe2\x88\x80 %s \xe2\x88\x88 [%s,%s)" j
                      (Nf.to_string l) (Nf.to_string h))
                  eff.e_binds))
            (String.concat "" (List.map pp_guard eff.e_guards))
            eff.e_arr
            (String.concat ""
               (List.map (fun s -> "[" ^ Nf.to_string s ^ "]") eff.e_subs))
            (Nf.to_string eff.e_val)
        in
        let array_status arr =
          let effs = List.filter (fun e -> e.e_arr = arr) effects in
          let carried =
            V.filter
              (fun w ->
                List.exists
                  (eff_mentions (function
                    | Nf.Ainit w' -> w' = w
                    | _ -> false))
                  effs)
              w_all
          in
          match
            List.find_opt (fun (w, _) -> V.mem w carried) disproved_scalars
          with
          | Some (w, r) ->
              Bad
                { r_object = arr;
                  r_device = Fmt.str "%s written from the device value of %s" arr w;
                  r_sequential =
                    Fmt.str "%s written from the sequential value of %s" arr w;
                  r_index = r.r_index;
                  r_witness =
                    Fmt.str
                      "%s stores a value derived from %s, whose device and \
                       sequential values diverge (%s)" arr w r.r_witness }
          | None ->
              if not (V.is_empty carried) then
                Dunno
                  (Fmt.str "%s: stores read loop-carried scalar%s %s" arr
                     (if V.cardinal carried > 1 then "s" else "")
                     (String.concat ", " (V.elements carried)))
              else begin
                let here =
                  List.filter_map
                    (fun (a, acc) -> if a = arr then Some acc else None)
                    accs
                in
                let writes = List.filter (fun a -> a.ca_write) here in
                let wdims = List.map classify writes in
                let rdims =
                  List.map classify (List.filter (fun a -> not a.ca_write) here)
                in
                let hyps = ref [] in
                let conflict = ref None in
                let note_pair kind da db =
                  match solve_pair da db with
                  | `Disjoint -> ()
                  | `Hyp hs -> hyps := hs @ !hyps
                  | `Conflict ->
                      if !conflict = None then conflict := Some kind
                in
                List.iteri
                  (fun i da ->
                    List.iteri
                      (fun i' db ->
                        if i <= i' then note_pair "write-write" da db)
                      wdims)
                  wdims;
                List.iter
                  (fun da ->
                    List.iter (fun db -> note_pair "write-read" da db) rdims)
                  wdims;
                match !conflict with
                | Some kind ->
                    Dunno
                      (Fmt.str
                         "%s: possible cross-iteration %s overlap" arr kind)
                | None ->
                    let hyp_strs =
                      List.sort_uniq String.compare
                        (List.map
                           (fun (f1, f2) ->
                             Fmt.str "%s \xe2\x89\xa0 %s" f1 f2)
                           !hyps)
                    in
                    let body =
                      String.concat "; " (List.map pp_effect effs)
                    in
                    Ok_obj ((arr, body), hyp_strs)
              end
        in
        (* Hypotheses ride along in the notes slot of Ok_obj for arrays;
           split them back out below. *)
        let array_stats =
          List.map (fun arr -> (arr, array_status arr)) (V.elements wnames)
        in
        (* --- assemble --- *)
        let all_stats = scalar_stats @ array_stats in
        let bad =
          List.find_map
            (fun (_, st) -> match st with Bad r -> Some r | _ -> None)
            all_stats
        in
        match bad with
        | Some r -> Disproved r
        | None -> (
            let unknowns =
              List.filter_map
                (fun (_, st) ->
                  match st with Dunno why -> Some why | _ -> None)
                all_stats
            in
            match unknowns with
            | why :: rest ->
                Unknown
                  (if rest = [] then why
                   else Fmt.str "%s (+%d more)" why (List.length rest))
            | [] ->
                let objects =
                  List.filter_map
                    (fun (_, st) ->
                      match st with Ok_obj (o, _) -> Some o | _ -> None)
                    all_stats
                in
                let scalar_notes =
                  List.concat_map
                    (fun (_, st) ->
                      match st with Ok_obj (_, ns) -> ns | _ -> [])
                    scalar_stats
                in
                let hyps =
                  List.concat_map
                    (fun (_, st) ->
                      match st with Ok_obj (_, hs) -> hs | _ -> [])
                    array_stats
                in
                let notes =
                  (if !(ctx.inner_used) then
                     [ "inner-loop closed forms assume the recorded \
                        iteration spaces; an empty inner space leaves the \
                        affected scalars at their entry values under both \
                        executions" ]
                   else [])
                  @ scalar_notes
                in
                Proved
                  { c_objects = objects;
                    c_hypotheses = List.sort_uniq String.compare hyps;
                    c_notes = List.sort_uniq String.compare notes })
      with Outside why -> Unknown why)

let check_tprog tp =
  let kernels =
    Array.to_list tp.T.kernels
    |> List.map (fun k ->
           { kv_name = k.T.k_name; kv_verdict = check_kernel tp k })
  in
  let count p = List.length (List.filter p kernels) in
  { kernels;
    proved = count (fun k -> match k.kv_verdict with Proved _ -> true | _ -> false);
    disproved =
      count (fun k -> match k.kv_verdict with Disproved _ -> true | _ -> false);
    unknown =
      count (fun k -> match k.kv_verdict with Unknown _ -> true | _ -> false) }

let check_program ?(opts = Codegen.Options.default) prog =
  let prog =
    if Codegen.Inline.needs_expansion prog then Codegen.Inline.expand prog
    else prog
  in
  let tenv = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate ~opts tenv prog in
  check_tprog tp

(* ------------------------------ printing ----------------------------- *)

let pp_kernel ppf { kv_name; kv_verdict } =
  match kv_verdict with
  | Proved c ->
      Fmt.pf ppf "[PROVED]    %s" kv_name;
      List.iter
        (fun (obj, form) -> Fmt.pf ppf "@,    %s \xe2\x89\xa1 %s" obj form)
        c.c_objects;
      List.iter (fun h -> Fmt.pf ppf "@,    assuming %s" h) c.c_hypotheses;
      List.iter (fun n -> Fmt.pf ppf "@,    note: %s" n) c.c_notes
  | Disproved r ->
      Fmt.pf ppf "[DISPROVED] %s \xe2\x80\x94 %s" kv_name r.r_object;
      Fmt.pf ppf "@,    device:     %s" r.r_device;
      Fmt.pf ppf "@,    sequential: %s" r.r_sequential;
      (match r.r_index with
      | Some i -> Fmt.pf ppf "@,    witness iteration: %d" i
      | None -> ());
      Fmt.pf ppf "@,    %s" r.r_witness
  | Unknown why ->
      Fmt.pf ppf "[UNKNOWN]   %s \xe2\x80\x94 %s (numeric fallback)" kv_name
        why

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter (fun k -> Fmt.pf ppf "%a@," pp_kernel k) t.kernels;
  Fmt.pf ppf "%d kernel%s: %d proved, %d disproved, %d unknown@]"
    (List.length t.kernels)
    (if List.length t.kernels = 1 then "" else "s")
    t.proved t.disproved t.unknown
