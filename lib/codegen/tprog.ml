(** Translated-program IR: the output of the OpenARC translation pass.

    A translated program mirrors the host control flow of the input Mini-C
    program, with compute regions outlined into {!kernel}s and OpenACC data
    semantics lowered to explicit device operations: allocation, transfers,
    launches, waits, and (when instrumentation is enabled) coherence runtime
    checks. *)

open Minic
open Analysis

type device = Cpu | Gpu

let device_name = function Cpu -> "CPU" | Gpu -> "GPU"

(** Coherence status of one buffer on one device (§III-B). *)
type status = Not_stale | May_stale | Stale

let status_name = function
  | Not_stale -> "notstale"
  | May_stale -> "maystale"
  | Stale -> "stale"

type xdir = H2D | D2H

(** A static program point that performs a device operation; reports refer to
    sites so the user can trace a message back to the input directive. *)
type site = {
  site_id : int;
  site_label : string;
  site_sid : int;  (** [sid] of the originating source statement *)
  site_loc : Loc.t;
}

type xfer = {
  x_var : string;
  x_dir : xdir;
  x_lo : Ast.expr option;  (** subarray lower bound, whole array if absent *)
  x_len : Ast.expr option;
  x_async : Ast.expr option;
  x_site : site;
}

type check =
  | Check_read of string * device
  | Check_write of string * device
  | Reset_status of string * device * status

(** How an unsynchronized shared scalar misbehaves in the simulated GPU
    (see DESIGN.md): an [Active] race corrupts kernel outputs (each thread
    reads the kernel-entry value); a [Latent] race is hidden by backend
    register promotion and never alters outputs. *)
type raced_kind = Race_active | Race_latent

(** How a scalar of the kernel body is realized on the device. *)
type scalar_class =
  | Sc_private  (** fresh per thread, committed from the last iteration *)
  | Sc_firstprivate
  | Sc_reduction of Ast.redop
  | Sc_raced of raced_kind

type kloop = {
  kl_var : string;
  kl_init : Ast.expr;
  kl_cond : Ast.expr;
  kl_step : Ast.stmt option;
  kl_body : Ast.block;
}

type kernel = {
  k_id : int;
  k_name : string;
  k_sid : int;  (** source compute-directive statement *)
  k_loc : Loc.t;
  k_loop : kloop option;  (** [None]: straight-line body run by one thread *)
  k_body : Ast.block;  (** the region statements (equals [kl_body] if looped) *)
  k_source : Ast.stmt;
      (** the original source statement the kernel was outlined from; kernel
          verification executes it as the sequential reference *)
  k_scalars : (string * scalar_class) list;
  k_arrays_read : Varset.t;  (** resolved array roots *)
  k_arrays_written : Varset.t;
  k_params : Varset.t;  (** read-only scalars passed by value *)
  k_induction : Varset.t;  (** loop induction variables (always private) *)
  k_ops_per_iter : int;
  k_async : Ast.expr option;
  k_dims : Ast.expr option * Ast.expr option * Ast.expr option;
      (** (num_gangs, num_workers, vector_length): requested launch
          dimensions; their product caps the simulator's parallel width *)
  k_has_private_data : bool;  (** Table II: "contains private data" *)
  k_has_reduction : bool;  (** Table II: "contains reduction" *)
  k_seq : bool;
}

type tstmt = {
  tid : int;
  tkind : tkind;
  tloc : Loc.t;
  tsid : int;  (** sid of the source statement this op was generated from *)
}

and tkind =
  | Thost of Ast.stmt  (** plain host statement (no OpenACC inside) *)
  | Tif of Ast.expr * tstmt list * tstmt list
  | Twhile of Ast.expr * tstmt list
  | Tfor of Ast.stmt option * Ast.expr option * Ast.stmt option * tstmt list
  | Tblock of tstmt list
  | Talloc of string * site
  | Tfree of string * site
  | Txfer of xfer
  | Tlaunch of int * Ast.expr option  (** kernel id, async queue *)
  | Twait of Ast.expr option
  | Tcheck of check

type t = {
  source : Ast.program;
  env : Typecheck.env;
  alias : Alias.t;
  kernels : kernel array;
  body : tstmt list;  (** translated body of [main] *)
  tracked : Varset.t;  (** arrays under coherence tracking *)
}

(** {1 Construction helpers} *)

let tid_counter = ref 0
let site_counter = ref 0

let mk ?(loc = Loc.dummy) ?(sid = -1) tkind =
  incr tid_counter;
  { tid = !tid_counter; tkind; tloc = loc; tsid = sid }

let mk_site ?(loc = Loc.dummy) ?(sid = -1) label =
  incr site_counter;
  { site_id = !site_counter; site_label = label; site_sid = sid;
    site_loc = loc }

let kernel t id = t.kernels.(id)

let find_kernel t name =
  let found = ref None in
  Array.iter (fun k -> if k.k_name = name then found := Some k) t.kernels;
  !found

(** Scalars of [k] in class [Sc_raced]. *)
let raced_scalars k =
  List.filter_map
    (function (v, Sc_raced kind) -> Some (v, kind) | _ -> None)
    k.k_scalars

let reduction_scalars k =
  List.filter_map
    (function (v, Sc_reduction op) -> Some (v, op) | _ -> None)
    k.k_scalars

(** All arrays a kernel touches. *)
let kernel_arrays k = Varset.union k.k_arrays_read k.k_arrays_written

(** {1 Kernel-body normalization hooks}

    Static analyses over kernel bodies (the race linter, the symbolic
    equivalence tier) need the iteration space of a kernel loop in a
    normalized form rather than the raw header statements. *)

(* Is [st] the canonical unit-step increment [v = v + 1] of [var]? *)
let unit_step var st =
  match st.Ast.skind with
  | Ast.Sassign (Ast.Lvar v, Ast.Ebinop (Ast.Add, Ast.Evar v', Ast.Eint 1))
  | Ast.Sassign (Ast.Lvar v, Ast.Ebinop (Ast.Add, Ast.Eint 1, Ast.Evar v'))
    ->
      v = var && v' = var
  | _ -> false

(** Normalized bounds of a unit-stride kernel loop: [Some (lo, hi)] with
    [hi] exclusive when the header has the shape [for (v = lo; v < hi;
    v++)] (or [<=], folded into an exclusive bound).  [None] when the
    header is outside this shape — callers must fall back to dynamic
    reasoning. *)
let loop_bounds (l : kloop) =
  let stepped =
    match l.kl_step with Some st -> unit_step l.kl_var st | None -> false
  in
  if not stepped then None
  else
    match l.kl_cond with
    | Ast.Ebinop (Ast.Lt, Ast.Evar v, hi) when v = l.kl_var ->
        Some (l.kl_init, hi)
    | Ast.Ebinop (Ast.Le, Ast.Evar v, hi) when v = l.kl_var ->
        Some (l.kl_init, Ast.Ebinop (Ast.Add, hi, Ast.Eint 1))
    | _ -> None

(** Same normalization for an inner sequential [for] of a kernel body:
    [Some (var, lo, hi)] when the statement is [for (var = lo; var < hi;
    var++)] (declaration or assignment initializer, [<]/[<=] bound, unit
    step). *)
let for_bounds init cond step =
  let var_lo =
    match init with
    | Some { Ast.skind = Ast.Sdecl (_, v, Some lo); _ } -> Some (v, lo)
    | Some { Ast.skind = Ast.Sassign (Ast.Lvar v, lo); _ } -> Some (v, lo)
    | _ -> None
  in
  match var_lo with
  | None -> None
  | Some (v, lo) -> (
      let stepped =
        match step with Some st -> unit_step v st | None -> false
      in
      if not stepped then None
      else
        match cond with
        | Some (Ast.Ebinop (Ast.Lt, Ast.Evar v', hi)) when v' = v ->
            Some (v, lo, hi)
        | Some (Ast.Ebinop (Ast.Le, Ast.Evar v', hi)) when v' = v ->
            Some (v, lo, Ast.Ebinop (Ast.Add, hi, Ast.Eint 1))
        | _ -> None)

(** {1 Traversal} *)

let rec iter_tstmts f stmts = List.iter (iter_tstmt f) stmts

and iter_tstmt f s =
  f s;
  match s.tkind with
  | Thost _ | Talloc _ | Tfree _ | Txfer _ | Tlaunch _ | Twait _ | Tcheck _ ->
      ()
  | Tif (_, b1, b2) -> iter_tstmts f b1; iter_tstmts f b2
  | Twhile (_, b) | Tblock b -> iter_tstmts f b
  | Tfor (_, _, _, b) -> iter_tstmts f b

let iter t f = iter_tstmts f t.body

(** Rebuild the body bottom-up, [f] maps each statement (children already
    rewritten) to a replacement list. *)
let rec expand_tstmts f stmts = List.concat_map (expand_tstmt f) stmts

and expand_tstmt f s =
  let tkind =
    match s.tkind with
    | (Thost _ | Talloc _ | Tfree _ | Txfer _ | Tlaunch _ | Twait _
      | Tcheck _) as k -> k
    | Tif (c, b1, b2) -> Tif (c, expand_tstmts f b1, expand_tstmts f b2)
    | Twhile (c, b) -> Twhile (c, expand_tstmts f b)
    | Tfor (i, c, st, b) -> Tfor (i, c, st, expand_tstmts f b)
    | Tblock b -> Tblock (expand_tstmts f b)
  in
  f { s with tkind }

let count_checks t =
  let n = ref 0 in
  iter t (fun s -> match s.tkind with Tcheck _ -> incr n | _ -> ());
  !n

let xfer_sites t =
  let acc = ref [] in
  iter t (fun s ->
      match s.tkind with Txfer x -> acc := x.x_site :: !acc | _ -> ());
  List.rev !acc
