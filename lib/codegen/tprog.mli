(** Translated-program IR: the output of the OpenARC translation pass.

    A translated program mirrors the host control flow of the input Mini-C
    program, with compute regions outlined into {!kernel}s and OpenACC data
    semantics lowered to explicit device operations: allocation, transfers,
    launches, waits, and (when instrumentation is enabled) coherence runtime
    checks. *)

open Minic
open Analysis

type device = Cpu | Gpu

val device_name : device -> string

(** Coherence status of one buffer on one device (§III-B). *)
type status = Not_stale | May_stale | Stale

val status_name : status -> string

type xdir = H2D | D2H

(** A static program point performing a device operation; reports refer to
    sites so the user can trace a message back to the input directive. *)
type site = {
  site_id : int;
  site_label : string;  (** e.g. ["update0.host(b)"] *)
  site_sid : int;  (** [sid] of the originating source statement *)
  site_loc : Loc.t;
}

type xfer = {
  x_var : string;
  x_dir : xdir;
  x_lo : Ast.expr option;  (** subarray lower bound, whole array if absent *)
  x_len : Ast.expr option;
  x_async : Ast.expr option;
  x_site : site;
}

type check =
  | Check_read of string * device
  | Check_write of string * device
  | Reset_status of string * device * status

(** How an unsynchronized shared scalar misbehaves in the simulated GPU:
    an [Active] race corrupts kernel outputs (each thread reads the
    kernel-entry value); a [Latent] race is hidden by backend register
    promotion and never alters outputs (§IV-B). *)
type raced_kind = Race_active | Race_latent

(** How a scalar of the kernel body is realized on the device. *)
type scalar_class =
  | Sc_private  (** fresh per thread, committed from the last iteration *)
  | Sc_firstprivate
  | Sc_reduction of Ast.redop
  | Sc_raced of raced_kind

type kloop = {
  kl_var : string;
  kl_init : Ast.expr;
  kl_cond : Ast.expr;
  kl_step : Ast.stmt option;
  kl_body : Ast.block;
}

type kernel = {
  k_id : int;
  k_name : string;  (** [<function>_kernel<N>], as OpenARC names them *)
  k_sid : int;  (** source compute-directive statement *)
  k_loc : Loc.t;
  k_loop : kloop option;  (** [None]: straight-line body run by one thread *)
  k_body : Ast.block;
  k_source : Ast.stmt;
      (** the original source statement; kernel verification executes it as
          the sequential reference *)
  k_scalars : (string * scalar_class) list;
  k_arrays_read : Varset.t;  (** resolved array roots *)
  k_arrays_written : Varset.t;
  k_params : Varset.t;  (** read-only scalars passed by value *)
  k_induction : Varset.t;  (** loop induction variables (always private) *)
  k_ops_per_iter : int;
  k_async : Ast.expr option;
  k_dims : Ast.expr option * Ast.expr option * Ast.expr option;
      (** (num_gangs, num_workers, vector_length) *)
  k_has_private_data : bool;  (** Table II: "contains private data" *)
  k_has_reduction : bool;  (** Table II: "contains reduction" *)
  k_seq : bool;
}

type tstmt = {
  tid : int;
  tkind : tkind;
  tloc : Loc.t;
  tsid : int;  (** sid of the source statement this op was generated from *)
}

and tkind =
  | Thost of Ast.stmt  (** plain host statement (no OpenACC inside) *)
  | Tif of Ast.expr * tstmt list * tstmt list
  | Twhile of Ast.expr * tstmt list
  | Tfor of Ast.stmt option * Ast.expr option * Ast.stmt option * tstmt list
  | Tblock of tstmt list
  | Talloc of string * site
  | Tfree of string * site
  | Txfer of xfer
  | Tlaunch of int * Ast.expr option  (** kernel id, async queue *)
  | Twait of Ast.expr option
  | Tcheck of check

type t = {
  source : Ast.program;
  env : Typecheck.env;
  alias : Alias.t;
  kernels : kernel array;
  body : tstmt list;  (** translated body of [main] *)
  tracked : Varset.t;  (** arrays under coherence tracking *)
}

(** {1 Construction} *)

val mk : ?loc:Loc.t -> ?sid:int -> tkind -> tstmt
val mk_site : ?loc:Loc.t -> ?sid:int -> string -> site

(** {1 Access} *)

val kernel : t -> int -> kernel
val find_kernel : t -> string -> kernel option
val raced_scalars : kernel -> (string * raced_kind) list
val reduction_scalars : kernel -> (string * Ast.redop) list

(** All arrays a kernel touches. *)
val kernel_arrays : kernel -> Varset.t

(** {1 Kernel-body normalization hooks} *)

(** Normalized bounds of a unit-stride kernel loop: [Some (lo, hi)] with
    [hi] exclusive when the header has the shape [for (v = lo; v < hi;
    v++)] (or [<=], folded into an exclusive bound). *)
val loop_bounds : kloop -> (Ast.expr * Ast.expr) option

(** Same normalization for an inner sequential [for] of a kernel body:
    [Some (var, lo, hi)] when the statement is [for (var = lo; var < hi;
    var++)] ([<=] folded into an exclusive bound, unit step). *)
val for_bounds :
  Ast.stmt option -> Ast.expr option -> Ast.stmt option ->
  (string * Ast.expr * Ast.expr) option

(** {1 Traversal} *)

val iter_tstmts : (tstmt -> unit) -> tstmt list -> unit
val iter_tstmt : (tstmt -> unit) -> tstmt -> unit
val iter : t -> (tstmt -> unit) -> unit

(** Rebuild the body bottom-up; [f] maps each statement (children already
    rewritten) to a replacement list. *)
val expand_tstmts : (tstmt -> tstmt list) -> tstmt list -> tstmt list

val expand_tstmt : (tstmt -> tstmt list) -> tstmt -> tstmt list
val count_checks : t -> int
val xfer_sites : t -> site list
