(** Shard-level cost attribution for sharded kernel launches, and a
    schedule analyzer that re-costs the recorded iteration-space weights
    under the alternative block/cyclic split.

    Plain data only — the module knows nothing about [Gpusim]; the
    runtime records measured weights and charged durations here, and
    {!analyze} answers "would the other schedule beat this one?" from
    those records alone (noise-free, deterministic). *)

type shard = {
  sh_part : int;  (** shard index within the launch *)
  sh_dev : int;  (** member ordinal that finally executed it *)
  sh_iters : int;  (** iterations it owned *)
  sh_ops : int;  (** measured interpreted operations of those iterations *)
  sh_time : float;  (** charged duration (priced without jitter) *)
  sh_failover : bool;  (** executed by a survivor after device loss *)
}

type launch = {
  l_kernel : string;
  l_loc : string;
  l_parts : int;
  l_total : int;  (** iteration-space size *)
  l_weights : int array;  (** measured ops per iteration ordinal *)
  l_unit : float;  (** seconds per measured operation (work-conserving) *)
  l_overhead : float;  (** fixed per-launch cost (launch latency) *)
  l_shards : shard array;  (** indexed by shard/part *)
  l_barrier : float;  (** host idle charged at the completion barrier *)
  l_wall : float;  (** slowest member's busy time this launch *)
  l_merge : float;  (** modeled reduction-merge cost *)
  l_merge_bytes : int;
}

type t = {
  i_devices : int;
  i_schedule : string;  (** "block" | "cyclic" — the split actually run *)
  mutable launches_rev : launch list;
  mutable gather_time : float;  (** modeled D2H gather cost *)
  mutable gather_bytes : int;
}

val create : devices:int -> schedule:string -> t
val record : t -> launch -> unit
val note_gather : t -> bytes:int -> time:float -> unit

(** Launches in record order. *)
val launches : t -> launch list

(** The device set's split arithmetic over plain ints: which shard owns
    iteration [i] of [total] under [schedule] ("cyclic" round-robins,
    anything else is contiguous block). *)
val owner : schedule:string -> parts:int -> total:int -> int -> int

(** The most loaded member's share of the measured work under
    [schedule] — the schedule-sensitive component of a launch's
    completion time (verdicts compare exactly this; the fixed launch
    overhead cannot be moved by a schedule change). *)
val predict_work : launch -> schedule:string -> float

(** Noise-free completion time of a launch re-costed under [schedule]:
    fixed overhead plus the most loaded member's share of the measured
    work. *)
val predict : launch -> schedule:string -> float

type report = {
  r_kernel : string;
  r_loc : string;
  r_launches : int;
  r_imbalance : float;  (** max/mean shard cost, launch-summed *)
  r_idle : float;  (** total idle-at-barrier *)
  r_merge : float;  (** total modeled merge cost *)
  r_merge_share : float;  (** merge / (wall + merge) *)
  r_wall : float;  (** total slowest-member busy time *)
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;  (** exact percentiles over shard durations *)
  r_failovers : int;
  r_pred_block : float;
  r_pred_cyclic : float;  (** re-costed totals under each schedule *)
  r_recommended : string;
  r_verdict : string;  (** ["keep"] or ["switch"] *)
  r_gain : float;  (** predicted relative saving of the recommendation *)
}

type analysis = {
  a_devices : int;
  a_schedule : string;
  a_kernels : report list;  (** first-launch order *)
  a_gather_time : float;
  a_gather_bytes : int;
  a_pred_block : float;
  a_pred_cyclic : float;
  a_recommended : string;
  a_gain : float;  (** program-level relative saving vs the run schedule *)
}

val analyze : t -> analysis

val schema : string
val version : int

(** Canonical JSON (schema [openarc.obs.imbalance], version 1);
    deterministic byte-for-byte from the recorded launches. *)
val to_json : ?name:string -> ?seed:int -> analysis -> string

val pp : Format.formatter -> analysis -> unit
