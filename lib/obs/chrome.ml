(** Host-lane Chrome-trace events from an observability trace.

    Multi-device Chrome exports render one [tid] lane per device-set
    member plus a host lane ([tid 0]).  The device lanes come straight
    from each member's [Gpusim.Timeline]; this module renders the host
    lane from the trace's host-side spans — kernels, transfer sites,
    alloc/free, waits, coherence checks as complete ("X") events and
    recovery actions as thread-scoped instant ("i") marks — using the
    same byte conventions as the timeline exporter so both kinds of lane
    interleave in one JSON document. *)

(* Mirrors [Gpusim.Timeline]'s event formatting: microsecond timestamps
   with three decimals, pid 1. *)
let complete ~name ~cat ~ts ~dur ~tid =
  Fmt.str
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
     \"dur\": %.3f, \"pid\": 1, \"tid\": %d}"
    (Trace.json_escape name) (Trace.json_escape cat) (ts *. 1e6)
    (dur *. 1e6) tid

let instant ~name ~cat ~ts ~tid =
  Fmt.str
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, \
     \"s\": \"t\", \"pid\": 1, \"tid\": %d}"
    (Trace.json_escape name) (Trace.json_escape cat) (ts *. 1e6) tid

let counter ~name ~ts ~tid ~value =
  Fmt.str
    "{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, \"tid\": \
     %d, \"args\": {\"bytes\": %d}}"
    (Trace.json_escape name) (ts *. 1e6) tid value

(* Host-lane span kinds: simulated-time work the host clock sees.
   Session/Phase/Region spans are structural (they would span the whole
   lane), Device leafs belong to the device lanes. *)
let host_kind = function
  | Trace.Kernel | Trace.Transfer | Trace.Alloc | Trace.Free | Trace.Wait
  | Trace.Check | Trace.Merge ->
      true
  | Trace.Session | Trace.Phase | Trace.Region | Trace.Recovery
  | Trace.Device ->
      false

let host_lane_events tr =
  List.filter_map
    (fun (sp : Trace.span) ->
      match sp.Trace.sp_end with
      | _ when sp.Trace.sp_dev <> None -> None
      | _ when sp.Trace.sp_kind = Trace.Recovery ->
          Some
            (instant ~name:sp.Trace.sp_name
               ~cat:(Trace.kind_name sp.Trace.sp_kind)
               ~ts:sp.Trace.sp_start ~tid:0)
      | Some finish when host_kind sp.Trace.sp_kind ->
          Some
            (complete ~name:sp.Trace.sp_name
               ~cat:(Trace.kind_name sp.Trace.sp_kind)
               ~ts:sp.Trace.sp_start
               ~dur:(finish -. sp.Trace.sp_start)
               ~tid:0)
      | _ -> None)
    (Trace.spans tr)
