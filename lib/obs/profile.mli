(** Per-directive cost attribution computed from a {!Trace} — the paper's
    Figure 3/4 stacked breakdown, plus a folded-stack flamegraph export.

    Totals are recomputed by replaying the trace's charge events in
    chronological order, i.e. the identical float-addition sequence the
    {!Gpusim.Metrics} accumulator performed, so [conserves] holds with
    bit-exact equality. *)

type row = {
  r_directive : string;
  r_kind : string;  (** span kind of the attributed span, or ["host"] *)
  r_loc : string;  (** source location, or [""] *)
  r_cats : (string * float) list;  (** per-category seconds, canonical order *)
  r_total : float;
}

type t = {
  p_categories : string list;  (** canonical category order *)
  p_rows : row list;  (** first-charge order *)
  p_totals : (string * float) list;  (** per-category grand totals *)
  p_total : float;  (** folds [p_totals] in canonical order *)
  p_devices : (int * row list) list;
      (** per-device-ordinal tables from device-tagged charges, ordinal
          ascending; empty on single-device runs.  The grand totals
          replay only host-clock charges (untagged ones plus the
          primary's, ordinal 0), so [conserves] keeps holding against
          the primary accumulator on multi-device runs *)
  p_counters : (string * int) list;
}

(** [of_trace ~categories tr] folds the charge events of [tr] into
    per-directive rows.  [categories] fixes the canonical category order
    (use [Gpusim.Metrics.all_categories] names). *)
val of_trace : categories:string list -> Trace.t -> t

(** [conserves p ~total] — bit-exact equality of the replayed grand total
    against the accumulator's total ([Gpusim.Metrics.total_time]). *)
val conserves : t -> total:float -> bool

(** Text table: one line per directive, zero-total categories elided. *)
val pp : Format.formatter -> t -> unit

(** Canonical deterministic JSON document — byte-comparable across runs
    with the same seed. *)
val to_json : name:string -> seed:int -> t -> string

(** Folded-stack flamegraph lines ([name;...;category nanoseconds]),
    sorted; feed to flamegraph.pl or speedscope. *)
val folded : Trace.t -> string
