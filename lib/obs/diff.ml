(** Differential profiling over {!Profile} values.  Deltas are plain
    float subtraction, so identical profiles diff to exactly zero (float
    [=]) — tolerance policy is the caller's business. *)

type verdict = Improved | Regressed | Appeared | Vanished | Unchanged

let verdict_name = function
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Appeared -> "appeared"
  | Vanished -> "vanished"
  | Unchanged -> "unchanged"

type cat_delta = {
  cd_cat : string;
  cd_before : float;
  cd_after : float;
  cd_delta : float;
}

type row_delta = {
  rd_directive : string;
  rd_kind : string;
  rd_loc : string;
  rd_verdict : verdict;
  rd_before : float;
  rd_after : float;
  rd_delta : float;
  rd_cats : cat_delta list;
}

type t = {
  d_before_name : string;
  d_after_name : string;
  d_categories : string list;
  d_rows : row_delta list;
  d_totals : cat_delta list;
  d_total_before : float;
  d_total_after : float;
  d_delta : float;
  d_counters : (string * int * int) list;
}

(* Union preserving the first list's order, then the second's novelties. *)
let union_keys a b =
  a @ List.filter (fun k -> not (List.mem k a)) b

let assoc0 k l = Option.value ~default:0.0 (List.assoc_opt k l)

let cat_deltas categories before_cats after_cats =
  List.map
    (fun c ->
      let b = assoc0 c before_cats and a = assoc0 c after_cats in
      { cd_cat = c; cd_before = b; cd_after = a; cd_delta = a -. b })
    categories

let diff ?(before_name = "before") ?(after_name = "after") ~before ~after () =
  let categories =
    union_keys before.Profile.p_categories after.Profile.p_categories
  in
  let row_of p d =
    List.find_opt (fun r -> r.Profile.r_directive = d) p.Profile.p_rows
  in
  let directives =
    union_keys
      (List.map (fun r -> r.Profile.r_directive) before.Profile.p_rows)
      (List.map (fun r -> r.Profile.r_directive) after.Profile.p_rows)
  in
  let rows =
    List.map
      (fun d ->
        let rb = row_of before d and ra = row_of after d in
        let kind, loc =
          match (ra, rb) with
          | Some r, _ | None, Some r -> (r.Profile.r_kind, r.Profile.r_loc)
          | None, None -> ("host", "")
        in
        let tb =
          match rb with Some r -> r.Profile.r_total | None -> 0.0
        in
        let ta =
          match ra with Some r -> r.Profile.r_total | None -> 0.0
        in
        let verdict =
          match (rb, ra) with
          | None, _ -> Appeared
          | _, None -> Vanished
          | Some _, Some _ ->
              let dt = ta -. tb in
              if dt = 0.0 then Unchanged
              else if dt > 0.0 then Regressed
              else Improved
        in
        { rd_directive = d; rd_kind = kind; rd_loc = loc;
          rd_verdict = verdict; rd_before = tb; rd_after = ta;
          rd_delta = ta -. tb;
          rd_cats =
            cat_deltas categories
              (match rb with Some r -> r.Profile.r_cats | None -> [])
              (match ra with Some r -> r.Profile.r_cats | None -> []) })
      directives
  in
  let counters =
    let names =
      union_keys
        (List.map fst before.Profile.p_counters)
        (List.map fst after.Profile.p_counters)
    in
    List.map
      (fun n ->
        ( n,
          Option.value ~default:0
            (List.assoc_opt n before.Profile.p_counters),
          Option.value ~default:0
            (List.assoc_opt n after.Profile.p_counters) ))
      names
  in
  { d_before_name = before_name;
    d_after_name = after_name;
    d_categories = categories;
    d_rows = rows;
    d_totals =
      cat_deltas categories before.Profile.p_totals after.Profile.p_totals;
    d_total_before = before.Profile.p_total;
    d_total_after = after.Profile.p_total;
    d_delta = after.Profile.p_total -. before.Profile.p_total;
    d_counters = counters }

let is_zero d =
  d.d_delta = 0.0
  && List.for_all (fun c -> c.cd_delta = 0.0) d.d_totals
  && List.for_all
       (fun r ->
         r.rd_verdict = Unchanged
         && List.for_all (fun c -> c.cd_delta = 0.0) r.rd_cats)
       d.d_rows
  && List.for_all (fun (_, b, a) -> b = a) d.d_counters

let dominant_cat r =
  List.fold_left
    (fun acc c ->
      match acc with
      | Some best when Float.abs best.cd_delta >= Float.abs c.cd_delta -> acc
      | _ -> if c.cd_delta = 0.0 then acc else Some c)
    None r.rd_cats
  |> Option.map (fun c -> c.cd_cat)

let movers d =
  List.filter
    (fun r ->
      r.rd_delta <> 0.0
      || List.exists (fun c -> c.cd_delta <> 0.0) r.rd_cats
      || r.rd_verdict = Appeared || r.rd_verdict = Vanished)
    d.d_rows
  |> List.stable_sort
       (fun a b -> Float.compare (Float.abs b.rd_delta) (Float.abs a.rd_delta))

(* ------------------------------ text ------------------------------ *)

let pct ~base delta = 100.0 *. delta /. Float.max (Float.abs base) 1e-12

let pp ppf d =
  Fmt.pf ppf "profile diff: %s -> %s@." d.d_before_name d.d_after_name;
  Fmt.pf ppf "total: %.9f s -> %.9f s  (delta %+.9f s, %+.2f%%)@."
    d.d_total_before d.d_total_after d.d_delta
    (pct ~base:d.d_total_before d.d_delta);
  if is_zero d then Fmt.pf ppf "all-zero delta: the profiles are identical@."
  else begin
    Fmt.pf ppf "category totals:@.";
    List.iter
      (fun c ->
        if c.cd_before <> 0.0 || c.cd_after <> 0.0 then
          Fmt.pf ppf "  %-16s %12.9f -> %12.9f  %+.9f@." c.cd_cat
            c.cd_before c.cd_after c.cd_delta)
      d.d_totals;
    let ms = movers d in
    if ms <> [] then begin
      Fmt.pf ppf "directives (largest shift first):@.";
      List.iter
        (fun r ->
          Fmt.pf ppf "  [%-9s] %-34s %12.9f -> %12.9f  %+.9f%s@."
            (verdict_name r.rd_verdict)
            r.rd_directive r.rd_before r.rd_after r.rd_delta
            (match dominant_cat r with
            | Some c -> "  (" ^ c ^ ")"
            | None -> ""))
        ms
    end;
    let changed = List.filter (fun (_, b, a) -> b <> a) d.d_counters in
    if changed <> [] then begin
      Fmt.pf ppf "counters:@.";
      List.iter
        (fun (n, b, a) -> Fmt.pf ppf "  %-16s %d -> %d  (%+d)@." n b a (a - b))
        changed
    end
  end

(* ------------------------------ JSON ------------------------------ *)

let cat_json c =
  Fmt.str
    "{\"category\": %s, \"before\": %.9f, \"after\": %.9f, \"delta\": %.9f}"
    (Trace.json_str c.cd_cat) c.cd_before c.cd_after c.cd_delta

let row_json r =
  Fmt.str
    "{\"directive\": %s, \"kind\": %s, \"loc\": %s, \"verdict\": %s, \
     \"before\": %.9f, \"after\": %.9f, \"delta\": %.9f, \"categories\": \
     [%s]}"
    (Trace.json_str r.rd_directive)
    (Trace.json_str r.rd_kind) (Trace.json_str r.rd_loc)
    (Trace.json_str (verdict_name r.rd_verdict))
    r.rd_before r.rd_after r.rd_delta
    (String.concat ", " (List.map cat_json r.rd_cats))

let to_json d =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Fmt.str "  \"schema\": %s,\n  \"version\": %d,\n"
       (Trace.json_str (Trace.schema ^ ".profile-diff"))
       Trace.version);
  Buffer.add_string b
    (Fmt.str "  \"before\": %s,\n  \"after\": %s,\n"
       (Trace.json_str d.d_before_name)
       (Trace.json_str d.d_after_name));
  Buffer.add_string b
    (Fmt.str
       "  \"total_before\": %.9f,\n  \"total_after\": %.9f,\n  \"delta\": \
        %.9f,\n  \"zero\": %b,\n"
       d.d_total_before d.d_total_after d.d_delta (is_zero d));
  Buffer.add_string b "  \"totals\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b "    ";
      Buffer.add_string b (cat_json c);
      if i < List.length d.d_totals - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    d.d_totals;
  Buffer.add_string b "  ],\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b "    ";
      Buffer.add_string b (row_json r);
      if i < List.length d.d_rows - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    d.d_rows;
  Buffer.add_string b "  ],\n  \"counters\": [\n";
  List.iteri
    (fun i (n, bv, av) ->
      Buffer.add_string b
        (Fmt.str "    {\"name\": %s, \"before\": %d, \"after\": %d}"
           (Trace.json_str n) bv av);
      if i < List.length d.d_counters - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    d.d_counters;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* ---------------------- canonical-JSON loader ---------------------- *)

let profile_of_value v =
  (
      try
        let get k =
          match Pjson.member k v with
          | Some x -> x
          | None -> raise (Pjson.Bad ("missing field " ^ k))
        in
        (match Pjson.str (get "schema") with
        | Some sc when sc = Trace.schema ^ ".profile" -> ()
        | Some sc -> raise (Pjson.Bad ("unexpected schema " ^ sc))
        | None -> raise (Pjson.Bad "schema is not a string"));
        let name = Pjson.str_exn (get "name") in
        let seed = int_of_float (Pjson.num_exn (get "seed")) in
        let obj_members k =
          match get k with
          | Pjson.Obj kvs -> kvs
          | _ -> raise (Pjson.Bad (k ^ " is not an object"))
        in
        let totals =
          List.map (fun (k, x) -> (k, Pjson.num_exn x)) (obj_members "totals")
        in
        let categories = List.map fst totals in
        let rows =
          List.map
            (fun rv ->
              let m k =
                match Pjson.member k rv with
                | Some x -> x
                | None -> raise (Pjson.Bad ("row missing " ^ k))
              in
              let cats =
                match m "categories" with
                | Pjson.Obj kvs ->
                    List.map (fun (k, x) -> (k, Pjson.num_exn x)) kvs
                | _ -> raise (Pjson.Bad "row categories is not an object")
              in
              { Profile.r_directive = Pjson.str_exn (m "directive");
                r_kind = Pjson.str_exn (m "kind");
                r_loc = Pjson.str_exn (m "loc");
                r_cats = cats;
                r_total = Pjson.num_exn (m "total") })
            (Pjson.arr_exn (get "rows"))
        in
        let counters =
          List.map
            (fun (k, x) -> (k, int_of_float (Pjson.num_exn x)))
            (obj_members "counters")
        in
        Ok
          ( { Profile.p_categories = categories;
              p_rows = rows;
              p_totals = totals;
              p_total = Pjson.num_exn (get "total");
              (* Diffs compare host-clock attribution; a multi-device
                 document's per-device tables are not re-parsed. *)
              p_devices = [];
              p_counters = counters },
            name,
            seed )
      with Pjson.Bad m -> Error m)

let profile_of_json s =
  match Pjson.parse_result s with
  | Error e -> Error e
  | Ok v -> profile_of_value v
