(** Deterministic streaming statistics over simulated durations.

    Two tools, both free of wall-clock input so every result is a pure
    function of the recorded samples:

    - a sparse power-of-two histogram: each sample lands in the bucket
      [[2^(e-1), 2^e)] given by its binary exponent, so merge is a plain
      per-bucket count addition (associative and commutative) and the
      memory footprint is bounded by the dynamic range, not the sample
      count;
    - exact nearest-rank percentiles over a concrete sample array, for
      the small populations (shard durations of one run) where exactness
      is affordable and reproducible. *)

type t = {
  mutable n : int;
  mutable sum : float;
  buckets : (int, int) Hashtbl.t;  (** binary exponent -> sample count *)
}

let create () = { n = 0; sum = 0.0; buckets = Hashtbl.create 8 }

(* Bucket index of a sample: the binary exponent [e] with
   [2^(e-1) <= x < 2^e] for positive [x]; non-positive samples (a shard
   that never ran) share the sentinel bucket [min_int]. *)
let bucket_of x = if x > 0.0 then snd (Float.frexp x) else min_int

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let b = bucket_of x in
  Hashtbl.replace t.buckets b
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.buckets b))

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let merge a b =
  let m = create () in
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  let fold src =
    Hashtbl.iter
      (fun k v ->
        Hashtbl.replace m.buckets k
          (v + Option.value ~default:0 (Hashtbl.find_opt m.buckets k)))
      src.buckets
  in
  fold a;
  fold b;
  m

let buckets t =
  Hashtbl.fold (fun e c acc -> (e, c) :: acc) t.buckets []
  |> List.filter (fun (_, c) -> c > 0)
  |> List.sort compare
  |> List.map (fun (e, c) ->
         if e = min_int then (0.0, 0.0, c)
         else (Float.ldexp 1.0 (e - 1), Float.ldexp 1.0 e, c))

(* Nearest-rank percentile (exact, inclusive): the ceil(q*n)-th smallest
   sample.  q clamps to [0,1]; the empty population has no percentile. *)
let percentile samples q =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))
  end

let pp ppf t =
  Fmt.pf ppf "%d sample(s), mean %.9f" t.n (mean t);
  List.iter
    (fun (lo, hi, c) -> Fmt.pf ppf "@.  [%.3e, %.3e): %d" lo hi c)
    (buckets t)
