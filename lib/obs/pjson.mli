(** Minimal strict JSON parser for reading back the canonical documents the
    sibling exporters emit ({!Profile.to_json}, the bench baselines).  The
    repo deliberately carries no JSON dependency; this recursive-descent
    parser accepts exactly the subset those exporters produce (plus
    standard escapes) and rejects everything else. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in document order *)

exception Bad of string

(** @raise Bad on malformed input (message includes the byte offset). *)
val parse : string -> t

(** [parse_result s] is [parse s] with the error as a [result]. *)
val parse_result : string -> (t, string) result

(** Object member lookup; [None] on non-objects too. *)
val member : string -> t -> t option

val num : t -> float option
val str : t -> string option
val arr : t -> t list option

val num_exn : t -> float
val str_exn : t -> string
val arr_exn : t -> t list
