(* Strict recursive-descent JSON parser; accepts exactly what the
   exporters emit (objects, arrays, strings with standard escapes,
   numbers, literals) and nothing more. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Fmt.str "expected '%c'" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              String.iter
                (fun c ->
                  match c with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> fail "bad \\u escape")
                (String.sub s (!pos + 1) 4);
              pos := !pos + 4;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s = try Ok (parse s) with Bad msg -> Error msg

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None
let arr = function Arr l -> Some l | _ -> None

let num_exn = function Num f -> f | _ -> raise (Bad "expected a number")
let str_exn = function Str s -> s | _ -> raise (Bad "expected a string")
let arr_exn = function Arr l -> l | _ -> raise (Bad "expected an array")
