(** Per-array, per-direction data-movement ledger with typed cause
    attribution, live per-device allocation watermarks, and a
    counterfactual savings analyzer that re-costs the recorded movement
    under the gpusim transfer model for the saturator's candidate
    rewrites (hoist / copy→present / clause merge).

    Counted entries (the ones that passed through a device DMA engine)
    conserve bytes exactly against the {!Gpusim.Metrics}
    [bytes_h2d]/[bytes_d2h] accumulators summed over every device-set
    member.  The module is plain data — it knows nothing about
    [Gpusim]; cost-model constants are passed into {!analyze}. *)

type cause =
  | Copyin  (** data-clause H2D upload (broadcast members included) *)
  | Copyout  (** data-clause D2H download (single-device) *)
  | Rebroadcast  (** reduction-merge broadcast / peer input sync *)
  | Gather  (** rotating multi-device D2H result gather *)
  | Retry  (** fault-recovery re-transfer (transient retry or checksum) *)
  | Failover  (** post-fallback re-upload of host results *)
  | Demotion  (** device-fresh data restored to the host (mirror/ckpt) *)

val cause_name : cause -> string

type dir = H2d | D2h

val dir_name : dir -> string

type entry = {
  e_seq : int;  (** ledger order *)
  e_array : string;
  e_dir : dir;
  e_cause : cause;
  e_bytes : int;
  e_dev : int;  (** device ordinal whose DMA engine moved the bytes *)
  e_site : string;  (** source directive label, e.g. ["copyin(a)"] *)
  e_loc : string;
  e_exec : int;  (** transfer-site execution ordinal (1-based; 0 if none) *)
  e_span : int;  (** enclosing trace span id, [-1] outside any span *)
  e_time : float;  (** simulated start time *)
  e_duration : float;
  e_counted : bool;  (** passed through a DMA engine (metrics bytes) *)
  e_redundant : bool;  (** destination copy was already fresh *)
  e_hoistable : bool;
      (** repeats an earlier same-array transfer with no intervening
          host access justifying it (no host write since the previous
          upload / no host read since the previous download): a hoisted
          data region would eliminate it *)
}

type lifetime = {
  lt_array : string;
  lt_dev : int;
  lt_bytes : int;
  lt_alloc : float;
  mutable lt_free : float option;  (** [None] while still allocated *)
}

type t

val create : devices:int -> schedule:string -> t

(** Record one transfer. [counted] marks movement that went through a
    device DMA engine (and so contributes to the conservation totals);
    modeled overlapped blits (reduction re-broadcast, mirror restores)
    pass [counted:false].  [hoist] marks a repeat transfer no host
    access required (see {!entry.e_hoistable}). *)
val xfer :
  t -> array:string -> dir:dir -> cause:cause -> bytes:int -> dev:int ->
  site:string -> loc:string -> exec:int -> span:int -> time:float ->
  duration:float -> counted:bool -> redundant:bool -> hoist:bool -> unit

(** Record one allocation event: [bytes] is the signed delta (positive
    alloc, negative free), [allocated] the device's live total after
    it.  Feeds the watermarks, the chrome counter samples, and the
    per-array lifetime intervals. *)
val mem :
  t -> array:string -> dev:int -> bytes:int -> allocated:int ->
  time:float -> unit

(** Entries in ledger order. *)
val entries : t -> entry list

(** Per-array × per-device allocation intervals, in open order. *)
val lifetimes : t -> lifetime list

(** Allocation samples [(dev, time, allocated-after)] in event order. *)
val samples : t -> (int * float * int) list

(** Counted [(h2d, d2h)] byte totals — must equal the metrics
    accumulators summed over every device-set member (integer [=]). *)
val totals : t -> int * int

type site_report = {
  s_site : string;  (** directive label *)
  s_loc : string;
  s_array : string;
  s_dir : dir;
  s_execs : int;  (** transfer-site executions *)
  s_transfers : int;  (** counted DMA transfers (broadcast members incl.) *)
  s_bytes : int;
  s_redundant : int;  (** transfers whose destination was already fresh *)
  s_hoistable : int;
      (** non-redundant repeats a hoisted data region would eliminate *)
  s_wasted_bytes : int;
  s_causes : (string * int) list;  (** bytes by cause, first-use order *)
  s_rewrite : string;  (** "hoist" | "present" | "merge" | "none" *)
  s_saved_s : float;  (** modeled DMA time of the dropped transfers *)
  s_verdict : string;  (** "apply" | "keep" *)
}

type analysis = {
  a_devices : int;
  a_schedule : string;
  a_h2d_bytes : int;  (** counted totals (= the metrics accumulators) *)
  a_d2h_bytes : int;
  a_uncounted_bytes : int;  (** modeled overlapped-DMA movement *)
  a_transfers : int;  (** counted DMA transfers *)
  a_transfer_s : float;  (** noise-free model cost of every counted one *)
  a_causes : (string * int) list;  (** bytes by cause, first-use order *)
  a_sites : site_report list;  (** first-execution order *)
  a_wasted_bytes : int;
  a_saved_s : float;  (** total over "apply" verdicts *)
  a_peaks : (int * int * int) list;  (** (dev, current, peak) bytes *)
  a_lifetimes : lifetime list;
}

(** Minimum share of the modeled transfer time a rewrite must save to
    earn an "apply" verdict (an immaterial rewrite keeps the clauses as
    written). *)
val materiality : float

(** Re-cost the recorded ledger under the noise-free transfer model
    [pcie_latency + bytes / pcie_bandwidth] and classify each transfer
    site's counterfactual rewrite. *)
val analyze : t -> pcie_latency:float -> pcie_bandwidth:float -> analysis

val schema : string
val version : int

(** Canonical JSON document ([schema openarc.obs.memtrace], byte-stable
    for a fixed seed). *)
val to_json : ?name:string -> ?seed:int -> analysis -> string

(** Largest per-device peak in the analysis. *)
val peak_bytes : analysis -> int

(** Chrome counter ("C") events — the live allocated-bytes lane of each
    member, on the member's device-lane tid (ordinal + 1). *)
val chrome_counter_events : t -> string list

val pp : Format.formatter -> analysis -> unit
