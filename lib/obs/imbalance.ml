(** Shard-level cost attribution and schedule analysis for sharded
    kernel launches.

    The multi-device runtime records, for every sharded launch, the
    measured per-iteration work (interpreted operations), the per-shard
    charged durations, the host idle time at the completion barrier and
    the modeled merge/gather overheads.  This module aggregates those
    records per kernel — imbalance factor (max/mean shard cost),
    idle-at-barrier time, merge/gather overhead share, exact shard-
    duration percentiles — and *re-costs* the recorded iteration-space
    weights under the alternative split to answer the scheduling
    question directly: would [cyclic] beat [block] here?

    The re-coster mirrors the runtime's work-conserving shard pricing: a
    launch's compute budget is the full-iteration-space kernel time, each
    member's shard costs its measured share of the interpreted work, and
    the launch completes when its most loaded member does.  Predictions
    are noise-free, so the verdict depends only on the recorded weights —
    the same inputs under both schedules.

    Everything here is plain data (ints, floats, strings): the module
    deliberately knows nothing about [Gpusim], it reimplements the
    block/cyclic owner arithmetic over recorded iteration weights. *)

type shard = {
  sh_part : int;  (** shard index within the launch *)
  sh_dev : int;  (** member ordinal that finally executed it *)
  sh_iters : int;  (** iterations it owned *)
  sh_ops : int;  (** measured interpreted operations of those iterations *)
  sh_time : float;  (** charged duration (priced without jitter) *)
  sh_failover : bool;  (** executed by a survivor after device loss *)
}

type launch = {
  l_kernel : string;
  l_loc : string;
  l_parts : int;
  l_total : int;  (** iteration-space size *)
  l_weights : int array;  (** measured ops per iteration ordinal *)
  l_unit : float;  (** seconds per measured operation (work-conserving) *)
  l_overhead : float;  (** fixed per-launch cost (launch latency) *)
  l_shards : shard array;  (** indexed by shard/part *)
  l_barrier : float;  (** host idle charged at the completion barrier *)
  l_wall : float;  (** slowest member's busy time this launch *)
  l_merge : float;  (** modeled reduction-merge cost *)
  l_merge_bytes : int;
}

type t = {
  i_devices : int;
  i_schedule : string;  (** "block" | "cyclic" — the split actually run *)
  mutable launches_rev : launch list;
  mutable gather_time : float;  (** modeled D2H gather cost *)
  mutable gather_bytes : int;
}

let create ~devices ~schedule =
  { i_devices = devices; i_schedule = schedule; launches_rev = [];
    gather_time = 0.0; gather_bytes = 0 }

let record t l = t.launches_rev <- l :: t.launches_rev

let note_gather t ~bytes ~time =
  t.gather_bytes <- t.gather_bytes + bytes;
  t.gather_time <- t.gather_time +. time

let launches t = List.rev t.launches_rev

(* The device set's split arithmetic, over plain ints. *)
let owner ~schedule ~parts ~total i =
  if parts <= 1 then 0
  else if schedule = "cyclic" then i mod parts
  else begin
    let chunk = (total + parts - 1) / parts in
    Int.min (i / chunk) (parts - 1)
  end

(* The most loaded member's share of the measured work under [schedule] —
   the schedule-sensitive part of a launch's completion time. *)
let predict_work l ~schedule =
  let parts = l.l_parts in
  let per = Array.make (Int.max 1 parts) 0 in
  Array.iteri
    (fun i w ->
      let p = owner ~schedule ~parts ~total:l.l_total i in
      per.(p) <- per.(p) + w)
    l.l_weights;
  let heaviest = Array.fold_left Int.max 0 per in
  l.l_unit *. float_of_int heaviest

(* Noise-free completion time of [l] under [schedule]: the launch ends
   when its most loaded member does. *)
let predict l ~schedule = l.l_overhead +. predict_work l ~schedule

(* ----------------------------- analysis ----------------------------- *)

type report = {
  r_kernel : string;
  r_loc : string;
  r_launches : int;
  r_imbalance : float;  (** max/mean shard cost, launch-summed *)
  r_idle : float;  (** total idle-at-barrier *)
  r_merge : float;  (** total modeled merge cost *)
  r_merge_share : float;  (** merge / (wall + merge) *)
  r_wall : float;  (** total slowest-member busy time *)
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;  (** exact percentiles over shard durations *)
  r_failovers : int;
  r_pred_block : float;
  r_pred_cyclic : float;  (** re-costed totals under each schedule *)
  r_recommended : string;
  r_verdict : string;  (** ["keep"] or ["switch"] *)
  r_gain : float;  (** predicted relative saving of the recommendation *)
}

type analysis = {
  a_devices : int;
  a_schedule : string;
  a_kernels : report list;  (** first-launch order *)
  a_gather_time : float;
  a_gather_bytes : int;
  a_pred_block : float;
  a_pred_cyclic : float;
  a_recommended : string;
  a_gain : float;  (** program-level relative saving vs the run schedule *)
}

(* A switch must be material: within half a percent of the
   schedule-sensitive work the current schedule is kept.  The launch
   overhead is schedule-invariant, so the verdict compares only the
   most-loaded member's work share under each split — the part a
   schedule change can actually move. *)
let materiality = 0.995

let other_schedule = function "cyclic" -> "block" | _ -> "cyclic"

let kernel_report t (kernel, loc) ls =
  let ls = Array.of_list ls in
  let sum f = Array.fold_left (fun acc l -> acc +. f l) 0.0 ls in
  let maxes =
    sum (fun l ->
        Array.fold_left (fun m s -> Float.max m s.sh_time) 0.0 l.l_shards)
  in
  let means =
    sum (fun l ->
        let n = Int.max 1 (Array.length l.l_shards) in
        Array.fold_left (fun a s -> a +. s.sh_time) 0.0 l.l_shards
        /. float_of_int n)
  in
  let wall = sum (fun l -> l.l_wall) in
  let merge = sum (fun l -> l.l_merge) in
  let durations =
    Array.concat
      (Array.to_list
         (Array.map (fun l -> Array.map (fun s -> s.sh_time) l.l_shards) ls))
  in
  let pred_block = sum (predict ~schedule:"block") in
  let pred_cyclic = sum (predict ~schedule:"cyclic") in
  let work_block = sum (predict_work ~schedule:"block") in
  let work_cyclic = sum (predict_work ~schedule:"cyclic") in
  let current =
    if t.i_schedule = "cyclic" then work_cyclic else work_block
  in
  let alt = if t.i_schedule = "cyclic" then work_block else work_cyclic in
  let switch = current > 0.0 && alt < materiality *. current in
  { r_kernel = kernel;
    r_loc = loc;
    r_launches = Array.length ls;
    r_imbalance = (if means > 0.0 then maxes /. means else 1.0);
    r_idle = sum (fun l -> l.l_barrier);
    r_merge = merge;
    r_merge_share =
      (if wall +. merge > 0.0 then merge /. (wall +. merge) else 0.0);
    r_wall = wall;
    r_p50 = Stats.percentile durations 0.50;
    r_p95 = Stats.percentile durations 0.95;
    r_p99 = Stats.percentile durations 0.99;
    r_failovers =
      Array.fold_left
        (fun acc l ->
          Array.fold_left
            (fun a s -> if s.sh_failover then a + 1 else a)
            acc l.l_shards)
        0 ls;
    r_pred_block = pred_block;
    r_pred_cyclic = pred_cyclic;
    r_recommended = (if switch then other_schedule t.i_schedule
                     else t.i_schedule);
    r_verdict = (if switch then "switch" else "keep");
    r_gain = (if switch then (current -. alt) /. current else 0.0) }

let analyze t =
  let order_rev = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let key = (l.l_kernel, l.l_loc) in
      (match Hashtbl.find_opt groups key with
      | Some ls -> Hashtbl.replace groups key (l :: ls)
      | None ->
          Hashtbl.add groups key [ l ];
          order_rev := key :: !order_rev))
    (launches t);
  let kernels =
    List.rev_map
      (fun key -> kernel_report t key (List.rev (Hashtbl.find groups key)))
      !order_rev
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 kernels in
  let pred_block = sum (fun r -> r.r_pred_block) in
  let pred_cyclic = sum (fun r -> r.r_pred_cyclic) in
  let work schedule =
    List.fold_left
      (fun acc l -> acc +. predict_work l ~schedule)
      0.0 (launches t)
  in
  let work_block = work "block" and work_cyclic = work "cyclic" in
  let current =
    if t.i_schedule = "cyclic" then work_cyclic else work_block
  in
  let alt = if t.i_schedule = "cyclic" then work_block else work_cyclic in
  let switch = current > 0.0 && alt < materiality *. current in
  { a_devices = t.i_devices;
    a_schedule = t.i_schedule;
    a_kernels = kernels;
    a_gather_time = t.gather_time;
    a_gather_bytes = t.gather_bytes;
    a_pred_block = pred_block;
    a_pred_cyclic = pred_cyclic;
    a_recommended = (if switch then other_schedule t.i_schedule
                     else t.i_schedule);
    a_gain = (if switch then (current -. alt) /. current else 0.0) }

(* ------------------------------- export ----------------------------- *)

let schema = Trace.schema ^ ".imbalance"
let version = 1

(* Percentiles of an empty shard population print as 0 (JSON has no
   NaN); it only happens when no sharded kernel ran. *)
let num x = if Float.is_nan x then "0.0" else Fmt.str "%.9f" x

let report_json r =
  Fmt.str
    "{\"kernel\": %s, \"loc\": %s, \"launches\": %d, \"imbalance\": %.4f, \
     \"idle_s\": %s, \"merge_s\": %s, \"merge_share\": %.4f, \"wall_s\": \
     %s, \"p50_s\": %s, \"p95_s\": %s, \"p99_s\": %s, \"failovers\": %d, \
     \"pred_block_s\": %s, \"pred_cyclic_s\": %s, \"recommended\": %s, \
     \"verdict\": %s, \"gain\": %.4f}"
    (Trace.json_str r.r_kernel) (Trace.json_str r.r_loc) r.r_launches
    r.r_imbalance (num r.r_idle) (num r.r_merge) r.r_merge_share
    (num r.r_wall) (num r.r_p50) (num r.r_p95) (num r.r_p99) r.r_failovers
    (num r.r_pred_block) (num r.r_pred_cyclic)
    (Trace.json_str r.r_recommended) (Trace.json_str r.r_verdict) r.r_gain

let to_json ?(name = "") ?(seed = 0) a =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Fmt.str
       "{\n\"schema\": %s,\n\"version\": %d,\n\"name\": %s,\n\"seed\": \
        %d,\n\"devices\": %d,\n\"schedule\": %s,\n\"kernels\": [\n"
       (Trace.json_str schema) version (Trace.json_str name) seed
       a.a_devices (Trace.json_str a.a_schedule));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (report_json r))
    a.a_kernels;
  Buffer.add_string buf
    (Fmt.str
       "\n],\n\"gather_bytes\": %d,\n\"gather_s\": %s,\n\
        \"pred_block_s\": %s,\n\"pred_cyclic_s\": %s,\n\"recommended\": \
        %s,\n\"gain\": %.4f\n}\n"
       a.a_gather_bytes (num a.a_gather_time) (num a.a_pred_block)
       (num a.a_pred_cyclic)
       (Trace.json_str a.a_recommended) a.a_gain);
  Buffer.contents buf

let pp ppf a =
  Fmt.pf ppf
    "shard imbalance analysis (%d device(s), schedule %s)@.@.  %-16s \
     %8s %6s %11s %11s %11s %11s %8s  %s@."
    a.a_devices a.a_schedule "kernel" "launches" "imbal" "idle-s"
    "merge-share" "pred-block" "pred-cyclic" "verdict" "recommend";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-16s %8d %6.2f %11.9f %11.4f %11.9f %11.9f %8s  %s%s@."
        r.r_kernel r.r_launches r.r_imbalance r.r_idle r.r_merge_share
        r.r_pred_block r.r_pred_cyclic r.r_verdict r.r_recommended
        (if r.r_verdict = "switch" then
           Fmt.str " (-%.1f%%)" (100.0 *. r.r_gain)
         else ""))
    a.a_kernels;
  Fmt.pf ppf
    "@.  gather: %d byte(s), %.9f s modeled@.  program predicted: block \
     %.9f s, cyclic %.9f s -> %s%s@."
    a.a_gather_bytes a.a_gather_time a.a_pred_block a.a_pred_cyclic
    a.a_recommended
    (if a.a_gain > 0.0 then Fmt.str " (predicted -%.1f%%)"
         (100.0 *. a.a_gain)
     else "")
