(** Deterministic streaming statistics over simulated durations: a sparse
    power-of-two histogram with an associative merge, and exact
    nearest-rank percentiles.  No wall-clock input — every result is a
    pure function of the recorded samples. *)

type t

val create : unit -> t

(** Record one sample (a simulated duration in seconds). *)
val add : t -> float -> unit

val count : t -> int
val total : t -> float

(** Arithmetic mean; [0.] of the empty histogram. *)
val mean : t -> float

(** Pointwise bucket-count sum — associative and commutative, so
    partial histograms built per shard/device merge in any order. *)
val merge : t -> t -> t

(** Non-empty buckets as [(lo, hi, count)] with [lo <= x < hi], sorted
    ascending.  Non-positive samples share the [(0., 0.)] bucket. *)
val buckets : t -> (float * float * int) list

(** [percentile samples q] is the exact nearest-rank percentile (the
    ceil(q*n)-th smallest sample) for [q] in [0,1], computed over a copy
    of [samples].  One sample is every percentile of itself; the empty
    array yields [nan]. *)
val percentile : float array -> float -> float

val pp : Format.formatter -> t -> unit
