(** Per-array, per-direction data-movement ledger with cause attribution,
    live allocation watermarks, and a counterfactual savings analyzer.

    The runtime records every byte that crosses the (simulated) PCIe bus —
    H2D uploads, D2H downloads, reduction re-broadcasts, peer syncs,
    recovery re-transfers — as a typed ledger entry carrying the *cause*
    of the movement, the device ordinal whose DMA engine did the work, the
    source directive (transfer-site label and location), the enclosing
    trace span, and whether the destination copy was already fresh
    (a redundant transfer, per the §III-B coherence lattice).  Allocation
    and free events feed per-device watermarks (current/peak bytes) and
    per-array lifetime intervals.

    Entries that pass through a device DMA engine are *counted*: their
    per-direction byte totals equal the {!Gpusim.Metrics}
    [bytes_h2d]/[bytes_d2h] accumulators exactly (the conservation
    property the ledger tests assert with integer [=]).  Functional peer
    blits the runtime models as overlapped DMA (reduction re-broadcast,
    mirror restores) are recorded uncounted, so the ledger still explains
    them without disturbing conservation.

    [analyze] re-costs the recorded ledger under the gpusim transfer cost
    model for the saturator's candidate rewrites — hoist a data region
    out of a loop, convert copy→present, merge adjacent kernels' data
    clauses — and emits per-site [wasted_bytes]/[saved_s] counterfactuals
    with keep/apply verdicts, mirroring the {!Imbalance} analyzer shape.

    Everything here is plain data (ints, floats, strings): the module
    deliberately knows nothing about [Gpusim]; the cost-model constants
    it re-costs with are passed in. *)

type cause =
  | Copyin  (** data-clause H2D upload (broadcast members included) *)
  | Copyout  (** data-clause D2H download (single-device) *)
  | Rebroadcast  (** reduction-merge broadcast / peer input sync *)
  | Gather  (** rotating multi-device D2H result gather *)
  | Retry  (** fault-recovery re-transfer (transient retry or checksum) *)
  | Failover  (** post-fallback re-upload of host results *)
  | Demotion  (** device-fresh data restored to the host (mirror/ckpt) *)

let cause_name = function
  | Copyin -> "copyin"
  | Copyout -> "copyout"
  | Rebroadcast -> "rebroadcast"
  | Gather -> "gather"
  | Retry -> "retry"
  | Failover -> "failover"
  | Demotion -> "demotion"

type dir = H2d | D2h

let dir_name = function H2d -> "h2d" | D2h -> "d2h"

type entry = {
  e_seq : int;  (** ledger order *)
  e_array : string;
  e_dir : dir;
  e_cause : cause;
  e_bytes : int;
  e_dev : int;  (** device ordinal whose DMA engine moved the bytes *)
  e_site : string;  (** source directive label, e.g. ["copyin(a)"] *)
  e_loc : string;
  e_exec : int;  (** transfer-site execution ordinal (1-based; 0 if none) *)
  e_span : int;  (** enclosing trace span id, [-1] outside any span *)
  e_time : float;  (** simulated start time *)
  e_duration : float;
  e_counted : bool;  (** passed through a DMA engine (metrics bytes) *)
  e_redundant : bool;  (** destination copy was already fresh *)
  e_hoistable : bool;
      (** the transfer repeats an earlier one of the same array with no
          intervening host access that justifies it: for an upload, no
          host write since the previous upload; for a download, no host
          read since the previous download.  Hoisting the enclosing data
          region (keeping the device buffer alive) would eliminate it —
          the waste a post-free coherence lattice cannot see. *)
}

type lifetime = {
  lt_array : string;
  lt_dev : int;
  lt_bytes : int;
  lt_alloc : float;
  mutable lt_free : float option;  (** [None] while still allocated *)
}

type t = {
  devices : int;
  schedule : string;
  mutable seq : int;
  mutable entries_rev : entry list;
  current : int array;  (** live allocated bytes per device *)
  peak : int array;
  mutable samples_rev : (int * float * int) list;
      (** (dev, time, allocated-after) — one per alloc/free event *)
  mutable lifetimes_rev : lifetime list;
  open_lts : (string * int, lifetime) Hashtbl.t;
}

let create ~devices ~schedule =
  { devices; schedule; seq = 0; entries_rev = [];
    current = Array.make (max 1 devices) 0;
    peak = Array.make (max 1 devices) 0;
    samples_rev = []; lifetimes_rev = []; open_lts = Hashtbl.create 16 }

let xfer t ~array ~dir ~cause ~bytes ~dev ~site ~loc ~exec ~span ~time
    ~duration ~counted ~redundant ~hoist =
  let e =
    { e_seq = t.seq; e_array = array; e_dir = dir; e_cause = cause;
      e_bytes = bytes; e_dev = dev; e_site = site; e_loc = loc;
      e_exec = exec; e_span = span; e_time = time; e_duration = duration;
      e_counted = counted; e_redundant = redundant; e_hoistable = hoist }
  in
  t.seq <- t.seq + 1;
  t.entries_rev <- e :: t.entries_rev

(* One allocation-tracking event: [bytes] is the signed delta (positive
   alloc, negative free), [allocated] the device's live total after it. *)
let mem t ~array ~dev ~bytes ~allocated ~time =
  if dev >= 0 && dev < Array.length t.current then begin
    t.current.(dev) <- allocated;
    if allocated > t.peak.(dev) then t.peak.(dev) <- allocated
  end;
  t.samples_rev <- (dev, time, allocated) :: t.samples_rev;
  if bytes > 0 then begin
    let lt =
      { lt_array = array; lt_dev = dev; lt_bytes = bytes; lt_alloc = time;
        lt_free = None }
    in
    Hashtbl.replace t.open_lts (array, dev) lt;
    t.lifetimes_rev <- lt :: t.lifetimes_rev
  end
  else
    match Hashtbl.find_opt t.open_lts (array, dev) with
    | Some lt ->
        lt.lt_free <- Some time;
        Hashtbl.remove t.open_lts (array, dev)
    | None -> ()

let entries t = List.rev t.entries_rev
let lifetimes t = List.rev t.lifetimes_rev
let samples t = List.rev t.samples_rev

(* Counted per-direction byte totals: must equal the metrics
   [bytes_h2d]/[bytes_d2h] accumulators summed over every device-set
   member (integer [=], no tolerance). *)
let totals t =
  List.fold_left
    (fun (h, d) e ->
      if not e.e_counted then (h, d)
      else
        match e.e_dir with
        | H2d -> (h + e.e_bytes, d)
        | D2h -> (h, d + e.e_bytes))
    (0, 0) t.entries_rev

(* ----------------------------- analysis ----------------------------- *)

type site_report = {
  s_site : string;  (** directive label *)
  s_loc : string;
  s_array : string;
  s_dir : dir;
  s_execs : int;  (** transfer-site executions *)
  s_transfers : int;  (** counted DMA transfers (broadcast members incl.) *)
  s_bytes : int;
  s_redundant : int;  (** transfers whose destination was already fresh *)
  s_hoistable : int;
      (** non-redundant repeats a hoisted data region would eliminate *)
  s_wasted_bytes : int;
  s_causes : (string * int) list;  (** bytes by cause, first-use order *)
  s_rewrite : string;  (** "hoist" | "present" | "merge" | "none" *)
  s_saved_s : float;  (** modeled DMA time of the dropped transfers *)
  s_verdict : string;  (** "apply" | "keep" *)
}

type analysis = {
  a_devices : int;
  a_schedule : string;
  a_h2d_bytes : int;  (** counted totals (= the metrics accumulators) *)
  a_d2h_bytes : int;
  a_uncounted_bytes : int;  (** modeled overlapped-DMA movement *)
  a_transfers : int;  (** counted DMA transfers *)
  a_transfer_s : float;  (** noise-free model cost of every counted one *)
  a_causes : (string * int) list;  (** bytes by cause, first-use order *)
  a_sites : site_report list;  (** first-execution order *)
  a_wasted_bytes : int;
  a_saved_s : float;  (** total over "apply" verdicts *)
  a_peaks : (int * int * int) list;  (** (dev, current, peak) bytes *)
  a_lifetimes : lifetime list;
}

(* A rewrite must be material: saving under half a percent of the
   program's modeled transfer time keeps the clauses as written (the
   same 0.5% work-materiality the schedule analyzer uses). *)
let materiality = 0.995

type acc = {
  mutable n : int;
  mutable bytes : int;
  mutable red_n : int;
  mutable red_bytes : int;
  mutable red_after_d2h : int;
      (* redundant H2D whose previous counted movement of the same array
         was a download: the data made a host round trip between adjacent
         kernels, so the rewrite is a clause merge, not just [present] *)
  mutable hoist_n : int;
  mutable hoist_bytes : int;
  mutable execs : int;
  mutable saved : float;
  mutable site_causes_rev : (string * int) list;
}

let bump_cause rev_list cause bytes =
  let name = cause_name cause in
  if List.mem_assoc name !rev_list then
    rev_list :=
      List.map (fun (n, v) -> if n = name then (n, v + bytes) else (n, v))
        !rev_list
  else rev_list := (name, bytes) :: !rev_list

let analyze t ~pcie_latency ~pcie_bandwidth =
  let cost bytes = pcie_latency +. (float_of_int bytes /. pcie_bandwidth) in
  let causes_rev = ref [] in
  let order_rev = ref [] in
  let groups : (string * string * string * dir, acc) Hashtbl.t =
    Hashtbl.create 16
  in
  let last_dir : (string, dir) Hashtbl.t = Hashtbl.create 8 in
  let h2d = ref 0 and d2h = ref 0 and uncounted = ref 0 in
  let transfers = ref 0 and transfer_s = ref 0.0 in
  List.iter
    (fun e ->
      bump_cause causes_rev e.e_cause e.e_bytes;
      if not e.e_counted then uncounted := !uncounted + e.e_bytes
      else begin
        (match e.e_dir with
        | H2d -> h2d := !h2d + e.e_bytes
        | D2h -> d2h := !d2h + e.e_bytes);
        incr transfers;
        transfer_s := !transfer_s +. cost e.e_bytes;
        let key = (e.e_site, e.e_loc, e.e_array, e.e_dir) in
        let a =
          match Hashtbl.find_opt groups key with
          | Some a -> a
          | None ->
              let a =
                { n = 0; bytes = 0; red_n = 0; red_bytes = 0;
                  red_after_d2h = 0; hoist_n = 0; hoist_bytes = 0;
                  execs = 0; saved = 0.0; site_causes_rev = [] }
              in
              Hashtbl.add groups key a;
              order_rev := key :: !order_rev;
              a
        in
        a.n <- a.n + 1;
        a.bytes <- a.bytes + e.e_bytes;
        a.execs <- Int.max a.execs e.e_exec;
        (let scr = ref a.site_causes_rev in
         bump_cause scr e.e_cause e.e_bytes;
         a.site_causes_rev <- !scr);
        if e.e_redundant then begin
          a.red_n <- a.red_n + 1;
          a.red_bytes <- a.red_bytes + e.e_bytes;
          a.saved <- a.saved +. cost e.e_bytes;
          if
            e.e_dir = H2d
            && Hashtbl.find_opt last_dir e.e_array = Some D2h
          then a.red_after_d2h <- a.red_after_d2h + 1
        end
        else if e.e_hoistable && a.n > 1 then begin
          (* Not redundant on the lattice (the free at region exit reset
             it) but a repeat with no intervening host access: a hoisted
             data region keeps the buffer alive and drops it.  [a.n > 1]
             anchors the site's first transfer as the one that stays. *)
          a.hoist_n <- a.hoist_n + 1;
          a.hoist_bytes <- a.hoist_bytes + e.e_bytes;
          a.saved <- a.saved +. cost e.e_bytes
        end;
        Hashtbl.replace last_dir e.e_array e.e_dir
      end)
    (entries t);
  let threshold = (1.0 -. materiality) *. !transfer_s in
  let sites =
    List.rev_map
      (fun ((site, loc, array, dir) as key) ->
        let a = Hashtbl.find groups key in
        let rewrite =
          if a.red_n = a.n && a.n > 0 then
            match dir with
            | H2d -> if a.red_after_d2h > 0 then "merge" else "present"
            | D2h -> "present"
          else if a.hoist_n > 0 then "hoist"
          else if a.red_n > 0 then
            if a.execs > 1 then "hoist" else "present"
          else "none"
        in
        let apply = rewrite <> "none" && a.saved > threshold in
        { s_site = site; s_loc = loc; s_array = array; s_dir = dir;
          s_execs = a.execs; s_transfers = a.n; s_bytes = a.bytes;
          s_redundant = a.red_n; s_hoistable = a.hoist_n;
          s_wasted_bytes = a.red_bytes + a.hoist_bytes;
          s_causes = List.rev a.site_causes_rev;
          s_rewrite = rewrite; s_saved_s = a.saved;
          s_verdict = (if apply then "apply" else "keep") })
      !order_rev
  in
  let wasted =
    List.fold_left (fun acc s -> acc + s.s_wasted_bytes) 0 sites
  in
  let saved =
    List.fold_left
      (fun acc s -> if s.s_verdict = "apply" then acc +. s.s_saved_s else acc)
      0.0 sites
  in
  { a_devices = t.devices;
    a_schedule = t.schedule;
    a_h2d_bytes = !h2d;
    a_d2h_bytes = !d2h;
    a_uncounted_bytes = !uncounted;
    a_transfers = !transfers;
    a_transfer_s = !transfer_s;
    a_causes = List.rev !causes_rev;
    a_sites = sites;
    a_wasted_bytes = wasted;
    a_saved_s = saved;
    a_peaks =
      List.init (Array.length t.current) (fun d ->
          (d, t.current.(d), t.peak.(d)));
    a_lifetimes = lifetimes t }

(* ------------------------------- export ----------------------------- *)

let schema = Trace.schema ^ ".memtrace"
let version = 1

let num x = if Float.is_nan x then "0.0" else Fmt.str "%.9f" x

let causes_json causes =
  Fmt.str "{%s}"
    (String.concat ", "
       (List.map
          (fun (c, b) -> Fmt.str "%s: %d" (Trace.json_str c) b)
          causes))

let site_json s =
  Fmt.str
    "{\"site\": %s, \"loc\": %s, \"array\": %s, \"dir\": %s, \"execs\": \
     %d, \"transfers\": %d, \"bytes\": %d, \"redundant\": %d, \
     \"hoistable\": %d, \"wasted_bytes\": %d, \"causes\": %s, \
     \"rewrite\": %s, \"saved_s\": %s, \"verdict\": %s}"
    (Trace.json_str s.s_site) (Trace.json_str s.s_loc)
    (Trace.json_str s.s_array)
    (Trace.json_str (dir_name s.s_dir))
    s.s_execs s.s_transfers s.s_bytes s.s_redundant s.s_hoistable
    s.s_wasted_bytes
    (causes_json s.s_causes)
    (Trace.json_str s.s_rewrite) (num s.s_saved_s)
    (Trace.json_str s.s_verdict)

let lifetime_json lt =
  Fmt.str
    "{\"array\": %s, \"dev\": %d, \"bytes\": %d, \"alloc_s\": %s, \
     \"free_s\": %s}"
    (Trace.json_str lt.lt_array) lt.lt_dev lt.lt_bytes (num lt.lt_alloc)
    (match lt.lt_free with None -> "null" | Some f -> num f)

let to_json ?(name = "") ?(seed = 0) a =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str
       "{\n\"schema\": %s,\n\"version\": %d,\n\"name\": %s,\n\"seed\": \
        %d,\n\"devices\": %d,\n\"schedule\": %s,\n\"bytes_h2d\": \
        %d,\n\"bytes_d2h\": %d,\n\"bytes_uncounted\": \
        %d,\n\"transfers\": %d,\n\"transfer_s\": %s,\n\"causes\": \
        %s,\n\"sites\": [\n"
       (Trace.json_str schema) version (Trace.json_str name) seed
       a.a_devices (Trace.json_str a.a_schedule) a.a_h2d_bytes
       a.a_d2h_bytes a.a_uncounted_bytes a.a_transfers (num a.a_transfer_s)
       (causes_json a.a_causes));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (site_json s))
    a.a_sites;
  Buffer.add_string buf "\n],\n\"watermarks\": [\n";
  List.iteri
    (fun i (dev, current, peak) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Fmt.str "{\"dev\": %d, \"current_bytes\": %d, \"peak_bytes\": %d}"
           dev current peak))
    a.a_peaks;
  Buffer.add_string buf "\n],\n\"lifetimes\": [\n";
  List.iteri
    (fun i lt ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (lifetime_json lt))
    a.a_lifetimes;
  Buffer.add_string buf
    (Fmt.str "\n],\n\"wasted_bytes\": %d,\n\"saved_s\": %s\n}\n"
       a.a_wasted_bytes (num a.a_saved_s));
  Buffer.contents buf

let peak_bytes a =
  List.fold_left (fun acc (_, _, p) -> Int.max acc p) 0 a.a_peaks

(* Chrome counter ("C") events: the live allocated-bytes lane of each
   device-set member, sampled at every alloc/free, on the member's own
   tid (ordinal + 1, matching the device-lane exporter). *)
let chrome_counter_events t =
  List.rev_map
    (fun (dev, time, allocated) ->
      Chrome.counter ~name:"allocated" ~ts:time ~tid:(dev + 1)
        ~value:allocated)
    t.samples_rev

let pp ppf a =
  Fmt.pf ppf
    "data-movement ledger (%d device(s), schedule %s)@.@.  %-20s %-10s \
     %-4s %6s %9s %12s %12s %8s %11s  %s@."
    a.a_devices a.a_schedule "site" "array" "dir" "execs" "transfers"
    "bytes" "wasted" "rewrite" "saved-s" "verdict";
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-20s %-10s %-4s %6d %9d %12d %12d %8s %11.9f  %s@."
        s.s_site s.s_array (dir_name s.s_dir) s.s_execs s.s_transfers
        s.s_bytes s.s_wasted_bytes s.s_rewrite s.s_saved_s s.s_verdict)
    a.a_sites;
  Fmt.pf ppf "@.  bytes: h2d %d, d2h %d, uncounted %d; causes:" a.a_h2d_bytes
    a.a_d2h_bytes a.a_uncounted_bytes;
  List.iter (fun (c, b) -> Fmt.pf ppf " %s %d" c b) a.a_causes;
  Fmt.pf ppf "@.  watermarks:";
  List.iter
    (fun (d, cur, peak) -> Fmt.pf ppf " dev%d %d/%d" d cur peak)
    a.a_peaks;
  Fmt.pf ppf
    "@.  counterfactual: %d wasted byte(s), %.9f s saved under the \
     applied rewrites@."
    a.a_wasted_bytes a.a_saved_s
