(** Coherence audit log: every {notstale, maystale, stale} transition of
    every shared array with the program point and triggering operation —
    the explanation layer behind the §III-B missing/redundant reports.
    Replayable: folding the entries from the all-fresh initial state
    reaches exactly the final statuses the runtime reports. *)

type device = Cpu | Gpu

val device_name : device -> string

type status = Notstale | Maystale | Stale

val status_name : status -> string

type entry = {
  a_seq : int;
  a_time : float;  (** simulated seconds *)
  a_var : string;
  a_dev : device;
  a_from : status;
  a_to : status;
  a_op : string;  (** triggering runtime call, e.g. ["check-write"] *)
  a_point : string;  (** program point: transfer-site label or ["stmtN"] *)
  a_loops : (string * int) list;  (** enclosing host loops, outermost first *)
}

type t

val create : unit -> t

val record :
  t -> time:float -> var:string -> dev:device -> from_:status ->
  to_:status -> op:string -> point:string -> loops:(string * int) list ->
  unit

val entries : t -> entry list
val length : t -> int

(** Replay the log from the all-fresh initial state: final status of every
    (variable, device) copy that ever transitioned, sorted. *)
val final_states : t -> ((string * device) * status) list

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** One [{"type": "audit", ...}] JSONL line per entry, in order. *)
val to_jsonl : t -> string
