(** Per-directive cost attribution (the paper's Figure 3/4 stacked
    breakdown, one bar per directive/region).

    The report is computed by replaying a trace's charge events in
    chronological order — the same order the {!Gpusim.Metrics} accumulator
    applied them — so every per-category total is the *identical* sequence
    of float additions the runtime performed.  The conservation check
    ([conserves]) therefore holds with bit-exact float equality, not an
    epsilon. *)

type row = {
  r_directive : string;
  r_kind : string;  (** span kind of the attributed span, or ["host"] *)
  r_loc : string;  (** source location, or [""] *)
  r_cats : (string * float) list;  (** per-category seconds, canonical order *)
  r_total : float;
}

type t = {
  p_categories : string list;  (** canonical category order *)
  p_rows : row list;  (** first-charge order *)
  p_totals : (string * float) list;  (** per-category grand totals *)
  p_total : float;  (** folds [p_totals] in canonical order *)
  p_devices : (int * row list) list;
      (** per-device-ordinal tables from device-tagged charges, ordinal
          ascending; empty on single-device runs *)
  p_counters : (string * int) list;
}

let of_trace ~categories tr =
  let ncat = List.length categories in
  let cat_idx = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.add cat_idx c i) categories;
  (* Grand totals replay the accumulator's exact addition sequence. *)
  let totals = Array.make ncat 0.0 in
  (* Per-directive rows, in first-charge order. *)
  let rows : (string, float array) Hashtbl.t = Hashtbl.create 16 in
  let order_rev = ref [] in
  let row_for d =
    match Hashtbl.find_opt rows d with
    | Some a -> a
    | None ->
        let a = Array.make ncat 0.0 in
        Hashtbl.add rows d a;
        order_rev := d :: !order_rev;
        a
  in
  (* Per-device tables, from device-tagged charges.  Device 0 is the
     primary: its charges advance the host clock, so they land in both
     the host totals (conservation) and its own device table. *)
  let dev_rows : (int * string, float array) Hashtbl.t = Hashtbl.create 16 in
  let dev_order_rev = ref [] in
  let dev_row_for d dir =
    match Hashtbl.find_opt dev_rows (d, dir) with
    | Some a -> a
    | None ->
        let a = Array.make ncat 0.0 in
        Hashtbl.add dev_rows (d, dir) a;
        dev_order_rev := (d, dir) :: !dev_order_rev;
        a
  in
  List.iter
    (fun ev ->
      match ev with
      | Trace.E_charge c -> (
          match Hashtbl.find_opt cat_idx c.c_category with
          | None -> ()
          | Some i ->
              (* The host clock is the primary's accumulator: untagged
                 charges and the primary's own (dev 0) replay into the
                 conserved totals; secondary members only feed their
                 device tables. *)
              (match c.c_dev with
              | None | Some 0 ->
                  totals.(i) <- totals.(i) +. c.c_dt;
                  let a = row_for c.c_directive in
                  a.(i) <- a.(i) +. c.c_dt
              | Some _ -> ());
              (match c.c_dev with
              | None -> ()
              | Some d ->
                  let a = dev_row_for d c.c_directive in
                  a.(i) <- a.(i) +. c.c_dt))
      | Trace.E_begin _ | Trace.E_end _ -> ())
    (Trace.events tr);
  (* Attribute kind/loc from the first span carrying each directive. *)
  let span_info = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match sp.Trace.sp_directive with
      | Some d when not (Hashtbl.mem span_info d) ->
          Hashtbl.add span_info d
            ( Trace.kind_name sp.Trace.sp_kind,
              Option.value ~default:"" sp.Trace.sp_loc )
      | _ -> ())
    (Trace.spans tr);
  let info_for d =
    match Hashtbl.find_opt span_info d with
    | Some info -> info
    | None -> ("host", "")
  in
  let row_of dir a =
    let kind, loc = info_for dir in
    { r_directive = dir; r_kind = kind; r_loc = loc;
      r_cats = List.mapi (fun i c -> (c, a.(i))) categories;
      r_total = Array.fold_left ( +. ) 0.0 a }
  in
  let mk_row d = row_of d (Hashtbl.find rows d) in
  (* Device tables: ordinal ascending, rows in first-charge order. *)
  let dev_order = List.rev !dev_order_rev in
  let ordinals =
    List.sort_uniq compare (List.map fst dev_order)
  in
  let devices =
    List.map
      (fun d ->
        ( d,
          List.filter_map
            (fun (d', dir) ->
              if d' = d then
                Some (row_of dir (Hashtbl.find dev_rows (d, dir)))
              else None)
            dev_order ))
      ordinals
  in
  { p_categories = categories;
    p_rows = List.rev_map mk_row !order_rev;
    p_totals = List.mapi (fun i c -> (c, totals.(i))) categories;
    p_total = Array.fold_left ( +. ) 0.0 totals;
    p_devices = devices;
    p_counters = Trace.counters tr }

(** Bit-exact: both sides fold the same additions in the same order. *)
let conserves p ~total = p.p_total = total

(* ------------------------------ text ------------------------------ *)

let pp ppf p =
  (* Only show categories that received any charge, to keep the table
     readable; the JSON export keeps all of them. *)
  let live =
    List.filter (fun c -> List.assoc c p.p_totals <> 0.0) p.p_categories
  in
  let dir_w =
    List.fold_left
      (fun w r -> max w (String.length r.r_directive))
      (String.length "directive") p.p_rows
  in
  Fmt.pf ppf "%-*s  %10s" dir_w "directive" "total(s)";
  List.iter (fun c -> Fmt.pf ppf "  %14s" c) live;
  Fmt.pf ppf "@.";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-*s  %10.6f" dir_w r.r_directive r.r_total;
      List.iter (fun c -> Fmt.pf ppf "  %14.6f" (List.assoc c r.r_cats)) live;
      Fmt.pf ppf "@.")
    p.p_rows;
  Fmt.pf ppf "%-*s  %10.6f" dir_w "TOTAL" p.p_total;
  List.iter (fun c -> Fmt.pf ppf "  %14.6f" (List.assoc c p.p_totals)) live;
  Fmt.pf ppf "@.";
  (* Per-device breakdown (multi-device runs only). *)
  List.iter
    (fun (d, rows) ->
      Fmt.pf ppf "@.device %d:@." d;
      List.iter
        (fun r ->
          Fmt.pf ppf "  %-*s  %10.6f" dir_w r.r_directive r.r_total;
          List.iter
            (fun c -> Fmt.pf ppf "  %14.6f" (List.assoc c r.r_cats))
            live;
          Fmt.pf ppf "@.")
        rows)
    p.p_devices

(* ------------------------------ JSON ------------------------------ *)

let json_cats cats =
  Fmt.str "{%s}"
    (String.concat ", "
       (List.map
          (fun (c, v) -> Fmt.str "%s: %.9f" (Trace.json_str c) v)
          cats))

let row_json r =
  Fmt.str
    "{\"directive\": %s, \"kind\": %s, \"loc\": %s, \"total\": %.9f, \
     \"categories\": %s}"
    (Trace.json_str r.r_directive)
    (Trace.json_str r.r_kind) (Trace.json_str r.r_loc) r.r_total
    (json_cats r.r_cats)

(** Canonical, deterministic JSON document (2-space indent, ordered
    fields) — byte-comparable across runs with the same seed. *)
let to_json ~name ~seed p =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Fmt.str "  \"schema\": %s,\n  \"version\": %d,\n"
       (Trace.json_str (Trace.schema ^ ".profile"))
       Trace.version);
  Buffer.add_string b
    (Fmt.str "  \"name\": %s,\n  \"seed\": %d,\n" (Trace.json_str name) seed);
  Buffer.add_string b (Fmt.str "  \"total\": %.9f,\n" p.p_total);
  Buffer.add_string b
    (Fmt.str "  \"totals\": %s,\n" (json_cats p.p_totals));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b "    ";
      Buffer.add_string b (row_json r);
      if i < List.length p.p_rows - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    p.p_rows;
  Buffer.add_string b "  ],\n";
  (* The devices section appears only on multi-device runs, keeping the
     single-device document bit-identical to the pre-device-aware one. *)
  if p.p_devices <> [] then begin
    Buffer.add_string b "  \"devices\": [\n";
    List.iteri
      (fun i (d, rows) ->
        Buffer.add_string b (Fmt.str "    {\"dev\": %d, \"rows\": [\n" d);
        List.iteri
          (fun j r ->
            Buffer.add_string b "      ";
            Buffer.add_string b (row_json r);
            if j < List.length rows - 1 then Buffer.add_char b ',';
            Buffer.add_char b '\n')
          rows;
        Buffer.add_string b "    ]}";
        if i < List.length p.p_devices - 1 then Buffer.add_char b ',';
        Buffer.add_char b '\n')
      p.p_devices;
    Buffer.add_string b "  ],\n"
  end;
  Buffer.add_string b "  \"counters\": {";
  Buffer.add_string b
    (String.concat ", "
       (List.map
          (fun (n, v) -> Fmt.str "%s: %d" (Trace.json_str n) v)
          p.p_counters));
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

(* --------------------------- flamegraph --------------------------- *)

(** Folded-stack export (Brendan Gregg's flamegraph.pl format): one
    [name;name;...;category count] line per charged stack, values in
    integer nanoseconds, lines sorted for determinism. *)
let folded tr =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun sp -> Hashtbl.add by_id sp.Trace.sp_id sp)
    (Trace.spans tr);
  let rec path id acc =
    match Hashtbl.find_opt by_id id with
    | None -> acc
    | Some sp ->
        let acc = sp.Trace.sp_name :: acc in
        (match sp.Trace.sp_parent with None -> acc | Some p -> path p acc)
  in
  let stacks : (string, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.E_charge c ->
          let names =
            if c.c_span < 0 then [ Trace.host_directive ]
            else path c.c_span []
          in
          let key = String.concat ";" (names @ [ c.c_category ]) in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt stacks key) in
          Hashtbl.replace stacks key (prev +. c.c_dt)
      | Trace.E_begin _ | Trace.E_end _ -> ())
    (Trace.events tr);
  Hashtbl.fold
    (fun k v acc ->
      let ns = int_of_float ((v *. 1e9) +. 0.5) in
      if ns > 0 then Fmt.str "%s %d" k ns :: acc else acc)
    stacks []
  |> List.sort compare
  |> fun lines -> String.concat "\n" lines ^ if lines = [] then "" else "\n"
