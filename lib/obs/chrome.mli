(** Host-lane Chrome-trace events from an observability trace, rendered
    with the same byte conventions as the [Gpusim.Timeline] exporter so
    host and device lanes interleave in one JSON document. *)

(** A complete ("X") event on [tid]; [ts]/[dur] in simulated seconds. *)
val complete :
  name:string -> cat:string -> ts:float -> dur:float -> tid:int -> string

(** A thread-scoped instant ("i") mark on [tid]. *)
val instant : name:string -> cat:string -> ts:float -> tid:int -> string

(** A counter ("C") sample on [tid]: the live byte count at [ts]. *)
val counter : name:string -> ts:float -> tid:int -> value:int -> string

(** Pre-rendered host-lane ([tid 0]) event objects: closed host-side
    work spans (kernel, transfer, alloc/free, wait, check, merge) as
    complete events, recovery spans as instant marks.  Device-tagged
    spans are skipped — they belong to the per-device lanes. *)
val host_lane_events : Trace.t -> string list
