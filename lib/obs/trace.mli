(** Hierarchical execution spans with source-level attribution, a
    chronological charge-event stream, monotonic counters, and a stable,
    versioned JSONL export.

    Charges are recorded in the exact order the cost accumulator applied
    them, so totals recomputed from a trace are bit-identical to the
    {!Gpusim.Metrics} totals — the conservation property {!Profile}
    asserts. *)

val schema : string
val version : int

type kind =
  | Session  (** one CLI invocation / one profiled run *)
  | Phase  (** compiler pipeline stage, or the runtime "run" phase *)
  | Region  (** a source data/compute region *)
  | Kernel  (** one kernel launch (retries included) *)
  | Transfer  (** one transfer-site execution *)
  | Alloc
  | Free
  | Wait
  | Check  (** coherence runtime check *)
  | Recovery  (** one resilience action (retry, re-transfer, fallback, ...) *)
  | Device  (** device-visible leaf imported from the {!Gpusim.Timeline} *)
  | Merge  (** one per-member reduction-merge step of a sharded kernel *)

val kind_name : kind -> string

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_kind : kind;
  sp_name : string;
  sp_loc : string option;
  sp_directive : string option;
      (** source-level directive attribution; charges under this span roll
          up to it *)
  sp_dev : int option;
      (** device-set member ordinal this span executed on; [None] for
          host-side spans and every single-device run *)
  mutable sp_attrs : (string * string) list;
  sp_start : float;  (** simulated seconds *)
  mutable sp_end : float option;
}

(** The directive charges fall to when no enclosing span carries one. *)
val host_directive : string

type charge = {
  c_span : int;  (** innermost open span, [-1] outside any span *)
  c_directive : string;
  c_category : string;  (** {!Gpusim.Metrics} category name *)
  c_dev : int option;
      (** device-set member ordinal whose accumulator took the charge;
          [None] on single-device runs (the primary is the host clock) *)
  c_dt : float;
}

type event =
  | E_begin of span
  | E_end of span * float
  | E_charge of charge

type t

(** [clock] supplies the simulated time for span boundaries (default: the
    constant 0, which keeps compile-phase spans deterministic). *)
val create : ?clock:(unit -> float) -> unit -> t

val set_clock : t -> (unit -> float) -> unit

val start_span :
  t -> kind -> string -> ?loc:string -> ?directive:string -> ?dev:int ->
  ?attrs:(string * string) list -> unit -> span

val end_span : t -> span -> unit

(** Run [f] inside a fresh span; the span is closed even on exceptions. *)
val with_span :
  t -> kind -> string -> ?loc:string -> ?directive:string -> ?dev:int ->
  ?attrs:(string * string) list -> (unit -> 'a) -> 'a

val add_attr : span -> string -> string -> unit

(** A pre-timed leaf span (e.g. a device timeline event), parented under
    the innermost open span. *)
val leaf :
  t -> kind -> string -> ?loc:string -> ?directive:string -> ?dev:int ->
  ?attrs:(string * string) list -> start:float -> duration:float -> unit ->
  unit

(** Id of the innermost open span, [None] outside any span. *)
val current_span_id : t -> int option

(** Directive of the nearest enclosing span carrying one, else
    {!host_directive}. *)
val current_directive : t -> string

(** Record a cost-accounting charge against the innermost open span.
    [dev] tags the charge with the device-set member ordinal that took it
    (multi-device runs only; omitted charges belong to the host clock). *)
val charge : t -> ?dev:int -> category:string -> float -> unit

val count : t -> string -> int -> unit
val incr : t -> string -> unit

(** Spans in creation order. *)
val spans : t -> span list

(** Events in chronological order. *)
val events : t -> event list

val open_spans : t -> int

(** Counters in first-use order. *)
val counters : t -> (string * int) list

(** Versioned JSONL: one [meta] header line, then [span_begin] /
    [span_end] / [charge] lines in event order, then [counter] lines. *)
val to_jsonl : t -> string

(** JSON string literal (escaped and quoted) — shared by the sibling
    exporters. *)
val json_str : string -> string

(** The escaping alone, unquoted (for exporters that build their own
    string literals). *)
val json_escape : string -> string

val pp : Format.formatter -> t -> unit
