(** Hierarchical execution spans with source-level attribution.

    A trace is the observability spine of a run: a tree of *spans*
    (session → compile phases → region/kernel/transfer → recovery) plus a
    chronological stream of *charge events* — every simulated-time charge
    the cost accounting makes, tagged with the innermost open span and the
    nearest enclosing directive.  Because charges are replayed in the exact
    order the {!Gpusim.Metrics} accumulator saw them, per-category totals
    recomputed from a trace are bit-identical to the metrics totals (the
    conservation property the profiler asserts).

    The trace exports a stable, versioned JSONL event stream
    ([schema "openarc.obs", version 1]): one [meta] header line, then
    [span_begin] / [span_end] / [charge] lines in event order, then final
    [counter] lines. *)

let schema = "openarc.obs"
let version = 1

type kind =
  | Session  (** one CLI invocation / one profiled run *)
  | Phase  (** compiler pipeline stage, or the runtime "run" phase *)
  | Region  (** a source data/compute region *)
  | Kernel  (** one kernel launch (retries included) *)
  | Transfer  (** one transfer-site execution *)
  | Alloc
  | Free
  | Wait
  | Check  (** coherence runtime check *)
  | Recovery  (** one resilience action (retry, re-transfer, fallback, ...) *)
  | Device  (** device-visible leaf imported from the {!Gpusim.Timeline} *)
  | Merge  (** one per-member reduction-merge step of a sharded kernel *)

let kind_name = function
  | Session -> "session"
  | Phase -> "phase"
  | Region -> "region"
  | Kernel -> "kernel"
  | Transfer -> "transfer"
  | Alloc -> "alloc"
  | Free -> "free"
  | Wait -> "wait"
  | Check -> "check"
  | Recovery -> "recovery"
  | Device -> "device"
  | Merge -> "merge"

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_kind : kind;
  sp_name : string;
  sp_loc : string option;  (** source location, ["file:line:col"] *)
  sp_directive : string option;
      (** source-level directive attribution (kernel name, transfer-site
          label); charges made under this span roll up to it *)
  sp_dev : int option;
      (** device-set member ordinal this span executed on; [None] for
          host-side spans and every single-device run *)
  mutable sp_attrs : (string * string) list;
  sp_start : float;  (** simulated seconds *)
  mutable sp_end : float option;
}

(** The directive charges fall to when no enclosing span carries one. *)
let host_directive = "(host)"

type charge = {
  c_span : int;  (** innermost open span, [-1] outside any span *)
  c_directive : string;
  c_category : string;  (** {!Gpusim.Metrics} category name *)
  c_dev : int option;
      (** device-set member ordinal whose accumulator took the charge;
          [None] on single-device runs (the primary is the host clock) *)
  c_dt : float;
}

type event =
  | E_begin of span
  | E_end of span * float
  | E_charge of charge

type t = {
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable stack : span list;  (** open spans, innermost first *)
  mutable events_rev : event list;
  mutable spans_rev : span list;
  counter_tbl : (string, int) Hashtbl.t;
  mutable counter_order_rev : string list;  (** first-use order, reversed *)
}

let create ?(clock = fun () -> 0.0) () =
  { clock; next_id = 0; stack = []; events_rev = []; spans_rev = [];
    counter_tbl = Hashtbl.create 8; counter_order_rev = [] }

let set_clock t clock = t.clock <- clock

let push_event t e = t.events_rev <- e :: t.events_rev

let fresh_span t kind name ?loc ?directive ?dev ?(attrs = []) ~start ~finish
    () =
  let sp =
    { sp_id = t.next_id;
      sp_parent =
        (match t.stack with [] -> None | s :: _ -> Some s.sp_id);
      sp_kind = kind; sp_name = name; sp_loc = loc;
      sp_directive = directive; sp_dev = dev; sp_attrs = attrs;
      sp_start = start; sp_end = finish }
  in
  t.next_id <- t.next_id + 1;
  t.spans_rev <- sp :: t.spans_rev;
  sp

let start_span t kind name ?loc ?directive ?dev ?attrs () =
  let sp =
    fresh_span t kind name ?loc ?directive ?dev ?attrs ~start:(t.clock ())
      ~finish:None ()
  in
  t.stack <- sp :: t.stack;
  push_event t (E_begin sp);
  sp

let end_span t sp =
  let now = t.clock () in
  sp.sp_end <- Some now;
  (* Pop up to and including [sp]; unknown spans leave the stack alone. *)
  let rec pop = function
    | [] -> t.stack
    | s :: rest -> if s.sp_id = sp.sp_id then rest else pop rest
  in
  t.stack <- pop t.stack;
  push_event t (E_end (sp, now))

let with_span t kind name ?loc ?directive ?dev ?attrs f =
  let sp = start_span t kind name ?loc ?directive ?dev ?attrs () in
  Fun.protect ~finally:(fun () -> end_span t sp) f

let add_attr sp k v = sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]

let leaf t kind name ?loc ?directive ?dev ?attrs ~start ~duration () =
  let sp =
    fresh_span t kind name ?loc ?directive ?dev ?attrs ~start
      ~finish:(Some (start +. duration)) ()
  in
  push_event t (E_begin sp);
  push_event t (E_end (sp, start +. duration))

let current_span_id t =
  match t.stack with [] -> None | s :: _ -> Some s.sp_id

let current_directive t =
  let rec find = function
    | [] -> host_directive
    | s :: rest -> (
        match s.sp_directive with Some d -> d | None -> find rest)
  in
  find t.stack

let charge t ?dev ~category dt =
  let span = match t.stack with [] -> -1 | s :: _ -> s.sp_id in
  push_event t
    (E_charge
       { c_span = span; c_directive = current_directive t;
         c_category = category; c_dev = dev; c_dt = dt })

let count t name n =
  (match Hashtbl.find_opt t.counter_tbl name with
  | Some v -> Hashtbl.replace t.counter_tbl name (v + n)
  | None ->
      Hashtbl.add t.counter_tbl name n;
      t.counter_order_rev <- name :: t.counter_order_rev)

let incr t name = count t name 1

let spans t = List.rev t.spans_rev
let events t = List.rev t.events_rev
let open_spans t = List.length t.stack

let counters t =
  List.rev_map (fun n -> (n, Hashtbl.find t.counter_tbl n))
    t.counter_order_rev

(* ------------------------------ JSONL ------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Fmt.str "\"%s\"" (json_escape s)

let attrs_json attrs =
  Fmt.str "{%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Fmt.str "%s: %s" (json_str k) (json_str v))
          attrs))

let meta_line =
  Fmt.str "{\"type\": \"meta\", \"schema\": %s, \"version\": %d}"
    (json_str schema) version

let span_begin_line sp =
  Fmt.str
    "{\"type\": \"span_begin\", \"id\": %d, \"parent\": %s, \"kind\": %s, \
     \"name\": %s%s%s%s, \"t\": %.9f}"
    sp.sp_id
    (match sp.sp_parent with None -> "null" | Some p -> string_of_int p)
    (json_str (kind_name sp.sp_kind))
    (json_str sp.sp_name)
    (match sp.sp_loc with
    | None -> ""
    | Some l -> Fmt.str ", \"loc\": %s" (json_str l))
    (match sp.sp_directive with
    | None -> ""
    | Some d -> Fmt.str ", \"directive\": %s" (json_str d))
    (match sp.sp_dev with
    | None -> ""
    | Some d -> Fmt.str ", \"dev\": %d" d)
    sp.sp_start

let span_end_line sp at =
  Fmt.str "{\"type\": \"span_end\", \"id\": %d, \"t\": %.9f%s}" sp.sp_id at
    (match sp.sp_attrs with
    | [] -> ""
    | attrs -> Fmt.str ", \"attrs\": %s" (attrs_json attrs))

let charge_line c =
  Fmt.str
    "{\"type\": \"charge\", \"span\": %d, \"directive\": %s, \"category\": \
     %s%s, \"dt\": %.12e}"
    c.c_span (json_str c.c_directive) (json_str c.c_category)
    (match c.c_dev with
    | None -> ""
    | Some d -> Fmt.str ", \"dev\": %d" d)
    c.c_dt

let counter_line (name, v) =
  Fmt.str "{\"type\": \"counter\", \"name\": %s, \"value\": %d}"
    (json_str name) v

let to_jsonl t =
  let b = Buffer.create 4096 in
  Buffer.add_string b meta_line;
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b
        (match e with
        | E_begin sp -> span_begin_line sp
        | E_end (sp, at) -> span_end_line sp at
        | E_charge c -> charge_line c);
      Buffer.add_char b '\n')
    (events t);
  List.iter
    (fun kv ->
      Buffer.add_string b (counter_line kv);
      Buffer.add_char b '\n')
    (counters t);
  Buffer.contents b

let pp ppf t =
  let depth = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let d =
        match sp.sp_parent with
        | None -> 0
        | Some p -> 1 + Option.value ~default:0 (Hashtbl.find_opt depth p)
      in
      Hashtbl.replace depth sp.sp_id d;
      Fmt.pf ppf "%s%-10s %s [%.6f s .. %s]@."
        (String.make (2 * d) ' ')
        (kind_name sp.sp_kind) sp.sp_name sp.sp_start
        (match sp.sp_end with
        | None -> "open"
        | Some e -> Fmt.str "%.6f s" e))
    (spans t)
