(** Coherence audit log: every {notstale, maystale, stale} transition of
    every shared array, with the program point and the triggering runtime
    operation.

    This is the explanation layer behind the §III-B missing/redundant
    reports: a report tells the user *that* a transfer is missing at a
    point; the audit log shows *why* — the exact sequence of writes,
    transfers and frees that drove the copy into its stale state.  The log
    is replayable: folding the entries from the all-fresh initial state
    must reach exactly the final statuses the runtime reports (tested). *)

type device = Cpu | Gpu

let device_name = function Cpu -> "cpu" | Gpu -> "gpu"

type status = Notstale | Maystale | Stale

let status_name = function
  | Notstale -> "notstale"
  | Maystale -> "maystale"
  | Stale -> "stale"

type entry = {
  a_seq : int;
  a_time : float;  (** simulated seconds *)
  a_var : string;
  a_dev : device;
  a_from : status;
  a_to : status;
  a_op : string;  (** triggering runtime call, e.g. ["check-write"] *)
  a_point : string;  (** program point: transfer-site label or ["stmtN"] *)
  a_loops : (string * int) list;  (** enclosing host loops, outermost first *)
}

type t = { mutable entries_rev : entry list; mutable seq : int }

let create () = { entries_rev = []; seq = 0 }

let record t ~time ~var ~dev ~from_ ~to_ ~op ~point ~loops =
  t.entries_rev <-
    { a_seq = t.seq; a_time = time; a_var = var; a_dev = dev;
      a_from = from_; a_to = to_; a_op = op; a_point = point;
      a_loops = loops }
    :: t.entries_rev;
  t.seq <- t.seq + 1

let entries t = List.rev t.entries_rev
let length t = t.seq

(** Replay the log from the all-fresh initial state: the final status of
    every (variable, device) copy that ever transitioned, sorted. *)
let final_states t =
  let tbl : (string * device, status) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace tbl (e.a_var, e.a_dev) e.a_to)
    (entries t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let pp_entry ppf e =
  Fmt.pf ppf "#%-4d %.6f s  %-4s copy of %-10s %s -> %s  (%s%s%s)" e.a_seq
    e.a_time (device_name e.a_dev) e.a_var (status_name e.a_from)
    (status_name e.a_to) e.a_op
    (if e.a_point = "" then "" else " at " ^ e.a_point)
    (match e.a_loops with
    | [] -> ""
    | ls ->
        Fmt.str "; %s"
          (String.concat ", "
             (List.map (fun (l, i) -> Fmt.str "%s=%d" l i) ls)))

let pp ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)

let jsonl_line e =
  let loops =
    String.concat ", "
      (List.map
         (fun (l, i) ->
           Fmt.str "{\"loop\": %s, \"iter\": %d}" (Trace.json_str l) i)
         e.a_loops)
  in
  Fmt.str
    "{\"type\": \"audit\", \"seq\": %d, \"t\": %.9f, \"var\": %s, \"dev\": \
     %s, \"from\": %s, \"to\": %s, \"op\": %s, \"point\": %s, \"loops\": \
     [%s]}"
    e.a_seq e.a_time (Trace.json_str e.a_var)
    (Trace.json_str (device_name e.a_dev))
    (Trace.json_str (status_name e.a_from))
    (Trace.json_str (status_name e.a_to))
    (Trace.json_str e.a_op) (Trace.json_str e.a_point) loops

let to_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string b (jsonl_line e);
      Buffer.add_char b '\n')
    (entries t);
  Buffer.contents b
