(** Differential profiling: compare two per-directive cost profiles (the
    canonical [openarc profile --json] documents, or in-memory
    {!Profile.t} values) and attribute the shift.

    This is the paper's Figure-2 loop made observable iteration to
    iteration: each data-clause edit should visibly move time out of the
    transfer categories of specific data directives, and the diff names
    exactly which directives won, lost, appeared or vanished.

    Deltas are plain float subtraction of the two profiles' values.  Two
    structurally identical profiles therefore diff to *exactly* zero
    (float [=], matching the profiler's bit-exact conservation
    discipline) — there is no epsilon anywhere in this module; tolerance
    policy belongs to the callers (the bench regression sentinel). *)

type verdict =
  | Improved  (** present in both, total went down *)
  | Regressed  (** present in both, total went up *)
  | Appeared  (** directive only charged in the [after] profile *)
  | Vanished  (** directive only charged in the [before] profile *)
  | Unchanged  (** present in both, totals exactly equal *)

val verdict_name : verdict -> string

type cat_delta = {
  cd_cat : string;
  cd_before : float;
  cd_after : float;
  cd_delta : float;  (** [cd_after -. cd_before] *)
}

type row_delta = {
  rd_directive : string;
  rd_kind : string;  (** from the side that has the row ([after] wins) *)
  rd_loc : string;
  rd_verdict : verdict;
  rd_before : float;
  rd_after : float;
  rd_delta : float;
  rd_cats : cat_delta list;  (** union category order *)
}

type t = {
  d_before_name : string;
  d_after_name : string;
  d_categories : string list;  (** [before] order, then new [after] ones *)
  d_rows : row_delta list;  (** [before] row order, then appeared rows *)
  d_totals : cat_delta list;  (** per-category grand-total deltas *)
  d_total_before : float;
  d_total_after : float;
  d_delta : float;
  d_counters : (string * int * int) list;  (** name, before, after *)
}

(** [diff ~before ~after] compares two profiles; the optional names label
    the report (defaults ["before"]/["after"]). *)
val diff :
  ?before_name:string -> ?after_name:string -> before:Profile.t ->
  after:Profile.t -> unit -> t

(** Every delta is exactly [0.] (float [=]), no row appeared or vanished,
    and every counter is equal. *)
val is_zero : t -> bool

(** The category moving the most time in [r] (largest [|cd_delta|]), when
    any moved at all. *)
val dominant_cat : row_delta -> string option

(** Rows sorted by [|rd_delta|] descending, exact-zero rows elided. *)
val movers : t -> row_delta list

(** Text report: totals, per-category shifts, directive movers with their
    dominant category, changed counters. *)
val pp : Format.formatter -> t -> unit

(** Canonical deterministic JSON document
    (schema [openarc.obs.profile-diff]). *)
val to_json : t -> string

(** Parse a canonical [openarc profile --json] document back into a
    profile, with its [name] and [seed].  Rejects other schemas. *)
val profile_of_json : string -> (Profile.t * string * int, string) result

(** Same, from an already-parsed JSON value — for profile documents
    embedded in larger ones (the committed bench baseline). *)
val profile_of_value : Pjson.t -> (Profile.t * string * int, string) result
