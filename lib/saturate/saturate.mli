(** Search-based automatic directive optimizer (ACC Saturator-style,
    arXiv 2306.13002).

    Generates rewrite candidates from the data-movement ledger's "apply"
    verdicts — hoist a [data] region out of the enclosing loop, pin a
    proven-fresh array to [present]/[copyin]/[copyout], merge adjacent
    kernels' round trips under one region — plus structural fusion of
    compatible adjacent kernels, then runs a greedy-with-rollback search:
    apply the top-ranked candidate, validate it (static validity →
    print/reparse round trip → §III-A kernel verification with the
    symbolic tier first → bit-identical designated outputs under both
    engines and 1/2/4-device sets → measured diff-profile corroboration
    within 0.25–4x of the prediction), re-run the ledger, repeat until no
    material candidate remains. *)

type kind = Hoist | Present | Merge | Fuse

val kind_name : kind -> string

(** One rewrite candidate: a label (stable across iterations — the
    rollback blacklist key), the ledger sites it would eliminate, the
    ledger-priced saving, and the program edit itself. *)
type candidate = {
  c_kind : kind;
  c_label : string;
  c_sites : string list;
  c_predicted_s : float;
  c_edit : Minic.Ast.program -> Minic.Ast.program;
}

(** One search step — a candidate attempt, accepted or rejected. *)
type step = {
  st_index : int;
  st_kind : kind;
  st_label : string;
  st_sites : string list;
  st_predicted_s : float;
  st_measured_s : float;  (** measured diff-profile Mem-Transfer delta *)
  st_accepted : bool;
  st_reason : string;  (** "accepted" or "rejected: ..." *)
}

type t = {
  r_name : string;
  r_seed : int;
  r_devices : int;
  r_program : Minic.Ast.program;  (** final program, accepted edits applied *)
  r_steps : step list;
  r_accepted : int;
  r_predicted_s : float;  (** accepted total *)
  r_measured_s : float;
  r_total_before : float;  (** uninstrumented simulated time *)
  r_total_after : float;
  r_before : Obs.Profile.t;
  r_after : Obs.Profile.t;
  r_compile_hits : int;  (** shared kernel-store hits across the search *)
  r_compiles : int;
}

type config = {
  max_steps : int;
  check_devices : int list;
  seed : int;
  materiality : float;
}

val default_config : config

(** All rewrite candidates of [prog] under the given ledger analysis (the
    scoring run's outcome supplies the site→sid bridge and the transfer
    model's PCIe parameters). *)
val candidates :
  Minic.Ast.program -> Codegen.Tprog.t -> Obs.Ledger.analysis ->
  Accrt.Interp.outcome -> candidate list

(** Run the search.  [outputs] are the designated host-visible outputs
    whose bit-identity every accepted rewrite must preserve. *)
val run :
  ?config:config -> name:string -> outputs:string list ->
  Minic.Ast.program -> t

val json_version : int

(** Canonical deterministic JSON (schema [openarc.obs.saturate]). *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
