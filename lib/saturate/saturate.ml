(** Search-based automatic directive optimizer (ACC Saturator-style,
    arXiv 2306.13002).

    The data-movement ledger ({!Obs.Ledger}) already attributes every DMA
    transfer to a source site and prices the counterfactual rewrite that
    would eliminate it (hoist / copy→present / merge, "apply" verdicts
    only).  This module closes the loop: it turns those verdicts into
    concrete {!Acc.Edit} program rewrites — plus a purely structural
    kernel-fusion transformation the ledger cannot see — and runs a
    greedy-with-rollback search over them.

    Each step applies the highest-predicted-saving candidate and walks a
    validation ladder before committing:

    + static validity (directive well-formedness, typechecking);
    + print→reparse round trip to the structurally identical AST (the
      patched program must survive being written out);
    + §III-A kernel verification with the symbolic tier first
      ({!Openarc_core.Kernel_verify.verify} [~symbolic:true]), so proved
      kernels cost zero device launches;
    + bit-identical designated host outputs against the *original*
      program under both execution engines and 1/2/4-device sets;
    + measured corroboration: the diff-profile Mem-Transfer delta of the
      patched program must land within 0.25–4x of the ledger's predicted
      [saved_s] (the memtrace confirmation band).

    A candidate failing any rung is rolled back and blacklisted; after an
    accepted step the ledger re-runs on the patched program, so later
    candidates are ranked against the *remaining* waste.  The search
    stops when no material candidate is left (0.5% of the modeled
    transfer time) or the step budget is exhausted.

    Compiled-engine validation runs share one content-keyed kernel store
    ({!Accrt.Compile.store}) across all iterations: directive-only edits
    leave kernel bodies unchanged, so recompiles become
    [engine_compile_hits] instead of fresh compiles. *)

open Minic

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

type kind = Hoist | Present | Merge | Fuse

let kind_name = function
  | Hoist -> "hoist"
  | Present -> "present"
  | Merge -> "merge"
  | Fuse -> "fuse"

type candidate = {
  c_kind : kind;
  c_label : string;  (** stable human-readable identity (blacklist key) *)
  c_sites : string list;  (** contributing ledger site labels *)
  c_predicted_s : float;  (** modeled DMA saving (ledger-priced) *)
  c_edit : Ast.program -> Ast.program;
}

type step = {
  st_index : int;
  st_kind : kind;
  st_label : string;
  st_sites : string list;
  st_predicted_s : float;
  st_measured_s : float;  (** diff-profile Mem-Transfer delta *)
  st_accepted : bool;
  st_reason : string;  (** "accepted" or "rejected: ..." *)
}

type t = {
  r_name : string;
  r_seed : int;
  r_devices : int;
  r_program : Ast.program;  (** final program (edits applied) *)
  r_steps : step list;  (** in search order *)
  r_accepted : int;
  r_predicted_s : float;  (** accepted total *)
  r_measured_s : float;  (** accepted total, measured side *)
  r_total_before : float;  (** simulated time, uninstrumented *)
  r_total_after : float;
  r_before : Obs.Profile.t;
  r_after : Obs.Profile.t;
  r_compile_hits : int;  (** kernel-store hits across all search runs *)
  r_compiles : int;
}

type config = {
  max_steps : int;  (** candidate attempts (accepted or rejected) *)
  check_devices : int list;  (** device-set sizes of the output check *)
  seed : int;
  materiality : float;  (** min predicted share of modeled transfer time *)
}

let default_config =
  { max_steps = 16; check_devices = [ 1; 2; 4 ]; seed = 42;
    materiality = 0.005 }

(* ------------------------------------------------------------------ *)
(* Shared runners                                                      *)
(* ------------------------------------------------------------------ *)

let profile_categories =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

let mem_cat = Gpusim.Metrics.category_name Gpusim.Metrics.Mem_transfer

let translate prog =
  let env = Typecheck.check prog in
  Codegen.Translate.translate env prog

(* One instrumented, coherence-on, ledger-attached run: the scoring side
   of the search.  Conservation against the metrics accumulators is an
   invariant, not a tolerance. *)
let ledger_analysis ~name ~seed ~devices prog =
  let tp = Codegen.Checkgen.instrument (translate prog) in
  let lg =
    Obs.Ledger.create ~devices
      ~schedule:(Gpusim.Device_set.schedule_name Gpusim.Device_set.Block)
  in
  let o = Accrt.Interp.run ~coherence:true ~seed ~devices ~ledger:lg tp in
  let mh, md =
    Array.fold_left
      (fun (h, d) dev ->
        let m = dev.Gpusim.Device.metrics in
        (h + m.Gpusim.Metrics.bytes_h2d, d + m.Gpusim.Metrics.bytes_d2h))
      (0, 0) o.Accrt.Interp.devset.Gpusim.Device_set.devices
  in
  let lh, ld = Obs.Ledger.totals lg in
  if lh <> mh || ld <> md then
    Fmt.failwith
      "saturate: ledger conservation violated for %s (h2d %d vs %d, d2h \
       %d vs %d)"
      name lh mh ld md;
  let cm = o.Accrt.Interp.device.Gpusim.Device.cm in
  ( Obs.Ledger.analyze lg
      ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
      ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth,
    o )

(* One uninstrumented run under a span trace: the measured side of every
   prediction (same configuration as the committed profile baseline). *)
let profile_of ~seed ~devices prog =
  let tp = translate prog in
  let tr = Obs.Trace.create () in
  let o = Accrt.Interp.run ~coherence:false ~seed ~devices ~obs:tr tp in
  ( Obs.Profile.of_trace ~categories:profile_categories tr,
    Gpusim.Metrics.total_time (Accrt.Interp.metrics o) )

(* Measured Mem-Transfer saving of [after] over [before] (positive = the
   patched program moves less). *)
let mem_saving before after =
  let d = Obs.Diff.diff ~before ~after () in
  match
    List.find_opt (fun c -> c.Obs.Diff.cd_cat = mem_cat) d.Obs.Diff.d_totals
  with
  | Some c -> -.c.Obs.Diff.cd_delta
  | None -> 0.0

(* Designated outputs of two runs, compared bit-identically: directive
   edits move data, they must never change what the host computes. *)
let outputs_identical ~outputs o1 o2 =
  let env_of (o : Accrt.Interp.outcome) = o.Accrt.Interp.ctx.Accrt.Eval.env in
  List.for_all
    (fun name ->
      match
        (Accrt.Value.lookup (env_of o1) name,
         Accrt.Value.lookup (env_of o2) name)
      with
      | Some (Accrt.Value.Array { buf = Some b1; _ }),
        Some (Accrt.Value.Array { buf = Some b2; _ }) ->
          let _, bad = Gpusim.Buf.compare ~margin:0.0 ~reference:b1 b2 in
          bad = 0
      | Some (Accrt.Value.Scalar c1), Some (Accrt.Value.Scalar c2) ->
          Accrt.Value.to_float c1.Accrt.Value.v
          = Accrt.Value.to_float c2.Accrt.Value.v
      | _ -> false)
    outputs

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

let dk_name = function
  | Ast.Dk_copy -> "copy"
  | Ast.Dk_copyin -> "copyin"
  | Ast.Dk_copyout -> "copyout"
  | Ast.Dk_create -> "create"
  | Ast.Dk_present -> "present"
  | Ast.Dk_pcopy -> "pcopy"
  | Ast.Dk_pcopyin -> "pcopyin"
  | Ast.Dk_pcopyout -> "pcopyout"
  | Ast.Dk_pcreate -> "pcreate"
  | Ast.Dk_deviceptr -> "deviceptr"

(* (site label, loc string) -> source sid, from the executed sites of the
   scoring run — the bridge from ledger site reports back to the AST. *)
let site_sid_table (o : Accrt.Interp.outcome) =
  let tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ ((site : Codegen.Tprog.site), _, _) ->
      Hashtbl.replace tbl
        (site.Codegen.Tprog.site_label,
         Minic.Loc.to_string site.Codegen.Tprog.site_loc)
        site.Codegen.Tprog.site_sid)
    o.Accrt.Interp.sites;
  tbl

let apply_sites ~rewrite (a : Obs.Ledger.analysis) =
  List.filter
    (fun (s : Obs.Ledger.site_report) ->
      s.Obs.Ledger.s_verdict = "apply" && s.Obs.Ledger.s_rewrite = rewrite)
    a.Obs.Ledger.a_sites

(* Is [v] written by any translated kernel whose source statement lies in
   [sids]?  Decides copy vs copyin when a data region is introduced. *)
let written_within (tp : Codegen.Tprog.t) sids v =
  Array.exists
    (fun (k : Codegen.Tprog.kernel) ->
      List.mem k.Codegen.Tprog.k_sid sids
      && Analysis.Varset.mem v k.Codegen.Tprog.k_arrays_written)
    tp.Codegen.Tprog.kernels

(* Hoist: every apply-verdict "hoist" site under the same innermost
   enclosing loop becomes one candidate — wrap that loop in a data region
   naming each hoisted array (copy when some kernel under the loop writes
   it, copyin otherwise).  The static presence check then elides every
   per-iteration transfer the ledger priced. *)
let hoist_candidates prog (tp : Codegen.Tprog.t) analysis sidtbl =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Ledger.site_report) ->
      match Hashtbl.find_opt sidtbl (s.Obs.Ledger.s_site, s.Obs.Ledger.s_loc)
      with
      | None -> ()
      | Some sid -> (
          match Acc.Edit.enclosing_loop prog ~sid with
          | None -> ()
          | Some loop ->
              let sites =
                match Hashtbl.find_opt groups loop.Ast.sid with
                | Some (_, sites) -> sites
                | None ->
                    let sites = ref [] in
                    Hashtbl.add groups loop.Ast.sid (loop, sites);
                    sites
              in
              sites := s :: !sites))
    (apply_sites ~rewrite:"hoist" analysis);
  Hashtbl.fold
    (fun loop_sid ((loop : Ast.stmt), sites) acc ->
      let sites = List.rev !sites in
      let loop_sids = Acc.Edit.sids_of_stmt loop in
      let vars =
        List.sort_uniq compare
          (List.map (fun s -> s.Obs.Ledger.s_array) sites)
      in
      let clauses =
        List.map
          (fun v ->
            ( v,
              if written_within tp loop_sids v then Ast.Dk_copy
              else Ast.Dk_copyin ))
          vars
      in
      let directive = Acc.Edit.mk_data_directive ~loc:loop.Ast.sloc clauses in
      { c_kind = Hoist;
        c_label =
          Fmt.str "hoist data(%s) around loop at %s"
            (String.concat ", "
               (List.map (fun (v, k) -> dk_name k ^ " " ^ v) clauses))
            (Minic.Loc.to_string loop.Ast.sloc);
        c_sites = List.map (fun s -> s.Obs.Ledger.s_site) sites;
        c_predicted_s =
          List.fold_left (fun a s -> a +. s.Obs.Ledger.s_saved_s) 0.0 sites;
        c_edit =
          (fun p -> Acc.Edit.wrap_stmt p ~sid:loop_sid ~directive) }
      :: acc)
    groups []

(* Present: an apply-verdict "present" site proved every transfer in its
   direction redundant (the destination was already fresh).  The edit
   pins the array to an explicit clause on the carrying directive that
   keeps only the still-needed direction: both directions redundant →
   present; uploads redundant → copyout (or present when nothing under
   the directive writes it); downloads redundant → copyin. *)
let present_candidates prog (tp : Codegen.Tprog.t) analysis sidtbl =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Ledger.site_report) ->
      match Hashtbl.find_opt sidtbl (s.Obs.Ledger.s_site, s.Obs.Ledger.s_loc)
      with
      | None -> ()
      | Some sid ->
          let key = (sid, s.Obs.Ledger.s_array) in
          let entry =
            match Hashtbl.find_opt groups key with
            | Some e -> e
            | None ->
                let e = ref [] in
                Hashtbl.add groups key e;
                e
          in
          entry := s :: !entry)
    (apply_sites ~rewrite:"present" analysis);
  (* Subtree sids of every statement, resolved lazily per directive. *)
  let subtree_sids sid =
    let result = ref [] in
    List.iter
      (fun (f : Ast.func) ->
        Ast.iter_stmts
          (fun st ->
            if st.Ast.sid = sid then result := Acc.Edit.sids_of_stmt st)
          f.Ast.f_body)
      (Ast.functions prog);
    !result
  in
  Hashtbl.fold
    (fun (sid, var) sites acc ->
      let sites = List.rev !sites in
      let has dir =
        List.exists (fun s -> s.Obs.Ledger.s_dir = dir) sites
      in
      let written = written_within tp (subtree_sids sid) var in
      (* An enclosing region naming the array makes [present] legal;
         otherwise this directive is the array's allocator and the
         proven-redundant directions weaken to the create family. *)
      let covered =
        List.exists
          (fun (rsid, _, rsids) -> rsid <> sid && List.mem sid rsids)
          (Acc.Edit.regions_with_var prog ~var)
      in
      let kind =
        match (has Obs.Ledger.H2d, has Obs.Ledger.D2h) with
        | true, true -> if covered then Ast.Dk_present else Ast.Dk_create
        | true, false ->
            if written then Ast.Dk_copyout
            else if covered then Ast.Dk_present
            else Ast.Dk_create
        | false, true -> Ast.Dk_copyin
        | false, false -> if covered then Ast.Dk_present else Ast.Dk_create
      in
      { c_kind = Present;
        c_label =
          Fmt.str "pin %s to %s on %s" var (dk_name kind)
            (match sites with
            | s :: _ -> s.Obs.Ledger.s_site ^ " at " ^ s.Obs.Ledger.s_loc
            | [] -> Fmt.str "sid %d" sid);
        c_sites = List.map (fun s -> s.Obs.Ledger.s_site) sites;
        c_predicted_s =
          List.fold_left (fun a s -> a +. s.Obs.Ledger.s_saved_s) 0.0 sites;
        c_edit =
          (fun p ->
            Acc.Edit.map_directive p ~sid ~f:(fun d ->
                { d with
                  Ast.clauses =
                    Acc.Edit.set_data_kind d.Ast.clauses var kind })) }
      :: acc)
    groups []

(* Merge: apply-verdict "merge" sites are D2H→H2D round trips between
   adjacent kernels on the same array.  The edit wraps the top-level span
   of main covering every such site for that array in one data region, so
   the intermediate round trip stays on the device. *)
let merge_candidates (tp : Codegen.Tprog.t) analysis sidtbl =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Ledger.site_report) ->
      match Hashtbl.find_opt sidtbl (s.Obs.Ledger.s_site, s.Obs.Ledger.s_loc)
      with
      | None -> ()
      | Some sid ->
          let entry =
            match Hashtbl.find_opt groups s.Obs.Ledger.s_array with
            | Some e -> e
            | None ->
                let e = ref [] in
                Hashtbl.add groups s.Obs.Ledger.s_array e;
                e
          in
          entry := (sid, s) :: !entry)
    (apply_sites ~rewrite:"merge" analysis);
  Hashtbl.fold
    (fun var entries acc ->
      let entries = List.rev !entries in
      let sids = List.map fst entries in
      let sites = List.map snd entries in
      (* sids are assigned in parse order, so min/max bound the source
         span the new region must cover. *)
      let first_sid = List.fold_left min (List.hd sids) sids in
      let last_sid = List.fold_left max (List.hd sids) sids in
      let written =
        Array.exists
          (fun (k : Codegen.Tprog.kernel) ->
            Analysis.Varset.mem var k.Codegen.Tprog.k_arrays_written)
          tp.Codegen.Tprog.kernels
      in
      let kind = if written then Ast.Dk_copy else Ast.Dk_copyin in
      let directive = Acc.Edit.mk_data_directive [ (var, kind) ] in
      { c_kind = Merge;
        c_label =
          Fmt.str "merge data(%s %s) across sids %d-%d" (dk_name kind) var
            first_sid last_sid;
        c_sites = List.map (fun s -> s.Obs.Ledger.s_site) sites;
        c_predicted_s =
          List.fold_left (fun a s -> a +. s.Obs.Ledger.s_saved_s) 0.0 sites;
        c_edit =
          (fun p -> Acc.Edit.wrap_span p ~first_sid ~last_sid ~directive) }
      :: acc)
    groups []

(* Replace the adjacent pair (sid1, sid2) of compute-loop statements with
   one directive carrying the fused loop (clause union, bodies
   concatenated under the first header). *)
let fuse_edit prog ~sid1 ~sid2 =
  let fuse s1 s2 =
    match (s1.Ast.skind, s2.Ast.skind) with
    | Ast.Sacc (d1, Some b1), Ast.Sacc (d2, Some b2) -> (
        match (b1.Ast.skind, b2.Ast.skind) with
        | Ast.Sfor (i, c, st, body1), Ast.Sfor (_, _, _, body2) ->
            let clauses =
              d1.Ast.clauses
              @ List.filter
                  (fun cl -> not (List.mem cl d1.Ast.clauses))
                  d2.Ast.clauses
            in
            let fused_loop =
              Ast.mk_stmt ~loc:b1.Ast.sloc
                (Ast.Sfor (i, c, st, body1 @ body2))
            in
            Some
              (Ast.mk_stmt ~loc:s1.Ast.sloc
                 (Ast.Sacc ({ d1 with Ast.clauses }, Some fused_loop)))
        | _ -> None)
    | _ -> None
  in
  let rec fix_block b =
    let b = List.map fix_stmt b in
    let rec go = function
      | s1 :: s2 :: rest when s1.Ast.sid = sid1 && s2.Ast.sid = sid2 -> (
          match fuse s1 s2 with
          | Some fused -> fused :: go rest
          | None -> s1 :: go (s2 :: rest))
      | s :: rest -> s :: go rest
      | [] -> []
    in
    go b
  and fix_stmt (s : Ast.stmt) =
    let skind =
      match s.Ast.skind with
      | (Ast.Sskip | Ast.Sexpr _ | Ast.Sassign _ | Ast.Sdecl _
        | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue) as k -> k
      | Ast.Sif (c, b1, b2) -> Ast.Sif (c, fix_block b1, fix_block b2)
      | Ast.Swhile (c, b) -> Ast.Swhile (c, fix_block b)
      | Ast.Sfor (i, c, st, b) -> Ast.Sfor (i, c, st, fix_block b)
      | Ast.Sblock b -> Ast.Sblock (fix_block b)
      | Ast.Sacc (d, body) -> Ast.Sacc (d, Option.map fix_stmt body)
    in
    { s with Ast.skind }
  in
  { Ast.globals =
      List.map
        (function
          | Ast.Gfunc fn ->
              Ast.Gfunc { fn with Ast.f_body = fix_block fn.Ast.f_body }
          | g -> g)
        prog.Ast.globals }

(* Fuse: purely structural — two adjacent compute-loop directives whose
   loops have structurally equal headers, no reductions, and disjoint
   write footprints fuse into one kernel; the shared arrays' second
   upload/download round disappears with the second launch.  The ledger
   has no "fuse" verdict, so the saving is priced from the second
   kernel's transfer sites on shared arrays under the same noise-free
   transfer model the ledger uses. *)
let fuse_candidates prog (tp : Codegen.Tprog.t) analysis ~pcie_latency
    ~pcie_bandwidth =
  let kernel_at sid =
    Array.fold_left
      (fun found (k : Codegen.Tprog.kernel) ->
        if k.Codegen.Tprog.k_sid = sid then Some k else found)
      None tp.Codegen.Tprog.kernels
  in
  let is_compute_loop (d : Ast.directive) =
    match d.Ast.dir with
    | Ast.Acc_parallel_loop | Ast.Acc_kernels_loop -> true
    | _ -> false
  in
  let cands = ref [] in
  let consider (s1 : Ast.stmt) (s2 : Ast.stmt) =
    match (s1.Ast.skind, s2.Ast.skind) with
    | Ast.Sacc (d1, Some b1), Ast.Sacc (d2, Some b2)
      when is_compute_loop d1 && is_compute_loop d2 -> (
        match
          (b1.Ast.skind, b2.Ast.skind, kernel_at s1.Ast.sid,
           kernel_at s2.Ast.sid)
        with
        | Ast.Sfor (i1, c1, st1, _), Ast.Sfor (i2, c2, st2, _),
          Some k1, Some k2 ->
            let open Codegen.Tprog in
            let headers_equal =
              Option.equal Ast.equal_stmt i1 i2
              && Option.equal Ast.equal_expr c1 c2
              && Option.equal Ast.equal_stmt st1 st2
            in
            let r1 = k1.k_arrays_read and w1 = k1.k_arrays_written in
            let r2 = k2.k_arrays_read and w2 = k2.k_arrays_written in
            let disjoint =
              Analysis.Varset.disjoint w1 (Analysis.Varset.union r2 w2)
              && Analysis.Varset.disjoint w2 r1
            in
            let shared =
              Analysis.Varset.inter
                (Analysis.Varset.union r1 w1)
                (Analysis.Varset.union r2 w2)
            in
            if
              headers_equal && disjoint
              && (not k1.k_has_reduction) && (not k2.k_has_reduction)
              && (not k1.k_seq) && (not k2.k_seq)
              && not (Analysis.Varset.is_empty shared)
            then begin
              (* Price the second kernel's transfer sites on shared
                 arrays: fused, those transfers are subsumed by the first
                 kernel's. *)
              let prefix = k2.k_name ^ "." in
              let plen = String.length prefix in
              let saved, labels =
                List.fold_left
                  (fun (acc, ls) (s : Obs.Ledger.site_report) ->
                    if
                      String.length s.Obs.Ledger.s_site > plen
                      && String.sub s.Obs.Ledger.s_site 0 plen = prefix
                      && Analysis.Varset.mem s.Obs.Ledger.s_array shared
                    then
                      ( acc
                        +. (float_of_int s.Obs.Ledger.s_transfers
                            *. pcie_latency)
                        +. (float_of_int s.Obs.Ledger.s_bytes
                            /. pcie_bandwidth),
                        s.Obs.Ledger.s_site :: ls )
                    else (acc, ls))
                  (0.0, []) analysis.Obs.Ledger.a_sites
              in
              if saved > 0.0 then
                let sid1 = s1.Ast.sid and sid2 = s2.Ast.sid in
                cands :=
                  { c_kind = Fuse;
                    c_label =
                      Fmt.str "fuse %s into %s" k2.k_name k1.k_name;
                    c_sites = List.rev labels;
                    c_predicted_s = saved;
                    c_edit = (fun p -> fuse_edit p ~sid1 ~sid2) }
                  :: !cands
            end
        | _ -> ())
    | _ -> ()
  in
  let rec scan_block b =
    (match b with
    | s1 :: (s2 :: _ as rest) ->
        consider s1 s2;
        scan_block rest
    | _ -> ());
    List.iter scan_stmt b
  and scan_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Ast.Sif (_, b1, b2) -> scan_block b1; scan_block b2
    | Ast.Swhile (_, b) | Ast.Sfor (_, _, _, b) | Ast.Sblock b ->
        scan_block b
    | Ast.Sacc (_, body) -> Option.iter scan_stmt body
    | Ast.Sskip | Ast.Sexpr _ | Ast.Sassign _ | Ast.Sdecl _ | Ast.Sreturn _
    | Ast.Sbreak | Ast.Scontinue -> ()
  in
  List.iter (fun (f : Ast.func) -> scan_block f.Ast.f_body)
    (Ast.functions prog);
  !cands

let candidates prog tp analysis outcome =
  let sidtbl = site_sid_table outcome in
  let cm = outcome.Accrt.Interp.device.Gpusim.Device.cm in
  hoist_candidates prog tp analysis sidtbl
  @ present_candidates prog tp analysis sidtbl
  @ merge_candidates tp analysis sidtbl
  @ fuse_candidates prog tp analysis
      ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
      ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

exception Rejected of string

let run ?(config = default_config) ~name ~outputs prog0 =
  Ast.with_sid_base @@ fun () ->
  (* Rebase the program onto canonical sids (a print/reparse round trip
     under the rebased allocator): sids leak into directive-site labels
     (`data<sid>.copyin(v)`) and from there into the report, so the
     search must not observe how many statements the process parsed
     before it. *)
  let prog0 =
    Parser.parse_string ~file:"<saturate>" (Pretty.program_to_string prog0)
  in
  let seed = config.seed in
  let store = Accrt.Compile.create_store () in
  let hits = ref 0 and compiles = ref 0 in
  (* Compiled-engine run sharing the cross-iteration kernel store; its
     counters accumulate into the search-wide hit/compile totals. *)
  let compiled_run ~devices prog =
    let tr = Obs.Trace.create () in
    let o =
      Accrt.Interp.run ~coherence:false ~engine:Accrt.Engine.Compiled ~seed
        ~devices ~obs:tr ~kcache:store (translate prog)
    in
    List.iter
      (fun (n, v) ->
        if n = "engine_compile_hits" then hits := !hits + v
        else if n = "engine_compiles" then compiles := !compiles + v)
      (Obs.Trace.counters tr);
    o
  in
  let tree_run ~devices prog =
    Accrt.Interp.run ~coherence:false ~seed ~devices (translate prog)
  in
  (* Reference outcomes of the *original* program, one per checked
     configuration — computed once, compared against every candidate. *)
  let reference =
    List.concat_map
      (fun devices ->
        [ ((Accrt.Engine.Tree, devices), tree_run ~devices prog0);
          ((Accrt.Engine.Compiled, devices), compiled_run ~devices prog0) ])
      config.check_devices
  in
  let validate cand_prog =
    (* 1. static validity *)
    (try
       Acc.Validate.check_program cand_prog;
       ignore (Typecheck.check cand_prog)
     with e -> raise (Rejected ("invalid program: " ^ Printexc.to_string e)));
    (* 2. print -> reparse round trip *)
    let printed = Pretty.program_to_string cand_prog in
    let reparsed =
      try Parser.parse_string ~file:"<saturate>" printed
      with e ->
        raise (Rejected ("patched source unparseable: " ^ Printexc.to_string e))
    in
    if not (Ast.equal_program reparsed cand_prog) then
      raise (Rejected "print/reparse round trip diverged");
    (* 3. kernel verification, symbolic tier first *)
    let kv =
      try Openarc_core.Kernel_verify.verify ~symbolic:true cand_prog
      with e ->
        raise
          (Rejected ("kernel verification crashed: " ^ Printexc.to_string e))
    in
    (match Openarc_core.Kernel_verify.detected_errors kv with
    | [] -> ()
    | errs ->
        raise
          (Rejected
             (Fmt.str "kernel verification failed (%d kernel(s))"
                (List.length errs))));
    (* 4. bit-identical outputs, both engines x every device-set size.
       A candidate whose run *crashes* (e.g. a rewrite that breaks an
       allocation invariant) is rejected the same way. *)
    List.iter
      (fun ((engine, devices), ref_o) ->
        let ename =
          match engine with
          | Accrt.Engine.Tree -> "tree"
          | Accrt.Engine.Compiled -> "compiled"
        in
        let o =
          try
            match engine with
            | Accrt.Engine.Tree -> tree_run ~devices cand_prog
            | Accrt.Engine.Compiled -> compiled_run ~devices cand_prog
          with e ->
            raise
              (Rejected
                 (Fmt.str "run failed (%s engine, %d device(s)): %s" ename
                    devices (Printexc.to_string e)))
        in
        if not (outputs_identical ~outputs ref_o o) then
          raise
            (Rejected
               (Fmt.str "outputs diverged (%s engine, %d device(s))" ename
                  devices)))
      reference
  in
  let before, total_before = profile_of ~seed ~devices:1 prog0 in
  let prog = ref prog0 in
  let cur_profile = ref before in
  let steps = ref [] in
  let step_idx = ref 0 in
  let rejected = Hashtbl.create 8 in
  let finished = ref false in
  while (not !finished) && !step_idx < config.max_steps do
    let analysis, outcome = ledger_analysis ~name ~seed ~devices:1 !prog in
    let tp = outcome.Accrt.Interp.tprog in
    let floor = config.materiality *. analysis.Obs.Ledger.a_transfer_s in
    let cands =
      candidates !prog tp analysis outcome
      |> List.filter (fun c ->
             (not (Hashtbl.mem rejected c.c_label))
             && c.c_predicted_s > 0.0
             && c.c_predicted_s >= floor)
      |> List.sort (fun a b -> compare b.c_predicted_s a.c_predicted_s)
    in
    match cands with
    | [] -> finished := true
    | c :: _ -> (
        let index = !step_idx in
        incr step_idx;
        let record ~measured ~accepted ~reason =
          steps :=
            { st_index = index;
              st_kind = c.c_kind;
              st_label = c.c_label;
              st_sites = c.c_sites;
              st_predicted_s = c.c_predicted_s;
              st_measured_s = measured;
              st_accepted = accepted;
              st_reason = reason }
            :: !steps
        in
        let reject reason =
          Hashtbl.replace rejected c.c_label ();
          record ~measured:0.0 ~accepted:false ~reason:("rejected: " ^ reason)
        in
        match c.c_edit !prog with
        | exception e -> reject ("edit failed: " ^ Printexc.to_string e)
        | cand_prog when Ast.equal_program cand_prog !prog ->
            reject "no-op edit"
        | cand_prog -> (
            match validate cand_prog with
            | exception Rejected reason -> reject reason
            | () -> (
                match profile_of ~seed ~devices:1 cand_prog with
                | exception e ->
                    reject
                      ("measurement run failed: " ^ Printexc.to_string e)
                | after_profile, _ ->
                    let measured = mem_saving !cur_profile after_profile in
                    if
                      measured >= 0.25 *. c.c_predicted_s
                      && measured <= 4.0 *. c.c_predicted_s
                    then begin
                      prog := cand_prog;
                      cur_profile := after_profile;
                      record ~measured ~accepted:true ~reason:"accepted"
                    end
                    else
                      reject
                        (Fmt.str
                           "measured %.9f s outside 0.25-4x of predicted \
                            %.9f s"
                           measured c.c_predicted_s))))
  done;
  let after, total_after = profile_of ~seed ~devices:1 !prog in
  let steps = List.rev !steps in
  let accepted = List.filter (fun s -> s.st_accepted) steps in
  { r_name = name;
    r_seed = seed;
    r_devices = 1;
    r_program = !prog;
    r_steps = steps;
    r_accepted = List.length accepted;
    r_predicted_s =
      List.fold_left (fun a s -> a +. s.st_predicted_s) 0.0 accepted;
    r_measured_s =
      List.fold_left (fun a s -> a +. s.st_measured_s) 0.0 accepted;
    r_total_before = total_before;
    r_total_after = total_after;
    r_before = before;
    r_after = after;
    r_compile_hits = !hits;
    r_compiles = !compiles }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_version = 1

let to_json (r : t) =
  let buf = Buffer.create 4096 in
  let str = Obs.Trace.json_str in
  Buffer.add_string buf
    (Fmt.str
       "{\n\"schema\": %s,\n\"version\": %d,\n\"name\": %s,\n\"seed\": \
        %d,\n\"devices\": %d,\n\"steps\": [\n"
       (str (Obs.Trace.schema ^ ".saturate"))
       json_version (str r.r_name) r.r_seed r.r_devices);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Fmt.str
           "{\"index\": %d, \"kind\": %s, \"candidate\": %s, \"sites\": \
            [%s], \"predicted_saved_s\": %.9f, \"measured_saved_s\": %.9f, \
            \"accepted\": %b, \"reason\": %s}"
           s.st_index
           (str (kind_name s.st_kind))
           (str s.st_label)
           (String.concat ", " (List.map str s.st_sites))
           s.st_predicted_s s.st_measured_s s.st_accepted (str s.st_reason)))
    r.r_steps;
  Buffer.add_string buf
    (Fmt.str
       "\n],\n\"accepted\": %d,\n\"predicted_saved_s\": %.9f,\n\
        \"measured_saved_s\": %.9f,\n\"total_before_s\": %.9f,\n\
        \"total_after_s\": %.9f,\n\"engine_compile_hits\": %d,\n\
        \"engine_compiles\": %d\n}\n"
       r.r_accepted r.r_predicted_s r.r_measured_s r.r_total_before
       r.r_total_after r.r_compile_hits r.r_compiles);
  Buffer.contents buf

let pp ppf (r : t) =
  Fmt.pf ppf "saturate %s: %d step(s), %d accepted@." r.r_name
    (List.length r.r_steps) r.r_accepted;
  List.iter
    (fun s ->
      Fmt.pf ppf "  [%d] %-7s %-52s predicted %.9f s%s@." s.st_index
        (kind_name s.st_kind)
        (if String.length s.st_label > 52 then
           String.sub s.st_label 0 49 ^ "..."
         else s.st_label)
        s.st_predicted_s
        (if s.st_accepted then
           Fmt.str "  measured %.9f s  ACCEPTED" s.st_measured_s
         else "  " ^ s.st_reason))
    r.r_steps;
  Fmt.pf ppf
    "  simulated time %.9f s -> %.9f s (%.1f%% reduction); accepted \
     predicted %.9f s, measured %.9f s; %d kernel-store hit(s)@."
    r.r_total_before r.r_total_after
    (if r.r_total_before > 0.0 then
       (r.r_total_before -. r.r_total_after) /. r.r_total_before *. 100.0
     else 0.0)
    r.r_predicted_s r.r_measured_s r.r_compile_hits
