(** Abstract syntax of Mini-C with OpenACC directives.

    Mini-C is the C subset that the OpenARC reproduction compiles: scalar
    [int]/[float] (double precision) variables, one-dimensional arrays with
    possibly run-time extents, pointers used for array aliasing, structured
    control flow, and function definitions.  OpenACC V1.0 directives are part
    of the surface syntax ([Sacc] statements). *)

type typ =
  | Tvoid
  | Tint
  | Tfloat  (** C [double]; the only floating type in Mini-C *)
  | Tarr of typ * expr option  (** array with optional extent expression *)
  | Tptr of typ  (** pointer, used to alias arrays *)

and unop = Neg | Not

and binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

and expr =
  | Eint of int
  | Efloat of float
  | Evar of string
  | Eindex of expr * expr  (** [a\[i\]] *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list  (** builtin math / intrinsic call *)
  | Econd of expr * expr * expr  (** [c ? a : b] *)

(** {1 OpenACC directives} *)

(** Reduction operators of the [reduction] clause. *)
type redop = Rsum | Rprod | Rmax | Rmin | Rland | Rlor

(** A data-clause argument: [a] or the subarray [a\[lo:len\]]. *)
type subarray = { sub_var : string; sub_lo : expr option; sub_len : expr option }

(** Data-clause kinds of OpenACC V1.0 ([pcopy] is [present_or_copy], etc.). *)
type data_kind =
  | Dk_copy | Dk_copyin | Dk_copyout | Dk_create | Dk_present
  | Dk_pcopy | Dk_pcopyin | Dk_pcopyout | Dk_pcreate
  | Dk_deviceptr

type clause =
  | Cdata of data_kind * subarray list
  | Cprivate of string list
  | Cfirstprivate of string list
  | Creduction of redop * string list
  | Cgang of expr option
  | Cworker of expr option
  | Cvector of expr option
  | Cnum_gangs of expr
  | Cnum_workers of expr
  | Cvector_length of expr
  | Casync of expr option
  | Cif of expr
  | Ccollapse of int
  | Cseq
  | Cindependent
  | Chost of subarray list  (** [update host(...)] *)
  | Cdevice of subarray list  (** [update device(...)] *)
  | Cuse_device of string list  (** [host_data use_device(...)] *)

type construct =
  | Acc_parallel
  | Acc_kernels
  | Acc_data
  | Acc_host_data
  | Acc_loop
  | Acc_parallel_loop
  | Acc_kernels_loop
  | Acc_update
  | Acc_declare
  | Acc_wait of expr option
  | Acc_cache of subarray list

type directive = { dir : construct; clauses : clause list; dloc : Loc.t }

(** {1 Statements} *)

type lvalue = Lvar of string | Lindex of lvalue * expr

type stmt = { sid : int;  (** unique id within a parsed program *)
              sloc : Loc.t;
              skind : skind }

and skind =
  | Sskip
  | Sexpr of expr
  | Sassign of lvalue * expr
  | Sdecl of typ * string * expr option
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
      (** [for (init; cond; step) body] *)
  | Sblock of block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sacc of directive * stmt option
      (** directive applied to a following statement; [None] for standalone
          directives ([update], [wait], [declare], [cache]) *)

and block = stmt list

type param = { p_typ : typ; p_name : string }

type func = {
  f_ret : typ;
  f_name : string;
  f_params : param list;
  f_body : block;
  f_loc : Loc.t;
}

type global =
  | Gfunc of func
  | Gvar of typ * string * expr option

type program = { globals : global list }

(** {1 Constructors and accessors} *)

let stmt_counter = ref 0

(** Fresh statement with a program-unique id. *)
let mk_stmt ?(loc = Loc.dummy) skind =
  incr stmt_counter;
  { sid = !stmt_counter; sloc = loc; skind }

(** Run [f] with the statement-id allocator rebased to zero, so programs
    built inside [f] carry process-history-independent sids (the saturate
    search depends on this: sids leak into directive-site labels, and its
    canonical reports must not vary with whatever was parsed earlier in
    the process).  The allocator is restored on exit to whichever of the
    outer and inner high-water marks is larger, so sids stay unique
    across the boundary. *)
let with_sid_base f =
  let saved = !stmt_counter in
  stmt_counter := 0;
  Fun.protect
    ~finally:(fun () -> stmt_counter := max saved !stmt_counter)
    f

let functions prog =
  List.filter_map (function Gfunc f -> Some f | Gvar _ -> None) prog.globals

let find_function prog name =
  List.find_opt (fun f -> f.f_name = name) (functions prog)

let main_function prog =
  match find_function prog "main" with
  | Some f -> f
  | None -> invalid_arg "Ast.main_function: program has no main"

(** Root variable of an lvalue ([a] for [a\[i\]\[j\]]). *)
let rec lvalue_root = function
  | Lvar v -> v
  | Lindex (lv, _) -> lvalue_root lv

let rec lvalue_to_expr = function
  | Lvar v -> Evar v
  | Lindex (lv, e) -> Eindex (lvalue_to_expr lv, e)

(** [expr_to_lvalue e] converts an index/var expression back to an lvalue. *)
let rec expr_to_lvalue = function
  | Evar v -> Some (Lvar v)
  | Eindex (e, i) -> (
      match expr_to_lvalue e with
      | Some lv -> Some (Lindex (lv, i))
      | None -> None)
  | _ -> None

(** {1 Traversals} *)

(** [fold_expr_vars f acc e] folds [f] over every variable occurrence in [e]. *)
let rec fold_expr_vars f acc = function
  | Eint _ | Efloat _ -> acc
  | Evar v -> f acc v
  | Eindex (e1, e2) | Ebinop (_, e1, e2) ->
      fold_expr_vars f (fold_expr_vars f acc e1) e2
  | Eunop (_, e) -> fold_expr_vars f acc e
  | Ecall (_, args) -> List.fold_left (fold_expr_vars f) acc args
  | Econd (c, a, b) ->
      fold_expr_vars f (fold_expr_vars f (fold_expr_vars f acc c) a) b

let expr_vars e =
  List.rev (fold_expr_vars (fun acc v -> v :: acc) [] e)

(** Iterate [f] over every statement in a block, pre-order, descending into
    all nested blocks (including directive bodies). *)
let rec iter_stmts f block = List.iter (iter_stmt f) block

and iter_stmt f s =
  f s;
  match s.skind with
  | Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue -> ()
  | Sif (_, b1, b2) -> iter_stmts f b1; iter_stmts f b2
  | Swhile (_, b) -> iter_stmts f b
  | Sfor (init, _, step, b) ->
      Option.iter (iter_stmt f) init;
      Option.iter (iter_stmt f) step;
      iter_stmts f b
  | Sblock b -> iter_stmts f b
  | Sacc (_, body) -> Option.iter (iter_stmt f) body

(** Rebuild a statement tree bottom-up. [f] receives each statement with
    already-rewritten children and returns its replacement. *)
let rec map_stmt f s =
  let skind =
    match s.skind with
    | (Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue)
      as k -> k
    | Sif (c, b1, b2) -> Sif (c, map_block f b1, map_block f b2)
    | Swhile (c, b) -> Swhile (c, map_block f b)
    | Sfor (init, cond, step, b) ->
        Sfor (Option.map (map_stmt f) init, cond,
              Option.map (map_stmt f) step, map_block f b)
    | Sblock b -> Sblock (map_block f b)
    | Sacc (dir, body) -> Sacc (dir, Option.map (map_stmt f) body)
  in
  f { s with skind }

and map_block f b = List.map (map_stmt f) b

let map_program f prog =
  let globals =
    List.map
      (function
        | Gfunc fn -> Gfunc { fn with f_body = map_block f fn.f_body }
        | Gvar _ as g -> g)
      prog.globals
  in
  { globals }

(** {1 Structural equality modulo statement ids and locations}

    Used by the parser/pretty-printer round-trip property tests. *)

let rec equal_typ t1 t2 =
  match (t1, t2) with
  | Tvoid, Tvoid | Tint, Tint | Tfloat, Tfloat -> true
  | Tarr (a, e1), Tarr (b, e2) -> equal_typ a b && Option.equal equal_expr e1 e2
  | Tptr a, Tptr b -> equal_typ a b
  | (Tvoid | Tint | Tfloat | Tarr _ | Tptr _), _ -> false

and equal_expr e1 e2 =
  match (e1, e2) with
  | Eint a, Eint b -> a = b
  | Efloat a, Efloat b -> Float.equal a b
  | Evar a, Evar b -> a = b
  | Eindex (a1, a2), Eindex (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Eunop (o1, a), Eunop (o2, b) -> o1 = o2 && equal_expr a b
  | Ebinop (o1, a1, a2), Ebinop (o2, b1, b2) ->
      o1 = o2 && equal_expr a1 b1 && equal_expr a2 b2
  | Ecall (f1, a1), Ecall (f2, a2) ->
      f1 = f2 && List.length a1 = List.length a2 && List.for_all2 equal_expr a1 a2
  | Econd (c1, a1, b1), Econd (c2, a2, b2) ->
      equal_expr c1 c2 && equal_expr a1 a2 && equal_expr b1 b2
  | (Eint _ | Efloat _ | Evar _ | Eindex _ | Eunop _ | Ebinop _ | Ecall _
    | Econd _), _ -> false

let equal_subarray s1 s2 =
  s1.sub_var = s2.sub_var
  && Option.equal equal_expr s1.sub_lo s2.sub_lo
  && Option.equal equal_expr s1.sub_len s2.sub_len

let equal_clause c1 c2 =
  match (c1, c2) with
  | Cdata (k1, l1), Cdata (k2, l2) ->
      k1 = k2 && List.length l1 = List.length l2
      && List.for_all2 equal_subarray l1 l2
  | Cprivate a, Cprivate b | Cfirstprivate a, Cfirstprivate b
  | Cuse_device a, Cuse_device b -> a = b
  | Creduction (o1, a), Creduction (o2, b) -> o1 = o2 && a = b
  | Cgang a, Cgang b | Cworker a, Cworker b | Cvector a, Cvector b
  | Casync a, Casync b -> Option.equal equal_expr a b
  | Cnum_gangs a, Cnum_gangs b | Cnum_workers a, Cnum_workers b
  | Cvector_length a, Cvector_length b | Cif a, Cif b -> equal_expr a b
  | Ccollapse a, Ccollapse b -> a = b
  | Cseq, Cseq | Cindependent, Cindependent -> true
  | Chost a, Chost b | Cdevice a, Cdevice b ->
      List.length a = List.length b && List.for_all2 equal_subarray a b
  | (Cdata _ | Cprivate _ | Cfirstprivate _ | Creduction _ | Cgang _
    | Cworker _ | Cvector _ | Cnum_gangs _ | Cnum_workers _ | Cvector_length _
    | Casync _ | Cif _ | Ccollapse _ | Cseq | Cindependent | Chost _
    | Cdevice _ | Cuse_device _), _ -> false

let equal_construct c1 c2 =
  match (c1, c2) with
  | Acc_wait a, Acc_wait b -> Option.equal equal_expr a b
  | Acc_cache a, Acc_cache b ->
      List.length a = List.length b && List.for_all2 equal_subarray a b
  | (Acc_parallel | Acc_kernels | Acc_data | Acc_host_data | Acc_loop
    | Acc_parallel_loop | Acc_kernels_loop | Acc_update | Acc_declare), _ ->
      c1 = c2
  | (Acc_wait _ | Acc_cache _), _ -> false

let equal_directive d1 d2 =
  equal_construct d1.dir d2.dir
  && List.length d1.clauses = List.length d2.clauses
  && List.for_all2 equal_clause d1.clauses d2.clauses

let equal_lvalue l1 l2 = equal_expr (lvalue_to_expr l1) (lvalue_to_expr l2)

let rec equal_stmt s1 s2 =
  match (s1.skind, s2.skind) with
  | Sskip, Sskip | Sbreak, Sbreak | Scontinue, Scontinue -> true
  | Sexpr a, Sexpr b -> equal_expr a b
  | Sassign (l1, e1), Sassign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | Sdecl (t1, v1, e1), Sdecl (t2, v2, e2) ->
      equal_typ t1 t2 && v1 = v2 && Option.equal equal_expr e1 e2
  | Sif (c1, a1, b1), Sif (c2, a2, b2) ->
      equal_expr c1 c2 && equal_block a1 a2 && equal_block b1 b2
  | Swhile (c1, b1), Swhile (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | Sfor (i1, c1, st1, b1), Sfor (i2, c2, st2, b2) ->
      Option.equal equal_stmt i1 i2
      && Option.equal equal_expr c1 c2
      && Option.equal equal_stmt st1 st2
      && equal_block b1 b2
  | Sblock b1, Sblock b2 -> equal_block b1 b2
  | Sreturn e1, Sreturn e2 -> Option.equal equal_expr e1 e2
  | Sacc (d1, b1), Sacc (d2, b2) ->
      equal_directive d1 d2 && Option.equal equal_stmt b1 b2
  | (Sskip | Sexpr _ | Sassign _ | Sdecl _ | Sif _ | Swhile _ | Sfor _
    | Sblock _ | Sreturn _ | Sbreak | Scontinue | Sacc _), _ -> false

and equal_block b1 b2 =
  List.length b1 = List.length b2 && List.for_all2 equal_stmt b1 b2

let equal_func f1 f2 =
  equal_typ f1.f_ret f2.f_ret
  && f1.f_name = f2.f_name
  && List.length f1.f_params = List.length f2.f_params
  && List.for_all2
       (fun p1 p2 -> equal_typ p1.p_typ p2.p_typ && p1.p_name = p2.p_name)
       f1.f_params f2.f_params
  && equal_block f1.f_body f2.f_body

let equal_program p1 p2 =
  List.length p1.globals = List.length p2.globals
  && List.for_all2
       (fun g1 g2 ->
         match (g1, g2) with
         | Gfunc f1, Gfunc f2 -> equal_func f1 f2
         | Gvar (t1, v1, e1), Gvar (t2, v2, e2) ->
             equal_typ t1 t2 && v1 = v2 && Option.equal equal_expr e1 e2
         | (Gfunc _ | Gvar _), _ -> false)
       p1.globals p2.globals
