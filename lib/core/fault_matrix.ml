(** Fault-matrix sweep: fault kinds x recovery policies across a set of
    programs, asserting verified-correct results.

    Each cell arms a single-shot fault of one kind, runs the program under
    one resilience policy, and checks the designated outputs against the
    sequential reference (the same comparator as the §IV-C optimization
    safety net).  The default matrix pairs every transient kind with the
    [retry] and [full] policies and [device-lost] with [full] only — the
    combinations that must either recover verified-correct or degrade to
    CPU fallback, never produce a silently wrong answer. *)

type subject = {
  s_name : string;
  s_source : string;
  s_outputs : string list;  (** host variables defining correctness *)
}

type cell = {
  c_bench : string;
  c_kind : Gpusim.Fault_plan.kind;
  c_policy : string;
  c_devices : int;  (** device-set size the cell ran with (1 = classic) *)
  c_injected : int;
  c_retries : int;  (** transfer/alloc retries + checksum re-transfers *)
  c_reexecs : int;
  c_fallbacks : int;
  c_failovers : int;  (** shards re-executed on surviving devices *)
  c_verified : int;
  c_correct : bool;  (** outputs match the sequential reference *)
  c_recovered : bool;  (** run completed without an unrecovered fault *)
  c_device_lost : bool;
  c_overhead : float;  (** simulated time vs. the fault-free baseline *)
}

type t = {
  seed : int;
  cells : cell list;
  traces : (string * Gpusim.Timeline.t) list;
      (** per-cell device timelines (with [trace]), in cell order *)
}

(** A cell is acceptable when the run completed and its outputs are
    correct — whether by verified recovery or by CPU fallback. *)
let cell_ok c = c.c_recovered && c.c_correct

let all_ok t = List.for_all cell_ok t.cells

(** Policies a fault kind is swept against: recovery-only policies must
    handle every transient kind; device loss additionally needs the CPU
    fallback of [full]. *)
let policies_for kind =
  if Gpusim.Fault_plan.transient kind then
    [ Accrt.Resilience.retry; Accrt.Resilience.full ]
  else [ Accrt.Resilience.full ]

let run ?(seed = 42) ?(kinds = Gpusim.Fault_plan.all_kinds)
    ?(device_counts = []) ?(trace = false) subjects =
  let cells = ref [] in
  let traces = ref [] in
  List.iter
    (fun s ->
      let prog = Minic.Parser.parse_string ~file:s.s_name s.s_source in
      let c = Compiler.compile_program prog in
      let tp = c.Compiler.tprog in
      let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
      let base_time_for devices =
        let baseline =
          Accrt.Interp.run ~coherence:false ~seed ~devices tp
        in
        Gpusim.Metrics.total_time (Accrt.Interp.metrics baseline)
      in
      let base_time = base_time_for 1 in
      let run_cell ~kind ~policy ~devices ~plan ~label ~base_time =
        let cell =
          match
            Accrt.Interp.run ~coherence:false ~seed ~trace ~plan ~devices
              ~resilience:policy tp
          with
          | o ->
              if trace then
                traces :=
                  (label, o.Accrt.Interp.device.Gpusim.Device.timeline)
                  :: !traces;
              let st = o.Accrt.Interp.resilience in
              let time =
                Gpusim.Metrics.total_time (Accrt.Interp.metrics o)
              in
              { c_bench = s.s_name; c_kind = kind;
                c_policy = policy.Accrt.Resilience.p_name;
                c_devices = devices;
                c_injected = Gpusim.Fault_plan.injected plan;
                c_retries =
                  st.Accrt.Resilience.retries
                  + st.Accrt.Resilience.retransfers;
                c_reexecs = st.Accrt.Resilience.reexecs;
                c_fallbacks = st.Accrt.Resilience.fallbacks;
                c_failovers = st.Accrt.Resilience.failovers;
                c_verified = st.Accrt.Resilience.verified;
                c_correct =
                  Session.outputs_match ~outputs:s.s_outputs ~reference o;
                c_recovered = st.Accrt.Resilience.unrecovered = 0;
                c_device_lost = st.Accrt.Resilience.device_lost;
                c_overhead =
                  (if base_time > 0.0 then time /. base_time else 1.0);
              }
          | exception
              ( Accrt.Resilience.Unrecovered _
              | Gpusim.Device.Device_fault _ ) ->
              { c_bench = s.s_name; c_kind = kind;
                c_policy = policy.Accrt.Resilience.p_name;
                c_devices = devices;
                c_injected = Gpusim.Fault_plan.injected plan;
                c_retries = 0; c_reexecs = 0; c_fallbacks = 0;
                c_failovers = 0; c_verified = 0; c_correct = false;
                c_recovered = false;
                c_device_lost = plan.Gpusim.Fault_plan.lost;
                c_overhead = 0.0 }
        in
        cells := cell :: !cells
      in
      List.iter
        (fun kind ->
          List.iter
            (fun policy ->
              let plan =
                Gpusim.Fault_plan.create ~seed
                  [ Gpusim.Fault_plan.mk_rule ~count:1 kind ]
              in
              let label =
                Fmt.str "%s/%s/%s" s.s_name
                  (Gpusim.Fault_plan.kind_name kind)
                  policy.Accrt.Resilience.p_name
              in
              run_cell ~kind ~policy ~devices:1 ~plan ~label ~base_time)
            (policies_for kind))
        kinds;
      (* Device-loss x policy x device-count rows: kill one member at a
         kernel-launch gate, so a shard is genuinely in flight and must
         fail over to the survivors (validated by the §III-A comparator).
         With survivors available, even the fallback-less [retry] policy
         must recover these. *)
      List.iter
        (fun devices ->
          let base_time = base_time_for devices in
          let target =
            if Array.length tp.Codegen.Tprog.kernels > 0 then
              Some tp.Codegen.Tprog.kernels.(0).Codegen.Tprog.k_name
            else None
          in
          List.iter
            (fun lost_dev ->
              List.iter
                (fun policy ->
                  let plan =
                    Gpusim.Fault_plan.create ~seed
                      [ Gpusim.Fault_plan.mk_rule ?target ~count:1
                          ~dev:lost_dev Gpusim.Fault_plan.Device_lost ]
                  in
                  let label =
                    Fmt.str "%s/device-lost#%d@%ddev/%s" s.s_name lost_dev
                      devices policy.Accrt.Resilience.p_name
                  in
                  run_cell ~kind:Gpusim.Fault_plan.Device_lost ~policy
                    ~devices ~plan ~label ~base_time)
                [ Accrt.Resilience.retry; Accrt.Resilience.full ])
            [ 0; devices - 1 ])
        (List.filter (fun n -> n > 1) device_counts))
    subjects;
  { seed; cells = List.rev !cells; traces = List.rev !traces }

(* ------------------------------ report ------------------------------ *)

let pp_cell ppf c =
  Fmt.pf ppf "%-10s %-14s %-6s %s  inj=%d retry=%d reexec=%d fb=%d ver=%d \
              %s overhead=%.2fx"
    c.c_bench
    (if c.c_devices > 1 then
       Fmt.str "%s@%ddev" (Gpusim.Fault_plan.kind_name c.c_kind) c.c_devices
     else Gpusim.Fault_plan.kind_name c.c_kind)
    c.c_policy
    (if cell_ok c then "[OK]  " else "[FAIL]")
    c.c_injected c.c_retries c.c_reexecs c.c_fallbacks c.c_verified
    (if c.c_device_lost then "lost->host"
     else if c.c_failovers > 0 then "failover"
     else if c.c_fallbacks > 0 then "fallback"
     else "recovered")
    c.c_overhead

let pp ppf t =
  Fmt.pf ppf "@[<v>fault matrix (seed %d, %d cells)" t.seed
    (List.length t.cells);
  List.iter (fun c -> Fmt.pf ppf "@,%a" pp_cell c) t.cells;
  let bad = List.filter (fun c -> not (cell_ok c)) t.cells in
  Fmt.pf ppf "@,%d/%d cell(s) recovered verified-correct%s"
    (List.length t.cells - List.length bad)
    (List.length t.cells)
    (if bad = [] then "" else " — MATRIX FAILED");
  Fmt.pf ppf "@]"

let json_str s = Fmt.str "\"%s\"" (String.concat "\\\"" (String.split_on_char '"' s))

let to_json t =
  let cell c =
    Fmt.str
      "{\"bench\": %s, \"fault\": %s, \"policy\": %s, \"devices\": %d, \
       \"injected\": %d, \"retries\": %d, \"reexecs\": %d, \"fallbacks\": \
       %d, \"failovers\": %d, \"verified\": %d, \"correct\": %b, \
       \"recovered\": %b, \"device_lost\": %b, \"overhead\": %.6f}"
      (json_str c.c_bench)
      (json_str (Gpusim.Fault_plan.kind_name c.c_kind))
      (json_str c.c_policy) c.c_devices c.c_injected c.c_retries c.c_reexecs
      c.c_fallbacks c.c_failovers c.c_verified c.c_correct c.c_recovered
      c.c_device_lost c.c_overhead
  in
  let ok = all_ok t in
  let fallback_cells =
    List.length (List.filter (fun c -> c.c_fallbacks > 0) t.cells)
  in
  Fmt.str
    "{\"seed\": %d,\n \"cells\": %d,\n \"all_ok\": %b,\n \
     \"fallback_cells\": %d,\n \"matrix\": [\n  %s\n]}"
    t.seed (List.length t.cells) ok fallback_cells
    (String.concat ",\n  " (List.map cell t.cells))

(** Merged Chrome trace of every traced cell: one process per cell, named
    [bench/fault/policy], so recovery behaviour is comparable side by
    side in one Perfetto view. *)
let trace_json t =
  let lines =
    List.concat
      (List.mapi
         (fun i (label, tl) ->
           let pid = i + 1 in
           Gpusim.Timeline.chrome_process_name ~pid label
           :: Gpusim.Timeline.chrome_events ~pid tl)
         t.traces)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf l)
    lines;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
