(** Facade over the whole OpenARC pipeline: parse → validate → type check →
    translate → (optionally instrument) → run.  This is the public
    entry point the examples and the CLI use. *)

type compiled = {
  program : Minic.Ast.program;
  env : Minic.Typecheck.env;
  tprog : Codegen.Tprog.t;  (** uninstrumented translation *)
}

(* Compile-phase spans use the trace's default constant clock, so their
   presence never perturbs byte-reproducible outputs. *)
let phase obs name f =
  match obs with
  | None -> f ()
  | Some tr -> Obs.Trace.with_span tr Obs.Trace.Phase name f

(** Compile a source string end to end. *)
let compile ?(opts = Codegen.Options.default) ?file ?obs src =
  let program = phase obs "parse" (fun () -> Minic.Parser.parse_string ?file src) in
  phase obs "validate" (fun () -> Acc.Validate.check_program program);
  let env = phase obs "typecheck" (fun () -> Minic.Typecheck.check program) in
  let tprog =
    phase obs "translate" (fun () ->
        Codegen.Translate.translate ~opts env program)
  in
  (match obs with
  | Some tr ->
      Obs.Trace.count tr "kernels" (Array.length tprog.Codegen.Tprog.kernels)
  | None -> ());
  { program; env; tprog }

let compile_file ?opts path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile ?opts ~file:path src

let compile_program ?(opts = Codegen.Options.default) ?obs program =
  phase obs "validate" (fun () -> Acc.Validate.check_program program);
  let env = phase obs "typecheck" (fun () -> Minic.Typecheck.check program) in
  let tprog =
    phase obs "translate" (fun () ->
        Codegen.Translate.translate ~opts env program)
  in
  (match obs with
  | Some tr ->
      Obs.Trace.count tr "kernels" (Array.length tprog.Codegen.Tprog.kernels)
  | None -> ());
  { program; env; tprog }

(** Execute the translated program on the simulated device. *)
let run ?seed ?cm c = Accrt.Interp.run ~coherence:false ?seed ?cm c.tprog

(** Execute with coherence instrumentation and collect transfer reports. *)
let run_instrumented ?mode ?seed ?cm c =
  let tp = Codegen.Checkgen.instrument ?mode c.tprog in
  Accrt.Interp.run ~coherence:true ?seed ?cm tp

(** Sequential reference execution of the unmodified source. *)
let run_reference c = Accrt.Eval.run_reference c.program

(** Kernel verification (§III-A) of the compiled program. *)
let verify ?opts ?config ?obs ?trace c =
  Kernel_verify.verify ?opts ?config ~env:(Some c.env) ?obs ?trace c.program

(** Interactive memory-transfer optimization (§III-B / Figure 2). *)
let optimize ?policy ?max_iterations ~outputs c =
  Session.optimize ?policy ?max_iterations ~outputs c.program
