(** The interactive memory-transfer optimization loop of Figure 2.

    A *scripted programmer* stands in for the human user: at each iteration
    the program is compiled with coherence instrumentation, profiled, the
    tool's suggestions are applied as directive edits, and the loop repeats
    until a profiled run is clean.  As in the paper (§IV-C), suggestions
    based on may-dead facts can be wrong when the compiler could not resolve
    pointer aliasing; the next iteration's verification detects the damage
    (missing/incorrect-transfer errors, or an output mismatch against the
    sequential reference), the edit is reverted and that site is left alone —
    an "incorrect iteration" in Table III's terms. *)

open Minic.Ast

type policy =
  | Follow_all  (** apply certain and may-based suggestions (paper's user) *)
  | Conservative  (** apply only certain suggestions *)

(** Structured telemetry of one loop iteration: the profiled run's
    per-directive cost snapshot, the coherence findings it produced, the
    suggestions the scripted programmer applied, the dynamic transfer
    stats, and the verification outcome.  The bare log lines of earlier
    versions survive as [it_events]. *)
type iteration = {
  it_index : int;  (** 1-based *)
  it_profile : Obs.Profile.t option;
      (** per-directive snapshot of the instrumented run; [None] when the
          run raised before completing *)
  it_report_counts : (string * int) list;
      (** coherence report kind -> occurrence count, fixed kind order *)
  it_suggestions : (string * bool) list;
      (** suggestions applied this iteration (rendered text, certain?) *)
  it_transfers : int;  (** transfers executed by the profiled run *)
  it_bytes : int;  (** bytes moved by the profiled run *)
  it_bytes_by_cause : (string * int) list;
      (** data-movement ledger: bytes by cause, first-use order *)
  it_wasted_bytes : int;
      (** bytes the ledger's counterfactual analyzer marks redundant or
          hoistable this iteration *)
  it_peak_bytes : int;  (** largest per-device allocation watermark *)
  it_outputs_ok : bool;  (** outputs matched the sequential reference *)
  it_wrong_restored : string list;
      (** variables whose earlier transfer removal this iteration exposed
          as a wrong suggestion (and restored) *)
  it_reverted : bool;  (** this iteration reverted the previous edits *)
  it_note : string;  (** "converged", "reverted", "failed: ...", or "" *)
  it_events : string list;  (** human-readable event lines *)
}

type result = {
  final : program;  (** program after optimization *)
  iterations : int;  (** total verification iterations (Table III) *)
  incorrect_iterations : int;  (** iterations spoiled by wrong suggestions *)
  converged : bool;
  telemetry : iteration list;  (** one record per iteration, in order *)
}

let log_lines r =
  List.concat_map (fun it -> it.it_events) r.telemetry

(* Compare designated outputs of a candidate run against the sequential
   reference; small relative tolerance absorbs the GPU's tree-order
   reductions. *)
let outputs_match ~outputs ~reference (o : Accrt.Interp.outcome) =
  let margin = 1e-6 in
  List.for_all
    (fun name ->
      match
        (Accrt.Value.lookup reference name,
         Accrt.Value.lookup o.Accrt.Interp.ctx.Accrt.Eval.env name)
      with
      | Some (Accrt.Value.Array { buf = Some b1; _ }),
        Some (Accrt.Value.Array { buf = Some b2; _ }) ->
          let _, bad = Gpusim.Buf.compare ~margin ~reference:b1 b2 in
          bad = 0
      | Some (Accrt.Value.Scalar c1), Some (Accrt.Value.Scalar c2) ->
          let x = Accrt.Value.to_float c1.Accrt.Value.v in
          let y = Accrt.Value.to_float c2.Accrt.Value.v in
          Float.abs (x -. y) <= margin *. Float.max 1.0 (Float.abs x)
      | _ -> false)
    outputs

(* Source span (first/last sid) covering all compute regions: the statements
   a new data region must enclose. *)
let compute_span prog =
  let sids =
    List.filter_map
      (fun (sid, _, d) -> if Acc.Query.is_compute d.dir then Some sid else None)
      (Acc.Query.directives_of prog)
  in
  match sids with
  | [] -> None
  | s :: rest -> Some (List.fold_left min s rest, List.fold_left max s rest)

let rec apply_action prog (a : Suggest.action) =
  match a with
  | Suggest.Remove_update_var { sid; var; host } ->
      let prog =
        Acc.Edit.map_directive prog ~sid ~f:(fun d ->
            { d with clauses = Acc.Edit.remove_update_var d.clauses ~host var })
      in
      (* Drop the directive entirely if it has no clauses left. *)
      let empty = ref false in
      List.iter
        (fun (s, _, d) ->
          if s = sid && d.dir = Acc_update && d.clauses = [] then empty := true)
        (Acc.Query.directives_of prog);
      if !empty then Acc.Edit.remove_stmt prog ~sid else prog
  | Suggest.Defer_update { sid; var; host } ->
      let loop = Acc.Edit.enclosing_loop prog ~sid in
      let prog' =
        apply_action prog (Suggest.Remove_update_var { sid; var; host })
      in
      (match loop with
      | Some l ->
          let upd = Acc.Edit.mk_update ~host [ var ] in
          if host then Acc.Edit.insert_after prog' ~sid:l.sid [ upd ]
          else Acc.Edit.insert_before prog' ~sid:l.sid [ upd ]
      | None -> prog')
  | Suggest.Weaken_clause { sid; var; side } ->
      Acc.Edit.weaken_clause prog ~sid ~var ~side
  | Suggest.Add_data_region { vars } ->
      if Acc.Edit.has_data_region prog then prog
      else (
        match compute_span prog with
        | None -> prog
        | Some (first_sid, last_sid) ->
            Acc.Edit.wrap_span prog ~first_sid ~last_sid
              ~directive:
                (Acc.Edit.mk_data_directive
                   (List.map (fun (v, k, _) -> (v, k)) vars)))
  | Suggest.Add_update { before_sid; var; host } -> (
      if before_sid < 0 then prog
      else
        (* If the stale access lies outside every data region that manages
           [var], an update there would reference freed device memory; the
           right edit is to strengthen the region's clause instead. *)
        match Acc.Edit.regions_with_var prog ~var with
        | [] ->
            Acc.Edit.insert_before prog ~sid:before_sid
              [ Acc.Edit.mk_update ~host [ var ] ]
        | regions ->
            if List.exists (fun (_, _, sids) -> List.mem before_sid sids)
                 regions
            then
              Acc.Edit.insert_before prog ~sid:before_sid
                [ Acc.Edit.mk_update ~host [ var ] ]
            else
              let sid, _, _ = List.hd regions in
              Acc.Edit.strengthen_clause prog ~sid ~var
                ~side:(if host then `Out else `In))
  | Suggest.Report_incorrect _ -> prog

(** Run the interactive optimization loop on [prog].

    [outputs] are the names checked against the sequential reference after
    each round of edits (the kernel-verification safety net of §IV-C).

    Wrong suggestions are detected one iteration late, exactly as in the
    paper: a may-dead-based removal of a transfer the program actually
    needed surfaces as a missing/incorrect-transfer error (and an output
    mismatch) in the next profiled run; the scripted programmer re-inserts
    the transfer, freezes further removal suggestions for that variable, and
    the detour is recorded as an incorrect iteration. *)
let optimize ?(policy = Follow_all) ?(max_iterations = 12) ?(devices = 1)
    ?schedule ~outputs prog =
  (* Work on the inlined program so report sites and directive edits refer
     to the same statements. *)
  let prog =
    if Codegen.Inline.needs_expansion prog then Codegen.Inline.expand prog
    else prog
  in
  Acc.Validate.check_program prog;
  ignore (Minic.Typecheck.check prog);
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  (* vars whose (uncertain) transfer removal was applied, per direction *)
  let removed : (string * bool, unit) Hashtbl.t = Hashtbl.create 8 in
  let frozen_vars : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let categories =
    List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories
  in
  let telemetry = ref [] in
  (* Per-iteration event lines; [say] appends to the current iteration. *)
  let events = ref [] in
  let say fmt = Fmt.kstr (fun m -> events := m :: !events) fmt in
  let blank_iteration index =
    { it_index = index; it_profile = None; it_report_counts = [];
      it_suggestions = []; it_transfers = 0; it_bytes = 0;
      it_bytes_by_cause = []; it_wasted_bytes = 0; it_peak_bytes = 0;
      it_outputs_ok = false; it_wrong_restored = []; it_reverted = false;
      it_note = ""; it_events = [] }
  in
  let push it =
    telemetry := { it with it_events = List.rev !events } :: !telemetry;
    events := []
  in
  let report_counts reports =
    List.map
      (fun k ->
        ( Accrt.Coherence.kind_name k,
          List.length
            (List.filter
               (fun (r : Accrt.Coherence.report) ->
                 r.Accrt.Coherence.r_kind = k)
               reports) ))
      [ Accrt.Coherence.Missing; Accrt.Coherence.May_missing;
        Accrt.Coherence.Incorrect; Accrt.Coherence.Redundant;
        Accrt.Coherence.May_redundant ]
  in

  let removal_of (s : Suggest.suggestion) =
    match s.Suggest.s_action with
    | Suggest.Remove_update_var { var; host; _ }
    | Suggest.Defer_update { var; host; _ } -> Some (var, host)
    | Suggest.Weaken_clause { var; side; _ } -> Some (var, side = `Out)
    | Suggest.Add_data_region _ | Suggest.Add_update _
    | Suggest.Report_incorrect _ -> None
  in
  (* Region clauses backed only by may-dead evidence suppress transfers
     too: record them so a later missing-transfer error is attributed. *)
  let region_removals (s : Suggest.suggestion) =
    match s.Suggest.s_action with
    | Suggest.Add_data_region { vars } ->
        List.concat_map
          (fun (v, kind, certain) ->
            if certain then []
            else
              (match kind with
              | Minic.Ast.Dk_create -> [ (v, true); (v, false) ]
              | Minic.Ast.Dk_copyin -> [ (v, true) ]
              | Minic.Ast.Dk_copyout -> [ (v, false) ]
              | _ -> []))
          vars
    | _ -> []
  in

  let rec loop prog history iterations incorrect =
    if iterations >= max_iterations then
      { final = prog; iterations; incorrect_iterations = incorrect;
        converged = false; telemetry = List.rev !telemetry }
    else begin
      let iterations = iterations + 1 in
      let tr = Obs.Trace.create () in
      (* One data-movement ledger per profiled iteration: its cause/waste
         summary rides along in the telemetry record. *)
      let lg =
        Obs.Ledger.create ~devices
          ~schedule:
            (Gpusim.Device_set.schedule_name
               (Option.value ~default:Gpusim.Device_set.Block schedule))
      in
      let outcome_or_err =
        try
          let env = Minic.Typecheck.check prog in
          let tp = Codegen.Translate.translate env prog in
          let tp = Codegen.Checkgen.instrument tp in
          Ok
            (Accrt.Interp.run ~coherence:true ~devices ?schedule ~obs:tr
               ~ledger:lg tp)
        with e -> Error (Printexc.to_string e)
      in
      match outcome_or_err with
      | Error msg -> (
          say "iteration %d: program failed to run (%s)" iterations msg;
          match history with
          | (prev, applied) :: rest ->
              say "iteration %d: reverting previous edits" iterations;
              List.iter
                (fun sg ->
                  match removal_of sg with
                  | Some (v, _) when not sg.Suggest.s_certain ->
                      Hashtbl.replace frozen_vars v ()
                  | _ -> ())
                applied;
              push
                { (blank_iteration iterations) with
                  it_reverted = true;
                  it_note = "failed: " ^ msg };
              loop prev rest iterations (incorrect + 1)
          | [] ->
              push
                { (blank_iteration iterations) with
                  it_note = "failed: " ^ msg };
              { final = prog; iterations; incorrect_iterations = incorrect;
                converged = false; telemetry = List.rev !telemetry })
      | Ok outcome ->
          let correct = outputs_match ~outputs ~reference outcome in
          let m = Accrt.Interp.metrics outcome in
          let la =
            let cm = outcome.Accrt.Interp.device.Gpusim.Device.cm in
            Obs.Ledger.analyze lg
              ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
              ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth
          in
          let base =
            { (blank_iteration iterations) with
              it_profile = Some (Obs.Profile.of_trace ~categories tr);
              it_report_counts =
                report_counts (Accrt.Interp.reports outcome);
              it_transfers =
                m.Gpusim.Metrics.transfers_h2d
                + m.Gpusim.Metrics.transfers_d2h;
              it_bytes = Gpusim.Metrics.total_bytes m;
              it_bytes_by_cause = la.Obs.Ledger.a_causes;
              it_wasted_bytes = la.Obs.Ledger.a_wasted_bytes;
              it_peak_bytes = Obs.Ledger.peak_bytes la;
              it_outputs_ok = correct }
          in
          let suggestions =
            Suggest.actionable (Suggest.analyze outcome)
            |> List.filter (fun (sg : Suggest.suggestion) ->
                   (match policy with
                   | Follow_all -> true
                   | Conservative -> sg.Suggest.s_certain)
                   &&
                   match removal_of sg with
                   | Some (v, _) ->
                       sg.Suggest.s_certain
                       || not (Hashtbl.mem frozen_vars v)
                   | None -> true)
          in
          (* An Add_update for a variable whose transfer we removed earlier
             means that removal was a wrong suggestion. *)
          let readds =
            List.filter
              (fun (sg : Suggest.suggestion) ->
                match sg.Suggest.s_action with
                | Suggest.Add_update { var; host; _ } ->
                    Hashtbl.mem removed (var, host)
                    || Hashtbl.mem removed (var, not host)
                | _ -> false)
              suggestions
          in
          let incorrect, restored =
            List.fold_left
              (fun (acc, restored) (sg : Suggest.suggestion) ->
                let v = sg.Suggest.s_var in
                if Hashtbl.mem frozen_vars v then (acc, restored)
                else begin
                  Hashtbl.replace frozen_vars v ();
                  say
                    "iteration %d: earlier removal of %s's transfer was a \
                     wrong suggestion (verification reported errors); \
                     restoring it"
                    iterations v;
                  (acc + 1, v :: restored)
                end)
              (incorrect, []) readds
          in
          let base = { base with it_wrong_restored = List.rev restored } in
          if suggestions = [] then begin
            if not correct then begin
              (* Broken with nothing left to apply: fall back to revert. *)
              match history with
              | (prev, _) :: rest ->
                  say
                    "iteration %d: outputs diverge from the reference; \
                     reverting previous edits"
                    iterations;
                  push { base with it_reverted = true; it_note = "reverted" };
                  loop prev rest iterations (incorrect + 1)
              | [] ->
                  push { base with it_note = "not converged" };
                  { final = prog; iterations;
                    incorrect_iterations = incorrect; converged = false;
                    telemetry = List.rev !telemetry }
            end
            else begin
              say "iteration %d: no further suggestions — converged"
                iterations;
              push { base with it_note = "converged" };
              { final = prog; iterations; incorrect_iterations = incorrect;
                converged = true; telemetry = List.rev !telemetry }
            end
          end
          else begin
            List.iter
              (fun sg -> say "iteration %d: %a" iterations Suggest.pp sg)
              suggestions;
            List.iter
              (fun sg ->
                (match removal_of sg with
                | Some key when not sg.Suggest.s_certain ->
                    Hashtbl.replace removed key ()
                | _ -> ());
                List.iter
                  (fun key -> Hashtbl.replace removed key ())
                  (region_removals sg))
              suggestions;
            let prog' =
              List.fold_left
                (fun p (sg : Suggest.suggestion) ->
                  apply_action p sg.Suggest.s_action)
                prog suggestions
            in
            push
              { base with
                it_suggestions =
                  List.map
                    (fun (sg : Suggest.suggestion) ->
                      (sg.Suggest.s_text, sg.Suggest.s_certain))
                    suggestions };
            loop prog' ((prog, suggestions) :: history) iterations incorrect
          end
    end
  in
  loop prog [] 0 0

(* ----------------------- telemetry rendering ----------------------- *)

let iter_label i = Fmt.str "iteration %d" i.it_index

(* Consecutive profiled iterations, for inter-iteration diffs. *)
let profile_pairs r =
  let profiled =
    List.filter_map
      (fun it -> Option.map (fun p -> (it, p)) it.it_profile)
      r.telemetry
  in
  let rec pairs = function
    | (ia, pa) :: ((ib, pb) :: _ as rest) ->
        (ia, pa, ib, pb) :: pairs rest
    | _ -> []
  in
  pairs profiled

(** Iteration-by-iteration narrative of the Figure-2 loop, with the
    profile delta of every consecutive pair of profiled iterations — the
    per-step performance attribution that shows which edit paid off. *)
let report ~name r =
  let b = Buffer.create 4096 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "interactive session report for %s\n" name;
  let diffs =
    List.map
      (fun (ia, pa, ib, pb) ->
        ( ib.it_index,
          Obs.Diff.diff ~before_name:(iter_label ia)
            ~after_name:(iter_label ib) ~before:pa ~after:pb () ))
      (profile_pairs r)
  in
  List.iter
    (fun it ->
      let reports_txt =
        String.concat ", "
          (List.filter_map
             (fun (k, n) -> if n > 0 then Some (Fmt.str "%s %d" k n) else None)
             it.it_report_counts)
      in
      pf "iteration %d: outputs %s; reports: %s; %d transfer(s), %d \
          byte(s)%s%s\n"
        it.it_index
        (if it.it_outputs_ok then "ok" else "DIVERGED")
        (if reports_txt = "" then "none" else reports_txt)
        it.it_transfers it.it_bytes
        (match it.it_profile with
        | Some p -> Fmt.str "; profiled total %.9f s" p.Obs.Profile.p_total
        | None -> "")
        (if it.it_note = "" then "" else "; " ^ it.it_note);
      (match List.assoc_opt it.it_index diffs with
      | Some d ->
          pf "  profile delta vs previous profiled iteration: %+.9f s \
              (%+.2f%%)\n"
            d.Obs.Diff.d_delta
            (100.0 *. d.Obs.Diff.d_delta
            /. Float.max (Float.abs d.Obs.Diff.d_total_before) 1e-12);
          List.iter
            (fun c ->
              if c.Obs.Diff.cd_delta <> 0.0 then
                pf "    %-16s %+.9f s\n" c.Obs.Diff.cd_cat
                  c.Obs.Diff.cd_delta)
            d.Obs.Diff.d_totals;
          List.iteri
            (fun i (row : Obs.Diff.row_delta) ->
              if i < 3 then
                pf "    [%s] %s %+.9f s%s\n"
                  (Obs.Diff.verdict_name row.Obs.Diff.rd_verdict)
                  row.Obs.Diff.rd_directive row.Obs.Diff.rd_delta
                  (match Obs.Diff.dominant_cat row with
                  | Some c -> "  (" ^ c ^ ")"
                  | None -> ""))
            (Obs.Diff.movers d)
      | None -> ());
      List.iter
        (fun (text, certain) ->
          pf "  applied: %s [%s]\n" text
            (if certain then "certain" else "verify"))
        it.it_suggestions;
      List.iter
        (fun v -> pf "  restored wrong removal of %s\n" v)
        it.it_wrong_restored)
    r.telemetry;
  pf "result: %s after %d iteration(s), %d incorrect\n"
    (if r.converged then "converged" else "NOT converged")
    r.iterations r.incorrect_iterations;
  (match (r.telemetry, List.rev r.telemetry) with
  | first :: _, last :: _ when first.it_profile <> None ->
      pf "transfers: %d (%d bytes) -> %d (%d bytes)\n" first.it_transfers
        first.it_bytes last.it_transfers last.it_bytes
  | _ -> ());
  Buffer.contents b

(** Schema version of {!to_json}: v2 added the per-iteration data-movement
    ledger summary ([ledger] object per record). *)
let json_version = 2

(** Canonical deterministic JSON export of the telemetry: one record per
    iteration with its embedded profile and ledger summary, plus the
    inter-iteration profile diffs (schema [openarc.obs.session]). *)
let to_json ~name r =
  let js = Obs.Trace.json_str in
  let b = Buffer.create 16384 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"schema\": %s,\n  \"version\": %d,\n"
    (js (Obs.Trace.schema ^ ".session"))
    json_version;
  pf "  \"name\": %s,\n" (js name);
  pf "  \"converged\": %b,\n  \"iterations\": %d,\n  \
      \"incorrect_iterations\": %d,\n"
    r.converged r.iterations r.incorrect_iterations;
  pf "  \"records\": [\n";
  let nrec = List.length r.telemetry in
  List.iteri
    (fun i it ->
      pf "    {\"index\": %d, \"outputs_ok\": %b, \"reverted\": %b, \
          \"note\": %s,\n"
        it.it_index it.it_outputs_ok it.it_reverted (js it.it_note);
      pf "     \"transfers\": %d, \"bytes\": %d,\n" it.it_transfers
        it.it_bytes;
      pf "     \"reports\": {%s},\n"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Fmt.str "%s: %d" (js k) n)
              it.it_report_counts));
      pf "     \"suggestions\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun (text, certain) ->
                Fmt.str "{\"text\": %s, \"certain\": %b}" (js text) certain)
              it.it_suggestions));
      pf "     \"wrong_restored\": [%s],\n"
        (String.concat ", " (List.map js it.it_wrong_restored));
      pf "     \"events\": [%s],\n"
        (String.concat ", " (List.map js it.it_events));
      pf "     \"ledger\": {\"causes\": {%s}, \"wasted_bytes\": %d, \
          \"peak_bytes\": %d},\n"
        (String.concat ", "
           (List.map
              (fun (c, n) -> Fmt.str "%s: %d" (js c) n)
              it.it_bytes_by_cause))
        it.it_wasted_bytes it.it_peak_bytes;
      (match it.it_profile with
      | Some p ->
          pf "     \"profile\": %s}"
            (String.trim
               (Obs.Profile.to_json
                  ~name:(Fmt.str "%s#it%d" name it.it_index)
                  ~seed:42 p))
      | None -> pf "     \"profile\": null}");
      if i < nrec - 1 then pf ",";
      pf "\n")
    r.telemetry;
  pf "  ],\n  \"deltas\": [\n";
  let pairs = profile_pairs r in
  let npairs = List.length pairs in
  List.iteri
    (fun i (ia, pa, ib, pb) ->
      let d =
        Obs.Diff.diff ~before_name:(iter_label ia)
          ~after_name:(iter_label ib) ~before:pa ~after:pb ()
      in
      pf "    %s" (String.trim (Obs.Diff.to_json d));
      if i < npairs - 1 then pf ",";
      pf "\n")
    pairs;
  pf "  ]\n}\n";
  Buffer.contents b

(** Dynamic transfer statistics of a program: (transfer count, bytes moved).
    Used to quantify leftover (uncaught) redundancy against the manually
    optimized version. *)
let transfer_stats prog =
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let o = Accrt.Interp.run ~coherence:false tp in
  let m = Accrt.Interp.metrics o in
  (m.Gpusim.Metrics.transfers_h2d + m.Gpusim.Metrics.transfers_d2h,
   Gpusim.Metrics.total_bytes m)
