(** Suggestion engine: turns the runtime coherence reports of one profiled
    execution into the actionable suggestions the paper's tool offers the
    user (§III-B, §IV-C): redundant-transfer information, missing/incorrect
    errors, and may-redundant warnings the programmer must verify. *)

type action =
  | Remove_update_var of { sid : int; var : string; host : bool }
      (** delete [var] from the [update] directive at [sid] *)
  | Defer_update of { sid : int; var : string; host : bool }
      (** move the [update] of [var] at [sid] past its enclosing loop *)
  | Weaken_clause of { sid : int; var : string; side : [ `In | `Out ] }
      (** drop the redundant side of [var]'s data clause at [sid] *)
  | Add_data_region of
      { vars : (string * Minic.Ast.data_kind * bool) list }
      (** wrap the computation in a [data] region; the bool marks clauses
          backed by certain (not may-dead) evidence *)
  | Add_update of { before_sid : int; var : string; host : bool }
      (** insert an [update] before the statement at [before_sid] *)
  | Report_incorrect of { site : Codegen.Tprog.site; var : string }
      (** an executed transfer shipped outdated data — no automatic edit *)

type suggestion = {
  s_action : action;
  s_var : string;
  s_certain : bool;  (** false: based on may-dead facts, user must verify *)
  s_text : string;
}

val pp : Format.formatter -> suggestion -> unit

(** Classify a transfer-site label ([dataN.copyin(v)], [update0.host(b)],
    [regionN.copyout(a)], [kernel.pcopyin(v)], ...) by the directive kind
    that produced it; [`Implicit] is the default-scheme transfer around a
    kernel with no covering data clause. *)
val site_kind : string -> [ `Update | `Data | `Region | `Implicit ]

(** Derive suggestions from a finished instrumented run. *)
val analyze : Accrt.Interp.outcome -> suggestion list

(** Suggestions that translate into edits (error-only reports excluded). *)
val actionable : suggestion list -> suggestion list
