(** Facade over the whole OpenARC pipeline: parse, validate, type check,
    translate, (optionally instrument), run, verify, optimize.  This is the
    entry point the examples and the CLI use. *)

type compiled = {
  program : Minic.Ast.program;
  env : Minic.Typecheck.env;
  tprog : Codegen.Tprog.t;  (** uninstrumented translation *)
}

(** Compile a source string end to end.  [obs] records one phase span per
    pipeline stage (parse, validate, typecheck, translate) plus a
    ["kernels"] counter.
    @raise Minic.Loc.Error on lexical/syntax/type errors
    @raise Acc.Validate.Invalid on OpenACC misuse *)
val compile :
  ?opts:Codegen.Options.t -> ?file:string -> ?obs:Obs.Trace.t -> string ->
  compiled

val compile_file : ?opts:Codegen.Options.t -> string -> compiled

val compile_program :
  ?opts:Codegen.Options.t -> ?obs:Obs.Trace.t -> Minic.Ast.program -> compiled

(** Execute the translated program on the simulated device. *)
val run :
  ?seed:int -> ?cm:Gpusim.Costmodel.t -> compiled -> Accrt.Interp.outcome

(** Execute with coherence instrumentation and collect transfer reports. *)
val run_instrumented :
  ?mode:Codegen.Checkgen.mode -> ?seed:int -> ?cm:Gpusim.Costmodel.t ->
  compiled -> Accrt.Interp.outcome

(** Sequential reference execution of the unmodified source. *)
val run_reference : compiled -> Accrt.Eval.ctx

(** Kernel verification (§III-A). *)
val verify :
  ?opts:Codegen.Options.t -> ?config:Vconfig.t -> ?obs:Obs.Trace.t ->
  ?trace:bool -> compiled -> Kernel_verify.t

(** Interactive memory-transfer optimization (§III-B / Figure 2). *)
val optimize :
  ?policy:Session.policy -> ?max_iterations:int -> outputs:string list ->
  compiled -> Session.result
