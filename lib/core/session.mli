(** The interactive memory-transfer optimization loop of Figure 2, driven
    by a scripted programmer: profile with coherence instrumentation, apply
    the tool's suggestions as directive edits, repeat until a profiled run
    is clean.  Wrong (may-dead-based) suggestions are detected one iteration
    later, repaired, and counted — Table III's "incorrect iterations". *)

type policy =
  | Follow_all  (** apply certain and may-based suggestions (paper's user) *)
  | Conservative  (** apply only certain suggestions *)

(** Structured telemetry of one loop iteration: profile snapshot of the
    instrumented run, coherence report counts, suggestions applied,
    dynamic transfer stats, and the verification outcome. *)
type iteration = {
  it_index : int;  (** 1-based *)
  it_profile : Obs.Profile.t option;
      (** per-directive snapshot; [None] when the run raised *)
  it_report_counts : (string * int) list;
      (** coherence report kind -> count, fixed kind order *)
  it_suggestions : (string * bool) list;
      (** applied suggestions (rendered text, certain?) *)
  it_transfers : int;
  it_bytes : int;
  it_bytes_by_cause : (string * int) list;
      (** data-movement ledger: bytes by cause, first-use order *)
  it_wasted_bytes : int;
      (** bytes the ledger's counterfactual analyzer marks redundant or
          hoistable this iteration *)
  it_peak_bytes : int;  (** largest per-device allocation watermark *)
  it_outputs_ok : bool;
  it_wrong_restored : string list;
      (** vars whose earlier removal was exposed as wrong and restored *)
  it_reverted : bool;
  it_note : string;  (** "converged", "reverted", "failed: ...", or "" *)
  it_events : string list;  (** human-readable event lines *)
}

type result = {
  final : Minic.Ast.program;  (** program after optimization *)
  iterations : int;  (** total verification iterations (Table III) *)
  incorrect_iterations : int;
  converged : bool;
  telemetry : iteration list;  (** one record per iteration, in order *)
}

(** Flattened per-iteration event lines (the old [log] field). *)
val log_lines : result -> string list

(** Iteration-by-iteration narrative with inter-iteration profile diffs
    ({!Obs.Diff}) — the Figure-2 loop made observable end to end. *)
val report : name:string -> result -> string

(** Schema version of {!to_json} (v2 added the per-record [ledger]
    data-movement summary). *)
val json_version : int

(** Canonical deterministic JSON export of the telemetry
    (schema [openarc.obs.session]): per-iteration records with embedded
    profiles and ledger summaries, plus the consecutive profile diffs. *)
val to_json : name:string -> result -> string

(** Do a candidate run's designated outputs match the sequential reference
    (within a small tolerance absorbing tree-order reductions)? *)
val outputs_match :
  outputs:string list -> reference:Accrt.Value.t -> Accrt.Interp.outcome ->
  bool

(** Apply one suggestion as a source edit. *)
val apply_action : Minic.Ast.program -> Suggest.action -> Minic.Ast.program

(** Run the loop on [prog]; [outputs] are the names checked against the
    sequential reference after each edit round (the §IV-C safety net).
    [devices]/[schedule] size the simulated device set for every profiled
    run (see {!Accrt.Interp.run}), so the coherence reports driving the
    loop include per-device staleness — e.g. cross-device redundant
    transfers. *)
val optimize :
  ?policy:policy -> ?max_iterations:int -> ?devices:int ->
  ?schedule:Gpusim.Device_set.schedule -> outputs:string list ->
  Minic.Ast.program -> result

(** Dynamic transfer statistics of a program: (transfer count, bytes). *)
val transfer_stats : Minic.Ast.program -> int * int
