(** GPU-kernel verification (§III-A).

    Every selected kernel is verified at each of its dynamic occurrences:
    the kernel runs on the simulated GPU against inputs produced by the
    sequential reference execution (memory-transfer demotion: all data the
    kernel reads are uploaded right before the launch), its outputs land in
    a temporary host area, the original sequential code then runs, and the
    two results are compared under the configured error margin.  The
    sequential results always win, so errors never propagate to later
    kernels — exactly the paper's scheme.

    Uploads and the kernel launch are issued asynchronously so they overlap
    with the sequential CPU execution; the host blocks just before the
    comparison (the Async-Wait component of Figure 3). *)

open Minic.Ast
open Codegen.Tprog

type mismatch = {
  m_what : string;  (** array or scalar name *)
  m_count : int;  (** elements beyond the margin (1 for scalars) *)
  m_max_diff : float;
  m_first_indices : int list;
}

type kernel_report = {
  kr_kernel : kernel;
  kr_occurrences : int;  (** dynamic launches verified *)
  kr_mismatches : mismatch list;  (** aggregated over occurrences *)
  kr_assertion_failures : string list;
  kr_symbolic : Symeq.Engine.verdict option;
      (** tier-0 symbolic verdict, when the symbolic tier ran *)
}

type t = {
  reports : kernel_report list;
  metrics : Gpusim.Metrics.t;
  timeline : Gpusim.Timeline.t;  (** device events (with [trace]) *)
  sequential_ops : int;  (** pure-reference op count, for normalization *)
  symeq : Symeq.Engine.t option;
      (** symbolic-tier verdicts for every kernel (with [symbolic]) *)
}

let kernel_ok r = r.kr_mismatches = [] && r.kr_assertion_failures = []

let detected_errors t = List.filter (fun r -> not (kernel_ok r)) t.reports

(* Scalars the kernel commits back to the host (everything classified). *)
let committed_scalars k = List.map fst k.k_scalars

(* A shadow host context whose scalar cells are fresh copies, so GPU-side
   commits do not disturb the reference state. Arrays are not copied: the
   kernel touches device buffers only, and root resolution goes through the
   original slots. *)
let shadow_ctx (ctx : Accrt.Eval.ctx) =
  let env = ctx.Accrt.Eval.env in
  let clone_frame fr =
    let fr' = Hashtbl.create (Hashtbl.length fr) in
    Hashtbl.iter
      (fun k b ->
        let b' =
          match b with
          | Accrt.Value.Scalar c -> Accrt.Value.Scalar { v = c.Accrt.Value.v }
          | Accrt.Value.Array _ as a -> a
        in
        Hashtbl.replace fr' k b')
      fr;
    fr'
  in
  let env' =
    { Accrt.Value.globals = clone_frame env.Accrt.Value.globals;
      frames = List.map clone_frame env.Accrt.Value.frames }
  in
  Accrt.Eval.make ctx.Accrt.Eval.prog env'

(** Verify [prog].  [opts] controls translation (use
    {!Codegen.Options.fault_injection} to reproduce Table II).  Returns the
    per-kernel verdicts, the simulated cost of the verification run, and the
    cost of the pure sequential execution. *)
let verify ?(opts = Codegen.Options.default) ?(config = Vconfig.default)
    ?(engine = Accrt.Engine.Tree) ?(env = None) ?cm ?obs ?(trace = false)
    ?(symbolic = false) prog =
  (* Directive-containing callees are inlined so that kernel ids and the
     reference execution agree on one program. *)
  let prog, env =
    if Codegen.Inline.needs_expansion prog then
      (Codegen.Inline.expand prog, None)
    else (prog, env)
  in
  let tenv =
    match env with Some e -> e | None -> Minic.Typecheck.check prog
  in
  let tp = Codegen.Translate.translate ~opts tenv prog in
  let device = Gpusim.Device.create ?cm ~trace () in
  let metrics = device.Gpusim.Device.metrics in
  let cmodel = device.Gpusim.Device.cm in
  (match obs with
  | None -> ()
  | Some tr ->
      Obs.Trace.set_clock tr (fun () -> metrics.Gpusim.Metrics.host_clock);
      Gpusim.Metrics.set_on_charge metrics (fun cat dt ->
          Obs.Trace.charge tr
            ~category:(Gpusim.Metrics.category_name cat)
            dt);
      Gpusim.Timeline.set_on_event device.Gpusim.Device.timeline (fun e ->
          Obs.Trace.leaf tr Obs.Trace.Device
            (Gpusim.Timeline.kind_name e.Gpusim.Timeline.ev_kind)
            ~attrs:[ ("label", e.Gpusim.Timeline.ev_label) ]
            ~start:e.Gpusim.Timeline.ev_start
            ~duration:e.Gpusim.Timeline.ev_duration ()));
  let in_span kind name ?loc ?directive f =
    match obs with
    | None -> f ()
    | Some tr -> Obs.Trace.with_span tr kind name ?loc ?directive f
  in

  (* Tier 0: symbolic equivalence.  A [Proved] kernel needs no numeric
     comparison run — its occurrences execute sequentially only; the
     other verdicts fall through to the numeric comparator. *)
  let symeq =
    if not symbolic then None
    else
      Some
        (in_span Obs.Trace.Phase "symeq" (fun () ->
             let r = Symeq.Engine.check_tprog tp in
             (match obs with
             | None -> ()
             | Some tr ->
                 Obs.Trace.count tr "symeq.proved" r.Symeq.Engine.proved;
                 Obs.Trace.count tr "symeq.disproved"
                   r.Symeq.Engine.disproved;
                 Obs.Trace.count tr "symeq.unknown" r.Symeq.Engine.unknown);
             r))
  in
  let symbolic_verdict k =
    Option.bind symeq (fun r ->
        List.find_map
          (fun kv ->
            if kv.Symeq.Engine.kv_name = k.k_name then
              Some kv.Symeq.Engine.kv_verdict
            else None)
          r.Symeq.Engine.kernels)
  in
  let proved k =
    match symbolic_verdict k with
    | Some (Symeq.Engine.Proved _) -> true
    | _ -> false
  in

  (* Per-kernel aggregation. *)
  let occurrences = Hashtbl.create 16 in
  let mismatches : (string, mismatch list) Hashtbl.t = Hashtbl.create 16 in
  let assertion_failures : (string, string list) Hashtbl.t =
    Hashtbl.create 16 in
  let add_mismatch k m =
    let cur = Option.value ~default:[] (Hashtbl.find_opt mismatches k.k_name) in
    Hashtbl.replace mismatches k.k_name (m :: cur)
  in

  (* Kernels grouped by their compute region's statement id. *)
  let by_sid = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_sid k.k_sid) in
      Hashtbl.replace by_sid k.k_sid (cur @ [ k ]))
    tp.kernels;

  let queue = 1 in
  let charged_ops = ref 0 in
  let charge_cpu delta =
    charged_ops := !charged_ops + delta;
    Gpusim.Metrics.charge metrics Gpusim.Metrics.Cpu_time
      (Gpusim.Costmodel.cpu_time cmodel ~ops:delta)
  in

  (* Kernel-engine dispatch: under [Compiled], kernel bodies compile once
     per verification run; the surrounding reference execution (and the
     hook's sequential regions) share the same engine-selected reference. *)
  let ecache = lazy (Accrt.Compile.create_cache prog) in
  let exec_kernel sctx k =
    match engine with
    | Accrt.Engine.Tree -> Accrt.Kernel_exec.run sctx device k
    | Accrt.Engine.Compiled ->
        Accrt.Compile.run_kernel (Lazy.force ecache) sctx device k
  in

  let verify_kernel (ctx : Accrt.Eval.ctx) k =
    Hashtbl.replace occurrences k.k_name
      (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences k.k_name));
    in_span Obs.Trace.Kernel k.k_name
      ~loc:(Minic.Loc.to_string k.k_loc) ~directive:k.k_name
    @@ fun () ->
    let env = ctx.Accrt.Eval.env in
    let arrays = Analysis.Varset.elements (kernel_arrays k) in
    (* Demoted transfers: allocate and upload everything the kernel touches,
       asynchronously. *)
    List.iter
      (fun v ->
        let host = Accrt.Value.array_buf env v in
        Gpusim.Device.alloc device v ~like:host;
        Gpusim.Device.upload device v ~host ~async:queue ())
      arrays;
    (* Launch on the GPU against a shadow scalar context. *)
    let sctx = shadow_ctx ctx in
    let r = exec_kernel sctx k in
    Gpusim.Device.launch device ~iterations:r.Accrt.Kernel_exec.iterations
      ~ops_per_iter:k.k_ops_per_iter ~async:queue ();
    (* Sequential reference execution of the original statement (overlaps
       with the asynchronous GPU work). *)
    let ops0 = ctx.Accrt.Eval.ops in
    Accrt.Value.scoped env (fun () -> Accrt.Eval.exec ctx k.k_source);
    charge_cpu (ctx.Accrt.Eval.ops - ops0);
    (* Synchronize, download GPU outputs to temporaries, compare. *)
    Gpusim.Device.wait device (Some queue);
    Analysis.Varset.iter
      (fun v ->
        let reference = Accrt.Value.array_buf env v in
        let gpu_copy = Gpusim.Buf.copy reference in
        Gpusim.Device.download device v ~host:gpu_copy ();
        let n = Gpusim.Buf.length reference in
        Gpusim.Metrics.charge metrics Gpusim.Metrics.Result_comp
          (Gpusim.Costmodel.compare_time cmodel ~elems:n);
        (* §III-C application-knowledge bounds: a difference whose GPU
           value still falls within the user-declared bound for this
           variable is acceptable and not reported. *)
        let idx, count =
          match Vconfig.bound_for config v with
          | None ->
              Gpusim.Buf.compare ~min_value:config.Vconfig.min_value
                ~margin:config.Vconfig.error_margin ~reference gpu_copy
          | Some b ->
              let bad = ref [] and nbad = ref 0 in
              for i = 0 to n - 1 do
                let r = Gpusim.Buf.get_float reference i in
                let g = Gpusim.Buf.get_float gpu_copy i in
                if Float.abs r >= config.Vconfig.min_value then begin
                  let tol =
                    config.Vconfig.error_margin
                    *. Float.max 1.0 (Float.abs r)
                  in
                  let within_bound =
                    g >= b.Vconfig.b_min && g <= b.Vconfig.b_max
                  in
                  if Float.abs (r -. g) > tol && not within_bound then begin
                    incr nbad;
                    if List.length !bad < 5 then bad := i :: !bad
                  end
                end
              done;
              (List.rev !bad, !nbad)
        in
        if count > 0 then
          add_mismatch k
            { m_what = v; m_count = count;
              m_max_diff = Gpusim.Buf.max_abs_diff reference gpu_copy;
              m_first_indices = idx };
        (* §III-C debug assertions on GPU results. *)
        List.iter
          (fun a ->
            if a.Vconfig.a_var = v && not (a.Vconfig.a_check gpu_copy) then
              Hashtbl.replace assertion_failures k.k_name
                (a.Vconfig.a_name
                 :: Option.value ~default:[]
                      (Hashtbl.find_opt assertion_failures k.k_name)))
          config.Vconfig.assertions)
      k.k_arrays_written;
    (* Compare committed scalars against the sequential values. *)
    List.iter
      (fun v ->
        match
          (Accrt.Value.lookup env v,
           Accrt.Value.lookup sctx.Accrt.Eval.env v)
        with
        | Some (Accrt.Value.Scalar c_ref), Some (Accrt.Value.Scalar c_gpu) ->
            let x = Accrt.Value.to_float c_ref.Accrt.Value.v in
            let y = Accrt.Value.to_float c_gpu.Accrt.Value.v in
            Gpusim.Metrics.charge metrics Gpusim.Metrics.Result_comp
              (Gpusim.Costmodel.compare_time cmodel ~elems:1);
            if Float.abs x >= config.Vconfig.min_value then begin
              let tol =
                config.Vconfig.error_margin *. Float.max 1.0 (Float.abs x)
              in
              let within_bound =
                match Vconfig.bound_for config v with
                | Some b -> y >= b.Vconfig.b_min && y <= b.Vconfig.b_max
                | None -> false
              in
              if Float.abs (x -. y) > tol && not within_bound then
                add_mismatch k
                  { m_what = v; m_count = 1;
                    m_max_diff = Float.abs (x -. y); m_first_indices = [] }
            end
        | _ -> ())
      (committed_scalars k);
    (* Release the demoted allocations. *)
    List.iter (fun v -> Gpusim.Device.free device v) arrays
  in

  (* Reference execution with a hook that intercepts compute regions. *)
  let hook (ctx : Accrt.Eval.ctx) s =
    match s.skind with
    | Sacc (d, Some _) when Acc.Query.is_compute d.dir -> (
        match Hashtbl.find_opt by_sid s.sid with
        | None -> false
        | Some kernels ->
            List.iter
              (fun k ->
                let selected = Vconfig.selects config k.k_name in
                if selected && not (proved k) then verify_kernel ctx k
                else begin
                  (* Unselected kernels — and kernels the symbolic tier
                     already proved equivalent — run sequentially only. *)
                  if selected then
                    Hashtbl.replace occurrences k.k_name
                      (1
                      + Option.value ~default:0
                          (Hashtbl.find_opt occurrences k.k_name));
                  let ops0 = ctx.Accrt.Eval.ops in
                  Accrt.Value.scoped ctx.Accrt.Eval.env (fun () ->
                      Accrt.Eval.exec ctx k.k_source);
                  charge_cpu (ctx.Accrt.Eval.ops - ops0)
                end)
              kernels;
            true)
    | _ -> false
  in
  let vctx =
    in_span Obs.Trace.Phase "verify" (fun () ->
        Accrt.Compile.reference ~engine ~hook prog)
  in
  (* Host work outside compute regions (regions were charged as they ran). *)
  Gpusim.Metrics.charge metrics Gpusim.Metrics.Cpu_time
    (Gpusim.Costmodel.cpu_time cmodel
       ~ops:(max 0 (vctx.Accrt.Eval.ops - !charged_ops)));

  (* Pure sequential baseline for normalization. *)
  let ref_ctx = Accrt.Compile.reference ~engine prog in

  let reports =
    Array.to_list tp.kernels
    |> List.filter (fun k -> Vconfig.selects config k.k_name)
    |> List.map (fun k ->
           { kr_kernel = k;
             kr_occurrences =
               Option.value ~default:0 (Hashtbl.find_opt occurrences k.k_name);
             kr_mismatches =
               List.rev
                 (Option.value ~default:[]
                    (Hashtbl.find_opt mismatches k.k_name));
             kr_assertion_failures =
               Option.value ~default:[]
                 (Hashtbl.find_opt assertion_failures k.k_name);
             kr_symbolic = symbolic_verdict k })
  in
  { reports; metrics; timeline = device.Gpusim.Device.timeline;
    sequential_ops = ref_ctx.Accrt.Eval.ops; symeq }

let pp_report ppf r =
  if kernel_ok r then
    Fmt.pf ppf "[OK]   %s (%d occurrence(s))%s" r.kr_kernel.k_name
      r.kr_occurrences
      (match r.kr_symbolic with
      | Some (Symeq.Engine.Proved _) -> " [symbolically proved]"
      | _ -> "")
  else begin
    Fmt.pf ppf "[FAIL] %s (%d occurrence(s)):" r.kr_kernel.k_name
      r.kr_occurrences;
    List.iter
      (fun m ->
        Fmt.pf ppf "@,  %s: %d element(s) differ, max |diff| = %g" m.m_what
          m.m_count m.m_max_diff)
      r.kr_mismatches;
    List.iter
      (fun a -> Fmt.pf ppf "@,  assertion '%s' failed" a)
      r.kr_assertion_failures
  end
