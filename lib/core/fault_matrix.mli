(** Fault-matrix sweep: fault kinds x recovery policies over a set of
    programs, asserting that every combination either recovers
    verified-correct or degrades to CPU fallback — never a silently wrong
    result. *)

type subject = {
  s_name : string;
  s_source : string;
  s_outputs : string list;  (** host variables defining correctness *)
}

type cell = {
  c_bench : string;
  c_kind : Gpusim.Fault_plan.kind;
  c_policy : string;
  c_devices : int;  (** device-set size the cell ran with (1 = classic) *)
  c_injected : int;
  c_retries : int;  (** transfer/alloc retries + checksum re-transfers *)
  c_reexecs : int;
  c_fallbacks : int;
  c_failovers : int;  (** shards re-executed on surviving devices *)
  c_verified : int;
  c_correct : bool;  (** outputs match the sequential reference *)
  c_recovered : bool;  (** run completed without an unrecovered fault *)
  c_device_lost : bool;
  c_overhead : float;  (** simulated time vs. the fault-free baseline *)
}

type t = {
  seed : int;
  cells : cell list;
  traces : (string * Gpusim.Timeline.t) list;
      (** per-cell device timelines (with [trace]), in cell order *)
}

val cell_ok : cell -> bool
val all_ok : t -> bool

(** Policies a fault kind is swept against: transient kinds pair with
    [retry] and [full]; [device-lost] needs [full]'s CPU fallback. *)
val policies_for : Gpusim.Fault_plan.kind -> Accrt.Resilience.policy list

(** Sweep [kinds] (default: all) across [subjects], injecting one
    single-shot fault per cell with the given deterministic [seed];
    [trace] records each cell's device timeline.

    Each count [n > 1] in [device_counts] (default none) additionally
    sweeps device-loss rows on an [n]-member device set: one member (the
    primary and the last, in turn) is killed at the first kernel's launch
    gate under each of the [retry] and [full] policies, so its in-flight
    shard must fail over to the survivors and re-verify. *)
val run :
  ?seed:int -> ?kinds:Gpusim.Fault_plan.kind list -> ?device_counts:int list ->
  ?trace:bool -> subject list -> t

val pp_cell : Format.formatter -> cell -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> string

(** Merged Chrome trace of every traced cell (one process per cell). *)
val trace_json : t -> string
