(** GPU-kernel verification (§III-A).

    Every selected kernel is verified at each dynamic occurrence: it runs on
    the simulated GPU against inputs produced by the sequential reference
    (memory-transfer demotion), its outputs land in temporaries, the
    original sequential code runs, and the results are compared under the
    configured error margin.  Sequential results always win, so errors never
    propagate between kernels. *)

type mismatch = {
  m_what : string;  (** array or scalar name *)
  m_count : int;  (** elements beyond the margin (1 for scalars) *)
  m_max_diff : float;
  m_first_indices : int list;
}

type kernel_report = {
  kr_kernel : Codegen.Tprog.kernel;
  kr_occurrences : int;  (** dynamic launches verified *)
  kr_mismatches : mismatch list;
  kr_assertion_failures : string list;
  kr_symbolic : Symeq.Engine.verdict option;
      (** tier-0 symbolic verdict, when the symbolic tier ran *)
}

type t = {
  reports : kernel_report list;
  metrics : Gpusim.Metrics.t;  (** Figure 3's cost breakdown *)
  timeline : Gpusim.Timeline.t;  (** device events (with [trace]) *)
  sequential_ops : int;  (** pure-reference op count, for normalization *)
  symeq : Symeq.Engine.t option;
      (** symbolic-tier verdicts for every kernel (with [symbolic]) *)
}

val kernel_ok : kernel_report -> bool
val detected_errors : t -> kernel_report list

(** Verify [prog]; [opts] controls translation (use
    {!Codegen.Options.fault_injection} for the Table II experiment);
    [engine] selects the execution engine for both the reference run and
    the simulated kernels (verdicts are engine-independent);
    [env] may pass a pre-computed type environment.  [obs] records a
    "verify" phase span with one [Kernel] span per verified occurrence and
    all metrics charges; [trace] additionally records the device timeline
    (exported as [Device] leaves when [obs] is also given).

    [symbolic] enables the tier-0 symbolic equivalence check
    ({!Symeq.Engine}): kernels it proves equivalent skip the numeric
    comparison run entirely (their occurrences execute sequentially
    only), [Unknown] kernels fall back to the numeric comparator, and
    [Disproved] kernels still run numerically so the two tiers can be
    cross-checked.  With [obs], the tier runs under a "symeq" phase span
    and records [symeq.proved]/[symeq.disproved]/[symeq.unknown]
    counters. *)
val verify :
  ?opts:Codegen.Options.t -> ?config:Vconfig.t -> ?engine:Accrt.Engine.t ->
  ?env:Minic.Typecheck.env option -> ?cm:Gpusim.Costmodel.t ->
  ?obs:Obs.Trace.t -> ?trace:bool -> ?symbolic:bool -> Minic.Ast.program -> t

val pp_report : Format.formatter -> kernel_report -> unit
