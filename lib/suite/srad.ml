(** SRAD: Rodinia speckle-reducing anisotropic diffusion on a 2-D image.

    Eight kernels: squared image, four directional derivatives, the
    diffusion coefficient (private temporary), the image update, and a final
    normalization kernel.  The unoptimized port downloads the image every
    iteration although the host statistics only run after the loop — the
    deferred-update suggestion (paper Listing 4) moves that download past
    the loop. *)

let kernels = 8
let private_ = 1
let reduction = 0

let body = {|
int main() {
  int dim = 20;
  int iters = 6;
  float img[dim][dim];
  float g[dim][dim];
  float dn[dim][dim];
  float ds[dim][dim];
  float dw[dim][dim];
  float de[dim][dim];
  float c[dim][dim];
  float qsq;
  float mean = 0.0;
  float lambda = 0.05;
  for (int i = 0; i < dim; i++) {
    for (int j = 0; j < dim; j++) {
      img[i][j] = 1.0 + 0.01 * float(((i * dim + j) * 29) % 53);
    }
  }
  __REGION__
  return 0;
}
|}

let tail = {|mean = 0.0;
  for (int i = 0; i < dim; i++) {
    for (int j = 0; j < dim; j++) { mean = mean + img[i][j]; }
  }
  mean = mean / float(dim * dim);
  #pragma acc kernels loop gang worker
  for (int i = 0; i < dim; i++) {
    for (int j = 0; j < dim; j++) {
      g[i][j] = img[i][j] / (mean + 0.0001);
    }
  }|}

let loop_kernels = {|#pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) { g[i][j] = img[i][j] * img[i][j]; }
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        dn[i][j] = (i > 0) ? (img[i - 1][j] - img[i][j]) : 0.0;
      }
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        ds[i][j] = (i < dim - 1) ? (img[i + 1][j] - img[i][j]) : 0.0;
      }
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        dw[i][j] = (j > 0) ? (img[i][j - 1] - img[i][j]) : 0.0;
      }
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        de[i][j] = (j < dim - 1) ? (img[i][j + 1] - img[i][j]) : 0.0;
      }
    }
    #pragma acc kernels loop gang worker private(qsq)
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        qsq = (dn[i][j] * dn[i][j] + ds[i][j] * ds[i][j]
               + dw[i][j] * dw[i][j] + de[i][j] * de[i][j])
              / (g[i][j] + 0.0001);
        c[i][j] = 1.0 / (1.0 + qsq);
      }
    }
    #pragma acc kernels loop gang worker
    for (int i = 0; i < dim; i++) {
      for (int j = 0; j < dim; j++) {
        img[i][j] = img[i][j]
                    + 0.25 * lambda * c[i][j]
                      * (dn[i][j] + ds[i][j] + dw[i][j] + de[i][j]);
      }
    }|}

let region =
  "for (int it = 0; it < iters; it++) {\n    " ^ loop_kernels
  ^ "\n    #pragma acc update host(img)\n  }\n  " ^ tail

let region_opt =
  "#pragma acc data copyin(img) create(g, dn, ds, dw, de, c)\n  {\n  \
   for (int it = 0; it < iters; it++) {\n    " ^ loop_kernels
  ^ "\n  }\n  #pragma acc update host(img)\n  " ^ tail ^ "\n  }"

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "SRAD";
    description = "Rodinia SRAD: anisotropic diffusion with deferred download";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "img"; "mean" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
