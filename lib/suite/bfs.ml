(** BFS: Rodinia breadth-first search on an implicit graph.

    Two plain kernels per level (frontier expansion and frontier swap); the
    host inspects the frontier each level to decide termination, so one
    download per level is required.  Integer arrays exercise the [Ibuf]
    side of the device memory. *)

let kernels = 2
let private_ = 0
let reduction = 0

let body = {|
int main() {
  int nv = 64;
  int maxdepth = 40;
  int dfinal = 0;
  int levels[nv];
  int frontier[nv];
  int nextf[nv];
  int cont = 1;
  for (int i = 0; i < nv; i++) {
    levels[i] = 0 - 1;
    frontier[i] = 0;
    nextf[i] = 0;
  }
  frontier[0] = 1;
  levels[0] = 0;
  __REGION__
  int reached = 0;
  for (int i = 0; i < nv; i++) {
    if (levels[i] >= 0) { reached = reached + 1; }
  }
  return 0;
}
|}

let region = {|for (int depth = 0; depth < maxdepth; depth++) {
    #pragma acc kernels loop gang worker
    for (int v = 0; v < nv; v++) {
      if (frontier[v] == 1) {
        if (levels[(v + 1) % nv] == 0 - 1) {
          levels[(v + 1) % nv] = depth + 1;
          nextf[(v + 1) % nv] = 1;
        }
        if (levels[(v + 7) % nv] == 0 - 1) {
          levels[(v + 7) % nv] = depth + 1;
          nextf[(v + 7) % nv] = 1;
        }
      }
    }
    #pragma acc kernels loop gang worker
    for (int v = 0; v < nv; v++) {
      frontier[v] = nextf[v];
      nextf[v] = 0;
    }
    #pragma acc update host(frontier)
    cont = 0;
    for (int v = 0; v < nv; v++) {
      if (frontier[v] == 1) { cont = 1; }
    }
    if (cont == 1) { dfinal = depth + 1; }
    if (cont == 0) { break; }
  }|}

let region_opt = {|#pragma acc data create(nextf) copy(levels) copyin(frontier)
  {
  for (int depth = 0; depth < maxdepth; depth++) {
    #pragma acc kernels loop gang worker
    for (int v = 0; v < nv; v++) {
      if (frontier[v] == 1) {
        if (levels[(v + 1) % nv] == 0 - 1) {
          levels[(v + 1) % nv] = depth + 1;
          nextf[(v + 1) % nv] = 1;
        }
        if (levels[(v + 7) % nv] == 0 - 1) {
          levels[(v + 7) % nv] = depth + 1;
          nextf[(v + 7) % nv] = 1;
        }
      }
    }
    #pragma acc kernels loop gang worker
    for (int v = 0; v < nv; v++) {
      frontier[v] = nextf[v];
      nextf[v] = 0;
    }
    #pragma acc update host(frontier)
    cont = 0;
    for (int v = 0; v < nv; v++) {
      if (frontier[v] == 1) { cont = 1; }
    }
    if (cont == 1) { dfinal = depth + 1; }
    if (cont == 0) { break; }
  }
  }|}

let subst r = Str_util.replace ~needle:"__REGION__" ~with_:r body

let bench : Bench_def.t =
  { name = "BFS";
    description = "Rodinia BFS: level-synchronous breadth-first search";
    source = subst region;
    optimized = subst region_opt;
    outputs = [ "levels"; "reached"; "dfinal" ];
    expected_kernels = kernels;
    expected_private = private_;
    expected_reduction = reduction }
