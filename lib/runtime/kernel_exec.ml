(** GPU-kernel execution on the simulated device.

    Iterations of the parallel loop play the role of GPU threads.  They run
    sequentially but with the memory semantics parallel execution would have:

    - arrays are shared and live in device memory;
    - private/firstprivate scalars (and loop induction variables) are fresh
      per iteration, initialized from the kernel-entry host value;
    - reduction scalars accumulate into per-thread partials that are combined
      in pairwise tree order, so float results differ from the sequential
      reference in the last bits — the CPU/GPU precision mismatch that
      motivates the paper's configurable error margin;
    - an {e active} raced scalar is re-initialized from the kernel-entry
      value at every iteration: every "thread" reads the stale initial value
      and the last writer wins — the canonical GPU race outcome;
    - a {e latent} raced scalar is register-promoted by the backend and
      behaves like a private one; only its final (dead) writeback races, so
      outputs never differ (§IV-B's undetectable latent errors). *)

open Minic.Ast
open Codegen.Tprog
open Value

type result = { iterations : int; ops : int }

let identity op init_value =
  match (op, init_value) with
  | Rsum, Int _ -> Int 0
  | Rsum, Flt _ -> Flt 0.0
  | Rprod, Int _ -> Int 1
  | Rprod, Flt _ -> Flt 1.0
  | Rmax, Int _ -> Int min_int
  | Rmax, Flt _ -> Flt Float.neg_infinity
  | Rmin, Int _ -> Int max_int
  | Rmin, Flt _ -> Flt Float.infinity
  | Rland, _ -> Int 1
  | Rlor, _ -> Int 0

let combine op a b =
  match op with
  | Rsum -> Eval.arith Add a b
  | Rprod -> Eval.arith Mul a b
  | Rmax -> (
      match (a, b) with
      | Int x, Int y -> Int (max x y)
      | _ -> Flt (Float.max (to_float a) (to_float b)))
  | Rmin -> (
      match (a, b) with
      | Int x, Int y -> Int (min x y)
      | _ -> Flt (Float.min (to_float a) (to_float b)))
  | Rland -> Int (if truthy a && truthy b then 1 else 0)
  | Rlor -> Int (if truthy a || truthy b then 1 else 0)

(* Pairwise (tree-order) combination of the per-thread partials. *)
let rec tree_reduce op = function
  | [] -> None
  | [ x ] -> Some x
  | l ->
      let rec pair = function
        | a :: b :: rest -> combine op a b :: pair rest
        | rest -> rest
      in
      tree_reduce op (pair l)

(* All names appearing in a statement list. *)
let names_of_block block =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec expr = function
    | Eint _ | Efloat _ -> ()
    | Evar v -> add v
    | Eindex (a, i) -> expr a; expr i
    | Eunop (_, a) -> expr a
    | Ebinop (_, a, b) -> expr a; expr b
    | Ecall (_, args) -> List.iter expr args
    | Econd (c, a, b) -> expr c; expr a; expr b
  in
  let rec lv = function
    | Lvar v -> add v
    | Lindex (b, i) -> lv b; expr i
  in
  let rec stmt s =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> ()
    | Sexpr e -> expr e
    | Sassign (l, e) -> lv l; expr e
    | Sdecl (_, v, init) -> add v; Option.iter expr init
    | Sif (c, b1, b2) -> expr c; List.iter stmt b1; List.iter stmt b2
    | Swhile (c, b) -> expr c; List.iter stmt b
    | Sfor (i, c, st, b) ->
        Option.iter stmt i; Option.iter expr c; Option.iter stmt st;
        List.iter stmt b
    | Sblock b -> List.iter stmt b
    | Sreturn e -> Option.iter expr e
    | Sacc (_, b) -> Option.iter stmt b
  in
  List.iter stmt block;
  !acc

let kernel_names k =
  let header =
    match k.k_loop with
    | None -> []
    | Some l ->
        [ mk_stmt (Sassign (Lvar l.kl_var, l.kl_init));
          mk_stmt (Sexpr l.kl_cond) ]
        @ Option.to_list l.kl_step
  in
  names_of_block (header @ k.k_body)

(** Execute kernel [k] against [device], reading initial scalar values from —
    and committing results to — the host environment of [host_ctx]. *)
let run (host_ctx : Eval.ctx) device (k : kernel) : result =
  let host_env = host_ctx.Eval.env in
  let names = kernel_names k in

  (* Base frame: device-array bindings and kernel-entry scalar copies. *)
  let base : Value.frame = Hashtbl.create 16 in
  let entry = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Value.lookup host_env n with
      | Some (Array slot) ->
          let root = slot.root in
          let dbuf = Gpusim.Device.buffer device root in
          Hashtbl.replace base n
            (Array { buf = Some dbuf; root; shape = Value.shape_of slot })
      | Some (Scalar c) ->
          Hashtbl.replace entry n c.v;
          Hashtbl.replace base n (Scalar { v = c.v })
      | None -> () (* declared inside the kernel body *))
    names;

  let kenv : Value.t =
    { Value.globals = Hashtbl.create 1; frames = [ base ] }
  in
  let kctx = Eval.make host_ctx.Eval.prog kenv in

  let entry_value v =
    match Hashtbl.find_opt entry v with Some x -> x | None -> Int 0
  in

  (* Scalars handled per-thread, with their treatment. *)
  let class_of = k.k_scalars in
  let extra_induction =
    Analysis.Varset.filter
      (fun v ->
        Hashtbl.mem entry v && not (List.mem_assoc v class_of)
        && (match k.k_loop with Some l -> v <> l.kl_var | None -> true))
      k.k_induction
  in

  let partials : (string, scalar list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (v, c) ->
      match c with
      | Sc_reduction _ -> Hashtbl.replace partials v (ref [])
      | Sc_private | Sc_firstprivate | Sc_raced _ -> ())
    class_of;
  let last_values : (string, scalar) Hashtbl.t = Hashtbl.create 8 in

  let fresh_thread_frame () =
    let frame = Hashtbl.create 8 in
    List.iter
      (fun (v, c) ->
        let init =
          match c with
          | Sc_reduction op -> identity op (entry_value v)
          | Sc_private | Sc_firstprivate | Sc_raced _ -> entry_value v
        in
        Hashtbl.replace frame v (Scalar { v = init }))
      class_of;
    Analysis.Varset.iter
      (fun v -> Hashtbl.replace frame v (Scalar { v = entry_value v }))
      extra_induction;
    frame
  in

  let record_thread_results frame =
    Hashtbl.iter
      (fun v b ->
        match b with
        | Scalar c -> (
            match List.assoc_opt v class_of with
            | Some (Sc_reduction _) -> (
                match Hashtbl.find_opt partials v with
                | Some l -> l := c.v :: !l
                | None -> ())
            | Some _ -> Hashtbl.replace last_values v c.v
            | None ->
                if Analysis.Varset.mem v extra_induction then
                  Hashtbl.replace last_values v c.v)
        | Array _ -> ())
      frame
  in

  let iterations = ref 0 in
  (match k.k_loop with
  | None ->
      (* Single-thread kernel. *)
      iterations := 1;
      let frame = fresh_thread_frame () in
      kenv.frames <- frame :: kenv.frames;
      Value.scoped kenv (fun () -> Eval.exec_block kctx k.k_body);
      kenv.frames <- List.tl kenv.frames;
      record_thread_results frame
  | Some l when k.k_seq ->
      (* seq clause: genuinely sequential on the device — persistent scalar
         state across iterations, no race semantics. *)
      iterations := 0;
      let frame = fresh_thread_frame () in
      (* sequential semantics: start private-ish cells from entry values *)
      List.iter
        (fun (v, _) ->
          Hashtbl.replace frame v (Scalar { v = entry_value v }))
        class_of;
      kenv.frames <- frame :: kenv.frames;
      let driver = { v = Eval.eval kctx l.kl_init } in
      Hashtbl.replace frame l.kl_var (Scalar driver);
      while truthy (Eval.eval kctx l.kl_cond) do
        incr iterations;
        Value.scoped kenv (fun () -> Eval.exec_block kctx l.kl_body);
        match l.kl_step with
        | Some st -> Eval.exec kctx st
        | None -> ()
      done;
      kenv.frames <- List.tl kenv.frames;
      (* Sequential commits: every handled scalar takes its final value. *)
      Hashtbl.iter
        (fun v b ->
          match b with
          | Scalar c when v <> l.kl_var ->
              Hashtbl.replace last_values v c.v
          | _ -> ())
        frame;
      (match Hashtbl.find_opt frame l.kl_var with
      | Some (Scalar c) -> Hashtbl.replace last_values l.kl_var c.v
      | _ -> ())
  | Some l ->
      (* Parallel loop: one thread per iteration. *)
      let driver = { v = Eval.eval kctx l.kl_init } in
      Hashtbl.replace base l.kl_var (Scalar driver);
      while truthy (Eval.eval kctx l.kl_cond) do
        incr iterations;
        let frame = fresh_thread_frame () in
        kenv.frames <- frame :: kenv.frames;
        Value.scoped kenv (fun () -> Eval.exec_block kctx l.kl_body);
        kenv.frames <- List.tl kenv.frames;
        record_thread_results frame;
        match l.kl_step with
        | Some st -> Eval.exec kctx st
        | None -> ()
      done;
      (* The loop variable's exit value matches sequential execution. *)
      Hashtbl.replace last_values l.kl_var driver.v);

  (* Commit results back to the host environment. *)
  List.iter
    (fun (v, c) ->
      match Value.lookup host_env v with
      | Some (Scalar host_cell) -> (
          match c with
          | Sc_reduction op when not k.k_seq -> (
              let parts =
                match Hashtbl.find_opt partials v with
                | Some l -> List.rev !l
                | None -> []
              in
              match tree_reduce op parts with
              | Some total -> host_cell.v <- combine op (entry_value v) total
              | None -> ())
          | Sc_reduction _ | Sc_private | Sc_firstprivate | Sc_raced _ -> (
              match Hashtbl.find_opt last_values v with
              | Some value -> host_cell.v <- value
              | None -> ()))
      | Some (Array _) | None -> ())
    class_of;
  (* Loop variable and other outer induction variables. *)
  let commit_plain v =
    match (Value.lookup host_env v, Hashtbl.find_opt last_values v) with
    | Some (Scalar host_cell), Some value -> host_cell.v <- value
    | _ -> ()
  in
  (match k.k_loop with Some l -> commit_plain l.kl_var | None -> ());
  Analysis.Varset.iter commit_plain extra_induction;

  { iterations = !iterations; ops = kctx.Eval.ops }

(* ------------------- multi-device (sharded) execution ------------------- *)

(* A parallel (non-seq) loop kernel can be split across a device set; seq
   and straight-line kernels are pinned to one member by the runtime. *)
let shardable k =
  match k.k_loop with Some _ -> not k.k_seq | None -> false

(** A sharded execution of one kernel across a device set.  Every shard
    steps the full loop driver but executes only the iteration ordinals it
    owns, against its own device's buffers.  Scalar results are staged
    per-shard and published only when the shard completes without a device
    fault — a dying device's in-flight contribution is discarded wholesale —
    and are tagged with their iteration ordinal, so reductions combine in
    exactly the single-device tree order no matter how the space was split
    or how many failover passes re-executed lost ordinals. *)
type session = {
  s_host : Eval.ctx;
  s_k : kernel;
  s_names : string list;
  s_entry : (string, scalar) Hashtbl.t;  (** kernel-entry scalar values *)
  s_extra : Analysis.Varset.t;  (** outer induction vars (beyond the loop) *)
  s_red : (string, (int * scalar) list ref) Hashtbl.t;
      (** reduction partials, ordinal-tagged *)
  s_last : (string, int * scalar) Hashtbl.t;
      (** private/raced commits: highest-ordinal writer wins *)
  mutable s_exit : scalar option;  (** loop variable's exit value *)
  mutable s_total : int;  (** iteration-space size *)
}

let entry_value_of s v =
  match Hashtbl.find_opt s.s_entry v with Some x -> x | None -> Int 0

(* Scratch context over kernel-entry scalar copies and the host's array
   slots: enough to evaluate the loop driver without touching any device. *)
let scratch_ctx s =
  let base : Value.frame = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Value.lookup s.s_host.Eval.env n with
      | Some (Array slot) -> Hashtbl.replace base n (Array slot)
      | Some (Scalar c) -> Hashtbl.replace base n (Scalar { v = c.v })
      | None -> ())
    s.s_names;
  let kenv : Value.t =
    { Value.globals = Hashtbl.create 1; frames = [ base ] }
  in
  (base, Eval.make s.s_host.Eval.prog kenv)

let start (host_ctx : Eval.ctx) (k : kernel) : session =
  if not (shardable k) then
    invalid_arg "Kernel_exec.start: kernel is not shardable";
  let names = kernel_names k in
  let entry = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Value.lookup host_ctx.Eval.env n with
      | Some (Scalar c) -> Hashtbl.replace entry n c.v
      | Some (Array _) | None -> ())
    names;
  let extra =
    Analysis.Varset.filter
      (fun v ->
        Hashtbl.mem entry v
        && (not (List.mem_assoc v k.k_scalars))
        && (match k.k_loop with Some l -> v <> l.kl_var | None -> true))
      k.k_induction
  in
  let s =
    { s_host = host_ctx; s_k = k; s_names = names; s_entry = entry;
      s_extra = extra; s_red = Hashtbl.create 4; s_last = Hashtbl.create 8;
      s_exit = None; s_total = 0 }
  in
  List.iter
    (fun (v, c) ->
      match c with
      | Sc_reduction _ -> Hashtbl.replace s.s_red v (ref [])
      | Sc_private | Sc_firstprivate | Sc_raced _ -> ())
    k.k_scalars;
  (* Driver-only pass: size the iteration space and capture the loop
     variable's sequential exit value, without any device involved. *)
  (match k.k_loop with
  | None -> s.s_total <- 1
  | Some l ->
      let base, kctx = scratch_ctx s in
      let driver = { v = Eval.eval kctx l.kl_init } in
      Hashtbl.replace base l.kl_var (Scalar driver);
      let n = ref 0 in
      while truthy (Eval.eval kctx l.kl_cond) do
        incr n;
        match l.kl_step with
        | Some st -> Eval.exec kctx st
        | None -> ()
      done;
      s.s_exit <- Some driver.v;
      s.s_total <- !n);
  s

let total_iterations s = s.s_total

(** Execute the ordinals selected by [owns] on [device], against its
    buffers.  Returns the number of iterations executed.  [weights]
    (sized [total_iterations]) receives the measured interpreted-op
    count of every executed ordinal — the per-iteration work the
    imbalance analyzer re-costs under alternative schedules.  Raises
    [Gpusim.Device.Device_fault] if the device dies; staged scalar results
    of the aborted shard are discarded. *)
let run_shard s ?weights device ~owns =
  let k = s.s_k in
  let l =
    match k.k_loop with
    | Some l when not k.k_seq -> l
    | Some _ | None -> invalid_arg "Kernel_exec.run_shard: not shardable"
  in
  let host_env = s.s_host.Eval.env in
  let base : Value.frame = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Value.lookup host_env n with
      | Some (Array slot) ->
          let root = slot.root in
          let dbuf = Gpusim.Device.buffer device root in
          Hashtbl.replace base n
            (Array { buf = Some dbuf; root; shape = Value.shape_of slot })
      | Some (Scalar _) ->
          Hashtbl.replace base n (Scalar { v = entry_value_of s n })
      | None -> ())
    s.s_names;
  let kenv : Value.t =
    { Value.globals = Hashtbl.create 1; frames = [ base ] }
  in
  let kctx = Eval.make s.s_host.Eval.prog kenv in
  let class_of = k.k_scalars in
  let fresh_thread_frame () =
    let frame = Hashtbl.create 8 in
    List.iter
      (fun (v, c) ->
        let init =
          match c with
          | Sc_reduction op -> identity op (entry_value_of s v)
          | Sc_private | Sc_firstprivate | Sc_raced _ -> entry_value_of s v
        in
        Hashtbl.replace frame v (Scalar { v = init }))
      class_of;
    Analysis.Varset.iter
      (fun v -> Hashtbl.replace frame v (Scalar { v = entry_value_of s v }))
      s.s_extra;
    frame
  in
  (* Staged results, published only on clean shard completion. *)
  let staged_red : (string, (int * scalar) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (v, c) ->
      match c with
      | Sc_reduction _ -> Hashtbl.replace staged_red v (ref [])
      | Sc_private | Sc_firstprivate | Sc_raced _ -> ())
    class_of;
  let staged_last : (string, int * scalar) Hashtbl.t = Hashtbl.create 8 in
  let record ordinal frame =
    Hashtbl.iter
      (fun v b ->
        match b with
        | Scalar c -> (
            match List.assoc_opt v class_of with
            | Some (Sc_reduction _) -> (
                match Hashtbl.find_opt staged_red v with
                | Some r -> r := (ordinal, c.v) :: !r
                | None -> ())
            | Some _ -> Hashtbl.replace staged_last v (ordinal, c.v)
            | None ->
                if Analysis.Varset.mem v s.s_extra then
                  Hashtbl.replace staged_last v (ordinal, c.v))
        | Array _ -> ())
      frame
  in
  let executed = ref 0 in
  let ordinal = ref 0 in
  let driver = { v = Eval.eval kctx l.kl_init } in
  Hashtbl.replace base l.kl_var (Scalar driver);
  while truthy (Eval.eval kctx l.kl_cond) do
    if owns !ordinal then begin
      incr executed;
      let frame = fresh_thread_frame () in
      kenv.frames <- frame :: kenv.frames;
      let ops0 = kctx.Eval.ops in
      Value.scoped kenv (fun () -> Eval.exec_block kctx l.kl_body);
      (match weights with
      | Some w when !ordinal < Array.length w ->
          w.(!ordinal) <- kctx.Eval.ops - ops0
      | Some _ | None -> ());
      kenv.frames <- List.tl kenv.frames;
      record !ordinal frame
    end;
    incr ordinal;
    match l.kl_step with
    | Some st -> Eval.exec kctx st
    | None -> ()
  done;
  (* Clean completion: publish the staged scalar results. *)
  Hashtbl.iter
    (fun v r ->
      match Hashtbl.find_opt s.s_red v with
      | Some dst -> dst := !r @ !dst
      | None -> ())
    staged_red;
  Hashtbl.iter
    (fun v (o, x) ->
      match Hashtbl.find_opt s.s_last v with
      | Some (o', _) when o' > o -> ()
      | Some _ | None -> Hashtbl.replace s.s_last v (o, x))
    staged_last;
  !executed

(** Commit the merged scalar results to the host environment, in the same
    order and combination scheme as single-device {!run}. *)
let commit s =
  let k = s.s_k in
  let host_env = s.s_host.Eval.env in
  List.iter
    (fun (v, c) ->
      match Value.lookup host_env v with
      | Some (Scalar host_cell) -> (
          match c with
          | Sc_reduction op -> (
              let parts =
                match Hashtbl.find_opt s.s_red v with
                | Some r ->
                    List.sort (fun (a, _) (b, _) -> compare a b) !r
                    |> List.map snd
                | None -> []
              in
              match tree_reduce op parts with
              | Some total ->
                  host_cell.v <- combine op (entry_value_of s v) total
              | None -> ())
          | Sc_private | Sc_firstprivate | Sc_raced _ -> (
              match Hashtbl.find_opt s.s_last v with
              | Some (_, value) -> host_cell.v <- value
              | None -> ()))
      | Some (Array _) | None -> ())
    k.k_scalars;
  (match k.k_loop with
  | Some l -> (
      match (Value.lookup host_env l.kl_var, s.s_exit) with
      | Some (Scalar cell), Some v -> cell.v <- v
      | _ -> ())
  | None -> ());
  Analysis.Varset.iter
    (fun v ->
      match (Value.lookup host_env v, Hashtbl.find_opt s.s_last v) with
      | Some (Scalar host_cell), Some (_, value) -> host_cell.v <- value
      | _ -> ())
    s.s_extra
