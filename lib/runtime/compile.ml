(** Closure-compilation engine for Mini-C execution.

    Compiles expressions and statements into nested OCaml closures over an
    array-backed register frame: a {!Resolve} pass assigns every declared
    variable a register slot at compile time, so variable access is an array
    index instead of string hashing over a frame stack, and all AST-tag
    dispatch happens once, at compile time.

    The engine is observably {e bit-identical} to the tree walker in
    {!Eval} / {!Kernel_exec}: every compiled node bumps [ops] exactly like
    its tree counterpart, [stmt_hook] / [call_hook] fire with the same
    arguments in the same order, error messages are byte-equal, reduction
    partials combine in the same pairwise tree order, and closures mirror
    the tree walker's exact OCaml expression shapes so argument evaluation
    order is identical.  The differential test suite enforces this over the
    whole benchmark suite.

    Two modes:

    - {e mirror} mode (the sequential reference path): every declaration is
      also published into the name-addressable {!Value} environment and
      scopes push/pop real (pooled) frames, so [stmt_hook]s — which execute
      tree-walked code against the environment by name (kernel verification,
      coherence instrumentation) — observe exactly the state the tree walker
      would produce.  Registers hold the {e same} cells/slots as the
      environment, so the two views can never diverge.
    - {e register} mode (kernel bodies): no name mirror at all — every name
      of the kernel body is register-resolved, which is what makes compiled
      kernels fast.  Kernels compile once and are cached by kernel id, so
      repeated launches (JACOBI sweeps) reuse the closure. *)

open Minic.Ast
open Codegen.Tprog
open Value
open Eval

(** A register: what a frame-stack lookup of the name would find. *)
type reg = Unbound | Rscalar of Value.cell | Rarray of Value.slot

(** Execution state of one activation: the shared evaluator context (ops
    accounting, hooks, environment) plus the activation's registers. *)
type st = { ctx : Eval.ctx; regs : reg array }

type cexp = st -> scalar
type cstm = st -> unit

(** A compilation unit: one program, one mode, lazily-compiled functions. *)
type cu = {
  uprog : program;
  umirror : bool;
  ufuncs : (string, cfun option ref) Hashtbl.t;
}

and cfun = { cf_nregs : int; cf_body : cstm }
(** Parameters occupy registers [0 .. n-1] in declaration order. *)

let unit_of ~mirror prog =
  { uprog = prog; umirror = mirror; ufuncs = Hashtbl.create 8 }

let fun_ref u f =
  match Hashtbl.find_opt u.ufuncs f with
  | Some r -> r
  | None ->
      let r = ref None in
      Hashtbl.add u.ufuncs f r;
      r

(* Register accessors: the same dispatch (and the same error messages) a
   frame-stack lookup would produce. *)

let reg_cell st i name =
  match st.regs.(i) with
  | Rscalar c -> c
  | Rarray _ -> error "'%s' used as a scalar but holds an array" name
  | Unbound -> error "unbound variable '%s'" name

let reg_slot st i name =
  match st.regs.(i) with
  | Rarray s -> s
  | Rscalar _ -> error "'%s' used as an array but holds a scalar" name
  | Unbound -> error "unbound variable '%s'" name

let reg_of_binding = function
  | Scalar c -> Rscalar c
  | Array s -> Rarray s

(* ------------------------------------------------------------------ *)
(* Expression and statement compilation.                               *)
(* ------------------------------------------------------------------ *)

let rec cexpr u res e : cexp =
  match e with
  | Eint n ->
      let v = Int n in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        v
  | Efloat f ->
      let v = Flt f in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        v
  | Evar v -> (
      match Resolve.slot_of res v with
      | Some i ->
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            (reg_cell st i v).v
      | None ->
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            get_scalar st.ctx.env v)
  | Eindex (a, i) ->
      let name = view_name a in
      let cvw = cview u res a in
      let ci = cexpr u res i in
      fun st -> (
        st.ctx.ops <- st.ctx.ops + 1;
        let vw = cvw st in
        let idx = to_int (ci st) in
        let vw = view_step name vw idx in
        match Array.length vw.vshape with
        | 0 ->
            if is_float_buf vw.vbuf then
              Flt (Gpusim.Buf.get_float vw.vbuf vw.voff)
            else Int (Gpusim.Buf.get_int vw.vbuf vw.voff)
        | _ ->
            error "'%s' needs %d more subscript(s) to yield a value" name
              (Array.length vw.vshape))
  | Eunop (Neg, a) ->
      let ca = cexpr u res a in
      fun st -> (
        st.ctx.ops <- st.ctx.ops + 1;
        match ca st with Int n -> Int (-n) | Flt f -> Flt (-.f))
  | Eunop (Not, a) ->
      let ca = cexpr u res a in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        of_bool (not (truthy (ca st)))
  | Ebinop (Land, a, b) ->
      let ca = cexpr u res a in
      let cb = cexpr u res b in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        if truthy (ca st) then of_bool (truthy (cb st)) else int_false
  | Ebinop (Lor, a, b) ->
      let ca = cexpr u res a in
      let cb = cexpr u res b in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        if truthy (ca st) then int_true else of_bool (truthy (cb st))
  | Ebinop (op, a, b) ->
      let ca = cexpr u res a in
      let cb = cexpr u res b in
      (* Same application shape as the tree walker, so the (right-to-left)
         argument evaluation order is identical. *)
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        arith op (ca st) (cb st)
  | Ecall (f, args) -> ccall u res f args
  | Econd (c, a, b) ->
      let cc = cexpr u res c in
      let ca = cexpr u res a in
      let cb = cexpr u res b in
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        if truthy (cc st) then ca st else cb st

(* Mirrors [Eval.eval_view]: no ops bump of its own. *)
and cview u res e : st -> Eval.aview =
  match e with
  | Evar v -> (
      match Resolve.slot_of res v with
      | Some i -> fun st -> view_of_slot v (reg_slot st i v)
      | None -> fun st -> view_of_slot v (array_slot st.ctx.env v))
  | Eindex (a, i) ->
      let name = view_name a in
      let cvw = cview u res a in
      let ci = cexpr u res i in
      fun st ->
        let vw = cvw st in
        let idx = to_int (ci st) in
        view_step name vw idx
  | _ -> fun _ -> error "expected an array expression"

and ccall u res f args : cexp =
  if is_acc_routine f then begin
    let cargs = List.map (cexpr u res) args in
    fun st -> (
      st.ctx.ops <- st.ctx.ops + 1;
      let vargs = List.map (fun c -> c st) cargs in
      match st.ctx.call_hook with
      | Some h -> (
          match h f vargs with
          | Some v -> v
          | None -> error "unknown OpenACC runtime routine '%s'" f)
      | None -> host_acc_routine f vargs)
  end
  else
    let float1 g =
      match args with
      | [ a ] ->
          let ca = cexpr u res a in
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            Flt (g (to_float (ca st)))
      | _ ->
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            error "builtin '%s' expects 1 argument" f
    in
    match f with
    | "sqrt" -> float1 sqrt
    | "fabs" -> float1 Float.abs
    | "exp" -> float1 exp
    | "log" -> float1 log
    | "sin" -> float1 sin
    | "cos" -> float1 cos
    | "floor" -> float1 Float.floor
    | "ceil" -> float1 Float.ceil
    | "float" -> float1 Fun.id
    | "int" -> (
        match args with
        | [ a ] ->
            let ca = cexpr u res a in
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              Int (to_int (ca st))
        | _ ->
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              error "int() expects 1 argument")
    | "abs" -> (
        match args with
        | [ a ] ->
            let ca = cexpr u res a in
            fun st -> (
              st.ctx.ops <- st.ctx.ops + 1;
              match ca st with
              | Int n -> Int (abs n)
              | Flt x -> Flt (Float.abs x))
        | _ ->
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              error "abs() expects 1 argument")
    | "pow" -> (
        match args with
        | [ a; b ] ->
            let ca = cexpr u res a in
            let cb = cexpr u res b in
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              Flt (Float.pow (to_float (ca st)) (to_float (cb st)))
        | _ ->
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              error "pow() expects 2 arguments")
    | "min" | "max" -> (
        match args with
        | [ a; b ] ->
            let ca = cexpr u res a in
            let cb = cexpr u res b in
            if f = "min" then
              fun st -> (
                st.ctx.ops <- st.ctx.ops + 1;
                let x = ca st and y = cb st in
                match (x, y) with
                | Int i, Int j -> Int (min i j)
                | _ ->
                    let i = to_float x and j = to_float y in
                    Flt (Float.min i j))
            else
              fun st -> (
                st.ctx.ops <- st.ctx.ops + 1;
                let x = ca st and y = cb st in
                match (x, y) with
                | Int i, Int j -> Int (max i j)
                | _ ->
                    let i = to_float x and j = to_float y in
                    Flt (Float.max i j))
        | _ ->
            fun st ->
              st.ctx.ops <- st.ctx.ops + 1;
              error "%s() expects 2 arguments" f)
    | _ -> cuser u res f args

and cuser u res f args : cexp =
  match Minic.Ast.find_function u.uprog f with
  | None ->
      fun st ->
        st.ctx.ops <- st.ctx.ops + 1;
        error "call to unknown function '%s'" f
  | Some fn ->
      if List.length args <> List.length fn.f_params then
        fun st ->
          st.ctx.ops <- st.ctx.ops + 1;
          error "arity mismatch calling '%s'" f
      else begin
        let r = fun_ref u f in
        (* Per-parameter binders, evaluated left-to-right like the tree
           walker's [List.map2] over the argument list; parameter [i] lands
           in callee register [i]. *)
        let binders =
          List.map2
            (fun p arg ->
              match p.p_typ with
              | Tarr _ | Tptr _ -> (
                  match arg with
                  | Evar v -> (
                      match Resolve.slot_of res v with
                      | Some i ->
                          fun st ->
                            let s = reg_slot st i v in
                            ( p.p_name,
                              Array
                                { buf = s.buf; root = s.root; shape = s.shape }
                            )
                      | None ->
                          fun st ->
                            let s = array_slot st.ctx.env v in
                            ( p.p_name,
                              Array
                                { buf = s.buf; root = s.root; shape = s.shape }
                            ))
                  | _ ->
                      fun _ ->
                        error "array argument to '%s' must be a variable" f)
              | Tvoid | Tint | Tfloat ->
                  let ca = cexpr u res arg in
                  fun st -> (p.p_name, Scalar { v = ca st }))
            fn.f_params args
        in
        let force () =
          match !r with
          | Some cf -> cf
          | None ->
              let cf = compile_fun u fn in
              r := Some cf;
              cf
        in
        if u.umirror then
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            let cf = force () in
            let bindings = List.map (fun b -> b st) binders in
            let regs = Array.make cf.cf_nregs Unbound in
            List.iteri
              (fun i (_, b) -> regs.(i) <- reg_of_binding b)
              bindings;
            let saved = st.ctx.env.frames in
            let frame = Hashtbl.create 8 in
            List.iter
              (fun (name, b) -> Hashtbl.replace frame name b)
              bindings;
            st.ctx.env.frames <- [ frame ];
            let restore () = st.ctx.env.frames <- saved in
            (try
               cf.cf_body { ctx = st.ctx; regs };
               restore ();
               Int 0
             with
            | Return_exc r ->
                restore ();
                (match r with Some v -> v | None -> Int 0)
            | e ->
                restore ();
                raise e)
        else
          fun st ->
            st.ctx.ops <- st.ctx.ops + 1;
            let cf = force () in
            let bindings = List.map (fun b -> b st) binders in
            let regs = Array.make cf.cf_nregs Unbound in
            List.iteri
              (fun i (_, b) -> regs.(i) <- reg_of_binding b)
              bindings;
            let saved = st.ctx.env.frames in
            st.ctx.env.frames <- [];
            let restore () = st.ctx.env.frames <- saved in
            (try
               cf.cf_body { ctx = st.ctx; regs };
               restore ();
               Int 0
             with
            | Return_exc r ->
                restore ();
                (match r with Some v -> v | None -> Int 0)
            | e ->
                restore ();
                raise e)
      end

and compile_fun u fn =
  let res = Resolve.create () in
  List.iter (fun p -> ignore (Resolve.declare res p.p_name)) fn.f_params;
  (* The callee body runs directly in the parameter frame (no extra
     scope), exactly like [Eval.call_user]. *)
  let body = cblock u res fn.f_body in
  { cf_nregs = Resolve.frame_size res; cf_body = body }

and cdecl u res typ name init : cstm =
  match typ with
  | Tint | Tfloat | Tvoid ->
      let cinit = Option.map (cexpr u res) init in
      let z = zero_of_typ typ in
      let slot = Resolve.declare res name in
      if u.umirror then
        fun st ->
          let v = match cinit with Some c -> c st | None -> z in
          let cell = { v } in
          st.regs.(slot) <- Rscalar cell;
          declare st.ctx.env name (Scalar cell)
      else
        fun st ->
          let v = match cinit with Some c -> c st | None -> z in
          st.regs.(slot) <- Rscalar { v }
  | Tarr (_, None) ->
      let slot = Resolve.declare res name in
      if u.umirror then
        fun st ->
          let s = { buf = None; root = name; shape = [||] } in
          st.regs.(slot) <- Rarray s;
          declare st.ctx.env name (Array s)
      else
        fun st -> st.regs.(slot) <- Rarray { buf = None; root = name; shape = [||] }
  | Tarr _ ->
      (* Extent plan, outermost first; evaluation and the negative-extent
         check interleave exactly like [Eval.exec_decl]'s unroll. *)
      let rec plan = function
        | Tarr (t, Some e) -> `Ext (cexpr u res e) :: plan t
        | Tarr (_, None) -> [ `Bad ]
        | t -> [ `Base (base_is_float t) ]
      in
      let plan = plan typ in
      let slot = Resolve.declare res name in
      let build st =
        let rdims = ref [] in
        let isf = ref false in
        List.iter
          (function
            | `Ext c ->
                let n = to_int (c st) in
                if n < 0 then error "negative array extent for '%s'" name;
                rdims := n :: !rdims
            | `Bad ->
                error "inner dimensions of '%s' need explicit extents" name
            | `Base f -> isf := f)
          plan;
        let dims = List.rev !rdims in
        let total = List.fold_left ( * ) 1 dims in
        let buf =
          if !isf then Gpusim.Buf.create_float total
          else Gpusim.Buf.create_int total
        in
        { buf = Some buf; root = name; shape = Array.of_list dims }
      in
      if u.umirror then
        fun st ->
          let s = build st in
          st.regs.(slot) <- Rarray s;
          declare st.ctx.env name (Array s)
      else fun st -> st.regs.(slot) <- Rarray (build st)
  | Tptr _ -> (
      match init with
      | Some (Evar src) ->
          let csrc =
            match Resolve.slot_of res src with
            | Some i -> fun st -> reg_slot st i src
            | None -> fun st -> array_slot st.ctx.env src
          in
          let slot = Resolve.declare res name in
          if u.umirror then
            fun st ->
              let s0 = csrc st in
              let s = { buf = s0.buf; root = s0.root; shape = s0.shape } in
              st.regs.(slot) <- Rarray s;
              declare st.ctx.env name (Array s)
          else
            fun st ->
              let s0 = csrc st in
              st.regs.(slot) <-
                Rarray { buf = s0.buf; root = s0.root; shape = s0.shape }
      | Some _ ->
          let _slot = Resolve.declare res name in
          fun _ ->
            error "pointer '%s' may only be initialized from an array" name
      | None ->
          let slot = Resolve.declare res name in
          if u.umirror then
            fun st ->
              let s = { buf = None; root = name; shape = [||] } in
              st.regs.(slot) <- Rarray s;
              declare st.ctx.env name (Array s)
          else
            fun st ->
              st.regs.(slot) <-
                Rarray { buf = None; root = name; shape = [||] })

(* Pointer rebinding [p = a] when the assignment target holds an array. *)
and crebind res v rhs : st -> Value.slot -> unit =
  match rhs with
  | Evar src -> (
      match Resolve.slot_of res src with
      | Some i ->
          fun st slot ->
            let s = reg_slot st i src in
            slot.buf <- s.buf;
            slot.root <- s.root;
            slot.shape <- s.shape
      | None ->
          fun st slot ->
            let s = array_slot st.ctx.env src in
            slot.buf <- s.buf;
            slot.root <- s.root;
            slot.shape <- s.shape)
  | _ -> fun _ _ -> error "'%s' holds an array; assign another array to it" v

(* Mirrors [Eval.assign]'s lvalue_view: composed views, no ops bumps of
   their own. *)
and clview u res lv : st -> Eval.aview =
  match lv with
  | Lvar name -> (
      match Resolve.slot_of res name with
      | Some i -> fun st -> view_of_slot name (reg_slot st i name)
      | None -> fun st -> view_of_slot name (array_slot st.ctx.env name))
  | Lindex (b, i) ->
      let root = lvalue_root b in
      let cb = clview u res b in
      let ci = cexpr u res i in
      fun st ->
        let vw = cb st in
        view_step root vw (to_int (ci st))

and cassign u res lv rhs : cstm =
  match lv with
  | Lvar v -> (
      let crhs = cexpr u res rhs in
      let rebind = crebind res v rhs in
      match Resolve.slot_of res v with
      | Some i ->
          fun st -> (
            match st.regs.(i) with
            | Rscalar cell -> cell.v <- crhs st
            | Rarray slot -> rebind st slot
            | Unbound -> error "unbound variable '%s'" v)
      | None ->
          fun st -> (
            match lookup_exn st.ctx.env v with
            | Scalar cell -> cell.v <- crhs st
            | Array slot -> rebind st slot))
  | Lindex (base, idx) ->
      let crhs = cexpr u res rhs in
      let root = lvalue_root base in
      let cbase = clview u res base in
      let ci = cexpr u res idx in
      fun st ->
        let v = crhs st in
        let vw = cbase st in
        let i = to_int (ci st) in
        let vw = view_step root vw i in
        if Array.length vw.vshape <> 0 then
          error "'%s' needs %d more subscript(s) to be assignable" root
            (Array.length vw.vshape);
        (match vw.vbuf with
        | Gpusim.Buf.Fbuf a -> a.(vw.voff) <- to_float v
        | Gpusim.Buf.Ibuf a -> a.(vw.voff) <- to_int v)

and cstmt u res s : cstm =
  let body = cskind u res s in
  fun st ->
    st.ctx.ops <- st.ctx.ops + 1;
    let handled =
      match st.ctx.stmt_hook with Some h -> h st.ctx s | None -> false
    in
    if not handled then body st

and cskind u res s : cstm =
  match s.skind with
  | Sskip -> fun _ -> ()
  | Sexpr e ->
      let c = cexpr u res e in
      fun st -> ignore (c st)
  | Sassign (lv, e) -> cassign u res lv e
  | Sdecl (typ, name, init) -> cdecl u res typ name init
  | Sif (c, b1, b2) ->
      let cc = cexpr u res c in
      let cb1 = cscope u res b1 in
      let cb2 = cscope u res b2 in
      fun st -> if truthy (cc st) then cb1 st else cb2 st
  | Swhile (c, b) ->
      let cc = cexpr u res c in
      let cb = cscope u res b in
      fun st -> (
        try
          while truthy (cc st) do
            try cb st with Continue_exc -> ()
          done
        with Break_exc -> ())
  | Sfor (init, cond, step, b) ->
      Resolve.scoped res (fun () ->
          let cinit = Option.map (cstmt u res) init in
          let ccond = Option.map (cexpr u res) cond in
          let cstep = Option.map (cstmt u res) step in
          let cb = cscope u res b in
          let run st =
            (match cinit with Some c -> c st | None -> ());
            let continue_ () =
              match ccond with Some c -> truthy (c st) | None -> true
            in
            try
              while continue_ () do
                (try cb st with Continue_exc -> ());
                match cstep with Some c -> c st | None -> ()
              done
            with Break_exc -> ()
          in
          if u.umirror then fun st -> Value.scoped st.ctx.env (fun () -> run st)
          else run)
  | Sblock b -> cscope u res b
  | Sreturn e ->
      let c = Option.map (cexpr u res) e in
      fun st -> raise (Return_exc (Option.map (fun c -> c st) c))
  | Sbreak -> fun _ -> raise Break_exc
  | Scontinue -> fun _ -> raise Continue_exc
  | Sacc (_, body) -> (
      (* Directives are transparent to sequential execution. *)
      match body with
      | Some b ->
          let cb = cstmt u res b in
          fun st -> cb st
      | None -> fun _ -> ())

and cscope u res b : cstm =
  Resolve.scoped res (fun () ->
      let cb = cblock u res b in
      if u.umirror then fun st -> Value.scoped st.ctx.env (fun () -> cb st)
      else cb)

and cblock u res b : cstm =
  let cs = List.map (cstmt u res) b in
  match cs with
  | [] -> fun _ -> ()
  | [ c ] -> c
  | cs -> fun st -> List.iter (fun c -> c st) cs

(* ------------------------------------------------------------------ *)
(* Sequential reference execution (mirror mode).                       *)
(* ------------------------------------------------------------------ *)

(** Compiled counterpart of {!Eval.run_reference}: same environment setup
    (globals initialized by the tree walker — a one-time cold path), main
    body compiled in mirror mode, declarations landing in the initial
    frame exactly like the tree walker (no extra scope). *)
let run_reference ?hook prog =
  let env = Value.create () in
  let ctx = Eval.make ~hook prog env in
  Eval.init_globals ctx;
  let u = unit_of ~mirror:true prog in
  let res = Resolve.create () in
  let main = Minic.Ast.main_function prog in
  let cb = cblock u res main.f_body in
  let st = { ctx; regs = Array.make (max 1 (Resolve.frame_size res)) Unbound } in
  (try cb st with Return_exc _ -> ());
  ctx

(** Engine-dispatching reference runner. *)
let reference ?(engine = Engine.Tree) ?hook prog =
  match engine with
  | Engine.Tree -> Eval.run_reference ?hook prog
  | Engine.Compiled -> run_reference ?hook prog

(* ------------------------------------------------------------------ *)
(* Kernel compilation (register mode).                                 *)
(* ------------------------------------------------------------------ *)

(** Loop header of a compiled kernel.  In the parallel mode the driver
    cell replaces the loop variable's {e base} register (header
    expressions are compiled against the base scope, so — like the tree
    walker, which evaluates them without the thread frame — they never see
    per-thread cells). *)
type cmode =
  | Cnone
  | Cseq of {
      driver_slot : int;
      init : cexp;
      cond : cexp;
      step : cstm option;
      kl_var : string;
    }
  | Cpar of {
      driver_slot : int;  (** base-scope register of [kl_var] *)
      init : cexp;
      cond : cexp;
      step : cstm option;
      kl_var : string;
    }

type ckernel = {
  ck_base : (string * int) list;  (** kernel names, in {!Kernel_exec.kernel_names} order *)
  ck_class : (string * scalar_class * int) list;  (** classified scalars, thread registers *)
  ck_cands : (string * int * int) list;
      (** extra-induction candidates: (name, thread register, base register);
          entry membership is a launch-time property, so non-members alias
          their base register instead *)
  ck_mode : cmode;
  ck_nregs : int;
  ck_body : cstm;
}

let compile_kernel u (k : kernel) : ckernel =
  let names = Kernel_exec.kernel_names k in
  let res = Resolve.create () in
  let base = List.map (fun n -> (n, Resolve.declare res n)) names in
  let base_slot n =
    match List.assoc_opt n base with
    | Some s -> s
    | None -> Resolve.declare res n
  in
  let cand_names =
    Analysis.Varset.elements k.k_induction
    |> List.filter (fun v ->
           (not (List.mem_assoc v k.k_scalars))
           && (match k.k_loop with Some l -> v <> l.kl_var | None -> true))
  in
  let declare_thread () =
    let cls =
      List.map (fun (v, c) -> (v, c, Resolve.declare res v)) k.k_scalars
    in
    let cands =
      List.map (fun v -> (v, Resolve.declare res v, base_slot v)) cand_names
    in
    (cls, cands)
  in
  let cls, cands, mode, body =
    match k.k_loop with
    | None ->
        Resolve.enter res;
        let cls, cands = declare_thread () in
        let body = Resolve.scoped res (fun () -> cblock u res k.k_body) in
        Resolve.leave res;
        (cls, cands, Cnone, body)
    | Some l when k.k_seq ->
        Resolve.enter res;
        let cls, cands = declare_thread () in
        (* The driver is placed in the thread frame after the loop init is
           evaluated, so the init resolves [kl_var] to whatever a thread
           cell or base copy held before. *)
        let init = cexpr u res l.kl_init in
        let driver_slot = Resolve.declare res l.kl_var in
        let cond = cexpr u res l.kl_cond in
        let step = Option.map (cstmt u res) l.kl_step in
        let body = Resolve.scoped res (fun () -> cblock u res l.kl_body) in
        Resolve.leave res;
        ( cls,
          cands,
          Cseq { driver_slot; init; cond; step; kl_var = l.kl_var },
          body )
    | Some l ->
        (* Parallel: header compiled against the base scope only. *)
        let init = cexpr u res l.kl_init in
        let driver_slot = base_slot l.kl_var in
        let cond = cexpr u res l.kl_cond in
        let step = Option.map (cstmt u res) l.kl_step in
        Resolve.enter res;
        let cls, cands = declare_thread () in
        let body = Resolve.scoped res (fun () -> cblock u res l.kl_body) in
        Resolve.leave res;
        ( cls,
          cands,
          Cpar { driver_slot; init; cond; step; kl_var = l.kl_var },
          body )
  in
  { ck_base = base;
    ck_class = cls;
    ck_cands = cands;
    ck_mode = mode;
    ck_nregs = max 1 (Resolve.frame_size res);
    ck_body = body }

(** Content-keyed kernel store.  The key renders everything
    {!compile_kernel} reads — the kernel-entry name order, scalar classes,
    induction set, loop header and body — plus every non-[main] global
    (compiled bodies resolve user-function calls through their unit), all
    sid- and location-free.  Two kernels with equal keys therefore compile
    to interchangeable closures, so a store shared across translations of
    *edited* variants of one program (the saturate search loop) turns
    recompiles of untouched kernels into cache hits. *)
type store = (string, ckernel) Hashtbl.t

let create_store () : store = Hashtbl.create 64
let store_size (s : store) = Hashtbl.length s

let kernel_key prog (k : kernel) =
  let b = Buffer.create 1024 in
  let add s = Buffer.add_string b s; Buffer.add_char b '\x00' in
  let shared =
    { Minic.Ast.globals =
        List.filter
          (function
            | Minic.Ast.Gfunc f -> f.Minic.Ast.f_name <> "main"
            | Minic.Ast.Gvar _ -> true)
          prog.Minic.Ast.globals }
  in
  add (Minic.Pretty.program_to_string shared);
  List.iter add (Kernel_exec.kernel_names k);
  List.iter
    (fun (v, cls) ->
      add v;
      add
        (match cls with
        | Sc_private -> "private"
        | Sc_firstprivate -> "firstprivate"
        | Sc_reduction op -> "red:" ^ Minic.Pretty.redop_str op
        | Sc_raced Race_active -> "raced:active"
        | Sc_raced Race_latent -> "raced:latent"))
    k.k_scalars;
  List.iter add (Analysis.Varset.elements k.k_induction);
  add (if k.k_seq then "seq" else "par");
  (match k.k_loop with
  | None -> add "noloop"
  | Some l ->
      add l.kl_var;
      add (Minic.Pretty.expr_to_string l.kl_init);
      add (Minic.Pretty.expr_to_string l.kl_cond);
      (match l.kl_step with
      | None -> add "nostep"
      | Some s -> add (Minic.Pretty.stmt_to_string s));
      List.iter (fun s -> add (Minic.Pretty.stmt_to_string s)) l.kl_body);
  List.iter (fun s -> add (Minic.Pretty.stmt_to_string s)) k.k_body;
  Digest.to_hex (Digest.string (Buffer.contents b))

(** Per-program compile cache: kernels compile once into the (optionally
    shared) content-keyed {!store}, and repeated launches reuse the
    closure.  [ckeys] memoizes each kernel's content key per kernel id so
    the per-launch lookup stays O(1).  Host statement leaves compile once
    in mirror mode (keyed by translated-statement id, which is only
    meaningful within one translation — so [chost] is never shared), so
    names they declare stay visible — with the same cells — to the
    interpreter's environment and to every other compiled or tree-walked
    fragment. *)
type cache = {
  cunit : cu;  (** register mode, for kernel bodies *)
  ckernels : store;  (** content-keyed; may be shared across programs *)
  ckeys : (int, string) Hashtbl.t;  (** k_id -> content key memo *)
  cmunit : cu;  (** mirror mode, for host statements *)
  chost : (int, int * cstm) Hashtbl.t;  (** tid -> (nregs, closure) *)
}

let create_cache ?store prog =
  { cunit = unit_of ~mirror:false prog;
    ckernels = (match store with Some s -> s | None -> create_store ());
    ckeys = Hashtbl.create 8;
    cmunit = unit_of ~mirror:true prog;
    chost = Hashtbl.create 32 }

let key_of cache (k : kernel) =
  match Hashtbl.find_opt cache.ckeys k.k_id with
  | Some key -> key
  | None ->
      let key = kernel_key cache.cunit.uprog k in
      Hashtbl.replace cache.ckeys k.k_id key;
      key

(** Execute one host statement leaf through the compiled engine.  Free
    names fall back to environment lookups, so fragments compiled in
    isolation still see declarations made by earlier fragments (exactly
    the tree walker's scoping). *)
let host_stmt cache (ctx : Eval.ctx) tid s =
  let nregs, c =
    match Hashtbl.find_opt cache.chost tid with
    | Some entry -> entry
    | None ->
        let res = Resolve.create () in
        let c = cstmt cache.cmunit res s in
        let entry = (max 1 (Resolve.frame_size res), c) in
        Hashtbl.replace cache.chost tid entry;
        entry
  in
  c { ctx; regs = Array.make nregs Unbound }

let cached cache (k : kernel) = Hashtbl.mem cache.ckernels (key_of cache k)

let prepare cache (k : kernel) =
  if not (cached cache k) then
    Hashtbl.replace cache.ckernels (key_of cache k)
      (compile_kernel cache.cunit k)

(** Compiled counterpart of {!Kernel_exec.run}: a faithful transcription
    of the tree-walking kernel runner with registers in place of frames.
    [ops] accounting, iteration counts, reduction tree order, raced-scalar
    and commit semantics are bit-identical. *)
let run_kernel cache (host_ctx : Eval.ctx) device (k : kernel) :
    Kernel_exec.result =
  prepare cache k;
  let ck = Hashtbl.find cache.ckernels (key_of cache k) in
  let host_env = host_ctx.env in
  let regs = Array.make ck.ck_nregs Unbound in
  let kenv : Value.t = { Value.globals = Hashtbl.create 1; frames = [] } in
  let kctx = Eval.make host_ctx.prog kenv in
  let st = { ctx = kctx; regs } in

  (* Base registers: device-array bindings and kernel-entry scalar copies,
     bound in [kernel_names] order (device-buffer resolution can raise, so
     order matters). *)
  let entry = Hashtbl.create 16 in
  List.iter
    (fun (n, slot) ->
      match Value.lookup host_env n with
      | Some (Array s) ->
          let root = s.root in
          let dbuf = Gpusim.Device.buffer device root in
          regs.(slot) <-
            Rarray { buf = Some dbuf; root; shape = Value.shape_of s }
      | Some (Scalar c) ->
          Hashtbl.replace entry n c.v;
          regs.(slot) <- Rscalar { v = c.v }
      | None -> () (* declared inside the kernel body *))
    ck.ck_base;

  let entry_value v =
    match Hashtbl.find_opt entry v with Some x -> x | None -> Int 0
  in

  (* Thread registers: one cell per classified scalar (reset per thread in
     the parallel modes), plus entry-member extra-induction candidates;
     non-member candidates alias their base register. *)
  let class_cells =
    List.map
      (fun (v, c, slot) ->
        let init =
          match c with
          | Sc_reduction op -> Kernel_exec.identity op (entry_value v)
          | Sc_private | Sc_firstprivate | Sc_raced _ -> entry_value v
        in
        let cell = { v = init } in
        regs.(slot) <- Rscalar cell;
        (v, c, cell, init))
      ck.ck_class
  in
  let member_cands =
    List.filter_map
      (fun (v, tslot, bslot) ->
        if Hashtbl.mem entry v then begin
          let init = entry_value v in
          let cell = { v = init } in
          regs.(tslot) <- Rscalar cell;
          Some (v, cell, init)
        end
        else begin
          regs.(tslot) <- regs.(bslot);
          None
        end)
      ck.ck_cands
  in
  let reset_thread () =
    List.iter (fun (_, _, cell, init) -> cell.v <- init) class_cells;
    List.iter (fun (_, cell, init) -> cell.v <- init) member_cands
  in

  let partials : (string, scalar list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (v, c, _, _) ->
      match c with
      | Sc_reduction _ -> Hashtbl.replace partials v (ref [])
      | Sc_private | Sc_firstprivate | Sc_raced _ -> ())
    class_cells;
  let last_values : (string, scalar) Hashtbl.t = Hashtbl.create 8 in
  let record_thread_results () =
    List.iter
      (fun (v, c, cell, _) ->
        match c with
        | Sc_reduction _ -> (
            match Hashtbl.find_opt partials v with
            | Some l -> l := cell.v :: !l
            | None -> ())
        | Sc_private | Sc_firstprivate | Sc_raced _ ->
            Hashtbl.replace last_values v cell.v)
      class_cells;
    List.iter
      (fun (v, cell, _) -> Hashtbl.replace last_values v cell.v)
      member_cands
  in

  let iterations = ref 0 in
  (match ck.ck_mode with
  | Cnone ->
      iterations := 1;
      ck.ck_body st;
      record_thread_results ()
  | Cseq { driver_slot; init; cond; step; kl_var } ->
      iterations := 0;
      (* sequential semantics: start private-ish cells from entry values *)
      List.iter
        (fun (v, _, cell, _) -> cell.v <- entry_value v)
        class_cells;
      let driver = { v = init st } in
      regs.(driver_slot) <- Rscalar driver;
      while truthy (cond st) do
        incr iterations;
        ck.ck_body st;
        match step with Some c -> c st | None -> ()
      done;
      (* Sequential commits: every handled scalar takes its final value;
         if [kl_var] was also classified, the driver cell shadows the
         stale classified cell (the tree walker's frame has one entry). *)
      List.iter
        (fun (v, _, cell, _) ->
          if v <> kl_var then Hashtbl.replace last_values v cell.v)
        class_cells;
      List.iter
        (fun (v, cell, _) -> Hashtbl.replace last_values v cell.v)
        member_cands;
      Hashtbl.replace last_values kl_var driver.v
  | Cpar { driver_slot; init; cond; step; kl_var } ->
      let driver = { v = init st } in
      regs.(driver_slot) <- Rscalar driver;
      while truthy (cond st) do
        incr iterations;
        reset_thread ();
        ck.ck_body st;
        record_thread_results ();
        match step with Some c -> c st | None -> ()
      done;
      (* The loop variable's exit value matches sequential execution. *)
      Hashtbl.replace last_values kl_var driver.v);

  (* Commit results back to the host environment. *)
  List.iter
    (fun (v, c) ->
      match Value.lookup host_env v with
      | Some (Scalar host_cell) -> (
          match c with
          | Sc_reduction op when not k.k_seq -> (
              let parts =
                match Hashtbl.find_opt partials v with
                | Some l -> List.rev !l
                | None -> []
              in
              match Kernel_exec.tree_reduce op parts with
              | Some total ->
                  host_cell.v <- Kernel_exec.combine op (entry_value v) total
              | None -> ())
          | Sc_reduction _ | Sc_private | Sc_firstprivate | Sc_raced _ -> (
              match Hashtbl.find_opt last_values v with
              | Some value -> host_cell.v <- value
              | None -> ()))
      | Some (Array _) | None -> ())
    k.k_scalars;
  (* Loop variable and other outer induction variables. *)
  let commit_plain v =
    match (Value.lookup host_env v, Hashtbl.find_opt last_values v) with
    | Some (Scalar host_cell), Some value -> host_cell.v <- value
    | _ -> ()
  in
  (match k.k_loop with Some l -> commit_plain l.kl_var | None -> ());
  List.iter (fun (v, _, _) -> commit_plain v) member_cands;

  { Kernel_exec.iterations = !iterations; ops = kctx.ops }
