(** Mini-C evaluator: expressions and sequential statement execution.

    Serves the reference CPU interpreter (directives transparent), the host
    side of the translated-program interpreter, and the kernel-body
    executor.  Every visited node bumps [ops] — the unit of simulated CPU
    and GPU cost accounting.  The OpenACC runtime routines ([acc_*]) are
    served by [call_hook] when a device is attached, with host-only
    semantics otherwise. *)

type ctx = {
  env : Value.t;
  prog : Minic.Ast.program;  (** for user-function calls *)
  mutable ops : int;
  mutable stmt_hook : (ctx -> Minic.Ast.stmt -> bool) option;
      (** returns [true] when it fully handled the statement (kernel
          verification intercepts compute regions this way) *)
  mutable call_hook :
    (string -> Value.scalar list -> Value.scalar option) option;
}

val make :
  ?hook:(ctx -> Minic.Ast.stmt -> bool) option -> Minic.Ast.program ->
  Value.t -> ctx

exception Break_exc
exception Continue_exc
exception Return_exc of Value.scalar option

(** [true] for names of OpenACC runtime-library routines ([acc_*]);
    character-wise so the hot path allocates nothing. *)
val is_acc_routine : string -> bool

(** Host-only (reference execution) semantics of the [acc_*] routines. *)
val host_acc_routine : string -> Value.scalar list -> Value.scalar

(** Shared comparison results: boolean-valued operators of both execution
    engines fold through [of_bool], so they never box a fresh scalar. *)
val int_false : Value.scalar

val int_true : Value.scalar
val of_bool : bool -> Value.scalar

(** C-like arithmetic on scalars (ints stay ints, mixing promotes). *)
val arith : Minic.Ast.binop -> Value.scalar -> Value.scalar -> Value.scalar

val is_float_buf : Gpusim.Buf.t -> bool

(** A view into (part of) a flattened array: what a partially-indexed
    multi-dimensional array denotes. *)
type aview = { vbuf : Gpusim.Buf.t; voff : int; vshape : int array }

(** @raise Value.Runtime_error when the slot is not materialized. *)
val view_of_slot : string -> Value.slot -> aview

(** Take one subscript step (with the bounds check) into a view. *)
val view_step : string -> aview -> int -> aview

(** Root name of an array expression, for error messages. *)
val view_name : Minic.Ast.expr -> string

(** Default value of a scalar declaration without initializer. *)
val zero_of_typ : Minic.Ast.typ -> Value.scalar

(** Element kind of a (possibly nested) array/pointer type. *)
val base_is_float : Minic.Ast.typ -> bool

val eval : ctx -> Minic.Ast.expr -> Value.scalar
val exec : ctx -> Minic.Ast.stmt -> unit
val exec_block : ctx -> Minic.Ast.block -> unit

(** Initialize global variables into the environment's global frame. *)
val init_globals : ctx -> unit

(** Run the whole program sequentially (the reference execution of
    §III-A); [hook] may intercept statements. *)
val run_reference :
  ?hook:(ctx -> Minic.Ast.stmt -> bool) -> Minic.Ast.program -> ctx
