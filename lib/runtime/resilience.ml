(** Recovery policies for injected device faults.

    The resilient runtime (in {!Interp}) consults a policy whenever the
    simulated device raises a typed fault: bounded retry with exponential
    backoff for transient transfer/allocation errors, checksum-verified
    re-transfer for silent corruption, kernel re-execution from a
    checkpoint for launch faults and detected ECC bit flips, and graceful
    CPU fallback — executing the original sequential region — when the
    device is exhausted or lost.  Every successful recovery can be
    validated against the §III-A sequential reference, so a policy never
    converts a detected fault into a silently wrong answer. *)

type policy = {
  p_name : string;
  max_retries : int;  (** per-operation retry budget *)
  backoff : float;  (** base backoff delay (simulated s), doubled per retry *)
  checksum : bool;  (** end-to-end checksum verification of transfers *)
  reexec : bool;  (** checkpoint kernels and re-execute on fault *)
  cpu_fallback : bool;  (** degrade to the sequential region / host mode *)
  validate : bool;  (** compare recoveries against the sequential reference *)
}

let none =
  { p_name = "none"; max_retries = 0; backoff = 0.0; checksum = false;
    reexec = false; cpu_fallback = false; validate = false }

let retry =
  { p_name = "retry"; max_retries = 3; backoff = 1e-4; checksum = true;
    reexec = true; cpu_fallback = false; validate = true }

let full =
  { p_name = "full"; max_retries = 3; backoff = 1e-4; checksum = true;
    reexec = true; cpu_fallback = true; validate = true }

let all_policies = [ none; retry; full ]

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "none" -> Ok none
  | "retry" -> Ok retry
  | "full" | "fallback" -> Ok full
  | other ->
      Error
        (Fmt.str "unknown resilience policy '%s' (expected none|retry|full)"
           other)

(** One recovery decision taken by the runtime. *)
type entry = {
  l_fault : Gpusim.Fault_plan.kind;
  l_target : string;
  l_op : string;
  l_action : string;  (** "retry", "re-transfer", "re-execute", ... *)
  l_ok : bool;
}

type stats = {
  mutable retries : int;  (** transfer/allocation retries *)
  mutable retransfers : int;  (** checksum-mismatch re-transfers *)
  mutable reexecs : int;  (** kernel re-executions from checkpoint *)
  mutable fallbacks : int;  (** kernels degraded to the sequential region *)
  mutable failovers : int;
      (** shards of a lost device re-executed on surviving devices *)
  mutable devices_lost : int;  (** device-set members lost to [Device_lost] *)
  mutable verified : int;  (** recoveries validated against the reference *)
  mutable unrecovered : int;
  mutable device_lost : bool;  (** the run degraded to host mode *)
  mutable log : entry list;  (** reversed; use {!log_entries} *)
}

let fresh_stats () =
  { retries = 0; retransfers = 0; reexecs = 0; fallbacks = 0; failovers = 0;
    devices_lost = 0; verified = 0; unrecovered = 0; device_lost = false;
    log = [] }

let log_entries s = List.rev s.log

let record s ~fault ~action ~ok =
  s.log <-
    { l_fault = fault.Gpusim.Device.f_kind;
      l_target = fault.Gpusim.Device.f_target;
      l_op = fault.Gpusim.Device.f_op; l_action = action; l_ok = ok }
    :: s.log

(** A fault the active policy could not mask: the run's results are not
    trustworthy past this point. *)
exception Unrecovered of Gpusim.Device.fault_info

let () =
  Printexc.register_printer (function
    | Unrecovered f ->
        Some
          (Fmt.str "unrecovered device fault: %s on '%s' during %s"
             (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)
             f.Gpusim.Device.f_target f.Gpusim.Device.f_op)
    | _ -> None)

let recoveries s =
  s.retries + s.retransfers + s.reexecs + s.fallbacks + s.failovers

(* ------------------------------ report ------------------------------ *)

let pp_entry ppf e =
  Fmt.pf ppf "%s on '%s' during %s -> %s (%s)"
    (Gpusim.Fault_plan.kind_name e.l_fault)
    e.l_target e.l_op e.l_action
    (if e.l_ok then "ok" else "failed")

(** Per-run fault/recovery report: seed and spec first, so a report is a
    complete reproduction recipe. *)
let pp_report ~seed ~plan ~policy ~metrics ppf s =
  Fmt.pf ppf "@[<v>fault/recovery report (seed %d, policy %s)" seed
    policy.p_name;
  let spec = Gpusim.Fault_plan.to_spec plan in
  Fmt.pf ppf "@,plan: %s" (if spec = "" then "(none)" else spec);
  let events = Gpusim.Fault_plan.events plan in
  Fmt.pf ppf "@,injected: %d fault(s)" (List.length events);
  List.iter
    (fun e -> Fmt.pf ppf "@,  %a" Gpusim.Fault_plan.pp_event e)
    events;
  Fmt.pf ppf
    "@,recovery: %d retries, %d re-transfers, %d re-executions, %d CPU \
     fallbacks"
    s.retries s.retransfers s.reexecs s.fallbacks;
  if s.failovers > 0 || s.devices_lost > 0 then
    Fmt.pf ppf
      "@,failover: %d device(s) lost, %d shard(s) re-executed on survivors"
      s.devices_lost s.failovers;
  Fmt.pf ppf "@,verified: %d recovery(ies) matched the sequential reference"
    s.verified;
  if s.device_lost then Fmt.pf ppf "@,device lost: continued in host mode";
  Fmt.pf ppf "@,unrecovered: %d" s.unrecovered;
  Fmt.pf ppf "@,recovery time: %.6f s"
    (Gpusim.Metrics.time_of metrics Gpusim.Metrics.Fault_recovery);
  (match log_entries s with
  | [] -> ()
  | log ->
      Fmt.pf ppf "@,log:";
      List.iter (fun e -> Fmt.pf ppf "@,  %a" pp_entry e) log);
  Fmt.pf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Fmt.str "\"%s\"" (json_escape s)

let report_json ~seed ~plan ~policy ~metrics s =
  let event e =
    Fmt.str "{\"kind\": %s, \"target\": %s, \"op\": %s, \"time\": %.9f}"
      (json_str (Gpusim.Fault_plan.kind_name e.Gpusim.Fault_plan.e_kind))
      (json_str e.Gpusim.Fault_plan.e_target)
      (json_str e.Gpusim.Fault_plan.e_op)
      e.Gpusim.Fault_plan.e_time
  in
  let entry e =
    Fmt.str
      "{\"fault\": %s, \"target\": %s, \"op\": %s, \"action\": %s, \"ok\": \
       %b}"
      (json_str (Gpusim.Fault_plan.kind_name e.l_fault))
      (json_str e.l_target) (json_str e.l_op) (json_str e.l_action) e.l_ok
  in
  let events = Gpusim.Fault_plan.events plan in
  Fmt.str
    "{\"seed\": %d,\n \"policy\": %s,\n \"plan\": %s,\n \"injected\": %d,\n \
     \"events\": [%s],\n \"recovery\": {\"retries\": %d, \"retransfers\": \
     %d, \"reexecs\": %d, \"fallbacks\": %d, \"failovers\": %d, \
     \"devices_lost\": %d, \"verified\": %d, \"unrecovered\": %d, \
     \"device_lost\": %b},\n \"recovery_time\": %.9f,\n \
     \"log\": [%s]}"
    seed
    (json_str policy.p_name)
    (json_str (Gpusim.Fault_plan.to_spec plan))
    (List.length events)
    (String.concat ", " (List.map event events))
    s.retries s.retransfers s.reexecs s.fallbacks s.failovers s.devices_lost
    s.verified s.unrecovered s.device_lost
    (Gpusim.Metrics.time_of metrics Gpusim.Metrics.Fault_recovery)
    (String.concat ",\n   " (List.map entry (log_entries s)))
