(** Compile-time variable resolution for the closure-compilation engine.

    A resolver mirrors the lexical scope structure of one activation (a
    function body, the [main] body, or a kernel) and assigns every declared
    variable a [(depth, slot)] index: [depth] is the lexical scope depth at
    the declaration and [slot] is an index into the activation's flat
    register array.  Slots are *not* reused across sibling scopes — [next]
    only grows — so a stale register can never be observed under a slot
    that a sibling scope also uses; reading a register whose declaration
    has not executed yet surfaces as the same "unbound variable" error the
    tree-walker raises.  Names that resolve to no scope are {e free}
    (globals, or names materialized at run time by a hook) and fall back to
    the environment lookup path. *)

type binding = { depth : int; slot : int }

type resolution = Local of binding | Free of string

type t = {
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable next : int;  (** next fresh register index *)
  mutable size : int;  (** high-water mark: required register-array size *)
}

let create () = { scopes = [ Hashtbl.create 8 ]; next = 0; size = 0 }

let enter t = t.scopes <- Hashtbl.create 8 :: t.scopes

let leave t =
  match t.scopes with
  | _ :: rest -> t.scopes <- rest
  | [] -> invalid_arg "Resolve.leave: no open scope"

(** Run [f] inside a child scope. *)
let scoped t f =
  enter t;
  Fun.protect ~finally:(fun () -> leave t) f

(** Declare [name] in the innermost scope; returns its register slot.
    Redeclaring a name in the same scope shadows it with a fresh slot,
    matching [Hashtbl.replace] semantics of the tree-walker's frames. *)
let declare t name =
  match t.scopes with
  | scope :: _ ->
      let slot = t.next in
      t.next <- slot + 1;
      if t.next > t.size then t.size <- t.next;
      Hashtbl.replace scope name { depth = List.length t.scopes - 1; slot };
      slot
  | [] -> invalid_arg "Resolve.declare: no open scope"

let resolve t name =
  let rec go = function
    | [] -> Free name
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some b -> Local b
        | None -> go rest)
  in
  go t.scopes

(** Register slot for [name] if it is locally bound. *)
let slot_of t name =
  match resolve t name with Local b -> Some b.slot | Free _ -> None

let frame_size t = t.size
