(** Execution-engine selection for Mini-C interpretation.

    [Tree] is the original tree-walking interpreter ({!Eval} /
    {!Kernel_exec}); [Compiled] is the closure-compilation backend
    ({!Resolve} / {!Compile}) that resolves variables to array slots at
    compile time and turns the AST into nested OCaml closures.  The two
    engines are bit-identical in observable behavior — outputs, [ops]
    accounting, hook firing, reduction order — which the differential test
    suite enforces; only wall-clock speed differs. *)

type t = Tree | Compiled

let to_string = function Tree -> "tree" | Compiled -> "compiled"

let of_string = function
  | "tree" -> Some Tree
  | "compiled" -> Some Compiled
  | _ -> None

let all = [ Tree; Compiled ]
