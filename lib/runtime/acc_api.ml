(** The OpenACC V1.0 runtime library routines.

    Directive-based models have three components (§II-A of the paper):
    directives, library routines, and environment variables.  This module
    provides the routines as Mini-C builtins — programs call
    [acc_async_wait(1)], [acc_get_num_devices(acc_device_nvidia)], etc. —
    backed by the simulated device, plus the [ACC_DEVICE_TYPE] /
    [ACC_DEVICE_NUM] environment variables. *)

open Value

(* Device type encodings, following the OpenACC 1.0 header. *)
let acc_device_none = 0
let acc_device_default = 1
let acc_device_host = 2
let acc_device_not_host = 3
let acc_device_nvidia = 4

type state = {
  set : Gpusim.Device_set.t;
  mutable device_type : int;
  mutable device_num : int;
  mutable initialized : bool;
}

let create set =
  let device_type =
    match Sys.getenv_opt "ACC_DEVICE_TYPE" with
    | Some "host" -> acc_device_host
    | Some ("nvidia" | "NVIDIA") -> acc_device_nvidia
    | _ -> acc_device_default
  in
  let device_num =
    match Sys.getenv_opt "ACC_DEVICE_NUM" with
    | Some s -> ( try int_of_string s with _ -> 0)
    | None -> 0
  in
  { set; device_type; device_num; initialized = false }

(** The member device [device_num] designates (primary out of range). *)
let current st =
  if st.device_num >= 0 && st.device_num < Gpusim.Device_set.size st.set
  then Gpusim.Device_set.device st.set st.device_num
  else Gpusim.Device_set.primary st.set

(* The host clock is always the primary's metrics, whichever member the
   program selected. *)
let host_clock st =
  (Gpusim.Device_set.primary st.set).Gpusim.Device.metrics
    .Gpusim.Metrics.host_clock

(** Is a stream's queued work complete at the current simulated time? *)
let async_done st q =
  let device = current st in
  match Hashtbl.find_opt device.Gpusim.Device.streams q with
  | None -> true
  | Some s -> s.Gpusim.Device.avail <= host_clock st

let all_async_done st =
  let device = current st in
  Hashtbl.fold
    (fun _ s acc -> acc && s.Gpusim.Device.avail <= host_clock st)
    device.Gpusim.Device.streams true

(** The routine table: name -> (arity, implementation).  Every routine
    returns an [int] scalar (void routines return 0), so they are usable in
    both expression and statement position. *)
let routines st : (string * (int * (scalar list -> scalar))) list =
  let int1 f = (1, fun args -> Int (f (to_int (List.nth args 0)))) in
  let int0 f = (0, fun _ -> Int (f ())) in
  [ ("acc_get_num_devices",
     (* A lost device is no longer countable: programs can poll device
        health through the standard routine. *)
     int1 (fun t ->
         if t = acc_device_host then 1
         else Gpusim.Device_set.num_alive st.set));
    ("acc_set_device_type",
     int1 (fun t -> st.device_type <- t; 0));
    ("acc_get_device_type", int0 (fun () -> st.device_type));
    ("acc_set_device_num",
     (2, fun args ->
        (* Honour only ordinals the device set actually has. *)
        let n = to_int (List.nth args 0) in
        if n >= 0 && n < Gpusim.Device_set.size st.set then
          st.device_num <- n;
        Int 0));
    ("acc_get_device_num", int1 (fun _ -> st.device_num));
    ("acc_async_test", int1 (fun q -> if async_done st q then 1 else 0));
    ("acc_async_test_all",
     int0 (fun () -> if all_async_done st then 1 else 0));
    ("acc_async_wait",
     int1 (fun q -> Gpusim.Device.wait (current st) (Some q); 0));
    ("acc_async_wait_all",
     int0 (fun () -> Gpusim.Device.wait (current st) None; 0));
    ("acc_init", int1 (fun _ -> st.initialized <- true; 0));
    ("acc_shutdown", int1 (fun _ -> st.initialized <- false; 0));
    ("acc_on_device",
     int1 (fun t ->
         (* Host code asking: only true for the host device type. *)
         if t = acc_device_host then 1 else 0)) ]

(** Typechecker registrations: (name, arity) with int arguments/results. *)
let signatures =
  [ ("acc_get_num_devices", 1); ("acc_set_device_type", 1);
    ("acc_get_device_type", 0); ("acc_set_device_num", 2);
    ("acc_get_device_num", 1); ("acc_async_test", 1);
    ("acc_async_test_all", 0); ("acc_async_wait", 1);
    ("acc_async_wait_all", 0); ("acc_init", 1); ("acc_shutdown", 1);
    ("acc_on_device", 1) ]

(** Named device-type constants usable as Mini-C globals. *)
let constants =
  [ ("acc_device_none", acc_device_none);
    ("acc_device_default", acc_device_default);
    ("acc_device_host", acc_device_host);
    ("acc_device_not_host", acc_device_not_host);
    ("acc_device_nvidia", acc_device_nvidia) ]

(** An evaluator hook serving the routine calls (see {!Eval.ctx}). *)
let hook st name args =
  match List.assoc_opt name (routines st) with
  | Some (arity, f) when List.length args = arity -> Some (f args)
  | Some (arity, _) ->
      Value.error "%s expects %d argument(s)" name arity
  | None -> None
