(** Recovery policies for injected device faults (see {!Interp} for the
    resilient execution engine that interprets them).

    A policy bounds how hard the runtime fights a device fault before
    giving up: transient-fault retries with exponential backoff,
    checksum-verified re-transfers, checkpointed kernel re-execution, and
    CPU fallback to the original sequential region.  [validate] runs the
    §III-A comparator over every recovery, so recovered runs are verified
    correct, never assumed correct. *)

type policy = {
  p_name : string;
  max_retries : int;  (** per-operation retry budget *)
  backoff : float;  (** base backoff delay (simulated s), doubled per retry *)
  checksum : bool;  (** end-to-end checksum verification of transfers *)
  reexec : bool;  (** checkpoint kernels and re-execute on fault *)
  cpu_fallback : bool;  (** degrade to the sequential region / host mode *)
  validate : bool;  (** compare recoveries against the sequential reference *)
}

(** Propagate every fault (the baseline). *)
val none : policy

(** Retry + re-transfer + re-execute, but no CPU fallback: a device loss
    or an exhausted retry budget raises {!Unrecovered}. *)
val retry : policy

(** Everything [retry] does, plus CPU fallback and host mode after device
    loss: no fault is fatal. *)
val full : policy

val all_policies : policy list
val of_string : string -> (policy, string) result

(** One recovery decision taken by the runtime. *)
type entry = {
  l_fault : Gpusim.Fault_plan.kind;
  l_target : string;
  l_op : string;
  l_action : string;  (** "retry", "re-transfer", "re-execute", ... *)
  l_ok : bool;
}

type stats = {
  mutable retries : int;  (** transfer/allocation retries *)
  mutable retransfers : int;  (** checksum-mismatch re-transfers *)
  mutable reexecs : int;  (** kernel re-executions from checkpoint *)
  mutable fallbacks : int;  (** kernels degraded to the sequential region *)
  mutable failovers : int;
      (** shards of a lost device re-executed on surviving devices *)
  mutable devices_lost : int;  (** device-set members lost to [Device_lost] *)
  mutable verified : int;  (** recoveries validated against the reference *)
  mutable unrecovered : int;
  mutable device_lost : bool;  (** the run degraded to host mode *)
  mutable log : entry list;  (** reversed; use {!log_entries} *)
}

val fresh_stats : unit -> stats
val log_entries : stats -> entry list
val record :
  stats -> fault:Gpusim.Device.fault_info -> action:string -> ok:bool -> unit
val recoveries : stats -> int

(** A fault the active policy could not mask: the run's results are not
    trustworthy past this point. *)
exception Unrecovered of Gpusim.Device.fault_info

(** {1 Per-run fault/recovery report} *)

val pp_entry : Format.formatter -> entry -> unit

val pp_report :
  seed:int -> plan:Gpusim.Fault_plan.t -> policy:policy ->
  metrics:Gpusim.Metrics.t -> Format.formatter -> stats -> unit

val report_json :
  seed:int -> plan:Gpusim.Fault_plan.t -> policy:policy ->
  metrics:Gpusim.Metrics.t -> stats -> string
