(** The OpenACC V1.0 runtime library routines ([acc_init],
    [acc_get_num_devices], [acc_async_test], ...), callable from Mini-C and
    backed by the simulated device set; honours the [ACC_DEVICE_TYPE] and
    [ACC_DEVICE_NUM] environment variables.

    Multi-device corners follow the device set: [acc_get_num_devices]
    counts only members still on the bus (a lost device is no longer
    countable), and [acc_set_device_num] / [acc_get_device_num] select the
    member the async routines address — out-of-range ordinals are
    ignored. *)

val acc_device_none : int
val acc_device_default : int
val acc_device_host : int
val acc_device_not_host : int
val acc_device_nvidia : int

type state = {
  set : Gpusim.Device_set.t;
  mutable device_type : int;
  mutable device_num : int;
  mutable initialized : bool;
}

val create : Gpusim.Device_set.t -> state

(** The member [device_num] designates (primary when out of range). *)
val current : state -> Gpusim.Device.t

(** Is stream [q]'s queued work complete at the current simulated time? *)
val async_done : state -> int -> bool

val all_async_done : state -> bool

(** (name, arity) of every routine, for registration purposes. *)
val signatures : (string * int) list

(** Named device-type constants. *)
val constants : (string * int) list

(** The evaluator hook serving routine calls (see {!Eval.ctx}). *)
val hook : state -> string -> Value.scalar list -> Value.scalar option
