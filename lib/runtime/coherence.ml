(** Runtime coherence tracking (§III-B).

    Each tracked array carries one status per device in
    {notstale, maystale, stale}.  The default granularity is the whole
    buffer, as in the paper; the optional {!Fine} mode tracks staleness as
    element-interval sets instead — the finer-granularity alternative the
    paper weighs against tracking cost (it catches partial-transfer bugs the
    coarse scheme cannot, e.g. a subarray [update] that appears to freshen
    the whole array).  The inserted runtime calls drive the state machine
    and emit reports:

    - [check_read v dev]: a stale copy about to be read means a transfer is
      missing; may-stale means may-missing.
    - [check_write v dev]: writing a stale copy is only *may*-missing (the
      write may fully overwrite); afterwards the local copy is fresh and the
      remote copy is stale (unless a following [reset_status] knows the
      remote copy is dead).
    - a transfer whose source is stale is {e incorrect}; one whose target is
      already not-stale is {e redundant}; a may-stale target (set by may-dead
      analysis) makes it {e may-redundant}.
    - [reset_status] overrides a device's status from the compiler's deadness
      facts; deallocating a device buffer makes that copy stale. *)

open Codegen.Tprog

type kind = Missing | May_missing | Incorrect | Redundant | May_redundant

let kind_name = function
  | Missing -> "missing"
  | May_missing -> "may-missing"
  | Incorrect -> "incorrect"
  | Redundant -> "redundant"
  | May_redundant -> "may-redundant"

type report = {
  r_kind : kind;
  r_var : string;
  r_site : site option;  (** transfer site, when the event is a transfer *)
  r_sid : int;  (** source statement the event traces back to (-1 unknown) *)
  r_dev : device option;  (** device whose copy was stale (missing reports) *)
  r_desc : string;
  r_loops : (string * int) list;  (** enclosing host loops, outermost first *)
}

let pp_report ppf r =
  let loops ppf = function
    | [] -> ()
    | ls ->
        Fmt.pf ppf " (%a)"
          (Fmt.list ~sep:(Fmt.any ", ")
             (fun ppf (v, i) -> Fmt.pf ppf "enclosing loop %s index = %d" v i))
          ls
  in
  Fmt.pf ppf "[%s] %s%a" (kind_name r.r_kind) r.r_desc loops r.r_loops

type granularity = Coarse | Fine

type dev_state = {
  mutable status : status;  (** coarse summary *)
  mutable stale_iv : Intervals.t;  (** fine mode: stale element ranges *)
  mutable may_iv : Intervals.t;  (** fine mode: may-stale element ranges *)
}

type var_state = {
  cpu : dev_state;
  gpu : dev_state;  (** device 0's copy; physically [gpus.(0)] *)
  gpus : dev_state array;  (** one state per device-set member *)
  mutable len : int;
}

type t = {
  granularity : granularity;
  ndevices : int;  (** device-set size; 1 = the paper's single device *)
  alive_gpus : bool array;  (** per-device liveness, updated on loss *)
  states : (string, var_state) Hashtbl.t;
  mutable reports : report list;  (** reversed *)
  mutable loop_stack : (string * int) list;  (** innermost first *)
  mutable checks_executed : int;
  mutable interval_ops : int;
      (** fine-mode tracking work: interval pieces touched (the cost the
          paper's granularity discussion worries about) *)
  audit : Obs.Audit.t option;  (** records every status transition *)
  now : unit -> float;  (** simulated clock for audit timestamps *)
  mutable cur_op : string;  (** runtime call currently driving transitions *)
  mutable cur_point : string;  (** program point of that call *)
}

let create ?(granularity = Coarse) ?audit ?(now = fun () -> 0.0)
    ?(devices = 1) () =
  let devices = max 1 devices in
  { granularity; ndevices = devices; alive_gpus = Array.make devices true;
    states = Hashtbl.create 32; reports = []; loop_stack = [];
    checks_executed = 0; interval_ops = 0; audit; now; cur_op = "";
    cur_point = "" }

let fresh_dev () =
  { status = Not_stale; stale_iv = Intervals.empty; may_iv = Intervals.empty }

let state t v =
  match Hashtbl.find_opt t.states v with
  | Some s -> s
  | None ->
      let gpu = fresh_dev () in
      let gpus =
        Array.init t.ndevices (fun d -> if d = 0 then gpu else fresh_dev ())
      in
      let s = { cpu = fresh_dev (); gpu; gpus; len = max_int / 2 } in
      Hashtbl.add t.states v s;
      s

(** Record the element count of [v] (fine mode ranges whole-array events). *)
let register_len t v len = (state t v).len <- max 1 len

let dev_state t v dev =
  let s = state t v in
  match dev with Cpu -> s.cpu | Gpu -> s.gpu

(* Per-device copies we still consider part of the set: alive members, or
   every member once all are lost (the degenerate host-mode case). *)
let live_gpu_ids t =
  let ids = ref [] in
  for d = t.ndevices - 1 downto 0 do
    if t.alive_gpus.(d) then ids := d :: !ids
  done;
  if !ids = [] then List.init t.ndevices (fun d -> d) else !ids

let severity = function Not_stale -> 0 | May_stale -> 1 | Stale -> 2

let of_severity = function 0 -> Not_stale | 1 -> May_stale | _ -> Stale

(** Status of one member device's copy of [v]. *)
let gpu_status t v d = (state t v).gpus.(d).status

(* The set-wide GPU status is the pessimistic join over live copies: a read
   executed by every member is missing data if any member's copy is stale.
   With one device this is exactly the member's own status. *)
let join_gpu t v =
  List.fold_left
    (fun acc d -> max acc (severity (gpu_status t v d)))
    0 (live_gpu_ids t)
  |> of_severity

(* Best live copy: the one a download would be served from. *)
let best_gpu t v =
  List.fold_left
    (fun acc d -> min acc (severity (gpu_status t v d)))
    2 (live_gpu_ids t)
  |> of_severity

let get t v dev =
  match dev with Cpu -> (state t v).cpu.status | Gpu -> join_gpu t v

let audit_dev = function Cpu -> Obs.Audit.Cpu | Gpu -> Obs.Audit.Gpu

let audit_status = function
  | Not_stale -> Obs.Audit.Notstale
  | May_stale -> Obs.Audit.Maystale
  | Stale -> Obs.Audit.Stale

(* Every observable status transition flows through here, so the audit log
   captures all of them with the op/point context set by the entry point.
   The audit records the primary (device 0) lattice; secondary members of a
   device set transition silently. *)
let set_state t v dev ~audited ds st =
  if ds.status <> st then begin
    (match t.audit with
    | Some a when audited ->
        Obs.Audit.record a ~time:(t.now ()) ~var:v ~dev:(audit_dev dev)
          ~from_:(audit_status ds.status) ~to_:(audit_status st)
          ~op:t.cur_op ~point:t.cur_point ~loops:(List.rev t.loop_stack)
    | Some _ | None -> ());
    ds.status <- st
  end

(* A [Gpu] update addresses the whole device set: every live member's copy
   moves together (the single-device lattice is the one-member case). *)
let set t v dev st =
  match dev with
  | Cpu -> set_state t v Cpu ~audited:true (dev_state t v Cpu) st
  | Gpu ->
      let s = state t v in
      List.iter
        (fun d -> set_state t v Gpu ~audited:(d = 0) s.gpus.(d) st)
        (live_gpu_ids t)

(** Move one member device's copy of [v] (multi-device refinement). *)
let set_gpu t v d st =
  set_state t v Gpu ~audited:(d = 0) (state t v).gpus.(d) st

let set_ctx t op point =
  t.cur_op <- op;
  t.cur_point <- point

let point_of_sid = function None -> "" | Some s -> Fmt.str "stmt%d" s

let other = function Cpu -> Gpu | Gpu -> Cpu

(* ---- fine-grained helpers ---- *)

let the_range t v = function
  | Some (lo, len) -> (lo, lo + len)
  | None -> (0, (state t v).len)

let touch t ds =
  t.interval_ops <-
    t.interval_ops + 1 + Intervals.pieces ds.stale_iv
    + Intervals.pieces ds.may_iv

(* Fine-mode status of a device copy over a range. *)
let range_status t v dev ~lo ~hi =
  let ds = dev_state t v dev in
  touch t ds;
  if Intervals.intersects ds.stale_iv ~lo ~hi then Stale
  else if Intervals.intersects ds.may_iv ~lo ~hi then May_stale
  else Not_stale

let mark_fresh t v dev ~lo ~hi =
  let ds = dev_state t v dev in
  touch t ds;
  ds.stale_iv <- Intervals.subtract ds.stale_iv ~lo ~hi;
  ds.may_iv <- Intervals.subtract ds.may_iv ~lo ~hi

let mark_stale t v dev ~lo ~hi =
  let ds = dev_state t v dev in
  touch t ds;
  ds.stale_iv <- Intervals.add ds.stale_iv ~lo ~hi;
  ds.may_iv <- Intervals.subtract ds.may_iv ~lo ~hi

let report t kind ?site ?(sid = -1) ?dev var desc =
  t.reports <-
    { r_kind = kind; r_var = var; r_site = site; r_sid = sid; r_dev = dev;
      r_desc = desc; r_loops = List.rev t.loop_stack }
    :: t.reports

(* --- loop context, for messages like Listing 4's "enclosing loop index" --- *)

let enter_loop t label = t.loop_stack <- (label, 0) :: t.loop_stack

let next_iteration t =
  match t.loop_stack with
  | (label, i) :: rest -> t.loop_stack <- (label, i + 1) :: rest
  | [] -> ()

let exit_loop t =
  match t.loop_stack with
  | _ :: rest -> t.loop_stack <- rest
  | [] -> ()

(* --- runtime calls --- *)

let check_read ?sid ?range t v dev =
  set_ctx t "check-read" (point_of_sid sid);
  t.checks_executed <- t.checks_executed + 1;
  match t.granularity with
  | Coarse ->
      (match get t v dev with
      | Stale ->
          report t Missing v ?sid ~dev
            (Fmt.str "reading %s on %s requires a transfer from %s first" v
               (device_name dev)
               (device_name (other dev)))
      | May_stale ->
          report t May_missing v ?sid ~dev
            (Fmt.str "%s copy of %s may be stale at this read"
               (device_name dev) v)
      | Not_stale -> ());
      (* Avoid cascading duplicates once reported. *)
      set t v dev Not_stale
  | Fine ->
      let lo, hi = the_range t v range in
      (match range_status t v dev ~lo ~hi with
      | Stale ->
          report t Missing v ?sid ~dev
            (Fmt.str
               "reading %s%s on %s requires a transfer from %s first" v
               (Intervals.to_string (Intervals.of_range lo hi))
               (device_name dev)
               (device_name (other dev)))
      | May_stale ->
          report t May_missing v ?sid ~dev
            (Fmt.str "%s copy of %s may be stale at this read"
               (device_name dev) v)
      | Not_stale -> ());
      mark_fresh t v dev ~lo ~hi

let check_write ?sid ?range t v dev =
  set_ctx t "check-write" (point_of_sid sid);
  t.checks_executed <- t.checks_executed + 1;
  match t.granularity with
  | Coarse ->
      (match get t v dev with
      | Stale | May_stale ->
          report t May_missing v ?sid ~dev
            (Fmt.str
               "%s writes %s whose local copy is stale; a transfer is \
                missing unless the write fully overwrites the data"
               (device_name dev) v)
      | Not_stale -> ());
      set t v dev Not_stale;
      set t v (other dev) Stale
  | Fine ->
      let lo, hi = the_range t v range in
      (match range_status t v dev ~lo ~hi with
      | Stale | May_stale ->
          report t May_missing v ?sid ~dev
            (Fmt.str
               "%s writes %s whose local copy is stale; a transfer is \
                missing unless the write fully overwrites the data"
               (device_name dev) v)
      | Not_stale -> ());
      mark_fresh t v dev ~lo ~hi;
      mark_stale t v (other dev) ~lo ~hi

let reset_status t v dev st =
  set_ctx t "reset" "";
  t.checks_executed <- t.checks_executed + 1;
  (match t.granularity with
  | Coarse -> ()
  | Fine ->
      let lo, hi = the_range t v None in
      let ds = dev_state t v dev in
      touch t ds;
      (match st with
      | Not_stale ->
          ds.stale_iv <- Intervals.empty;
          ds.may_iv <- Intervals.empty
      | May_stale ->
          ds.stale_iv <- Intervals.empty;
          ds.may_iv <- Intervals.of_range lo hi
      | Stale -> ds.stale_iv <- Intervals.of_range lo hi));
  set t v dev st

(* A transfer is about to move [v] along [dir]; [site] identifies the call
   site for the report; [range] restricts to a subarray. *)
let on_transfer ?range t v dir ~site =
  set_ctx t
    (match dir with H2D -> "transfer-h2d" | D2H -> "transfer-d2h")
    site.site_label;
  let src, tgt = match dir with H2D -> (Cpu, Gpu) | D2H -> (Gpu, Cpu) in
  let dir_desc =
    match dir with
    | H2D -> "from host to device"
    | D2H -> "from device to host"
  in
  match t.granularity with
  | Coarse ->
      (* The source of a download is the best live copy (that is the one the
         runtime serves it from); with one device this is its own status. *)
      let src_status =
        match src with Cpu -> get t v Cpu | Gpu -> best_gpu t v
      in
      (match src_status with
      | Stale ->
          (* An outdated source makes the transfer incorrect; a simultaneous
             redundancy verdict would be contradictory, so it is
             suppressed. *)
          report t Incorrect v ~site ~sid:site.site_sid
            (Fmt.str "copying %s %s in %s transfers an outdated value" v
               dir_desc site.site_label)
      | May_stale | Not_stale -> (
          (* An upload broadcasts to every live member of the device set;
             when their statuses diverge, redundancy is judged per member
             (cross-device redundant transfers).  A uniform set — always
             the case with one device — keeps the single-device verdicts. *)
          let per_device =
            match tgt with
            | Cpu -> None
            | Gpu -> (
                match live_gpu_ids t with
                | [] | [ _ ] -> None
                | ids ->
                    let sts = List.map (fun d -> (d, gpu_status t v d)) ids in
                    if List.for_all (fun (_, s) -> s = snd (List.hd sts)) sts
                    then None
                    else Some sts)
          in
          match per_device with
          | Some sts ->
              List.iter
                (fun (d, st) ->
                  if st = Not_stale then
                    report t Redundant v ~site ~sid:site.site_sid
                      (Fmt.str
                         "copying %s %s in %s is redundant on device %d \
                          (its copy is already current)"
                         v dir_desc site.site_label d))
                sts
          | None -> (
              match get t v tgt with
              | Not_stale ->
                  report t Redundant v ~site ~sid:site.site_sid
                    (Fmt.str "copying %s %s in %s is redundant" v dir_desc
                       site.site_label)
              | May_stale ->
                  report t May_redundant v ~site ~sid:site.site_sid
                    (Fmt.str
                       "copying %s %s in %s may be redundant (target value \
                        appears dead)"
                       v dir_desc site.site_label)
              | Stale -> ())));
      (* Whole-array granularity: even a partial copy marks the target
         fresh — the imprecision the Fine mode removes. *)
      set t v tgt Not_stale
  | Fine ->
      let lo, hi = the_range t v range in
      (match range_status t v src ~lo ~hi with
      | Stale ->
          report t Incorrect v ~site ~sid:site.site_sid
            (Fmt.str "copying %s %s in %s transfers an outdated value" v
               dir_desc site.site_label)
      | May_stale | Not_stale -> (
          match range_status t v tgt ~lo ~hi with
          | Not_stale ->
              report t Redundant v ~site ~sid:site.site_sid
                (Fmt.str "copying %s %s in %s is redundant" v dir_desc
                   site.site_label)
          | May_stale ->
              report t May_redundant v ~site ~sid:site.site_sid
                (Fmt.str
                   "copying %s %s in %s may be redundant (target value \
                    appears dead)"
                   v dir_desc site.site_label)
          | Stale -> ()));
      mark_fresh t v tgt ~lo ~hi

let on_free t v =
  set_ctx t "free" "";
  (match t.granularity with
  | Coarse -> ()
  | Fine ->
      let lo, hi = the_range t v None in
      mark_stale t v Gpu ~lo ~hi);
  set t v Gpu Stale

(* ---------------- multi-device refinement (coarse statuses) ------------- *)

(* The entry points below are driven by the device-set runtime, which knows
   which members actually executed a kernel or received a peer sync.  They
   refine the per-member coarse statuses; fine-mode interval tracking stays
   set-wide. *)

(** A kernel committed [v] on exactly [devs]: their copies are fresh, every
    other live member's copy is stale. *)
let note_kernel_write t v ~devs =
  set_ctx t "kernel-commit" "";
  List.iter
    (fun d ->
      set_gpu t v d (if List.mem d devs then Not_stale else Stale))
    (live_gpu_ids t)

(** A peer/broadcast sync refreshed [v] on [devs] (no report: the runtime
    initiated it, the program did not ask for a transfer). *)
let note_gpu_fresh t v ~devs =
  set_ctx t "peer-sync" "";
  List.iter (fun d -> if t.alive_gpus.(d) then set_gpu t v d Not_stale) devs

(** Device [d] dropped off the bus: its resident copies are gone. *)
let on_device_lost t d =
  set_ctx t "device-lost" "";
  if d >= 0 && d < t.ndevices then begin
    Hashtbl.iter (fun v _ -> set_gpu t v d Stale) t.states;
    t.alive_gpus.(d) <- false
  end

let reports t = List.rev t.reports

let reports_of_kind t k = List.filter (fun r -> r.r_kind = k) (reports t)

(** Group a run's reports per (site/statement, kind, variable) with
    execution counts and the iteration ranges they occurred in — the
    digest the CLI prints instead of one line per dynamic occurrence. *)
let summarize (rs : report list) =
  let tbl : (string * kind * string, int * report) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun r ->
      let where =
        match r.r_site with
        | Some s -> s.site_label
        | None -> Fmt.str "stmt%d" r.r_sid
      in
      let key = (where, r.r_kind, r.r_var) in
      match Hashtbl.find_opt tbl key with
      | Some (n, first) -> Hashtbl.replace tbl key (n + 1, first)
      | None ->
          Hashtbl.add tbl key (1, r);
          order := key :: !order)
    rs;
  List.rev_map
    (fun key ->
      let n, first = Hashtbl.find tbl key in
      let _, kind, _ = key in
      let suffix =
        if n = 1 then ""
        else
          match first.r_loops with
          | [] -> Fmt.str " (x%d)" n
          | (label, i) :: _ ->
              Fmt.str " (x%d, from %s iteration %d on)" n label i
      in
      Fmt.str "[%s] %s%s" (kind_name kind) first.r_desc suffix)
    !order
