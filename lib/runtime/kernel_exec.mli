(** GPU-kernel execution on the simulated device.

    Iterations of the parallel loop play the role of GPU threads: arrays are
    shared in device memory; private/firstprivate scalars and induction
    variables are fresh per iteration; reduction scalars accumulate into
    per-thread partials combined in pairwise tree order (hence float results
    differ from the sequential reference in the last bits); an {e active}
    raced scalar re-reads the kernel-entry value in every iteration with the
    last writer winning; a {e latent} raced scalar is register-promoted and
    behaves privately (§IV-B's undetectable errors). *)

type result = { iterations : int; ops : int }

(** Identity element of a reduction, typed like the host initial value. *)
val identity : Minic.Ast.redop -> Value.scalar -> Value.scalar

val combine : Minic.Ast.redop -> Value.scalar -> Value.scalar -> Value.scalar

(** Pairwise (tree-order) combination of per-thread partials. *)
val tree_reduce : Minic.Ast.redop -> Value.scalar list -> Value.scalar option

(** All names appearing in a kernel (loop header first, then body), in the
    deterministic order both engines bind kernel-entry state in. *)
val kernel_names : Codegen.Tprog.kernel -> string list

(** Execute a kernel against the device, reading initial scalars from — and
    committing results to — the host environment of the given context. *)
val run : Eval.ctx -> Gpusim.Device.t -> Codegen.Tprog.kernel -> result

(** {1 Multi-device (sharded) execution}

    A parallel-loop kernel is split across a device set: every shard steps
    the full loop driver but executes only the iteration ordinals it owns,
    against its own device's buffers.  Scalar results are staged per shard,
    published only on clean completion (a dying device's in-flight
    contribution is discarded), and ordinal-tagged so reductions combine in
    exactly the single-device tree order regardless of the split or of
    failover re-execution passes. *)

(** Can this kernel be split? (parallel loop, not [seq], not straight-line) *)
val shardable : Codegen.Tprog.kernel -> bool

type session

(** Sizes the iteration space with a device-free driver-only pass.
    @raise Invalid_argument when the kernel is not {!shardable}. *)
val start : Eval.ctx -> Codegen.Tprog.kernel -> session

val total_iterations : session -> int

(** Execute the ordinals selected by [owns] on [device].  Returns the
    number of iterations executed.  [weights] (sized
    [total_iterations]) receives the measured interpreted-op count of
    every executed ordinal, for shard-level cost attribution.
    @raise Gpusim.Device.Device_fault if the device dies mid-shard (its
    staged results are discarded). *)
val run_shard :
  session -> ?weights:int array -> Gpusim.Device.t -> owns:(int -> bool) ->
  int

(** Commit merged scalar results to the host environment. *)
val commit : session -> unit
