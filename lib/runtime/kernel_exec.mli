(** GPU-kernel execution on the simulated device.

    Iterations of the parallel loop play the role of GPU threads: arrays are
    shared in device memory; private/firstprivate scalars and induction
    variables are fresh per iteration; reduction scalars accumulate into
    per-thread partials combined in pairwise tree order (hence float results
    differ from the sequential reference in the last bits); an {e active}
    raced scalar re-reads the kernel-entry value in every iteration with the
    last writer winning; a {e latent} raced scalar is register-promoted and
    behaves privately (§IV-B's undetectable errors). *)

type result = { iterations : int; ops : int }

(** Identity element of a reduction, typed like the host initial value. *)
val identity : Minic.Ast.redop -> Value.scalar -> Value.scalar

val combine : Minic.Ast.redop -> Value.scalar -> Value.scalar -> Value.scalar

(** Pairwise (tree-order) combination of per-thread partials. *)
val tree_reduce : Minic.Ast.redop -> Value.scalar list -> Value.scalar option

(** All names appearing in a kernel (loop header first, then body), in the
    deterministic order both engines bind kernel-entry state in. *)
val kernel_names : Codegen.Tprog.kernel -> string list

(** Execute a kernel against the device, reading initial scalars from — and
    committing results to — the host environment of the given context. *)
val run : Eval.ctx -> Gpusim.Device.t -> Codegen.Tprog.kernel -> result
