(** Mini-C evaluator: expressions and sequential statement execution.

    Serves three masters: the reference CPU interpreter (directives are
    transparent — their bodies run sequentially), the host side of the
    translated-program interpreter, and the kernel-body executor (which binds
    arrays to device buffers before calling in here).  Every visited
    expression node bumps [ops], the unit of the simulator's CPU/GPU cost
    accounting. *)

open Minic.Ast
open Value

type ctx = {
  env : Value.t;
  prog : program;  (** for user-function calls *)
  mutable ops : int;
  mutable stmt_hook : (ctx -> stmt -> bool) option;
      (** returns [true] when it fully handled the statement *)
  mutable call_hook : (string -> scalar list -> scalar option) option;
      (** serves [acc_*] runtime-library calls when a device is attached *)
}

let make ?(hook = None) prog env =
  { env; prog; ops = 0; stmt_hook = hook; call_hook = None }

(* Character-wise prefix test: this runs once per call expression on the
   interpreter hot path, and [String.sub] would allocate a fresh 4-byte
   string per call. *)
let is_acc_routine f =
  String.length f > 4
  && String.unsafe_get f 0 = 'a'
  && String.unsafe_get f 1 = 'c'
  && String.unsafe_get f 2 = 'c'
  && String.unsafe_get f 3 = '_'

(* Host-only (reference execution) semantics of the OpenACC runtime
   routines: everything is synchronous and there is one host device. *)
let host_acc_routine f args =
  match f with
  | "acc_async_test" | "acc_async_test_all" -> Int 1
  | "acc_get_num_devices" -> Int 1
  | "acc_get_device_type" -> Int 2 (* acc_device_host *)
  | "acc_on_device" -> (
      match args with Int 2 :: _ -> Int 1 | _ -> Int 0)
  | _ -> Int 0

exception Break_exc
exception Continue_exc
exception Return_exc of scalar option

(* Comparison and logical results are always [Int 0] or [Int 1]; sharing
   two preallocated scalars avoids boxing a fresh constructor per
   comparison.  Both execution engines (the tree walker and the closure
   compiler) fold their boolean-valued operators through [of_bool]. *)
let int_false = Int 0
let int_true = Int 1
let of_bool b = if b then int_true else int_false

let arith op a b =
  match (a, b) with
  | Int x, Int y -> (
      match op with
      | Add -> Int (x + y)
      | Sub -> Int (x - y)
      | Mul -> Int (x * y)
      | Div -> if y = 0 then error "integer division by zero" else Int (x / y)
      | Mod -> if y = 0 then error "integer modulo by zero" else Int (x mod y)
      | Lt -> of_bool (x < y)
      | Le -> of_bool (x <= y)
      | Gt -> of_bool (x > y)
      | Ge -> of_bool (x >= y)
      | Eq -> of_bool (x = y)
      | Ne -> of_bool (x <> y)
      | Land -> of_bool (x <> 0 && y <> 0)
      | Lor -> of_bool (x <> 0 || y <> 0))
  | _ ->
      let x = to_float a and y = to_float b in
      (match op with
      | Add -> Flt (x +. y)
      | Sub -> Flt (x -. y)
      | Mul -> Flt (x *. y)
      | Div -> Flt (x /. y)
      | Mod -> error "'%%' requires integer operands"
      | Lt -> of_bool (x < y)
      | Le -> of_bool (x <= y)
      | Gt -> of_bool (x > y)
      | Ge -> of_bool (x >= y)
      | Eq -> of_bool (x = y)
      | Ne -> of_bool (x <> y)
      | Land -> of_bool (x <> 0. && y <> 0.)
      | Lor -> of_bool (x <> 0. || y <> 0.))

let is_float_buf = function Gpusim.Buf.Fbuf _ -> true | Gpusim.Buf.Ibuf _ -> false

(** A view into (part of) a flattened array: what a partially-indexed
    multi-dimensional array denotes ([a\[i\]] of a 2-D [a] is the i-th
    row). *)
type aview = { vbuf : Gpusim.Buf.t; voff : int; vshape : int array }

let view_of_slot name (slot : Value.slot) =
  match slot.buf with
  | Some b -> { vbuf = b; voff = 0; vshape = Value.shape_of slot }
  | None -> error "array '%s' is not materialized" name

let view_step name vw idx =
  match Array.length vw.vshape with
  | 0 -> error "too many subscripts on '%s'" name
  | ndims ->
      let dim = vw.vshape.(0) in
      if idx < 0 || idx >= dim then
        error "index %d out of bounds [0,%d) on '%s'" idx dim name;
      let rest = Array.sub vw.vshape 1 (ndims - 1) in
      let stride = Array.fold_left ( * ) 1 rest in
      { vbuf = vw.vbuf; voff = vw.voff + (idx * stride); vshape = rest }

let rec eval ctx e : scalar =
  ctx.ops <- ctx.ops + 1;
  match e with
  | Eint n -> Int n
  | Efloat f -> Flt f
  | Evar v -> get_scalar ctx.env v
  | Eindex (a, i) -> (
      let vw = eval_view ctx a in
      let idx = to_int (eval ctx i) in
      let vw = view_step (view_name a) vw idx in
      match Array.length vw.vshape with
      | 0 ->
          if is_float_buf vw.vbuf then Flt (Gpusim.Buf.get_float vw.vbuf vw.voff)
          else Int (Gpusim.Buf.get_int vw.vbuf vw.voff)
      | _ ->
          error "'%s' needs %d more subscript(s) to yield a value"
            (view_name a)
            (Array.length vw.vshape))
  | Eunop (Neg, a) -> (
      match eval ctx a with Int n -> Int (-n) | Flt f -> Flt (-.f))
  | Eunop (Not, a) -> of_bool (not (truthy (eval ctx a)))
  | Ebinop (Land, a, b) ->
      (* Short-circuit, as in C. *)
      if truthy (eval ctx a) then of_bool (truthy (eval ctx b)) else int_false
  | Ebinop (Lor, a, b) ->
      if truthy (eval ctx a) then int_true
      else of_bool (truthy (eval ctx b))
  | Ebinop (op, a, b) -> arith op (eval ctx a) (eval ctx b)
  | Ecall (f, args) -> call ctx f args
  | Econd (c, a, b) -> if truthy (eval ctx c) then eval ctx a else eval ctx b

and eval_view ctx e =
  match e with
  | Evar v -> view_of_slot v (array_slot ctx.env v)
  | Eindex (a, i) ->
      let vw = eval_view ctx a in
      let idx = to_int (eval ctx i) in
      view_step (view_name a) vw idx
  | _ -> error "expected an array expression"

and view_name = function
  | Evar v -> v
  | Eindex (a, _) -> view_name a
  | _ -> "<array expression>"

and call ctx f args =
  if is_acc_routine f then begin
    let vargs = List.map (eval ctx) args in
    match ctx.call_hook with
    | Some h -> (
        match h f vargs with
        | Some v -> v
        | None -> error "unknown OpenACC runtime routine '%s'" f)
    | None -> host_acc_routine f vargs
  end
  else
  let float1 g =
    match args with
    | [ a ] -> Flt (g (to_float (eval ctx a)))
    | _ -> error "builtin '%s' expects 1 argument" f
  in
  match f with
  | "sqrt" -> float1 sqrt
  | "fabs" -> float1 Float.abs
  | "exp" -> float1 exp
  | "log" -> float1 log
  | "sin" -> float1 sin
  | "cos" -> float1 cos
  | "floor" -> float1 Float.floor
  | "ceil" -> float1 Float.ceil
  | "float" -> float1 Fun.id
  | "int" -> (
      match args with
      | [ a ] -> Int (to_int (eval ctx a))
      | _ -> error "int() expects 1 argument")
  | "abs" -> (
      match args with
      | [ a ] -> (
          match eval ctx a with Int n -> Int (abs n) | Flt x -> Flt (Float.abs x))
      | _ -> error "abs() expects 1 argument")
  | "pow" -> (
      match args with
      | [ a; b ] ->
          Flt (Float.pow (to_float (eval ctx a)) (to_float (eval ctx b)))
      | _ -> error "pow() expects 2 arguments")
  | "min" | "max" -> (
      match args with
      | [ a; b ] -> (
          let x = eval ctx a and y = eval ctx b in
          match (x, y) with
          | Int i, Int j -> Int (if f = "min" then min i j else max i j)
          | _ ->
              let i = to_float x and j = to_float y in
              Flt (if f = "min" then Float.min i j else Float.max i j))
      | _ -> error "%s() expects 2 arguments" f)
  | _ -> call_user ctx f args

and call_user ctx f args =
  match Minic.Ast.find_function ctx.prog f with
  | None -> error "call to unknown function '%s'" f
  | Some fn ->
      if List.length args <> List.length fn.f_params then
        error "arity mismatch calling '%s'" f;
      (* Evaluate arguments in the caller's environment. *)
      let bindings =
        List.map2
          (fun p arg ->
            match p.p_typ with
            | Tarr _ | Tptr _ ->
                let name =
                  match arg with
                  | Evar v -> v
                  | _ -> error "array argument to '%s' must be a variable" f
                in
                let slot = array_slot ctx.env name in
                (p.p_name,
                 Array { buf = slot.buf; root = slot.root;
                         shape = slot.shape })
            | Tvoid | Tint | Tfloat ->
                (p.p_name, Scalar { v = eval ctx arg }))
          fn.f_params args
      in
      let saved = ctx.env.frames in
      let frame = Hashtbl.create 8 in
      List.iter (fun (name, b) -> Hashtbl.replace frame name b) bindings;
      ctx.env.frames <- [ frame ];
      let restore () = ctx.env.frames <- saved in
      let result =
        try
          exec_block ctx fn.f_body;
          None
        with
        | Return_exc r ->
            restore ();
            r
        | e ->
            restore ();
            raise e
      in
      (match result with
      | Some r ->
          r
      | None ->
          (* fell through without return (void function) *)
          (match fn.f_body with _ -> ());
          restore () |> ignore;
          Int 0)

and zero_of_typ = function
  | Tint -> Int 0
  | Tfloat -> Flt 0.0
  | Tvoid | Tarr _ | Tptr _ -> Int 0

and base_is_float = function
  | Tfloat -> true
  | Tarr (t, _) | Tptr t -> base_is_float t
  | Tint | Tvoid -> false

and exec_decl ctx typ name init =
  match typ with
  | Tint | Tfloat | Tvoid ->
      let v = match init with Some e -> eval ctx e | None -> zero_of_typ typ in
      declare ctx.env name (Scalar { v })
  | Tarr (_, None) ->
      declare ctx.env name (Array { buf = None; root = name; shape = [||] })
  | Tarr _ ->
      (* Unroll the (possibly multi-dimensional) extents, outermost first,
         and allocate one flattened row-major buffer. *)
      let rec unroll = function
        | Tarr (t, Some e) ->
            let n = to_int (eval ctx e) in
            if n < 0 then error "negative array extent for '%s'" name;
            let dims, base = unroll t in
            (n :: dims, base)
        | Tarr (_, None) ->
            error "inner dimensions of '%s' need explicit extents" name
        | t -> ([], t)
      in
      let dims, base = unroll typ in
      let total = List.fold_left ( * ) 1 dims in
      let buf =
        if base_is_float base then Gpusim.Buf.create_float total
        else Gpusim.Buf.create_int total
      in
      declare ctx.env name
        (Array { buf = Some buf; root = name; shape = Array.of_list dims })
  | Tptr _ -> (
      match init with
      | Some (Evar src) ->
          let slot = array_slot ctx.env src in
          declare ctx.env name
            (Array { buf = slot.buf; root = slot.root;
                     shape = slot.shape })
      | Some _ -> error "pointer '%s' may only be initialized from an array" name
      | None ->
          declare ctx.env name (Array { buf = None; root = name; shape = [||] }))

and assign ctx lv rhs =
  match lv with
  | Lvar v -> (
      match lookup_exn ctx.env v with
      | Scalar cell -> cell.v <- eval ctx rhs
      | Array slot -> (
          (* pointer rebinding: p = a *)
          match rhs with
          | Evar src ->
              let s = array_slot ctx.env src in
              slot.buf <- s.buf;
              slot.root <- s.root;
              slot.shape <- s.shape
          | _ -> error "'%s' holds an array; assign another array to it" v))
  | Lindex (base, idx) -> (
      let v = eval ctx rhs in
      let rec lvalue_view = function
        | Lvar name -> view_of_slot name (array_slot ctx.env name)
        | Lindex (b, i) ->
            let vw = lvalue_view b in
            view_step (lvalue_root b) vw (to_int (eval ctx i))
      in
      let vw = lvalue_view base in
      let i = to_int (eval ctx idx) in
      let vw = view_step (lvalue_root base) vw i in
      if Array.length vw.vshape <> 0 then
        error "'%s' needs %d more subscript(s) to be assignable"
          (lvalue_root base)
          (Array.length vw.vshape);
      match vw.vbuf with
      | Gpusim.Buf.Fbuf a -> a.(vw.voff) <- to_float v
      | Gpusim.Buf.Ibuf a -> a.(vw.voff) <- to_int v)

and exec ctx s =
  ctx.ops <- ctx.ops + 1;
  let handled =
    match ctx.stmt_hook with Some h -> h ctx s | None -> false
  in
  if not handled then
    match s.skind with
    | Sskip -> ()
    | Sexpr e -> ignore (eval ctx e)
    | Sassign (lv, e) -> assign ctx lv e
    | Sdecl (typ, name, init) -> exec_decl ctx typ name init
    | Sif (c, b1, b2) ->
        if truthy (eval ctx c) then exec_scope ctx b1 else exec_scope ctx b2
    | Swhile (c, b) -> (
        try
          while truthy (eval ctx c) do
            try exec_scope ctx b with Continue_exc -> ()
          done
        with Break_exc -> ())
    | Sfor (init, cond, step, b) ->
        scoped ctx.env (fun () ->
            Option.iter (exec ctx) init;
            let continue_ () =
              match cond with Some c -> truthy (eval ctx c) | None -> true
            in
            try
              while continue_ () do
                (try exec_scope ctx b with Continue_exc -> ());
                Option.iter (exec ctx) step
              done
            with Break_exc -> ())
    | Sblock b -> exec_scope ctx b
    | Sreturn e -> raise (Return_exc (Option.map (eval ctx) e))
    | Sbreak -> raise Break_exc
    | Scontinue -> raise Continue_exc
    | Sacc (_, body) ->
        (* Directives are transparent to sequential execution. *)
        Option.iter (exec ctx) body

and exec_scope ctx b = scoped ctx.env (fun () -> exec_block ctx b)

and exec_block ctx b = List.iter (exec ctx) b

(** Initialize global variables into [env]'s global frame. *)
let init_globals ctx =
  List.iter
    (function
      | Gvar (typ, name, init) ->
          (* Declare into the global frame. *)
          let saved = ctx.env.frames in
          ctx.env.frames <- [ ctx.env.globals ];
          exec_decl ctx typ name init;
          ctx.env.frames <- saved
      | Gfunc _ -> ())
    ctx.prog.globals

(** Run the whole program sequentially (the reference execution). *)
let run_reference ?hook prog =
  let env = Value.create () in
  let ctx = make ~hook prog env in
  init_globals ctx;
  let main = Minic.Ast.main_function prog in
  (try exec_block ctx main.f_body with Return_exc _ -> ());
  ctx
